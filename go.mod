module github.com/hunter-cdb/hunter

go 1.22
