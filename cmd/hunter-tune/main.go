// Command hunter-tune runs one HUNTER tuning session against a simulated
// cloud database instance and prints the recommended configuration.
//
//	hunter-tune -db mysql -workload tpcc -budget 24h -clones 5
//	hunter-tune -workload sysbench-rw -fix innodb_adaptive_hash_index=0 \
//	    -range innodb_buffer_pool_size=1073741824:17179869184 -alpha 0.7
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/hunter-cdb/hunter"
)

// multiFlag collects repeated -fix / -range options.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		db       = flag.String("db", "mysql", "database dialect: mysql | postgres")
		wl       = flag.String("workload", "tpcc", "workload: tpcc | sysbench-ro | sysbench-wo | sysbench-rw | production")
		budget   = flag.Duration("budget", 24*time.Hour, "virtual tuning time budget")
		clones   = flag.Int("clones", 1, "number of cloned CDB instances")
		instance = flag.String("instance", "F", "instance type A..H")
		seed     = flag.Int64("seed", 1, "random seed")
		alpha    = flag.Float64("alpha", 0.5, "throughput/latency preference in [0,1]")
		outFile  = flag.String("out", "", "write the recommended configuration to this file (my.cnf / postgresql.conf syntax)")
		verbose  = flag.Bool("v", false, "stream structured session logs to stderr")
		traceOut = flag.String("trace", "", "write the span trace to this file (.json = Chrome trace_event format, else JSONL)")
		metrics  = flag.String("metrics-out", "", "write the counter/gauge exposition to this file")
		report   = flag.String("report", "", "write the run report (JSON) to this file")
		ckptDir  = flag.String("checkpoint-dir", "", "directory for durable run snapshots (enables checkpointing)")
		ckptEvry = flag.Int("checkpoint-every", 1, "stress waves between snapshots")
		resume   = flag.Bool("resume", false, "continue the run from the snapshot in -checkpoint-dir")
		stopAt   = flag.Int("stop-after-waves", 0, "checkpoint and stop after this many waves (interruption testing)")
		chProf   = flag.String("chaos-profile", "off", "fault-injection profile: off | mild | flaky | catastrophic")
		chSeed   = flag.Int64("chaos-seed", 1, "fault-plan seed (only meaningful with -chaos-profile)")
		compress = flag.Bool("compress", false, "evaluation cost collapse: compressed workload kernel + wave dedup + warm-state deltas")
		serve    = flag.String("serve", "", "serve the live introspection plane (/metrics /status /sessions /events) on this address, e.g. 127.0.0.1:8377")
		linger   = flag.Duration("serve-linger", 0, "keep the introspection server up this long after the run finishes (for scraping final state)")
		online   = flag.Bool("online", false, "deploy improving candidates to the serving instance during the run (naive online tuning)")
		guard    = flag.Bool("guardrails", false, "arm the online safety loop: canary gate, trust region, SLO monitor, automatic rollback (implies -online)")
		sloP99   = flag.Duration("slo-p99", 0, "p99 latency SLO ceiling for the deployed config, e.g. 80ms (0 = off)")
		sloTPS   = flag.Float64("slo-floor-tps", 0, "throughput SLO floor for the deployed config (0 = off)")
		gMargin  = flag.Float64("guard-margin", 0, "fraction below the rolling baseline a canary may sit before it is blocked (0 = default 0.05)")
		dStream  = flag.String("drift-stream", "", "continuous workload drift stream: "+strings.Join(hunter.DriftStreamKinds(), " | "))
		dPeriod  = flag.Duration("drift-period", 0, "drift stream period (default 12h)")
		dEvents  = flag.Int("drift-events", 0, "drift events per stream period (default 6)")
		dSeed    = flag.Int64("drift-seed", 0, "drift stream seed (default: -seed)")
		fixes    multiFlag
		ranges   multiFlag
	)
	flag.Var(&fixes, "fix", "fix a knob: name=value (repeatable)")
	flag.Var(&ranges, "range", "restrict a knob: name=min:max (repeatable)")
	flag.Parse()

	req := hunter.Request{
		Budget: *budget,
		Clones: *clones,
		Seed:   *seed,
	}
	if *verbose {
		req.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	}
	if *traceOut != "" || *metrics != "" || *report != "" || *serve != "" {
		req.Recorder = hunter.NewRecorder()
	}
	var obsrv *hunter.IntrospectionServer
	if *serve != "" {
		reg := hunter.NewStatusRegistry()
		req.Status = reg
		obsrv = hunter.NewIntrospectionServer(req.Recorder, reg)
		addr, err := obsrv.Start(*serve)
		if err != nil {
			fatalf("introspection server: %v", err)
		}
		// Banner goes to stderr: stdout stays byte-identical with -serve off.
		fmt.Fprintf(os.Stderr, "introspection plane on http://%s (/metrics /status /sessions /events)\n", addr)
		defer func() {
			if *linger > 0 {
				fmt.Fprintf(os.Stderr, "introspection server lingering %v on http://%s\n", *linger, addr)
				time.Sleep(*linger)
			}
			obsrv.Close()
		}()
	}
	if *ckptDir != "" || *stopAt > 0 {
		req.Checkpoint = &hunter.CheckpointPolicy{
			Dir:            *ckptDir,
			Every:          *ckptEvry,
			StopAfterWaves: *stopAt,
		}
	}
	if *resume && *ckptDir == "" {
		fatalf("-resume needs -checkpoint-dir")
	}
	profile, err := hunter.ChaosProfileByName(*chProf)
	if err != nil {
		fatalf("%v", err)
	}
	if profile.Enabled() {
		req.Chaos = &hunter.ChaosPlan{Seed: *chSeed, Profile: profile}
	}
	// Any guardrail-shaped flag arms the full safety loop; -online alone
	// runs the naive deploy-as-you-go baseline without the guard.
	if *guard || *sloP99 > 0 || *sloTPS > 0 || *gMargin > 0 || *online {
		req.Safety = &hunter.SafetyOptions{
			Guardrails:  *guard || *sloP99 > 0 || *sloTPS > 0 || *gMargin > 0,
			Margin:      *gMargin,
			SLOP99Ms:    float64(*sloP99) / float64(time.Millisecond),
			SLOFloorTPS: *sloTPS,
		}
	}
	if *dStream != "" {
		streamSeed := *dSeed
		if streamSeed == 0 {
			streamSeed = *seed
		}
		req.DriftStream = &hunter.DriftStream{
			Kind:   *dStream,
			Period: *dPeriod,
			Events: *dEvents,
			Seed:   streamSeed,
		}
	}
	switch *db {
	case "mysql":
		req.Dialect = hunter.MySQL
	case "postgres", "postgresql":
		req.Dialect = hunter.Postgres
	default:
		fatalf("unknown dialect %q", *db)
	}
	switch *wl {
	case "tpcc":
		req.Workload = hunter.TPCC()
	case "sysbench-ro":
		req.Workload = hunter.SysbenchRO()
	case "sysbench-wo":
		req.Workload = hunter.SysbenchWO()
	case "sysbench-rw":
		req.Workload = hunter.SysbenchRW()
	case "production":
		req.Workload = hunter.Production()
	default:
		fatalf("unknown workload %q", *wl)
	}
	if *compress {
		// Production compresses into a clustered kernel; the synthetic
		// benchmarks keep their (already compact) mix and just measure at
		// a fraction of the full stress-test effort.
		if *wl == "production" {
			req.Workload = hunter.CompressedProduction()
		} else {
			req.Workload = hunter.CompressWorkload(req.Workload, 0.25)
		}
		req.Eval = &hunter.EvalOptions{DedupWaves: true, WarmStateDeltas: true}
	}
	it, err := hunter.InstanceTypeByName(*instance)
	if err != nil {
		fatalf("%v", err)
	}
	req.Type = it

	rules := hunter.NewRules().SetAlpha(*alpha)
	for _, f := range fixes {
		name, val, ok := strings.Cut(f, "=")
		if !ok {
			fatalf("bad -fix %q, want name=value", f)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			fatalf("bad -fix value %q: %v", val, err)
		}
		rules.Fix(name, v)
	}
	for _, r := range ranges {
		name, span, ok := strings.Cut(r, "=")
		if !ok {
			fatalf("bad -range %q, want name=min:max", r)
		}
		loS, hiS, ok := strings.Cut(span, ":")
		if !ok {
			fatalf("bad -range span %q, want min:max", span)
		}
		lo, err1 := strconv.ParseFloat(loS, 64)
		hi, err2 := strconv.ParseFloat(hiS, 64)
		if err1 != nil || err2 != nil {
			fatalf("bad -range bounds %q", span)
		}
		rules.Range(name, lo, hi)
	}
	req.Rules = rules

	// Ctrl-C stops the run at the next stress-test boundary; the best
	// configuration found so far is still deployed and reported.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	var res *hunter.Result
	if *resume {
		wave, clock, perr := hunter.PeekCheckpoint(*ckptDir)
		if perr != nil {
			fatalf("%v", perr)
		}
		fmt.Printf("resuming %s / %s from wave %d (%.1f h on the clock)...\n",
			*db, req.Workload.Name, wave, clock.Hours())
		res, err = hunter.ResumeContext(ctx, req)
	} else {
		fmt.Printf("tuning %s / %s on type %s, budget %v, %d clone(s)...\n",
			*db, req.Workload.Name, it.Name, *budget, *clones)
		res, err = hunter.TuneContext(ctx, req)
	}
	// Export telemetry before failing so a broken run still leaves a trace.
	if eerr := exportTelemetry(req.Recorder, *traceOut, *metrics, *report); eerr != nil {
		fatalf("%v", eerr)
	}
	if errors.Is(err, hunter.ErrStopRequested) {
		reportCheckpoint(os.Stdout, *ckptDir, "run stopped at the requested wave")
		return
	}
	if errors.Is(err, hunter.ErrFleetLost) {
		// Total fleet loss: the run degrades to the baseline configuration
		// instead of failing outright.
		fmt.Println("\nWARNING: entire clone fleet lost to faults — result falls back to the baseline configuration")
		err = nil
	}
	if err != nil {
		fatalf("%v", err)
	}
	if ctx.Err() != nil && *ckptDir != "" {
		reportCheckpoint(os.Stderr, *ckptDir, "interrupted — partial result below")
	}

	fmt.Printf("\ndefault:     %8.0f txn/s  p95 %6.1f ms\n",
		res.DefaultPerf.ThroughputTPS, res.DefaultPerf.P95LatencyMs)
	fmt.Printf("recommended: %8.0f txn/s  p95 %6.1f ms  (fitness %.3f)\n",
		res.BestPerf.ThroughputTPS, res.BestPerf.P95LatencyMs, res.Fitness)
	fmt.Printf("steps: %d   recommendation time: %.1f h of %.1f h used\n",
		res.Steps, res.RecommendationTime.Hours(), res.Elapsed.Hours())
	fmt.Printf("compressed state: %d dims   key knobs: %d\n\n",
		res.CompressedStateDim, len(res.TopKnobs))
	if res.Resilience != nil {
		fmt.Print(res.Resilience.Summary(), "\n")
	}
	if res.Safety != nil {
		fmt.Print(res.Safety.Summary(), "\n")
	}

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := hunter.WriteConfigFile(f, req.Dialect, res.Best); err != nil {
			fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("full configuration written to %s\n\n", *outFile)
	}

	fmt.Println("recommended values for the sifted key knobs:")
	top := append([]string(nil), res.TopKnobs...)
	sort.Strings(top)
	for _, name := range top {
		fmt.Printf("  %-40s = %s\n", name, hunter.FormatKnob(req.Dialect, name, res.Best[name]))
	}
}

// reportCheckpoint prints where the run's durable snapshot lives and the
// exact command that continues it.
func reportCheckpoint(w io.Writer, dir, why string) {
	if dir == "" {
		fmt.Fprintf(w, "\n%s (no -checkpoint-dir, nothing saved)\n", why)
		return
	}
	wave, clock, err := hunter.PeekCheckpoint(dir)
	if err != nil {
		fmt.Fprintf(w, "\n%s; checkpoint unreadable: %v\n", why, err)
		return
	}
	fmt.Fprintf(w, "\n%s\ncheckpoint: %s  (wave %d, %.1f h on the virtual clock)\n",
		why, filepath.Join(dir, hunter.CheckpointFileName), wave, clock.Hours())
	fmt.Fprintf(w, "continue with:  %s -resume -checkpoint-dir %s  <same tuning flags>\n",
		os.Args[0], dir)
}

// exportTelemetry writes the requested telemetry artifacts. No-op when the
// recorder was never enabled.
func exportTelemetry(rec *hunter.Recorder, traceOut, metricsOut, reportOut string) error {
	if rec == nil {
		return nil
	}
	rec.CaptureParallel()
	rec.CaptureRuntime()
	write := func(path string, emit func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", path, err)
		}
		return f.Close()
	}
	if traceOut != "" {
		emit := rec.WriteTrace
		if strings.HasSuffix(traceOut, ".json") {
			emit = rec.WriteChromeTrace
		}
		if err := write(traceOut, emit); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		if err := write(metricsOut, rec.WriteText); err != nil {
			return err
		}
	}
	if reportOut != "" {
		if err := write(reportOut, rec.WriteReport); err != nil {
			return err
		}
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
