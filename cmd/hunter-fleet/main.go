// Command hunter-fleet is the multi-tenant tuning fleet daemon: it runs N
// simulated tenant databases through budgeted HUNTER tuning sessions,
// sharing trained models across tenants with the same workload signature,
// and prints a deterministic fleet report.
//
//	hunter-fleet -tenants 1000 -workers 8
//	hunter-fleet -tenants 200 -reuse=false -report fleet.json
//	hunter-fleet -tenants 500 -checkpoint-dir ckpt -serve 127.0.0.1:8377
//
// The report on stdout is byte-identical for any -workers value and
// across kill-and-resume; wall-clock chatter goes to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"github.com/hunter-cdb/hunter/internal/fleet"
	"github.com/hunter-cdb/hunter/internal/obsv"
	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/telemetry"
)

func main() {
	var (
		tenants  = flag.Int("tenants", 100, "number of synthetic tenant databases")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		reuse    = flag.Bool("reuse", true, "share trained models across tenants")
		seed     = flag.Int64("seed", 1, "fleet seed (tenant workloads, budgets, SLO targets)")
		active   = flag.Int("max-active", 32, "tenant sessions per scheduling round")
		queue    = flag.Int("queue-depth", 0, "admission queue capacity (0 = admit all)")
		tBudget  = flag.Duration("tenant-budget", 0, "clamp each tenant's virtual budget (0 = as requested)")
		fBudget  = flag.Duration("fleet-budget", 0, "fleet-wide virtual-time pool; tenants beyond it are evicted (0 = unlimited)")
		ckptDir  = flag.String("checkpoint-dir", "", "directory for incremental fleet snapshots (enables checkpointing)")
		ckptEvry = flag.Int("checkpoint-every", 1, "rounds between snapshots")
		resume   = flag.Bool("resume", false, "continue the fleet from the snapshot in -checkpoint-dir")
		stopAt   = flag.Int("stop-after-rounds", 0, "checkpoint and stop after this many rounds (interruption testing)")
		serve    = flag.String("serve", "", "serve the live introspection plane (/metrics /status /sessions /events) on this address")
		linger   = flag.Duration("serve-linger", 0, "keep the introspection server up this long after the run finishes")
		report   = flag.String("report", "", "write the fleet report (JSON) to this file")
		metrics  = flag.String("metrics-out", "", "write the counter/gauge exposition to this file")
		verbose  = flag.Bool("v", false, "stream structured fleet logs to stderr")
	)
	flag.Parse()

	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	cfg := fleet.Config{
		Tenants: fleet.SyntheticTenants(*tenants, *seed),
		Reuse:   *reuse,
		Seed:    *seed,
		Policy: fleet.Policy{
			MaxActive:          *active,
			QueueDepth:         *queue,
			MaxTenantBudget:    *tBudget,
			TotalVirtualBudget: *fBudget,
		},
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvry,
		StopAfterRounds: *stopAt,
	}
	if *verbose {
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	}
	var rec *telemetry.Recorder
	if *serve != "" || *metrics != "" {
		rec = telemetry.New()
		cfg.Recorder = rec
	}
	if *serve != "" {
		reg := obsv.NewRegistry()
		cfg.Status = reg
		srv := obsv.NewServer(rec, reg)
		addr, err := srv.Start(*serve)
		if err != nil {
			fatalf("introspection server: %v", err)
		}
		// Banner on stderr: stdout stays byte-identical with -serve off.
		fmt.Fprintf(os.Stderr, "introspection plane on http://%s (/metrics /status /sessions /events)\n", addr)
		defer func() {
			if *linger > 0 {
				fmt.Fprintf(os.Stderr, "introspection server lingering %v on http://%s\n", *linger, addr)
				time.Sleep(*linger)
			}
			srv.Close()
		}()
	}
	if *resume && *ckptDir == "" {
		fatalf("-resume needs -checkpoint-dir")
	}

	var f *fleet.Fleet
	var err error
	if *resume {
		f, err = fleet.Resume(cfg)
	} else {
		f, err = fleet.New(cfg)
	}
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "fleet: %d tenants, reuse=%v, max-active %d, workers %d\n",
		*tenants, *reuse, *active, parallel.Workers())

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	start := time.Now()
	runErr := f.Run(ctx)
	wall := time.Since(start)

	if *metrics != "" {
		if werr := writeMetrics(rec, *metrics); werr != nil {
			fatalf("%v", werr)
		}
	}
	switch {
	case errors.Is(runErr, fleet.ErrStopRequested):
		fmt.Printf("fleet stopped at round %d after checkpoint\n", f.Rounds())
		fmt.Printf("checkpoint: %s\n", filepath.Join(*ckptDir, fleet.CheckpointFileName))
		fmt.Printf("continue with:  %s -resume -checkpoint-dir %s  <same fleet flags>\n", os.Args[0], *ckptDir)
		return
	case runErr != nil && ctx.Err() != nil:
		fmt.Fprintf(os.Stderr, "interrupted after %d rounds", f.Rounds())
		if *ckptDir != "" {
			fmt.Fprintf(os.Stderr, "; continue with -resume -checkpoint-dir %s", *ckptDir)
		}
		fmt.Fprintln(os.Stderr)
		return
	case runErr != nil:
		fatalf("%v", runErr)
	}

	r := f.Report()
	r.Render(os.Stdout)
	if *report != "" {
		if err := r.WriteJSON(*report); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "fleet report written to %s\n", *report)
	}
	fmt.Fprintf(os.Stderr, "wall time %s (%.1f sessions/s)\n",
		wall.Round(time.Millisecond), float64(r.Done+r.Failed)/wall.Seconds())
}

func writeMetrics(rec *telemetry.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteText(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
