// Command hunter-repro regenerates the paper's tables and figures from the
// simulated cloud. By default it runs every experiment at full (paper)
// scale; use -exp to select one and -scale to shrink the virtual-time
// budgets for a quick pass.
//
//	hunter-repro -list
//	hunter-repro -exp fig9 -scale 0.2
//	hunter-repro -scale 0.05        # quick pass over everything
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/hunter-cdb/hunter/internal/experiments"
	"github.com/hunter-cdb/hunter/internal/parallel"
)

func main() {
	var (
		exp     = flag.String("exp", "", "comma-separated experiment ids to run (empty = all)")
		scale   = flag.Float64("scale", 1.0, "virtual-time budget scale (1 = paper scale)")
		seed    = flag.Int64("seed", 2022, "random seed")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		par     = flag.Bool("parallel", true, "overlap independent sessions and experiments across CPU cores (output is byte-identical either way)")
		workers = flag.Int("workers", 0, "worker-pool size for -parallel (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}

	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, SerialSessions: !*par}
	runners := experiments.All()
	if *exp != "" {
		runners = nil
		for _, id := range strings.Split(*exp, ",") {
			r, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	banner := func(r experiments.Runner) {
		fmt.Printf("==================================================================\n")
		fmt.Printf("%s — %s (scale %.2f)\n", r.ID, r.Title, *scale)
		fmt.Printf("==================================================================\n")
	}

	if !*par || len(runners) == 1 {
		for _, r := range runners {
			banner(r)
			start := time.Now()
			if err := r.Run(cfg, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, err)
				os.Exit(1)
			}
			fmt.Printf("[%s completed in %s wall time]\n\n", r.ID, time.Since(start).Round(time.Second))
		}
		return
	}

	// Independent experiments overlap too: each runner writes into its own
	// buffer and the buffers are printed in paper order, so the output
	// matches the serial run byte for byte (wall-time lines aside).
	bufs := make([]bytes.Buffer, len(runners))
	errs := make([]error, len(runners))
	took := make([]time.Duration, len(runners))
	parallel.For(len(runners), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			start := time.Now()
			errs[i] = runners[i].Run(cfg, &bufs[i])
			took[i] = time.Since(start)
		}
	})
	for i, r := range runners {
		banner(r)
		os.Stdout.Write(bufs[i].Bytes())
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, errs[i])
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %s wall time]\n\n", r.ID, took[i].Round(time.Second))
	}
}
