// Command hunter-repro regenerates the paper's tables and figures from the
// simulated cloud. By default it runs every experiment at full (paper)
// scale; use -exp to select one and -scale to shrink the virtual-time
// budgets for a quick pass.
//
//	hunter-repro -list
//	hunter-repro -exp fig9 -scale 0.2
//	hunter-repro -scale 0.05        # quick pass over everything
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/hunter-cdb/hunter/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id to run (empty = all)")
		scale = flag.Float64("scale", 1.0, "virtual-time budget scale (1 = paper scale)")
		seed  = flag.Int64("seed", 2022, "random seed")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	runners := experiments.All()
	if *exp != "" {
		r, err := experiments.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}
	for _, r := range runners {
		fmt.Printf("==================================================================\n")
		fmt.Printf("%s — %s (scale %.2f)\n", r.ID, r.Title, *scale)
		fmt.Printf("==================================================================\n")
		start := time.Now()
		if err := r.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %s wall time]\n\n", r.ID, time.Since(start).Round(time.Second))
	}
}
