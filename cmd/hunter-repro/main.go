// Command hunter-repro regenerates the paper's tables and figures from the
// simulated cloud. By default it runs every experiment at full (paper)
// scale; use -exp to select one and -scale to shrink the virtual-time
// budgets for a quick pass.
//
//	hunter-repro -list
//	hunter-repro -exp fig9 -scale 0.2
//	hunter-repro -scale 0.05        # quick pass over everything
//
// Observability: -v streams structured session logs to stderr; -trace,
// -metrics-out and -report export the run's telemetry (a trace file ending
// in .json is written in Chrome trace_event format for chrome://tracing or
// ui.perfetto.dev, any other name gets the raw JSONL trace). Telemetry is
// passive, so experiment output is byte-identical with or without it.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"github.com/hunter-cdb/hunter/internal/experiments"
	"github.com/hunter-cdb/hunter/internal/obsv"
	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/telemetry"
)

func main() {
	var (
		exp        = flag.String("exp", "", "comma-separated experiment ids to run (empty = all)")
		scale      = flag.Float64("scale", 1.0, "virtual-time budget scale (1 = paper scale)")
		seed       = flag.Int64("seed", 2022, "random seed")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		par        = flag.Bool("parallel", true, "overlap independent sessions and experiments across CPU cores (output is byte-identical either way)")
		workers    = flag.Int("workers", 0, "worker-pool size for -parallel (0 = GOMAXPROCS)")
		verbose    = flag.Bool("v", false, "stream structured session logs to stderr")
		traceOut   = flag.String("trace", "", "write the span trace to this file (.json = Chrome trace_event format, else JSONL)")
		metricsOut = flag.String("metrics-out", "", "write the counter/gauge exposition to this file")
		reportOut  = flag.String("report", "", "write the run report (JSON) to this file")
		ckptDir    = flag.String("checkpoint-dir", "", "directory the resume experiment keeps its snapshot in (default: a temp dir)")
		ckptEvry   = flag.Int("checkpoint-every", 1, "stress waves between snapshots in the resume experiment")
		resume     = flag.Bool("resume", false, "make the resume experiment continue the snapshot in -checkpoint-dir instead of re-running its golden and kill legs")
		stopAt     = flag.Int("stop-after-waves", 0, "wave the resume experiment kills its session at (0 = default)")
		chProf     = flag.String("chaos-profile", "", "fault-injection profile the chaos experiment arms (default: flaky)")
		chSeed     = flag.Int64("chaos-seed", 0, "fault-plan seed for the chaos experiment (0 = default)")
		serve      = flag.String("serve", "", "serve the live introspection plane (/metrics /status /sessions /events) on this address, e.g. 127.0.0.1:8377")
		linger     = flag.Duration("serve-linger", 0, "keep the introspection server up this long after the experiments finish")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}

	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	var rec *telemetry.Recorder
	if *traceOut != "" || *metricsOut != "" || *reportOut != "" || *serve != "" {
		rec = telemetry.New()
	}
	var logger *slog.Logger
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	}
	var status *obsv.Registry
	if *serve != "" {
		status = obsv.NewRegistry()
		srv := obsv.NewServer(rec, status)
		addr, err := srv.Start(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "introspection server:", err)
			os.Exit(1)
		}
		// Banner goes to stderr: stdout stays byte-identical with -serve off.
		fmt.Fprintf(os.Stderr, "introspection plane on http://%s (/metrics /status /sessions /events)\n", addr)
		defer func() {
			if *linger > 0 {
				fmt.Fprintf(os.Stderr, "introspection server lingering %v on http://%s\n", *linger, addr)
				time.Sleep(*linger)
			}
			srv.Close()
		}()
	}
	cfg := experiments.Config{
		Scale: *scale, Seed: *seed, SerialSessions: !*par,
		Recorder: rec, Logger: logger,
		CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvry,
		StopAfterWaves: *stopAt, ResumeOnly: *resume,
		ChaosProfile: *chProf, ChaosSeed: *chSeed,
	}
	if status != nil {
		// Assigned only when serving: a nil *Registry in the interface field
		// would read as a non-nil sink.
		cfg.Status = status
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "-resume needs -checkpoint-dir")
		os.Exit(2)
	}
	runners := experiments.All()
	if *exp != "" {
		runners = nil
		for _, id := range strings.Split(*exp, ",") {
			r, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	banner := func(r experiments.Runner) {
		fmt.Printf("==================================================================\n")
		fmt.Printf("%s — %s (scale %.2f)\n", r.ID, r.Title, *scale)
		fmt.Printf("==================================================================\n")
	}
	// runOne executes one experiment, routing any failure into the same
	// ordered writer as the results — not straight to stderr — so output
	// placement is deterministic under -parallel even when runners fail.
	runOne := func(i int, w io.Writer) (time.Duration, error) {
		start := time.Now()
		err := runners[i].Run(cfg, w)
		if err != nil {
			fmt.Fprintf(w, "%s: error: %v\n", runners[i].ID, err)
		}
		return time.Since(start), err
	}

	failures := 0
	if !*par || len(runners) == 1 {
		// Serial mode streams to stdout directly but keeps running after a
		// failure, matching the parallel mode's all-experiments behaviour.
		for i, r := range runners {
			banner(r)
			d, err := runOne(i, os.Stdout)
			if err != nil {
				failures++
			}
			fmt.Printf("[%s completed in %s wall time]\n\n", r.ID, d.Round(time.Second))
		}
	} else {
		// Independent experiments overlap: each runner writes into its own
		// buffer and the buffers are printed in paper order, so the output
		// matches the serial run byte for byte (wall-time lines aside).
		bufs := make([]bytes.Buffer, len(runners))
		errs := make([]error, len(runners))
		took := make([]time.Duration, len(runners))
		parallel.For(len(runners), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				took[i], errs[i] = runOne(i, &bufs[i])
			}
		})
		for i, r := range runners {
			banner(r)
			os.Stdout.Write(bufs[i].Bytes())
			if errs[i] != nil {
				failures++
			}
			fmt.Printf("[%s completed in %s wall time]\n\n", r.ID, took[i].Round(time.Second))
		}
	}

	if err := exportTelemetry(rec, *traceOut, *metricsOut, *reportOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "hunter-repro: %d of %d experiments failed\n", failures, len(runners))
		os.Exit(1)
	}
}

// exportTelemetry snapshots the runtime/fork-join gauges and writes the
// requested artifacts. No-op when telemetry was not enabled.
func exportTelemetry(rec *telemetry.Recorder, traceOut, metricsOut, reportOut string) error {
	if rec == nil {
		return nil
	}
	rec.CaptureParallel()
	rec.CaptureRuntime()
	write := func(path string, emit func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", path, err)
		}
		return f.Close()
	}
	if traceOut != "" {
		emit := rec.WriteTrace
		if strings.HasSuffix(traceOut, ".json") {
			emit = rec.WriteChromeTrace
		}
		if err := write(traceOut, emit); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		if err := write(metricsOut, rec.WriteText); err != nil {
			return err
		}
	}
	if reportOut != "" {
		if err := write(reportOut, rec.WriteReport); err != nil {
			return err
		}
	}
	return nil
}
