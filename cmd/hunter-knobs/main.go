// Command hunter-knobs prints a dialect's knob catalog: domain, default,
// restart requirement and description of every knob the tuner can touch —
// the reference a DBA consults when writing Rules.
//
//	hunter-knobs -db mysql
//	hunter-knobs -db postgres -restart-only
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hunter-cdb/hunter"
)

func main() {
	var (
		db          = flag.String("db", "mysql", "database dialect: mysql | postgres")
		restartOnly = flag.Bool("restart-only", false, "list only restart-required knobs")
	)
	flag.Parse()

	dialect := hunter.MySQL
	switch *db {
	case "mysql":
	case "postgres", "postgresql":
		dialect = hunter.Postgres
	default:
		fmt.Fprintf(os.Stderr, "unknown dialect %q\n", *db)
		os.Exit(2)
	}

	specs := hunter.Catalog(dialect)
	fmt.Printf("%-40s %-8s %-9s %-22s %s\n", "KNOB", "KIND", "RESTART", "DEFAULT", "DESCRIPTION")
	for _, s := range specs {
		if *restartOnly && !s.RestartRequired {
			continue
		}
		restart := ""
		if s.RestartRequired {
			restart = "restart"
		}
		fmt.Printf("%-40s %-8s %-9s %-22s %s\n",
			s.Name, s.Kind, restart, s.FormatValue(s.Default), s.Description)
	}
}
