// Command hunter-bench stress-tests a single configuration against the
// simulated cloud database and prints the measured performance and a
// selection of the 63 collected metrics — the raw operation every tuning
// step performs.
//
//	hunter-bench -db mysql -workload tpcc
//	hunter-bench -workload sysbench-wo \
//	    -set innodb_buffer_pool_size=17179869184 -set innodb_flush_log_at_trx_commit=2
//
// Profiling: -pprof ADDR serves net/http/pprof on ADDR (e.g.
// localhost:6060) and samples Go runtime statistics into the telemetry
// gauges every second for the life of the process; -metrics-out and
// -report export the engine counters and the run summary.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/hunter-cdb/hunter/internal/cloud"
	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/workload"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		db       = flag.String("db", "mysql", "database dialect: mysql | postgres")
		wl       = flag.String("workload", "tpcc", "workload: tpcc | sysbench-ro | sysbench-wo | sysbench-rw | production")
		instance = flag.String("instance", "F", "instance type A..H")
		seed     = flag.Int64("seed", 1, "random seed")
		repeat   = flag.Int("repeat", 1, "run the stress test N times and report mean/stddev throughput")
		status   = flag.Bool("status", false, "dump the full SHOW STATUS metric snapshot")
		pprofOn  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) and sample runtime stats every second")
		mout     = flag.String("metrics-out", "", "write the counter/gauge exposition to this file")
		report   = flag.String("report", "", "write the run report (JSON) to this file")
		compress = flag.Bool("compress", false, "stress-test the compressed workload (production: clustered kernel; others: fractional measurement effort)")
		sets     multiFlag
	)
	flag.Var(&sets, "set", "override a knob: name=value (repeatable)")
	flag.Parse()

	var rec *telemetry.Recorder
	if *pprofOn != "" || *mout != "" || *report != "" {
		rec = telemetry.New()
	}
	if *pprofOn != "" {
		go func() {
			if err := http.ListenAndServe(*pprofOn, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		// Periodic runtime sampler: keeps the gauges fresh while a human
		// inspects /debug/pprof. Exits with the process.
		go func() {
			for range time.Tick(time.Second) {
				rec.CaptureRuntime()
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofOn)
	}

	dialect := simdb.MySQL
	if *db == "postgres" || *db == "postgresql" {
		dialect = simdb.Postgres
	}
	var p *workload.Profile
	switch *wl {
	case "tpcc":
		p = workload.TPCC()
	case "sysbench-ro":
		p = workload.SysbenchRO()
	case "sysbench-wo":
		p = workload.SysbenchWO()
	case "sysbench-rw":
		p = workload.SysbenchRW()
	case "production":
		p = workload.Production()
	default:
		fatalf("unknown workload %q", *wl)
	}
	if *compress {
		if *wl == "production" {
			k := workload.CompressProduction()
			p = k.Profile
			fmt.Fprintf(os.Stderr, "compressed kernel: %d trace clusters → %d classes (%.0f%% coverage), measure fraction %.2f\n",
				k.Clusters, k.Kept, 100*k.Coverage, p.MeasureFraction)
		} else {
			p = p.WithMeasureFraction(0.25)
		}
	}
	it, err := cloud.TypeByName(*instance)
	if err != nil {
		fatalf("%v", err)
	}
	eng, err := simdb.NewEngine(dialect, it.Resources(), *seed)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := eng.Catalog().Defaults()
	for _, s := range sets {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			fatalf("bad -set %q, want name=value", s)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			fatalf("bad -set value %q: %v", val, err)
		}
		if _, ok := eng.Catalog().Spec(name); !ok {
			fatalf("unknown knob %q for %s", name, dialect)
		}
		cfg[name] = v
	}
	if err := eng.Configure(cfg); err != nil {
		fatalf("instance failed to boot: %v", err)
	}
	eng.SetRecorder(rec)

	perf, mv, err := eng.Run(p)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s / %s on CDB_%s (%d cores, %d GB RAM)\n", dialect, p.Name, it.Name, it.Cores, it.RAMGB)
	fmt.Printf("  throughput: %9.0f txn/s (%8.0f txn/min)\n", perf.ThroughputTPS, perf.TPM())
	fmt.Printf("  latency:    avg %6.1f ms   p95 %6.1f ms   p99 %6.1f ms\n",
		perf.AvgLatencyMs, perf.P95LatencyMs, perf.P99LatencyMs)
	if w := eng.LastWarmupSeconds(); w > 0 {
		fmt.Printf("  buffer pool warm-up: %.1f s\n", w)
	}
	if *repeat > 1 {
		// Repeated runs share the engine, so buffer-pool state carries over
		// and each run redraws the measurement noise — the spread estimates
		// the simulator's NoiseStdDev as a client would observe it.
		tps := make([]float64, 0, *repeat)
		tps = append(tps, perf.ThroughputTPS)
		for i := 1; i < *repeat; i++ {
			rp, _, err := eng.Run(p)
			if err != nil {
				fatalf("%v", err)
			}
			tps = append(tps, rp.ThroughputTPS)
		}
		mean, sd := meanStddev(tps)
		fmt.Printf("  repeated %d×: throughput mean %9.0f txn/s  stddev %7.1f txn/s (%.2f%%)\n",
			*repeat, mean, sd, 100*sd/mean)
	}
	if err := exportTelemetry(rec, *mout, *report); err != nil {
		fatalf("%v", err)
	}
	if *status {
		fmt.Println("\nSHOW STATUS:")
		if err := metrics.FormatStatus(os.Stdout, mv); err != nil {
			fatalf("%v", err)
		}
		return
	}
	fmt.Println("\nselected status metrics (per execution window):")
	for _, i := range []int{
		metrics.BufferPoolReadRequests, metrics.BufferPoolReads,
		metrics.PagesWritten, metrics.DataFsyncs, metrics.LogWaits,
		metrics.RowLockWaits, metrics.LockDeadlocks,
		metrics.TransactionsCommitted, metrics.ThreadsRunning,
	} {
		fmt.Printf("  %-32s %14.0f\n", metrics.Name(i), mv[i])
	}
}

// exportTelemetry writes the requested telemetry artifacts. No-op when the
// recorder was never enabled.
func exportTelemetry(rec *telemetry.Recorder, metricsOut, reportOut string) error {
	if rec == nil {
		return nil
	}
	rec.CaptureParallel()
	rec.CaptureRuntime()
	write := func(path string, emit func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", path, err)
		}
		return f.Close()
	}
	if metricsOut != "" {
		if err := write(metricsOut, rec.WriteText); err != nil {
			return err
		}
	}
	if reportOut != "" {
		if err := write(reportOut, rec.WriteReport); err != nil {
			return err
		}
	}
	return nil
}

func meanStddev(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
