package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/hunter-cdb/hunter/internal/telemetry"
)

func loadReport(path string) (*telemetry.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep telemetry.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != telemetry.ReportSchema {
		return nil, fmt.Errorf("%s: schema %q is not %q", path, rep.Schema, telemetry.ReportSchema)
	}
	return &rep, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// inspectReport pretty-prints a run report: per-session virtual budgets
// and step totals, then counters and histogram summaries.
func inspectReport(w io.Writer, path string) error {
	rep, err := loadReport(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "report %s: %d session(s), %d span(s), wall %.2fs (machine-specific)\n",
		path, len(rep.Sessions), rep.Spans, rep.WallSeconds)
	for _, sr := range rep.Sessions {
		fmt.Fprintf(w, "\nsession %d: %s (finished=%v)\n", sr.ID, sr.Name, sr.Finished)
		fmt.Fprintf(w, "  virtual time: %.2fs\n", sr.VirtualSeconds)
		fmt.Fprintf(w, "  step breakdown:\n")
		type kv struct {
			name string
			sec  float64
		}
		rows := make([]kv, 0, len(sr.StepSeconds))
		for name, sec := range sr.StepSeconds {
			rows = append(rows, kv{name, sec})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].sec != rows[j].sec {
				return rows[i].sec > rows[j].sec
			}
			return rows[i].name < rows[j].name
		})
		for _, r := range rows {
			share := 0.0
			if sr.VirtualSeconds > 0 {
				share = r.sec / sr.VirtualSeconds * 100
			}
			fmt.Fprintf(w, "    %-24s %14.2fs %6.1f%%\n", r.name, r.sec, share)
		}
		if len(sr.Attrs) > 0 {
			fmt.Fprintf(w, "  attrs:\n")
			for _, k := range sortedKeys(sr.Attrs) {
				fmt.Fprintf(w, "    %-24s %g\n", k, sr.Attrs[k])
			}
		}
	}
	if len(rep.Counters) > 0 {
		fmt.Fprintf(w, "\ncounters:\n")
		for _, k := range sortedKeys(rep.Counters) {
			fmt.Fprintf(w, "  %-32s %d\n", k, rep.Counters[k])
		}
	}
	if len(rep.Histograms) > 0 {
		fmt.Fprintf(w, "\nhistograms (virtual seconds):\n")
		fmt.Fprintf(w, "  %-32s %8s %10s %10s %10s %10s\n", "name", "count", "p50", "p90", "p99", "max")
		for _, k := range sortedKeys(rep.Histograms) {
			h := rep.Histograms[k]
			fmt.Fprintf(w, "  %-32s %8d %10.3f %10.3f %10.3f %10.3f\n",
				k, h.Count, h.P50Seconds, h.P90Seconds, h.P99Seconds, h.MaxSeconds)
		}
	}
	return nil
}

// regression is one deterministic quantity that grew past tolerance. unit
// is the display suffix: "s" for virtual-time totals, "" for counts.
type regression struct {
	what       string
	base, next float64
	unit       string
}

// diffReports compares the deterministic cost totals of two reports:
// per-session virtual time and per-step totals (sessions matched by
// id+name). Wall time and gauges are machine-specific and deliberately
// ignored; counter changes are reported as notes. A duration that grew by
// more than tol (fractional) is a regression.
func diffReports(base, next *telemetry.Report, tol float64) (regressions []regression, notes []string) {
	sessions := make(map[string]telemetry.SessionReport, len(base.Sessions))
	for _, sr := range base.Sessions {
		sessions[fmt.Sprintf("%d/%s", sr.ID, sr.Name)] = sr
	}
	grew := func(b, n float64) bool { return n > b*(1+tol)+1e-9 }
	for _, nr := range next.Sessions {
		key := fmt.Sprintf("%d/%s", nr.ID, nr.Name)
		br, ok := sessions[key]
		if !ok {
			notes = append(notes, fmt.Sprintf("session %s only in new report", key))
			continue
		}
		if grew(br.VirtualSeconds, nr.VirtualSeconds) {
			regressions = append(regressions, regression{
				what: fmt.Sprintf("session %s virtual_seconds", key),
				base: br.VirtualSeconds, next: nr.VirtualSeconds, unit: "s",
			})
		}
		for _, step := range sortedKeys(nr.StepSeconds) {
			if grew(br.StepSeconds[step], nr.StepSeconds[step]) {
				regressions = append(regressions, regression{
					what: fmt.Sprintf("session %s step %s", key, step),
					base: br.StepSeconds[step], next: nr.StepSeconds[step], unit: "s",
				})
			}
		}
		delete(sessions, key)
	}
	for key := range sessions {
		notes = append(notes, fmt.Sprintf("session %s only in base report", key))
	}
	for _, k := range sortedKeys(next.Counters) {
		b, n := base.Counters[k], next.Counters[k]
		if b == n {
			continue
		}
		// Rollbacks are a safety outcome, not a cost: each one means the
		// online loop had to revert the serving instance. A run that rolls
		// back more than the base beyond tolerance is a regression even if
		// it spends the same virtual time.
		if k == "tuner.rollbacks" && grew(float64(b), float64(n)) {
			regressions = append(regressions, regression{
				what: fmt.Sprintf("counter %s", k),
				base: float64(b), next: float64(n),
			})
			continue
		}
		notes = append(notes, fmt.Sprintf("counter %s: %d -> %d", k, b, n))
	}
	for k := range base.Counters {
		if _, ok := next.Counters[k]; !ok {
			notes = append(notes, fmt.Sprintf("counter %s: only in base report", k))
		}
	}
	sort.Slice(regressions, func(i, j int) bool { return regressions[i].what < regressions[j].what })
	sort.Strings(notes)
	return regressions, notes
}

// runDiff is the `hunter-inspect diff` subcommand: exit 0 when the new
// report's deterministic totals are within tolerance of the base, 1 on
// regression, 2 on usage or load errors. Both run reports
// (hunter-report/v1) and fleet reports (hunter-fleet-report/v1) are
// accepted; the two files must be the same kind.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	tol := fs.Float64("tol", 0.01, "fractional tolerance before a grown total counts as a regression")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hunter-inspect diff [-tol F] <base.json> <new.json>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if isFleetReport(fs.Arg(0)) || isFleetReport(fs.Arg(1)) {
		return runFleetDiff(fs.Arg(0), fs.Arg(1), *tol)
	}
	base, err := loadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hunter-inspect:", err)
		return 2
	}
	next, err := loadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hunter-inspect:", err)
		return 2
	}
	regressions, notes := diffReports(base, next, *tol)
	return printDiff(regressions, notes, *tol, fs.Arg(0), fs.Arg(1))
}

// printDiff renders a diff outcome and maps it to the exit code contract.
func printDiff(regressions []regression, notes []string, tol float64, basePath, nextPath string) int {
	for _, n := range notes {
		fmt.Printf("note: %s\n", n)
	}
	if len(regressions) == 0 {
		fmt.Printf("ok: no cost regressions beyond %.1f%% (%s vs %s)\n",
			tol*100, basePath, nextPath)
		return 0
	}
	for _, r := range regressions {
		pct := 0.0
		if r.base > 0 {
			pct = (r.next/r.base - 1) * 100
		}
		fmt.Printf("REGRESSION: %s: %.3f%s -> %.3f%s (+%.1f%%)\n", r.what, r.base, r.unit, r.next, r.unit, pct)
	}
	fmt.Printf("%d regression(s) beyond %.1f%% tolerance\n", len(regressions), tol*100)
	return 1
}
