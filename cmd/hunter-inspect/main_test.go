package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/tuner"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// buildArtifacts runs a tiny real session and exports its trace, report
// and checkpoint — the inspector is tested against the real writers, not
// hand-rolled fixtures.
func buildArtifacts(t *testing.T) (tracePath, reportPath, ckptPath string) {
	t.Helper()
	dir := t.TempDir()
	rec := telemetry.New()
	s, err := tuner.NewSession(tuner.Request{
		Workload:   workload.TPCC(),
		Budget:     time.Hour,
		Clones:     2,
		Seed:       11,
		Recorder:   rec,
		Checkpoint: &tuner.CheckpointPolicy{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		batch := make([][]float64, len(s.Clones))
		for j := range batch {
			batch[j] = s.Space.Random(s.RNG)
		}
		if _, err := s.EvaluateBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteCheckpoint(nil); err != nil {
		t.Fatal(err)
	}
	tracePath = filepath.Join(dir, "trace.jsonl")
	tf, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteTrace(tf); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	reportPath = filepath.Join(dir, "report.json")
	rf, err := os.Create(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteReport(rf); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	return tracePath, reportPath, filepath.Join(dir, tuner.CheckpointFileName)
}

func TestDetectKind(t *testing.T) {
	tracePath, reportPath, ckptPath := buildArtifacts(t)
	cases := []struct {
		path string
		want fileKind
	}{
		{tracePath, kindTrace},
		{reportPath, kindReport},
		{ckptPath, kindCheckpoint},
	}
	for _, c := range cases {
		got, err := detectKind(c.path)
		if err != nil {
			t.Fatalf("detectKind(%s): %v", c.path, err)
		}
		if got != c.want {
			t.Fatalf("detectKind(%s) = %v, want %v", c.path, got, c.want)
		}
	}
	junk := filepath.Join(t.TempDir(), "junk.txt")
	os.WriteFile(junk, []byte("hello"), 0o644)
	if _, err := detectKind(junk); err == nil {
		t.Fatalf("detectKind accepted junk")
	}
}

func TestInspectTraceBreakdown(t *testing.T) {
	tracePath, _, _ := buildArtifacts(t)
	var sb strings.Builder
	if err := inspectTrace(&sb, tracePath); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The Table-1-style breakdown must attribute the dominant steps.
	for _, want := range []string{"step breakdown", "stress_wave", "warmup_stress", "clone_fleet", "wave timeline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestInspectReportAndCheckpoint(t *testing.T) {
	_, reportPath, ckptPath := buildArtifacts(t)
	var sb strings.Builder
	if err := inspectReport(&sb, reportPath); err != nil {
		t.Fatal(err)
	}
	if out := sb.String(); !strings.Contains(out, "step breakdown") ||
		!strings.Contains(out, "tuner.stress_waves") ||
		!strings.Contains(out, "histograms (virtual seconds)") {
		t.Fatalf("report output incomplete:\n%s", out)
	}
	sb.Reset()
	if err := inspectCheckpoint(&sb, ckptPath); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"integrity OK", "session", "provider", "telemetry", "resume point: wave 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("checkpoint output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffReports(t *testing.T) {
	base := &telemetry.Report{
		Schema: telemetry.ReportSchema,
		Sessions: []telemetry.SessionReport{{
			ID: 1, Name: "mysql/tpcc", VirtualSeconds: 100,
			StepSeconds: map[string]float64{"stress_wave": 80, "model_update": 20},
		}},
		Counters: map[string]int64{"tuner.stress_waves": 10},
	}
	clone := func() *telemetry.Report {
		data, _ := json.Marshal(base)
		var r telemetry.Report
		json.Unmarshal(data, &r) //nolint:errcheck
		return &r
	}

	// Identical reports: clean.
	if regs, notes := diffReports(base, clone(), 0.01); len(regs) != 0 || len(notes) != 0 {
		t.Fatalf("identical reports diff dirty: %v %v", regs, notes)
	}

	// Within tolerance: clean.
	next := clone()
	next.Sessions[0].StepSeconds["stress_wave"] = 80.5
	if regs, _ := diffReports(base, next, 0.01); len(regs) != 0 {
		t.Fatalf("within-tolerance growth flagged: %v", regs)
	}

	// A doubled phase cost must be flagged (the CI injection scenario).
	next = clone()
	next.Sessions[0].StepSeconds["stress_wave"] = 160
	regs, _ := diffReports(base, next, 0.01)
	if len(regs) != 1 || !strings.Contains(regs[0].what, "stress_wave") {
		t.Fatalf("doubled step not flagged: %v", regs)
	}

	// Shrinkage is not a regression.
	next = clone()
	next.Sessions[0].StepSeconds["stress_wave"] = 40
	if regs, _ := diffReports(base, next, 0.01); len(regs) != 0 {
		t.Fatalf("shrinkage flagged: %v", regs)
	}

	// Virtual total growth is flagged on its own.
	next = clone()
	next.Sessions[0].VirtualSeconds = 130
	regs, _ = diffReports(base, next, 0.01)
	if len(regs) != 1 || !strings.Contains(regs[0].what, "virtual_seconds") {
		t.Fatalf("virtual growth not flagged: %v", regs)
	}

	// Counter drift is a note, not a regression.
	next = clone()
	next.Counters["tuner.stress_waves"] = 12
	regs, notes := diffReports(base, next, 0.01)
	if len(regs) != 0 || len(notes) != 1 || !strings.Contains(notes[0], "10 -> 12") {
		t.Fatalf("counter drift handling wrong: %v %v", regs, notes)
	}
}

// TestRunDiffExitCodes drives the subcommand end to end through run(),
// including the injected-regression gate CI relies on.
func TestRunDiffExitCodes(t *testing.T) {
	_, reportPath, _ := buildArtifacts(t)
	dir := t.TempDir()

	// Same report on both sides: exit 0.
	if code := run([]string{"diff", reportPath, reportPath}); code != 0 {
		t.Fatalf("self-diff exit %d, want 0", code)
	}

	// Inject a phase-cost regression: exit 1.
	rep, err := loadReport(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	rep.Sessions[0].StepSeconds["stress_wave"] *= 2
	rep.Sessions[0].VirtualSeconds *= 1.5
	data, _ := json.Marshal(rep)
	regressed := filepath.Join(dir, "regressed.json")
	if err := os.WriteFile(regressed, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"diff", reportPath, regressed}); code != 1 {
		t.Fatalf("regressed diff exit %d, want 1", code)
	}
	if code := run([]string{"diff", "-tol", "0.02", reportPath, regressed}); code != 1 {
		t.Fatalf("regressed diff with -tol exit %d, want 1", code)
	}

	// Usage errors: exit 2.
	if code := run([]string{"diff", reportPath}); code != 2 {
		t.Fatalf("one-arg diff exit %d, want 2", code)
	}
	if code := run([]string{}); code != 2 {
		t.Fatalf("no-arg exit %d, want 2", code)
	}
	if code := run([]string{"diff", "/nonexistent.json", reportPath}); code != 2 {
		t.Fatalf("missing file diff exit %d, want 2", code)
	}

	// Analyze mode end to end: exit 0 on each artifact type.
	if code := run([]string{reportPath}); code != 0 {
		t.Fatalf("report analyze exit %d", code)
	}
}
