package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// traceLine is one JSONL record of a hunter-trace/v1 file. Unknown fields
// are ignored, so the analyzer keeps working across additive schema
// growth.
type traceLine struct {
	Type     string             `json:"type"`
	Schema   string             `json:"schema"`
	SID      int                `json:"sid"`
	Name     string             `json:"name"`
	Cat      string             `json:"cat"`
	VStartUS float64            `json:"v_start_us"`
	VDurUS   float64            `json:"v_dur_us"`
	WStartUS float64            `json:"w_start_us"`
	WDurUS   float64            `json:"w_dur_us"`
	Attrs    map[string]float64 `json:"attrs"`
}

// traceData is a fully parsed trace.
type traceData struct {
	sessions map[int]string
	order    []int
	spans    []traceLine
}

func parseTrace(r io.Reader) (*traceData, error) {
	td := &traceData{sessions: make(map[int]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var ln traceLine
		if err := json.Unmarshal([]byte(raw), &ln); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		switch ln.Type {
		case "header":
			if ln.Schema != "" && ln.Schema != "hunter-trace/v1" {
				return nil, fmt.Errorf("unsupported trace schema %q", ln.Schema)
			}
		case "session":
			if _, ok := td.sessions[ln.SID]; !ok {
				td.order = append(td.order, ln.SID)
			}
			td.sessions[ln.SID] = ln.Name
		case "span":
			td.spans = append(td.spans, ln)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(td.sessions) == 0 && len(td.spans) == 0 {
		return nil, fmt.Errorf("trace contains no sessions or spans")
	}
	return td, nil
}

func usToDur(us float64) time.Duration { return time.Duration(us * 1e3) }

func fmtDur(d time.Duration) string { return d.Round(time.Millisecond).String() }

// inspectTrace prints per-session step breakdowns (Table-1 style), phase
// attribution (virtual vs. wall) and the wave timeline with fault overlay.
func inspectTrace(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	td, err := parseTrace(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(w, "trace %s: %d session(s), %d span(s)\n", path, len(td.sessions), len(td.spans))
	for _, sid := range td.order {
		printSession(w, td, sid)
	}
	return nil
}

// stepAgg aggregates one step name within a session.
type stepAgg struct {
	name  string
	count int
	total time.Duration
}

func printSession(w io.Writer, td *traceData, sid int) {
	fmt.Fprintf(w, "\nsession %d: %s\n", sid, td.sessions[sid])

	// --- Table-1-style per-step cost breakdown (virtual time) ---
	steps := make(map[string]*stepAgg)
	var virtTotal time.Duration
	for _, sp := range td.spans {
		if sp.SID != sid || sp.Cat != "step" {
			continue
		}
		a := steps[sp.Name]
		if a == nil {
			a = &stepAgg{name: sp.Name}
			steps[sp.Name] = a
		}
		a.count++
		a.total += usToDur(sp.VDurUS)
		virtTotal += usToDur(sp.VDurUS)
	}
	aggs := make([]*stepAgg, 0, len(steps))
	for _, a := range steps {
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool {
		if aggs[i].total != aggs[j].total {
			return aggs[i].total > aggs[j].total
		}
		return aggs[i].name < aggs[j].name
	})
	fmt.Fprintf(w, "  step breakdown (virtual, total %s):\n", fmtDur(virtTotal))
	fmt.Fprintf(w, "    %-24s %8s %14s %7s\n", "step", "count", "virtual", "share")
	for _, a := range aggs {
		share := 0.0
		if virtTotal > 0 {
			share = float64(a.total) / float64(virtTotal) * 100
		}
		fmt.Fprintf(w, "    %-24s %8d %14s %6.1f%%\n", a.name, a.count, fmtDur(a.total), share)
	}

	// --- Phase attribution: virtual vs wall, critical path ---
	type phaseRow struct {
		name       string
		virt, wall time.Duration
		count      int
	}
	phaseIdx := make(map[string]*phaseRow)
	var phaseOrder []*phaseRow
	for _, sp := range td.spans {
		if sp.SID != sid || sp.Cat != "phase" {
			continue
		}
		p := phaseIdx[sp.Name]
		if p == nil {
			p = &phaseRow{name: sp.Name}
			phaseIdx[sp.Name] = p
			phaseOrder = append(phaseOrder, p)
		}
		p.count++
		p.virt += usToDur(sp.VDurUS)
		p.wall += usToDur(sp.WDurUS)
	}
	if len(phaseOrder) > 0 {
		fmt.Fprintf(w, "  phase attribution (critical path, in phase order):\n")
		fmt.Fprintf(w, "    %-24s %14s %14s %10s\n", "phase", "virtual", "wall", "speedup")
		for _, p := range phaseOrder {
			speedup := "-"
			if p.wall > 0 {
				speedup = fmt.Sprintf("%.0fx", float64(p.virt)/float64(p.wall))
			}
			fmt.Fprintf(w, "    %-24s %14s %14s %10s\n", p.name, fmtDur(p.virt), fmtDur(p.wall), speedup)
		}
	}

	// --- Wave timeline with fault/retry overlay ---
	type waveRow struct {
		start, dur time.Duration
		configs    int
		recorded   int
		faults     []string
	}
	var waves []waveRow
	var faults []traceLine // events that overlay onto waves
	faultNames := map[string]bool{
		"actor_crash": true, "actor_timeout": true, "actor_transient": true,
		"actor_error": true, "wave_partial": true, "actor_quarantined": true,
		"clone_replaced": true,
	}
	// Online-safety events overlay onto the timeline too. Unlike faults,
	// they fire in the gap after a wave (monitor probes, canaries and
	// deploys charge the clock between waves), so attachment below uses
	// half-open windows.
	safetyNames := map[string]bool{
		"deploy_canary": true, "online_deploy": true, "guardrail_block": true,
		"rollback": true, "slo_violation": true, "drift_detected": true,
		"workload_drift": true,
	}
	safetyCounts := make(map[string]int)
	var otherEvents int
	for _, sp := range td.spans {
		if sp.SID != sid {
			continue
		}
		switch {
		case sp.Cat == "step" && sp.Name == "stress_wave":
			waves = append(waves, waveRow{
				start:    usToDur(sp.VStartUS),
				dur:      usToDur(sp.VDurUS),
				configs:  int(sp.Attrs["configs"]),
				recorded: int(sp.Attrs["recorded"]),
			})
		case sp.Cat == "event" && faultNames[sp.Name]:
			faults = append(faults, sp)
		case sp.Cat == "event" && safetyNames[sp.Name]:
			safetyCounts[sp.Name]++
			faults = append(faults, sp)
		case sp.Cat == "event":
			otherEvents++
		}
	}
	// Attach each event to the wave owning the half-open window
	// [start_i, start_{i+1}): faults fire at the wave's end time, safety
	// events in the gap between a wave's end and the next wave's start.
	for _, ev := range faults {
		at := usToDur(ev.VStartUS)
		for i := range waves {
			next := at + time.Microsecond // last wave's window is open-ended
			if i+1 < len(waves) {
				next = waves[i+1].start
			}
			if at >= waves[i].start && at < next {
				tag := ev.Name
				if cfg, ok := ev.Attrs["config"]; ok {
					tag = fmt.Sprintf("%s(cfg %d)", ev.Name, int(cfg))
				}
				waves[i].faults = append(waves[i].faults, tag)
				break
			}
		}
	}
	if len(waves) > 0 {
		faulted := 0
		for _, wv := range waves {
			if len(wv.faults) > 0 {
				faulted++
			}
		}
		fmt.Fprintf(w, "  wave timeline: %d wave(s), %d with fault activity\n", len(waves), faulted)
		show := waves
		const maxRows = 40
		elided := 0
		if len(show) > maxRows {
			// Keep every faulted wave plus the first clean ones up to the cap.
			kept := make([]waveRow, 0, maxRows)
			for _, wv := range show {
				if len(wv.faults) > 0 || len(kept) < maxRows/2 {
					kept = append(kept, wv)
				} else {
					elided++
				}
			}
			show = kept
		}
		for i, wv := range show {
			marker := ""
			if len(wv.faults) > 0 {
				marker = "  !! " + strings.Join(wv.faults, ", ")
			}
			fmt.Fprintf(w, "    wave %4d  t=%-12s dur=%-10s configs=%d recorded=%d%s\n",
				i+1, fmtDur(wv.start), fmtDur(wv.dur), wv.configs, wv.recorded, marker)
		}
		if elided > 0 {
			fmt.Fprintf(w, "    ... %d clean wave(s) elided\n", elided)
		}
	}
	if len(safetyCounts) > 0 {
		var parts []string
		for _, name := range []string{
			"deploy_canary", "online_deploy", "guardrail_block",
			"rollback", "slo_violation", "drift_detected", "workload_drift",
		} {
			if n := safetyCounts[name]; n > 0 {
				parts = append(parts, fmt.Sprintf("%d %s", n, name))
			}
		}
		fmt.Fprintf(w, "  safety activity: %s\n", strings.Join(parts, ", "))
	}
	if otherEvents > 0 {
		fmt.Fprintf(w, "  other events: %d\n", otherEvents)
	}
}
