package main

import (
	"fmt"
	"io"

	"github.com/hunter-cdb/hunter/internal/checkpoint"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// inspectCheckpoint dumps a checkpoint container's section table (every
// section is CRC-verified by ReadFile) and the session bookkeeping a
// resume would start from.
func inspectCheckpoint(w io.Writer, path string) error {
	f, err := checkpoint.ReadFile(path)
	if err != nil {
		return err
	}
	names := f.Names()
	fmt.Fprintf(w, "checkpoint %s: %d section(s), integrity OK\n", path, len(names))
	fmt.Fprintf(w, "  %-16s %12s\n", "section", "bytes")
	var total int
	for _, name := range names {
		payload, err := f.Bytes(name)
		if err != nil {
			return err
		}
		total += len(payload)
		fmt.Fprintf(w, "  %-16s %12d\n", name, len(payload))
	}
	fmt.Fprintf(w, "  %-16s %12d\n", "(payload total)", total)
	wave, clock, err := tuner.PeekCheckpoint(path)
	if err != nil {
		return fmt.Errorf("reading session bookkeeping: %w", err)
	}
	fmt.Fprintf(w, "  resume point: wave %d, virtual clock %s\n", wave, clock)
	return nil
}
