package main

import (
	"fmt"
	"io"
	"strings"

	"github.com/hunter-cdb/hunter/internal/checkpoint"
	"github.com/hunter-cdb/hunter/internal/fleet"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// inspectCheckpoint dumps a checkpoint container's section table (every
// section is CRC-verified by ReadFile) and the resume bookkeeping — a
// single session's wave/clock, or for fleet snapshots (recognized by the
// fleet-meta section) the fleet's round, admission and reuse state.
func inspectCheckpoint(w io.Writer, path string) error {
	f, err := checkpoint.ReadFile(path)
	if err != nil {
		return err
	}
	names := f.Names()
	isFleet := f.Has("fleet-meta")
	fmt.Fprintf(w, "checkpoint %s: %d section(s), integrity OK\n", path, len(names))
	fmt.Fprintf(w, "  %-16s %12s\n", "section", "bytes")
	var total, tenantBytes, tenantSections int
	for _, name := range names {
		payload, err := f.Bytes(name)
		if err != nil {
			return err
		}
		total += len(payload)
		// A big fleet has hundreds of tenant sections; fold them into one
		// summary row instead of drowning the table.
		if isFleet && strings.HasPrefix(name, "tenant/") {
			tenantBytes += len(payload)
			tenantSections++
			continue
		}
		fmt.Fprintf(w, "  %-16s %12d\n", name, len(payload))
	}
	if tenantSections > 0 {
		fmt.Fprintf(w, "  %-16s %12d\n", fmt.Sprintf("tenant/* (%d)", tenantSections), tenantBytes)
	}
	fmt.Fprintf(w, "  %-16s %12d\n", "(payload total)", total)
	if isFleet {
		return inspectFleetCheckpoint(w, path)
	}
	wave, clock, err := tuner.PeekCheckpoint(path)
	if err != nil {
		return fmt.Errorf("reading session bookkeeping: %w", err)
	}
	fmt.Fprintf(w, "  resume point: wave %d, virtual clock %s\n", wave, clock)
	return nil
}

// inspectFleetCheckpoint prints a fleet snapshot's resume bookkeeping.
func inspectFleetCheckpoint(w io.Writer, path string) error {
	info, err := fleet.PeekCheckpoint(path)
	if err != nil {
		return fmt.Errorf("reading fleet bookkeeping: %w", err)
	}
	fmt.Fprintf(w, "  fleet snapshot: %d tenant(s), seed %d, reuse %v\n",
		info.Tenants, info.Seed, info.Reuse)
	fmt.Fprintf(w, "  resume point: round %d, next tenant %d, pool %s\n",
		info.Rounds, info.Next, info.Pool)
	fmt.Fprintf(w, "  progress: done %d  failed %d  tenant sections %d\n",
		info.Done, info.Failed, info.TenantSections)
	fmt.Fprintf(w, "  reuse: probes %d  hits %d  stores %d  shared models %d\n",
		info.ReuseProbes, info.ReuseHits, info.ReuseStores, info.StoreModels)
	return nil
}
