// Command hunter-inspect is the offline half of the introspection plane:
// it analyzes the artifacts a tuning run leaves behind — trace JSONL files
// (-trace), run reports (-report) and checkpoint files — without needing
// the process that produced them.
//
//	hunter-inspect <file>                  analyze a trace / report / checkpoint
//	hunter-inspect diff [-tol F] A.json B.json   compare two run reports
//
// The file kind is auto-detected: checkpoint container magic, the
// hunter-trace/v1 JSONL header, or a hunter-report/v1 JSON document. For a
// trace it prints per-phase cost attribution (virtual vs. wall), the
// Table-1-style per-step breakdown, and a wave timeline with fault/retry
// overlay. For a checkpoint it dumps the section table and the resume
// bookkeeping. diff compares the deterministic phase totals of two reports
// and exits non-zero when the new run regressed beyond the tolerance — the
// CI perf-regression gate.
package main

import (
	"bytes"
	"fmt"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	case "diff":
		return runDiff(args[1:])
	}
	if len(args) != 1 {
		usage()
		return 2
	}
	path := args[0]
	kind, err := detectKind(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hunter-inspect:", err)
		return 1
	}
	switch kind {
	case kindCheckpoint:
		err = inspectCheckpoint(os.Stdout, path)
	case kindTrace:
		err = inspectTrace(os.Stdout, path)
	case kindReport:
		err = inspectReport(os.Stdout, path)
	case kindFleetReport:
		err = inspectFleetReport(os.Stdout, path)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hunter-inspect:", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  hunter-inspect <file>                        analyze a trace JSONL, report.json or checkpoint
  hunter-inspect diff [-tol F] <base> <new>    compare two report.json files (exit 1 on regression)
`)
}

type fileKind int

const (
	kindCheckpoint fileKind = iota
	kindTrace
	kindReport
	kindFleetReport
)

// detectKind sniffs the artifact type: the checkpoint container magic
// (session and fleet snapshots share it; inspectCheckpoint branches on the
// fleet-meta section), the hunter-trace/v1 JSONL header, or a
// hunter-report/v1 / hunter-fleet-report/v1 JSON document.
func detectKind(path string) (fileKind, error) {
	head := make([]byte, 512)
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	n, _ := f.Read(head)
	f.Close()
	head = head[:n]
	switch {
	case n >= 8 && string(head[:8]) == "HTRCKPT1":
		return kindCheckpoint, nil
	case bytes.Contains(head, []byte(`"hunter-trace/v1"`)):
		return kindTrace, nil
	case bytes.Contains(head, []byte(`"hunter-fleet-report/v1"`)):
		return kindFleetReport, nil
	case bytes.Contains(head, []byte(`"hunter-report/v1"`)):
		return kindReport, nil
	}
	return 0, fmt.Errorf("%s: not a hunter checkpoint, trace or report", path)
}
