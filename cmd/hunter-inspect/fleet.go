package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/hunter-cdb/hunter/internal/fleet"
)

func loadFleetReport(path string) (*fleet.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep fleet.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != fleet.ReportSchema {
		return nil, fmt.Errorf("%s: schema %q is not %q", path, rep.Schema, fleet.ReportSchema)
	}
	return &rep, nil
}

// isFleetReport sniffs whether path holds a fleet report JSON document.
func isFleetReport(path string) bool {
	kind, err := detectKind(path)
	return err == nil && kind == kindFleetReport
}

// inspectFleetReport pretty-prints a fleet report: the fleet summary, a
// per-signature rollup (tenant families are the unit of model sharing),
// and the slowest tenants by virtual tuning time.
func inspectFleetReport(w io.Writer, path string) error {
	rep, err := loadFleetReport(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fleet report %s: %d tenant(s), seed %d, reuse %v, %d round(s)\n",
		path, rep.Tenants, rep.Seed, rep.Reuse, rep.Rounds)
	fmt.Fprintf(w, "  admitted %d  rejected %d  evicted %d  done %d  failed %d\n",
		rep.Admitted, rep.Rejected, rep.Evicted, rep.Done, rep.Failed)
	fmt.Fprintf(w, "  reuse: probes %d  hits %d  stores %d  hit rate %.4f\n",
		rep.ReuseProbes, rep.ReuseHits, rep.ReuseStores, rep.ReuseHitRate)
	fmt.Fprintf(w, "  total virtual tuning time %.0fs (%.1fh)  mean fitness %.4f  targets hit %d/%d\n",
		rep.TotalVirtualSeconds, rep.TotalVirtualSeconds/3600, rep.MeanFitness, rep.TargetsHit, rep.Done)

	type agg struct {
		n, done, warm, hit int
		fit, sec           float64
	}
	bySig := map[string]*agg{}
	for i := range rep.TenantResults {
		t := &rep.TenantResults[i]
		a := bySig[t.Signature]
		if a == nil {
			a = &agg{}
			bySig[t.Signature] = a
		}
		a.n++
		if t.Status == fleet.StatusDone {
			a.done++
			a.fit += t.Fitness
			a.sec += t.Elapsed.Seconds()
			if t.Reused {
				a.warm++
			}
			if t.TargetHit {
				a.hit++
			}
		}
	}
	fmt.Fprintf(w, "\nby workload signature:\n")
	fmt.Fprintf(w, "  %-26s %7s %6s %6s %8s %10s %10s\n",
		"signature", "tenants", "done", "warm", "targets", "mean fit", "virtual h")
	for _, sig := range sortedKeys(bySig) {
		a := bySig[sig]
		mean := 0.0
		if a.done > 0 {
			mean = a.fit / float64(a.done)
		}
		fmt.Fprintf(w, "  %-26s %7d %6d %6d %8d %10.4f %10.1f\n",
			sig, a.n, a.done, a.warm, a.hit, mean, a.sec/3600)
	}

	slow := make([]*fleet.TenantResult, 0, len(rep.TenantResults))
	for i := range rep.TenantResults {
		if t := &rep.TenantResults[i]; t.Status == fleet.StatusDone || t.Status == fleet.StatusFailed {
			slow = append(slow, t)
		}
	}
	sort.Slice(slow, func(i, j int) bool {
		if slow[i].Elapsed != slow[j].Elapsed {
			return slow[i].Elapsed > slow[j].Elapsed
		}
		return slow[i].ID < slow[j].ID
	})
	if len(slow) > 10 {
		slow = slow[:10]
	}
	fmt.Fprintf(w, "\nslowest tenants (virtual time):\n")
	for _, t := range slow {
		fmt.Fprintf(w, "  %s %-22s %-8s elapsed=%-16s steps=%-4d fit=%.4f\n",
			t.Name, t.Signature, t.Status, t.Elapsed, t.Steps, t.Fitness)
	}
	return nil
}

// diffFleetReports compares two fleet reports: per-tenant virtual time
// (matched by id+name) and the fleet's total are the regression gate;
// status flips, fitness movement and reuse-economics changes are notes.
func diffFleetReports(base, next *fleet.Report, tol float64) (regressions []regression, notes []string) {
	grew := func(b, n float64) bool { return n > b*(1+tol)+1e-9 }
	prev := make(map[string]*fleet.TenantResult, len(base.TenantResults))
	for i := range base.TenantResults {
		t := &base.TenantResults[i]
		prev[fmt.Sprintf("%d/%s", t.ID, t.Name)] = t
	}
	for i := range next.TenantResults {
		nt := &next.TenantResults[i]
		key := fmt.Sprintf("%d/%s", nt.ID, nt.Name)
		bt, ok := prev[key]
		if !ok {
			notes = append(notes, fmt.Sprintf("tenant %s only in new report", key))
			continue
		}
		if bt.Status != nt.Status {
			notes = append(notes, fmt.Sprintf("tenant %s status: %s -> %s", key, bt.Status, nt.Status))
		}
		if grew(bt.Elapsed.Seconds(), nt.Elapsed.Seconds()) {
			regressions = append(regressions, regression{
				what: fmt.Sprintf("tenant %s virtual_seconds", key),
				base: bt.Elapsed.Seconds(), next: nt.Elapsed.Seconds(),
			})
		}
		delete(prev, key)
	}
	for key := range prev {
		notes = append(notes, fmt.Sprintf("tenant %s only in base report", key))
	}
	if grew(base.TotalVirtualSeconds, next.TotalVirtualSeconds) {
		regressions = append(regressions, regression{
			what: "fleet total_virtual_seconds",
			base: base.TotalVirtualSeconds, next: next.TotalVirtualSeconds,
		})
	}
	if base.MeanFitness != next.MeanFitness {
		notes = append(notes, fmt.Sprintf("mean fitness: %.4f -> %.4f", base.MeanFitness, next.MeanFitness))
	}
	if base.ReuseHitRate != next.ReuseHitRate {
		notes = append(notes, fmt.Sprintf("reuse hit rate: %.4f -> %.4f", base.ReuseHitRate, next.ReuseHitRate))
	}
	if base.Done != next.Done || base.Failed != next.Failed {
		notes = append(notes, fmt.Sprintf("done/failed: %d/%d -> %d/%d",
			base.Done, base.Failed, next.Done, next.Failed))
	}
	sort.Slice(regressions, func(i, j int) bool { return regressions[i].what < regressions[j].what })
	sort.Strings(notes)
	return regressions, notes
}

// runFleetDiff is `hunter-inspect diff` over two fleet reports.
func runFleetDiff(basePath, nextPath string, tol float64) int {
	base, err := loadFleetReport(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hunter-inspect:", err)
		return 2
	}
	next, err := loadFleetReport(nextPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hunter-inspect:", err)
		return 2
	}
	regressions, notes := diffFleetReports(base, next, tol)
	return printDiff(regressions, notes, tol, basePath, nextPath)
}
