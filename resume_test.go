package hunter_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/hunter-cdb/hunter"
)

// TestTuneStopAndResume drives the public kill-and-resume path: a run
// with StopAfterWaves checkpoints and stops, and Resume continues it to
// the same result an uninterrupted run produces.
func TestTuneStopAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning runs")
	}
	req := hunter.Request{
		Dialect:  hunter.MySQL,
		Workload: hunter.TPCC(),
		Budget:   90 * time.Minute,
		Clones:   2,
		Seed:     5,
	}

	golden, err := hunter.Tune(req)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	stopped := req
	stopped.Workload = hunter.TPCC()
	stopped.Checkpoint = &hunter.CheckpointPolicy{Dir: dir, StopAfterWaves: 4}
	if _, err := hunter.Tune(stopped); !errors.Is(err, hunter.ErrStopRequested) {
		t.Fatalf("want ErrStopRequested, got %v", err)
	}
	wave, clock, err := hunter.PeekCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if wave < 4 || clock <= 0 {
		t.Fatalf("checkpoint at wave %d, clock %v", wave, clock)
	}

	resumed := req
	resumed.Workload = hunter.TPCC()
	resumed.Checkpoint = &hunter.CheckpointPolicy{Dir: dir}
	res, err := hunter.Resume(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, golden) {
		t.Errorf("resumed result differs from uninterrupted run\ngolden:  %+v\nresumed: %+v", golden, res)
	}

	// Resume without a checkpoint policy must fail up front.
	if _, err := hunter.Resume(req); err == nil {
		t.Error("Resume without Checkpoint.Dir accepted")
	}
}
