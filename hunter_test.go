package hunter_test

import (
	"context"
	"testing"
	"time"

	"github.com/hunter-cdb/hunter"
)

func TestTuneQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning run")
	}
	res, err := hunter.Tune(hunter.Request{
		Dialect:  hunter.MySQL,
		Workload: hunter.TPCC(),
		Budget:   8 * time.Hour,
		Clones:   2,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness <= 0.2 {
		t.Errorf("fitness %.3f too low for an 8-hour run", res.Fitness)
	}
	if res.BestPerf.ThroughputTPS <= res.DefaultPerf.ThroughputTPS {
		t.Error("recommended config does not beat default throughput")
	}
	if res.Steps <= 0 || res.Elapsed <= 0 || len(res.Curve) == 0 {
		t.Errorf("result incomplete: %+v", res)
	}
	if res.RecommendationTime > res.Elapsed {
		t.Error("recommendation time after end of run")
	}
	if res.CompressedStateDim <= 0 || len(res.TopKnobs) == 0 {
		t.Error("optimizer diagnostics missing")
	}
	for _, name := range res.TopKnobs {
		if _, ok := res.Best[name]; !ok {
			t.Errorf("recommended config missing sifted knob %q", name)
		}
	}
}

func TestTuneValidation(t *testing.T) {
	if _, err := hunter.Tune(hunter.Request{}); err == nil {
		t.Fatal("request without workload should fail")
	}
}

func TestTuneRespectsRules(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning run")
	}
	rules := hunter.NewRules().
		Fix("innodb_adaptive_hash_index", 0).
		Range("innodb_buffer_pool_size", 1<<30, 4<<30)
	res, err := hunter.Tune(hunter.Request{
		Dialect:  hunter.MySQL,
		Workload: hunter.SysbenchRW(),
		Rules:    rules,
		Budget:   5 * time.Hour,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best["innodb_adaptive_hash_index"] != 0 {
		t.Error("fixed knob violated in recommendation")
	}
	if bp := res.Best["innodb_buffer_pool_size"]; bp < 1<<30 || bp > 4<<30 {
		t.Errorf("range rule violated: buffer pool %.0f", bp)
	}
}

func TestTuneContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A cancelled context stops the run immediately; with no samples the
	// deploy step must fail cleanly rather than panic.
	_, err := hunter.TuneContext(ctx, hunter.Request{
		Dialect:  hunter.MySQL,
		Workload: hunter.TPCC(),
		Budget:   time.Hour,
		Seed:     3,
	})
	if err == nil {
		t.Fatal("cancelled-before-start run should error (nothing to deploy)")
	}
}

func TestCatalogExposure(t *testing.T) {
	my := hunter.Catalog(hunter.MySQL)
	pg := hunter.Catalog(hunter.Postgres)
	if len(my) != 70 || len(pg) != 70 {
		t.Fatalf("catalog sizes %d/%d, want 70/70", len(my), len(pg))
	}
	if _, err := hunter.InstanceTypeByName("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := hunter.InstanceTypeByName("?"); err == nil {
		t.Fatal("unknown type should error")
	}
	ct := hunter.CustomInstanceType("x", 2, 4)
	if ct.Cores != 2 {
		t.Fatal("custom type wrong")
	}
}

func TestWorkloadConstructors(t *testing.T) {
	for _, w := range []*hunter.Workload{
		hunter.TPCC(), hunter.SysbenchRO(), hunter.SysbenchWO(),
		hunter.SysbenchRW(), hunter.Production(), hunter.SysbenchRWRatio(4, 1),
	} {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}
