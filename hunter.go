// Package hunter is the public API of the HUNTER reproduction: an online
// cloud-database hybrid tuning system (Cai et al., SIGMOD '22). It tunes
// the configuration knobs of a (simulated) MySQL or PostgreSQL cloud
// database for a user's workload under personalized Rules, combining a
// genetic-algorithm Sample Factory, a PCA + Random-Forest Search Space
// Optimizer, and a DDPG Recommender with the Fast Exploration Strategy,
// all exploring on cloned instances so the user's database stays
// undisturbed until the final verified configuration is deployed.
//
// Quick start:
//
//	result, err := hunter.Tune(hunter.Request{
//		Dialect:  hunter.MySQL,
//		Workload: hunter.TPCC(),
//		Budget:   8 * time.Hour, // virtual time
//		Clones:   5,
//	})
//
// The returned Result carries the recommended configuration, its measured
// performance, and the full best-so-far curve.
package hunter

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"time"

	"github.com/hunter-cdb/hunter/internal/chaos"
	"github.com/hunter-cdb/hunter/internal/cloud"
	"github.com/hunter-cdb/hunter/internal/core"
	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/obsv"
	"github.com/hunter-cdb/hunter/internal/safety"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/tuner"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// Dialect selects the database flavour.
type Dialect = simdb.Dialect

// Supported dialects.
const (
	MySQL    = simdb.MySQL
	Postgres = simdb.Postgres
)

// Rules are the user's personalized tuning restrictions: fixed knobs,
// narrowed ranges, conditional constraints and the throughput/latency
// preference α.
type Rules = knob.Rules

// NewRules returns an empty, unrestricted rule set.
func NewRules() *Rules { return knob.NewRules() }

// Comparison operators for conditional rules.
const (
	OpGT = knob.OpGT
	OpLT = knob.OpLT
	OpEQ = knob.OpEQ
)

// Config is a knob assignment.
type Config = knob.Config

// Perf is a measured performance (throughput, latency percentiles).
type Perf = simdb.Perf

// Workload is a stress-test workload profile.
type Workload = workload.Profile

// Built-in workloads (Table 2).
func TPCC() *Workload       { return workload.TPCC() }
func SysbenchRO() *Workload { return workload.SysbenchRO() }
func SysbenchWO() *Workload { return workload.SysbenchWO() }
func SysbenchRW() *Workload { return workload.SysbenchRW() }
func Production() *Workload { return workload.Production() }

// ProductionDrifted is the 21:00 capture of the Production workload — the
// drift target of Figure 10.
func ProductionDrifted() *Workload { return workload.ProductionDrifted() }

// CompressedProduction is the Production workload compressed into a
// representative kernel: its query classes clustered by access signature
// with per-cluster weights, evaluated at a fraction of the full trace's
// stress-test cost with bounded fidelity loss. This is what -compress
// selects in the CLIs.
func CompressedProduction() *Workload { return workload.CompressProduction().Profile }

// CompressWorkload returns a copy of w whose stress-test measurement
// effort is scaled to fraction ∈ (0,1] — the compression mode for
// synthetic benchmarks whose mix is already compact. Trace-backed
// workloads should use CompressedProduction, which also collapses the mix.
func CompressWorkload(w *Workload, fraction float64) *Workload {
	return w.WithMeasureFraction(fraction)
}

// SysbenchRWRatio returns a read/write mix with the given transaction
// ratio (the Figure 13 workloads are 4:1 and 1:1).
func SysbenchRWRatio(read, write float64) *Workload {
	return workload.SysbenchRWRatio(read, write)
}

// InstanceType is a cloud instance size (Table 7 lists A–H).
type InstanceType = cloud.InstanceType

// InstanceTypeByName resolves one of the Table 7 sizes by letter.
func InstanceTypeByName(name string) (InstanceType, error) { return cloud.TypeByName(name) }

// CustomInstanceType builds an ad-hoc size.
func CustomInstanceType(name string, cores, ramGB int) InstanceType {
	return cloud.CustomType(name, cores, ramGB)
}

// ReuseRegistry stores trained Recommender models for the online
// model-reuse scheme; share one registry across Tune calls to enable it.
type ReuseRegistry = core.ReuseRegistry

// NewReuseRegistry returns an empty model registry.
func NewReuseRegistry() *ReuseRegistry { return core.NewReuseRegistry() }

// Recorder collects telemetry for tuning runs: virtual-clock span traces,
// counters and gauges from the simulator, the cloud control plane and the
// tuner, and exporters (JSONL/Chrome traces, a text exposition, a JSON run
// report). Share one recorder across Tune calls to aggregate a whole
// experiment; a nil recorder disables telemetry at zero cost. Recording is
// passive: enabling it never changes tuning results.
type Recorder = telemetry.Recorder

// NewRecorder returns an enabled, empty telemetry recorder.
func NewRecorder() *Recorder { return telemetry.New() }

// ChaosPlan arms deterministic fault injection on the simulated cloud: a
// seed and a fault profile. The fault stream is a pure function of the
// tuning seed and the chaos seed, so a plan reproduces exactly — across
// runs, worker counts, and checkpoint resumes. Nil (or the "off" profile)
// disables injection, leaving every byte of output unchanged.
type ChaosPlan = chaos.Plan

// ChaosProfile describes a fault environment (probabilities per hook
// point plus the self-healing policy knobs).
type ChaosProfile = chaos.Profile

// ChaosProfileByName resolves a built-in fault profile: "off", "mild",
// "flaky" or "catastrophic".
func ChaosProfileByName(name string) (ChaosProfile, error) { return chaos.ProfileByName(name) }

// ChaosProfiles lists the built-in fault profile names.
func ChaosProfiles() []string { return chaos.Profiles() }

// ResilienceReport summarizes a run's fault history — what the chaos plan
// injected and how the self-healing loop responded (retries, backoff
// time, timeouts, lost samples, replacement clones, quarantined actors,
// partial waves).
type ResilienceReport = tuner.ResilienceReport

// ErrFleetLost reports that every cloned CDB was lost to faults: tuning
// could not continue, and the result falls back to the user instance's
// baseline configuration.
var ErrFleetLost = tuner.ErrFleetLost

// SessionStatus is a point-in-time view of a running tuning session:
// phase, wave, virtual-time progress, best objective, and (when chaos is
// armed) the resilience tallies so far. Statuses are published to a
// StatusSink; they never feed back into the tuner.
type SessionStatus = tuner.SessionStatus

// StatusSink receives SessionStatus updates at phase changes and wave
// boundaries. Publishing is passive: a sink never changes tuning results.
type StatusSink = tuner.StatusSink

// StatusRegistry collects SessionStatus updates from one or more sessions
// and answers the introspection server's /status and /sessions queries.
// It is the StatusSink to pass in Request.Status.
type StatusRegistry = obsv.Registry

// NewStatusRegistry returns an empty session status registry.
func NewStatusRegistry() *StatusRegistry { return obsv.NewRegistry() }

// IntrospectionServer serves the live introspection plane over HTTP:
// /metrics (Prometheus-style text exposition), /status and /sessions
// (JSON), and /events (live SSE stream, or a JSONL dump with ?follow=0).
// Serving reads consistent snapshots under the recorder's locks and never
// perturbs tuning results.
type IntrospectionServer = obsv.Server

// NewIntrospectionServer builds an introspection server over a recorder
// and a status registry (either may be nil; the matching endpoints then
// serve empty data). Call Start("127.0.0.1:0") to begin serving.
func NewIntrospectionServer(rec *Recorder, reg *StatusRegistry) *IntrospectionServer {
	return obsv.NewServer(rec, reg)
}

// SafetyOptions configures the online safe-tuning loop: guardrails
// (canary gate, trust region, rollback), SLO objectives (p99 ceiling,
// throughput floor), the rolling-baseline margin, the monitor/deploy
// cadence, and drift detection. Zero-valued fields take documented
// defaults.
type SafetyOptions = safety.Options

// SafetyReport summarizes a run's online safety loop: canary waves, online
// deploys, guardrail blocks, rollbacks, SLO violations, detected drifts,
// quarantined regions and what ended up deployed.
type SafetyReport = tuner.SafetyReport

// MonitorPoint is one probe of the deployed configuration's performance on
// the serving instance — the deployed-config timeline of a safe run.
type MonitorPoint = tuner.MonitorPoint

// DriftStream describes a seeded, deterministic stream of workload drifts
// (diurnal cycles, flash crowds, schema/hot-set growth) expanded against
// the request workload and fired through the virtual clock.
type DriftStream = workload.StreamSpec

// DriftEvent is one scheduled profile shift of an expanded drift stream.
type DriftEvent = workload.DriftEvent

// Drift stream kinds.
const (
	StreamDiurnal = workload.StreamDiurnal
	StreamFlash   = workload.StreamFlash
	StreamGrowth  = workload.StreamGrowth
)

// DriftStreamKinds lists the built-in drift stream kinds.
func DriftStreamKinds() []string { return workload.StreamKinds() }

// GenerateDriftStream expands a stream spec against a base workload into
// its ordered drift events (the same expansion Tune performs for
// Request.DriftStream).
func GenerateDriftStream(base *Workload, spec DriftStream) ([]DriftEvent, error) {
	return workload.GenerateStream(base, spec)
}

// Request describes one tuning request (§2.1): what to tune, with which
// workload, under which rules, for how long, and how many cloned CDBs to
// explore with.
type Request struct {
	Dialect  Dialect
	Type     InstanceType // zero value: type F (8 cores / 32 GB)
	Workload *Workload
	// Knobs lists the knobs to initialize for tuning; empty selects the
	// DBA's 65-knob set for the dialect.
	Knobs []string
	Rules *Rules
	// Budget is the tuning time budget in virtual time (default 70 h).
	Budget time.Duration
	// Clones is the parallelization degree (HUNTER-N; default 1).
	Clones int
	Seed   int64

	// Registry enables online model reuse when non-nil.
	Registry *ReuseRegistry

	// DriftAfter and DriftTo schedule a workload drift (§5): once the
	// virtual clock passes DriftAfter, stress tests switch to DriftTo,
	// the baseline is re-measured and best-so-far tracking restarts —
	// while the tuner keeps its learned state.
	DriftAfter time.Duration
	DriftTo    *Workload

	// DriftStream schedules a whole sequence of drifts expanded from the
	// request workload (see GenerateDriftStream); it composes with
	// DriftAfter/DriftTo. With Safety set the switches are silent — the
	// run only learns of them through the guard's drift detection.
	DriftStream *DriftStream

	// Safety arms the online safe-tuning loop: candidates deploy to the
	// user's instance *during* the run behind canary measurement, trust
	// region and rolling-baseline guardrails, with SLO monitoring and
	// automatic rollback (see SafetyOptions). Nil keeps the classic batch
	// behaviour: one deploy at the end.
	Safety *SafetyOptions

	// Logger receives structured progress events (session setup,
	// best-so-far improvements, drift, deployment). Nil disables logging.
	Logger *slog.Logger

	// Recorder receives spans, counters and gauges for the run. Nil
	// disables telemetry.
	Recorder *Recorder

	// Status receives live SessionStatus updates (phase changes, wave
	// boundaries, completion) — typically a StatusRegistry backing an
	// IntrospectionServer. Nil disables status publishing.
	Status StatusSink

	// Checkpoint enables durable snapshots of the whole run (session,
	// simulated fleet, learned models, telemetry) at stress-wave
	// boundaries. A killed run continues from its last snapshot with
	// Resume, bit-identically to an uninterrupted run. Nil disables
	// checkpointing.
	Checkpoint *CheckpointPolicy

	// Chaos arms deterministic fault injection (crashes, stragglers,
	// transient control-plane errors…) and the self-healing loop that
	// survives it. Nil disables injection.
	Chaos *ChaosPlan

	// Eval selects opt-in evaluation-cost optimizations (wave dedup,
	// warm-state deltas). Nil keeps them off, with output byte-identical
	// to the unoptimized path.
	Eval *EvalOptions

	// Advanced: module toggles for ablation studies.
	DisableGA, DisablePCA, DisableRF, DisableFES bool
}

// EvalOptions selects the evaluation-cost optimizations of a run: wave
// dedup (byte-identical configurations in a batch stress-tested once) and
// warm-state deltas (pool-shape and LRU-policy reconfigurations adjust
// the warm buffer pool in place instead of rebuilding it).
type EvalOptions = tuner.EvalOptions

// CheckpointPolicy configures durable run snapshots: the directory the
// checkpoint file lives in, how many stress waves pass between snapshots,
// and an optional stop-after-wave for controlled interruption tests.
type CheckpointPolicy = tuner.CheckpointPolicy

// ErrStopRequested reports that a run checkpointed and stopped because
// CheckpointPolicy.StopAfterWaves was reached; continue it with Resume.
var ErrStopRequested = tuner.ErrStopRequested

// CheckpointFileName is the snapshot file maintained inside a checkpoint
// directory.
const CheckpointFileName = tuner.CheckpointFileName

// PeekCheckpoint reports the wave and virtual-clock reading a checkpoint
// directory's snapshot was taken at, verifying the file's integrity.
func PeekCheckpoint(dir string) (wave int, clock time.Duration, err error) {
	return tuner.PeekCheckpoint(filepath.Join(dir, CheckpointFileName))
}

// Result is the outcome of a tuning run.
type Result struct {
	// Best is the recommended configuration, deployed on the user's
	// instance at the end of the run.
	Best Config
	// BestPerf is its measured performance on a cloned instance.
	BestPerf Perf
	// DefaultPerf is the default configuration's performance (baseline).
	DefaultPerf Perf
	// Fitness is the Eq. 1 score of Best against DefaultPerf.
	Fitness float64
	// RecommendationTime is the virtual time at which the tuner first
	// reached 98% of its final fitness.
	RecommendationTime time.Duration
	// Elapsed is the total virtual time consumed.
	Elapsed time.Duration
	// Steps is the number of stress-tested configurations.
	Steps int
	// Curve is the best-so-far trajectory.
	Curve []CurvePoint
	// TopKnobs are the knobs RF sifting selected for fine tuning.
	TopKnobs []string
	// CompressedStateDim is the PCA dimension chosen.
	CompressedStateDim int
	// ReusedModel reports whether a historical model was fine-tuned.
	ReusedModel bool
	// Resilience is the fault summary of a run with a chaos plan armed
	// (nil otherwise). When the whole clone fleet was lost, Best is the
	// baseline configuration rather than a tuned one and the call also
	// returns ErrFleetLost.
	Resilience *ResilienceReport
	// Safety is the online safety loop's summary (nil without
	// Request.Safety). In a safe run Best/BestPerf describe what the loop
	// left deployed on the user instance, not a final batch deploy.
	Safety *SafetyReport
	// DeployedTimeline is the deployed-config monitoring timeline of a
	// safe run (nil otherwise).
	DeployedTimeline []MonitorPoint
}

// CurvePoint is one best-so-far improvement.
type CurvePoint struct {
	Time time.Duration
	Perf Perf
	Step int
}

// Tune runs HUNTER on a request and returns the result.
func Tune(req Request) (*Result, error) { return TuneContext(context.Background(), req) }

// TuneContext is Tune with cancellation. Cancelling the context stops the
// run at the next stress-test boundary; the best configuration found so
// far is still returned.
func TuneContext(ctx context.Context, req Request) (*Result, error) {
	if req.Workload == nil {
		return nil, fmt.Errorf("hunter: request needs a workload")
	}
	s, err := tuner.NewSessionContext(ctx, toTunerRequest(req))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if req.DriftTo != nil {
		if err := s.ScheduleDrift(req.DriftAfter, req.DriftTo); err != nil {
			return nil, err
		}
	}
	if req.DriftStream != nil {
		events, err := workload.GenerateStream(req.Workload, *req.DriftStream)
		if err != nil {
			return nil, err
		}
		for _, ev := range events {
			if err := s.ScheduleDrift(ev.At, ev.Profile); err != nil {
				return nil, err
			}
		}
	}
	h := newCore(req)
	if err := h.Tune(s); err != nil {
		if errors.Is(err, ErrFleetLost) {
			return baselineResult(s), err
		}
		return nil, err
	}
	return finish(s, h)
}

// Resume continues a checkpointed run from the snapshot in the request's
// Checkpoint.Dir. The request must describe the same run the checkpoint
// came from (same workload, seed, clones, budget, rules…) and the resumed
// run proceeds bit-identically to one that was never interrupted.
func Resume(req Request) (*Result, error) { return ResumeContext(context.Background(), req) }

// ResumeContext is Resume with cancellation.
func ResumeContext(ctx context.Context, req Request) (*Result, error) {
	if req.Workload == nil {
		return nil, fmt.Errorf("hunter: request needs a workload")
	}
	if req.Checkpoint == nil || req.Checkpoint.Dir == "" {
		return nil, fmt.Errorf("hunter: Resume needs Checkpoint.Dir")
	}
	path := filepath.Join(req.Checkpoint.Dir, CheckpointFileName)
	s, f, err := tuner.ResumeSession(ctx, toTunerRequest(req), path)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	// The drift queue rides the checkpoint; verify it matches the schedule
	// this request would program on a fresh run, so a resume cannot
	// silently continue under different drift plans.
	expected := make([]DriftEvent, 0, 8)
	if req.DriftTo != nil {
		expected = append(expected, DriftEvent{At: req.DriftAfter, Profile: req.DriftTo})
	}
	if req.DriftStream != nil {
		events, serr := workload.GenerateStream(req.Workload, *req.DriftStream)
		if serr != nil {
			return nil, serr
		}
		expected = append(expected, events...)
	}
	if err := s.VerifyScheduledDrifts(expected); err != nil {
		return nil, err
	}
	h := newCore(req)
	if err := h.ResumeTune(s, f); err != nil {
		if errors.Is(err, ErrFleetLost) {
			return baselineResult(s), err
		}
		return nil, err
	}
	return finish(s, h)
}

// toTunerRequest lowers the public request into the session request.
func toTunerRequest(req Request) tuner.Request {
	return tuner.Request{
		Dialect:    req.Dialect,
		Type:       req.Type,
		Workload:   req.Workload,
		KnobNames:  req.Knobs,
		Rules:      req.Rules,
		Budget:     req.Budget,
		Clones:     req.Clones,
		Seed:       req.Seed,
		Logger:     req.Logger,
		Recorder:   req.Recorder,
		Status:     req.Status,
		Checkpoint: req.Checkpoint,
		Chaos:      req.Chaos,
		Eval:       req.Eval,
		Safety:     req.Safety,
	}
}

// newCore builds the hybrid tuner from the public request.
func newCore(req Request) *core.Hunter {
	opts := core.Options{
		DisableGA:  req.DisableGA,
		DisablePCA: req.DisablePCA,
		DisableRF:  req.DisableRF,
		DisableFES: req.DisableFES,
	}
	// Options.Registry is an interface; assigning a nil *ReuseRegistry
	// directly would produce a non-nil interface that the phase machine
	// would then probe (and panic on).
	if req.Registry != nil {
		opts.Registry = req.Registry
	}
	return core.New(opts)
}

// finish assembles the result. A batch run deploys the best verified
// configuration now; a safe online run already deployed during tuning, so
// the result reports what the safety loop left on the user instance.
func finish(s *tuner.Session, h *core.Hunter) (*Result, error) {
	recTime, _ := s.Curve().RecommendationTime(s.DefaultPerf, s.Alpha, 0.98)
	res := &Result{
		DefaultPerf:        s.DefaultPerf,
		RecommendationTime: recTime,
		Elapsed:            s.Elapsed(),
		Steps:              s.Steps(),
		TopKnobs:           h.TopKnobs(),
		CompressedStateDim: h.PCADim(),
		ReusedModel:        h.Reused(),
		Resilience:         s.Resilience(),
	}
	if cfg, perf, fit, ok := s.OnlineDeployed(); ok {
		res.Best, res.BestPerf, res.Fitness = cfg, perf, fit
		res.Safety = s.Safety()
		res.DeployedTimeline = s.DeployedTimeline()
	} else {
		best, err := s.DeployBest()
		if err != nil {
			return nil, err
		}
		res.Best, res.BestPerf, res.Fitness = best.Knobs, best.Perf, s.Fitness(best.Perf)
	}
	for _, p := range s.Curve() {
		res.Curve = append(res.Curve, CurvePoint{Time: p.Time, Perf: p.Perf, Step: p.Step})
	}
	return res, nil
}

// baselineResult is the fleet-lost fallback: with no clones left to
// verify candidates on, the safe outcome is the user instance's current
// (baseline) configuration and its measured default performance. The
// best-so-far curve up to the collapse is preserved for diagnosis.
func baselineResult(s *tuner.Session) *Result {
	res := &Result{
		Best:        s.User.Config(),
		BestPerf:    s.DefaultPerf,
		DefaultPerf: s.DefaultPerf,
		Fitness:     s.Fitness(s.DefaultPerf),
		Elapsed:     s.Elapsed(),
		Steps:       s.Steps(),
		Resilience:  s.Resilience(),
		Safety:      s.Safety(),
	}
	for _, p := range s.Curve() {
		res.Curve = append(res.Curve, CurvePoint{Time: p.Time, Perf: p.Perf, Step: p.Step})
	}
	return res
}

// Catalog returns the knob catalog for a dialect (name, kind, range,
// default, restart requirement of every knob).
func Catalog(d Dialect) []knob.Spec {
	if d == Postgres {
		return knob.Postgres().Specs()
	}
	return knob.MySQL().Specs()
}

// WriteConfigFile renders a configuration in the dialect's native
// configuration-file syntax (a my.cnf [mysqld] section, or a
// postgresql.conf fragment), ready to apply to a real server.
func WriteConfigFile(w io.Writer, d Dialect, cfg Config) error {
	cat := knob.MySQL()
	if d == Postgres {
		cat = knob.Postgres()
	}
	return knob.WriteConfigFile(w, cat, cfg)
}

// FormatKnob renders a knob value the way a DBA would read it ("16 GB",
// "O_DIRECT", "ON"). Unknown knobs format as plain numbers.
func FormatKnob(d Dialect, name string, value float64) string {
	cat := knob.MySQL()
	if d == Postgres {
		cat = knob.Postgres()
	}
	spec, ok := cat.Spec(name)
	if !ok {
		return fmt.Sprintf("%g", value)
	}
	return spec.FormatValue(value)
}
