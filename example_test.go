package hunter_test

import (
	"fmt"
	"time"

	"github.com/hunter-cdb/hunter"
)

// ExampleTune shows the minimal tuning request. (Not executed by go test:
// a full session takes a few seconds; see examples/quickstart for the
// runnable version.)
func ExampleTune() {
	res, err := hunter.Tune(hunter.Request{
		Dialect:  hunter.MySQL,
		Workload: hunter.TPCC(),
		Budget:   8 * time.Hour, // virtual time
		Clones:   5,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("recommended %.0f txn/min\n", res.BestPerf.TPM())
}

// ExampleNewRules shows the personalized restrictions of §2.1: fixed
// knobs, narrowed ranges, the paper's conditional example, and the
// throughput/latency preference.
func ExampleNewRules() {
	rules := hunter.NewRules().
		Fix("innodb_adaptive_hash_index", 0).
		Range("innodb_buffer_pool_size", 1<<30, 8<<30).
		When("max_connections", hunter.OpGT, 100, "thread_handling", 1).
		SetAlpha(0.2)
	fmt.Println(rules.EffectiveAlpha())
	// Output: 0.2
}

// ExampleNewReuseRegistry shows the online model-reuse scheme (§4): train
// once, then fine-tune a matching workload from the stored model.
func ExampleNewReuseRegistry() {
	registry := hunter.NewReuseRegistry()
	_, _ = hunter.Tune(hunter.Request{
		Dialect:  hunter.MySQL,
		Workload: hunter.SysbenchRWRatio(4, 1),
		Budget:   12 * time.Hour,
		Registry: registry, // stores the trained Recommender
	})
	res, _ := hunter.Tune(hunter.Request{
		Dialect:  hunter.MySQL,
		Workload: hunter.SysbenchRWRatio(1, 1),
		Budget:   12 * time.Hour,
		Registry: registry, // fine-tunes it when key knobs + state dim match
	})
	fmt.Println(res.ReusedModel)
}
