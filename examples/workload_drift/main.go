// Workload drift (§5, Figure 10): the production workload captured at
// 9:00 drifts to the 21:00 capture mid-run. HUNTER keeps its learned state
// (Shared Pool, Recommender networks) across the drift and bounces back to
// a superior configuration for the new workload quickly — the behaviour
// that lets learning-based tuners handle drift without retuning from
// scratch.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/hunter-cdb/hunter"
)

func main() {
	driftAt := 12 * time.Hour
	res, err := hunter.Tune(hunter.Request{
		Dialect:    hunter.MySQL,
		Type:       mustType("D"), // the paper's 4-core / 16 GB production host
		Workload:   hunter.Production(),
		DriftAfter: driftAt,
		DriftTo:    hunter.ProductionDrifted(),
		Budget:     24 * time.Hour,
		Clones:     2,
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload drifts at %.0f h: %s -> %s\n\n",
		driftAt.Hours(), hunter.Production().Name, hunter.ProductionDrifted().Name)
	fmt.Println("best-so-far trajectory (tracking restarts at the drift):")
	for _, p := range res.Curve {
		marker := ""
		if p.Time >= driftAt {
			marker = "  <- post-drift"
		}
		fmt.Printf("  %5.1f h  %7.0f txn/s%s\n", p.Time.Hours(), p.Perf.ThroughputTPS, marker)
	}
	fmt.Printf("\nfinal recommendation for the drifted workload: %.0f txn/s (p95 %.1f ms)\n",
		res.BestPerf.ThroughputTPS, res.BestPerf.P95LatencyMs)
}

func mustType(name string) hunter.InstanceType {
	t, err := hunter.InstanceTypeByName(name)
	if err != nil {
		log.Fatal(err)
	}
	return t
}
