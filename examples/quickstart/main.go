// Quickstart: tune a simulated MySQL cloud database for TPC-C with one
// cloned instance and print the recommendation. Everything — the database,
// the workload, the cloud control plane — is simulated under a virtual
// clock, so the "8 hours" of tuning complete in seconds.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/hunter-cdb/hunter"
)

func main() {
	res, err := hunter.Tune(hunter.Request{
		Dialect:  hunter.MySQL,
		Workload: hunter.TPCC(),
		Budget:   8 * time.Hour, // virtual time
		Clones:   1,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("default config:     %6.0f txn/min, p95 %6.1f ms\n",
		res.DefaultPerf.TPM(), res.DefaultPerf.P95LatencyMs)
	fmt.Printf("recommended config: %6.0f txn/min, p95 %6.1f ms\n",
		res.BestPerf.TPM(), res.BestPerf.P95LatencyMs)
	fmt.Printf("fitness %.3f after %d stress tests; recommendation found at %.1f h\n\n",
		res.Fitness, res.Steps, res.RecommendationTime.Hours())

	fmt.Printf("the Search Space Optimizer compressed 63 metrics to %d components\n", res.CompressedStateDim)
	fmt.Printf("and sifted the knobs down to %d key ones, e.g.:\n", len(res.TopKnobs))
	for i, name := range res.TopKnobs {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-36s = %g\n", name, res.Best[name])
	}

	fmt.Println("\nbest-so-far trajectory:")
	for _, p := range res.Curve {
		fmt.Printf("  %5.1f h  step %4d  %6.0f txn/min\n", p.Time.Hours(), p.Step, p.Perf.TPM())
	}
}
