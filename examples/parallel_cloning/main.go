// Parallel cloning: the availability and acceleration story of §2.2. The
// same tuning request runs with 1, 5 and 20 cloned CDB instances; the
// user's own instance never executes a stress test, and the wall-clock
// (virtual) time to a near-optimal recommendation drops dramatically with
// the replication factor — the paper's 22.8× headline with 20 clones.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/hunter-cdb/hunter"
)

func main() {
	fmt.Println("tuning MySQL / Sysbench WO with increasing parallelism:")
	fmt.Printf("%-10s %14s %12s %16s %8s\n", "variant", "best (txn/s)", "p95 (ms)", "time to H-1 best", "steps")

	// Following the paper's protocol, parallel variants are compared by
	// how fast they reach single-clone HUNTER's best throughput.
	var target float64
	var baseline time.Duration
	for _, clones := range []int{1, 5, 20} {
		budget := 16 * time.Hour
		if clones == 20 {
			budget = 6 * time.Hour // HUNTER-20 converges far earlier
		}
		res, err := hunter.Tune(hunter.Request{
			Dialect:  hunter.MySQL,
			Workload: hunter.SysbenchWO(),
			Budget:   budget,
			Clones:   clones,
			Seed:     11,
		})
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("HUNTER-%d", clones)
		reached := "not reached"
		var reachedAt time.Duration
		if clones == 1 {
			name = "HUNTER"
			target = 0.98 * res.BestPerf.ThroughputTPS
			baseline = res.RecommendationTime
			reachedAt = baseline
			reached = fmt.Sprintf("%.1fh", baseline.Hours())
		} else {
			for _, p := range res.Curve {
				if p.Perf.ThroughputTPS >= target {
					reachedAt = p.Time
					reached = fmt.Sprintf("%.1fh", p.Time.Hours())
					break
				}
			}
		}
		speed := ""
		if clones > 1 && reachedAt > 0 {
			speed = fmt.Sprintf("  (%.1fx faster)", baseline.Hours()/reachedAt.Hours())
		}
		fmt.Printf("%-10s %14.0f %12.1f %16s %8d%s\n",
			name, res.BestPerf.ThroughputTPS, res.BestPerf.P95LatencyMs,
			reached, res.Steps, speed)
	}
}
