// Online model reuse (§4, Figure 13): a Recommender trained on Sysbench
// RW with a 4:1 read/write ratio is stored in a reuse registry; when the
// user later tunes the 1:1 ratio — which resolves to the same key knobs
// and compressed-state dimension — the matching module loads the model and
// fine-tunes it, reaching a good configuration faster than a cold start.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/hunter-cdb/hunter"
)

func main() {
	registry := hunter.NewReuseRegistry()

	fmt.Println("phase 1: training on Sysbench RW (4:1), storing the model...")
	train, err := hunter.Tune(hunter.Request{
		Dialect:  hunter.MySQL,
		Workload: hunter.SysbenchRWRatio(4, 1),
		Budget:   12 * time.Hour,
		Registry: registry,
		Seed:     21,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  trained: best %.0f txn/s after %d steps\n\n", train.BestPerf.ThroughputTPS, train.Steps)

	run := func(label string, reg *hunter.ReuseRegistry) {
		res, err := hunter.Tune(hunter.Request{
			Dialect:  hunter.MySQL,
			Workload: hunter.SysbenchRWRatio(1, 1),
			Budget:   12 * time.Hour,
			Registry: reg,
			Seed:     22,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s best %7.0f txn/s  p95 %6.1f ms  rec. time %5.1f h  reused=%v\n",
			label, res.BestPerf.ThroughputTPS, res.BestPerf.P95LatencyMs,
			res.RecommendationTime.Hours(), res.ReusedModel)
	}

	fmt.Println("phase 2: tuning Sysbench RW (1:1) with and without reuse:")
	run("HUNTER", nil)         // cold start
	run("HUNTER-MR", registry) // fine-tunes the stored model when it matches
}
