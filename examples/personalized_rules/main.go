// Personalized rules: the scenario that motivates HUNTER's online design
// (§1). A user requires the adaptive hash index disabled, bounds the
// buffer pool to at most 8 GB, adds the paper's example conditional
// ("thread_handling = pool-of-threads if connections > 100") and cares
// mostly about tail latency (α = 0.2). Pre-trained models mismatch such
// restricted spaces; HUNTER explores the constrained space online and
// every stress-tested configuration honors the rules.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/hunter-cdb/hunter"
)

func main() {
	rules := hunter.NewRules().
		Fix("innodb_adaptive_hash_index", 0).
		Range("innodb_buffer_pool_size", 1<<30, 8<<30).
		When("max_connections", hunter.OpGT, 100, "thread_handling", 1).
		SetAlpha(0.2) // prefer low latency over throughput

	res, err := hunter.Tune(hunter.Request{
		Dialect:  hunter.MySQL,
		Workload: hunter.SysbenchRW(),
		Rules:    rules,
		Budget:   8 * time.Hour,
		Clones:   2,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("default:     %6.0f txn/s, p95 %6.1f ms\n",
		res.DefaultPerf.ThroughputTPS, res.DefaultPerf.P95LatencyMs)
	fmt.Printf("recommended: %6.0f txn/s, p95 %6.1f ms (fitness %.3f, α=0.2)\n\n",
		res.BestPerf.ThroughputTPS, res.BestPerf.P95LatencyMs, res.Fitness)

	fmt.Println("rule compliance of the recommended configuration:")
	fmt.Printf("  innodb_adaptive_hash_index = %g (fixed to 0)\n", res.Best["innodb_adaptive_hash_index"])
	fmt.Printf("  innodb_buffer_pool_size    = %.1f GB (must be 1–8 GB)\n", res.Best["innodb_buffer_pool_size"]/(1<<30))
	fmt.Printf("  max_connections            = %g\n", res.Best["max_connections"])
	fmt.Printf("  thread_handling            = %g (must be 1 when connections > 100)\n", res.Best["thread_handling"])
}
