// Package tuners_test exercises every baseline tuning method end to end on
// short sessions: each must run within its budget without error and find a
// configuration better than the default.
package tuners_test

import (
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/knob"

	"github.com/hunter-cdb/hunter/internal/tuner"
	"github.com/hunter-cdb/hunter/internal/tuners/bestconfig"
	"github.com/hunter-cdb/hunter/internal/tuners/cdbtune"
	"github.com/hunter-cdb/hunter/internal/tuners/gatuner"
	"github.com/hunter-cdb/hunter/internal/tuners/ottertune"
	"github.com/hunter-cdb/hunter/internal/tuners/qtune"
	"github.com/hunter-cdb/hunter/internal/tuners/restune"
	"github.com/hunter-cdb/hunter/internal/workload"
)

func methods() []tuner.Tuner {
	return []tuner.Tuner{
		bestconfig.New(), ottertune.New(), cdbtune.New(), qtune.New(), restune.New(), gatuner.New(),
	}
}

func TestMethodNames(t *testing.T) {
	want := map[string]bool{
		"BestConfig": true, "OtterTune": true, "CDBTune": true,
		"QTune": true, "ResTune": true, "GA": true,
	}
	for _, m := range methods() {
		if !want[m.Name()] {
			t.Errorf("unexpected tuner name %q", m.Name())
		}
		delete(want, m.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing tuners: %v", want)
	}
}

func TestEveryMethodImprovesOverDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning sessions")
	}
	for i, m := range methods() {
		m := m
		i := i
		t.Run(m.Name(), func(t *testing.T) {
			t.Parallel()
			s, err := tuner.NewSession(tuner.Request{
				Workload: workload.TPCC(),
				Budget:   6 * time.Hour,
				Clones:   1,
				Seed:     int64(100 + i),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := m.Tune(s); err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			best, ok := s.Best()
			if !ok {
				t.Fatalf("%s produced no samples", m.Name())
			}
			fit := s.Fitness(best.Perf)
			t.Logf("%s: %d steps, best fitness %.3f (%.0f tpm)", m.Name(), s.Steps(), fit, best.Perf.TPM())
			if fit <= 0.05 {
				t.Errorf("%s failed to improve over default (fitness %.3f)", m.Name(), fit)
			}
			if !s.Exhausted() {
				t.Errorf("%s returned before exhausting its budget", m.Name())
			}
		})
	}
}

func TestMethodsRespectBudgetSteps(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning sessions")
	}
	// A 2-hour budget admits at most ~45 steps (full steps cost ~164 s;
	// boot failures cost less). Every method must stay in that ballpark.
	for i, m := range methods() {
		s, err := tuner.NewSession(tuner.Request{
			Workload: workload.SysbenchRO(),
			Budget:   2 * time.Hour,
			Seed:     int64(200 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Tune(s); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if s.Steps() > 160 {
			t.Errorf("%s took %d steps in 2 h — time accounting broken?", m.Name(), s.Steps())
		}
		s.Close()
	}
}

// TestMethodsHandleTinyBudget: a budget barely beyond session setup must
// not hang or crash any method — they should return promptly with
// whatever samples fit.
func TestMethodsHandleTinyBudget(t *testing.T) {
	for i, m := range methods() {
		s, err := tuner.NewSession(tuner.Request{
			Workload: workload.TPCC(),
			Budget:   10 * time.Minute,
			Seed:     int64(300 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- m.Tune(s) }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s: %v", m.Name(), err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s hung on a tiny budget", m.Name())
		}
		s.Close()
	}
}

// TestMethodsWithRestrictiveRules: heavy Rules (many fixed knobs) shrink
// the space; every method must still run and respect them.
func TestMethodsWithRestrictiveRules(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end runs")
	}
	rules := knob.NewRules().
		Fix("innodb_buffer_pool_size", 8<<30).
		Fix("innodb_flush_log_at_trx_commit", 2).
		Fix("sync_binlog", 0).
		Range("innodb_io_capacity", 1000, 20000)
	for i, m := range methods() {
		s, err := tuner.NewSession(tuner.Request{
			Workload: workload.SysbenchWO(),
			Budget:   3 * time.Hour,
			Rules:    rules,
			Seed:     int64(400 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Tune(s); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for _, smp := range s.Pool.All() {
			if v := rules.Violations(s.Space.Catalog(), smp.Knobs); len(v) > 0 {
				t.Fatalf("%s violated rules: %v", m.Name(), v)
			}
		}
		s.Close()
	}
}

// TestQTuneFeaturizationDiffers: the query-aware state must distinguish
// workloads with different mixes (the point of DS-DDPG).
func TestQTuneFeaturizationDiffers(t *testing.T) {
	a := qtune.Featurize(workload.TPCC())
	b := qtune.Featurize(workload.SysbenchWO())
	if len(a) != len(b) {
		t.Fatalf("feature dims differ: %d vs %d", len(a), len(b))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different workloads must featurize differently")
	}
}
