// Package cdbtune implements the CDBTune baseline (Zhang et al., SIGMOD
// '19): end-to-end knob tuning with plain DDPG over the raw 63-metric
// state — the paper's strongest baseline and the DRL core HUNTER
// warm-starts. Started from scratch (no pre-trained model, per the
// evaluation protocol of §6), it suffers exactly the cold-start behaviour
// Figure 1 documents.
package cdbtune

import (
	"errors"

	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/ml/ddpg"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// Tuner is the end-to-end DDPG tuner.
type Tuner struct {
	// InitRandom is the number of random warm-up steps before the policy
	// drives exploration.
	InitRandom int
	// NoiseStart/NoiseEnd schedule the exploration noise.
	NoiseStart, NoiseEnd float64
	// NoiseDecaySteps is the horizon over which noise anneals.
	NoiseDecaySteps int
	// TrainPerStep is the number of minibatch updates after each sample.
	TrainPerStep int
}

// New returns a CDBTune tuner with reference settings.
func New() *Tuner {
	return &Tuner{InitRandom: 8, NoiseStart: 0.5, NoiseEnd: 0.05, NoiseDecaySteps: 700, TrainPerStep: 4}
}

// Name implements tuner.Tuner.
func (t *Tuner) Name() string { return "CDBTune" }

// Tune implements tuner.Tuner.
func (t *Tuner) Tune(s *tuner.Session) error {
	dim := s.Space.Dim()
	rng := s.RNG.Fork()
	agent, err := ddpg.New(ddpg.Config{
		StateDim:  metrics.Count,
		ActionDim: dim,
		Seed:      rng.Int63(),
	})
	if err != nil {
		return err
	}
	norm := tuner.NewStateNormalizer(metrics.Count)

	// Random bootstrap to obtain an initial state.
	var state []float64
	for i := 0; i < t.InitRandom && !s.Exhausted(); i++ {
		smp, err := s.Evaluate(s.Space.Random(rng))
		if err != nil {
			if errors.Is(err, tuner.ErrBudgetExhausted) {
				return nil
			}
			return err
		}
		if len(smp.State) == metrics.Count {
			norm.Observe(smp.State)
			state = norm.Normalize(smp.State)
		}
	}
	if state == nil {
		state = make([]float64, metrics.Count)
	}

	step := 0
	for !s.Exhausted() {
		step++
		sigma := t.NoiseStart + (t.NoiseEnd-t.NoiseStart)*minf(1, float64(step)/float64(t.NoiseDecaySteps))
		action := agent.ActNoisy(state, sigma)
		smp, err := s.Evaluate(action)
		done := err != nil
		var next []float64
		if len(smp.State) == metrics.Count {
			norm.Observe(smp.State)
			next = norm.Normalize(smp.State)
		} else {
			next = state // boot failure: state unchanged
		}
		agent.Observe(ddpg.Transition{
			State:  state,
			Action: action,
			Reward: s.Fitness(smp.Perf),
			Next:   next,
			Done:   done,
		})
		for k := 0; k < t.TrainPerStep; k++ {
			agent.TrainStep()
		}
		s.ChargeModelUpdate()
		state = next
		if err != nil {
			if errors.Is(err, tuner.ErrBudgetExhausted) {
				return nil
			}
			return err
		}
	}
	return nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
