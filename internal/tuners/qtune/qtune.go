// Package qtune implements the QTune baseline (Li et al., VLDB '19):
// DS-DDPG, a query-aware double-state DDPG. QTune featurizes the workload
// (its query/ transaction mix) and feeds those features alongside the
// database metrics into the DRL state, letting the policy condition on
// what the workload does rather than only on how the database reacts.
package qtune

import (
	"errors"

	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/ml/ddpg"
	"github.com/hunter-cdb/hunter/internal/tuner"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// Query featurization (QTune's "query2vec" at transaction granularity):
// per-class features for up to maxClasses transaction types plus workload
// aggregates.
const (
	maxClasses         = 5 // TPC-C has five transaction types
	perClassFeatures   = 4 // weight share, reads, writes, scan rows
	workloadFeatureDim = maxClasses*perClassFeatures + 4
)

// Tuner is the DS-DDPG tuner.
type Tuner struct {
	InitRandom           int
	NoiseStart, NoiseEnd float64
	NoiseDecaySteps      int
	TrainPerStep         int
}

// New returns a QTune tuner with reference settings.
func New() *Tuner {
	return &Tuner{InitRandom: 8, NoiseStart: 0.5, NoiseEnd: 0.05, NoiseDecaySteps: 650, TrainPerStep: 4}
}

// Name implements tuner.Tuner.
func (t *Tuner) Name() string { return "QTune" }

// Featurize encodes the workload's query mix: one feature block per
// transaction class (the vectorized queries QTune conditions on) plus
// aggregate workload descriptors.
func Featurize(p *workload.Profile) []float64 {
	out := make([]float64, 0, workloadFeatureDim)
	var totalW float64
	for _, c := range p.Mix {
		totalW += c.Weight
	}
	for i := 0; i < maxClasses; i++ {
		if i >= len(p.Mix) {
			out = append(out, 0, 0, 0, 0)
			continue
		}
		c := p.Mix[i]
		out = append(out,
			c.Weight/totalW,
			float64(c.PointReads)/50,
			float64(c.PointWrites)/50,
			float64(c.ScanRows)/500,
		)
	}
	out = append(out,
		float64(p.EffectiveThreads())/512,
		p.Skew-1,
		p.WriteFraction(),
		float64(p.Tables)/256,
	)
	return out
}

// Tune implements tuner.Tuner.
func (t *Tuner) Tune(s *tuner.Session) error {
	dim := s.Space.Dim()
	rng := s.RNG.Fork()
	stateDim := metrics.Count + workloadFeatureDim
	agent, err := ddpg.New(ddpg.Config{StateDim: stateDim, ActionDim: dim, Seed: rng.Int63()})
	if err != nil {
		return err
	}
	norm := tuner.NewStateNormalizer(metrics.Count)
	wf := Featurize(s.Req.Workload)
	compose := func(metricState []float64) []float64 {
		out := make([]float64, 0, stateDim)
		out = append(out, metricState...)
		out = append(out, wf...)
		return out
	}

	var metricState []float64
	for i := 0; i < t.InitRandom && !s.Exhausted(); i++ {
		smp, err := s.Evaluate(s.Space.Random(rng))
		if err != nil {
			if errors.Is(err, tuner.ErrBudgetExhausted) {
				return nil
			}
			return err
		}
		if len(smp.State) == metrics.Count {
			norm.Observe(smp.State)
			metricState = norm.Normalize(smp.State)
		}
	}
	if metricState == nil {
		metricState = make([]float64, metrics.Count)
	}
	state := compose(metricState)

	step := 0
	refeaturized := false
	for !s.Exhausted() {
		step++
		if s.Drifted() && !refeaturized {
			// The workload changed under us: re-vectorize the queries.
			wf = Featurize(s.Req.Workload)
			refeaturized = true
		}
		frac := float64(step) / float64(t.NoiseDecaySteps)
		if frac > 1 {
			frac = 1
		}
		sigma := t.NoiseStart + (t.NoiseEnd-t.NoiseStart)*frac
		action := agent.ActNoisy(state, sigma)
		smp, err := s.Evaluate(action)
		var next []float64
		if len(smp.State) == metrics.Count {
			norm.Observe(smp.State)
			next = compose(norm.Normalize(smp.State))
		} else {
			next = state
		}
		agent.Observe(ddpg.Transition{State: state, Action: action, Reward: s.Fitness(smp.Perf), Next: next, Done: err != nil})
		for k := 0; k < t.TrainPerStep; k++ {
			agent.TrainStep()
		}
		s.ChargeModelUpdate()
		state = next
		if err != nil {
			if errors.Is(err, tuner.ErrBudgetExhausted) {
				return nil
			}
			return err
		}
	}
	return nil
}
