package gatuner

import (
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/cloud"
	"github.com/hunter-cdb/hunter/internal/ga"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/tuner"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// BenchmarkProductionSession is the evaluation-cost headline: a complete
// GA tuning session over the captured production trace, full-trace
// evaluation vs the compressed kernel with wave dedup and warm-state
// deltas. The GA is evaluation-bound, so this measures the end-to-end
// wall-clock collapse of the stress-test pipeline. Run with -benchtime 1x.
func BenchmarkProductionSession(b *testing.B) {
	prodType, err := cloud.TypeByName("D")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name     string
		workload *workload.Profile
		eval     *tuner.EvalOptions
	}{
		{"full", workload.Production(), nil},
		{"compressed", workload.CompressProduction().Profile,
			&tuner.EvalOptions{DedupWaves: true, WarmStateDeltas: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := tuner.NewSession(tuner.Request{
					Dialect:  simdb.MySQL,
					Type:     prodType,
					Workload: mode.workload,
					Budget:   24 * time.Hour,
					Clones:   4,
					Seed:     2022,
					Eval:     mode.eval,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := New().Tune(s); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(s.Steps()), "steps")
				s.Close()
			}
		})
	}
}

// BenchmarkProductionSteps fixes the amount of tuning work — 50 GA
// generations of 20, i.e. 1000 production-trace stress tests — and
// measures the wall clock with full-trace evaluation vs the compressed
// kernel. Fixing the step count separates the per-step cost collapse from
// the budget effect above (cheaper virtual steps let a budget-bound
// session pack in more of them). Run with -benchtime 1x.
func BenchmarkProductionSteps(b *testing.B) {
	prodType, err := cloud.TypeByName("D")
	if err != nil {
		b.Fatal(err)
	}
	const generations = 50
	for _, mode := range []struct {
		name     string
		workload *workload.Profile
		eval     *tuner.EvalOptions
	}{
		{"full", workload.Production(), nil},
		{"compressed", workload.CompressProduction().Profile,
			&tuner.EvalOptions{DedupWaves: true, WarmStateDeltas: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := tuner.NewSession(tuner.Request{
					Dialect:  simdb.MySQL,
					Type:     prodType,
					Workload: mode.workload,
					Budget:   1 << 62,
					Clones:   4,
					Seed:     2022,
					Eval:     mode.eval,
				})
				if err != nil {
					b.Fatal(err)
				}
				g, err := ga.New(ga.Config{Dim: s.Space.Dim(), PopSize: 20,
					MutationProb: 0.1, Seed: s.RNG.Int63()})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for gen := 0; gen < generations; gen++ {
					genes := g.Ask(20)
					samples, err := s.EvaluateBatch(genes)
					if err != nil {
						b.Fatal(err)
					}
					fit := make([]float64, len(samples))
					pts := make([][]float64, len(samples))
					for j, smp := range samples {
						pts[j] = smp.Point
						fit[j] = s.Fitness(smp.Perf)
					}
					if err := g.Tell(pts, fit); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if got := s.Steps(); got > generations*20 {
					b.Fatalf("ran %d steps, expected at most %d", got, generations*20)
				}
				s.Close()
				b.StartTimer()
			}
		})
	}
}
