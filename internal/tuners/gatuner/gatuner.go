// Package gatuner wraps the genetic algorithm as a standalone tuning
// method — the "GA" line of Figures 4 and 5, which motivates HUNTER's
// hybrid design: GA converges fast early but its performance ceiling is
// below DDPG's.
package gatuner

import (
	"errors"

	"github.com/hunter-cdb/hunter/internal/ga"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// Tuner runs the GA of §3.1 until the budget is exhausted.
type Tuner struct {
	PopSize      int
	MutationProb float64
}

// New returns a GA tuner with the Sample Factory's settings.
func New() *Tuner { return &Tuner{PopSize: 20, MutationProb: 0.1} }

// Name implements tuner.Tuner.
func (t *Tuner) Name() string { return "GA" }

// Tune implements tuner.Tuner.
func (t *Tuner) Tune(s *tuner.Session) error {
	g, err := ga.New(ga.Config{
		Dim:          s.Space.Dim(),
		PopSize:      t.PopSize,
		MutationProb: t.MutationProb,
		Seed:         s.RNG.Int63(),
	})
	if err != nil {
		return err
	}
	for !s.Exhausted() {
		genes := g.Ask(t.PopSize)
		samples, err := s.EvaluateBatch(genes)
		fit := make([]float64, len(samples))
		evaluated := make([][]float64, len(samples))
		for i, smp := range samples {
			evaluated[i] = smp.Point
			fit[i] = s.Fitness(smp.Perf)
		}
		if len(evaluated) > 0 {
			if terr := g.Tell(evaluated, fit); terr != nil {
				return terr
			}
			s.ChargeModelUpdate()
		}
		if err != nil {
			if errors.Is(err, tuner.ErrBudgetExhausted) {
				return nil
			}
			return err
		}
	}
	return nil
}
