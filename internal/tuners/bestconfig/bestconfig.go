// Package bestconfig implements the BestConfig baseline (Zhu et al., SoCC
// '17): the search-based method the paper compares against. It combines
// divide-and-diverge sampling (DDS) — Latin-hypercube samples over the
// current bounds — with recursive bound-and-search (RBS): after each round
// the bounds contract around the best point found; when a round fails to
// improve, the search diverges back to the full space and restarts from a
// fresh sample set.
package bestconfig

import (
	"errors"

	"github.com/hunter-cdb/hunter/internal/sim"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// Tuner is the BestConfig search.
type Tuner struct {
	// RoundSize is the number of samples per DDS round.
	RoundSize int
	// Shrink is the bound-contraction factor per improving round.
	Shrink float64
	// MaxExploit bounds consecutive bound-and-search rounds before a
	// forced divergence round over the whole space (the DDS half of the
	// algorithm keeps global coverage alive).
	MaxExploit int
}

// New returns a BestConfig tuner with the reference settings.
func New() *Tuner { return &Tuner{RoundSize: 16, Shrink: 0.6, MaxExploit: 3} }

// Name implements tuner.Tuner.
func (t *Tuner) Name() string { return "BestConfig" }

// Tune implements tuner.Tuner.
func (t *Tuner) Tune(s *tuner.Session) error {
	dim := s.Space.Dim()
	rng := s.RNG.Fork()
	center := make([]float64, dim)
	for i := range center {
		center[i] = 0.5
	}
	radius := 0.5
	bestFit := s.Fitness(s.DefaultPerf)
	var bestPoint []float64
	exploitRounds := 0

	for !s.Exhausted() {
		// DDS: Latin-hypercube sample inside the current bounds.
		batch := tuner.LatinHypercube(t.RoundSize, dim, rng)
		for _, p := range batch {
			for d := range p {
				lo := sim.Clamp(center[d]-radius, 0, 1)
				hi := sim.Clamp(center[d]+radius, 0, 1)
				p[d] = lo + p[d]*(hi-lo)
			}
		}
		samples, err := s.EvaluateBatch(batch)
		improved := false
		for _, smp := range samples {
			if f := s.Fitness(smp.Perf); f > bestFit {
				bestFit = f
				bestPoint = smp.Point
				improved = true
			}
		}
		if err != nil {
			if errors.Is(err, tuner.ErrBudgetExhausted) {
				return nil
			}
			return err
		}
		if improved && bestPoint != nil && exploitRounds < t.MaxExploit {
			// RBS: contract the bounds around the incumbent.
			copy(center, bestPoint)
			radius *= t.Shrink
			if radius < 0.05 {
				radius = 0.05
			}
			exploitRounds++
		} else {
			// Diverge: restart over the whole space (also forced after
			// MaxExploit rounds so global coverage never dies).
			for i := range center {
				center[i] = 0.5
			}
			radius = 0.5
			exploitRounds = 0
		}
	}
	return nil
}
