// Package restune implements the ResTune baseline (Zhang et al., SIGMOD
// '21): meta-learning over historical tuning tasks. A library of base
// Gaussian-process models fitted on previously tuned workloads is combined
// with the current task's GP in an RGPE-style weighted ensemble, where
// each base model's weight reflects how well it ranks the observations
// seen so far; acquisition maximizes expected improvement under the
// ensemble. The evaluation protocol starts every method without prior
// knowledge of the *target* workload, so the base tasks here are the
// synthetic histories ResTune would have accumulated from other tenants.
package restune

import (
	"errors"
	"math"

	"github.com/hunter-cdb/hunter/internal/ml/gp"
	"github.com/hunter-cdb/hunter/internal/sim"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// Tuner is the meta-learning BO tuner.
type Tuner struct {
	InitSamples int
	Candidates  int
	// BaseTasks is the number of synthetic historical tasks in the meta
	// library.
	BaseTasks int
	// BaseSamples is the number of observations per historical task.
	BaseSamples int
}

// New returns a ResTune tuner with reference settings.
func New() *Tuner {
	return &Tuner{InitSamples: 6, Candidates: 400, BaseTasks: 4, BaseSamples: 40}
}

// Name implements tuner.Tuner.
func (t *Tuner) Name() string { return "ResTune" }

// baseTask is one historical workload's surrogate.
type baseTask struct {
	model *gp.Model
}

// buildLibrary synthesizes the historical task library: smooth random
// response surfaces over the same space, standing in for other tenants'
// tuning histories. Some resemble the target task's structure (memory and
// durability knobs matter), some do not — the ensemble weighting must sort
// that out, exactly as in the real system.
func (t *Tuner) buildLibrary(dim int, rng *sim.RNG) []baseTask {
	tasks := make([]baseTask, 0, t.BaseTasks)
	for k := 0; k < t.BaseTasks; k++ {
		// A random quadratic-ish landscape with a planted optimum.
		opt := make([]float64, dim)
		wgt := make([]float64, dim)
		for d := 0; d < dim; d++ {
			opt[d] = rng.Float64()
			wgt[d] = rng.Float64() * rng.Float64() // few knobs matter
		}
		x := make([][]float64, t.BaseSamples)
		y := make([]float64, t.BaseSamples)
		for i := 0; i < t.BaseSamples; i++ {
			p := make([]float64, dim)
			var loss float64
			for d := 0; d < dim; d++ {
				p[d] = rng.Float64()
				diff := p[d] - opt[d]
				loss += wgt[d] * diff * diff
			}
			x[i] = p
			y[i] = 1 - loss + rng.Gaussian(0, 0.02)
		}
		if m, err := gp.Fit(x, y, gp.Options{}); err == nil {
			tasks = append(tasks, baseTask{model: m})
		}
	}
	return tasks
}

// Tune implements tuner.Tuner.
func (t *Tuner) Tune(s *tuner.Session) error {
	dim := s.Space.Dim()
	rng := s.RNG.Fork()
	library := t.buildLibrary(dim, rng)

	if _, err := s.EvaluateBatch(tuner.LatinHypercube(t.InitSamples, dim, rng)); err != nil {
		if errors.Is(err, tuner.ErrBudgetExhausted) {
			return nil
		}
		return err
	}

	for !s.Exhausted() {
		all := s.Pool.All()
		if len(all) > 240 {
			sorted := s.Pool.SortedByFitness(s.DefaultPerf, s.Alpha)
			recent := all[len(all)-120:]
			all = append(append([]tuner.Sample(nil), sorted[:120]...), recent...)
		}
		x := make([][]float64, len(all))
		y := make([]float64, len(all))
		for i, smp := range all {
			x[i] = smp.Point
			y[i] = s.Fitness(smp.Perf)
		}
		target, err := gp.Fit(x, y, gp.Options{})
		if err != nil {
			if _, err := s.Evaluate(s.Space.Random(rng)); err != nil {
				if errors.Is(err, tuner.ErrBudgetExhausted) {
					return nil
				}
				return err
			}
			continue
		}
		s.ChargeModelUpdate()

		// RGPE weights: pairwise ranking accuracy of each model on the
		// target observations; the target model gets the weight of its
		// own (loo-optimistic) accuracy.
		weights := t.ensembleWeights(library, target, x, y)

		incumbent := x[argMax(y)]
		best := y[argMax(y)]
		bestEI, bestCand := -1.0, incumbent
		for c := 0; c < t.Candidates; c++ {
			var cand []float64
			if c%2 == 0 {
				cand = s.Space.Random(rng)
			} else {
				cand = tuner.PerturbPoint(incumbent, 0.15, rng)
			}
			ei := weights[len(library)] * target.ExpectedImprovement(cand, best)
			for k, bt := range library {
				if weights[k] > 0.01 {
					ei += weights[k] * bt.model.ExpectedImprovement(cand, best)
				}
			}
			if ei > bestEI {
				bestEI, bestCand = ei, cand
			}
		}
		if _, err := s.Evaluate(bestCand); err != nil {
			if errors.Is(err, tuner.ErrBudgetExhausted) {
				return nil
			}
			return err
		}
	}
	return nil
}

// ensembleWeights returns one weight per base task plus the target model's
// weight in the last slot, normalized to sum to 1.
func (t *Tuner) ensembleWeights(library []baseTask, target *gp.Model, x [][]float64, y []float64) []float64 {
	n := len(x)
	score := make([]float64, len(library)+1)
	pairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && j < i+8; j++ { // bounded pair sampling
			pairs++
			for k, bt := range library {
				mi, _ := bt.model.Predict(x[i])
				mj, _ := bt.model.Predict(x[j])
				if (mi > mj) == (y[i] > y[j]) {
					score[k]++
				}
			}
			mi, _ := target.Predict(x[i])
			mj, _ := target.Predict(x[j])
			if (mi > mj) == (y[i] > y[j]) {
				score[len(library)]++
			}
		}
	}
	if pairs == 0 {
		w := make([]float64, len(score))
		w[len(score)-1] = 1
		return w
	}
	var total float64
	for k := range score {
		// Emphasize models clearly better than random ranking.
		score[k] = math.Max(0, score[k]/float64(pairs)-0.5)
		total += score[k]
	}
	if total == 0 {
		w := make([]float64, len(score))
		w[len(score)-1] = 1
		return w
	}
	for k := range score {
		score[k] /= total
	}
	return score
}

func argMax(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
