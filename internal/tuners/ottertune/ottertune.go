// Package ottertune implements the OtterTune baseline (Van Aken et al.,
// SIGMOD '17): Gaussian-process regression over observed configurations
// with expected-improvement acquisition, plus Lasso-based knob ranking
// that grows the tuned knob set incrementally — the pipeline method the
// paper contrasts with HUNTER's RF sifting and hybrid search.
package ottertune

import (
	"errors"

	"github.com/hunter-cdb/hunter/internal/ml/gp"
	"github.com/hunter-cdb/hunter/internal/ml/lasso"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// Tuner is the OtterTune pipeline.
type Tuner struct {
	// InitSamples is the Latin-hypercube bootstrap size.
	InitSamples int
	// Candidates is the acquisition pool size per step.
	Candidates int
	// KnobSchedule grows the number of active knobs as observations
	// accumulate (OtterTune's incremental knob method).
	KnobSchedule []int
}

// New returns an OtterTune tuner with reference settings.
func New() *Tuner {
	return &Tuner{InitSamples: 10, Candidates: 400, KnobSchedule: []int{4, 8, 16, 32, 64}}
}

// Name implements tuner.Tuner.
func (t *Tuner) Name() string { return "OtterTune" }

// Tune implements tuner.Tuner.
func (t *Tuner) Tune(s *tuner.Session) error {
	dim := s.Space.Dim()
	rng := s.RNG.Fork()

	// Bootstrap with Latin-hypercube samples.
	if _, err := s.EvaluateBatch(tuner.LatinHypercube(t.InitSamples, dim, rng)); err != nil {
		if errors.Is(err, tuner.ErrBudgetExhausted) {
			return nil
		}
		return err
	}

	step := 0
	for !s.Exhausted() {
		step++
		all := s.Pool.All()
		// Cap the GP training set (Cholesky is cubic): keep the fittest
		// half and the most recent half of up to 240 samples.
		if len(all) > 240 {
			sorted := s.Pool.SortedByFitness(s.DefaultPerf, s.Alpha)
			recent := all[len(all)-120:]
			all = append(append([]tuner.Sample(nil), sorted[:120]...), recent...)
		}
		x := make([][]float64, len(all))
		y := make([]float64, len(all))
		for i, smp := range all {
			x[i] = smp.Point
			y[i] = s.Fitness(smp.Perf)
		}

		// Lasso knob ranking; only the top knobs vary, the rest stay at
		// the incumbent's values.
		active := t.activeKnobs(step)
		if active > dim {
			active = dim
		}
		ranking := make([]int, dim)
		for i := range ranking {
			ranking[i] = i
		}
		if lm, err := lasso.Fit(x, y, 0.01, 150); err == nil {
			ranking = lm.Ranking()
		}
		activeSet := make(map[int]bool, active)
		for _, k := range ranking[:active] {
			activeSet[k] = true
		}

		model, err := gp.Fit(x, y, gp.Options{})
		if err != nil {
			// Degenerate kernel: fall back to a random probe.
			if _, err := s.Evaluate(s.Space.Random(rng)); err != nil {
				if errors.Is(err, tuner.ErrBudgetExhausted) {
					return nil
				}
				return err
			}
			s.ChargeModelUpdate()
			continue
		}
		s.ChargeModelUpdate()

		// Acquisition: EI over random candidates plus local perturbations
		// of the incumbent. Only the active knobs vary; the rest stay at
		// their defaults, per OtterTune's incremental-knob design.
		incumbent := x[argMax(y)]
		defaults := s.Space.DefaultPoint()
		bestEI, bestCand := -1.0, incumbent
		for c := 0; c < t.Candidates; c++ {
			var cand []float64
			if c%3 != 0 {
				cand = s.Space.Random(rng)
			} else {
				cand = tuner.PerturbPoint(incumbent, 0.15, rng)
			}
			for d := 0; d < dim; d++ {
				if !activeSet[d] {
					cand[d] = defaults[d]
				}
			}
			if ei := model.ExpectedImprovement(cand, y[argMax(y)]); ei > bestEI {
				bestEI, bestCand = ei, cand
			}
		}
		if _, err := s.Evaluate(bestCand); err != nil {
			if errors.Is(err, tuner.ErrBudgetExhausted) {
				return nil
			}
			return err
		}
	}
	return nil
}

func (t *Tuner) activeKnobs(step int) int {
	idx := step / 12 // grow the knob set every 12 observations
	if idx >= len(t.KnobSchedule) {
		idx = len(t.KnobSchedule) - 1
	}
	return t.KnobSchedule[idx]
}

func argMax(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
