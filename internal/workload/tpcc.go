package workload

// TPCC returns the TPC-C profile used throughout the evaluation: 50
// warehouses (≈8.97 GB) and 32 clients, with the standard five-transaction
// mix. Row counts per transaction follow the TPC-C specification's average
// footprint (NewOrder touches ~10 order lines, Delivery processes a batch
// of 10 orders, StockLevel scans ~200 recent order lines).
func TPCC() *Profile {
	return &Profile{
		Name:       "tpcc",
		Tables:     len(TPCCSchema()),
		Rows:       TPCCRows(TPCCWarehouses),
		DataBytes:  TPCCDataBytes(TPCCWarehouses),
		Threads:    32,
		Skew:       1.15, // warehouse/district locality makes TPC-C hotter than sysbench
		HotSetSize: 550,  // 50 warehouse rows + 500 district counters
		Mix: []TxnClass{
			{Name: "new_order", Weight: 45, PointReads: 23, PointWrites: 23, CPUMillis: 1.6, HotWrites: 1},
			{Name: "payment", Weight: 43, PointReads: 4, PointWrites: 4, CPUMillis: 0.55, HotWrites: 2},
			{Name: "order_status", Weight: 4, PointReads: 13, ScanRows: 10, CPUMillis: 0.5, TempTables: 1},
			{Name: "delivery", Weight: 4, PointReads: 120, PointWrites: 120, CPUMillis: 3.2, HotWrites: 1},
			{Name: "stock_level", Weight: 4, PointReads: 1, ScanRows: 200, CPUMillis: 1.1, TempTables: 1},
		},
	}
}
