package workload

import "fmt"

// Sysbench workload definitions matching Table 2: 8 tables × 8 M rows
// (≈8 GB), 512 client threads. The per-transaction operation counts follow
// the standard sysbench oltp_* Lua scripts.

const (
	sysbenchTables    = 8
	sysbenchRows      = 8 * 8_000_000
	sysbenchDataBytes = 8 << 30 // ~8 GB
	sysbenchThreads   = 512
	sysbenchSkew      = 1.08 // sysbench "special" distribution is mildly skewed
)

func sysbenchBase(name string, mix []TxnClass) *Profile {
	return &Profile{
		Name:      name,
		Tables:    sysbenchTables,
		Rows:      sysbenchRows,
		DataBytes: sysbenchDataBytes,
		Threads:   sysbenchThreads,
		Skew:      sysbenchSkew,
		Mix:       mix,
	}
}

// SysbenchRO returns the read-only OLTP mix: 10 point selects plus four
// 100-row range queries per transaction.
func SysbenchRO() *Profile {
	return sysbenchBase("sysbench-ro", []TxnClass{{
		Name:       "oltp_read_only",
		Weight:     1,
		PointReads: 10,
		ScanRows:   400,
		CPUMillis:  0.55,
		TempTables: 1, // the ORDER BY / DISTINCT ranges sort
	}})
}

// SysbenchWO returns the write-only OLTP mix: two updates, one delete and
// one insert per transaction.
func SysbenchWO() *Profile {
	return sysbenchBase("sysbench-wo", []TxnClass{{
		Name:        "oltp_write_only",
		Weight:      1,
		PointReads:  0,
		PointWrites: 4,
		CPUMillis:   0.30,
	}})
}

// SysbenchRW returns the classic read-write mix (reads and writes of RO and
// WO combined, read/write ratio 1:1 by transaction volume as in Table 2).
func SysbenchRW() *Profile {
	return sysbenchBase("sysbench-rw", []TxnClass{{
		Name:        "oltp_read_write",
		Weight:      1,
		PointReads:  10,
		PointWrites: 4,
		ScanRows:    400,
		CPUMillis:   0.75,
		TempTables:  1,
	}})
}

// SysbenchRWRatio returns a read-write mix with the given read:write
// transaction ratio, used by the online model-reuse experiment (Figure 13:
// RW 4:1 vs RW 1:1).
func SysbenchRWRatio(read, write float64) *Profile {
	p := sysbenchBase("sysbench-rw", []TxnClass{
		{
			Name:       "reads",
			Weight:     read,
			PointReads: 10,
			ScanRows:   400,
			CPUMillis:  0.55,
			TempTables: 1,
		},
		{
			Name:        "writes",
			Weight:      write,
			PointWrites: 4,
			CPUMillis:   0.30,
		},
	})
	p.Name = fmt.Sprintf("sysbench-rw-%g:%g", read, write)
	return p
}
