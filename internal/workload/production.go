package workload

import (
	"time"

	"github.com/hunter-cdb/hunter/internal/sim"
)

// Production models the real-world education-business workload of Table 2:
// 222 tables, ≈250 GB of data, read/write ratio 20:29. The paper captures
// the queries arriving in a user-selected time window and replays them; we
// synthesize equivalent traces for two windows (9:00 and 21:00) whose mix
// shift provides the workload-drift scenario of Figure 10.

const (
	productionTables    = 222
	productionRows      = int64(1_600_000_000)
	productionDataBytes = int64(250) << 30

	// serviceTime is the mean per-transaction execution time assumed by
	// the DAG-replay makespan estimates.
	serviceTime = time.Millisecond
)

// windowShape returns the skew and hot-set cardinality of a capture
// window, shared by the full profile and the compressed kernel.
func windowShape(window string) (skew float64, hotSet int64) {
	if window == "9pm" {
		return 1.22, 2500
	}
	return 1.10, 8000
}

// TracedTxn is one captured transaction: its read and write key sets and
// its arrival order. Key sets drive the conflict edges of the dependency
// graph.
type TracedTxn struct {
	ID       int
	Arrival  time.Duration
	ReadSet  []uint64
	WriteSet []uint64
}

// Trace is a captured sequence of transactions from a user instance.
type Trace struct {
	Window string
	Txns   []TracedTxn
}

// u64Arena hands out exact-size []uint64 slices carved from large shared
// blocks, so capturing a trace costs a handful of allocations instead of
// two append-grown slices per transaction. Carved slices are full-length
// and capacity-capped; they are never appended to.
type u64Arena struct {
	block []uint64
}

func (a *u64Arena) take(n int) []uint64 {
	if n == 0 {
		return nil
	}
	if len(a.block) < n {
		size := 1 << 14
		if size < n {
			size = n
		}
		a.block = make([]uint64, size)
	}
	s := a.block[:n:n]
	a.block = a.block[n:]
	return s
}

// CaptureProduction synthesizes a trace as the Workload Generator would
// capture it from the user's instance during the given window ("9am" or
// "9pm"). The morning window is browse-heavy (reads dominate, cooler
// skew); the evening window is submission-heavy (writes dominate, hotter
// skew), which is the drift Figure 10 switches to at the 48-hour mark.
func CaptureProduction(r *sim.RNG, window string, txns int) *Trace {
	if txns <= 0 {
		txns = 5000
	}
	// Table 2: the production workload's overall R/W ratio is 20:29
	// (write-leaning); the evening window shifts further toward writes.
	readsPerTxn, writesPerTxn, skew := 4, 6, 1.10
	if window == "9pm" {
		readsPerTxn, writesPerTxn, skew = 3, 9, 1.22
	}
	z := sim.NewZipf(r, skew, uint64(productionRows))
	t := &Trace{Window: window, Txns: make([]TracedTxn, txns)}
	// Key sets are carved exact-size from an arena: the set sizes are drawn
	// from the RNG before any key, so the value stream is byte-identical to
	// building the sets with append.
	var arena u64Arena
	var arrival time.Duration
	for i := 0; i < txns; i++ {
		// Poisson-ish arrivals around 4000 txn/s.
		arrival += time.Duration(r.ExpFloat64() * float64(time.Second) / 4000)
		tx := TracedTxn{ID: i, Arrival: arrival}
		nr := 1 + r.Intn(readsPerTxn*2)
		nw := r.Intn(writesPerTxn*2 + 1)
		tx.ReadSet = arena.take(nr)
		for j := 0; j < nr; j++ {
			tx.ReadSet[j] = z.Next()
		}
		// Writes land mostly on user-specific rows (uniform over the key
		// space); a small fraction touches shared hot counters, which is
		// what creates the dependency structure of Figure 3 without
		// serializing the whole trace.
		tx.WriteSet = arena.take(nw)
		for j := 0; j < nw; j++ {
			if r.Float64() < 0.02 {
				tx.WriteSet[j] = uint64(r.Int63n(hotKeyBound))
			} else {
				tx.WriteSet[j] = uint64(r.Int63n(productionRows))
			}
		}
		t.Txns[i] = tx
	}
	return t
}

// ProductionProfile derives the engine-facing profile from a captured
// trace, replayed through the transaction dependency graph (§2.1): the
// effective concurrency is the graph's average antichain width rather than
// the raw client count, because a transaction only starts once its parents
// committed.
func ProductionProfile(t *Trace) *Profile {
	var reads, writes int
	for _, tx := range t.Txns {
		reads += len(tx.ReadSet)
		writes += len(tx.WriteSet)
	}
	n := len(t.Txns)
	if n == 0 {
		n = 1
	}
	// The effective concurrency comes from simulating the DAG replay with
	// the worker pool, not from the raw client count.
	const replayWorkers = 256
	stats, err := SimulateReplay(t, ReplayDAG, replayWorkers, serviceTime)
	if err != nil {
		stats.EffectiveConcurrency = 1
	}
	skew, hotSet := windowShape(t.Window)
	return &Profile{
		Name:       "production-" + t.Window,
		Tables:     productionTables,
		Rows:       productionRows,
		DataBytes:  productionDataBytes,
		Threads:    replayWorkers, // replay worker pool
		Skew:       skew,
		HotSetSize: hotSet,
		Mix: []TxnClass{{
			Name:        "replay",
			Weight:      1,
			PointReads:  (reads + n - 1) / n,
			PointWrites: (writes + n - 1) / n,
			CPUMillis:   0.7,
			HotWrites:   1,
		}},
		ReplayConcurrency: stats.EffectiveConcurrency,
	}
}

// Production returns the profile for the standard 9:00 window using a
// fixed capture seed, matching the paper's primary production workload.
func Production() *Profile {
	return ProductionProfile(CaptureProduction(sim.NewRNG(909), "9am", 5000))
}

// ProductionDrifted returns the 21:00 window the workload drifts to at the
// 48-hour mark of Figure 10(b).
func ProductionDrifted() *Profile {
	return ProductionProfile(CaptureProduction(sim.NewRNG(2121), "9pm", 5000))
}
