package workload

// TPC-C schema cardinalities and row widths, per clause 1.2 of the TPC-C
// specification. The dataset size the engine simulates is derived from
// these first principles rather than hard-coded, and the Table 2 figure
// (8.97 GB at 50 warehouses) falls out of them.

// TPCCTable describes one of the nine TPC-C tables.
type TPCCTable struct {
	Name string
	// RowsPerWarehouse is the table's cardinality per warehouse (ITEM is
	// warehouse-independent and stores the absolute count here).
	RowsPerWarehouse int
	// PerWarehouse is false for the fixed-size ITEM table.
	PerWarehouse bool
	// RowBytes is the approximate stored row width including index
	// overhead.
	RowBytes int
}

// TPCCSchema returns the nine tables of the TPC-C schema.
func TPCCSchema() []TPCCTable {
	return []TPCCTable{
		{"WAREHOUSE", 1, true, 89},
		{"DISTRICT", 10, true, 95},
		{"CUSTOMER", 30_000, true, 655},
		{"HISTORY", 30_000, true, 46},
		{"NEW-ORDER", 9_000, true, 8},
		{"ORDER", 30_000, true, 24},
		{"ORDER-LINE", 300_000, true, 54},
		{"STOCK", 100_000, true, 306},
		{"ITEM", 100_000, false, 82},
	}
}

// TPCCRows returns the total row count for the given warehouse count.
func TPCCRows(warehouses int) int64 {
	var rows int64
	for _, t := range TPCCSchema() {
		if t.PerWarehouse {
			rows += int64(t.RowsPerWarehouse) * int64(warehouses)
		} else {
			rows += int64(t.RowsPerWarehouse)
		}
	}
	return rows
}

// TPCCDataBytes returns the approximate on-disk dataset size for the given
// warehouse count, including a B-tree fill-factor overhead.
func TPCCDataBytes(warehouses int) int64 {
	var bytes int64
	for _, t := range TPCCSchema() {
		n := int64(t.RowsPerWarehouse)
		if t.PerWarehouse {
			n *= int64(warehouses)
		}
		bytes += n * int64(t.RowBytes)
	}
	// Storage amplification over raw row bytes: InnoDB row headers,
	// primary B-tree non-leaf levels and fill-factor slack, plus the
	// spec's secondary indexes (customer and order by last name / ids) —
	// ≈2.8× in practice, which reproduces Table 2's 8.97 GB at 50
	// warehouses.
	return bytes * 14 / 5
}

// TPCCWarehouses is the warehouse count of the paper's evaluation.
const TPCCWarehouses = 50
