package workload

import (
	"math"
	"reflect"
	"testing"

	"github.com/hunter-cdb/hunter/internal/sim"
)

// Compression is a pure function of the trace: two independent runs must
// produce identical kernels, or tuning sessions would diverge by process.
func TestCompressProductionDeterministic(t *testing.T) {
	a := CompressProduction()
	b := CompressProduction()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("CompressProduction not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

func TestCompressTraceKernelShape(t *testing.T) {
	trace := CaptureProduction(sim.NewRNG(909), "9am", 5000)
	k := CompressTrace(trace, CompressOptions{})

	if k.Kept != 12 {
		t.Errorf("kept %d named classes, want 12 (MaxClasses default)", k.Kept)
	}
	if k.Clusters <= k.Kept {
		t.Errorf("clusters %d should exceed kept %d on the production trace", k.Clusters, k.Kept)
	}
	if k.Coverage <= 0.5 || k.Coverage > 1 {
		t.Errorf("named-class coverage %.3f, want (0.5, 1]", k.Coverage)
	}

	p := k.Profile
	if err := p.Validate(); err != nil {
		t.Fatalf("kernel profile invalid: %v", err)
	}
	if p.MeasureFraction != 0.25 {
		t.Errorf("kernel MeasureFraction %g, want default 0.25", p.MeasureFraction)
	}
	if len(p.Mix) != k.Kept {
		t.Errorf("mix has %d classes, want Kept=%d", len(p.Mix), k.Kept)
	}

	// Weight conservation: every traced transaction lands in exactly one
	// class, so the mix weights must sum to the trace size.
	var sum float64
	for _, c := range p.Mix {
		sum += c.Weight
	}
	if math.Abs(sum-float64(len(trace.Txns))) > 1e-9 {
		t.Errorf("mix weights sum to %g, want %d (one per traced txn)", sum, len(trace.Txns))
	}

	// The kernel must preserve the quantities ranking depends on: dataset
	// geometry, skew, hot set and the DAG-replay effective concurrency.
	full := ProductionProfile(trace)
	if p.Tables != full.Tables || p.Rows != full.Rows || p.DataBytes != full.DataBytes {
		t.Errorf("kernel geometry %d/%d/%d differs from full trace %d/%d/%d",
			p.Tables, p.Rows, p.DataBytes, full.Tables, full.Rows, full.DataBytes)
	}
	if p.Skew != full.Skew || p.HotSetSize != full.HotSetSize {
		t.Errorf("kernel skew/hotset %g/%d differs from full trace %g/%d",
			p.Skew, p.HotSetSize, full.Skew, full.HotSetSize)
	}
	if p.ReplayConcurrency != full.ReplayConcurrency {
		t.Errorf("kernel replay concurrency %d differs from full trace %d",
			p.ReplayConcurrency, full.ReplayConcurrency)
	}

	// Per-txn demand must be close to the full trace's blanket average, or
	// the kernel would model a different workload entirely.
	fr, fw, _, _, _ := full.Averages()
	kr, kw, _, _, _ := p.Averages()
	if math.Abs(kr-fr)/fr > 0.25 {
		t.Errorf("kernel mean reads/txn %.2f vs full %.2f, want within 25%%", kr, fr)
	}
	if math.Abs(kw-fw)/fw > 0.25 {
		t.Errorf("kernel mean writes/txn %.2f vs full %.2f, want within 25%%", kw, fw)
	}
}

func TestCompressTraceOptionClamps(t *testing.T) {
	trace := CaptureProduction(sim.NewRNG(909), "9am", 1000)
	k := CompressTrace(trace, CompressOptions{MaxClasses: 4, Fraction: 3})
	if k.Kept != 4 {
		t.Errorf("kept %d, want MaxClasses=4", k.Kept)
	}
	if k.Profile.MeasureFraction != 1 {
		t.Errorf("fraction %g, want clamp to 1", k.Profile.MeasureFraction)
	}
	if err := k.Profile.Validate(); err != nil {
		t.Fatalf("clamped kernel invalid: %v", err)
	}
}

func TestWithMeasureFraction(t *testing.T) {
	p := TPCC()
	q := p.WithMeasureFraction(0.25)
	if p.MeasureFraction != 0 {
		t.Fatalf("WithMeasureFraction mutated the receiver: %g", p.MeasureFraction)
	}
	if q.MeasureFraction != 0.25 {
		t.Fatalf("copy has fraction %g, want 0.25", q.MeasureFraction)
	}
	// The mix must be a deep copy; tuning sessions share profile pointers.
	q.Mix[0].Weight++
	if p.Mix[0].Weight == q.Mix[0].Weight {
		t.Fatal("WithMeasureFraction shares the Mix slice with the receiver")
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("fractioned profile invalid: %v", err)
	}
	bad := *p
	bad.MeasureFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted MeasureFraction=1.5")
	}
	bad.MeasureFraction = -0.1
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted MeasureFraction=-0.1")
	}
}
