// Package workload defines the stress-test workloads of the paper's
// evaluation (Table 2): the three Sysbench OLTP mixes, TPC-C, and the
// real-world "Production" workload, plus the trace-capture and
// dependency-graph replay machinery of §2.1.
//
// A workload is described to the engine as a Profile: a transaction mix
// with per-class read/write/scan/CPU demands, a key-access skew, and a
// client thread count. The simulated engine measures buffer-pool and lock
// behaviour directly from the profile's access stream.
package workload

import (
	"fmt"
)

// TxnClass is one transaction type in a mix (e.g. TPC-C NewOrder).
type TxnClass struct {
	Name string
	// Weight is the relative frequency of this class in the mix.
	Weight float64
	// PointReads and PointWrites are row-level accesses per transaction.
	PointReads  int
	PointWrites int
	// ScanRows is the number of rows touched by range scans per
	// transaction (drives sequential page reads and scan resistance in
	// the buffer pool).
	ScanRows int
	// CPUMillis is the pure computation demand per transaction on one
	// reference core, excluding I/O and lock waits.
	CPUMillis float64
	// TempTables counts implicit temp tables per transaction (sorts,
	// GROUP BY), which interact with tmp_table_size/work_mem.
	TempTables float64
	// HotWrites counts writes against the workload's small hot-row set
	// (e.g. TPC-C district/warehouse counters), the dominant source of
	// row-lock contention.
	HotWrites int
}

// Profile is the engine-facing description of a workload.
type Profile struct {
	Name string
	// Tables and Rows describe the dataset; DataBytes its on-disk size.
	Tables    int
	Rows      int64
	DataBytes int64
	// Threads is the number of client connections issuing transactions.
	Threads int
	// Skew is the Zipf exponent of key popularity (>1; higher = hotter
	// hot set). OLTP benchmarks default to mild skew; production traffic
	// is typically hotter.
	Skew float64
	// Mix is the transaction class mix.
	Mix []TxnClass
	// HotSetSize is the cardinality of the hot-row set HotWrites draws
	// from (0 when the workload has no such set).
	HotSetSize int64
	// ReplayConcurrency, when non-zero, overrides Threads as the
	// effective concurrency: trace replay is limited by the dependency
	// structure of the captured transactions rather than by client
	// threads (§2.1, Figure 3).
	ReplayConcurrency int
	// MeasureFraction scales the engine's measurement effort for this
	// profile: a compressed kernel measures a fraction of the full access
	// stream and lock batches per stress test, at bounded fidelity loss
	// (see CompressTrace). 0 (the default) and 1 both mean full effort;
	// the virtual-time cost of a stress test is unchanged either way —
	// the measurement window of Table 1 is fixed, only the simulation
	// work shrinks.
	MeasureFraction float64
}

// Validate checks profile consistency.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if p.Rows <= 0 || p.DataBytes <= 0 {
		return fmt.Errorf("workload %s: dataset must be positive", p.Name)
	}
	if p.Threads <= 0 {
		return fmt.Errorf("workload %s: threads must be positive", p.Name)
	}
	if len(p.Mix) == 0 {
		return fmt.Errorf("workload %s: empty transaction mix", p.Name)
	}
	var w float64
	for _, c := range p.Mix {
		if c.Weight < 0 {
			return fmt.Errorf("workload %s: negative weight in class %s", p.Name, c.Name)
		}
		w += c.Weight
	}
	if w <= 0 {
		return fmt.Errorf("workload %s: mix weights sum to zero", p.Name)
	}
	if p.MeasureFraction < 0 || p.MeasureFraction > 1 {
		return fmt.Errorf("workload %s: measure fraction %g outside [0,1]", p.Name, p.MeasureFraction)
	}
	return nil
}

// WithMeasureFraction returns a copy of p whose stress-test measurement
// effort is scaled to f ∈ (0,1]. The mix itself is untouched — this is the
// compression mode for synthetic benchmarks whose mix is already compact
// (TPC-C, sysbench); trace-backed workloads should go through CompressTrace
// instead, which also collapses the mix.
func (p *Profile) WithMeasureFraction(f float64) *Profile {
	q := *p
	q.Mix = append([]TxnClass(nil), p.Mix...)
	q.MeasureFraction = f
	return &q
}

// EffectiveThreads is the concurrency the engine should model.
func (p *Profile) EffectiveThreads() int {
	if p.ReplayConcurrency > 0 && p.ReplayConcurrency < p.Threads {
		return p.ReplayConcurrency
	}
	return p.Threads
}

// Averages returns the mix-weighted mean demands per transaction.
func (p *Profile) Averages() (reads, writes, scanRows, cpuMillis, tempTables float64) {
	var w float64
	for _, c := range p.Mix {
		w += c.Weight
	}
	for _, c := range p.Mix {
		f := c.Weight / w
		reads += f * float64(c.PointReads)
		writes += f * float64(c.PointWrites)
		scanRows += f * float64(c.ScanRows)
		cpuMillis += f * c.CPUMillis
		tempTables += f * c.TempTables
	}
	return
}

// WriteFraction returns the fraction of row accesses that are writes.
func (p *Profile) WriteFraction() float64 {
	r, wr, scan, _, _ := p.Averages()
	total := r + wr + scan
	if total == 0 {
		return 0
	}
	return wr / total
}

// PickClass deterministically selects a class index from u ∈ [0,1).
func (p *Profile) PickClass(u float64) int {
	var w float64
	for _, c := range p.Mix {
		w += c.Weight
	}
	target := u * w
	var acc float64
	for i, c := range p.Mix {
		acc += c.Weight
		if target < acc {
			return i
		}
	}
	return len(p.Mix) - 1
}
