package workload

// Workload compression: collapse a captured production trace into a small
// representative kernel that the engine can evaluate several times faster
// at bounded fidelity loss.
//
// Every tuning step stress-tests the workload, so the evaluation cost of a
// session is (steps × per-stress-test work). The trace's query classes are
// clustered by access signature — which table groups a transaction
// touches, its read/write mix, its working-set size and its lock footprint
// — and each cluster becomes one weighted transaction class of the kernel
// mix. The kernel keeps the trace's dataset geometry, skew, hot set and
// DAG-replay concurrency, so the buffer-pool and queueing behaviour a
// tuner ranks configurations by is preserved; the per-stress-test access
// stream and lock sample shrink by the kernel's MeasureFraction. Fidelity
// (compressed vs. full-trace TPS/latency and ranking agreement across a
// random-config corpus) is validated in internal/simdb.

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/hunter-cdb/hunter/internal/sim"
)

// hotKeyBound is the shared hot-counter key range of the production trace
// (CaptureProduction writes 2% of updates into [0, 2000)); writes below it
// are the trace's row-lock contention source.
const hotKeyBound = 2000

// tableGroups is the number of table buckets in an access signature. The
// 222 production tables fold into this many groups so the signature space
// stays small enough to cluster a 5000-transaction trace into dozens, not
// thousands, of classes.
const tableGroups = 8

// txnSignature is the access signature transactions are clustered by. The
// table set enters as its breadth (how many table groups the transaction
// spans, bucketed) rather than the exact group mask: production keys
// spread near-uniformly over 222 tables, so the exact mask is noise that
// would shatter the clustering, while the breadth separates narrow
// single-table transactions from wide cross-table ones.
type txnSignature struct {
	tables uint8 // log2 bucket of distinct table groups touched (table set breadth)
	rw     uint8 // read-count bucket <<4 | write-count bucket (read/write mix)
	ws     uint8 // log2 bucket of the touched-key working set
	hot    uint8 // log2 bucket of hot-range writes (lock footprint)
}

// bucket maps a count onto its log2 bucket (0→0, 1→1, 2..3→2, 4..7→3, …),
// coarse enough that sampling noise does not split clusters.
func bucket(n int) uint8 {
	return uint8(bits.Len(uint(n)))
}

// signatureOf computes a transaction's signature and its hot-write count.
func signatureOf(tx *TracedTxn, tables int) (txnSignature, int) {
	var mask uint8
	group := func(key uint64) uint8 {
		table := key % uint64(tables)
		return uint8(table * tableGroups / uint64(tables))
	}
	hot := 0
	for _, k := range tx.ReadSet {
		mask |= 1 << group(k)
	}
	for _, k := range tx.WriteSet {
		mask |= 1 << group(k)
		if k < hotKeyBound {
			hot++
		}
	}
	return txnSignature{
		tables: bucket(bits.OnesCount8(mask)),
		rw:     bucket(len(tx.ReadSet))<<4 | bucket(len(tx.WriteSet)),
		ws:     bucket(len(tx.ReadSet) + len(tx.WriteSet)),
		hot:    bucket(hot),
	}, hot
}

// CompressOptions configures trace compression.
type CompressOptions struct {
	// MaxClasses caps the kernel mix size: the largest clusters become
	// named classes and everything else folds into one residual class.
	// Default 12.
	MaxClasses int
	// Fraction is the measurement-effort fraction the kernel profile
	// carries (Profile.MeasureFraction). Default 0.25.
	Fraction float64
	// ReplayWorkers is the DAG-replay worker pool used to derive the
	// kernel's effective concurrency; default 256, matching
	// ProductionProfile.
	ReplayWorkers int
}

func (o CompressOptions) withDefaults() CompressOptions {
	if o.MaxClasses <= 0 {
		o.MaxClasses = 12
	}
	if o.Fraction <= 0 {
		o.Fraction = 0.25
	}
	if o.Fraction > 1 {
		o.Fraction = 1
	}
	if o.ReplayWorkers <= 0 {
		o.ReplayWorkers = 256
	}
	return o
}

// Kernel is a compressed workload: the engine-facing profile plus the
// compression statistics fidelity reports quote.
type Kernel struct {
	Profile *Profile
	// Clusters is the number of distinct access-signature clusters in the
	// trace.
	Clusters int
	// Kept is the number of clusters kept as named kernel classes (the
	// rest fold into the residual class).
	Kept int
	// Coverage is the fraction of traced transactions the named classes
	// represent.
	Coverage float64
}

// cluster accumulates one signature's transactions.
type cluster struct {
	sig    txnSignature
	count  int
	reads  int
	writes int
	hot    int
}

// class renders the cluster as a weighted kernel transaction class, using
// the same ceil-average demands as ProductionProfile's replay class.
func (c *cluster) class(name string) TxnClass {
	n := c.count
	if n == 0 {
		n = 1
	}
	cls := TxnClass{
		Name:        name,
		Weight:      float64(c.count),
		PointReads:  (c.reads + n - 1) / n,
		PointWrites: (c.writes + n - 1) / n,
		CPUMillis:   0.7, // per-txn CPU demand of the replayed trace
		HotWrites:   (c.hot + n - 1) / n,
	}
	if cls.HotWrites > cls.PointWrites {
		cls.HotWrites = cls.PointWrites
	}
	return cls
}

// CompressTrace clusters a captured trace by access signature into a
// representative kernel profile. The kernel preserves the trace's dataset
// geometry, skew, hot set and DAG-replay effective concurrency — the
// quantities configuration ranking depends on — while carrying a per-class
// weighted mix and a reduced MeasureFraction, so each stress test costs a
// fraction of the full-trace evaluation.
func CompressTrace(t *Trace, opts CompressOptions) *Kernel {
	opts = opts.withDefaults()

	bySig := make(map[txnSignature]*cluster)
	var order []*cluster // first-appearance order, for deterministic ties
	for i := range t.Txns {
		tx := &t.Txns[i]
		sig, hot := signatureOf(tx, productionTables)
		c := bySig[sig]
		if c == nil {
			c = &cluster{sig: sig}
			bySig[sig] = c
			order = append(order, c)
		}
		c.count++
		c.reads += len(tx.ReadSet)
		c.writes += len(tx.WriteSet)
		c.hot += hot
	}
	// Largest clusters first; ties keep first-appearance order so the
	// kernel is a pure function of the trace.
	sort.SliceStable(order, func(i, j int) bool { return order[i].count > order[j].count })

	total := len(t.Txns)
	if total == 0 {
		total = 1
	}
	kept := len(order)
	if kept > opts.MaxClasses {
		kept = opts.MaxClasses - 1 // reserve a slot for the residual class
	}
	covered := 0
	mix := make([]TxnClass, 0, kept+1)
	for i := 0; i < kept; i++ {
		c := order[i]
		covered += c.count
		mix = append(mix, c.class(fmt.Sprintf("k%02d-r%dw%d", i, c.sig.rw>>4, c.sig.rw&0xf)))
	}
	if covered < total && kept < len(order) {
		// Fold the tail clusters into one residual class so the kernel's
		// aggregate demands still match the whole trace.
		var rest cluster
		for _, c := range order[kept:] {
			rest.count += c.count
			rest.reads += c.reads
			rest.writes += c.writes
			rest.hot += c.hot
		}
		mix = append(mix, rest.class("k-rest"))
	}

	// The kernel replays through the same dependency-graph scheduling as
	// the full trace: the effective concurrency comes from the complete
	// DAG, not from the compressed mix.
	stats, err := SimulateReplay(t, ReplayDAG, opts.ReplayWorkers, serviceTime)
	if err != nil {
		stats.EffectiveConcurrency = 1
	}
	skew, hotSet := windowShape(t.Window)
	p := &Profile{
		Name:              "production-" + t.Window + "-kernel",
		Tables:            productionTables,
		Rows:              productionRows,
		DataBytes:         productionDataBytes,
		Threads:           opts.ReplayWorkers,
		Skew:              skew,
		HotSetSize:        hotSet,
		Mix:               mix,
		ReplayConcurrency: stats.EffectiveConcurrency,
		MeasureFraction:   opts.Fraction,
	}
	return &Kernel{
		Profile:  p,
		Clusters: len(order),
		Kept:     len(mix),
		Coverage: float64(covered) / float64(total),
	}
}

// CompressProduction captures the standard 9:00 production window with the
// same fixed seed as Production and compresses it with default options —
// the kernel the -compress CLI flag evaluates instead of the full trace.
func CompressProduction() *Kernel {
	return CompressTrace(CaptureProduction(sim.NewRNG(909), "9am", 5000), CompressOptions{})
}
