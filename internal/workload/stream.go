package workload

import (
	"fmt"
	"math"
	"time"

	"github.com/hunter-cdb/hunter/internal/sim"
)

// This file is the continuous-drift driver: instead of a single scheduled
// workload switch, a StreamSpec expands into a seeded, deterministic
// *sequence* of profile shifts fired through the virtual clock. Three
// stream shapes cover the live-traffic scenarios the online safety loop is
// built for: diurnal load cycles, flash crowds, and steady schema/hot-set
// growth. Every event profile is derived from the base profile by pure
// arithmetic on a seeded RNG, so a (base, spec) pair always expands to the
// same events — across runs, worker counts and checkpoint resumes.

// Stream kinds.
const (
	StreamDiurnal = "diurnal" // sinusoidal thread/skew cycle (day/night traffic)
	StreamFlash   = "flash"   // sudden crowd arrivals with calm recoveries
	StreamGrowth  = "growth"  // monotone dataset/schema/hot-set growth
)

// StreamKinds lists the built-in drift stream kinds.
func StreamKinds() []string { return []string{StreamDiurnal, StreamFlash, StreamGrowth} }

// StreamSpec describes a deterministic drift stream. The zero value of
// every optional field selects a sensible default (see withDefaults).
type StreamSpec struct {
	// Kind selects the stream shape: "diurnal", "flash" or "growth".
	Kind string
	// Period is the virtual-time span the events are spread over
	// (default 12 h). Events are evenly spaced with a small seeded jitter.
	Period time.Duration
	// Events is the number of profile shifts to schedule (default 6).
	Events int
	// Amplitude in (0,1] scales how far each shift moves the profile
	// (default 0.5).
	Amplitude float64
	// Seed drives the jitter and per-event perturbations.
	Seed int64
}

// DriftEvent is one scheduled profile shift of an expanded stream.
type DriftEvent struct {
	At      time.Duration
	Profile *Profile
}

func (s StreamSpec) withDefaults() StreamSpec {
	if s.Period <= 0 {
		s.Period = 12 * time.Hour
	}
	if s.Events == 0 {
		s.Events = 6
	}
	if s.Amplitude == 0 {
		s.Amplitude = 0.5
	}
	return s
}

// Validate checks a spec after defaults are applied.
func (s StreamSpec) Validate() error {
	switch s.Kind {
	case StreamDiurnal, StreamFlash, StreamGrowth:
	default:
		return fmt.Errorf("workload: unknown stream kind %q (have diurnal, flash, growth)", s.Kind)
	}
	if s.Events < 1 {
		return fmt.Errorf("workload: stream needs at least one event, got %d", s.Events)
	}
	if s.Amplitude < 0 || s.Amplitude > 1 {
		return fmt.Errorf("workload: stream amplitude %g outside (0,1]", s.Amplitude)
	}
	return nil
}

// clone copies a profile deeply enough that morphing it cannot alias the
// base profile's mix.
func (p *Profile) clone() *Profile {
	q := *p
	q.Mix = append([]TxnClass(nil), p.Mix...)
	return &q
}

// GenerateStream expands a spec against a base profile into an ordered,
// validated drift-event sequence. The expansion is a pure function of
// (base, spec): the same inputs always produce byte-identical events.
func GenerateStream(base *Profile, spec StreamSpec) ([]DriftEvent, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(spec.Seed ^ 0x5afe_d21f7)
	step := spec.Period / time.Duration(spec.Events)
	events := make([]DriftEvent, 0, spec.Events)
	for i := 0; i < spec.Events; i++ {
		// Evenly spaced instants with ±step/8 of seeded jitter: ordering is
		// preserved because the jitter band is far narrower than the step.
		jitter := time.Duration((rng.Float64()*2 - 1) * float64(step) / 8)
		at := step*time.Duration(i+1) + jitter
		var p *Profile
		switch spec.Kind {
		case StreamDiurnal:
			p = diurnalShift(base, spec, i, rng.Float64())
		case StreamFlash:
			p = flashShift(base, spec, i, rng.Float64())
		case StreamGrowth:
			p = growthShift(base, spec, i)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("workload: stream event %d: %w", i, err)
		}
		events = append(events, DriftEvent{At: at, Profile: p})
	}
	return events, nil
}

// diurnalShift samples a sinusoidal day/night cycle: traffic (threads)
// swells and shrinks, and at the peak the access pattern runs hotter
// (higher skew, smaller hot set).
func diurnalShift(base *Profile, spec StreamSpec, i int, u float64) *Profile {
	p := base.clone()
	phase := 2 * math.Pi * float64(i+1) / float64(spec.Events)
	swell := 1 + spec.Amplitude*math.Sin(phase)
	// A small seeded wobble keeps consecutive days from repeating exactly.
	swell *= 1 + 0.05*spec.Amplitude*(2*u-1)
	p.Name = fmt.Sprintf("%s+diurnal%02d", base.Name, i+1)
	p.Threads = maxInt(1, int(math.Round(float64(base.Threads)*swell)))
	p.Skew = clampSkew(base.Skew * (1 + 0.12*spec.Amplitude*math.Sin(phase)))
	if base.HotSetSize > 0 {
		p.HotSetSize = maxInt64(1, int64(float64(base.HotSetSize)/swell))
	}
	return p
}

// flashShift alternates sudden crowd arrivals (even events) with calm
// recoveries back to the base shape (odd events).
func flashShift(base *Profile, spec StreamSpec, i int, u float64) *Profile {
	p := base.clone()
	if i%2 == 1 {
		p.Name = fmt.Sprintf("%s+calm%02d", base.Name, i/2+1)
		return p
	}
	surge := 1 + 2*spec.Amplitude*(1+0.1*(2*u-1))
	p.Name = fmt.Sprintf("%s+flash%02d", base.Name, i/2+1)
	p.Threads = maxInt(1, int(math.Round(float64(base.Threads)*surge)))
	p.Skew = clampSkew(base.Skew + 0.3*spec.Amplitude)
	if base.HotSetSize > 0 {
		// A flash crowd hammers a far smaller hot set (everyone wants the
		// same rows), which is what drives the lock-contention collapse.
		p.HotSetSize = maxInt64(1, int64(float64(base.HotSetSize)/(1+3*spec.Amplitude)))
	}
	return p
}

// growthShift compounds dataset and schema growth: rows, bytes, tables and
// the hot set all grow monotonically event over event.
func growthShift(base *Profile, spec StreamSpec, i int) *Profile {
	p := base.clone()
	g := math.Pow(1+0.25*spec.Amplitude, float64(i+1))
	p.Name = fmt.Sprintf("%s+growth%02d", base.Name, i+1)
	p.Rows = int64(float64(base.Rows) * g)
	p.DataBytes = int64(float64(base.DataBytes) * g)
	p.Tables = base.Tables + (i+1)*maxInt(1, base.Tables/8)
	if base.HotSetSize > 0 {
		p.HotSetSize = int64(float64(base.HotSetSize) * math.Sqrt(g))
	}
	return p
}

// clampSkew keeps a morphed Zipf exponent in the engine's valid range.
func clampSkew(s float64) float64 {
	if s < 1.01 {
		return 1.01
	}
	if s > 2.5 {
		return 2.5
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
