package workload

// The transaction dependency graph of §2.1 (Figure 3). Replaying a
// captured trace strictly in arrival order is reliable but serial; instead
// HUNTER builds a DAG whose edges are the conflicts between transactions
// (a later transaction that reads or writes a key written by an earlier
// one must wait for it) and replays any transaction whose parents have all
// committed, recovering the trace's inherent concurrency.

// DepGraph is the conflict DAG over a trace. Nodes are transaction indices
// in arrival order; every edge points from an earlier transaction to a
// later dependent one, so the graph is acyclic by construction.
type DepGraph struct {
	n        int
	children [][]int
	parents  []int // in-degree
	levels   []int // longest-path depth of each node
}

// BuildDepGraph constructs the dependency graph of a trace in O(total
// operations) using last-writer / readers-since-write tracking per key:
//
//   - a read of key k depends on the latest write of k;
//   - a write of key k depends on the latest write of k and on every read
//     of k since that write (write-read, read-write and write-write
//     conflicts, as in the paper's example).
func BuildDepGraph(t *Trace) *DepGraph {
	n := len(t.Txns)
	g := &DepGraph{n: n, children: make([][]int, n), parents: make([]int, n), levels: make([]int, n)}
	lastWriter := make(map[uint64]int)
	readersSince := make(map[uint64][]int)
	addEdge := func(from, to int, seen map[int]bool) {
		if from == to || seen[from] {
			return
		}
		seen[from] = true
		g.children[from] = append(g.children[from], to)
		g.parents[to]++
	}
	for i, tx := range t.Txns {
		seen := make(map[int]bool)
		for _, k := range tx.ReadSet {
			if w, ok := lastWriter[k]; ok {
				addEdge(w, i, seen)
			}
		}
		for _, k := range tx.WriteSet {
			if w, ok := lastWriter[k]; ok {
				addEdge(w, i, seen)
			}
			for _, r := range readersSince[k] {
				addEdge(r, i, seen)
			}
		}
		// Update key bookkeeping after edges so self-conflicts within a
		// transaction do not create self-edges.
		for _, k := range tx.WriteSet {
			lastWriter[k] = i
			readersSince[k] = readersSince[k][:0]
		}
		for _, k := range tx.ReadSet {
			readersSince[k] = append(readersSince[k], i)
		}
		// Longest-path level: one more than the deepest parent.
		level := 0
		for p := range seen {
			if g.levels[p]+1 > level {
				level = g.levels[p] + 1
			}
		}
		g.levels[i] = level
	}
	return g
}

// Len returns the number of transactions in the graph.
func (g *DepGraph) Len() int { return g.n }

// Children returns the dependents of transaction i.
func (g *DepGraph) Children(i int) []int { return g.children[i] }

// InDegree returns the number of parents of transaction i.
func (g *DepGraph) InDegree(i int) int { return g.parents[i] }

// Depth returns the longest dependency chain length (number of levels).
func (g *DepGraph) Depth() int {
	max := 0
	for _, l := range g.levels {
		if l+1 > max {
			max = l + 1
		}
	}
	return max
}

// Level returns the longest-path level of transaction i (roots are 0).
func (g *DepGraph) Level(i int) int { return g.levels[i] }

// AverageWidth returns the mean number of transactions per level — the
// concurrency a level-synchronous replay can sustain, which the engine
// uses as the trace's effective thread count.
func (g *DepGraph) AverageWidth() int {
	d := g.Depth()
	if d == 0 {
		return 1
	}
	w := g.n / d
	if w < 1 {
		w = 1
	}
	return w
}

// ReplayOrder returns a schedule of transaction batches: batch b contains
// every transaction whose parents are all in earlier batches, so all
// transactions within a batch may execute concurrently. The concatenation
// of batches is a topological order of the DAG.
func (g *DepGraph) ReplayOrder() [][]int {
	byLevel := make([][]int, g.Depth())
	for i := 0; i < g.n; i++ {
		byLevel[g.levels[i]] = append(byLevel[g.levels[i]], i)
	}
	return byLevel
}

// ArrivalOrderConcurrency reports the concurrency of the naive
// arrival-order replay the paper contrasts against: transactions replay
// strictly serially (concurrency 1) to preserve the original order.
func ArrivalOrderConcurrency() int { return 1 }
