package workload

import (
	"testing"

	"github.com/hunter-cdb/hunter/internal/sim"
)

// Trace capture carves key sets from a shared arena instead of growing two
// slices per transaction. Before the arena a 1000-txn capture cost 6539
// allocations; with it the whole capture costs 4 (trace header, txn slice,
// Zipf state, one arena block). The guard leaves headroom for an extra
// arena block, not for a regression back to per-set allocation.
func TestCaptureProductionAllocs(t *testing.T) {
	r := sim.NewRNG(3)
	got := testing.AllocsPerRun(10, func() { CaptureProduction(r, "9am", 1000) })
	if got > 8 {
		t.Errorf("CaptureProduction(1000 txns) = %v allocs, want <= 8 (was 6539 before the arena)", got)
	}
}

// Profile generators run inside tuning sessions (clone construction, wave
// evaluation), so they must stay allocation-flat. Measured: TPCC 5,
// SysbenchRW/RO/WO 0 (fully stack-allocated mixes).
func TestProfileGeneratorAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func() *Profile
		max  float64
	}{
		{"TPCC", TPCC, 8},
		{"SysbenchRW", SysbenchRW, 4},
		{"SysbenchRO", SysbenchRO, 4},
		{"SysbenchWO", SysbenchWO, 4},
	} {
		got := testing.AllocsPerRun(10, func() { tc.gen() })
		if got > tc.max {
			t.Errorf("%s() = %v allocs, want <= %v", tc.name, got, tc.max)
		}
	}
}

// Production() is dominated by the 5000-txn capture plus the DAG replay;
// the capture side must stay arena-backed. The replay simulation owns its
// scheduling state, so the bound is structural (per-capture), not per-txn:
// it must not scale with trace length.
func TestProductionCaptureAllocsFlat(t *testing.T) {
	small := testing.AllocsPerRun(5, func() { CaptureProduction(sim.NewRNG(3), "9am", 500) })
	large := testing.AllocsPerRun(5, func() { CaptureProduction(sim.NewRNG(3), "9am", 4000) })
	// 8x the transactions may cost at most a few extra arena blocks.
	if large > small+8 {
		t.Errorf("capture allocs scale with trace length: %v @500 txns vs %v @4000", small, large)
	}
}
