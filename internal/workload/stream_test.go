package workload

import (
	"reflect"
	"testing"
	"time"
)

func TestGenerateStreamDeterministic(t *testing.T) {
	spec := StreamSpec{Kind: StreamDiurnal, Period: 6 * time.Hour, Events: 5, Seed: 42}
	a, err := GenerateStream(TPCC(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStream(TPCC(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (base, spec) produced different streams")
	}
	c, err := GenerateStream(TPCC(), StreamSpec{Kind: StreamDiurnal, Period: 6 * time.Hour, Events: 5, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGenerateStreamOrderedAndValid(t *testing.T) {
	for _, kind := range StreamKinds() {
		events, err := GenerateStream(Production(), StreamSpec{Kind: kind, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(events) != 6 {
			t.Fatalf("%s: want 6 default events, got %d", kind, len(events))
		}
		var prev time.Duration
		for i, ev := range events {
			if ev.At <= prev {
				t.Fatalf("%s: event %d at %v not after %v", kind, i, ev.At, prev)
			}
			prev = ev.At
			if err := ev.Profile.Validate(); err != nil {
				t.Fatalf("%s: event %d profile invalid: %v", kind, i, err)
			}
			if ev.Profile.Name == Production().Name {
				t.Fatalf("%s: event %d profile not renamed", kind, i)
			}
		}
	}
}

func TestGenerateStreamShapes(t *testing.T) {
	base := TPCC()

	flash, err := GenerateStream(base, StreamSpec{Kind: StreamFlash, Events: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if flash[0].Profile.Threads <= base.Threads {
		t.Fatalf("flash crowd should raise threads: %d <= %d", flash[0].Profile.Threads, base.Threads)
	}
	if flash[0].Profile.HotSetSize >= base.HotSetSize {
		t.Fatalf("flash crowd should shrink the hot set: %d >= %d", flash[0].Profile.HotSetSize, base.HotSetSize)
	}
	if flash[1].Profile.Threads != base.Threads {
		t.Fatalf("calm event should return to base threads: %d != %d", flash[1].Profile.Threads, base.Threads)
	}

	growth, err := GenerateStream(base, StreamSpec{Kind: StreamGrowth, Events: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prevRows := base.Rows
	for i, ev := range growth {
		if ev.Profile.Rows <= prevRows {
			t.Fatalf("growth event %d rows %d not above %d", i, ev.Profile.Rows, prevRows)
		}
		prevRows = ev.Profile.Rows
	}
	if growth[2].Profile.Tables <= base.Tables {
		t.Fatal("growth should add tables")
	}
}

func TestGenerateStreamValidation(t *testing.T) {
	cases := []StreamSpec{
		{Kind: "tsunami"},
		{Kind: StreamDiurnal, Events: -1},
		{Kind: StreamDiurnal, Amplitude: 1.5},
		{Kind: StreamDiurnal, Amplitude: -0.1},
	}
	for _, spec := range cases {
		if _, err := GenerateStream(TPCC(), spec); err == nil {
			t.Fatalf("spec %+v should be rejected", spec)
		}
	}
}

func TestStreamProfilesDoNotAliasBase(t *testing.T) {
	base := TPCC()
	events, err := GenerateStream(base, StreamSpec{Kind: StreamDiurnal, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	events[0].Profile.Mix[0].Weight = 99
	if base.Mix[0].Weight == 99 {
		t.Fatal("event profile mix aliases the base profile")
	}
}
