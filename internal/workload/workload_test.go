package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/hunter-cdb/hunter/internal/sim"
)

// TestTable2Definitions pins the workload parameters to Table 2.
func TestTable2Definitions(t *testing.T) {
	for _, p := range []*Profile{SysbenchRO(), SysbenchWO(), SysbenchRW()} {
		if p.Threads != 512 {
			t.Errorf("%s threads = %d, want 512", p.Name, p.Threads)
		}
		if p.DataBytes != 8<<30 {
			t.Errorf("%s size = %d, want 8 GB", p.Name, p.DataBytes)
		}
		if p.Tables != 8 || p.Rows != 64_000_000 {
			t.Errorf("%s dataset wrong: %d tables, %d rows", p.Name, p.Tables, p.Rows)
		}
	}
	tp := TPCC()
	if tp.Threads != 32 {
		t.Errorf("tpcc clients = %d, want 32", tp.Threads)
	}
	want := int64(8_970) << 20 // Table 2: 8.97 GB
	if diff := tp.DataBytes - want; diff < -want/30 || diff > want/30 {
		t.Errorf("tpcc size = %.2f GB, want ≈8.97 GB", float64(tp.DataBytes)/(1<<30))
	}
	if tp.Rows != TPCCRows(TPCCWarehouses) {
		t.Errorf("tpcc rows %d inconsistent with schema", tp.Rows)
	}
	if len(tp.Mix) != 5 {
		t.Errorf("tpcc mix has %d classes, want 5", len(tp.Mix))
	}
	prod := Production()
	if prod.Tables != 222 || prod.DataBytes != 250<<30 {
		t.Errorf("production dataset wrong: %d tables %d bytes", prod.Tables, prod.DataBytes)
	}
}

func TestReadWriteRatios(t *testing.T) {
	if wf := SysbenchRO().WriteFraction(); wf != 0 {
		t.Errorf("RO write fraction = %v", wf)
	}
	if wf := SysbenchWO().WriteFraction(); wf != 1 {
		t.Errorf("WO write fraction = %v", wf)
	}
	rw := SysbenchRW().WriteFraction()
	if rw <= 0 || rw >= 1 {
		t.Errorf("RW write fraction = %v", rw)
	}
	// Production is write-leaning (R/W 20:29 in Table 2).
	if wf := Production().WriteFraction(); wf < 0.35 {
		t.Errorf("production write fraction = %v, should be write-leaning", wf)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []*Profile{
		{},
		{Name: "x", Rows: 1, DataBytes: 1, Threads: 0, Mix: []TxnClass{{Weight: 1}}},
		{Name: "x", Rows: 1, DataBytes: 1, Threads: 1},
		{Name: "x", Rows: 1, DataBytes: 1, Threads: 1, Mix: []TxnClass{{Weight: -1}}},
		{Name: "x", Rows: 1, DataBytes: 1, Threads: 1, Mix: []TxnClass{{Weight: 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d should be invalid", i)
		}
	}
	if err := TPCC().Validate(); err != nil {
		t.Errorf("tpcc invalid: %v", err)
	}
}

func TestAveragesWeighting(t *testing.T) {
	p := &Profile{
		Name: "x", Rows: 1, DataBytes: 1, Threads: 1,
		Mix: []TxnClass{
			{Weight: 3, PointReads: 10, CPUMillis: 1},
			{Weight: 1, PointWrites: 8, CPUMillis: 5},
		},
	}
	r, w, _, cpu, _ := p.Averages()
	if r != 7.5 || w != 2 || cpu != 2 {
		t.Fatalf("averages = %v %v %v", r, w, cpu)
	}
}

func TestPickClassDistribution(t *testing.T) {
	p := TPCC()
	counts := make([]int, len(p.Mix))
	rng := sim.NewRNG(1)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[p.PickClass(rng.Float64())]++
	}
	// NewOrder weight 45/100.
	if frac := float64(counts[0]) / n; math.Abs(frac-0.45) > 0.01 {
		t.Fatalf("new_order frequency %.3f, want ≈0.45", frac)
	}
	if p.PickClass(0.9999) != len(p.Mix)-1 && p.PickClass(0.9999) < 0 {
		t.Fatal("u near 1 must return a valid class")
	}
}

func TestEffectiveThreads(t *testing.T) {
	p := &Profile{Threads: 256, ReplayConcurrency: 40}
	if p.EffectiveThreads() != 40 {
		t.Fatal("replay concurrency should cap threads")
	}
	p.ReplayConcurrency = 0
	if p.EffectiveThreads() != 256 {
		t.Fatal("no replay cap: use threads")
	}
	p.ReplayConcurrency = 1000
	if p.EffectiveThreads() != 256 {
		t.Fatal("replay wider than threads: use threads")
	}
}

func TestCaptureProductionWindows(t *testing.T) {
	am := CaptureProduction(sim.NewRNG(1), "9am", 2000)
	pm := CaptureProduction(sim.NewRNG(1), "9pm", 2000)
	ratio := func(tr *Trace) float64 {
		var r, w int
		for _, tx := range tr.Txns {
			r += len(tx.ReadSet)
			w += len(tx.WriteSet)
		}
		return float64(w) / float64(r+w)
	}
	if ratio(pm) <= ratio(am) {
		t.Fatalf("evening window should be more write-heavy: am=%.2f pm=%.2f", ratio(am), ratio(pm))
	}
	if len(am.Txns) != 2000 {
		t.Fatalf("trace length %d", len(am.Txns))
	}
	// Arrivals must be non-decreasing.
	for i := 1; i < len(am.Txns); i++ {
		if am.Txns[i].Arrival < am.Txns[i-1].Arrival {
			t.Fatal("arrivals must be monotone")
		}
	}
}

func TestProductionProfilesDiffer(t *testing.T) {
	a, b := Production(), ProductionDrifted()
	if a.Name == b.Name {
		t.Fatal("drifted profile should have a different name")
	}
	if a.WriteFraction() >= b.WriteFraction() {
		t.Fatalf("drift should increase write fraction: %v vs %v", a.WriteFraction(), b.WriteFraction())
	}
	if a.ReplayConcurrency <= 1 {
		t.Fatal("DAG replay should recover concurrency > 1")
	}
}

func TestSysbenchRWRatio(t *testing.T) {
	p41 := SysbenchRWRatio(4, 1)
	p11 := SysbenchRWRatio(1, 1)
	if p41.WriteFraction() >= p11.WriteFraction() {
		t.Fatalf("4:1 should write less than 1:1: %v vs %v", p41.WriteFraction(), p11.WriteFraction())
	}
	if p41.Name == p11.Name {
		t.Fatal("ratio must be part of the name")
	}
}

// --- Dependency graph (Figure 3) ---

func TestDepGraphPaperExample(t *testing.T) {
	// Six transactions: A1 and A2 are roots; B1, B2 depend on A1; B3
	// depends on A1 and A2 (via write-write conflicts on shared keys).
	tr := &Trace{Txns: []TracedTxn{
		{ID: 0, WriteSet: []uint64{1, 2}},                    // A1
		{ID: 1, WriteSet: []uint64{3}},                       // A2
		{ID: 2, WriteSet: []uint64{1}},                       // B1 ← A1 (key 1)
		{ID: 3, ReadSet: []uint64{2}},                        // B2 ← A1 (key 2)
		{ID: 4, WriteSet: []uint64{3}, ReadSet: []uint64{2}}, // B3 ← A1, A2
	}}
	g := BuildDepGraph(tr)
	if g.Level(0) != 0 || g.Level(1) != 0 {
		t.Fatal("A1 and A2 must be roots")
	}
	for _, b := range []int{2, 3, 4} {
		if g.Level(b) != 1 {
			t.Fatalf("B%d at level %d, want 1", b-1, g.Level(b))
		}
	}
	if g.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", g.Depth())
	}
	order := g.ReplayOrder()
	if len(order[0]) != 2 || len(order[1]) != 3 {
		t.Fatalf("replay batches %v", order)
	}
}

// TestDepGraphTopologicalProperty: for random traces, every edge points
// forward in arrival order (acyclic by construction) and the replay order
// schedules every parent before its children.
func TestDepGraphTopologicalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		tr := CaptureProduction(rng, "9am", 300+rng.Intn(300))
		g := BuildDepGraph(tr)
		pos := make([]int, g.Len())
		idx := 0
		for _, batch := range g.ReplayOrder() {
			for _, tx := range batch {
				pos[tx] = idx
			}
			idx++
		}
		total := 0
		for i := 0; i < g.Len(); i++ {
			for _, c := range g.Children(i) {
				if c <= i {
					return false // edge pointing backwards
				}
				if pos[c] <= pos[i] {
					return false // child scheduled with/before parent
				}
			}
			total++
		}
		// Every transaction appears exactly once in the replay order.
		seen := 0
		for _, b := range g.ReplayOrder() {
			seen += len(b)
		}
		return seen == g.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDepGraphWidthBeatsArrivalOrder(t *testing.T) {
	tr := CaptureProduction(sim.NewRNG(3), "9am", 3000)
	g := BuildDepGraph(tr)
	if g.AverageWidth() <= ArrivalOrderConcurrency() {
		t.Fatalf("DAG replay width %d should beat serial arrival-order replay", g.AverageWidth())
	}
}

func TestDepGraphSerialChain(t *testing.T) {
	// All transactions write the same key: fully serial.
	txns := make([]TracedTxn, 10)
	for i := range txns {
		txns[i] = TracedTxn{ID: i, WriteSet: []uint64{7}}
	}
	g := BuildDepGraph(&Trace{Txns: txns})
	if g.Depth() != 10 {
		t.Fatalf("serial chain depth = %d, want 10", g.Depth())
	}
	if g.AverageWidth() != 1 {
		t.Fatalf("serial chain width = %d, want 1", g.AverageWidth())
	}
}

func TestDepGraphEmpty(t *testing.T) {
	g := BuildDepGraph(&Trace{})
	if g.Len() != 0 || g.Depth() != 0 || g.AverageWidth() != 1 {
		t.Fatal("empty trace should degrade gracefully")
	}
}

func TestSimulateReplayModes(t *testing.T) {
	tr := CaptureProduction(sim.NewRNG(5), "9am", 2000)
	serial, err := SimulateReplay(tr, ReplayArrivalOrder, 64, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	dag, err := SimulateReplay(tr, ReplayDAG, 64, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Slots != 2000 || serial.EffectiveConcurrency != 1 {
		t.Fatalf("arrival-order must be serial: %+v", serial)
	}
	if dag.Slots >= serial.Slots {
		t.Fatalf("DAG replay (%d slots) must beat serial (%d)", dag.Slots, serial.Slots)
	}
	if dag.EffectiveConcurrency <= 1 || dag.PeakWidth < dag.EffectiveConcurrency {
		t.Fatalf("DAG concurrency inconsistent: %+v", dag)
	}
	if dag.Makespan >= serial.Makespan {
		t.Fatal("DAG makespan must be shorter")
	}
	speed, err := ReplaySpeedup(tr, 64)
	if err != nil {
		t.Fatal(err)
	}
	if speed < 2 {
		t.Fatalf("replay speedup %.1f too small for this trace", speed)
	}
}

func TestSimulateReplayWorkerCap(t *testing.T) {
	tr := CaptureProduction(sim.NewRNG(6), "9am", 1000)
	wide, _ := SimulateReplay(tr, ReplayDAG, 1000, time.Millisecond)
	narrow, _ := SimulateReplay(tr, ReplayDAG, 4, time.Millisecond)
	if narrow.Slots <= wide.Slots {
		t.Fatalf("fewer workers must need more slots: %d vs %d", narrow.Slots, wide.Slots)
	}
	if narrow.PeakWidth > 4 {
		t.Fatalf("peak width %d exceeds worker cap", narrow.PeakWidth)
	}
	if narrow.EffectiveConcurrency > 4 {
		t.Fatalf("effective concurrency %d exceeds worker cap", narrow.EffectiveConcurrency)
	}
}

func TestSimulateReplayErrors(t *testing.T) {
	tr := &Trace{}
	if _, err := SimulateReplay(tr, ReplayDAG, 0, time.Millisecond); err == nil {
		t.Fatal("zero workers should error")
	}
	st, err := SimulateReplay(tr, ReplayDAG, 4, time.Millisecond)
	if err != nil || st.Txns != 0 {
		t.Fatalf("empty trace should degrade gracefully: %+v %v", st, err)
	}
	if _, err := SimulateReplay(&Trace{Txns: make([]TracedTxn, 1)}, ReplayMode(9), 1, time.Millisecond); err == nil {
		t.Fatal("unknown mode should error")
	}
	if ReplayDAG.String() != "dag" || ReplayArrivalOrder.String() != "arrival-order" {
		t.Fatal("mode names wrong")
	}
}

func TestTPCCSchemaDerivation(t *testing.T) {
	if n := len(TPCCSchema()); n != 9 {
		t.Fatalf("TPC-C has 9 tables, got %d", n)
	}
	// Per-warehouse cardinalities from the spec.
	rows1 := TPCCRows(1)
	want1 := int64(1 + 10 + 30_000 + 30_000 + 9_000 + 30_000 + 300_000 + 100_000 + 100_000)
	if rows1 != want1 {
		t.Fatalf("rows per warehouse+item = %d, want %d", rows1, want1)
	}
	// Size grows linearly in warehouses (minus the fixed ITEM table).
	d50, d100 := TPCCDataBytes(50), TPCCDataBytes(100)
	if d100 <= d50 || d100 >= 2*d50 {
		t.Fatalf("scaling wrong: 50wh=%d 100wh=%d", d50, d100)
	}
	// Table 2's 8.97 GB at 50 warehouses within 3%.
	want := float64(int64(8_970) << 20)
	if got := float64(d50); got < want*0.97 || got > want*1.03 {
		t.Fatalf("50 warehouses = %.2f GB, want ≈8.97 GB", got/(1<<30))
	}
}
