package workload

import (
	"testing"

	"github.com/hunter-cdb/hunter/internal/sim"
)

// BenchmarkBuildDepGraph measures conflict-DAG construction over a
// captured production trace.
func BenchmarkBuildDepGraph(b *testing.B) {
	tr := CaptureProduction(sim.NewRNG(1), "9am", 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildDepGraph(tr)
	}
}

// BenchmarkReplayConcurrency is the DESIGN.md ablation: the effective
// concurrency of DAG-based replay versus arrival-order replay, reported as
// metrics (higher DAG width = higher replay throughput on the engine).
func BenchmarkReplayConcurrency(b *testing.B) {
	tr := CaptureProduction(sim.NewRNG(2), "9am", 5000)
	var width float64
	for i := 0; i < b.N; i++ {
		g := BuildDepGraph(tr)
		width += float64(g.AverageWidth())
	}
	b.ReportMetric(width/float64(b.N), "dag-width")
	b.ReportMetric(float64(ArrivalOrderConcurrency()), "arrival-width")
}

// BenchmarkCaptureProduction measures synthetic trace capture.
func BenchmarkCaptureProduction(b *testing.B) {
	r := sim.NewRNG(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CaptureProduction(r, "9am", 1000)
	}
}
