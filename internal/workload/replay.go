package workload

import (
	"fmt"
	"time"
)

// ReplayMode selects how a captured trace is re-executed (§2.1).
type ReplayMode int

const (
	// ReplayArrivalOrder executes transactions strictly in their original
	// arrival order — simple and reliable, but serial.
	ReplayArrivalOrder ReplayMode = iota
	// ReplayDAG executes a transaction as soon as all of its
	// dependency-graph parents have committed, recovering the trace's
	// inherent concurrency.
	ReplayDAG
)

func (m ReplayMode) String() string {
	if m == ReplayDAG {
		return "dag"
	}
	return "arrival-order"
}

// ReplayStats summarizes a simulated replay schedule.
type ReplayStats struct {
	Mode ReplayMode
	// Txns is the number of replayed transactions.
	Txns int
	// Slots is the number of scheduling slots the replay needed; with a
	// fixed per-transaction service time, wall time ∝ Slots.
	Slots int
	// EffectiveConcurrency is Txns/Slots — the average parallelism the
	// engine sees.
	EffectiveConcurrency int
	// PeakWidth is the largest number of transactions in flight at once.
	PeakWidth int
	// Makespan estimates the replay duration for the given mean
	// transaction service time.
	Makespan time.Duration
}

// SimulateReplay schedules the trace under the given mode with at most
// `workers` concurrent transactions, and returns the schedule's shape.
// serviceTime is the mean per-transaction execution time used for the
// makespan estimate.
func SimulateReplay(t *Trace, mode ReplayMode, workers int, serviceTime time.Duration) (ReplayStats, error) {
	if workers < 1 {
		return ReplayStats{}, fmt.Errorf("workload: replay needs at least one worker")
	}
	n := len(t.Txns)
	st := ReplayStats{Mode: mode, Txns: n}
	if n == 0 {
		return st, nil
	}
	switch mode {
	case ReplayArrivalOrder:
		// Strictly serial: order preservation forbids overlap.
		st.Slots = n
		st.PeakWidth = 1
	case ReplayDAG:
		g := BuildDepGraph(t)
		for _, batch := range g.ReplayOrder() {
			width := len(batch)
			if width > st.PeakWidth {
				st.PeakWidth = width
			}
			// A level wider than the worker pool takes multiple slots.
			st.Slots += (width + workers - 1) / workers
		}
		if st.PeakWidth > workers {
			st.PeakWidth = workers
		}
	default:
		return ReplayStats{}, fmt.Errorf("workload: unknown replay mode %d", mode)
	}
	st.EffectiveConcurrency = n / st.Slots
	if st.EffectiveConcurrency < 1 {
		st.EffectiveConcurrency = 1
	}
	st.Makespan = time.Duration(st.Slots) * serviceTime
	return st, nil
}

// ReplaySpeedup reports how much faster DAG replay finishes the trace than
// arrival-order replay with the given worker pool.
func ReplaySpeedup(t *Trace, workers int) (float64, error) {
	serial, err := SimulateReplay(t, ReplayArrivalOrder, workers, time.Millisecond)
	if err != nil {
		return 0, err
	}
	dag, err := SimulateReplay(t, ReplayDAG, workers, time.Millisecond)
	if err != nil {
		return 0, err
	}
	if dag.Slots == 0 {
		return 1, nil
	}
	return float64(serial.Slots) / float64(dag.Slots), nil
}
