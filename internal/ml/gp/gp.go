// Package gp implements Gaussian-process regression with an RBF kernel and
// expected-improvement acquisition — the Bayesian-optimization substrate of
// the OtterTune and ResTune baselines.
package gp

import (
	"fmt"
	"math"

	"github.com/hunter-cdb/hunter/internal/mathx"
)

// Model is a fitted Gaussian process over inputs in [0,1]^d.
type Model struct {
	x      [][]float64
	alpha  []float64 // K⁻¹·y
	ls     float64   // RBF length scale
	sigmaF float64   // signal variance
	sigmaN float64   // noise
	yMean  float64
	chol   *mathx.Cholesky
}

// Options configure the kernel.
type Options struct {
	LengthScale float64 // default 0.3
	SignalVar   float64 // default 1.0
	Noise       float64 // default 0.05
}

func (o Options) withDefaults() Options {
	if o.LengthScale == 0 {
		o.LengthScale = 0.3
	}
	if o.SignalVar == 0 {
		o.SignalVar = 1.0
	}
	if o.Noise == 0 {
		o.Noise = 0.05
	}
	return o
}

// Fit conditions the GP on observations (x, y).
func Fit(x [][]float64, y []float64, opts Options) (*Model, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("gp: bad training set (%d, %d)", len(x), len(y))
	}
	opts = opts.withDefaults()
	n := len(x)
	m := &Model{x: x, ls: opts.LengthScale, sigmaF: opts.SignalVar, sigmaN: opts.Noise}
	m.yMean = mathx.Mean(y)
	yc := make([]float64, n)
	for i := range y {
		yc[i] = y[i] - m.yMean
	}
	k := mathx.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := m.kernel(x[i], x[j])
			if i == j {
				v += opts.Noise * opts.Noise
			}
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	chol, err := mathx.NewCholesky(k)
	if err != nil {
		// Add jitter and retry once.
		for i := 0; i < n; i++ {
			k.Set(i, i, k.At(i, i)+1e-6)
		}
		if chol, err = mathx.NewCholesky(k); err != nil {
			return nil, err
		}
	}
	alpha, err := chol.Solve(yc)
	if err != nil {
		return nil, err
	}
	m.alpha = alpha
	m.chol = chol
	return m, nil
}

func (m *Model) kernel(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return m.sigmaF * math.Exp(-d2/(2*m.ls*m.ls))
}

// Predict returns the posterior mean and standard deviation at x.
func (m *Model) Predict(x []float64) (mean, std float64) {
	n := len(m.x)
	ks := make([]float64, n)
	for i := 0; i < n; i++ {
		ks[i] = m.kernel(x, m.x[i])
	}
	mean = m.yMean + mathx.Dot(ks, m.alpha)
	v, err := m.chol.Solve(ks)
	varf := m.sigmaF
	if err == nil {
		varf -= mathx.Dot(ks, v)
	}
	if varf < 1e-10 {
		varf = 1e-10
	}
	return mean, math.Sqrt(varf)
}

// ExpectedImprovement returns EI(x) over the incumbent best observed value.
func (m *Model) ExpectedImprovement(x []float64, best float64) float64 {
	mu, sd := m.Predict(x)
	if sd <= 0 {
		return 0
	}
	z := (mu - best) / sd
	return (mu-best)*normCDF(z) + sd*normPDF(z)
}

func normPDF(z float64) float64 { return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi) }

func normCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }
