package gp

import (
	"math"
	"testing"

	"github.com/hunter-cdb/hunter/internal/sim"
)

func TestInterpolatesTrainingPoints(t *testing.T) {
	x := [][]float64{{0.1}, {0.4}, {0.8}}
	y := []float64{1, 3, 2}
	m, err := Fit(x, y, Options{Noise: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		mu, sd := m.Predict(x[i])
		if math.Abs(mu-y[i]) > 0.1 {
			t.Fatalf("posterior at training point %d: %.3f want %.3f", i, mu, y[i])
		}
		if sd < 0 {
			t.Fatalf("negative posterior std %v", sd)
		}
	}
}

func TestUncertaintyGrowsAwayFromData(t *testing.T) {
	x := [][]float64{{0.5}}
	m, err := Fit(x, []float64{1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, near := m.Predict([]float64{0.5})
	_, far := m.Predict([]float64{3.0})
	if far <= near {
		t.Fatalf("std far from data (%.3f) should exceed std at data (%.3f)", far, near)
	}
}

func TestPosteriorMeanRevertsToPrior(t *testing.T) {
	m, err := Fit([][]float64{{0}}, []float64{5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := m.Predict([]float64{100})
	if math.Abs(mu-5) > 1e-6 { // yMean is 5; far away the GP reverts to it
		t.Fatalf("far prediction %.3f should revert to the mean 5", mu)
	}
}

func TestExpectedImprovement(t *testing.T) {
	x := [][]float64{{0.0}, {1.0}}
	y := []float64{0, 1}
	m, err := Fit(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// EI at an unexplored promising point must exceed EI at the known
	// worst point.
	eiNear := m.ExpectedImprovement([]float64{1.2}, 1)
	eiWorst := m.ExpectedImprovement([]float64{0.0}, 1)
	if eiNear <= eiWorst {
		t.Fatalf("EI near the optimum (%.4f) should exceed EI at the worst (%.4f)", eiNear, eiWorst)
	}
	if eiNear < 0 || eiWorst < 0 {
		t.Fatal("EI must be non-negative")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, Options{}); err == nil {
		t.Fatal("empty training set should fail")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestDuplicatePointsJitter(t *testing.T) {
	// Duplicate inputs make K singular without noise/jitter; Fit must
	// survive via its retry path.
	x := [][]float64{{0.5}, {0.5}, {0.5}}
	y := []float64{1, 1.1, 0.9}
	if _, err := Fit(x, y, Options{Noise: 1e-9}); err != nil {
		t.Fatalf("jitter retry failed: %v", err)
	}
}

func TestHigherDimensional(t *testing.T) {
	rng := sim.NewRNG(1)
	var x [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		x = append(x, p)
		y = append(y, p[0]*p[0]-p[1])
	}
	m, err := Fit(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rank correlation sanity: predictions order high-vs-low correctly on
	// a pair with a large true gap.
	muHigh, _ := m.Predict([]float64{0.95, 0.05, 0.5})
	muLow, _ := m.Predict([]float64{0.05, 0.95, 0.5})
	if muHigh <= muLow {
		t.Fatalf("GP failed to learn ordering: %.3f vs %.3f", muHigh, muLow)
	}
}
