package rf

import (
	"math"
	"testing"

	"github.com/hunter-cdb/hunter/internal/sim"
)

// synthetic generates y = 3·x0 + x3² − 2·x7 + noise over dim features, so
// features 0, 3 and 7 matter and the rest are inert.
func synthetic(rng *sim.RNG, n, dim int) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = make([]float64, dim)
		for d := range x[i] {
			x[i][d] = rng.Float64()
		}
		y[i] = 3*x[i][0] + x[i][3]*x[i][3] - 2*x[i][7] + rng.Gaussian(0, 0.05)
	}
	return x, y
}

func TestImportanceFindsRelevantFeatures(t *testing.T) {
	rng := sim.NewRNG(1)
	x, y := synthetic(rng, 300, 20)
	f, err := Train(x, y, Options{Trees: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	top := f.TopK(3)
	found := map[int]bool{}
	for _, i := range top {
		found[i] = true
	}
	if !found[0] || !found[7] {
		t.Fatalf("top-3 %v should contain the dominant features 0 and 7 (importance %v)", top, f.Importance())
	}
}

func TestImportanceNormalized(t *testing.T) {
	rng := sim.NewRNG(2)
	x, y := synthetic(rng, 200, 10)
	f, err := Train(x, y, Options{Trees: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range f.Importance() {
		if v < 0 {
			t.Fatal("importance must be non-negative")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importance sums to %v, want 1", sum)
	}
}

func TestPredictTracksFunction(t *testing.T) {
	rng := sim.NewRNG(3)
	x, y := synthetic(rng, 500, 10)
	f, err := Train(x, y, Options{Trees: 100, MaxDepth: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sse, sst float64
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for i := range x {
		d := f.Predict(x[i]) - y[i]
		sse += d * d
		dd := y[i] - mean
		sst += dd * dd
	}
	if r2 := 1 - sse/sst; r2 < 0.7 {
		t.Fatalf("training R² = %.3f, forest not learning", r2)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	x, y := synthetic(sim.NewRNG(4), 150, 8)
	f1, err := Train(x, y, Options{Trees: 30}, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Train(x, y, Options{Trees: 30}, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1.Importance() {
		if f1.Importance()[i] != f2.Importance()[i] {
			t.Fatal("same seed should give identical forests")
		}
	}
}

func TestRankingOrder(t *testing.T) {
	rng := sim.NewRNG(5)
	x, y := synthetic(rng, 300, 12)
	f, err := Train(x, y, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	imp := f.Importance()
	r := f.Ranking()
	for i := 1; i < len(r); i++ {
		if imp[r[i-1]] < imp[r[i]] {
			t.Fatal("ranking not descending")
		}
	}
	if k := f.TopK(100); len(k) != 12 {
		t.Fatalf("TopK over-length should clamp, got %d", len(k))
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Options{}, sim.NewRNG(1)); err == nil {
		t.Fatal("empty training set should fail")
	}
	if _, err := Train([][]float64{{1, 2}}, []float64{1, 2}, Options{}, sim.NewRNG(1)); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []float64{1, 2}, Options{}, sim.NewRNG(1)); err == nil {
		t.Fatal("ragged rows should fail")
	}
}

func TestConstantLabels(t *testing.T) {
	rng := sim.NewRNG(6)
	x := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = 42
	}
	f, err := Train(x, y, Options{Trees: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{0.5, 0.5}); got != 42 {
		t.Fatalf("constant labels should predict 42, got %v", got)
	}
}
