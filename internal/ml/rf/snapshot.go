package rf

import (
	"encoding/gob"
	"fmt"
	"io"
)

// NodeState is one serialized CART node (Feature -1 marks a leaf).
type NodeState struct {
	Feature     int
	Threshold   float64
	Left, Right int
	Value       float64
}

// forestState is the trained forest in portable form.
type forestState struct {
	Trees      [][]NodeState
	Importance []float64
	Dim        int
}

// SnapshotTo serializes the trained forest (checkpoint.Snapshotter).
func (f *Forest) SnapshotTo(w io.Writer) error {
	st := forestState{
		Trees:      make([][]NodeState, len(f.trees)),
		Importance: f.importance,
		Dim:        f.dim,
	}
	for i, t := range f.trees {
		nodes := make([]NodeState, len(t.nodes))
		for j, n := range t.nodes {
			nodes[j] = NodeState{Feature: n.feature, Threshold: n.threshold, Left: n.left, Right: n.right, Value: n.value}
		}
		st.Trees[i] = nodes
	}
	return gob.NewEncoder(w).Encode(st)
}

// RestoreFrom reinstates a forest written by SnapshotTo
// (checkpoint.Restorer). The forest is unchanged on error.
func (f *Forest) RestoreFrom(r io.Reader) error {
	var st forestState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	if st.Dim <= 0 {
		return fmt.Errorf("rf: snapshot dimension %d invalid", st.Dim)
	}
	if len(st.Importance) != st.Dim {
		return fmt.Errorf("rf: snapshot importance sized %d, want %d", len(st.Importance), st.Dim)
	}
	trees := make([]*tree, len(st.Trees))
	for i, nodes := range st.Trees {
		t := &tree{nodes: make([]node, len(nodes))}
		for j, n := range nodes {
			if n.Feature >= st.Dim {
				return fmt.Errorf("rf: snapshot tree %d node %d splits on feature %d of %d", i, j, n.Feature, st.Dim)
			}
			if n.Feature >= 0 && (n.Left < 0 || n.Left >= len(nodes) || n.Right < 0 || n.Right >= len(nodes)) {
				return fmt.Errorf("rf: snapshot tree %d node %d has out-of-range children", i, j)
			}
			t.nodes[j] = node{feature: n.Feature, threshold: n.Threshold, left: n.Left, right: n.Right, value: n.Value}
		}
		trees[i] = t
	}
	f.trees = trees
	f.importance = st.Importance
	f.dim = st.Dim
	return nil
}
