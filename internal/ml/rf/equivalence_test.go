package rf

import (
	"reflect"
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// TestTrainEquivalentAcrossWorkers proves the tentpole determinism
// property: the same seed yields bit-identical forests — tree structures,
// importance vector, and predictions — for 1 worker and for many workers,
// across several seeds.
func TestTrainEquivalentAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		gen := sim.NewRNG(seed)
		x, y := synthetic(gen, 140, 20)

		train := func(workers int) *Forest {
			defer parallel.SetWorkers(parallel.SetWorkers(workers))
			f, err := Train(x, y, Options{Trees: 60}, sim.NewRNG(seed+1000))
			if err != nil {
				t.Fatal(err)
			}
			return f
		}
		serial := train(1)
		for _, w := range []int{2, 8} {
			par := train(w)
			if !reflect.DeepEqual(serial.trees, par.trees) {
				t.Fatalf("seed %d workers %d: tree structures differ", seed, w)
			}
			if !reflect.DeepEqual(serial.importance, par.importance) {
				t.Fatalf("seed %d workers %d: importance differs:\n%v\n%v",
					seed, w, serial.importance, par.importance)
			}
			probe := make([]float64, 20)
			for i := range probe {
				probe[i] = gen.Float64()
			}
			if serial.Predict(probe) != par.Predict(probe) {
				t.Fatalf("seed %d workers %d: predictions differ", seed, w)
			}
		}
	}
}

// TestPredictBatchMatchesPredict checks the batched fan-out path returns
// exactly the per-row results, in order, for any worker count.
func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := sim.NewRNG(5)
	x, y := synthetic(rng, 120, 12)
	f, err := Train(x, y, Options{Trees: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 8} {
		prev := parallel.SetWorkers(w)
		got := f.PredictBatch(x)
		for i := range x {
			if got[i] != f.Predict(x[i]) {
				t.Fatalf("workers %d: batch prediction %d differs", w, i)
			}
		}
		parallel.SetWorkers(prev)
	}
}
