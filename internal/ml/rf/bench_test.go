package rf

import (
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// benchTrain fits the paper-scale forest — 200 trees over 140 samples ×
// 70 features (the Search Space Optimizer's workload) — at the given
// worker count. The Serial variant is the before/after baseline recorded
// in BENCH_ml.json.
func benchTrain(b *testing.B, workers int) {
	defer parallel.SetWorkers(parallel.SetWorkers(workers))
	rng := sim.NewRNG(1)
	x, y := synthetic(rng, 140, 70)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, y, Options{Trees: 200}, sim.NewRNG(2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestFit(b *testing.B)       { benchTrain(b, 0) }
func BenchmarkForestFitSerial(b *testing.B) { benchTrain(b, 1) }
