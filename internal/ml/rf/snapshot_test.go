package rf

import (
	"bytes"
	"testing"

	"github.com/hunter-cdb/hunter/internal/sim"
)

// TestForestSnapshotRoundTrip verifies a restored forest predicts and
// ranks identically to the original.
func TestForestSnapshotRoundTrip(t *testing.T) {
	rng := sim.NewRNG(11)
	n, dim := 80, 7
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, dim)
		for j := range x[i] {
			x[i][j] = rng.Float64()
		}
		y[i] = 3*x[i][2] - x[i][5] + 0.1*rng.NormFloat64()
	}
	f, err := Train(x, y, Options{Trees: 25}, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.SnapshotTo(&buf); err != nil {
		t.Fatalf("SnapshotTo: %v", err)
	}
	var r Forest
	if err := r.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("RestoreFrom: %v", err)
	}
	for i := range x {
		if a, b := f.Predict(x[i]), r.Predict(x[i]); a != b {
			t.Fatalf("prediction %d diverged: %v != %v", i, a, b)
		}
	}
	ia, ib := f.Ranking(), r.Ranking()
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("ranking diverged at %d: %v vs %v", i, ia, ib)
		}
	}
}

// TestForestRestoreRejectsBad checks malformed snapshots are refused.
func TestForestRestoreRejectsBad(t *testing.T) {
	var f Forest
	if err := f.RestoreFrom(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("garbage accepted")
	}
}
