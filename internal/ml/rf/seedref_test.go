package rf

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// This file pins the arena-based trainer to the pre-arena implementation:
// seedTrain below is a line-for-line port of the original Train — per-node
// append-built index slices, a fresh sort buffer per split candidate,
// sort.Slice ordering — and the tests require the optimized trainer to
// reproduce its forests bit for bit, for any worker count. The data mixes
// continuous columns (which take the pre-sorted gather fast path) with
// discrete tied columns carrying distinct labels (which must fall back to
// the per-node sort), so both split paths are exercised.

func seedTrain(x [][]float64, y []float64, opts Options, rng *sim.RNG) *Forest {
	m := len(x[0])
	opts = opts.withDefaults(m)
	f := &Forest{dim: m, importance: make([]float64, m)}
	tasks := make([]treeTask, opts.Trees)
	for t := range tasks {
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = rng.Intn(len(x))
		}
		tasks[t].idx = idx
		tasks[t].feats = rng.Perm(m)[:opts.FeaturesPerTree]
	}
	for t := range tasks {
		tasks[t].rng = rng.Fork()
	}
	f.trees = make([]*tree, opts.Trees)
	perTree := make([][]float64, opts.Trees)
	for t := range tasks {
		imp := make([]float64, m)
		tr := &tree{}
		seedBuild(tr, x, y, tasks[t].idx, tasks[t].feats, opts, 0, imp)
		f.trees[t] = tr
		perTree[t] = imp
	}
	for _, imp := range perTree {
		for i, v := range imp {
			f.importance[i] += v
		}
	}
	var total float64
	for _, v := range f.importance {
		total += v
	}
	if total > 0 {
		for i := range f.importance {
			f.importance[i] /= total
		}
	}
	return f
}

func seedBuild(t *tree, x [][]float64, y []float64, idx, feats []int, opts Options, depth int, importance []float64) int {
	mu, va := seedMeanVar(y, idx)
	if depth >= opts.MaxDepth || len(idx) < 2*opts.MinLeaf || va < 1e-12 {
		t.nodes = append(t.nodes, node{feature: -1, value: mu})
		return len(t.nodes) - 1
	}
	bestFeat, bestThr, bestGain := -1, 0.0, 0.0
	for _, f := range feats {
		thr, gain := seedBestSplit(x, y, idx, f, opts.MinLeaf)
		if gain > bestGain {
			bestFeat, bestThr, bestGain = f, thr, gain
		}
	}
	if bestFeat < 0 {
		t.nodes = append(t.nodes, node{feature: -1, value: mu})
		return len(t.nodes) - 1
	}
	importance[bestFeat] += bestGain * float64(len(idx))
	var left, right []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	self := len(t.nodes)
	t.nodes = append(t.nodes, node{feature: bestFeat, threshold: bestThr})
	l := seedBuild(t, x, y, left, feats, opts, depth+1, importance)
	r := seedBuild(t, x, y, right, feats, opts, depth+1, importance)
	t.nodes[self].left, t.nodes[self].right = l, r
	return self
}

func seedBestSplit(x [][]float64, y []float64, idx []int, f, minLeaf int) (thr, gain float64) {
	type pair struct{ v, y float64 }
	ps := make([]pair, len(idx))
	for k, i := range idx {
		ps[k] = pair{x[i][f], y[i]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].v < ps[b].v })
	n := len(ps)
	var sum, sumSq float64
	for _, p := range ps {
		sum += p.y
		sumSq += p.y * p.y
	}
	totalVar := sumSq - sum*sum/float64(n)
	var ls, lss float64
	best := -1.0
	for k := 0; k < n-1; k++ {
		ls += ps[k].y
		lss += ps[k].y * ps[k].y
		if k+1 < minLeaf || n-k-1 < minLeaf || ps[k].v == ps[k+1].v {
			continue
		}
		nl, nr := float64(k+1), float64(n-k-1)
		lVar := lss - ls*ls/nl
		rs, rss := sum-ls, sumSq-lss
		rVar := rss - rs*rs/nr
		g := totalVar - lVar - rVar
		if g > best {
			best = g
			thr = (ps[k].v + ps[k+1].v) / 2
		}
	}
	if best <= 0 {
		return 0, 0
	}
	return thr, best / float64(n)
}

func seedMeanVar(y []float64, idx []int) (mu, va float64) {
	if len(idx) == 0 {
		return 0, 0
	}
	for _, i := range idx {
		mu += y[i]
	}
	mu /= float64(len(idx))
	for _, i := range idx {
		d := y[i] - mu
		va += d * d
	}
	va /= float64(len(idx))
	return
}

// mixedData generates training data with both continuous features and
// discrete ones (few distinct values, so ties across distinct labels are
// guaranteed — the case that forces the per-node sort path).
func mixedData(rng *sim.RNG, n, dim int) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = make([]float64, dim)
		for d := range x[i] {
			if d%3 == 1 {
				x[i][d] = float64(rng.Intn(4)) // discrete knob: heavy ties
			} else {
				x[i][d] = rng.Float64()
			}
		}
		y[i] = 3*x[i][0] + x[i][1] + x[i][3]*x[i][3] - 2*x[i][7] + rng.Gaussian(0, 0.05)
	}
	return x, y
}

// TestTrainMatchesSeedImplementation requires the arena trainer to emit
// exactly the forest the pre-arena implementation emitted — node arrays,
// importance vector, and serialized snapshot — at 1 worker and at 8.
func TestTrainMatchesSeedImplementation(t *testing.T) {
	for _, seed := range []int64{3, 29, 404} {
		gen := sim.NewRNG(seed)
		x, y := mixedData(gen, 150, 18)
		want := seedTrain(x, y, Options{Trees: 50}, sim.NewRNG(seed+7))
		for _, w := range []int{1, 8} {
			prev := parallel.SetWorkers(w)
			got, err := Train(x, y, Options{Trees: 50}, sim.NewRNG(seed+7))
			parallel.SetWorkers(prev)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.trees, got.trees) {
				t.Fatalf("seed %d workers %d: trees differ from seed implementation", seed, w)
			}
			if !reflect.DeepEqual(want.importance, got.importance) {
				t.Fatalf("seed %d workers %d: importance differs from seed implementation:\n%v\n%v",
					seed, w, want.importance, got.importance)
			}
			var wantBuf, gotBuf bytes.Buffer
			if err := want.SnapshotTo(&wantBuf); err != nil {
				t.Fatal(err)
			}
			if err := got.SnapshotTo(&gotBuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
				t.Fatalf("seed %d workers %d: snapshot bytes differ", seed, w)
			}
		}
	}
}

// TestTrainAllocs guards the arena rewrite's headline: growing a forest
// costs a handful of allocations per tree (task bookkeeping, the node
// arena) instead of the thousands the append/sort.Slice version paid.
func TestTrainAllocs(t *testing.T) {
	rng := sim.NewRNG(11)
	x, y := mixedData(rng, 150, 18)
	// Warm the trainer pool.
	if _, err := Train(x, y, Options{Trees: 50}, sim.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Train(x, y, Options{Trees: 50}, sim.NewRNG(1)); err != nil {
			t.Fatal(err)
		}
	})
	// ~6 per tree (task idx/feats/fork, tree struct, node arena) plus
	// fixed overhead; the seed implementation paid ~3600 per tree.
	if limit := 8*50 + 60; allocs > float64(limit) {
		t.Errorf("Train(50 trees) = %v allocs, want <= %d", allocs, limit)
	}
}
