// Package rf implements a random forest of CART regression trees for knob
// sifting (§3.2.2): 200 trees are trained on (configuration, performance)
// samples, each on a random feature subset, and the average impurity
// reduction per knob yields an importance ranking from which the top-k
// knobs are kept for tuning. For continuous performance labels the CART
// impurity is variance (the regression counterpart of the paper's Gini
// criterion).
package rf

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// Options configure forest training.
type Options struct {
	// Trees is the number of CARTs (paper: 200).
	Trees int
	// FeaturesPerTree g < m; 0 selects ceil(m/3).
	FeaturesPerTree int
	// MaxDepth bounds tree depth; 0 selects 8.
	MaxDepth int
	// MinLeaf is the minimum samples in a leaf; 0 selects 3.
	MinLeaf int
}

func (o Options) withDefaults(m int) Options {
	if o.Trees <= 0 {
		o.Trees = 200
	}
	if o.FeaturesPerTree <= 0 {
		o.FeaturesPerTree = (m + 2) / 3
	}
	if o.FeaturesPerTree > m {
		o.FeaturesPerTree = m
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 8
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 3
	}
	return o
}

// Forest is a trained random forest.
type Forest struct {
	trees      []*tree
	importance []float64 // normalized, sums to 1 (or all zero)
	dim        int
}

type tree struct {
	nodes []node
}

type node struct {
	feature     int // -1 for leaf
	threshold   float64
	left, right int
	value       float64 // leaf prediction
}

// treeTask is the pre-drawn randomness one tree trains on: its bootstrap
// rows, its feature subset, and a private RNG stream. All three are drawn
// serially from the master RNG in tree order before any fan-out, so
// training is deterministic for a given seed no matter how many workers
// build the trees.
type treeTask struct {
	idx   []int
	feats []int
	rng   *sim.RNG
}

// Train fits a forest on X (rows = samples) and y. The RNG makes training
// deterministic for a given seed. Trees are built concurrently — each on
// its pre-seeded task from treeTasks, accumulating impurity gains into a
// private importance vector — and the per-tree vectors are reduced in
// tree order afterwards, so the forest is bit-identical for 1 worker and
// for GOMAXPROCS workers.
func Train(x [][]float64, y []float64, opts Options, rng *sim.RNG) (*Forest, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("rf: bad training set: %d samples, %d labels", len(x), len(y))
	}
	m := len(x[0])
	for i := range x {
		if len(x[i]) != m {
			return nil, fmt.Errorf("rf: ragged sample %d", i)
		}
	}
	opts = opts.withDefaults(m)
	f := &Forest{dim: m, importance: make([]float64, m)}

	// Draw every tree's randomness serially, consuming the master stream
	// in exactly the order the serial loop used to. Bootstrap rows live in
	// one flat block instead of a slice per tree.
	n := len(x)
	tasks := make([]treeTask, opts.Trees)
	idxBlock := make([]int, opts.Trees*n)
	for t := range tasks {
		// Bootstrap rows.
		idx := idxBlock[t*n : (t+1)*n]
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		// Random feature subset (the individual C of each CART).
		tasks[t].idx = idx
		tasks[t].feats = rng.Perm(m)[:opts.FeaturesPerTree]
	}
	for t := range tasks {
		tasks[t].rng = rng.Fork()
	}

	// Every split node feeds ≥ MinLeaf samples to each child, so a tree
	// over n bootstrap rows has at most n/MinLeaf leaves (and the depth
	// cap bounds it too); pre-sizing the node arena to the tighter bound
	// makes tree growth allocation-free.
	nodeCap := 2*(n/opts.MinLeaf) + 3
	if depthCap := 1<<(opts.MaxDepth+1) - 1; nodeCap > depthCap {
		nodeCap = depthCap
	}

	// Grow the trees concurrently; trees share no state. Each tree's
	// importance vector is a row of one flat block, and the per-tree
	// training scratch (index arenas, pre-sorted feature columns, split
	// buffers) is pooled across trees.
	f.trees = make([]*tree, opts.Trees)
	impBlock := make([]float64, opts.Trees*m)
	parallel.For(opts.Trees, 1, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			tr := trainerPool.Get().(*trainer)
			tree := &tree{nodes: make([]node, 0, nodeCap)}
			tr.fit(tree, x, y, tasks[t].idx, tasks[t].feats, opts, impBlock[t*m:(t+1)*m])
			f.trees[t] = tree
			trainerPool.Put(tr)
		}
	})

	// Reduce importance in tree order (fixed floating-point association),
	// then normalize.
	for t := 0; t < opts.Trees; t++ {
		for i, v := range impBlock[t*m : (t+1)*m] {
			f.importance[i] += v
		}
	}
	var total float64
	for _, v := range f.importance {
		total += v
	}
	if total > 0 {
		for i := range f.importance {
			f.importance[i] /= total
		}
	}
	return f, nil
}

// pair is one (feature value, label) sample in split-scan order.
type pair struct{ v, y float64 }

// trainer is the reusable per-tree training scratch. One tree's growth
// used to allocate left/right index slices at every node and a fresh
// sort buffer per split candidate (~3600 allocations per tree); the
// trainer replaces them with a flat position arena partitioned in place,
// one pooled sort buffer, and per-tree pre-sorted feature columns.
//
// Bit-identity contract with the seed algorithm: a node's rows live in
// the arena in exactly the order the seed's append-built index slices
// held them (the in-place partition is stable), so the slow split path —
// fill the pair buffer in node order, sort with the same pdqsort the
// seed's sort.Slice ran — performs the identical comparisons, swaps and
// prefix sums. The fast path skips the per-node sort by gathering the
// node's rows from the column's pre-sorted order, and is only taken when
// the column provably cannot observe the difference: every group of
// equal feature values must carry bitwise-equal labels (true for ties
// that are bootstrap duplicates of one row — the common case for
// continuous knobs), making every valid sorted order numerically
// indistinguishable. Columns with ties across distinct labels (discrete
// knobs) always take the slow path.
type trainer struct {
	feats []int
	opts  Options
	imp   []float64
	t     *tree
	n     int

	yboot    []float64 // label per position
	colVals  []float64 // g×n: feature value per (slot, position)
	sorted   []int     // g×n: positions in ascending column order
	eligible []bool    // per slot: fast gather path provably identical
	arena    []int     // node row positions, partitioned in place
	part     []int     // right-side scratch for the stable partition
	ps       []pair    // split scan buffer
	inNode   []bool    // node membership stamp for the gather path

	colSrt idxSorter
	psSrt  pairSorter
}

var trainerPool = sync.Pool{New: func() any { return &trainer{} }}

// idxSorter sorts positions by a key column. Reused via sort.Sort (a
// pointer receiver converts to the interface without allocating).
type idxSorter struct {
	idx []int
	key []float64
}

func (s *idxSorter) Len() int           { return len(s.idx) }
func (s *idxSorter) Less(a, b int) bool { return s.key[s.idx[a]] < s.key[s.idx[b]] }
func (s *idxSorter) Swap(a, b int)      { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// pairSorter sorts the split buffer by value. sort.Sort runs the same
// pdqsort over the same comparisons as the seed's sort.Slice, so the
// resulting order — ties included — is identical, without the two
// allocations sort.Slice pays per call.
type pairSorter struct{ ps []pair }

func (s *pairSorter) Len() int           { return len(s.ps) }
func (s *pairSorter) Less(a, b int) bool { return s.ps[a].v < s.ps[b].v }
func (s *pairSorter) Swap(a, b int)      { s.ps[a], s.ps[b] = s.ps[b], s.ps[a] }

// reset sizes the scratch for n bootstrap rows and g candidate features.
func (tr *trainer) reset(n, g int) {
	tr.n = n
	if cap(tr.yboot) < n {
		tr.yboot = make([]float64, n)
		tr.arena = make([]int, n)
		tr.part = make([]int, n)
		tr.ps = make([]pair, n)
		tr.inNode = make([]bool, n)
	}
	tr.yboot = tr.yboot[:n]
	tr.arena = tr.arena[:n]
	tr.part = tr.part[:n]
	tr.ps = tr.ps[:n]
	tr.inNode = tr.inNode[:n]
	if cap(tr.colVals) < g*n {
		tr.colVals = make([]float64, g*n)
		tr.sorted = make([]int, g*n)
	}
	tr.colVals = tr.colVals[:g*n]
	tr.sorted = tr.sorted[:g*n]
	if cap(tr.eligible) < g {
		tr.eligible = make([]bool, g)
	}
	tr.eligible = tr.eligible[:g]
}

// fit grows one tree on the bootstrap rows idx over the feature subset
// feats, accumulating impurity gains into imp.
func (tr *trainer) fit(t *tree, x [][]float64, y []float64, idx, feats []int, opts Options, imp []float64) {
	n, g := len(idx), len(feats)
	tr.reset(n, g)
	tr.feats, tr.opts, tr.imp, tr.t = feats, opts, imp, t
	// Position k of the arena is bootstrap draw k — the exact order the
	// seed's root index slice held the rows.
	for k, row := range idx {
		tr.yboot[k] = y[row]
		tr.arena[k] = k
		tr.inNode[k] = false
	}
	// Materialize each candidate feature as a flat column over bootstrap
	// positions and sort it once per tree; splits gather from this order
	// when the column is eligible instead of re-sorting per node.
	for c, f := range feats {
		col := tr.colVals[c*n : (c+1)*n]
		for k, row := range idx {
			col[k] = x[row][f]
		}
		srt := tr.sorted[c*n : (c+1)*n]
		for k := range srt {
			srt[k] = k
		}
		tr.colSrt.idx, tr.colSrt.key = srt, col
		sort.Sort(&tr.colSrt)
		tr.eligible[c] = eligibleColumn(col, tr.yboot, srt)
	}
	tr.build(0, n, 0)
}

// eligibleColumn reports whether the pre-sorted gather path is provably
// bit-identical to the seed's per-node sort for this column: the column
// carries no NaN (NaN makes comparison sorts order-unstable) and every
// run of equal values holds bitwise-equal labels, so any valid sorted
// order of any subset yields the exact same (value, label) sequence.
// Bootstrap ties — the same row drawn twice — always qualify; discrete
// knob columns with ties across distinct labels do not, and fall back to
// the per-node sort.
func eligibleColumn(col, yboot []float64, srt []int) bool {
	for _, v := range col {
		if math.IsNaN(v) {
			return false
		}
	}
	for k := 1; k < len(srt); k++ {
		a, b := srt[k-1], srt[k]
		if col[a] == col[b] && math.Float64bits(yboot[a]) != math.Float64bits(yboot[b]) {
			return false
		}
	}
	return true
}

// build grows a subtree over the arena range [lo, hi) and returns its
// node index.
func (tr *trainer) build(lo, hi, depth int) int {
	t, opts := tr.t, tr.opts
	idx := tr.arena[lo:hi]
	mu, va := meanVarPos(tr.yboot, idx)
	if depth >= opts.MaxDepth || len(idx) < 2*opts.MinLeaf || va < 1e-12 {
		t.nodes = append(t.nodes, node{feature: -1, value: mu})
		return len(t.nodes) - 1
	}
	for _, p := range idx {
		tr.inNode[p] = true
	}
	bestC, bestThr, bestGain := -1, 0.0, 0.0
	for c := range tr.feats {
		thr, gain := tr.bestSplit(lo, hi, c)
		if gain > bestGain {
			bestC, bestThr, bestGain = c, thr, gain
		}
	}
	for _, p := range idx {
		tr.inNode[p] = false
	}
	if bestC < 0 {
		t.nodes = append(t.nodes, node{feature: -1, value: mu})
		return len(t.nodes) - 1
	}
	tr.imp[tr.feats[bestC]] += bestGain * float64(len(idx))
	// Stable in-place partition: left rows compact forward (each write
	// lands at or behind the read cursor), right rows stage in the
	// scratch and follow — both sides keep their relative order, exactly
	// like the seed's two append loops.
	col := tr.colVals[bestC*tr.n : (bestC+1)*tr.n]
	nl, nr := 0, 0
	for _, p := range idx {
		if col[p] <= bestThr {
			idx[nl] = p
			nl++
		} else {
			tr.part[nr] = p
			nr++
		}
	}
	copy(idx[nl:], tr.part[:nr])
	self := len(t.nodes)
	t.nodes = append(t.nodes, node{feature: tr.feats[bestC], threshold: bestThr})
	l := tr.build(lo, lo+nl, depth+1)
	r := tr.build(lo+nl, hi, depth+1)
	t.nodes[self].left, t.nodes[self].right = l, r
	return self
}

// bestSplit finds the threshold on feature slot c maximizing variance
// reduction over the arena range [lo, hi).
func (tr *trainer) bestSplit(lo, hi, c int) (thr, gain float64) {
	idx := tr.arena[lo:hi]
	ps := tr.ps[:len(idx)]
	col := tr.colVals[c*tr.n : (c+1)*tr.n]
	if tr.eligible[c] {
		// Fast path: gather the node's rows in the column's pre-sorted
		// order — no per-node sort. Provably bit-identical (see the
		// trainer doc comment).
		srt := tr.sorted[c*tr.n : (c+1)*tr.n]
		m := 0
		for _, p := range srt {
			if tr.inNode[p] {
				ps[m] = pair{col[p], tr.yboot[p]}
				m++
			}
		}
	} else {
		// Slow path: identical to the seed — fill in node order, run the
		// same pdqsort (via a pooled sorter instead of sort.Slice).
		for j, p := range idx {
			ps[j] = pair{col[p], tr.yboot[p]}
		}
		tr.psSrt.ps = ps
		sort.Sort(&tr.psSrt)
	}
	return scanSplit(ps, tr.opts.MinLeaf)
}

// scanSplit runs the seed's prefix-sum scan over value-sorted pairs.
func scanSplit(ps []pair, minLeaf int) (thr, gain float64) {
	n := len(ps)
	// Prefix sums for O(n) scan.
	var sum, sumSq float64
	for _, p := range ps {
		sum += p.y
		sumSq += p.y * p.y
	}
	totalVar := sumSq - sum*sum/float64(n)
	var ls, lss float64
	best := -1.0
	for k := 0; k < n-1; k++ {
		ls += ps[k].y
		lss += ps[k].y * ps[k].y
		if k+1 < minLeaf || n-k-1 < minLeaf || ps[k].v == ps[k+1].v {
			continue
		}
		nl, nr := float64(k+1), float64(n-k-1)
		lVar := lss - ls*ls/nl
		rs, rss := sum-ls, sumSq-lss
		rVar := rss - rs*rs/nr
		g := totalVar - lVar - rVar
		if g > best {
			best = g
			thr = (ps[k].v + ps[k+1].v) / 2
		}
	}
	if best <= 0 {
		return 0, 0
	}
	return thr, best / float64(n) // per-sample gain
}

// meanVarPos is the seed's meanVar over arena positions.
func meanVarPos(yboot []float64, idx []int) (mu, va float64) {
	if len(idx) == 0 {
		return 0, 0
	}
	for _, p := range idx {
		mu += yboot[p]
	}
	mu /= float64(len(idx))
	for _, p := range idx {
		d := yboot[p] - mu
		va += d * d
	}
	va /= float64(len(idx))
	return
}

// Predict averages the trees' predictions for x, reducing in tree order.
// A single traversal is a few hundred nanoseconds, so one prediction
// never fans out; use PredictBatch to parallelize over many inputs.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	var s float64
	for _, t := range f.trees {
		s += t.predict(x)
	}
	return s / float64(len(f.trees))
}

// PredictBatch predicts every row of xs, fanning out over samples (each
// sample's tree-order reduction is independent, so results are
// bit-identical to calling Predict per row).
func (f *Forest) PredictBatch(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	grain := 1
	if len(f.trees) < 64 {
		grain = 8 // cheap forests: batch a few samples per chunk
	}
	parallel.For(len(xs), grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f.Predict(xs[i])
		}
	})
	return out
}

func (t *tree) predict(x []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Importance returns the normalized per-feature importance scores.
func (f *Forest) Importance() []float64 {
	out := make([]float64, len(f.importance))
	copy(out, f.importance)
	return out
}

// Ranking returns feature indices in descending importance order.
func (f *Forest) Ranking() []int {
	idx := make([]int, f.dim)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return f.importance[idx[a]] > f.importance[idx[b]] })
	return idx
}

// TopK returns the indices of the k most important features.
func (f *Forest) TopK(k int) []int {
	r := f.Ranking()
	if k > len(r) {
		k = len(r)
	}
	return r[:k]
}
