// Package rf implements a random forest of CART regression trees for knob
// sifting (§3.2.2): 200 trees are trained on (configuration, performance)
// samples, each on a random feature subset, and the average impurity
// reduction per knob yields an importance ranking from which the top-k
// knobs are kept for tuning. For continuous performance labels the CART
// impurity is variance (the regression counterpart of the paper's Gini
// criterion).
package rf

import (
	"fmt"
	"sort"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// Options configure forest training.
type Options struct {
	// Trees is the number of CARTs (paper: 200).
	Trees int
	// FeaturesPerTree g < m; 0 selects ceil(m/3).
	FeaturesPerTree int
	// MaxDepth bounds tree depth; 0 selects 8.
	MaxDepth int
	// MinLeaf is the minimum samples in a leaf; 0 selects 3.
	MinLeaf int
}

func (o Options) withDefaults(m int) Options {
	if o.Trees <= 0 {
		o.Trees = 200
	}
	if o.FeaturesPerTree <= 0 {
		o.FeaturesPerTree = (m + 2) / 3
	}
	if o.FeaturesPerTree > m {
		o.FeaturesPerTree = m
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 8
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 3
	}
	return o
}

// Forest is a trained random forest.
type Forest struct {
	trees      []*tree
	importance []float64 // normalized, sums to 1 (or all zero)
	dim        int
}

type tree struct {
	nodes []node
}

type node struct {
	feature     int // -1 for leaf
	threshold   float64
	left, right int
	value       float64 // leaf prediction
}

// treeTask is the pre-drawn randomness one tree trains on: its bootstrap
// rows, its feature subset, and a private RNG stream. All three are drawn
// serially from the master RNG in tree order before any fan-out, so
// training is deterministic for a given seed no matter how many workers
// build the trees.
type treeTask struct {
	idx   []int
	feats []int
	rng   *sim.RNG
}

// Train fits a forest on X (rows = samples) and y. The RNG makes training
// deterministic for a given seed. Trees are built concurrently — each on
// its pre-seeded task from treeTasks, accumulating impurity gains into a
// private importance vector — and the per-tree vectors are reduced in
// tree order afterwards, so the forest is bit-identical for 1 worker and
// for GOMAXPROCS workers.
func Train(x [][]float64, y []float64, opts Options, rng *sim.RNG) (*Forest, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("rf: bad training set: %d samples, %d labels", len(x), len(y))
	}
	m := len(x[0])
	for i := range x {
		if len(x[i]) != m {
			return nil, fmt.Errorf("rf: ragged sample %d", i)
		}
	}
	opts = opts.withDefaults(m)
	f := &Forest{dim: m, importance: make([]float64, m)}

	// Draw every tree's randomness serially, consuming the master stream
	// in exactly the order the serial loop used to.
	tasks := make([]treeTask, opts.Trees)
	for t := range tasks {
		// Bootstrap rows.
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = rng.Intn(len(x))
		}
		// Random feature subset (the individual C of each CART).
		tasks[t].idx = idx
		tasks[t].feats = rng.Perm(m)[:opts.FeaturesPerTree]
	}
	for t := range tasks {
		tasks[t].rng = rng.Fork()
	}

	// Grow the trees concurrently; trees share no state.
	f.trees = make([]*tree, opts.Trees)
	perTree := make([][]float64, opts.Trees)
	parallel.For(opts.Trees, 1, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			imp := make([]float64, m)
			tr := &tree{}
			tr.build(x, y, tasks[t].idx, tasks[t].feats, opts, 0, imp, tasks[t].rng)
			f.trees[t] = tr
			perTree[t] = imp
		}
	})

	// Reduce importance in tree order (fixed floating-point association),
	// then normalize.
	for _, imp := range perTree {
		for i, v := range imp {
			f.importance[i] += v
		}
	}
	var total float64
	for _, v := range f.importance {
		total += v
	}
	if total > 0 {
		for i := range f.importance {
			f.importance[i] /= total
		}
	}
	return f, nil
}

// build grows a subtree over rows idx and returns its node index.
func (t *tree) build(x [][]float64, y []float64, idx, feats []int, opts Options, depth int, importance []float64, rng *sim.RNG) int {
	mu, va := meanVar(y, idx)
	if depth >= opts.MaxDepth || len(idx) < 2*opts.MinLeaf || va < 1e-12 {
		t.nodes = append(t.nodes, node{feature: -1, value: mu})
		return len(t.nodes) - 1
	}
	bestFeat, bestThr, bestGain := -1, 0.0, 0.0
	for _, f := range feats {
		thr, gain := bestSplit(x, y, idx, f, opts.MinLeaf)
		if gain > bestGain {
			bestFeat, bestThr, bestGain = f, thr, gain
		}
	}
	if bestFeat < 0 {
		t.nodes = append(t.nodes, node{feature: -1, value: mu})
		return len(t.nodes) - 1
	}
	importance[bestFeat] += bestGain * float64(len(idx))
	var left, right []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	self := len(t.nodes)
	t.nodes = append(t.nodes, node{feature: bestFeat, threshold: bestThr})
	l := t.build(x, y, left, feats, opts, depth+1, importance, rng)
	r := t.build(x, y, right, feats, opts, depth+1, importance, rng)
	t.nodes[self].left, t.nodes[self].right = l, r
	return self
}

// bestSplit finds the threshold on feature f maximizing variance reduction.
func bestSplit(x [][]float64, y []float64, idx []int, f, minLeaf int) (thr, gain float64) {
	type pair struct{ v, y float64 }
	ps := make([]pair, len(idx))
	for k, i := range idx {
		ps[k] = pair{x[i][f], y[i]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].v < ps[b].v })
	n := len(ps)
	// Prefix sums for O(n) scan.
	var sum, sumSq float64
	for _, p := range ps {
		sum += p.y
		sumSq += p.y * p.y
	}
	totalVar := sumSq - sum*sum/float64(n)
	var ls, lss float64
	best := -1.0
	for k := 0; k < n-1; k++ {
		ls += ps[k].y
		lss += ps[k].y * ps[k].y
		if k+1 < minLeaf || n-k-1 < minLeaf || ps[k].v == ps[k+1].v {
			continue
		}
		nl, nr := float64(k+1), float64(n-k-1)
		lVar := lss - ls*ls/nl
		rs, rss := sum-ls, sumSq-lss
		rVar := rss - rs*rs/nr
		g := totalVar - lVar - rVar
		if g > best {
			best = g
			thr = (ps[k].v + ps[k+1].v) / 2
		}
	}
	if best <= 0 {
		return 0, 0
	}
	return thr, best / float64(n) // per-sample gain
}

func meanVar(y []float64, idx []int) (mu, va float64) {
	if len(idx) == 0 {
		return 0, 0
	}
	for _, i := range idx {
		mu += y[i]
	}
	mu /= float64(len(idx))
	for _, i := range idx {
		d := y[i] - mu
		va += d * d
	}
	va /= float64(len(idx))
	return
}

// Predict averages the trees' predictions for x, reducing in tree order.
// A single traversal is a few hundred nanoseconds, so one prediction
// never fans out; use PredictBatch to parallelize over many inputs.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	var s float64
	for _, t := range f.trees {
		s += t.predict(x)
	}
	return s / float64(len(f.trees))
}

// PredictBatch predicts every row of xs, fanning out over samples (each
// sample's tree-order reduction is independent, so results are
// bit-identical to calling Predict per row).
func (f *Forest) PredictBatch(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	grain := 1
	if len(f.trees) < 64 {
		grain = 8 // cheap forests: batch a few samples per chunk
	}
	parallel.For(len(xs), grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f.Predict(xs[i])
		}
	})
	return out
}

func (t *tree) predict(x []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Importance returns the normalized per-feature importance scores.
func (f *Forest) Importance() []float64 {
	out := make([]float64, len(f.importance))
	copy(out, f.importance)
	return out
}

// Ranking returns feature indices in descending importance order.
func (f *Forest) Ranking() []int {
	idx := make([]int, f.dim)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return f.importance[idx[a]] > f.importance[idx[b]] })
	return idx
}

// TopK returns the indices of the k most important features.
func (f *Forest) TopK(k int) []int {
	r := f.Ranking()
	if k > len(r) {
		k = len(r)
	}
	return r[:k]
}
