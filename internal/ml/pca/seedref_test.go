package pca

import (
	"bytes"
	"math"
	"reflect"
	"sort"
	"testing"

	"github.com/hunter-cdb/hunter/internal/mathx"
	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// This file pins the workspace-based fit to the pre-workspace
// implementation: seedFit below ports the original pipeline — fresh
// matrices everywhere, the copy-a-column Standardize, transpose + upper
// triangle Gram, the closure-based Jacobi — and the tests require
// FitWS (fresh or reused workspace, any worker count) to reproduce its
// models bit for bit.

func seedFit(rows [][]float64, varTarget float64, maxDim int) *Model {
	x := mathx.FromRows(rows)
	means, stds := seedStandardize(x)
	n, u := x.Rows, x.Cols
	cov := seedGram(x)
	for i := range cov.Data {
		cov.Data[i] /= float64(n - 1)
	}
	vals, vecs := seedSymEigen(cov)
	var total float64
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	keep, cum := 0, 0.0
	for keep < u {
		if vals[keep] > 0 {
			cum += vals[keep]
		}
		keep++
		if cum/total >= varTarget {
			break
		}
	}
	if maxDim > 0 && keep > maxDim {
		keep = maxDim
	}
	comp := mathx.NewMatrix(keep, u)
	for i := 0; i < keep; i++ {
		copy(comp.Row(i), vecs.Row(i))
	}
	return &Model{means: means, stds: stds, components: comp, variances: vals, inDim: u, outDim: keep}
}

func seedStandardize(m *mathx.Matrix) (means, stds []float64) {
	means = make([]float64, m.Cols)
	stds = make([]float64, m.Cols)
	for j := 0; j < m.Cols; j++ {
		col := make([]float64, m.Rows)
		for i := 0; i < m.Rows; i++ {
			col[i] = m.At(i, j)
		}
		means[j] = mathx.Mean(col)
		stds[j] = mathx.StdDev(col)
		sd := stds[j]
		if sd == 0 {
			sd = 1
		}
		for i := 0; i < m.Rows; i++ {
			m.Set(i, j, (m.At(i, j)-means[j])/sd)
		}
	}
	return means, stds
}

func seedGram(m *mathx.Matrix) *mathx.Matrix {
	t := m.T()
	n := t.Rows
	out := mathx.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			out.Set(i, j, mathx.Dot(t.Row(i), t.Row(j)))
		}
	}
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			out.Set(i, j, out.At(j, i))
		}
	}
	return out
}

func seedSymEigen(a *mathx.Matrix) ([]float64, *mathx.Matrix) {
	n := a.Rows
	w := a.Clone()
	v := mathx.Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals := make([]float64, n)
	vecs := mathx.NewMatrix(n, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return w.At(idx[x], idx[x]) > w.At(idx[y], idx[y]) })
	for r, i := range idx {
		vals[r] = w.At(i, i)
		for j := 0; j < n; j++ {
			vecs.Set(r, j, v.At(j, i))
		}
	}
	return vals, vecs
}

func metricRows(rng *sim.RNG, n, dim int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, dim)
		for j := range rows[i] {
			// Correlated columns with wildly different magnitudes, like
			// the 63-metric vectors.
			base := rng.Gaussian(0, 1)
			rows[i][j] = base*float64(j+1) + rng.Gaussian(0, 0.1)*math.Pow(10, float64(j%5))
		}
	}
	return rows
}

// TestFitMatchesSeedImplementation requires the workspace fit — fresh
// workspace, reused workspace, 1 worker, 8 workers — to emit exactly the
// model the pre-workspace pipeline emitted.
func TestFitMatchesSeedImplementation(t *testing.T) {
	for _, shape := range []struct{ n, dim int }{{40, 12}, {120, 30}} {
		rng := sim.NewRNG(int64(shape.n))
		rows := metricRows(rng, shape.n, shape.dim)
		want := seedFit(rows, 0.9, 0)
		ws := &Workspace{}
		for _, w := range []int{1, 8} {
			for pass := 0; pass < 2; pass++ { // cold then reused workspace
				prev := parallel.SetWorkers(w)
				got, err := FitWS(ws, rows, 0.9, 0)
				parallel.SetWorkers(prev)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want.means, got.means) || !reflect.DeepEqual(want.stds, got.stds) {
					t.Fatalf("%d×%d workers %d pass %d: standardization differs", shape.n, shape.dim, w, pass)
				}
				if !reflect.DeepEqual(want.variances, got.variances) {
					t.Fatalf("%d×%d workers %d pass %d: eigenvalues differ", shape.n, shape.dim, w, pass)
				}
				if !reflect.DeepEqual(want.components.Data, got.components.Data) {
					t.Fatalf("%d×%d workers %d pass %d: components differ", shape.n, shape.dim, w, pass)
				}
				var wantBuf, gotBuf bytes.Buffer
				if err := want.SnapshotTo(&wantBuf); err != nil {
					t.Fatal(err)
				}
				if err := got.SnapshotTo(&gotBuf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
					t.Fatalf("%d×%d workers %d pass %d: snapshot bytes differ", shape.n, shape.dim, w, pass)
				}
			}
		}
	}
}

// TestFitWSAllocs guards the workspace fit's allocation budget: with a
// warm workspace a fit allocates only the returned model (the seed
// implementation paid ~41k allocations, mostly Jacobi rotation closures).
func TestFitWSAllocs(t *testing.T) {
	rng := sim.NewRNG(8)
	rows := metricRows(rng, 120, 30)
	ws := &Workspace{}
	if _, err := FitWS(ws, rows, 0.9, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := FitWS(ws, rows, 0.9, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 16 {
		t.Errorf("FitWS warm = %v allocs, want <= 16 (seed implementation: ~41k)", allocs)
	}
}
