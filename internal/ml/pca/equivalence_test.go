package pca

import (
	"reflect"
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// TestFitEquivalentAcrossWorkers proves the same observations yield
// bit-identical standardization, eigenvalues and principal axes for 1
// worker and for many workers, across seeds.
func TestFitEquivalentAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{3, 17, 99} {
		rng := sim.NewRNG(seed)
		rows := make([][]float64, 220)
		for i := range rows {
			rows[i] = make([]float64, 63)
			for j := range rows[i] {
				// Correlated columns so several components matter.
				base := rng.Gaussian(0, 1)
				rows[i][j] = base*float64(j%7+1) + rng.Gaussian(0, 0.3)
			}
		}
		fit := func(workers int) *Model {
			defer parallel.SetWorkers(parallel.SetWorkers(workers))
			m, err := Fit(rows, 0.90, 0)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		serial := fit(1)
		for _, w := range []int{2, 8} {
			par := fit(w)
			if par.outDim != serial.outDim {
				t.Fatalf("seed %d workers %d: outDim %d != %d", seed, w, par.outDim, serial.outDim)
			}
			if !reflect.DeepEqual(par.means, serial.means) || !reflect.DeepEqual(par.stds, serial.stds) {
				t.Fatalf("seed %d workers %d: standardization differs", seed, w)
			}
			if !reflect.DeepEqual(par.variances, serial.variances) {
				t.Fatalf("seed %d workers %d: eigenvalues differ", seed, w)
			}
			if !reflect.DeepEqual(par.components.Data, serial.components.Data) {
				t.Fatalf("seed %d workers %d: components differ", seed, w)
			}
		}
	}
}
