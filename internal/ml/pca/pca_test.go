package pca

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hunter-cdb/hunter/internal/mathx"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// lowRankData generates n observations in dim dimensions driven by k
// latent factors — the structure of the 63 correlated DB metrics.
func lowRankData(rng *sim.RNG, n, dim, k int, noise float64) [][]float64 {
	loadings := make([][]float64, dim)
	for d := range loadings {
		loadings[d] = make([]float64, k)
		for j := range loadings[d] {
			loadings[d][j] = rng.Gaussian(0, 1)
		}
	}
	rows := make([][]float64, n)
	for i := range rows {
		factors := make([]float64, k)
		for j := range factors {
			factors[j] = rng.Gaussian(0, 1)
		}
		rows[i] = make([]float64, dim)
		for d := 0; d < dim; d++ {
			rows[i][d] = mathx.Dot(loadings[d], factors) + rng.Gaussian(0, noise)
		}
	}
	return rows
}

func TestFitFindsLatentDimension(t *testing.T) {
	rng := sim.NewRNG(1)
	rows := lowRankData(rng, 200, 30, 4, 0.01)
	m, err := Fit(rows, 0.95, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.OutDim() < 3 || m.OutDim() > 6 {
		t.Fatalf("latent dim 4, PCA kept %d components", m.OutDim())
	}
	if m.InDim() != 30 {
		t.Fatalf("in dim %d", m.InDim())
	}
}

func TestVarianceCDFMonotoneToOne(t *testing.T) {
	rng := sim.NewRNG(2)
	m, err := Fit(lowRankData(rng, 100, 20, 5, 0.1), 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	cdf := m.VarianceCDF()
	prev := 0.0
	for i, v := range cdf {
		if v < prev-1e-12 {
			t.Fatalf("CDF decreases at %d", i)
		}
		prev = v
	}
	if math.Abs(cdf[len(cdf)-1]-1) > 1e-9 {
		t.Fatalf("CDF must end at 1, got %v", cdf[len(cdf)-1])
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	rng := sim.NewRNG(3)
	m, err := Fit(lowRankData(rng, 150, 25, 6, 0.05), 0.99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w := m.ComponentOrthogonality(); w > 1e-6 {
		t.Fatalf("components not orthogonal: max |dot| = %g", w)
	}
}

func TestReconstructionError(t *testing.T) {
	rng := sim.NewRNG(4)
	rows := lowRankData(rng, 200, 20, 3, 0.01)
	m, err := Fit(rows, 0.99, 0)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, x := range rows[:50] {
		z, err := m.Transform(x)
		if err != nil {
			t.Fatal(err)
		}
		back, err := m.Reconstruct(z)
		if err != nil {
			t.Fatal(err)
		}
		var num, den float64
		for j := range x {
			d := back[j] - x[j]
			num += d * d
			den += x[j] * x[j]
		}
		if den > 0 {
			if rel := math.Sqrt(num / den); rel > worst {
				worst = rel
			}
		}
	}
	if worst > 0.2 {
		t.Fatalf("relative reconstruction error %.3f too high for low-rank data", worst)
	}
}

func TestMaxDimCap(t *testing.T) {
	rng := sim.NewRNG(5)
	m, err := Fit(lowRankData(rng, 100, 20, 10, 0.1), 0.999, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.OutDim() != 4 {
		t.Fatalf("maxDim not honored: %d", m.OutDim())
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 0.9, 0); err == nil {
		t.Fatal("empty data should fail")
	}
	if _, err := Fit([][]float64{{1}, {2}}, 0, 0); err == nil {
		t.Fatal("zero variance target should fail")
	}
	if _, err := Fit([][]float64{{1}, {2}}, 1.5, 0); err == nil {
		t.Fatal("variance target > 1 should fail")
	}
}

func TestTransformDimensionCheck(t *testing.T) {
	rng := sim.NewRNG(6)
	m, err := Fit(lowRankData(rng, 50, 10, 2, 0.05), 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transform(make([]float64, 3)); err == nil {
		t.Fatal("wrong input dim should error")
	}
	if _, err := m.Reconstruct(make([]float64, m.OutDim()+1)); err == nil {
		t.Fatal("wrong compressed dim should error")
	}
}

// TestTransformLinearityProperty: PCA transform is affine, so
// T(x) − T(y) must equal T applied to the centered difference.
func TestTransformLinearityProperty(t *testing.T) {
	rng := sim.NewRNG(7)
	m, err := Fit(lowRankData(rng, 80, 8, 3, 0.05), 0.95, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := sim.NewRNG(seed)
		x := make([]float64, 8)
		y := make([]float64, 8)
		for i := range x {
			x[i] = r.Gaussian(0, 2)
			y[i] = r.Gaussian(0, 2)
		}
		mid := make([]float64, 8)
		for i := range mid {
			mid[i] = (x[i] + y[i]) / 2
		}
		tx, _ := m.Transform(x)
		ty, _ := m.Transform(y)
		tm, _ := m.Transform(mid)
		for i := range tm {
			if math.Abs(tm[i]-(tx[i]+ty[i])/2) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
