package pca

import (
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// benchFit compresses the paper-scale metric matrix — 63 metrics × 500
// observations (§3.2.1) — at the given worker count. The Serial variant
// is the before/after baseline recorded in BENCH_ml.json.
func benchFit(b *testing.B, workers int) {
	defer parallel.SetWorkers(parallel.SetWorkers(workers))
	rng := sim.NewRNG(1)
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = make([]float64, 63)
		for j := range rows[i] {
			base := rng.Gaussian(0, 1)
			rows[i][j] = base*float64(j%9+1) + rng.Gaussian(0, 0.5)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(rows, 0.90, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPCAFit(b *testing.B)       { benchFit(b, 0) }
func BenchmarkPCAFitSerial(b *testing.B) { benchFit(b, 1) }

// BenchmarkPCAFitWS measures the steady-state fit the optimizer phases
// actually run: a reused workspace, so only the returned model allocates.
func BenchmarkPCAFitWS(b *testing.B) {
	rng := sim.NewRNG(1)
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = make([]float64, 63)
		for j := range rows[i] {
			base := rng.Gaussian(0, 1)
			rows[i][j] = base*float64(j%9+1) + rng.Gaussian(0, 0.5)
		}
	}
	ws := &Workspace{}
	if _, err := FitWS(ws, rows, 0.90, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitWS(ws, rows, 0.90, 0); err != nil {
			b.Fatal(err)
		}
	}
}
