package pca

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/hunter-cdb/hunter/internal/mathx"
)

// modelState is the fitted transform in portable form: the standardization
// statistics, the retained components row-major, and the eigenvalue
// spectrum.
type modelState struct {
	Means      []float64
	Stds       []float64
	Components []float64 // outDim × inDim, row-major
	Variances  []float64
	InDim      int
	OutDim     int
}

// SnapshotTo serializes the fitted model (checkpoint.Snapshotter).
func (m *Model) SnapshotTo(w io.Writer) error {
	st := modelState{
		Means:      m.means,
		Stds:       m.stds,
		Components: m.components.Data,
		Variances:  m.variances,
		InDim:      m.inDim,
		OutDim:     m.outDim,
	}
	return gob.NewEncoder(w).Encode(st)
}

// RestoreFrom reinstates a model written by SnapshotTo
// (checkpoint.Restorer). The model is unchanged on error; restoring into a
// zero Model is the normal resume path.
func (m *Model) RestoreFrom(r io.Reader) error {
	var st modelState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	if st.InDim <= 0 || st.OutDim <= 0 || st.OutDim > st.InDim {
		return fmt.Errorf("pca: snapshot dims %d→%d invalid", st.InDim, st.OutDim)
	}
	if len(st.Means) != st.InDim || len(st.Stds) != st.InDim {
		return fmt.Errorf("pca: snapshot statistics sized %d/%d, want %d", len(st.Means), len(st.Stds), st.InDim)
	}
	if len(st.Components) != st.OutDim*st.InDim {
		return fmt.Errorf("pca: snapshot has %d component values, want %d×%d", len(st.Components), st.OutDim, st.InDim)
	}
	comp := mathx.NewMatrix(st.OutDim, st.InDim)
	copy(comp.Data, st.Components)
	m.means = st.Means
	m.stds = st.Stds
	m.components = comp
	m.variances = st.Variances
	m.inDim = st.InDim
	m.outDim = st.OutDim
	return nil
}
