package pca

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestModelSnapshotRoundTrip verifies a restored model transforms
// identically to the original.
func TestModelSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = make([]float64, 9)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64() * float64(j+1)
		}
	}
	m, err := Fit(rows, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SnapshotTo(&buf); err != nil {
		t.Fatalf("SnapshotTo: %v", err)
	}
	var r Model
	if err := r.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("RestoreFrom: %v", err)
	}
	if r.InDim() != m.InDim() || r.OutDim() != m.OutDim() {
		t.Fatalf("dims (%d,%d) != (%d,%d)", r.InDim(), r.OutDim(), m.InDim(), m.OutDim())
	}
	for _, row := range rows {
		za, err1 := m.Transform(row)
		zb, err2 := r.Transform(row)
		if err1 != nil || err2 != nil {
			t.Fatalf("transform: %v / %v", err1, err2)
		}
		for k := range za {
			if za[k] != zb[k] {
				t.Fatalf("projection diverged at component %d: %v != %v", k, za[k], zb[k])
			}
		}
	}
}

// TestModelRestoreRejectsBad checks inconsistent snapshots are refused.
func TestModelRestoreRejectsBad(t *testing.T) {
	var m Model
	if err := m.RestoreFrom(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
