// Package pca implements principal component analysis for metric
// compression (§3.2.1): the Search Space Optimizer projects the 63-metric
// state vectors onto the leading components covering ≥90% of variance,
// shrinking the DRL state space.
package pca

import (
	"fmt"
	"math"

	"github.com/hunter-cdb/hunter/internal/mathx"
)

// Model is a fitted PCA transform.
type Model struct {
	means      []float64
	stds       []float64
	components *mathx.Matrix // v×u, row i = i-th principal axis
	variances  []float64     // eigenvalues, descending, all u of them
	inDim      int
	outDim     int
}

// Workspace holds the fit's intermediate buffers — the standardized
// observation matrix, its transpose and covariance, and the Jacobi
// eigensolver scratch — so repeated fits of same-shaped data allocate
// only the returned Model. A zero Workspace is ready to use; it is not
// safe for concurrent fits.
type Workspace struct {
	x, xt, cov *mathx.Matrix
	eig        mathx.EigenWorkspace
}

// Fit computes a PCA over the rows of X (one observation per row),
// standardizing columns first (metric magnitudes differ by orders of
// magnitude) and keeping the smallest number of components whose
// cumulative variance fraction reaches varTarget (e.g. 0.90). A maxDim of
// 0 means unbounded.
func Fit(rows [][]float64, varTarget float64, maxDim int) (*Model, error) {
	return FitWS(nil, rows, varTarget, maxDim)
}

// FitWS is Fit with caller-owned scratch: a nil workspace allocates
// freshly, a non-nil one is reused across fits. The arithmetic — and
// therefore every bit of the returned model — is identical either way.
func FitWS(ws *Workspace, rows [][]float64, varTarget float64, maxDim int) (*Model, error) {
	if len(rows) < 2 {
		return nil, fmt.Errorf("pca: need at least 2 observations, got %d", len(rows))
	}
	if varTarget <= 0 || varTarget > 1 {
		return nil, fmt.Errorf("pca: variance target %g outside (0,1]", varTarget)
	}
	if ws == nil {
		ws = &Workspace{}
	}
	x := mathx.FromRowsInto(&ws.x, rows)
	means, stds := mathx.Standardize(x)
	n, u := x.Rows, x.Cols

	// Covariance = XᵀX / (n-1) over standardized data. Gram computes the
	// symmetric product directly (upper triangle only, contiguous-row dot
	// products, parallel over rows above the mathx work cutoff) instead of
	// a full transpose-then-multiply.
	cov := x.GramInto(&ws.xt, &ws.cov)
	for i := range cov.Data {
		cov.Data[i] /= float64(n - 1)
	}
	eig, err := mathx.SymEigenWS(&ws.eig, cov)
	if err != nil {
		return nil, err
	}
	var total float64
	for _, v := range eig.Values {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("pca: zero total variance")
	}
	keep, cum := 0, 0.0
	for keep < u {
		if eig.Values[keep] > 0 {
			cum += eig.Values[keep]
		}
		keep++
		if cum/total >= varTarget {
			break
		}
	}
	if maxDim > 0 && keep > maxDim {
		keep = maxDim
	}
	comp := mathx.NewMatrix(keep, u)
	for i := 0; i < keep; i++ {
		copy(comp.Row(i), eig.Vectors.Row(i))
	}
	return &Model{
		means:      means,
		stds:       stds,
		components: comp,
		variances:  append([]float64(nil), eig.Values...), // eig may alias ws
		inDim:      u,
		outDim:     keep,
	}, nil
}

// InDim returns the input dimensionality.
func (m *Model) InDim() int { return m.inDim }

// OutDim returns the number of retained components (v in the paper).
func (m *Model) OutDim() int { return m.outDim }

// VarianceCDF returns the cumulative fraction of variance explained by the
// first k components, for k = 1..inDim — the curve of Figure 7(a).
func (m *Model) VarianceCDF() []float64 {
	var total float64
	for _, v := range m.variances {
		if v > 0 {
			total += v
		}
	}
	out := make([]float64, len(m.variances))
	cum := 0.0
	for i, v := range m.variances {
		if v > 0 {
			cum += v
		}
		if total > 0 {
			out[i] = cum / total
		}
	}
	return out
}

// Transform projects one observation onto the retained components.
func (m *Model) Transform(x []float64) ([]float64, error) {
	if len(x) != m.inDim {
		return nil, fmt.Errorf("pca: input dim %d != %d", len(x), m.inDim)
	}
	std := make([]float64, m.inDim)
	for j := range x {
		sd := m.stds[j]
		if sd == 0 {
			sd = 1
		}
		std[j] = (x[j] - m.means[j]) / sd
	}
	return m.components.MulVec(std), nil
}

// Reconstruct maps a compressed vector back to the original space
// (approximately), used by tests to bound reconstruction error.
func (m *Model) Reconstruct(z []float64) ([]float64, error) {
	if len(z) != m.outDim {
		return nil, fmt.Errorf("pca: compressed dim %d != %d", len(z), m.outDim)
	}
	out := make([]float64, m.inDim)
	for i := 0; i < m.outDim; i++ {
		row := m.components.Row(i)
		for j := 0; j < m.inDim; j++ {
			out[j] += z[i] * row[j]
		}
	}
	for j := range out {
		sd := m.stds[j]
		if sd == 0 {
			sd = 1
		}
		out[j] = out[j]*sd + m.means[j]
	}
	return out, nil
}

// ComponentOrthogonality returns the maximum absolute dot product between
// distinct retained components (should be ≈0); used by property tests.
func (m *Model) ComponentOrthogonality() float64 {
	worst := 0.0
	for i := 0; i < m.outDim; i++ {
		for j := i + 1; j < m.outDim; j++ {
			d := math.Abs(mathx.Dot(m.components.Row(i), m.components.Row(j)))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}
