// Package lasso implements L1-regularized linear regression by cyclic
// coordinate descent. OtterTune uses Lasso paths to rank knobs by impact;
// the paper contrasts this with HUNTER's Random-Forest ranking (§3.2.2),
// so the baseline reproduces the Lasso approach faithfully.
package lasso

import (
	"fmt"
	"math"
	"sort"

	"github.com/hunter-cdb/hunter/internal/mathx"
)

// Model is a fitted Lasso regression.
type Model struct {
	Coef      []float64
	Intercept float64
	xMeans    []float64
	xStds     []float64
	yMean     float64
}

// Fit minimizes ½‖y − Xβ‖² + λ‖β‖₁ by coordinate descent over
// standardized features.
func Fit(x [][]float64, y []float64, lambda float64, iters int) (*Model, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("lasso: bad training set (%d, %d)", n, len(y))
	}
	d := len(x[0])
	if iters <= 0 {
		iters = 200
	}
	xm := mathx.FromRows(x)
	means, stds := mathx.Standardize(xm)
	yMean := mathx.Mean(y)
	yc := make([]float64, n)
	for i := range y {
		yc[i] = y[i] - yMean
	}
	beta := make([]float64, d)
	resid := append([]float64(nil), yc...)
	colNorm := make([]float64, d)
	for j := 0; j < d; j++ {
		for i := 0; i < n; i++ {
			v := xm.At(i, j)
			colNorm[j] += v * v
		}
	}
	for it := 0; it < iters; it++ {
		var maxDelta float64
		for j := 0; j < d; j++ {
			if colNorm[j] == 0 {
				continue
			}
			// rho = x_j · (resid + x_j·β_j)
			var rho float64
			for i := 0; i < n; i++ {
				rho += xm.At(i, j) * (resid[i] + xm.At(i, j)*beta[j])
			}
			newB := softThreshold(rho, lambda*float64(n)) / colNorm[j]
			if delta := newB - beta[j]; delta != 0 {
				for i := 0; i < n; i++ {
					resid[i] -= xm.At(i, j) * delta
				}
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
				beta[j] = newB
			}
		}
		if maxDelta < 1e-8 {
			break
		}
	}
	return &Model{Coef: beta, Intercept: yMean, xMeans: means, xStds: stds, yMean: yMean}, nil
}

func softThreshold(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	}
	return 0
}

// Predict evaluates the model at x.
func (m *Model) Predict(x []float64) float64 {
	s := m.Intercept
	for j, b := range m.Coef {
		if b == 0 {
			continue
		}
		sd := m.xStds[j]
		if sd == 0 {
			sd = 1
		}
		s += b * (x[j] - m.xMeans[j]) / sd
	}
	return s
}

// Ranking returns feature indices sorted by |coefficient| descending —
// OtterTune's knob-impact order. Zeroed features rank last.
func (m *Model) Ranking() []int {
	idx := make([]int, len(m.Coef))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return math.Abs(m.Coef[idx[a]]) > math.Abs(m.Coef[idx[b]])
	})
	return idx
}
