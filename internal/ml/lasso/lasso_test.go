package lasso

import (
	"math"
	"testing"

	"github.com/hunter-cdb/hunter/internal/sim"
)

// sparseData: y = 4·x1 − 3·x5 + noise, eight features.
func sparseData(rng *sim.RNG, n int) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, 8)
		for d := range x[i] {
			x[i][d] = rng.Gaussian(0, 1)
		}
		y[i] = 4*x[i][1] - 3*x[i][5] + rng.Gaussian(0, 0.05)
	}
	return x, y
}

func TestRecoversSparseSupport(t *testing.T) {
	x, y := sparseData(sim.NewRNG(1), 200)
	m, err := Fit(x, y, 0.1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[1]) < 1 || math.Abs(m.Coef[5]) < 1 {
		t.Fatalf("true features shrunk away: %v", m.Coef)
	}
	for d := range m.Coef {
		if d == 1 || d == 5 {
			continue
		}
		if math.Abs(m.Coef[d]) > 0.3 {
			t.Fatalf("inert feature %d has coefficient %v", d, m.Coef[d])
		}
	}
}

func TestHeavyPenaltyZeroesEverything(t *testing.T) {
	x, y := sparseData(sim.NewRNG(2), 100)
	m, err := Fit(x, y, 1e6, 100)
	if err != nil {
		t.Fatal(err)
	}
	for d, c := range m.Coef {
		if c != 0 {
			t.Fatalf("coefficient %d = %v under huge λ", d, c)
		}
	}
}

func TestRankingOrdersByMagnitude(t *testing.T) {
	x, y := sparseData(sim.NewRNG(3), 200)
	m, err := Fit(x, y, 0.05, 300)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Ranking()
	if r[0] != 1 { // |4| > |−3|
		t.Fatalf("ranking %v, want feature 1 first", r)
	}
	if r[1] != 5 {
		t.Fatalf("ranking %v, want feature 5 second", r)
	}
}

func TestPredictAccuracy(t *testing.T) {
	rng := sim.NewRNG(4)
	x, y := sparseData(rng, 300)
	m, err := Fit(x, y, 0.01, 300)
	if err != nil {
		t.Fatal(err)
	}
	var sse, sst float64
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for i := range x {
		d := m.Predict(x[i]) - y[i]
		sse += d * d
		dd := y[i] - mean
		sst += dd * dd
	}
	if r2 := 1 - sse/sst; r2 < 0.95 {
		t.Fatalf("R² = %.3f on a linear problem", r2)
	}
}

func TestSoftThreshold(t *testing.T) {
	if softThreshold(5, 2) != 3 || softThreshold(-5, 2) != -3 || softThreshold(1, 2) != 0 {
		t.Fatal("soft threshold wrong")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, 0.1, 10); err == nil {
		t.Fatal("empty training set should fail")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, 0.1, 10); err == nil {
		t.Fatal("length mismatch should fail")
	}
}
