// Package nn implements the small feed-forward neural networks the DDPG
// Recommender is built from: dense layers with ReLU/Tanh/Sigmoid
// activations, backpropagation with Adam, soft target updates, and
// parameter snapshots for the model-reuse schemes (§4).
package nn

import (
	"fmt"
	"math"

	"github.com/hunter-cdb/hunter/internal/mathx"
	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// elemGrain is the chunk size for the element-wise parameter updates
// (Adam, soft target updates). The 64×64 layers this repo trains sit
// below one chunk and stay serial; wider layers fan out.
const elemGrain = 1 << 13

// Activation selects a layer's non-linearity.
type Activation int

const (
	// Linear is the identity.
	Linear Activation = iota
	// ReLU is max(0, x).
	ReLU
	// Tanh squashes to (-1, 1).
	Tanh
	// Sigmoid squashes to (0, 1) — the actor's output layer, since
	// actions are normalized knob settings in [0,1].
	Sigmoid
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	}
	return x
}

// derivative given the activated output y.
func (a Activation) deriv(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Sigmoid:
		return y * (1 - y)
	}
	return 1
}

type layer struct {
	in, out int
	act     Activation
	w       []float64 // out×in row-major
	b       []float64
	// Adam moments.
	mw, vw []float64
	mb, vb []float64
	// Gradient accumulators.
	gw []float64
	gb []float64
	// Forward cache.
	x []float64 // input
	y []float64 // activated output
}

// MLP is a multilayer perceptron.
type MLP struct {
	layers []*layer
	adamT  int
}

// NewMLP builds an MLP with the given layer sizes (len ≥ 2) and one
// activation per weight layer (len(sizes)-1 entries). Weights use
// He/Xavier-style initialization scaled by fan-in.
func NewMLP(sizes []int, acts []Activation, rng *sim.RNG) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: need at least input and output sizes")
	}
	if len(acts) != len(sizes)-1 {
		return nil, fmt.Errorf("nn: %d activations for %d layers", len(acts), len(sizes)-1)
	}
	m := &MLP{}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		if in <= 0 || out <= 0 {
			return nil, fmt.Errorf("nn: non-positive layer size")
		}
		ly := &layer{
			in: in, out: out, act: acts[l],
			w:  make([]float64, in*out),
			b:  make([]float64, out),
			mw: make([]float64, in*out),
			vw: make([]float64, in*out),
			mb: make([]float64, out),
			vb: make([]float64, out),
			gw: make([]float64, in*out),
			gb: make([]float64, out),
			y:  make([]float64, out),
		}
		scale := math.Sqrt(2 / float64(in))
		for i := range ly.w {
			ly.w[i] = rng.Gaussian(0, scale)
		}
		m.layers = append(m.layers, ly)
	}
	return m, nil
}

// InDim returns the input dimensionality.
func (m *MLP) InDim() int { return m.layers[0].in }

// OutDim returns the output dimensionality.
func (m *MLP) OutDim() int { return m.layers[len(m.layers)-1].out }

// Forward runs inference and caches activations for a following Backward.
func (m *MLP) Forward(x []float64) []float64 {
	if len(x) != m.InDim() {
		panic(fmt.Sprintf("nn: input dim %d != %d", len(x), m.InDim()))
	}
	cur := x
	for _, ly := range m.layers {
		ly.x = cur
		// Pre-activation via the shared GEMV kernel (cache-blocked and
		// parallel above the mathx cutoff), then the non-linearity.
		mathx.GemvBias(ly.w, ly.in, ly.out, cur, ly.b, ly.y)
		for o, s := range ly.y {
			ly.y[o] = ly.act.apply(s)
		}
		cur = ly.y
	}
	out := make([]float64, len(cur))
	copy(out, cur)
	return out
}

// Backward accumulates parameter gradients for the most recent Forward
// given dLoss/dOutput, and returns dLoss/dInput (used to chain the critic's
// action gradient into the actor).
func (m *MLP) Backward(dOut []float64) []float64 {
	if len(dOut) != m.OutDim() {
		panic(fmt.Sprintf("nn: grad dim %d != %d", len(dOut), m.OutDim()))
	}
	grad := append([]float64(nil), dOut...)
	for l := len(m.layers) - 1; l >= 0; l-- {
		ly := m.layers[l]
		// Through activation.
		for o := 0; o < ly.out; o++ {
			grad[o] *= ly.act.deriv(ly.y[o])
		}
		// Parameter grads (rank-1 outer product) and input grad (Wᵀ·g)
		// through the shared mathx kernels; both preserve the serial
		// accumulation order element by element.
		din := make([]float64, ly.in)
		for o, g := range grad {
			ly.gb[o] += g
		}
		mathx.OuterAccum(ly.gw, ly.in, ly.out, grad, ly.x)
		mathx.GemvTAccum(ly.w, ly.in, ly.out, grad, din)
		grad = din
	}
	return grad
}

// ZeroGrad clears accumulated gradients.
func (m *MLP) ZeroGrad() {
	for _, ly := range m.layers {
		for i := range ly.gw {
			ly.gw[i] = 0
		}
		for i := range ly.gb {
			ly.gb[i] = 0
		}
	}
}

// Step applies one Adam update with the accumulated gradients scaled by
// 1/batch, then clears them. Gradients are clipped to maxNorm (0 disables).
func (m *MLP) Step(lr float64, batch int, maxNorm float64) {
	if batch < 1 {
		batch = 1
	}
	inv := 1 / float64(batch)
	// Global norm clipping.
	if maxNorm > 0 {
		var sq float64
		for _, ly := range m.layers {
			for _, g := range ly.gw {
				sq += g * g * inv * inv
			}
			for _, g := range ly.gb {
				sq += g * g * inv * inv
			}
		}
		if norm := math.Sqrt(sq); norm > maxNorm {
			inv *= maxNorm / norm
		}
	}
	m.adamT++
	b1c := 1 - math.Pow(0.9, float64(m.adamT))
	b2c := 1 - math.Pow(0.999, float64(m.adamT))
	for _, ly := range m.layers {
		adam(ly.w, ly.gw, ly.mw, ly.vw, lr, inv, b1c, b2c)
		adam(ly.b, ly.gb, ly.mb, ly.vb, lr, inv, b1c, b2c)
		for i := range ly.gw {
			ly.gw[i] = 0
		}
		for i := range ly.gb {
			ly.gb[i] = 0
		}
	}
}

// adam is element-wise, so chunks are independent and the fan-out (for
// layers above elemGrain parameters) is bit-identical to the serial loop.
func adam(w, g, mm, vv []float64, lr, inv, b1c, b2c float64) {
	parallel.For(len(w), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			gi := g[i] * inv
			mm[i] = 0.9*mm[i] + 0.1*gi
			vv[i] = 0.999*vv[i] + 0.001*gi*gi
			mhat := mm[i] / b1c
			vhat := vv[i] / b2c
			w[i] -= lr * mhat / (math.Sqrt(vhat) + 1e-8)
		}
	})
}

// Weights exports all parameters as a flat slice (for snapshots and the
// model-reuse schemes).
func (m *MLP) Weights() []float64 {
	var out []float64
	for _, ly := range m.layers {
		out = append(out, ly.w...)
		out = append(out, ly.b...)
	}
	return out
}

// SetWeights restores parameters exported by Weights.
func (m *MLP) SetWeights(w []float64) error {
	need := 0
	for _, ly := range m.layers {
		need += len(ly.w) + len(ly.b)
	}
	if len(w) != need {
		return fmt.Errorf("nn: weight count %d != %d", len(w), need)
	}
	off := 0
	for _, ly := range m.layers {
		copy(ly.w, w[off:off+len(ly.w)])
		off += len(ly.w)
		copy(ly.b, w[off:off+len(ly.b)])
		off += len(ly.b)
	}
	return nil
}

// Clone returns a deep copy sharing no state.
func (m *MLP) Clone() *MLP {
	c := &MLP{adamT: m.adamT}
	for _, ly := range m.layers {
		nl := &layer{in: ly.in, out: ly.out, act: ly.act,
			w:  append([]float64(nil), ly.w...),
			b:  append([]float64(nil), ly.b...),
			mw: append([]float64(nil), ly.mw...),
			vw: append([]float64(nil), ly.vw...),
			mb: append([]float64(nil), ly.mb...),
			vb: append([]float64(nil), ly.vb...),
			gw: make([]float64, len(ly.gw)),
			gb: make([]float64, len(ly.gb)),
			y:  make([]float64, ly.out),
		}
		c.layers = append(c.layers, nl)
	}
	return c
}

// SoftUpdate moves the target network toward m: target ← τ·m + (1−τ)·target.
func (m *MLP) SoftUpdate(target *MLP, tau float64) {
	for l, ly := range m.layers {
		tl := target.layers[l]
		parallel.For(len(ly.w), elemGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				tl.w[i] = tau*ly.w[i] + (1-tau)*tl.w[i]
			}
		})
		for i := range ly.b {
			tl.b[i] = tau*ly.b[i] + (1-tau)*tl.b[i]
		}
	}
}

// BatchWorkspace holds the minibatch activations and gradient buffers for
// ForwardBatch/BackwardBatch/InputGradBatch. A zero value is ready to use;
// buffers grow on first use and are reused afterwards, so a warm
// forward/backward cycle allocates nothing. Not safe for concurrent use —
// each (network, goroutine) pair needs its own workspace.
type BatchWorkspace struct {
	n  int
	x  []float64   // the forward input batch (caller-owned, referenced)
	ys [][]float64 // per layer: n×out activated outputs
	g  []float64   // gradient ping-pong buffer, n×maxWidth
	d  []float64   // gradient ping-pong buffer, n×maxWidth
}

// ensure sizes the workspace for a batch of n rows through m's layers.
func (ws *BatchWorkspace) ensure(m *MLP, n int) {
	if len(ws.ys) != len(m.layers) {
		ws.ys = make([][]float64, len(m.layers))
	}
	maxW := m.InDim()
	for l, ly := range m.layers {
		if cap(ws.ys[l]) < n*ly.out {
			ws.ys[l] = make([]float64, n*ly.out)
		}
		ws.ys[l] = ws.ys[l][:n*ly.out]
		if ly.out > maxW {
			maxW = ly.out
		}
	}
	if cap(ws.g) < n*maxW {
		ws.g = make([]float64, n*maxW)
		ws.d = make([]float64, n*maxW)
	}
	ws.n = n
}

// ForwardBatch runs inference over a minibatch of n rows stored flat in x
// (n×InDim, row-major), caching per-row activations in ws for a following
// BackwardBatch or InputGradBatch. The returned n×OutDim slice aliases the
// workspace and stays valid until the next ForwardBatch on ws. Each row's
// arithmetic — the dense GEMV accumulation and the activation — is
// bit-identical to calling Forward on that row alone; rows are independent
// and fan out inside the mathx kernels. x must stay unmodified until the
// matching backward pass has run.
func (m *MLP) ForwardBatch(ws *BatchWorkspace, x []float64, n int) []float64 {
	if len(x) != n*m.InDim() {
		panic(fmt.Sprintf("nn: batch input len %d != %d×%d", len(x), n, m.InDim()))
	}
	ws.ensure(m, n)
	ws.x = x
	cur := x
	for l, ly := range m.layers {
		y := ws.ys[l]
		mathx.GemmBias(ly.w, ly.in, ly.out, cur, ly.b, y, n)
		for i, s := range y {
			y[i] = ly.act.apply(s)
		}
		cur = y
	}
	return cur
}

// BackwardBatch accumulates parameter gradients for the most recent
// ForwardBatch on ws given the flat n×OutDim loss gradient dOut. The
// per-element accumulation into gw/gb runs in ascending batch-row order —
// the exact order a sample-at-a-time Forward/Backward loop over the batch
// produces — so the accumulated gradients (and every weight update built
// from them) are bit-identical to the serial per-sample pass, for any
// worker count. The input gradient is not materialized for the first
// layer (the per-sample pass computed and discarded it).
func (m *MLP) BackwardBatch(ws *BatchWorkspace, dOut []float64) {
	n := ws.n
	if len(dOut) != n*m.OutDim() {
		panic(fmt.Sprintf("nn: batch grad len %d != %d×%d", len(dOut), n, m.OutDim()))
	}
	grad := ws.g[:len(dOut)]
	copy(grad, dOut)
	for l := len(m.layers) - 1; l >= 0; l-- {
		ly := m.layers[l]
		y := ws.ys[l]
		for i := range grad {
			grad[i] *= ly.act.deriv(y[i])
		}
		mathx.BiasGradAccum(ly.gb, ly.out, grad, n)
		xin := ws.x
		if l > 0 {
			xin = ws.ys[l-1]
		}
		mathx.GemmOuterAccum(ly.gw, ly.in, ly.out, grad, xin, n)
		if l > 0 {
			din := ws.d[:n*ly.in]
			mathx.GemmTIn(ly.w, ly.in, ly.out, grad, din, n)
			ws.g, ws.d = ws.d, ws.g
			grad = din
		}
	}
}

// InputGradBatch returns dLoss/dInput (flat n×InDim) for the most recent
// ForwardBatch on ws given dOut, without touching the parameter gradient
// accumulators — the batched form of the critic's action-gradient pass,
// where only the input gradient is needed. Rows are independent and each
// row's accumulation order matches the single-sample Backward exactly.
// The returned slice aliases the workspace.
func (m *MLP) InputGradBatch(ws *BatchWorkspace, dOut []float64) []float64 {
	n := ws.n
	if len(dOut) != n*m.OutDim() {
		panic(fmt.Sprintf("nn: batch grad len %d != %d×%d", len(dOut), n, m.OutDim()))
	}
	grad := ws.g[:len(dOut)]
	copy(grad, dOut)
	for l := len(m.layers) - 1; l >= 0; l-- {
		ly := m.layers[l]
		y := ws.ys[l]
		for i := range grad {
			grad[i] *= ly.act.deriv(y[i])
		}
		din := ws.d[:n*ly.in]
		mathx.GemmTIn(ly.w, ly.in, ly.out, grad, din, n)
		ws.g, ws.d = ws.d, ws.g
		grad = din
	}
	return grad
}

// CopyWeightsFrom copies src's weights and biases into m without
// allocating; architectures must match. It exists so DDPG can refresh its
// per-chunk scratch networks cheaply on every training step.
func (m *MLP) CopyWeightsFrom(src *MLP) error {
	if len(m.layers) != len(src.layers) {
		return fmt.Errorf("nn: layer count %d != %d", len(m.layers), len(src.layers))
	}
	for l, ly := range m.layers {
		sl := src.layers[l]
		if ly.in != sl.in || ly.out != sl.out {
			return fmt.Errorf("nn: layer %d shape %dx%d != %dx%d", l, ly.out, ly.in, sl.out, sl.in)
		}
		copy(ly.w, sl.w)
		copy(ly.b, sl.b)
	}
	return nil
}
