package nn

import (
	"math"
	"testing"

	"github.com/hunter-cdb/hunter/internal/sim"
)

func TestForwardDimensions(t *testing.T) {
	m, err := NewMLP([]int{3, 5, 2}, []Activation{ReLU, Linear}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	out := m.Forward([]float64{1, 2, 3})
	if len(out) != 2 {
		t.Fatalf("output dim %d", len(out))
	}
	if m.InDim() != 3 || m.OutDim() != 2 {
		t.Fatal("dims wrong")
	}
}

func TestNewMLPErrors(t *testing.T) {
	if _, err := NewMLP([]int{3}, nil, sim.NewRNG(1)); err == nil {
		t.Fatal("single layer should fail")
	}
	if _, err := NewMLP([]int{3, 2}, []Activation{ReLU, ReLU}, sim.NewRNG(1)); err == nil {
		t.Fatal("activation count mismatch should fail")
	}
	if _, err := NewMLP([]int{3, 0}, []Activation{ReLU}, sim.NewRNG(1)); err == nil {
		t.Fatal("zero layer size should fail")
	}
}

// TestGradientCheck compares backprop gradients against finite differences
// on a small network with smooth activations.
func TestGradientCheck(t *testing.T) {
	rng := sim.NewRNG(2)
	m, err := NewMLP([]int{3, 4, 2}, []Activation{Tanh, Sigmoid}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.7, 1.1}
	target := []float64{0.2, 0.9}
	loss := func(mm *MLP) float64 {
		out := mm.Forward(x)
		var l float64
		for i := range out {
			d := out[i] - target[i]
			l += d * d
		}
		return l
	}
	// Analytic gradient.
	m.ZeroGrad()
	out := m.Forward(x)
	dOut := make([]float64, len(out))
	for i := range out {
		dOut[i] = 2 * (out[i] - target[i])
	}
	m.Backward(dOut)
	analytic := make([]float64, 0)
	for _, ly := range m.layers {
		analytic = append(analytic, ly.gw...)
		analytic = append(analytic, ly.gb...)
	}
	// Numeric gradient via central differences over flattened weights.
	w := m.Weights()
	const eps = 1e-6
	for i := 0; i < len(w); i += 7 { // sample every 7th weight
		wp := append([]float64(nil), w...)
		wp[i] += eps
		if err := m.SetWeights(wp); err != nil {
			t.Fatal(err)
		}
		lp := loss(m)
		wp[i] -= 2 * eps
		if err := m.SetWeights(wp); err != nil {
			t.Fatal(err)
		}
		lm := loss(m)
		numeric := (lp - lm) / (2 * eps)
		if err := m.SetWeights(w); err != nil {
			t.Fatal(err)
		}
		// Map flat index to the analytic gradient (same flattening order).
		if diff := math.Abs(numeric - analytic[i]); diff > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("gradient mismatch at %d: numeric %g vs analytic %g", i, numeric, analytic[i])
		}
	}
}

// TestLearnsXOR trains a tiny net on XOR — a non-linearly-separable task
// that requires the hidden layer and working backprop.
func TestLearnsXOR(t *testing.T) {
	rng := sim.NewRNG(3)
	m, err := NewMLP([]int{2, 8, 1}, []Activation{Tanh, Sigmoid}, rng)
	if err != nil {
		t.Fatal(err)
	}
	in := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	out := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 2000; epoch++ {
		m.ZeroGrad()
		for i := range in {
			y := m.Forward(in[i])
			m.Backward([]float64{2 * (y[0] - out[i])})
		}
		m.Step(0.05, len(in), 0)
	}
	for i := range in {
		y := m.Forward(in[i])[0]
		if math.Abs(y-out[i]) > 0.2 {
			t.Fatalf("XOR(%v) = %.3f, want %v", in[i], y, out[i])
		}
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	rng := sim.NewRNG(4)
	a, _ := NewMLP([]int{3, 4, 2}, []Activation{ReLU, Linear}, rng)
	b, _ := NewMLP([]int{3, 4, 2}, []Activation{ReLU, Linear}, rng)
	if err := b.SetWeights(a.Weights()); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3}
	ya, yb := a.Forward(x), b.Forward(x)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatal("weights round trip changed outputs")
		}
	}
	if err := b.SetWeights(make([]float64, 3)); err == nil {
		t.Fatal("wrong weight count should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := sim.NewRNG(5)
	a, _ := NewMLP([]int{2, 3, 1}, []Activation{ReLU, Linear}, rng)
	c := a.Clone()
	x := []float64{1, 1}
	before := c.Forward(x)[0]
	// Train a only.
	for i := 0; i < 50; i++ {
		a.ZeroGrad()
		a.Forward(x)
		a.Backward([]float64{1})
		a.Step(0.1, 1, 0)
	}
	if c.Forward(x)[0] != before {
		t.Fatal("training the original must not affect the clone")
	}
}

func TestSoftUpdate(t *testing.T) {
	rng := sim.NewRNG(6)
	src, _ := NewMLP([]int{2, 2}, []Activation{Linear}, rng)
	dst := src.Clone()
	// Shift src weights.
	w := src.Weights()
	for i := range w {
		w[i] += 1
	}
	if err := src.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	src.SoftUpdate(dst, 0.1)
	dw := dst.Weights()
	sw := src.Weights()
	for i := range dw {
		want := 0.1*sw[i] + 0.9*(sw[i]-1)
		if math.Abs(dw[i]-want) > 1e-12 {
			t.Fatalf("soft update wrong at %d: %v want %v", i, dw[i], want)
		}
	}
	// τ=1 copies exactly.
	src.SoftUpdate(dst, 1)
	for i, v := range dst.Weights() {
		if v != sw[i] {
			t.Fatal("tau=1 should copy source")
		}
	}
}

func TestGradientClipping(t *testing.T) {
	rng := sim.NewRNG(7)
	m, _ := NewMLP([]int{1, 1}, []Activation{Linear}, rng)
	before := m.Weights()
	m.ZeroGrad()
	m.Forward([]float64{1e6})
	m.Backward([]float64{1e6})
	m.Step(0.001, 1, 1.0) // clip to unit norm
	after := m.Weights()
	var move float64
	for i := range before {
		d := after[i] - before[i]
		move += d * d
	}
	// Adam caps per-weight movement at ~lr; clipped total must be tiny.
	if math.Sqrt(move) > 0.01 {
		t.Fatalf("clipped update moved %g", math.Sqrt(move))
	}
}

func TestActivations(t *testing.T) {
	if ReLU.apply(-2) != 0 || ReLU.apply(3) != 3 {
		t.Fatal("relu wrong")
	}
	if Sigmoid.apply(0) != 0.5 {
		t.Fatal("sigmoid wrong")
	}
	if Tanh.apply(0) != 0 {
		t.Fatal("tanh wrong")
	}
	if Linear.apply(1.5) != 1.5 || Linear.deriv(99) != 1 {
		t.Fatal("linear wrong")
	}
}
