package nn

import (
	"reflect"
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// trainWide fits a wide MLP (layers large enough to cross the mathx
// kernel fan-out cutoff) for a few epochs and returns the weights.
func trainWide(t *testing.T, workers int) []float64 {
	t.Helper()
	defer parallel.SetWorkers(parallel.SetWorkers(workers))
	rng := sim.NewRNG(31)
	m, err := NewMLP([]int{130, 257, 64, 1}, []Activation{ReLU, ReLU, Linear}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 130)
	for epoch := 0; epoch < 10; epoch++ {
		for s := 0; s < 8; s++ {
			for i := range x {
				x[i] = sim.NewRNG(int64(epoch*100 + s)).Gaussian(0, 1)
			}
			out := m.Forward(x)
			target := x[0]*2 - x[1]
			m.Backward([]float64{2 * (out[0] - target)})
		}
		m.Step(1e-3, 8, 5)
	}
	return m.Weights()
}

// TestTrainingEquivalentAcrossWorkers proves forward, backward and Adam
// through the parallel mathx kernels produce bit-identical weights for 1
// worker and for many workers.
func TestTrainingEquivalentAcrossWorkers(t *testing.T) {
	serial := trainWide(t, 1)
	for _, w := range []int{2, 8} {
		if par := trainWide(t, w); !reflect.DeepEqual(par, serial) {
			t.Fatalf("workers %d: trained weights diverged from serial", w)
		}
	}
}
