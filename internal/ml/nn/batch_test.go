package nn

import (
	"reflect"
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

func batchNet(t *testing.T) *MLP {
	t.Helper()
	m, err := NewMLP([]int{7, 24, 16, 3}, []Activation{ReLU, Tanh, Sigmoid}, sim.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func batchInputs(n, dim int, seed int64) []float64 {
	rng := sim.NewRNG(seed)
	x := make([]float64, n*dim)
	for i := range x {
		x[i] = rng.Gaussian(0, 1)
	}
	return x
}

// TestForwardBatchMatchesForward requires every row of a batched forward
// pass to be bitwise equal to a single-sample Forward of that row, at 1
// worker and at 8.
func TestForwardBatchMatchesForward(t *testing.T) {
	m := batchNet(t)
	const n = 13
	x := batchInputs(n, 7, 3)
	for _, w := range []int{1, 8} {
		prev := parallel.SetWorkers(w)
		var ws BatchWorkspace
		got := m.ForwardBatch(&ws, x, n)
		for r := 0; r < n; r++ {
			want := m.Forward(x[r*7 : (r+1)*7])
			if !reflect.DeepEqual(want, append([]float64(nil), got[r*3:(r+1)*3]...)) {
				t.Fatalf("workers %d row %d: batched forward differs", w, r)
			}
		}
		parallel.SetWorkers(prev)
	}
}

// TestBackwardBatchMatchesPerSample requires the batched backward pass to
// accumulate exactly the gradients of a sample-at-a-time Forward/Backward
// loop over the batch, in the same order, at 1 worker and at 8.
func TestBackwardBatchMatchesPerSample(t *testing.T) {
	const n = 13
	x := batchInputs(n, 7, 4)
	dOut := batchInputs(n, 3, 5)
	for _, w := range []int{1, 8} {
		prev := parallel.SetWorkers(w)

		ref := batchNet(t)
		ref.ZeroGrad()
		for r := 0; r < n; r++ {
			ref.Forward(x[r*7 : (r+1)*7])
			ref.Backward(dOut[r*3 : (r+1)*3])
		}

		m := batchNet(t)
		m.ZeroGrad()
		var ws BatchWorkspace
		m.ForwardBatch(&ws, x, n)
		m.BackwardBatch(&ws, dOut)

		for l := range m.layers {
			if !reflect.DeepEqual(ref.layers[l].gw, m.layers[l].gw) {
				t.Fatalf("workers %d layer %d: weight gradients differ", w, l)
			}
			if !reflect.DeepEqual(ref.layers[l].gb, m.layers[l].gb) {
				t.Fatalf("workers %d layer %d: bias gradients differ", w, l)
			}
		}
		parallel.SetWorkers(prev)
	}
}

// TestInputGradBatchMatchesBackward requires the batched input-gradient
// pass to return, row for row, the dLoss/dInput of a single-sample
// Backward — without touching the parameter gradient accumulators.
func TestInputGradBatchMatchesBackward(t *testing.T) {
	const n = 9
	x := batchInputs(n, 7, 6)
	dOut := batchInputs(n, 3, 7)
	for _, w := range []int{1, 8} {
		prev := parallel.SetWorkers(w)

		ref := batchNet(t)
		wantDin := make([][]float64, n)
		for r := 0; r < n; r++ {
			ref.Forward(x[r*7 : (r+1)*7])
			ref.ZeroGrad()
			wantDin[r] = ref.Backward(dOut[r*3 : (r+1)*3])
		}

		m := batchNet(t)
		m.ZeroGrad()
		var ws BatchWorkspace
		m.ForwardBatch(&ws, x, n)
		din := m.InputGradBatch(&ws, dOut)
		for r := 0; r < n; r++ {
			if !reflect.DeepEqual(wantDin[r], append([]float64(nil), din[r*7:(r+1)*7]...)) {
				t.Fatalf("workers %d row %d: input gradients differ", w, r)
			}
		}
		for l := range m.layers {
			for _, g := range m.layers[l].gw {
				if g != 0 {
					t.Fatalf("workers %d layer %d: InputGradBatch touched weight gradients", w, l)
				}
			}
			for _, g := range m.layers[l].gb {
				if g != 0 {
					t.Fatalf("workers %d layer %d: InputGradBatch touched bias gradients", w, l)
				}
			}
		}
		parallel.SetWorkers(prev)
	}
}

// TestBatchAllocs guards the batched passes' allocation budget: with a
// warm workspace the only allocations are the closure headers the mathx
// kernels pass to parallel.For.
func TestBatchAllocs(t *testing.T) {
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	m := batchNet(t)
	const n = 13
	x := batchInputs(n, 7, 8)
	dOut := batchInputs(n, 3, 9)
	var ws BatchWorkspace
	m.ForwardBatch(&ws, x, n)
	allocs := testing.AllocsPerRun(10, func() {
		m.ForwardBatch(&ws, x, n)
		m.BackwardBatch(&ws, dOut)
		m.InputGradBatch(&ws, dOut)
	})
	if allocs > 16 {
		t.Errorf("warm batch cycle = %v allocs, want <= 16 (closure headers only)", allocs)
	}
}
