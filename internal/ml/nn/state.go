package nn

import "fmt"

// LayerState is the full serializable state of one weight layer: the
// parameters plus the Adam first/second moments. Gradient accumulators
// and forward caches are scratch (zeroed by ZeroGrad / overwritten by
// Forward) and are deliberately excluded.
type LayerState struct {
	In, Out int
	Act     Activation
	W, B    []float64
	MW, VW  []float64
	MB, VB  []float64
}

// State is the full serializable optimizer-inclusive state of an MLP.
// Restoring it into a freshly built network makes subsequent training
// steps bit-identical to the original — Weights/SetWeights alone do not,
// because Adam's moment estimates and step counter shape every update.
type State struct {
	Layers []LayerState
	AdamT  int
}

// State deep-copies the network's full state.
func (m *MLP) State() State {
	st := State{AdamT: m.adamT, Layers: make([]LayerState, len(m.layers))}
	for i, ly := range m.layers {
		st.Layers[i] = LayerState{
			In: ly.in, Out: ly.out, Act: ly.act,
			W:  append([]float64(nil), ly.w...),
			B:  append([]float64(nil), ly.b...),
			MW: append([]float64(nil), ly.mw...),
			VW: append([]float64(nil), ly.vw...),
			MB: append([]float64(nil), ly.mb...),
			VB: append([]float64(nil), ly.vb...),
		}
	}
	return st
}

// SetState restores a state captured by State. The layer geometry must
// match the receiver exactly; on any mismatch the receiver is left
// unchanged.
func (m *MLP) SetState(st State) error {
	if len(st.Layers) != len(m.layers) {
		return fmt.Errorf("nn: state has %d layers, network has %d", len(st.Layers), len(m.layers))
	}
	for i, ls := range st.Layers {
		ly := m.layers[i]
		if ls.In != ly.in || ls.Out != ly.out {
			return fmt.Errorf("nn: layer %d geometry %dx%d != %dx%d", i, ls.Out, ls.In, ly.out, ly.in)
		}
		if len(ls.W) != ly.in*ly.out || len(ls.B) != ly.out ||
			len(ls.MW) != ly.in*ly.out || len(ls.VW) != ly.in*ly.out ||
			len(ls.MB) != ly.out || len(ls.VB) != ly.out {
			return fmt.Errorf("nn: layer %d state slice lengths inconsistent with %dx%d", i, ls.Out, ls.In)
		}
	}
	for i, ls := range st.Layers {
		ly := m.layers[i]
		copy(ly.w, ls.W)
		copy(ly.b, ls.B)
		copy(ly.mw, ls.MW)
		copy(ly.vw, ls.VW)
		copy(ly.mb, ls.MB)
		copy(ly.vb, ls.VB)
	}
	m.adamT = st.AdamT
	return nil
}
