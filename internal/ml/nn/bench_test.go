package nn

import (
	"testing"

	"github.com/hunter-cdb/hunter/internal/sim"
)

// benchNet builds the critic-shaped network the DDPG agent trains: the
// 26-dim state–action input (6 PCA metrics + 20 sifted knobs) through the
// default 64×64 hidden layers to a scalar Q.
func benchNet(b *testing.B) (*MLP, []float64) {
	b.Helper()
	m, err := NewMLP([]int{26, 64, 64, 1}, []Activation{ReLU, ReLU, Linear}, sim.NewRNG(3))
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 26)
	rng := sim.NewRNG(4)
	for i := range x {
		x[i] = rng.Gaussian(0, 1)
	}
	return m, x
}

func BenchmarkForward(b *testing.B) {
	m, x := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkForwardBackward(b *testing.B) {
	m, x := benchNet(b)
	dOut := []float64{1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
		m.Backward(dOut)
	}
}

// batchOf tiles x into a DDPG-sized minibatch of 32 rows.
func batchOf(x []float64, n int) []float64 {
	out := make([]float64, 0, n*len(x))
	for i := 0; i < n; i++ {
		out = append(out, x...)
	}
	return out
}

// BenchmarkForwardBatch measures the batched forward pass over a
// 32-transition minibatch — the per-step unit of DDPG training.
func BenchmarkForwardBatch(b *testing.B) {
	m, x := benchNet(b)
	const n = 32
	xb := batchOf(x, n)
	var ws BatchWorkspace
	m.ForwardBatch(&ws, xb, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardBatch(&ws, xb, n)
	}
}

// BenchmarkForwardBackwardBatch measures a full batched gradient cycle
// over a 32-transition minibatch.
func BenchmarkForwardBackwardBatch(b *testing.B) {
	m, x := benchNet(b)
	const n = 32
	xb := batchOf(x, n)
	dOut := make([]float64, n)
	for i := range dOut {
		dOut[i] = 1
	}
	var ws BatchWorkspace
	m.ForwardBatch(&ws, xb, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardBatch(&ws, xb, n)
		m.BackwardBatch(&ws, dOut)
	}
}
