package ddpg

import (
	"bytes"
	"testing"
)

// TestAgentSnapshotRoundTrip checkpoints an agent mid-training (weights,
// replay buffer and RNG stream) and verifies the restored agent's future
// actions and training updates are bit-identical.
func TestAgentSnapshotRoundTrip(t *testing.T) {
	a, err := New(Config{StateDim: 5, ActionDim: 3, Hidden: []int{16, 16}, BatchSize: 8, Capacity: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	state := []float64{0.1, -0.2, 0.3, 0.4, -0.5}
	for i := 0; i < 40; i++ {
		act := a.ActNoisy(state, 0.2)
		a.Observe(Transition{State: state, Action: act, Reward: float64(i%5) - 2, Next: state, Done: i%9 == 0})
		a.TrainStep()
	}

	var buf bytes.Buffer
	if err := a.SnapshotTo(&buf); err != nil {
		t.Fatalf("SnapshotTo: %v", err)
	}
	b, err := New(Config{StateDim: 2, ActionDim: 2, Seed: 123}) // replaced wholesale
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("RestoreFrom: %v", err)
	}
	if b.Steps() != a.Steps() || b.Replay().Len() != a.Replay().Len() {
		t.Fatalf("steps/replay: (%d,%d) != (%d,%d)", b.Steps(), b.Replay().Len(), a.Steps(), a.Replay().Len())
	}

	// The continuation must match draw-for-draw and update-for-update.
	for i := 0; i < 25; i++ {
		actA, actB := a.ActNoisy(state, 0.15), b.ActNoisy(state, 0.15)
		for j := range actA {
			if actA[j] != actB[j] {
				t.Fatalf("step %d action[%d]: %v != %v", i, j, actA[j], actB[j])
			}
		}
		tr := Transition{State: state, Action: actA, Reward: 0.5, Next: state}
		a.Observe(tr)
		b.Observe(tr)
		la, lb := a.TrainStep(), b.TrainStep()
		if la != lb {
			t.Fatalf("step %d loss: %v != %v", i, la, lb)
		}
	}
	wa, wb := a.Snapshot(), b.Snapshot()
	for i := range wa.Actor {
		if wa.Actor[i] != wb.Actor[i] {
			t.Fatalf("actor weight %d diverged", i)
		}
	}
	for i := range wa.CriticT {
		if wa.CriticT[i] != wb.CriticT[i] {
			t.Fatalf("critic target weight %d diverged", i)
		}
	}
}

// TestAgentRestoreRejectsBad checks garbage and inconsistent snapshots are
// refused without touching the receiver.
func TestAgentRestoreRejectsBad(t *testing.T) {
	a, err := New(Config{StateDim: 3, ActionDim: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := a.Snapshot()
	if err := a.RestoreFrom(bytes.NewReader([]byte{0xde, 0xad})); err == nil {
		t.Fatal("garbage accepted")
	}
	after := a.Snapshot()
	for i := range before.Actor {
		if before.Actor[i] != after.Actor[i] {
			t.Fatal("failed restore mutated the agent")
		}
	}
}
