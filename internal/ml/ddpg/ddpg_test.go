package ddpg

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hunter-cdb/hunter/internal/sim"
)

func TestReplayCapacityAndFIFO(t *testing.T) {
	r := NewReplay(3)
	for i := 0; i < 5; i++ {
		r.Add(Transition{Reward: float64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("len %d, want 3", r.Len())
	}
	// Oldest (0, 1) must be evicted: rewards present are {2, 3, 4}.
	seen := map[float64]bool{}
	for _, tr := range r.buf {
		seen[tr.Reward] = true
	}
	for _, want := range []float64{2, 3, 4} {
		if !seen[want] {
			t.Fatalf("reward %v missing after eviction: %v", want, seen)
		}
	}
}

func TestReplaySample(t *testing.T) {
	r := NewReplay(10)
	if got := r.Sample(5, sim.NewRNG(1)); got != nil {
		t.Fatal("sampling empty buffer should return nil")
	}
	r.Add(Transition{Reward: 7})
	s := r.Sample(4, sim.NewRNG(1))
	if len(s) != 4 {
		t.Fatalf("sample size %d", len(s))
	}
	for _, tr := range s {
		if tr.Reward != 7 {
			t.Fatal("sample returned foreign transition")
		}
	}
}

// TestReplayCapacityProperty: the buffer never exceeds its capacity and
// always retains the most recent transition.
func TestReplayCapacityProperty(t *testing.T) {
	f := func(capRaw uint8, n uint16) bool {
		capacity := int(capRaw)%50 + 1
		r := NewReplay(capacity)
		total := int(n) % 500
		for i := 0; i < total; i++ {
			r.Add(Transition{Reward: float64(i)})
		}
		if r.Len() > capacity {
			return false
		}
		if total == 0 {
			return r.Len() == 0
		}
		for _, tr := range r.buf {
			if tr.Reward == float64(total-1) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{StateDim: 0, ActionDim: 2}); err == nil {
		t.Fatal("zero state dim should fail")
	}
	if _, err := New(Config{StateDim: 2, ActionDim: 0}); err == nil {
		t.Fatal("zero action dim should fail")
	}
}

func TestActBounds(t *testing.T) {
	a, err := New(Config{StateDim: 4, ActionDim: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	state := []float64{0.5, -1, 2, 0}
	for i := 0; i < 50; i++ {
		for _, v := range a.ActNoisy(state, 0.8) {
			if v < 0 || v > 1 {
				t.Fatalf("noisy action %v outside [0,1]", v)
			}
		}
	}
	for _, v := range a.Act(state) {
		if v < 0 || v > 1 {
			t.Fatalf("action %v outside [0,1]", v)
		}
	}
}

// TestLearnsBandit: with a fixed state and reward −(a−0.7)², the policy
// must move its action toward 0.7 — the minimal end-to-end check that the
// critic learns the value surface and the actor ascends it.
func TestLearnsBandit(t *testing.T) {
	a, err := New(Config{StateDim: 2, ActionDim: 1, Seed: 2, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	state := []float64{0.3, 0.6}
	rng := sim.NewRNG(3)
	for step := 0; step < 400; step++ {
		act := a.ActNoisy(state, 0.4)
		r := -(act[0] - 0.7) * (act[0] - 0.7)
		a.Observe(Transition{State: state, Action: act, Reward: r, Next: state, Done: true})
		a.TrainStep()
		_ = rng
	}
	final := a.Act(state)[0]
	if math.Abs(final-0.7) > 0.15 {
		t.Fatalf("policy converged to %.3f, want ≈0.7", final)
	}
}

func TestObservePanicsOnBadDims(t *testing.T) {
	a, _ := New(Config{StateDim: 2, ActionDim: 1, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("bad transition dims should panic")
		}
	}()
	a.Observe(Transition{State: []float64{1}, Action: []float64{1}})
}

func TestTrainStepNeedsBatch(t *testing.T) {
	a, _ := New(Config{StateDim: 2, ActionDim: 1, Seed: 1, BatchSize: 8})
	if loss := a.TrainStep(); loss != 0 {
		t.Fatal("training with an underfull buffer should be a no-op")
	}
}

func TestSnapshotRestore(t *testing.T) {
	a, _ := New(Config{StateDim: 3, ActionDim: 2, Seed: 5})
	state := []float64{0.1, 0.2, 0.3}
	// Train a little so weights move off initialization.
	for i := 0; i < 40; i++ {
		act := a.ActNoisy(state, 0.3)
		a.Observe(Transition{State: state, Action: act, Reward: act[0], Next: state, Done: true})
		a.TrainStep()
	}
	snap := a.Snapshot()
	want := a.Act(state)

	b, _ := New(Config{StateDim: 3, ActionDim: 2, Seed: 99})
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got := b.Act(state)
	for i := range want {
		if want[i] != got[i] {
			t.Fatal("restored agent should act identically")
		}
	}
	c, _ := New(Config{StateDim: 4, ActionDim: 2, Seed: 1})
	if err := c.Restore(snap); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestQEvaluation(t *testing.T) {
	a, _ := New(Config{StateDim: 2, ActionDim: 1, Seed: 6})
	q := a.Q([]float64{0.1, 0.2}, []float64{0.5})
	if math.IsNaN(q) || math.IsInf(q, 0) {
		t.Fatalf("Q = %v", q)
	}
}

func TestHERRelabel(t *testing.T) {
	if HERRelabel(nil) != nil {
		t.Fatal("empty episode should relabel to nil")
	}
	ep := []Transition{
		{Reward: 0.2, State: []float64{1}, Action: []float64{1}},
		{Reward: 0.8, State: []float64{1}, Action: []float64{1}},
		{Reward: 0.5, State: []float64{1}, Action: []float64{1}},
	}
	out := HERRelabel(ep)
	if len(out) != 3 {
		t.Fatalf("relabel length %d", len(out))
	}
	for i, tr := range out {
		if tr.Reward > 0 {
			t.Fatalf("relabel %d: reward %v must be ≤ 0 (distance to hindsight goal)", i, tr.Reward)
		}
	}
	if out[1].Reward != 0 {
		t.Fatal("the best transition achieves the hindsight goal exactly")
	}
	// Originals untouched.
	if ep[0].Reward != 0.2 {
		t.Fatal("relabel must not mutate the input")
	}
}
