package ddpg

import (
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// benchAgent builds an agent at the hybrid session's scale — the
// Recommender trains a 6-dim PCA state against the 20 sifted knobs with
// the default 64×64 hidden layers and batch 32 — and fills its replay
// buffer with a few hundred pool transitions.
func benchAgent(b *testing.B) *Agent {
	b.Helper()
	a, err := New(Config{StateDim: 6, ActionDim: 20, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	env := sim.NewRNG(42)
	for i := 0; i < 400; i++ {
		t := Transition{
			State:  make([]float64, 6),
			Action: make([]float64, 20),
			Next:   make([]float64, 6),
			Reward: env.Gaussian(0, 1),
		}
		for j := range t.State {
			t.State[j] = env.Gaussian(0, 1)
			t.Next[j] = env.Gaussian(0, 1)
		}
		for j := range t.Action {
			t.Action[j] = env.Float64()
		}
		a.Observe(t)
	}
	return a
}

// benchTrainStep measures one minibatch update — the per-step fixed cost
// the hybrid session pays ~900 times per 24h budget — at the given worker
// count. The Serial variant is the before/after baseline recorded in
// BENCH_ml.json.
func benchTrainStep(b *testing.B, workers int) {
	defer parallel.SetWorkers(parallel.SetWorkers(workers))
	a := benchAgent(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.TrainStep()
	}
}

func BenchmarkTrainStep(b *testing.B)       { benchTrainStep(b, 0) }
func BenchmarkTrainStepSerial(b *testing.B) { benchTrainStep(b, 1) }
