// Package ddpg implements Deep Deterministic Policy Gradient (Lillicrap et
// al.), the DRL algorithm of the paper's Recommender (§3.3) and of the
// CDBTune/QTune baselines: an actor–critic pair with target networks, an
// experience-replay buffer, and soft target updates. States are compressed
// metric vectors, actions are normalized knob settings in [0,1]^k, and the
// reward is the Eq. 1 fitness.
package ddpg

import (
	"fmt"
	"math"

	"github.com/hunter-cdb/hunter/internal/ml/nn"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// Transition is one experience tuple.
type Transition struct {
	State  []float64
	Action []float64
	Reward float64
	Next   []float64
	Done   bool
}

// Replay is a bounded FIFO experience buffer with uniform sampling.
type Replay struct {
	buf  []Transition
	cap  int
	pos  int
	full bool
}

// NewReplay creates a buffer holding up to capacity transitions.
func NewReplay(capacity int) *Replay {
	if capacity < 1 {
		capacity = 1
	}
	return &Replay{buf: make([]Transition, 0, capacity), cap: capacity}
}

// Add appends a transition, evicting the oldest when full.
func (r *Replay) Add(t Transition) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, t)
		return
	}
	r.full = true
	r.buf[r.pos] = t
	r.pos = (r.pos + 1) % r.cap
}

// Len returns the number of stored transitions.
func (r *Replay) Len() int { return len(r.buf) }

// Sample draws n transitions uniformly with replacement.
func (r *Replay) Sample(n int, rng *sim.RNG) []Transition {
	if len(r.buf) == 0 {
		return nil
	}
	out := make([]Transition, n)
	for i := range out {
		out[i] = r.buf[rng.Intn(len(r.buf))]
	}
	return out
}

// Config sets the agent's hyper-parameters.
type Config struct {
	StateDim  int
	ActionDim int
	Hidden    []int // default {128, 128}
	ActorLR   float64
	CriticLR  float64
	Gamma     float64
	Tau       float64
	BatchSize int
	Capacity  int
	Seed      int64
}

func (c Config) withDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 64}
	}
	if c.ActorLR == 0 {
		c.ActorLR = 1e-3
	}
	if c.CriticLR == 0 {
		c.CriticLR = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 0.9
	}
	if c.Tau == 0 {
		c.Tau = 0.01
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.Capacity == 0 {
		c.Capacity = 100000
	}
	return c
}

// Agent is a DDPG learner.
type Agent struct {
	cfg     Config
	actor   *nn.MLP
	critic  *nn.MLP
	actorT  *nn.MLP
	criticT *nn.MLP
	replay  *Replay
	rng     *sim.RNG
	steps   int
	scratch *trainScratch // minibatch workspaces, reused every step
}

// trainScratch is the preallocated minibatch workspace one training step
// runs in: the gathered state/action/next-state matrices, the TD-target
// and gradient vectors, and one nn.BatchWorkspace per network. Everything
// is sized once for the configured batch and reused, so a warm TrainStep
// allocates nothing.
type trainScratch struct {
	idx    []int     // sampled replay slots
	valid  []bool    // row has a usable next state
	states []float64 // n×s
	nexts  []float64 // n×s (invalid rows zero-filled)
	sa     []float64 // n×(s+a) state‖action input
	ys     []float64 // n TD targets
	dq     []float64 // n×1 critic output gradient / ones
	negs   []float64 // n×a negated action gradients

	actor, critic, actorT, criticT nn.BatchWorkspace
}

// ensureScratch sizes the minibatch workspaces for the configured batch.
func (a *Agent) ensureScratch() *trainScratch {
	if a.scratch != nil {
		return a.scratch
	}
	n, s, ad := a.cfg.BatchSize, a.cfg.StateDim, a.cfg.ActionDim
	a.scratch = &trainScratch{
		idx:    make([]int, n),
		valid:  make([]bool, n),
		states: make([]float64, n*s),
		nexts:  make([]float64, n*s),
		sa:     make([]float64, n*(s+ad)),
		ys:     make([]float64, n),
		dq:     make([]float64, n),
		negs:   make([]float64, n*ad),
	}
	return a.scratch
}

// New creates an agent with randomly initialized networks.
func New(cfg Config) (*Agent, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDim <= 0 || cfg.ActionDim <= 0 {
		return nil, fmt.Errorf("ddpg: state dim %d / action dim %d must be positive", cfg.StateDim, cfg.ActionDim)
	}
	rng := sim.NewRNG(cfg.Seed)
	actorSizes := append([]int{cfg.StateDim}, cfg.Hidden...)
	actorSizes = append(actorSizes, cfg.ActionDim)
	actorActs := make([]nn.Activation, len(actorSizes)-1)
	for i := range actorActs {
		actorActs[i] = nn.ReLU
	}
	actorActs[len(actorActs)-1] = nn.Sigmoid // actions live in [0,1]

	criticSizes := append([]int{cfg.StateDim + cfg.ActionDim}, cfg.Hidden...)
	criticSizes = append(criticSizes, 1)
	criticActs := make([]nn.Activation, len(criticSizes)-1)
	for i := range criticActs {
		criticActs[i] = nn.ReLU
	}
	criticActs[len(criticActs)-1] = nn.Linear

	actor, err := nn.NewMLP(actorSizes, actorActs, rng.Fork())
	if err != nil {
		return nil, err
	}
	critic, err := nn.NewMLP(criticSizes, criticActs, rng.Fork())
	if err != nil {
		return nil, err
	}
	return &Agent{
		cfg:     cfg,
		actor:   actor,
		critic:  critic,
		actorT:  actor.Clone(),
		criticT: critic.Clone(),
		replay:  NewReplay(cfg.Capacity),
		rng:     rng,
	}, nil
}

// Replay exposes the experience buffer (the Shared Pool feeds it).
func (a *Agent) Replay() *Replay { return a.replay }

// Act returns the deterministic policy action μ(s).
func (a *Agent) Act(state []float64) []float64 {
	return a.actor.Forward(state)
}

// ActNoisy returns μ(s) plus Gaussian exploration noise, clipped to [0,1].
func (a *Agent) ActNoisy(state []float64, sigma float64) []float64 {
	out := a.Act(state)
	for i := range out {
		out[i] = sim.Clamp(out[i]+a.rng.Gaussian(0, sigma), 0, 1)
	}
	return out
}

// Observe stores a transition in the replay buffer.
func (a *Agent) Observe(t Transition) {
	if len(t.State) != a.cfg.StateDim || len(t.Action) != a.cfg.ActionDim {
		panic(fmt.Sprintf("ddpg: transition dims (%d,%d) != (%d,%d)",
			len(t.State), len(t.Action), a.cfg.StateDim, a.cfg.ActionDim))
	}
	a.replay.Add(t)
}

// TrainStep performs one minibatch update of critic and actor followed by
// soft target updates, returning the critic's mean-squared TD error.
//
// The whole update runs as minibatch matrix kernels over preallocated
// workspaces: TD targets and action gradients come from batched forward
// passes of the frozen networks (rows independent — identical per row to
// a sample-at-a-time loop), and the gradient accumulation into the live
// networks lands in ascending batch-row order per element — the exact
// order of the per-transition loop it replaces. The resulting weights are
// therefore bit-identical to the former per-sample implementation, for
// any worker count, and a warm step allocates nothing.
func (a *Agent) TrainStep() float64 {
	if a.replay.Len() < a.cfg.BatchSize {
		return 0
	}
	n, s, ad := a.cfg.BatchSize, a.cfg.StateDim, a.cfg.ActionDim
	ws := a.ensureScratch()
	// Uniform sampling with replacement — the same RNG draws, in the same
	// order, Replay.Sample made; only the transition-slice copy is gone.
	for i := range ws.idx {
		ws.idx[i] = a.rng.Intn(a.replay.Len())
	}
	a.steps++

	// --- TD targets (read-only on actorT/criticT) ---
	// Rows without a usable next state are zero-filled; their network
	// outputs are computed but unused, and rows are independent, so the
	// valid rows match the per-sample pass exactly.
	for i, j := range ws.idx {
		t := &a.replay.buf[j]
		ws.valid[i] = !t.Done && len(t.Next) == s
		row := ws.nexts[i*s : (i+1)*s]
		if ws.valid[i] {
			copy(row, t.Next)
		} else {
			for k := range row {
				row[k] = 0
			}
		}
	}
	na := a.actorT.ForwardBatch(&ws.actorT, ws.nexts, n)
	for i := 0; i < n; i++ {
		copy(ws.sa[i*(s+ad):], ws.nexts[i*s:(i+1)*s])
		copy(ws.sa[i*(s+ad)+s:(i+1)*(s+ad)], na[i*ad:(i+1)*ad])
	}
	qn := a.criticT.ForwardBatch(&ws.criticT, ws.sa, n)
	for i, j := range ws.idx {
		y := a.replay.buf[j].Reward
		if ws.valid[i] {
			y += a.cfg.Gamma * qn[i]
		}
		ws.ys[i] = y
	}

	// --- Critic update: batched forward, accumulation in batch order ---
	for i, j := range ws.idx {
		t := &a.replay.buf[j]
		copy(ws.sa[i*(s+ad):], t.State)
		copy(ws.sa[i*(s+ad)+s:(i+1)*(s+ad)], t.Action)
	}
	q := a.critic.ForwardBatch(&ws.critic, ws.sa, n)
	a.critic.ZeroGrad()
	var loss float64
	for i := 0; i < n; i++ {
		d := q[i] - ws.ys[i]
		loss += d * d
		ws.dq[i] = 2 * d
	}
	a.critic.BackwardBatch(&ws.critic, ws.dq)
	a.critic.Step(a.cfg.CriticLR, n, 5)

	// --- Actor update: ascend Q(s, μ(s)) ---
	// Action gradients flow through the (now frozen) critic's batched
	// input-gradient pass; the actor's backward then accumulates over the
	// same batched activations in batch-row order.
	for i, j := range ws.idx {
		copy(ws.states[i*s:(i+1)*s], a.replay.buf[j].State)
	}
	acts := a.actor.ForwardBatch(&ws.actor, ws.states, n)
	for i := 0; i < n; i++ {
		copy(ws.sa[i*(s+ad):], ws.states[i*s:(i+1)*s])
		copy(ws.sa[i*(s+ad)+s:(i+1)*(s+ad)], acts[i*ad:(i+1)*ad])
	}
	a.critic.ForwardBatch(&ws.critic, ws.sa, n)
	for i := range ws.dq {
		ws.dq[i] = 1
	}
	dIn := a.critic.InputGradBatch(&ws.critic, ws.dq)
	// Negate: MLP.Step descends, we want ascent on Q.
	for i := 0; i < n; i++ {
		dAct := dIn[i*(s+ad)+s : (i+1)*(s+ad)]
		for j, g := range dAct {
			ws.negs[i*ad+j] = -g
		}
	}
	a.actor.ZeroGrad()
	a.actor.BackwardBatch(&ws.actor, ws.negs)
	a.actor.Step(a.cfg.ActorLR, n, 5)

	// --- Soft target updates ---
	a.actor.SoftUpdate(a.actorT, a.cfg.Tau)
	a.critic.SoftUpdate(a.criticT, a.cfg.Tau)
	return loss / float64(n)
}

// Q evaluates the critic for a state–action pair.
func (a *Agent) Q(state, action []float64) float64 {
	sa := make([]float64, 0, a.cfg.StateDim+a.cfg.ActionDim)
	sa = append(sa, state...)
	sa = append(sa, action...)
	return a.critic.Forward(sa)[0]
}

// Steps returns the number of training steps performed.
func (a *Agent) Steps() int { return a.steps }

// Snapshot captures the learner's parameters for the model-reuse schemes.
type Snapshot struct {
	StateDim, ActionDim int
	Actor, Critic       []float64
	ActorT, CriticT     []float64
}

// Snapshot exports the agent's parameters.
func (a *Agent) Snapshot() Snapshot {
	return Snapshot{
		StateDim:  a.cfg.StateDim,
		ActionDim: a.cfg.ActionDim,
		Actor:     a.actor.Weights(),
		Critic:    a.critic.Weights(),
		ActorT:    a.actorT.Weights(),
		CriticT:   a.criticT.Weights(),
	}
}

// Restore loads a snapshot taken from an agent of identical architecture.
func (a *Agent) Restore(s Snapshot) error {
	if s.StateDim != a.cfg.StateDim || s.ActionDim != a.cfg.ActionDim {
		return fmt.Errorf("ddpg: snapshot dims (%d,%d) != agent (%d,%d)",
			s.StateDim, s.ActionDim, a.cfg.StateDim, a.cfg.ActionDim)
	}
	if err := a.actor.SetWeights(s.Actor); err != nil {
		return err
	}
	if err := a.critic.SetWeights(s.Critic); err != nil {
		return err
	}
	if err := a.actorT.SetWeights(s.ActorT); err != nil {
		return err
	}
	return a.criticT.SetWeights(s.CriticT)
}

// HERRelabel implements the hindsight-experience-replay warm-up baseline
// compared in Table 6: each transition is duplicated with its reward
// relabeled relative to the best reward achieved in the episode (the
// achieved performance becomes the goal), densifying the learning signal.
func HERRelabel(episode []Transition) []Transition {
	if len(episode) == 0 {
		return nil
	}
	best := math.Inf(-1)
	for _, t := range episode {
		if t.Reward > best {
			best = t.Reward
		}
	}
	out := make([]Transition, 0, len(episode))
	for _, t := range episode {
		r := t.Reward - best // ≤ 0: distance to the hindsight goal
		out = append(out, Transition{State: t.State, Action: t.Action, Reward: r, Next: t.Next, Done: t.Done})
	}
	return out
}
