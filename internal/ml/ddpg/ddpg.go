// Package ddpg implements Deep Deterministic Policy Gradient (Lillicrap et
// al.), the DRL algorithm of the paper's Recommender (§3.3) and of the
// CDBTune/QTune baselines: an actor–critic pair with target networks, an
// experience-replay buffer, and soft target updates. States are compressed
// metric vectors, actions are normalized knob settings in [0,1]^k, and the
// reward is the Eq. 1 fitness.
package ddpg

import (
	"fmt"
	"math"

	"github.com/hunter-cdb/hunter/internal/ml/nn"
	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// minibatchGrain is the number of transitions per fan-out chunk in
// TrainStep's read-only phases (TD-target and action-gradient
// computation). Chunk boundaries depend only on the batch size, so the
// per-sample values — and the weight updates built from them — are
// bit-identical for any worker count.
const minibatchGrain = 8

// Transition is one experience tuple.
type Transition struct {
	State  []float64
	Action []float64
	Reward float64
	Next   []float64
	Done   bool
}

// Replay is a bounded FIFO experience buffer with uniform sampling.
type Replay struct {
	buf  []Transition
	cap  int
	pos  int
	full bool
}

// NewReplay creates a buffer holding up to capacity transitions.
func NewReplay(capacity int) *Replay {
	if capacity < 1 {
		capacity = 1
	}
	return &Replay{buf: make([]Transition, 0, capacity), cap: capacity}
}

// Add appends a transition, evicting the oldest when full.
func (r *Replay) Add(t Transition) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, t)
		return
	}
	r.full = true
	r.buf[r.pos] = t
	r.pos = (r.pos + 1) % r.cap
}

// Len returns the number of stored transitions.
func (r *Replay) Len() int { return len(r.buf) }

// Sample draws n transitions uniformly with replacement.
func (r *Replay) Sample(n int, rng *sim.RNG) []Transition {
	if len(r.buf) == 0 {
		return nil
	}
	out := make([]Transition, n)
	for i := range out {
		out[i] = r.buf[rng.Intn(len(r.buf))]
	}
	return out
}

// Config sets the agent's hyper-parameters.
type Config struct {
	StateDim  int
	ActionDim int
	Hidden    []int // default {128, 128}
	ActorLR   float64
	CriticLR  float64
	Gamma     float64
	Tau       float64
	BatchSize int
	Capacity  int
	Seed      int64
}

func (c Config) withDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 64}
	}
	if c.ActorLR == 0 {
		c.ActorLR = 1e-3
	}
	if c.CriticLR == 0 {
		c.CriticLR = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 0.9
	}
	if c.Tau == 0 {
		c.Tau = 0.01
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.Capacity == 0 {
		c.Capacity = 100000
	}
	return c
}

// Agent is a DDPG learner.
type Agent struct {
	cfg     Config
	actor   *nn.MLP
	critic  *nn.MLP
	actorT  *nn.MLP
	criticT *nn.MLP
	replay  *Replay
	rng     *sim.RNG
	steps   int
	scratch []*scratchNets // per-chunk clones for the parallel phases
}

// scratchNets is one fan-out chunk's private set of network clones.
// nn.MLP.Forward mutates per-layer activation caches, so concurrent
// evaluation needs one clone per chunk; weights are refreshed from the
// live networks each step (CopyWeightsFrom, no allocation), which makes
// the scratch outputs bit-identical to evaluating the live networks.
type scratchNets struct {
	actorT, criticT *nn.MLP
	actor, critic   *nn.MLP
	sa              []float64
}

// ensureScratch grows the scratch pool to n chunk slots.
func (a *Agent) ensureScratch(n int) {
	for len(a.scratch) < n {
		a.scratch = append(a.scratch, &scratchNets{
			actorT:  a.actorT.Clone(),
			criticT: a.criticT.Clone(),
			actor:   a.actor.Clone(),
			critic:  a.critic.Clone(),
			sa:      make([]float64, a.cfg.StateDim+a.cfg.ActionDim),
		})
	}
}

// fanOut reports whether a batch of n transitions is worth spreading
// across workers.
func (a *Agent) fanOut(n int) bool {
	return parallel.Workers() > 1 && parallel.Chunks(n, minibatchGrain) > 1
}

// New creates an agent with randomly initialized networks.
func New(cfg Config) (*Agent, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDim <= 0 || cfg.ActionDim <= 0 {
		return nil, fmt.Errorf("ddpg: state dim %d / action dim %d must be positive", cfg.StateDim, cfg.ActionDim)
	}
	rng := sim.NewRNG(cfg.Seed)
	actorSizes := append([]int{cfg.StateDim}, cfg.Hidden...)
	actorSizes = append(actorSizes, cfg.ActionDim)
	actorActs := make([]nn.Activation, len(actorSizes)-1)
	for i := range actorActs {
		actorActs[i] = nn.ReLU
	}
	actorActs[len(actorActs)-1] = nn.Sigmoid // actions live in [0,1]

	criticSizes := append([]int{cfg.StateDim + cfg.ActionDim}, cfg.Hidden...)
	criticSizes = append(criticSizes, 1)
	criticActs := make([]nn.Activation, len(criticSizes)-1)
	for i := range criticActs {
		criticActs[i] = nn.ReLU
	}
	criticActs[len(criticActs)-1] = nn.Linear

	actor, err := nn.NewMLP(actorSizes, actorActs, rng.Fork())
	if err != nil {
		return nil, err
	}
	critic, err := nn.NewMLP(criticSizes, criticActs, rng.Fork())
	if err != nil {
		return nil, err
	}
	return &Agent{
		cfg:     cfg,
		actor:   actor,
		critic:  critic,
		actorT:  actor.Clone(),
		criticT: critic.Clone(),
		replay:  NewReplay(cfg.Capacity),
		rng:     rng,
	}, nil
}

// Replay exposes the experience buffer (the Shared Pool feeds it).
func (a *Agent) Replay() *Replay { return a.replay }

// Act returns the deterministic policy action μ(s).
func (a *Agent) Act(state []float64) []float64 {
	return a.actor.Forward(state)
}

// ActNoisy returns μ(s) plus Gaussian exploration noise, clipped to [0,1].
func (a *Agent) ActNoisy(state []float64, sigma float64) []float64 {
	out := a.Act(state)
	for i := range out {
		out[i] = sim.Clamp(out[i]+a.rng.Gaussian(0, sigma), 0, 1)
	}
	return out
}

// Observe stores a transition in the replay buffer.
func (a *Agent) Observe(t Transition) {
	if len(t.State) != a.cfg.StateDim || len(t.Action) != a.cfg.ActionDim {
		panic(fmt.Sprintf("ddpg: transition dims (%d,%d) != (%d,%d)",
			len(t.State), len(t.Action), a.cfg.StateDim, a.cfg.ActionDim))
	}
	a.replay.Add(t)
}

// TrainStep performs one minibatch update of critic and actor followed by
// soft target updates, returning the critic's mean-squared TD error.
//
// The two read-only halves of the update — TD targets from the frozen
// target networks, and action gradients ∂Q/∂a from the frozen critic —
// fan out over minibatch chunks using per-chunk scratch clones. The
// gradient *accumulation* into the live networks stays serial in batch
// order, so the resulting weights are bit-identical for any worker count.
func (a *Agent) TrainStep() float64 {
	if a.replay.Len() < a.cfg.BatchSize {
		return 0
	}
	batch := a.replay.Sample(a.cfg.BatchSize, a.rng)
	a.steps++
	s := a.cfg.StateDim
	fan := a.fanOut(len(batch))
	if fan {
		a.ensureScratch(parallel.Chunks(len(batch), minibatchGrain))
	}
	sa := make([]float64, s+a.cfg.ActionDim)

	// --- TD targets (read-only on actorT/criticT) ---
	ys := make([]float64, len(batch))
	targets := func(actorT, criticT *nn.MLP, sa []float64, lo, hi int) {
		for i := lo; i < hi; i++ {
			t := batch[i]
			y := t.Reward
			if !t.Done && len(t.Next) == s {
				na := actorT.Forward(t.Next)
				copy(sa, t.Next)
				copy(sa[s:], na)
				y += a.cfg.Gamma * criticT.Forward(sa)[0]
			}
			ys[i] = y
		}
	}
	if fan {
		for _, sc := range a.scratch {
			sc.actorT.CopyWeightsFrom(a.actorT)
			sc.criticT.CopyWeightsFrom(a.criticT)
		}
		parallel.For(len(batch), minibatchGrain, func(lo, hi int) {
			sc := a.scratch[lo/minibatchGrain]
			targets(sc.actorT, sc.criticT, sc.sa, lo, hi)
		})
	} else {
		targets(a.actorT, a.criticT, sa, 0, len(batch))
	}

	// --- Critic update: serial accumulation in batch order ---
	a.critic.ZeroGrad()
	var loss float64
	for i, t := range batch {
		copy(sa, t.State)
		copy(sa[s:], t.Action)
		q := a.critic.Forward(sa)[0]
		d := q - ys[i]
		loss += d * d
		a.critic.Backward([]float64{2 * d})
	}
	a.critic.Step(a.cfg.CriticLR, len(batch), 5)

	// --- Actor update: ascend Q(s, μ(s)) ---
	// Action gradients through the (now frozen) critic are read-only per
	// sample and fan out; the actor's own forward/backward then replays
	// serially in batch order.
	negs := make([][]float64, len(batch))
	actionGrads := func(actor, critic *nn.MLP, sa []float64, lo, hi int) {
		for i := lo; i < hi; i++ {
			t := batch[i]
			act := actor.Forward(t.State)
			copy(sa, t.State)
			copy(sa[s:], act)
			critic.Forward(sa)
			critic.ZeroGrad() // only need the input gradient
			dIn := critic.Backward([]float64{1})
			dAct := dIn[s:]
			// Negate: MLP.Step descends, we want ascent on Q.
			neg := make([]float64, len(dAct))
			for j := range neg {
				neg[j] = -dAct[j]
			}
			negs[i] = neg
		}
	}
	if fan {
		for _, sc := range a.scratch {
			sc.actor.CopyWeightsFrom(a.actor)
			sc.critic.CopyWeightsFrom(a.critic)
		}
		parallel.For(len(batch), minibatchGrain, func(lo, hi int) {
			sc := a.scratch[lo/minibatchGrain]
			actionGrads(sc.actor, sc.critic, sc.sa, lo, hi)
		})
	} else {
		actionGrads(a.actor, a.critic, sa, 0, len(batch))
	}
	a.actor.ZeroGrad()
	for i, t := range batch {
		a.actor.Forward(t.State) // rebuild the caches the backward pass needs
		a.actor.Backward(negs[i])
	}
	a.critic.ZeroGrad()
	a.actor.Step(a.cfg.ActorLR, len(batch), 5)

	// --- Soft target updates ---
	a.actor.SoftUpdate(a.actorT, a.cfg.Tau)
	a.critic.SoftUpdate(a.criticT, a.cfg.Tau)
	return loss / float64(len(batch))
}

// Q evaluates the critic for a state–action pair.
func (a *Agent) Q(state, action []float64) float64 {
	sa := make([]float64, 0, a.cfg.StateDim+a.cfg.ActionDim)
	sa = append(sa, state...)
	sa = append(sa, action...)
	return a.critic.Forward(sa)[0]
}

// Steps returns the number of training steps performed.
func (a *Agent) Steps() int { return a.steps }

// Snapshot captures the learner's parameters for the model-reuse schemes.
type Snapshot struct {
	StateDim, ActionDim int
	Actor, Critic       []float64
	ActorT, CriticT     []float64
}

// Snapshot exports the agent's parameters.
func (a *Agent) Snapshot() Snapshot {
	return Snapshot{
		StateDim:  a.cfg.StateDim,
		ActionDim: a.cfg.ActionDim,
		Actor:     a.actor.Weights(),
		Critic:    a.critic.Weights(),
		ActorT:    a.actorT.Weights(),
		CriticT:   a.criticT.Weights(),
	}
}

// Restore loads a snapshot taken from an agent of identical architecture.
func (a *Agent) Restore(s Snapshot) error {
	if s.StateDim != a.cfg.StateDim || s.ActionDim != a.cfg.ActionDim {
		return fmt.Errorf("ddpg: snapshot dims (%d,%d) != agent (%d,%d)",
			s.StateDim, s.ActionDim, a.cfg.StateDim, a.cfg.ActionDim)
	}
	if err := a.actor.SetWeights(s.Actor); err != nil {
		return err
	}
	if err := a.critic.SetWeights(s.Critic); err != nil {
		return err
	}
	if err := a.actorT.SetWeights(s.ActorT); err != nil {
		return err
	}
	return a.criticT.SetWeights(s.CriticT)
}

// HERRelabel implements the hindsight-experience-replay warm-up baseline
// compared in Table 6: each transition is duplicated with its reward
// relabeled relative to the best reward achieved in the episode (the
// achieved performance becomes the goal), densifying the learning signal.
func HERRelabel(episode []Transition) []Transition {
	if len(episode) == 0 {
		return nil
	}
	best := math.Inf(-1)
	for _, t := range episode {
		if t.Reward > best {
			best = t.Reward
		}
	}
	out := make([]Transition, 0, len(episode))
	for _, t := range episode {
		r := t.Reward - best // ≤ 0: distance to the hindsight goal
		out = append(out, Transition{State: t.State, Action: t.Action, Reward: r, Next: t.Next, Done: t.Done})
	}
	return out
}
