package ddpg

import (
	"reflect"
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// trainAgent runs a fixed training schedule and returns the final
// parameter snapshot.
func trainAgent(t *testing.T, workers int) Snapshot {
	t.Helper()
	defer parallel.SetWorkers(parallel.SetWorkers(workers))
	a, err := New(Config{StateDim: 6, ActionDim: 4, Hidden: []int{32, 32}, BatchSize: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewRNG(123)
	state := make([]float64, 6)
	for i := range state {
		state[i] = env.Float64()
	}
	for step := 0; step < 80; step++ {
		act := a.ActNoisy(state, 0.2)
		next := make([]float64, 6)
		var reward float64
		for i := range next {
			next[i] = sim.Clamp(state[i]+0.1*(act[i%4]-0.5), 0, 1)
			reward -= (next[i] - 0.7) * (next[i] - 0.7)
		}
		a.Observe(Transition{State: state, Action: act, Reward: reward, Next: next})
		a.TrainStep()
		state = next
	}
	return a.Snapshot()
}

// TestTrainStepEquivalentAcrossWorkers proves the fan-out phases of the
// minibatch update (TD targets, action gradients) leave the learned
// weights bit-identical for 1 worker and for many workers.
func TestTrainStepEquivalentAcrossWorkers(t *testing.T) {
	serial := trainAgent(t, 1)
	for _, w := range []int{2, 8} {
		par := trainAgent(t, w)
		if !reflect.DeepEqual(par, serial) {
			t.Fatalf("workers %d: trained weights diverged from the serial run", w)
		}
	}
}
