package ddpg

import (
	"reflect"
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// This file pins the batched TrainStep to the pre-batching implementation:
// referenceTrainStep below is a port of the original per-transition update
// loop — one actor/critic forward and backward per sample, in batch order —
// and the test requires the minibatch-kernel TrainStep to land on exactly
// the same weights, step after step, for any worker count.

func referenceTrainStep(a *Agent) float64 {
	if a.replay.Len() < a.cfg.BatchSize {
		return 0
	}
	batch := a.replay.Sample(a.cfg.BatchSize, a.rng)
	a.steps++
	s := a.cfg.StateDim
	sa := make([]float64, s+a.cfg.ActionDim)

	ys := make([]float64, len(batch))
	for i, t := range batch {
		y := t.Reward
		if !t.Done && len(t.Next) == s {
			na := a.actorT.Forward(t.Next)
			copy(sa, t.Next)
			copy(sa[s:], na)
			y += a.cfg.Gamma * a.criticT.Forward(sa)[0]
		}
		ys[i] = y
	}

	a.critic.ZeroGrad()
	var loss float64
	for i, t := range batch {
		copy(sa, t.State)
		copy(sa[s:], t.Action)
		q := a.critic.Forward(sa)[0]
		d := q - ys[i]
		loss += d * d
		a.critic.Backward([]float64{2 * d})
	}
	a.critic.Step(a.cfg.CriticLR, len(batch), 5)

	negs := make([][]float64, len(batch))
	for i, t := range batch {
		act := a.actor.Forward(t.State)
		copy(sa, t.State)
		copy(sa[s:], act)
		a.critic.Forward(sa)
		a.critic.ZeroGrad()
		dIn := a.critic.Backward([]float64{1})
		dAct := dIn[s:]
		neg := make([]float64, len(dAct))
		for j := range neg {
			neg[j] = -dAct[j]
		}
		negs[i] = neg
	}
	a.actor.ZeroGrad()
	for i, t := range batch {
		a.actor.Forward(t.State)
		a.actor.Backward(negs[i])
	}
	a.critic.ZeroGrad()
	a.actor.Step(a.cfg.ActorLR, len(batch), 5)

	a.actor.SoftUpdate(a.actorT, a.cfg.Tau)
	a.critic.SoftUpdate(a.criticT, a.cfg.Tau)
	return loss / float64(len(batch))
}

// newTestAgent builds an agent and preloads its replay buffer with a
// deterministic mix of transitions, including terminal ones (Done) so the
// zero-filled invalid rows of the batched TD-target pass are exercised.
func newTestAgent(t *testing.T, seed int64) *Agent {
	t.Helper()
	a, err := New(Config{StateDim: 6, ActionDim: 4, Hidden: []int{32, 32}, BatchSize: 32, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewRNG(seed * 31)
	for i := 0; i < 90; i++ {
		tr := Transition{
			State:  make([]float64, 6),
			Action: make([]float64, 4),
			Reward: env.Gaussian(0, 1),
			Next:   make([]float64, 6),
			Done:   i%7 == 3,
		}
		for j := range tr.State {
			tr.State[j] = env.Float64()
		}
		for j := range tr.Action {
			tr.Action[j] = env.Float64()
		}
		for j := range tr.Next {
			tr.Next[j] = env.Float64()
		}
		a.Observe(tr)
	}
	return a
}

// TestTrainStepMatchesSeedImplementation runs the batched TrainStep and
// the per-transition reference in lockstep on identically initialized
// agents and requires identical losses and bit-identical parameter
// snapshots after every step, at 1 worker and at 8.
func TestTrainStepMatchesSeedImplementation(t *testing.T) {
	for _, w := range []int{1, 8} {
		prev := parallel.SetWorkers(w)
		got := newTestAgent(t, 17)
		want := newTestAgent(t, 17)
		for step := 0; step < 25; step++ {
			lg := got.TrainStep()
			lw := referenceTrainStep(want)
			if lg != lw {
				t.Fatalf("workers %d step %d: loss %v != reference %v", w, step, lg, lw)
			}
			if !reflect.DeepEqual(got.Snapshot(), want.Snapshot()) {
				t.Fatalf("workers %d step %d: weights diverged from reference", w, step)
			}
		}
		parallel.SetWorkers(prev)
	}
}

// TestTrainStepAllocs guards the batched update's allocation budget: with
// a warm workspace the only allocations left in a training step are the
// closure headers the mathx kernels pass to parallel.For (a few dozen
// bytes each, one per kernel call) — every transition slice, activation
// vector and gradient buffer of the per-transition implementation (~1800
// allocations per step) is gone.
func TestTrainStepAllocs(t *testing.T) {
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	a := newTestAgent(t, 5)
	a.TrainStep() // size the workspaces
	allocs := testing.AllocsPerRun(10, func() { a.TrainStep() })
	if allocs > 48 {
		t.Errorf("TrainStep warm = %v allocs, want <= 48 (per-transition implementation: ~1800)", allocs)
	}
}
