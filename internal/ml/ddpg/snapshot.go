package ddpg

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/hunter-cdb/hunter/internal/ml/nn"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// agentState is the learner's full durable state: hyper-parameters, all
// four networks including their Adam optimizer moments, the complete
// replay buffer (contents and write cursor), the sampling/noise RNG
// mid-stream, and the step counter. Unlike the lightweight Snapshot used
// by the model-reuse registry, this captures everything TrainStep and
// ActNoisy consume, so a restored agent's future updates are
// bit-identical to the original's.
type agentState struct {
	Cfg        Config
	Actor      nn.State
	Critic     nn.State
	ActorT     nn.State
	CriticT    nn.State
	ReplayBuf  []Transition
	ReplayPos  int
	ReplayFull bool
	RNG        sim.RNGState
	Steps      int
}

// SnapshotTo serializes the agent (checkpoint.Snapshotter).
func (a *Agent) SnapshotTo(w io.Writer) error {
	st := agentState{
		Cfg:        a.cfg,
		Actor:      a.actor.State(),
		Critic:     a.critic.State(),
		ActorT:     a.actorT.State(),
		CriticT:    a.criticT.State(),
		ReplayBuf:  a.replay.buf,
		ReplayPos:  a.replay.pos,
		ReplayFull: a.replay.full,
		RNG:        a.rng.State(),
		Steps:      a.steps,
	}
	return gob.NewEncoder(w).Encode(st)
}

// RestoreFrom rebuilds the agent from a state written by SnapshotTo
// (checkpoint.Restorer). The agent is unchanged on error. The receiver may
// have any architecture — the snapshot's configuration wins.
func (a *Agent) RestoreFrom(r io.Reader) error {
	var st agentState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	fresh, err := New(st.Cfg)
	if err != nil {
		return fmt.Errorf("ddpg: snapshot config: %w", err)
	}
	if err := fresh.actor.SetState(st.Actor); err != nil {
		return err
	}
	if err := fresh.critic.SetState(st.Critic); err != nil {
		return err
	}
	if err := fresh.actorT.SetState(st.ActorT); err != nil {
		return err
	}
	if err := fresh.criticT.SetState(st.CriticT); err != nil {
		return err
	}
	if len(st.ReplayBuf) > fresh.cfg.Capacity {
		return fmt.Errorf("ddpg: snapshot replay holds %d transitions, capacity %d", len(st.ReplayBuf), fresh.cfg.Capacity)
	}
	if st.ReplayPos < 0 || (len(st.ReplayBuf) > 0 && st.ReplayPos >= fresh.cfg.Capacity) {
		return fmt.Errorf("ddpg: snapshot replay cursor %d out of range", st.ReplayPos)
	}
	for i, t := range st.ReplayBuf {
		if len(t.State) != st.Cfg.StateDim || len(t.Action) != st.Cfg.ActionDim {
			return fmt.Errorf("ddpg: snapshot transition %d dims (%d,%d) != (%d,%d)",
				i, len(t.State), len(t.Action), st.Cfg.StateDim, st.Cfg.ActionDim)
		}
	}
	fresh.replay.buf = append(fresh.replay.buf[:0], st.ReplayBuf...)
	fresh.replay.pos = st.ReplayPos
	fresh.replay.full = st.ReplayFull
	if err := fresh.rng.SetState(st.RNG); err != nil {
		return err
	}
	fresh.steps = st.Steps
	*a = *fresh
	return nil
}
