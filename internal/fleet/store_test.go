package fleet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/ml/ddpg"
)

func storeSnap(stateDim, actionDim int, fill float64) ddpg.Snapshot {
	w := []float64{fill, fill, fill}
	return ddpg.Snapshot{
		StateDim: stateDim, ActionDim: actionDim,
		Actor: w, Critic: w, ActorT: w, CriticT: w,
	}
}

func entry(sig, tag string, fitness float64, knobs []string, dim int) ModelEntry {
	return ModelEntry{
		Signature: sig, Tag: tag, KnobNames: knobs, StateDim: dim,
		Fitness: fitness, Snap: storeSnap(dim, len(knobs), fitness),
	}
}

func TestSharedStoreProbe(t *testing.T) {
	knobs := []string{"a", "b", "c"}
	s := NewSharedStore()
	if _, ok := s.Probe("mysql/tpcc", knobs, 5); ok {
		t.Fatal("empty store produced a model")
	}

	s.Commit(entry("mysql/tpcc", "t1", 0.4, knobs, 5))
	s.Commit(entry("mysql/oltp_read_write", "t2", 0.9, knobs, 5))

	// Exact signature wins even when another signature has better fitness.
	e, ok := s.Probe("mysql/tpcc", knobs, 5)
	if !ok || e.Tag != "t1" {
		t.Fatalf("Probe(mysql/tpcc) = %+v, %v; want the exact-signature donor t1", e, ok)
	}
	// Unknown signature falls back to the best compatible donor.
	e, ok = s.Probe("mysql/oltp_read_only", knobs, 5)
	if !ok || e.Tag != "t2" {
		t.Fatalf("fallback probe = %+v, %v; want the highest-fitness donor t2", e, ok)
	}
	// Incompatible shapes never match.
	if _, ok := s.Probe("mysql/tpcc", knobs, 6); ok {
		t.Fatal("probe with wrong state dim matched")
	}
	if _, ok := s.Probe("mysql/tpcc", []string{"a", "b", "x"}, 5); ok {
		t.Fatal("probe with different knob set matched")
	}

	// Commits only replace on strictly better fitness.
	if s.Commit(entry("mysql/tpcc", "t3", 0.3, knobs, 5)) {
		t.Fatal("worse donor replaced a better one")
	}
	if !s.Commit(entry("mysql/tpcc", "t4", 0.5, knobs, 5)) {
		t.Fatal("better donor was refused")
	}
	e, _ = s.Probe("mysql/tpcc", knobs, 5)
	if e.Tag != "t4" {
		t.Fatalf("store kept %s, want t4", e.Tag)
	}

	// Probe results are deep copies.
	e.Snap.Actor[0] = -99
	again, _ := s.Probe("mysql/tpcc", knobs, 5)
	if again.Snap.Actor[0] == -99 {
		t.Fatal("probe result aliases store state")
	}
}

func TestSharedStoreSnapshotRoundTrip(t *testing.T) {
	knobs := []string{"a", "b"}
	s := NewSharedStore()
	for i := 0; i < 10; i++ {
		s.Commit(entry(fmt.Sprintf("mysql/w%d", i), fmt.Sprintf("t%d", i), float64(i), knobs, 3))
	}
	var buf bytes.Buffer
	if err := s.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	r := NewSharedStore()
	r.Commit(entry("stale/x", "gone", 1, knobs, 3)) // must be replaced wholesale
	if err := r.RestoreFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 10 {
		t.Fatalf("restored %d entries, want 10", r.Len())
	}
	if _, ok := r.Probe("stale/x", knobs, 3); ok {
		// stale/x is gone, but fallback may still match a compatible donor;
		// check the signature list instead.
	}
	for _, sig := range r.Signatures() {
		if sig == "stale/x" {
			t.Fatal("RestoreFrom merged instead of replacing")
		}
	}
	e, ok := r.Probe("mysql/w9", knobs, 3)
	if !ok || e.Fitness != 9 {
		t.Fatalf("restored probe = %+v, %v", e, ok)
	}
}

// TestSharedStoreConcurrent hammers Probe/Commit/Len from 16 goroutines;
// run under -race via the CI race list.
func TestSharedStoreConcurrent(t *testing.T) {
	knobs := []string{"a", "b", "c"}
	s := NewSharedStore()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sig := fmt.Sprintf("mysql/w%d", g%5)
			for i := 0; i < 100; i++ {
				switch i % 3 {
				case 0:
					s.Commit(entry(sig, fmt.Sprintf("t%d", g), float64(i), knobs, 4))
				case 1:
					if e, ok := s.Probe(sig, knobs, 4); ok {
						e.Snap.Actor[0] = -1 // private copy; must not race
					}
				case 2:
					s.Len()
					s.ShardSizes()
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Fatal("store empty after concurrent commits")
	}
}

func TestTenantStoreStaging(t *testing.T) {
	knobs := []string{"a", "b"}
	donor := entry("mysql/tpcc", "t0", 0.7, knobs, 3)
	ts := &tenantStore{warm: &donor}
	if snap, ok := ts.Match(knobs, 3); !ok || snap.ActionDim != 2 {
		t.Fatalf("Match = %+v, %v", snap, ok)
	}
	if _, ok := ts.Match(knobs, 4); ok {
		t.Fatal("incompatible warm donor matched")
	}
	ts.Store("t5", knobs, 3, storeSnap(3, 2, 0.1))
	if len(ts.staged) != 1 || ts.Len() != 2 {
		t.Fatalf("staged %d, Len %d; want 1 staged, Len 2", len(ts.staged), ts.Len())
	}
	cold := &tenantStore{}
	if _, ok := cold.Match(knobs, 3); ok {
		t.Fatal("cold tenant store matched")
	}
}

func TestSyntheticTenantsDeterministic(t *testing.T) {
	a := SyntheticTenants(50, 9)
	b := SyntheticTenants(50, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tenant %d differs across generations: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := SyntheticTenants(50, 10)
	same := 0
	for i := range a {
		if a[i].Budget == c[i].Budget && a[i].Target == c[i].Target {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different fleet seeds produced identical tenants")
	}
	for i, spec := range a {
		if spec.ID != i {
			t.Fatalf("tenant %d has ID %d", i, spec.ID)
		}
		if spec.Budget < 2*time.Hour || spec.Budget > 6*time.Hour {
			t.Fatalf("tenant %d budget %s out of range", i, spec.Budget)
		}
		if spec.Target <= 0 {
			t.Fatalf("tenant %d has no SLO target", i)
		}
		if _, err := newProfile(spec.Profile); err != nil {
			t.Fatal(err)
		}
	}
}
