// Package fleet is the multi-tenant tuning control plane: a sharded
// session scheduler that runs thousands of tenant tuning sessions with
// per-tenant virtual-time budgets and personalized SLO targets, sharing
// trained models across tenants through a workload-signature-keyed store.
//
// Determinism is the package's load-bearing property, inherited from the
// rest of the repository: tenants are declared in a fixed order, scheduled
// in rounds of Policy.MaxActive, and every cross-tenant side effect —
// model-store commits, budget-pool refunds, telemetry rollups, report
// aggregation — happens at round barriers in declaration order. Within a
// round the shared store is read-only. The result: the fleet report is
// byte-identical at any worker count, and a fleet killed at a round
// barrier and resumed from its checkpoint reproduces the uninterrupted
// run byte for byte (CI enforces both).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"github.com/hunter-cdb/hunter/internal/core"
	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// Typed admission-control errors. They are recorded on tenant results (and
// matched with errors.Is by callers), not returned from Run: one tenant's
// rejection must not abort the fleet.
var (
	// ErrRejected reports that admission control turned a tenant away at
	// submission time because the queue was full (Policy.QueueDepth).
	ErrRejected = errors.New("fleet: tenant rejected: admission queue full")
	// ErrEvicted reports that a queued tenant was dropped at scheduling
	// time because the fleet's remaining virtual-time pool could not cover
	// its budget reservation (Policy.TotalVirtualBudget).
	ErrEvicted = errors.New("fleet: tenant evicted: fleet virtual-time budget exhausted")
	// ErrStopRequested reports that the fleet checkpointed and stopped at
	// the round requested by Config.StopAfterRounds — the kill-and-resume
	// test hook, mirroring the session-level contract.
	ErrStopRequested = errors.New("fleet: stopped at requested round after checkpoint")
)

// Tenant terminal statuses, as they appear in reports and checkpoints.
const (
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusRejected = "rejected"
	StatusEvicted  = "evicted"
)

// Policy is the fleet's admission-control and budget policy.
type Policy struct {
	// MaxActive is the number of tenant sessions run concurrently per
	// scheduling round (default 32). It bounds memory, not parallelism:
	// internal/parallel decides how many actually run at once.
	MaxActive int
	// QueueDepth caps how many tenants may be admitted in total; beyond
	// it, tenants are rejected at submission (ErrRejected). Zero admits
	// everyone.
	QueueDepth int
	// MaxTenantBudget clamps each tenant's requested virtual budget at
	// admission. Zero leaves requests unclamped.
	MaxTenantBudget time.Duration
	// TotalVirtualBudget is the fleet-wide virtual-time pool. Each tenant
	// reserves its (clamped) budget at scheduling time and refunds the
	// unused part at the round barrier; a tenant whose reservation the
	// pool cannot cover is evicted (ErrEvicted). Zero means unlimited.
	TotalVirtualBudget time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.MaxActive <= 0 {
		p.MaxActive = 32
	}
	return p
}

// Config configures a fleet run.
type Config struct {
	// Tenants are the tenant specs in declaration (= scheduling) order.
	Tenants []TenantSpec
	// Reuse enables the cross-tenant model store.
	Reuse  bool
	Policy Policy
	// Seed is the fleet seed, recorded in the report and the checkpoint
	// fingerprint (tenant seeds live in the specs).
	Seed int64
	// CheckpointDir enables incremental fleet snapshots at round barriers
	// (empty disables them).
	CheckpointDir string
	// CheckpointEvery is the number of rounds between snapshots (default 1).
	CheckpointEvery int
	// StopAfterRounds makes the fleet checkpoint and stop (ErrStopRequested)
	// once that many rounds have run — the kill-and-resume hook.
	StopAfterRounds int
	// Recorder receives fleet-wide telemetry rollups (per-shard model
	// counts, admission counters, tenant virtual-time histogram). Nil
	// disables them at zero cost; rollups are passive and never change
	// results.
	Recorder *telemetry.Recorder
	// Status receives every tenant session's live status (the obsv
	// registry in the daemon). Nil disables publishing.
	Status tuner.StatusSink
	// Logger receives fleet progress events. Nil disables logging.
	Logger *slog.Logger
}

// Warm-start economics: a cold tenant's sample factory aims for a small
// pool (the 16-knob fleet space needs far fewer samples than the paper's
// 140 over 65 knobs); a warm-started tenant shrinks it further — the
// borrowed model replaces most of the exploration the pool would buy.
const (
	coldSampleTarget = 20
	warmSampleTarget = 8
)

// Fleet is one multi-tenant tuning run. Construct with New, drive with
// Run, read results with Report.
type Fleet struct {
	cfg      Config
	store    *SharedStore
	admitted []TenantSpec
	results  map[int]*TenantResult

	rounds int
	next   int // index into admitted of the next tenant to schedule
	// pool is the remaining fleet virtual-time pool; only meaningful when
	// Policy.TotalVirtualBudget > 0.
	pool time.Duration

	reuseProbes int
	reuseHits   int
	reuseStores int

	ckpt       *ckptWriter
	trace      *telemetry.SessionTrace
	prevDone   int
	prevFailed int
}

// New validates the config and performs admission: tenants beyond the
// queue depth are rejected immediately, in declaration order.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("fleet: config needs at least one tenant")
	}
	cfg.Policy = cfg.Policy.withDefaults()
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
	for i, t := range cfg.Tenants {
		if t.ID != i {
			return nil, fmt.Errorf("fleet: tenant %d has ID %d; IDs must be dense and in declaration order", i, t.ID)
		}
		if _, err := newProfile(t.Profile); err != nil {
			return nil, err
		}
	}
	f := &Fleet{
		cfg:     cfg,
		store:   NewSharedStore(),
		results: make(map[int]*TenantResult, len(cfg.Tenants)),
		pool:    cfg.Policy.TotalVirtualBudget,
	}
	f.admitted = cfg.Tenants
	if q := cfg.Policy.QueueDepth; q > 0 && len(cfg.Tenants) > q {
		f.admitted = cfg.Tenants[:q]
		for _, t := range cfg.Tenants[q:] {
			f.results[t.ID] = &TenantResult{
				ID:        t.ID,
				Name:      t.Name,
				Signature: t.Signature(),
				Seed:      t.Seed,
				Status:    StatusRejected,
				Err:       ErrRejected.Error(),
			}
		}
	}
	if cfg.CheckpointDir != "" {
		f.ckpt = newCkptWriter(cfg.CheckpointDir)
	}
	if cfg.Recorder != nil {
		f.trace = cfg.Recorder.Session("fleet", nil)
		cfg.Recorder.Counter("fleet.tenants_admitted").Add(int64(len(f.admitted)))
		cfg.Recorder.Counter("fleet.tenants_rejected").Add(int64(len(cfg.Tenants) - len(f.admitted)))
	}
	return f, nil
}

// Store exposes the shared model store (diagnostics and tests).
func (f *Fleet) Store() *SharedStore { return f.store }

// Rounds returns the number of completed scheduling rounds.
func (f *Fleet) Rounds() int { return f.rounds }

// grant is one scheduled tenant with its admitted budget reservation.
type grant struct {
	spec    TenantSpec
	granted time.Duration
}

// Run drives the fleet to completion (or to the StopAfterRounds hook,
// returning ErrStopRequested after writing a checkpoint). Tenant-level
// failures are recorded on results, not returned.
func (f *Fleet) Run(ctx context.Context) error {
	for f.next < len(f.admitted) {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Schedule the next round: examine up to MaxActive tenants in
		// declaration order, reserving pool budget for each. Tenants the
		// pool cannot cover are evicted and do not run.
		var round []grant
		for len(round) < f.cfg.Policy.MaxActive && f.next < len(f.admitted) {
			spec := f.admitted[f.next]
			f.next++
			granted := spec.Budget
			if m := f.cfg.Policy.MaxTenantBudget; m > 0 && granted > m {
				granted = m
			}
			if f.cfg.Policy.TotalVirtualBudget > 0 && f.pool < granted {
				f.results[spec.ID] = &TenantResult{
					ID:        spec.ID,
					Name:      spec.Name,
					Signature: spec.Signature(),
					Seed:      spec.Seed,
					Status:    StatusEvicted,
					Round:     f.rounds,
					Budget:    granted,
					Err:       ErrEvicted.Error(),
				}
				f.markDirty(spec.ID)
				if f.cfg.Recorder != nil {
					f.cfg.Recorder.Counter("fleet.tenants_evicted").Add(1)
				}
				f.logf("tenant evicted", "tenant", spec.Name, "granted", granted, "pool", f.pool)
				continue
			}
			if f.cfg.Policy.TotalVirtualBudget > 0 {
				f.pool -= granted
			}
			round = append(round, grant{spec: spec, granted: granted})
		}
		if len(round) == 0 {
			// Every examined tenant was evicted; the barrier below still
			// has dirty results to checkpoint.
		}

		// Fan the round out. Each outcome lands at its declaration index;
		// nothing shared is written until the barrier.
		outcomes := make([]tenantOutcome, len(round))
		parallel.For(len(round), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				outcomes[i] = f.runTenant(ctx, round[i])
			}
		})

		// Barrier: fold outcomes in declaration order.
		for i := range outcomes {
			f.fold(&outcomes[i], round[i])
		}
		f.rounds++
		f.rollup(outcomes)

		stop := f.cfg.StopAfterRounds > 0 && f.rounds >= f.cfg.StopAfterRounds && f.next < len(f.admitted)
		if f.ckpt != nil && (stop || f.rounds%f.cfg.CheckpointEvery == 0 || f.next >= len(f.admitted)) {
			if err := f.writeCheckpoint(); err != nil {
				return err
			}
		}
		if stop {
			f.logf("fleet stopped at requested round", "round", f.rounds)
			return ErrStopRequested
		}
	}
	return nil
}

// tenantOutcome is what one session run brings back to the barrier.
type tenantOutcome struct {
	res    TenantResult
	staged []stagedModel
	probed bool
	hit    bool
}

// runTenant runs one tenant's tuning session to completion. It reads the
// shared store (frozen during the round) and writes nothing shared.
func (f *Fleet) runTenant(ctx context.Context, g grant) tenantOutcome {
	spec := g.spec
	out := tenantOutcome{res: TenantResult{
		ID:        spec.ID,
		Name:      spec.Name,
		Signature: spec.Signature(),
		Seed:      spec.Seed,
		Round:     f.rounds,
		Budget:    g.granted,
		Target:    spec.Target,
	}}
	fail := func(err error) tenantOutcome {
		out.res.Status = StatusFailed
		out.res.Err = err.Error()
		return out
	}

	prof, err := newProfile(spec.Profile)
	if err != nil {
		return fail(err)
	}
	knobs := fleetKnobs(spec.Dialect)
	s, err := tuner.NewSessionContext(ctx, tuner.Request{
		Dialect:       spec.Dialect,
		Workload:      prof,
		KnobNames:     knobs,
		Budget:        g.granted,
		Clones:        spec.Clones,
		Seed:          spec.Seed,
		StopAtFitness: spec.Target,
		Status:        f.cfg.Status,
	})
	if err != nil {
		return fail(err)
	}
	defer s.Close()

	ts := &tenantStore{}
	opts := core.Options{
		DisableRF:    true,
		DisablePCA:   true,
		SampleTarget: coldSampleTarget,
		ReuseTag:     spec.Name,
	}
	if f.cfg.Reuse {
		// With PCA disabled the session state is the full normalized metric
		// vector, so the state dimension is a constant — which is exactly
		// what makes cross-tenant snapshots compatible at all.
		out.probed = true
		if donor, ok := f.store.Probe(spec.Signature(), knobs, metrics.Count); ok {
			ts.warm = &donor
			out.hit = true
			out.res.Reused = true
			out.res.ReuseFrom = donor.Tag + "@" + donor.Signature
			opts.SampleTarget = warmSampleTarget
		}
		opts.Registry = ts
	}
	if err := core.New(opts).Tune(s); err != nil {
		return fail(err)
	}

	out.res.Elapsed = s.Elapsed()
	out.res.Steps = s.Steps()
	out.res.Waves = s.WaveCount()
	out.res.TargetHit = s.TargetReached()
	out.res.DefaultTPS = s.DefaultPerf.ThroughputTPS
	best, ok := s.Best()
	if !ok {
		return fail(fmt.Errorf("fleet: tenant %s produced no samples", spec.Name))
	}
	out.res.Fitness = s.Fitness(best.Perf)
	out.res.BestTPS = best.Perf.ThroughputTPS
	out.res.BestKnobs = best.Knobs
	out.res.Status = StatusDone
	out.staged = ts.staged
	return out
}

// fold merges one outcome into fleet state at the round barrier, in
// declaration order: pool refund, reuse accounting, store commits, result
// registration.
func (f *Fleet) fold(o *tenantOutcome, g grant) {
	if f.cfg.Policy.TotalVirtualBudget > 0 {
		// Refund the unused reservation. A session's last wave may carry
		// the clock slightly past its budget, so the refund can be a small
		// negative correction; the pool tracks actual consumption exactly.
		f.pool += g.granted - o.res.Elapsed
	}
	if o.probed {
		f.reuseProbes++
		if o.hit {
			f.reuseHits++
		}
	}
	if o.res.Status == StatusDone {
		for _, st := range o.staged {
			if f.store.Commit(ModelEntry{
				Signature: o.res.Signature,
				Tag:       o.res.Name,
				KnobNames: st.knobNames,
				StateDim:  st.stateDim,
				Fitness:   o.res.Fitness,
				Snap:      st.snap,
			}) {
				f.reuseStores++
				f.markStoreDirty()
			}
		}
	}
	res := o.res
	f.results[res.ID] = &res
	f.markDirty(res.ID)
}

// rollup publishes the round's telemetry: admission counters, the tenant
// virtual-time histogram, per-shard store sizes, and a round event.
func (f *Fleet) rollup(outcomes []tenantOutcome) {
	rec := f.cfg.Recorder
	done, failed := 0, 0
	for i := range outcomes {
		switch outcomes[i].res.Status {
		case StatusDone:
			done++
		case StatusFailed:
			failed++
		}
	}
	f.prevDone += done
	f.prevFailed += failed
	f.logf("round complete",
		"round", f.rounds, "done", f.prevDone, "failed", f.prevFailed,
		"models", f.store.Len(), "reuse_hits", f.reuseHits)
	if rec == nil {
		return
	}
	rec.Counter("fleet.rounds").Add(1)
	rec.Counter("fleet.tenants_done").Add(int64(done))
	rec.Counter("fleet.tenants_failed").Add(int64(failed))
	hist := rec.Histogram("fleet.tenant_virtual_seconds")
	for i := range outcomes {
		if st := outcomes[i].res.Status; st == StatusDone || st == StatusFailed {
			hist.Observe(outcomes[i].res.Elapsed)
		}
	}
	if f.cfg.Reuse {
		rec.Gauge("fleet.reuse_probes").Set(float64(f.reuseProbes))
		rec.Gauge("fleet.reuse_hits").Set(float64(f.reuseHits))
		rec.Gauge("fleet.reuse_stores").Set(float64(f.reuseStores))
		for i, n := range f.store.ShardSizes() {
			rec.Gauge(fmt.Sprintf("fleet.shard%02d.models", i)).Set(float64(n))
		}
	}
	if f.trace != nil {
		f.trace.Event("round_complete",
			telemetry.A("round", float64(f.rounds)),
			telemetry.A("done", float64(done)),
			telemetry.A("models", float64(f.store.Len())))
	}
}

func (f *Fleet) logf(msg string, kv ...any) {
	if f.cfg.Logger != nil {
		f.cfg.Logger.Info(msg, kv...)
	}
}
