package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/hunter-cdb/hunter/internal/knob"
)

// ReportSchema identifies fleet report JSON documents (hunter-inspect
// sniffs on it).
const ReportSchema = "hunter-fleet-report/v1"

// TenantResult is one tenant's terminal record: how it was admitted, how
// it ran, and what it achieved. It is the unit of fleet checkpointing (one
// container section per tenant) and of report aggregation.
type TenantResult struct {
	ID        int    `json:"id"`
	Name      string `json:"name"`
	Signature string `json:"signature"`
	Seed      int64  `json:"seed"`
	// Status is one of done, failed, rejected, evicted.
	Status string `json:"status"`
	// Round is the scheduling round the tenant ran (or was evicted) in.
	Round int `json:"round"`
	// Budget is the virtual budget actually granted (after clamping).
	Budget  time.Duration `json:"budget_ns"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Steps   int           `json:"steps"`
	Waves   int           `json:"waves"`
	// Target is the tenant's personalized fitness SLO; TargetHit reports
	// whether the session stopped early because it was reached.
	Target    float64 `json:"target"`
	TargetHit bool    `json:"target_hit"`
	Fitness   float64 `json:"fitness"`
	// Reused reports a warm start from the shared store; ReuseFrom names
	// the donor as tenant@signature.
	Reused     bool        `json:"reused"`
	ReuseFrom  string      `json:"reuse_from,omitempty"`
	DefaultTPS float64     `json:"default_tps"`
	BestTPS    float64     `json:"best_tps"`
	BestKnobs  knob.Config `json:"best_knobs,omitempty"`
	Err        string      `json:"error,omitempty"`
}

// Report is the fleet's final summary — the daemon's primary output. Every
// field is a deterministic function of the config: rendering it at any
// worker count, or across a kill-and-resume, produces identical bytes.
type Report struct {
	Schema  string `json:"schema"`
	Tenants int    `json:"tenants"`
	Seed    int64  `json:"seed"`
	Reuse   bool   `json:"reuse"`
	Rounds  int    `json:"rounds"`

	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	Evicted  int `json:"evicted"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`

	ReuseProbes  int     `json:"reuse_probes"`
	ReuseHits    int     `json:"reuse_hits"`
	ReuseStores  int     `json:"reuse_stores"`
	ReuseHitRate float64 `json:"reuse_hit_rate"`

	// TotalVirtualSeconds is the summed virtual tuning time of every
	// tenant that ran — the quantity cross-tenant reuse exists to reduce.
	TotalVirtualSeconds float64 `json:"total_virtual_seconds"`
	MeanFitness         float64 `json:"mean_fitness"`
	TargetsHit          int     `json:"targets_hit"`

	TenantResults []TenantResult `json:"tenant_results"`
}

// Report assembles the fleet report from the recorded tenant results, in
// tenant ID order.
func (f *Fleet) Report() *Report {
	r := &Report{
		Schema:  ReportSchema,
		Tenants: len(f.cfg.Tenants),
		Seed:    f.cfg.Seed,
		Reuse:   f.cfg.Reuse,
		Rounds:  f.rounds,

		Admitted:    len(f.admitted),
		ReuseProbes: f.reuseProbes,
		ReuseHits:   f.reuseHits,
		ReuseStores: f.reuseStores,
	}
	ids := make([]int, 0, len(f.results))
	for id := range f.results {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var fitSum float64
	for _, id := range ids {
		res := *f.results[id]
		r.TenantResults = append(r.TenantResults, res)
		switch res.Status {
		case StatusDone:
			r.Done++
			fitSum += res.Fitness
			if res.TargetHit {
				r.TargetsHit++
			}
			r.TotalVirtualSeconds += res.Elapsed.Seconds()
		case StatusFailed:
			r.Failed++
			r.TotalVirtualSeconds += res.Elapsed.Seconds()
		case StatusRejected:
			r.Rejected++
		case StatusEvicted:
			r.Evicted++
		}
	}
	if r.Done > 0 {
		r.MeanFitness = fitSum / float64(r.Done)
	}
	if r.ReuseProbes > 0 {
		r.ReuseHitRate = float64(r.ReuseHits) / float64(r.ReuseProbes)
	}
	return r
}

// Render writes the deterministic text form of the report: a fleet summary
// followed by one line per tenant in ID order. No wall-clock time, worker
// count or map-ordered data appears — the bytes are the determinism
// contract CI diffs across worker counts and across kill-and-resume.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "fleet report (%s)\n", r.Schema)
	fmt.Fprintf(w, "  tenants %d  seed %d  reuse %v  rounds %d\n", r.Tenants, r.Seed, r.Reuse, r.Rounds)
	fmt.Fprintf(w, "  admitted %d  rejected %d  evicted %d  done %d  failed %d\n",
		r.Admitted, r.Rejected, r.Evicted, r.Done, r.Failed)
	fmt.Fprintf(w, "  reuse: probes %d  hits %d  stores %d  hit rate %.4f\n",
		r.ReuseProbes, r.ReuseHits, r.ReuseStores, r.ReuseHitRate)
	fmt.Fprintf(w, "  total virtual tuning time %.0fs (%.1fh)  mean fitness %.4f  targets hit %d/%d\n",
		r.TotalVirtualSeconds, r.TotalVirtualSeconds/3600, r.MeanFitness, r.TargetsHit, r.Done)
	for i := range r.TenantResults {
		t := &r.TenantResults[i]
		switch t.Status {
		case StatusRejected, StatusEvicted:
			fmt.Fprintf(w, "  %s %-22s %-8s round=%d\n", t.Name, t.Signature, t.Status, t.Round)
		case StatusFailed:
			fmt.Fprintf(w, "  %s %-22s %-8s round=%d err=%s\n", t.Name, t.Signature, t.Status, t.Round, t.Err)
		default:
			mark := " "
			if t.TargetHit {
				mark = "T"
			}
			reuse := "cold"
			if t.Reused {
				reuse = "warm<-" + t.ReuseFrom
			}
			fmt.Fprintf(w, "  %s %-22s %-8s round=%d fit=%.4f target=%.4f%s tps=%.0f/%.0f steps=%d elapsed=%s %s\n",
				t.Name, t.Signature, t.Status, t.Round, t.Fitness, t.Target, mark,
				t.BestTPS, t.DefaultTPS, t.Steps, t.Elapsed, reuse)
		}
	}
}

// WriteJSON writes the report as indented JSON to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: encoding report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("fleet: writing report: %w", err)
	}
	return nil
}
