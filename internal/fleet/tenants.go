package fleet

import (
	"fmt"
	"time"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/sim"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// TenantSpec describes one tenant database the fleet tunes: its engine
// dialect, workload family, personalized SLO target, and per-tenant seed.
// Specs are declared up front; declaration order is the fleet's scheduling
// and result-folding order, which makes every fleet output deterministic.
type TenantSpec struct {
	ID      int
	Name    string
	Dialect simdb.Dialect
	// Profile names the workload family ("tpcc", "oltp_read_write", ...);
	// the fleet instantiates a fresh workload.Profile per session.
	Profile string
	Seed    int64
	// Budget is the tenant's requested virtual tuning budget. Admission
	// may clamp it (Policy.MaxTenantBudget).
	Budget time.Duration
	// Target is the tenant's personalized fitness SLO: the session stops
	// as soon as its best configuration reaches this Eq. 1 fitness. Zero
	// means "spend the whole budget".
	Target float64
	Clones int
}

// Signature is the tenant's workload signature — the shared model store's
// primary key.
func (t TenantSpec) Signature() string {
	return t.Dialect.String() + "/" + t.Profile
}

// fleetKnobCount is the per-dialect knob subset fleet tenants tune: the
// first knobs of the DBA's 65-knob selection in catalog order (the catalog
// leads with the high-impact memory and log knobs). A fixed subset keeps
// (knob set, state dimension) identical across a dialect's tenants, which
// is what lets models transfer between tenants at all — per-tenant RF
// sifting produces knob sets too noisy to ever match (see DESIGN.md).
const fleetKnobCount = 16

// fleetKnobs returns the fleet's fixed knob subset for a dialect.
func fleetKnobs(d simdb.Dialect) []string {
	var all []string
	if d == simdb.Postgres {
		all = knob.PostgresTuned65()
	} else {
		all = knob.MySQLTuned65()
	}
	if len(all) > fleetKnobCount {
		all = all[:fleetKnobCount]
	}
	return all
}

// tenantFamily is one synthetic workload family tenants are drawn from.
// Target fitness baselines are calibrated against cold 2–6h runs on the
// fixed 16-knob space: roughly the 60th percentile of what a cold run
// achieves, so most tenants can hit their SLO early while the tail keeps
// tuning to budget.
type tenantFamily struct {
	dialect    simdb.Dialect
	profile    string
	baseTarget float64
}

var tenantFamilies = []tenantFamily{
	{simdb.MySQL, "tpcc", 0.30},
	{simdb.MySQL, "oltp_read_write", 0.25},
	{simdb.MySQL, "oltp_read_only", 0.15},
	{simdb.MySQL, "oltp_write_only", 0.25},
	{simdb.Postgres, "tpcc", 0.30},
	{simdb.Postgres, "oltp_read_write", 0.25},
}

// newProfile instantiates a fresh workload profile for a family name. Each
// session gets its own instance, so concurrent tenants never share profile
// state.
func newProfile(name string) (*workload.Profile, error) {
	switch name {
	case "tpcc":
		return workload.TPCC(), nil
	case "oltp_read_only":
		return workload.SysbenchRO(), nil
	case "oltp_write_only":
		return workload.SysbenchWO(), nil
	case "oltp_read_write":
		return workload.SysbenchRW(), nil
	}
	return nil, fmt.Errorf("fleet: unknown workload profile %q", name)
}

// SyntheticTenants generates n tenant specs deterministically from a fleet
// seed: workload families cycle round-robin (so every family is populated
// at any n), while budgets, SLO targets and per-tenant seeds are drawn
// from the seeded stream.
func SyntheticTenants(n int, seed int64) []TenantSpec {
	rng := sim.NewRNG(seed ^ 0x0f1ee7)
	specs := make([]TenantSpec, 0, n)
	for i := 0; i < n; i++ {
		fam := tenantFamilies[i%len(tenantFamilies)]
		budget := time.Duration(2+rng.Intn(5)) * time.Hour // 2h..6h
		target := fam.baseTarget * rng.Uniform(0.80, 1.10)
		specs = append(specs, TenantSpec{
			ID:      i,
			Name:    fmt.Sprintf("t%04d", i),
			Dialect: fam.dialect,
			Profile: fam.profile,
			Seed:    seed*1_000_003 + int64(i)*7919,
			Budget:  budget,
			Target:  target,
			Clones:  2,
		})
	}
	return specs
}
