package fleet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"github.com/hunter-cdb/hunter/internal/ml/ddpg"
)

// storeShards is the lock-shard count of the shared model store. Probes
// take one shard's read lock, so a fleet of concurrent tenants fans its
// lookups across 16 locks instead of serializing on one.
const storeShards = 16

// ModelEntry is one published tenant model: the donor's DDPG snapshot plus
// everything a prospective borrower needs to decide compatibility
// (signature, knob set, state dimension) and quality (the donor's final
// fitness).
type ModelEntry struct {
	Signature string // dialect/workload family, e.g. "mysql/tpcc"
	Tag       string // donor tenant name
	KnobNames []string
	StateDim  int
	Fitness   float64
	Snap      ddpg.Snapshot
}

// cloneSnapshot deep-copies a DDPG snapshot so store entries never share
// weight slices with tenants.
func cloneSnapshot(s ddpg.Snapshot) ddpg.Snapshot {
	cp := s
	cp.Actor = append([]float64(nil), s.Actor...)
	cp.Critic = append([]float64(nil), s.Critic...)
	cp.ActorT = append([]float64(nil), s.ActorT...)
	cp.CriticT = append([]float64(nil), s.CriticT...)
	return cp
}

func cloneEntry(e ModelEntry) ModelEntry {
	e.KnobNames = append([]string(nil), e.KnobNames...)
	e.Snap = cloneSnapshot(e.Snap)
	return e
}

// compatible reports whether a stored model can warm-start a tenant with
// the given knob set and state dimension. Fleet tenants of one dialect
// share an identical fixed knob set, so compatibility is exact equality —
// there is no fuzzy Jaccard matching at fleet scale.
func (e *ModelEntry) compatible(knobNames []string, stateDim int) bool {
	if e.StateDim != stateDim || e.Snap.ActionDim != len(knobNames) || len(e.KnobNames) != len(knobNames) {
		return false
	}
	for i, n := range knobNames {
		if e.KnobNames[i] != n {
			return false
		}
	}
	return true
}

// SharedStore is the fleet's cross-tenant model store: one ModelEntry per
// workload signature, spread over sharded locks. Within a scheduling round
// the store is read-only (tenants probe concurrently); writes happen only
// at round barriers, in tenant declaration order, which is what makes the
// whole fleet byte-deterministic at any worker count.
type SharedStore struct {
	shards [storeShards]storeShard
}

type storeShard struct {
	mu      sync.RWMutex
	entries map[string]ModelEntry
}

// NewSharedStore returns an empty store.
func NewSharedStore() *SharedStore {
	s := &SharedStore{}
	for i := range s.shards {
		s.shards[i].entries = make(map[string]ModelEntry)
	}
	return s
}

func (s *SharedStore) shard(signature string) *storeShard {
	h := fnv.New32a()
	h.Write([]byte(signature))
	return &s.shards[h.Sum32()%storeShards]
}

// Probe looks for a model to warm-start a tenant: first the tenant's own
// workload signature, then — failing that — the best compatible entry
// under any signature (highest donor fitness, ties broken by signature
// order). The returned entry is a deep copy.
func (s *SharedStore) Probe(signature string, knobNames []string, stateDim int) (ModelEntry, bool) {
	sh := s.shard(signature)
	sh.mu.RLock()
	e, ok := sh.entries[signature]
	sh.mu.RUnlock()
	if ok && e.compatible(knobNames, stateDim) {
		return cloneEntry(e), true
	}
	// Cross-signature fallback: a tenant with no same-workload donor still
	// warm-starts from the strongest compatible model in the fleet.
	best, found := ModelEntry{}, false
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			if !e.compatible(knobNames, stateDim) {
				continue
			}
			if !found || e.Fitness > best.Fitness ||
				(e.Fitness == best.Fitness && e.Signature < best.Signature) {
				best, found = e, true
			}
		}
		sh.mu.RUnlock()
	}
	if !found {
		return ModelEntry{}, false
	}
	return cloneEntry(best), true
}

// Commit publishes a tenant's trained model under its signature. An
// existing entry is replaced only by a strictly better donor fitness, so
// commit order among equals does not matter and the store's contents are
// a deterministic function of the committed set. It reports whether the
// entry was accepted.
func (s *SharedStore) Commit(e ModelEntry) bool {
	sh := s.shard(e.Signature)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.entries[e.Signature]; ok && old.Fitness >= e.Fitness {
		return false
	}
	sh.entries[e.Signature] = cloneEntry(e)
	return true
}

// Len returns the number of stored models across all shards.
func (s *SharedStore) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].entries)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// ShardSizes returns the per-shard model counts (telemetry rollups).
func (s *SharedStore) ShardSizes() [storeShards]int {
	var out [storeShards]int
	for i := range s.shards {
		s.shards[i].mu.RLock()
		out[i] = len(s.shards[i].entries)
		s.shards[i].mu.RUnlock()
	}
	return out
}

// Signatures lists the stored signatures in sorted order (diagnostics).
func (s *SharedStore) Signatures() []string {
	var out []string
	for i := range s.shards {
		s.shards[i].mu.RLock()
		for sig := range s.shards[i].entries {
			out = append(out, sig)
		}
		s.shards[i].mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// storeDump is the serialized form of the store.
type storeDump struct {
	Entries map[string]ModelEntry
}

// SnapshotTo serializes the store (checkpoint.Snapshotter).
func (s *SharedStore) SnapshotTo(w io.Writer) error {
	dump := storeDump{Entries: make(map[string]ModelEntry, s.Len())}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for sig, e := range sh.entries {
			dump.Entries[sig] = e
		}
		sh.mu.RUnlock()
	}
	if err := gob.NewEncoder(w).Encode(dump); err != nil {
		return fmt.Errorf("fleet: encoding model store: %w", err)
	}
	return nil
}

// RestoreFrom reinstates a store serialized by SnapshotTo, replacing the
// current contents (checkpoint.Restorer).
func (s *SharedStore) RestoreFrom(r io.Reader) error {
	var dump storeDump
	if err := gob.NewDecoder(r).Decode(&dump); err != nil {
		return fmt.Errorf("fleet: decoding model store: %w", err)
	}
	for i := range s.shards {
		s.shards[i].mu.Lock()
		s.shards[i].entries = make(map[string]ModelEntry)
		s.shards[i].mu.Unlock()
	}
	for sig, e := range dump.Entries {
		sh := s.shard(sig)
		sh.mu.Lock()
		sh.entries[sig] = e
		sh.mu.Unlock()
	}
	return nil
}

// Bytes renders the store snapshot to a byte slice (the fleet checkpoint
// section payload).
func (s *SharedStore) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.SnapshotTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// tenantStore adapts the fleet store to core.ModelStore for one tenant
// session. The warm-start donor is probed once, before the session runs
// (the store is frozen during a round, so the probe result is independent
// of scheduling); models the session publishes are staged here and
// committed by the fleet at the round barrier, in declaration order.
type tenantStore struct {
	warm   *ModelEntry // pre-probed donor, nil when cold
	staged []stagedModel
}

type stagedModel struct {
	tag       string
	knobNames []string
	stateDim  int
	snap      ddpg.Snapshot
}

// Match hands the session its pre-probed donor (core.ModelStore).
func (t *tenantStore) Match(knobNames []string, stateDim int) (ddpg.Snapshot, bool) {
	if t.warm == nil || !t.warm.compatible(knobNames, stateDim) {
		return ddpg.Snapshot{}, false
	}
	return cloneSnapshot(t.warm.Snap), true
}

// Store stages the session's trained model for the barrier commit
// (core.ModelStore).
func (t *tenantStore) Store(tag string, knobNames []string, stateDim int, snap ddpg.Snapshot) {
	t.staged = append(t.staged, stagedModel{
		tag:       tag,
		knobNames: append([]string(nil), knobNames...),
		stateDim:  stateDim,
		snap:      cloneSnapshot(snap),
	})
}

// Len reports how many models this tenant can see (core.ModelStore).
func (t *tenantStore) Len() int {
	n := len(t.staged)
	if t.warm != nil {
		n++
	}
	return n
}
