package fleet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/hunter-cdb/hunter/internal/checkpoint"
)

// CheckpointFileName is the fleet snapshot file inside the checkpoint
// directory — one file, atomically replaced, always the latest barrier.
const CheckpointFileName = "fleet.ckpt"

// Fleet checkpoint section names. Tenant sections are "tenant/%04d".
const (
	sectionMeta  = "fleet-meta"
	sectionStore = "fleet-store"
)

// tenantSection names tenant ID's container section.
func tenantSection(id int) string { return fmt.Sprintf("tenant/%04d", id) }

// ckptWriter is the fleet's incremental snapshot state: a long-lived
// container writer whose sections are replaced only when their content
// changed. Unchanged tenants keep their serialized bytes and cached CRCs
// across barriers, so a 1000-tenant fleet pays per-checkpoint encoding
// cost proportional to the round's finishers, not the fleet size.
type ckptWriter struct {
	dir        string
	w          *checkpoint.Writer
	dirty      map[int]bool
	storeDirty bool
	primed     bool // writer holds all prior sections (after first write or resume)
}

func newCkptWriter(dir string) *ckptWriter {
	return &ckptWriter{dir: dir, w: checkpoint.NewWriter(), dirty: make(map[int]bool), storeDirty: true}
}

// markDirty queues a tenant result for re-encoding at the next snapshot.
func (f *Fleet) markDirty(id int) {
	if f.ckpt != nil {
		f.ckpt.dirty[id] = true
	}
}

// markStoreDirty queues the shared model store for re-encoding.
func (f *Fleet) markStoreDirty() {
	if f.ckpt != nil {
		f.ckpt.storeDirty = true
	}
}

// fleetMeta is the checkpoint's bookkeeping section. The leading fields
// are the config fingerprint: a resume refuses to continue under a config
// that would produce a different fleet run.
type fleetMeta struct {
	Tenants            int
	TenantHash         uint64
	Seed               int64
	Reuse              bool
	MaxActive          int
	QueueDepth         int
	MaxTenantBudget    time.Duration
	TotalVirtualBudget time.Duration

	Rounds      int
	Next        int
	Pool        time.Duration
	ReuseProbes int
	ReuseHits   int
	ReuseStores int
	Done        int
	Failed      int
}

// tenantHash fingerprints the tenant declaration list: any change to a
// spec would re-run different sessions, so a resume must reject it.
func tenantHash(specs []TenantSpec) uint64 {
	h := fnv.New64a()
	for _, t := range specs {
		fmt.Fprintf(h, "%d|%s|%s|%s|%d|%d|%g|%d\n",
			t.ID, t.Name, t.Dialect, t.Profile, t.Seed, t.Budget, t.Target, t.Clones)
	}
	return h.Sum64()
}

func (f *Fleet) meta() fleetMeta {
	return fleetMeta{
		Tenants:            len(f.cfg.Tenants),
		TenantHash:         tenantHash(f.cfg.Tenants),
		Seed:               f.cfg.Seed,
		Reuse:              f.cfg.Reuse,
		MaxActive:          f.cfg.Policy.MaxActive,
		QueueDepth:         f.cfg.Policy.QueueDepth,
		MaxTenantBudget:    f.cfg.Policy.MaxTenantBudget,
		TotalVirtualBudget: f.cfg.Policy.TotalVirtualBudget,
		Rounds:             f.rounds,
		Next:               f.next,
		Pool:               f.pool,
		ReuseProbes:        f.reuseProbes,
		ReuseHits:          f.reuseHits,
		ReuseStores:        f.reuseStores,
		Done:               f.prevDone,
		Failed:             f.prevFailed,
	}
}

// CheckpointPath returns the fleet's snapshot path ("" when checkpointing
// is disabled).
func (f *Fleet) CheckpointPath() string {
	if f.cfg.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(f.cfg.CheckpointDir, CheckpointFileName)
}

// writeCheckpoint atomically writes the fleet snapshot: meta always, the
// model store when it changed, and only the tenants that finished (or were
// evicted or rejected) since the last snapshot.
func (f *Fleet) writeCheckpoint() error {
	cw := f.ckpt
	if !cw.primed {
		// First snapshot: everything already recorded is dirty (includes
		// tenants rejected at admission).
		for id := range f.results {
			cw.dirty[id] = true
		}
		cw.storeDirty = true
		cw.primed = true
	}
	var mb bytes.Buffer
	if err := gob.NewEncoder(&mb).Encode(f.meta()); err != nil {
		return fmt.Errorf("fleet: encoding checkpoint meta: %w", err)
	}
	if err := cw.w.AddBytes(sectionMeta, mb.Bytes()); err != nil {
		return err
	}
	if cw.storeDirty {
		payload, err := f.store.Bytes()
		if err != nil {
			return err
		}
		if err := cw.w.AddBytes(sectionStore, payload); err != nil {
			return err
		}
	}
	ids := make([]int, 0, len(cw.dirty))
	for id := range cw.dirty {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		res, ok := f.results[id]
		if !ok {
			continue
		}
		var tb bytes.Buffer
		if err := gob.NewEncoder(&tb).Encode(res); err != nil {
			return fmt.Errorf("fleet: encoding tenant %d: %w", id, err)
		}
		if err := cw.w.AddBytes(tenantSection(id), tb.Bytes()); err != nil {
			return err
		}
	}
	if err := cw.w.WriteFile(f.CheckpointPath()); err != nil {
		return err
	}
	cw.dirty = make(map[int]bool)
	cw.storeDirty = false
	f.logf("fleet checkpoint written",
		"path", f.CheckpointPath(), "round", f.rounds, "tenants_written", len(ids))
	return nil
}

// CheckpointInfo is the resume bookkeeping a fleet snapshot carries,
// exposed for offline inspection (hunter-inspect).
type CheckpointInfo struct {
	Tenants     int
	Seed        int64
	Reuse       bool
	Rounds      int
	Next        int
	Pool        time.Duration
	Done        int
	Failed      int
	ReuseProbes int
	ReuseHits   int
	ReuseStores int
	// TenantSections counts the per-tenant container sections present;
	// StoreModels counts the models in the snapshotted shared store.
	TenantSections int
	StoreModels    int
}

// PeekCheckpoint reads a fleet snapshot's bookkeeping without building a
// fleet. Returns an error when the file is not a fleet checkpoint.
func PeekCheckpoint(path string) (CheckpointInfo, error) {
	var info CheckpointInfo
	file, err := checkpoint.ReadFile(path)
	if err != nil {
		return info, err
	}
	raw, err := file.Bytes(sectionMeta)
	if err != nil {
		return info, fmt.Errorf("fleet: not a fleet checkpoint: %w", err)
	}
	var meta fleetMeta
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&meta); err != nil {
		return info, fmt.Errorf("fleet: decoding checkpoint meta: %w", err)
	}
	info = CheckpointInfo{
		Tenants:     meta.Tenants,
		Seed:        meta.Seed,
		Reuse:       meta.Reuse,
		Rounds:      meta.Rounds,
		Next:        meta.Next,
		Pool:        meta.Pool,
		Done:        meta.Done,
		Failed:      meta.Failed,
		ReuseProbes: meta.ReuseProbes,
		ReuseHits:   meta.ReuseHits,
		ReuseStores: meta.ReuseStores,
	}
	for _, name := range file.Names() {
		if strings.HasPrefix(name, "tenant/") {
			info.TenantSections++
		}
	}
	if file.Has(sectionStore) {
		s := NewSharedStore()
		if err := file.Restore(sectionStore, s); err != nil {
			return info, err
		}
		info.StoreModels = s.Len()
	}
	return info, nil
}

// Resume rebuilds a fleet from its checkpoint and the original config. The
// config must describe the same fleet the snapshot came from (same tenant
// list, seed, reuse setting and policy); observability wiring may differ.
// The resumed fleet continues from the snapshotted round barrier and —
// because every cross-tenant effect is committed at barriers — reproduces
// the uninterrupted run's report byte for byte.
func Resume(cfg Config) (*Fleet, error) {
	f, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if f.ckpt == nil {
		return nil, fmt.Errorf("fleet: Resume needs Config.CheckpointDir")
	}
	file, err := checkpoint.ReadFile(f.CheckpointPath())
	if err != nil {
		return nil, err
	}
	raw, err := file.Bytes(sectionMeta)
	if err != nil {
		return nil, fmt.Errorf("fleet: checkpoint has no fleet meta: %w", err)
	}
	var meta fleetMeta
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&meta); err != nil {
		return nil, fmt.Errorf("fleet: decoding checkpoint meta: %w", err)
	}
	if err := checkMeta(meta, f); err != nil {
		return nil, err
	}
	if file.Has(sectionStore) {
		if err := file.Restore(sectionStore, f.store); err != nil {
			return nil, err
		}
	}
	for _, name := range file.Names() {
		if !strings.HasPrefix(name, "tenant/") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimPrefix(name, "tenant/"))
		if err != nil {
			return nil, fmt.Errorf("fleet: bad tenant section %q", name)
		}
		raw, err := file.Bytes(name)
		if err != nil {
			return nil, err
		}
		var res TenantResult
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&res); err != nil {
			return nil, fmt.Errorf("fleet: decoding %s: %w", name, err)
		}
		if id != res.ID {
			return nil, fmt.Errorf("fleet: section %q holds tenant %d", name, res.ID)
		}
		f.results[id] = &res
	}
	// Seed the incremental writer with every restored section so the next
	// snapshot re-encodes only what changes from here on.
	for _, name := range file.Names() {
		raw, _ := file.Bytes(name)
		if err := f.ckpt.w.AddBytes(name, raw); err != nil {
			return nil, err
		}
	}
	f.ckpt.dirty = make(map[int]bool)
	f.ckpt.storeDirty = false
	f.ckpt.primed = true
	f.rounds = meta.Rounds
	f.next = meta.Next
	f.pool = meta.Pool
	f.reuseProbes = meta.ReuseProbes
	f.reuseHits = meta.ReuseHits
	f.reuseStores = meta.ReuseStores
	f.prevDone = meta.Done
	f.prevFailed = meta.Failed
	f.logf("fleet resumed",
		"checkpoint", f.CheckpointPath(), "round", f.rounds, "next_tenant", f.next)
	return f, nil
}

// checkMeta verifies the resume config matches the checkpointed fleet.
func checkMeta(meta fleetMeta, f *Fleet) error {
	mismatch := func(field string, got, want any) error {
		return fmt.Errorf("fleet: checkpoint fingerprint mismatch: config %s = %v, checkpoint has %v",
			field, got, want)
	}
	if n := len(f.cfg.Tenants); n != meta.Tenants {
		return mismatch("tenant count", n, meta.Tenants)
	}
	if h := tenantHash(f.cfg.Tenants); h != meta.TenantHash {
		return mismatch("tenant list hash", h, meta.TenantHash)
	}
	if f.cfg.Seed != meta.Seed {
		return mismatch("seed", f.cfg.Seed, meta.Seed)
	}
	if f.cfg.Reuse != meta.Reuse {
		return mismatch("reuse", f.cfg.Reuse, meta.Reuse)
	}
	p := f.cfg.Policy
	if p.MaxActive != meta.MaxActive {
		return mismatch("max active", p.MaxActive, meta.MaxActive)
	}
	if p.QueueDepth != meta.QueueDepth {
		return mismatch("queue depth", p.QueueDepth, meta.QueueDepth)
	}
	if p.MaxTenantBudget != meta.MaxTenantBudget {
		return mismatch("max tenant budget", p.MaxTenantBudget, meta.MaxTenantBudget)
	}
	if p.TotalVirtualBudget != meta.TotalVirtualBudget {
		return mismatch("total virtual budget", p.TotalVirtualBudget, meta.TotalVirtualBudget)
	}
	return nil
}
