package fleet

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/telemetry"
)

// runFleet builds, runs and renders a fleet, failing the test on any
// fleet-level error.
func runFleet(t *testing.T, cfg Config) (*Fleet, []byte) {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	f.Report().Render(&buf)
	return f, buf.Bytes()
}

// TestDeterminismAcrossWorkers is the fleet determinism golden: the
// rendered fleet report must be byte-identical at 1 and 8 workers, with
// reuse on (the cross-tenant coupling is exactly what could go
// order-dependent).
func TestDeterminismAcrossWorkers(t *testing.T) {
	cfg := Config{
		Tenants: SyntheticTenants(18, 7),
		Reuse:   true,
		Seed:    7,
		Policy:  Policy{MaxActive: 6}, // several rounds, so later rounds see earlier models
	}
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	_, w1 := runFleet(t, cfg)
	parallel.SetWorkers(8)
	_, w8 := runFleet(t, cfg)
	if !bytes.Equal(w1, w8) {
		t.Fatalf("fleet report differs between 1 and 8 workers:\n--- w1 ---\n%s\n--- w8 ---\n%s", w1, w8)
	}
	if !bytes.Contains(w1, []byte("warm<-")) {
		t.Fatalf("determinism fleet saw no warm starts; the golden is vacuous:\n%s", w1)
	}
}

// TestCheckpointKillResume is the fleet durability golden: a fleet stopped
// at a round barrier and resumed from its checkpoint must reproduce the
// uninterrupted run's report byte for byte.
func TestCheckpointKillResume(t *testing.T) {
	base := Config{
		Tenants: SyntheticTenants(18, 3),
		Reuse:   true,
		Seed:    3,
		Policy:  Policy{MaxActive: 5},
	}
	golden := base
	golden.CheckpointDir = t.TempDir()
	_, want := runFleet(t, golden)

	stopped := base
	stopped.CheckpointDir = t.TempDir()
	stopped.StopAfterRounds = 2
	f, err := New(stopped)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(context.Background()); !errors.Is(err, ErrStopRequested) {
		t.Fatalf("Run with StopAfterRounds returned %v, want ErrStopRequested", err)
	}
	if f.Rounds() != 2 {
		t.Fatalf("stopped after %d rounds, want 2", f.Rounds())
	}

	resumed := stopped
	resumed.StopAfterRounds = 0
	rf, err := Resume(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if err := rf.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rf.Report().Render(&buf)
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- golden ---\n%s\n--- resumed ---\n%s", want, buf.Bytes())
	}

	// A resume under a different config must be refused.
	tampered := resumed
	tampered.Seed = 99
	if _, err := Resume(tampered); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("Resume with tampered seed: err = %v, want fingerprint mismatch", err)
	}
	tampered = resumed
	tampered.Tenants = SyntheticTenants(18, 4)
	if _, err := Resume(tampered); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("Resume with tampered tenants: err = %v, want fingerprint mismatch", err)
	}
}

// TestReuseReducesVirtualTime pins the reuse economics: with the store on,
// the fleet must report a nonzero hit rate and strictly less total virtual
// tuning time than the identical fleet with reuse off.
func TestReuseReducesVirtualTime(t *testing.T) {
	base := Config{Tenants: SyntheticTenants(24, 1), Seed: 1, Policy: Policy{MaxActive: 8}}
	off := base
	f, _ := runFleet(t, off)
	cold := f.Report()

	on := base
	on.Reuse = true
	f, _ = runFleet(t, on)
	warm := f.Report()

	if warm.ReuseHits == 0 {
		t.Fatal("reuse-enabled fleet recorded zero hits")
	}
	if warm.ReuseHitRate <= 0 || warm.ReuseHitRate > 1 {
		t.Fatalf("hit rate %v out of range", warm.ReuseHitRate)
	}
	if warm.TotalVirtualSeconds >= cold.TotalVirtualSeconds {
		t.Fatalf("reuse did not reduce total virtual time: %.0fs with vs %.0fs without",
			warm.TotalVirtualSeconds, cold.TotalVirtualSeconds)
	}
	if cold.ReuseProbes != 0 || cold.ReuseHits != 0 {
		t.Fatalf("reuse-off fleet recorded probes/hits: %+v", cold)
	}
}

// TestAdmissionControl covers the three admission policies and their edge
// cases: queue-overflow rejection, pool-exhaustion eviction (with a
// checkpoint in flight), and a tenant whose clamped budget dies mid-wave.
func TestAdmissionControl(t *testing.T) {
	t.Run("rejection", func(t *testing.T) {
		cfg := Config{
			Tenants: SyntheticTenants(10, 1),
			Seed:    1,
			Policy:  Policy{MaxActive: 4, QueueDepth: 6},
		}
		f, out := runFleet(t, cfg)
		r := f.Report()
		if r.Admitted != 6 || r.Rejected != 4 {
			t.Fatalf("admitted %d rejected %d, want 6/4", r.Admitted, r.Rejected)
		}
		for _, res := range r.TenantResults[6:] {
			if res.Status != StatusRejected || res.Err != ErrRejected.Error() {
				t.Fatalf("tenant %s: %+v, want rejected with typed error", res.Name, res)
			}
		}
		if !bytes.Contains(out, []byte("rejected")) {
			t.Fatal("report does not show rejections")
		}
	})

	t.Run("eviction during checkpoint", func(t *testing.T) {
		// A pool that covers roughly the first round only: later tenants
		// are evicted at scheduling time, while checkpoints keep being
		// written at every barrier. The evictions must land in the
		// checkpoint and survive a resume.
		cfg := Config{
			Tenants:       SyntheticTenants(12, 5),
			Seed:          5,
			Policy:        Policy{MaxActive: 4, TotalVirtualBudget: 14 * time.Hour},
			CheckpointDir: t.TempDir(),
		}
		f, _ := runFleet(t, cfg)
		r := f.Report()
		if r.Evicted == 0 {
			t.Fatalf("no tenant was evicted under a %s pool: %+v", cfg.Policy.TotalVirtualBudget, r)
		}
		for _, res := range r.TenantResults {
			if res.Status == StatusEvicted && res.Err != ErrEvicted.Error() {
				t.Fatalf("evicted tenant %s carries error %q, want %q", res.Name, res.Err, ErrEvicted.Error())
			}
		}
		// The final checkpoint must reproduce the same results, evictions
		// included, without re-running anything.
		rf, err := Resume(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := rf.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		var got, want bytes.Buffer
		rf.Report().Render(&got)
		r.Render(&want)
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("resumed finished fleet differs:\n--- want ---\n%s\n--- got ---\n%s", want.Bytes(), got.Bytes())
		}
	})

	t.Run("budget exhausted mid-wave", func(t *testing.T) {
		// Clamp every tenant to a budget smaller than a single stress wave:
		// sessions exhaust before producing one sample and fail cleanly;
		// the fleet keeps going and accounts the spent time.
		cfg := Config{
			Tenants: SyntheticTenants(4, 1),
			Seed:    1,
			Policy:  Policy{MaxActive: 2, MaxTenantBudget: time.Minute},
		}
		f, _ := runFleet(t, cfg)
		r := f.Report()
		if r.Failed != 4 || r.Done != 0 {
			t.Fatalf("done %d failed %d, want 0/4 under a 1m clamp", r.Done, r.Failed)
		}
		for _, res := range r.TenantResults {
			if res.Budget != time.Minute {
				t.Fatalf("tenant %s granted %s, want clamped 1m", res.Name, res.Budget)
			}
		}
	})
}

// TestRollups checks the fleet telemetry surface: admission counters, the
// per-tenant virtual-time histogram and per-shard store gauges.
func TestRollups(t *testing.T) {
	rec := telemetry.New()
	cfg := Config{
		Tenants:  SyntheticTenants(8, 2),
		Reuse:    true,
		Seed:     2,
		Policy:   Policy{MaxActive: 4},
		Recorder: rec,
	}
	f, _ := runFleet(t, cfg)
	r := f.Report()
	if got := rec.Counter("fleet.tenants_admitted").Value(); got != int64(r.Admitted) {
		t.Fatalf("admitted counter %d, want %d", got, r.Admitted)
	}
	if got := rec.Counter("fleet.tenants_done").Value(); got != int64(r.Done) {
		t.Fatalf("done counter %d, want %d", got, r.Done)
	}
	if got := rec.Counter("fleet.rounds").Value(); got != int64(r.Rounds) {
		t.Fatalf("rounds counter %d, want %d", got, r.Rounds)
	}
	h := rec.Histogram("fleet.tenant_virtual_seconds")
	if h.Count() != int64(r.Done+r.Failed) {
		t.Fatalf("histogram holds %d observations, want %d", h.Count(), r.Done+r.Failed)
	}
	if got := rec.Gauge("fleet.reuse_hits").Value(); got != float64(r.ReuseHits) {
		t.Fatalf("reuse_hits gauge %v, want %d", got, r.ReuseHits)
	}
	var shardTotal int
	for _, n := range f.Store().ShardSizes() {
		shardTotal += n
	}
	if shardTotal != f.Store().Len() {
		t.Fatalf("shard sizes sum to %d, store holds %d", shardTotal, f.Store().Len())
	}
}

// BenchmarkFleetSessionsPerSecond measures fleet throughput in tenant
// sessions per wall second (the BENCH_eval.json fleet entry).
func BenchmarkFleetSessionsPerSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := New(Config{Tenants: SyntheticTenants(32, 1), Reuse: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		r := f.Report()
		if r.Done == 0 {
			b.Fatal("no tenants finished")
		}
		b.ReportMetric(float64(32*b.N)/b.Elapsed().Seconds(), "sessions/s")
	}
}
