// Package cloud simulates the CDB provider's control plane the paper's
// Controller drives through the cloud API: instance types (Table 7),
// primary/secondary instance pairs, cloning a user's instance from its
// backup onto idle instances, knob deployment with restarts, the buffer
// pool warm-up function, and point-in-time recovery for stable replay.
package cloud

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/hunter-cdb/hunter/internal/chaos"
	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/sim"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// InstanceType is a cloud instance size (Table 7).
type InstanceType struct {
	Name  string
	Cores int
	RAMGB int
}

// Types lists the instance types of Table 7.
func Types() []InstanceType {
	return []InstanceType{
		{"A", 1, 2}, {"B", 4, 8}, {"C", 4, 12}, {"D", 4, 16},
		{"E", 6, 24}, {"F", 8, 32}, {"G", 8, 48}, {"H", 16, 64},
	}
}

// TypeByName looks up an instance type.
func TypeByName(name string) (InstanceType, error) {
	for _, t := range Types() {
		if t.Name == name {
			return t, nil
		}
	}
	return InstanceType{}, fmt.Errorf("cloud: unknown instance type %q", name)
}

// Resources maps an instance type onto simulated hardware. Disk capability
// scales with instance size, as cloud block storage is provisioned
// proportionally.
func (t InstanceType) Resources() simdb.Resources {
	return simdb.Resources{
		Cores:             t.Cores,
		RAMBytes:          int64(t.RAMGB) << 30,
		DiskIOPS:          2000 + 750*float64(t.Cores),
		DiskReadLatencyMs: 0.9,
		FsyncLatencyMs:    0.6,
		CoreSpeed:         1.0,
	}
}

// CustomType builds an ad-hoc instance type (the paper's PostgreSQL host
// is 8 cores / 16 GB, which is not in Table 7).
func CustomType(name string, cores, ramGB int) InstanceType {
	return InstanceType{Name: name, Cores: cores, RAMGB: ramGB}
}

// Control-plane timing constants. Together with the Table 1 stress-test
// costs in the tuner package these determine every virtual-clock charge.
const (
	// CloneTime is the one-time cost of creating a cloned CDB from the
	// user's backup.
	CloneTime = 3 * time.Minute
	// RestartTime is the extra deployment cost when a restart-required
	// knob changes.
	RestartTime = 25 * time.Second
	// PITRTime is a point-in-time recovery before a production replay.
	PITRTime = 20 * time.Second
)

// Control-plane fault sentinels. The chaos layer wraps these into the
// errors its hook points return; the tuner's supervisor classifies on
// them to pick retry-with-backoff (transient) vs re-provisioning.
var (
	// ErrTransient marks a retryable control-plane error (API throttle,
	// leader election, network blip): the same call may succeed next time.
	ErrTransient = errors.New("transient control-plane error")
	// ErrBootFailure marks an instance that failed to come up at
	// provisioning time; the provision attempt consumed no resources.
	ErrBootFailure = errors.New("instance failed to boot")
)

// IsTransient reports whether err is a retryable control-plane fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsBootFailure reports whether err is a provisioning boot failure.
func IsBootFailure(err error) bool { return errors.Is(err, ErrBootFailure) }

// Instance is one CDB: a primary/secondary pair from the user's point of
// view, a single simulated engine from the simulator's.
type Instance struct {
	ID      string
	Type    InstanceType
	Dialect simdb.Dialect
	IsClone bool

	engine   *simdb.Engine
	restarts int
	failures int
	tel      *providerTel

	// uid is the provisioning sequence number and deploySeq counts Deploy
	// calls on this instance; together they key the chaos engine's
	// deterministic fault decisions for this instance.
	uid       int64
	deploySeq int64
	chaos     *chaos.Engine
}

// Engine exposes the underlying simulated engine (tests and experiments
// use it; tuners must go through Deploy/StressTest).
func (i *Instance) Engine() *simdb.Engine { return i.engine }

// Config returns the instance's active configuration.
func (i *Instance) Config() knob.Config { return i.engine.Config() }

// Restarts returns how many restarts deployments have caused.
func (i *Instance) Restarts() int { return i.restarts }

// BootFailures returns how many deployments failed to boot.
func (i *Instance) BootFailures() int { return i.failures }

// Deploy applies a configuration, reporting whether a restart was needed
// and how long deployment took in virtual time. On boot failure the
// instance automatically recovers onto its previous configuration (the
// paper's Actor skips the workload execution and scores the configuration
// −1000).
func (i *Instance) Deploy(cfg knob.Config, baseDeploy time.Duration) (restarted bool, took time.Duration, err error) {
	seq := i.deploySeq
	i.deploySeq++
	if i.chaos.TransientDeploy(i.uid, seq) {
		// The control plane rejected the call before touching the engine:
		// no restart, no config change — the attempt still costs its base
		// deploy time.
		if i.tel != nil {
			i.tel.transients.Add(1)
			i.tel.deployDur.Observe(baseDeploy)
		}
		return false, baseDeploy, fmt.Errorf("cloud: deploy %s: %w", i.ID, ErrTransient)
	}
	restarted = knob.RequiresRestart(i.engine.Catalog(), i.engine.Config(), cfg)
	took = baseDeploy
	if restarted {
		took += RestartTime
		i.restarts++
	}
	if restarted && i.tel != nil {
		i.tel.restarts.Add(1)
	}
	if i.tel != nil {
		// Every deployment attempt is observed at the virtual cost it was
		// charged — restart time and transient rejections included.
		i.tel.deployDur.Observe(took)
	}
	if err := i.engine.Configure(cfg); err != nil {
		i.failures++
		if i.tel != nil {
			i.tel.bootFails.Add(1)
		}
		return restarted, took, err
	}
	return restarted, took, nil
}

// StressTest executes the workload once and returns performance, metrics
// and the virtual duration of the run (execution window plus buffer-pool
// warm-up, plus PITR for replayed production traces). An injected slow-I/O
// fault stretches the execution and warm-up portion by the engine's
// reported factor — the straggler shows up as a longer wave, not as a
// different measurement.
func (i *Instance) StressTest(p *workload.Profile, execWindow time.Duration) (simdb.Perf, metrics.Vector, time.Duration, error) {
	perf, mv, err := i.engine.Run(p)
	took := execWindow
	if w := i.engine.LastWarmupSeconds(); w > 0 {
		took += time.Duration(w * float64(time.Second))
	}
	if f := i.engine.LastSlowFactor(); f > 1 {
		took = time.Duration(float64(took) * f)
	}
	if p.ReplayConcurrency > 0 {
		took += PITRTime
	}
	return perf, mv, took, err
}

// Provider is the cloud control plane: it owns the idle-instance pool the
// Actors draw cloned CDBs from.
type Provider struct {
	rng      *sim.RNG
	nextID   int
	capacity int
	active   map[string]*Instance
	rec      *telemetry.Recorder
	tel      *providerTel

	// chaos is the armed fault injector (nil = perfect cloud); createSeq
	// and cloneSeq key its per-call fault decisions.
	chaos     *chaos.Engine
	createSeq int64
	cloneSeq  int64
}

// providerTel is the control plane's counter set, resolved once at
// SetRecorder. transients is only resolved once a chaos plan is armed, so
// chaos-off metric expositions are unchanged.
type providerTel struct {
	created    *telemetry.Counter
	clones     *telemetry.Counter
	denied     *telemetry.Counter
	released   *telemetry.Counter
	restarts   *telemetry.Counter
	bootFails  *telemetry.Counter
	transients *telemetry.Counter
	active     *telemetry.Gauge
	deployDur  *telemetry.Histogram // virtual knob-deployment times
}

// SetRecorder attaches the control plane (and every engine it provisions
// from now on) to a telemetry recorder. A nil recorder detaches; existing
// instances keep whatever attachment they were created with.
func (p *Provider) SetRecorder(r *telemetry.Recorder) {
	p.rec = r
	if r == nil {
		p.tel = nil
		return
	}
	p.tel = &providerTel{
		created:   r.Counter("cloud.instances_created"),
		clones:    r.Counter("cloud.clones_created"),
		denied:    r.Counter("cloud.clones_denied"),
		released:  r.Counter("cloud.instances_released"),
		restarts:  r.Counter("cloud.restarts"),
		bootFails: r.Counter("cloud.boot_failures"),
		active:    r.Gauge("cloud.instances_active"),
		deployDur: r.Histogram("cloud.deploy_seconds"),
	}
	if p.chaos != nil {
		p.tel.transients = r.Counter("cloud.transient_faults")
	}
}

// SetChaos arms (or, with nil, disarms) fault injection on the control
// plane and every currently active instance. Instances provisioned later
// inherit the injector automatically.
func (p *Provider) SetChaos(e *chaos.Engine) {
	p.chaos = e
	for _, inst := range p.active {
		inst.chaos = e
	}
	if e != nil && p.tel != nil && p.tel.transients == nil {
		p.tel.transients = p.rec.Counter("cloud.transient_faults")
	}
}

// NewProvider creates a provider with the given idle-instance capacity
// (maximum simultaneously active instances; the paper's experiments use up
// to 20 clones plus the user instance).
func NewProvider(capacity int, seed int64) *Provider {
	if capacity <= 0 {
		capacity = 64
	}
	return &Provider{rng: sim.NewRNG(seed), capacity: capacity, active: make(map[string]*Instance)}
}

// ActiveCount returns the number of instances currently provisioned.
func (p *Provider) ActiveCount() int { return len(p.active) }

// CreateInstance provisions a fresh instance of the given type and
// dialect with the default configuration.
func (p *Provider) CreateInstance(t InstanceType, d simdb.Dialect) (*Instance, error) {
	if len(p.active) >= p.capacity {
		if p.tel != nil {
			p.tel.denied.Add(1)
		}
		return nil, fmt.Errorf("cloud: resource pool exhausted (%d instances)", p.capacity)
	}
	seq := p.createSeq
	p.createSeq++
	if p.chaos.BootFailure(seq) {
		// The roll happens before the ID allocator or the seeding RNG are
		// touched, so a failed provision consumes no provider state and a
		// retry sees a fresh decision.
		if p.tel != nil {
			p.tel.bootFails.Add(1)
		}
		return nil, fmt.Errorf("cloud: provisioning %s instance: %w", t.Name, ErrBootFailure)
	}
	p.nextID++
	eng, err := simdb.NewEngine(d, t.Resources(), p.rng.Int63())
	if err != nil {
		return nil, err
	}
	eng.SetRecorder(p.rec)
	inst := &Instance{
		ID:      fmt.Sprintf("cdb-%s-%04d", t.Name, p.nextID),
		Type:    t,
		Dialect: d,
		engine:  eng,
		tel:     p.tel,
		uid:     int64(p.nextID),
		chaos:   p.chaos,
	}
	p.active[inst.ID] = inst
	if p.tel != nil {
		p.tel.created.Add(1)
		p.tel.active.Set(float64(len(p.active)))
	}
	return inst, nil
}

// Clone creates a cloned CDB from src's backup: same type, dialect, data
// and configuration. Cloning is how the Controller keeps exploration off
// the user's instance (§2.2).
func (p *Provider) Clone(src *Instance) (*Instance, error) {
	seq := p.cloneSeq
	p.cloneSeq++
	if p.chaos.TransientClone(seq) {
		if p.tel != nil {
			p.tel.transients.Add(1)
		}
		return nil, fmt.Errorf("cloud: clone of %s: %w", src.ID, ErrTransient)
	}
	c, err := p.CreateInstance(src.Type, src.Dialect)
	if err != nil {
		return nil, err
	}
	c.IsClone = true
	if p.tel != nil {
		p.tel.clones.Add(1)
	}
	if err := c.engine.Configure(src.Config()); err != nil {
		// The source config booted on identical hardware; failure here is
		// a provider bug.
		p.Release(c)
		return nil, fmt.Errorf("cloud: clone boot failed: %w", err)
	}
	return c, nil
}

// Release returns an instance to the idle pool.
func (p *Provider) Release(i *Instance) {
	delete(p.active, i.ID)
	if p.tel != nil {
		p.tel.released.Add(1)
		p.tel.active.Set(float64(len(p.active)))
	}
}

// Resize migrates an instance to a new type, keeping its configuration
// where it still boots (the instance-type change of §6.5). It returns the
// new instance; the old one is released.
func (p *Provider) Resize(i *Instance, t InstanceType) (*Instance, error) {
	n, err := p.CreateInstance(t, i.Dialect)
	if err != nil {
		return nil, err
	}
	n.IsClone = i.IsClone
	if err := n.engine.Configure(i.Config()); err != nil {
		// Keep defaults when the old configuration cannot boot on the new
		// hardware (e.g. buffer pool larger than the new RAM).
		n.failures++
	}
	p.Release(i)
	return n, nil
}

// ActiveIDs returns the sorted IDs of provisioned instances (diagnostics).
func (p *Provider) ActiveIDs() []string {
	out := make([]string, 0, len(p.active))
	for id := range p.active {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
