package cloud

import (
	"bytes"
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/chaos"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/telemetry"
)

// alwaysBootFail / alwaysTransient are deterministic worst-case profiles:
// probability-1 rolls make the hook behaviour observable without hunting
// for a seed.
func alwaysBootFail() *chaos.Engine {
	return chaos.NewEngine(1, chaos.Profile{Name: "t", BootFailProb: 1})
}

func alwaysTransientClone() *chaos.Engine {
	return chaos.NewEngine(1, chaos.Profile{Name: "t", TransientCloneProb: 1})
}

func alwaysTransientDeploy() *chaos.Engine {
	return chaos.NewEngine(1, chaos.Profile{Name: "t", TransientDeployProb: 1})
}

// TestChaosBootFailureAccounting: an injected boot failure is classified
// as ErrBootFailure, consumes no provider state (no instance, no ID, no
// RNG draw), and is tallied.
func TestChaosBootFailureAccounting(t *testing.T) {
	rec := telemetry.New()
	p := NewProvider(4, 1)
	p.SetRecorder(rec)
	p.SetChaos(alwaysBootFail())
	f, _ := TypeByName("F")

	_, err := p.CreateInstance(f, simdb.MySQL)
	if !IsBootFailure(err) {
		t.Fatalf("err = %v, want a boot failure", err)
	}
	if IsTransient(err) {
		t.Fatal("boot failure misclassified as transient")
	}
	if p.ActiveCount() != 0 {
		t.Fatalf("failed provision leaked an instance: active %d", p.ActiveCount())
	}
	if got := rec.Counter("cloud.boot_failures").Value(); got != 1 {
		t.Fatalf("boot_failures = %d, want 1", got)
	}
	if got := rec.Counter("cloud.instances_created").Value(); got != 0 {
		t.Fatalf("instances_created = %d, want 0", got)
	}

	// Disarm: the very same provider provisions normally, and the instance
	// IDs continue from 0001 — the failed attempts allocated nothing.
	p.SetChaos(nil)
	inst, err := p.CreateInstance(f, simdb.MySQL)
	if err != nil {
		t.Fatal(err)
	}
	if inst.ID != "cdb-F-0001" {
		t.Fatalf("failed provisions consumed IDs: %s", inst.ID)
	}
}

// TestChaosTransientCloneAccounting: an injected clone transient is
// retryable (IsTransient), leaks nothing, and is tallied separately from
// boot failures.
func TestChaosTransientCloneAccounting(t *testing.T) {
	rec := telemetry.New()
	p := NewProvider(4, 2)
	p.SetRecorder(rec)
	f, _ := TypeByName("F")
	user, err := p.CreateInstance(f, simdb.MySQL)
	if err != nil {
		t.Fatal(err)
	}
	p.SetChaos(alwaysTransientClone())

	_, err = p.Clone(user)
	if !IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	if IsBootFailure(err) {
		t.Fatal("transient misclassified as boot failure")
	}
	if p.ActiveCount() != 1 {
		t.Fatalf("failed clone leaked: active %d, want 1", p.ActiveCount())
	}
	if got := rec.Counter("cloud.transient_faults").Value(); got != 1 {
		t.Fatalf("transient_faults = %d, want 1", got)
	}
	if got := rec.Counter("cloud.clones_created").Value(); got != 0 {
		t.Fatalf("clones_created = %d, want 0", got)
	}

	p.SetChaos(nil)
	c, err := p.Clone(user)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsClone {
		t.Fatal("clone not marked")
	}
}

// TestChaosTransientDeploy: a deploy transient costs the base deploy time
// but touches neither the engine's configuration nor the restart counter,
// and a later retry of the same deploy can succeed.
func TestChaosTransientDeploy(t *testing.T) {
	p := NewProvider(2, 3)
	f, _ := TypeByName("F")
	inst, err := p.CreateInstance(f, simdb.MySQL)
	if err != nil {
		t.Fatal(err)
	}
	before := inst.Config()
	cfg := inst.Config()
	cfg["innodb_buffer_pool_size"] = 8 << 30

	// Probability-1 transients: every deploy fails, but each failure is a
	// fresh deterministic roll keyed by (uid, deploySeq).
	p.SetChaos(alwaysTransientDeploy())
	restarted, took, err := inst.Deploy(cfg, 21*time.Second)
	if !IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	if restarted || took != 21*time.Second {
		t.Fatalf("transient deploy: restarted=%v took=%v", restarted, took)
	}
	if inst.Restarts() != 0 {
		t.Fatal("transient deploy counted a restart")
	}
	if got := inst.Config()["innodb_buffer_pool_size"]; got != before["innodb_buffer_pool_size"] {
		t.Fatal("transient deploy changed the configuration")
	}

	p.SetChaos(nil)
	restarted, _, err = inst.Deploy(cfg, 21*time.Second)
	if err != nil || !restarted {
		t.Fatalf("retry after transient: restarted=%v err=%v", restarted, err)
	}
	if got := inst.Config()["innodb_buffer_pool_size"]; got != 8<<30 {
		t.Fatal("retried deploy did not apply")
	}
}

// TestChaosDecisionsSurviveSnapshot: uid/deploySeq and the provider's
// create/clone sequence counters are persisted, so a restored provider
// continues the exact fault-decision streams — the checkpoint/resume
// determinism contract at the cloud layer.
func TestChaosDecisionsSurviveSnapshot(t *testing.T) {
	mk := func() (*Provider, *Instance) {
		e := chaos.NewEngine(77, chaos.Profile{Name: "t", TransientDeployProb: 0.5, TransientCloneProb: 0.5})
		p := NewProvider(8, 4)
		p.SetChaos(e)
		f, _ := TypeByName("F")
		user, err := p.CreateInstance(f, simdb.MySQL)
		if err != nil {
			t.Fatal(err)
		}
		return p, user
	}

	// Reference run: a few deploys and clones straight through.
	pRef, userRef := mk()
	cfg := userRef.Config()
	cfg["innodb_io_capacity"] = 8000
	var wantDeploy []bool
	var wantClone []bool
	for k := 0; k < 8; k++ {
		_, _, err := userRef.Deploy(cfg, time.Second)
		wantDeploy = append(wantDeploy, IsTransient(err))
		_, err = pRef.Clone(userRef)
		wantClone = append(wantClone, IsTransient(err))
	}

	// Snapshot after provisioning, restore into a fresh provider, re-arm
	// the same injector, and replay: the decision streams must match.
	pA, userA := mk()
	var snap bytes.Buffer
	if err := pA.SnapshotTo(&snap); err != nil {
		t.Fatal(err)
	}
	pB := NewProvider(8, 4)
	pB.SetChaos(chaos.NewEngine(77, chaos.Profile{Name: "t", TransientDeployProb: 0.5, TransientCloneProb: 0.5}))
	if err := pB.RestoreFrom(&snap); err != nil {
		t.Fatal(err)
	}
	userB, ok := pB.Instance(userA.ID)
	if !ok {
		t.Fatal("restored provider lost the instance")
	}
	for k := 0; k < 8; k++ {
		_, _, err := userB.Deploy(cfg, time.Second)
		if IsTransient(err) != wantDeploy[k] {
			t.Fatalf("deploy decision %d diverged after restore", k)
		}
		_, err = pB.Clone(userB)
		if IsTransient(err) != wantClone[k] {
			t.Fatalf("clone decision %d diverged after restore", k)
		}
	}
}
