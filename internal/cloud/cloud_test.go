package cloud

import (
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/workload"
)

func TestTable7InstanceTypes(t *testing.T) {
	want := map[string][2]int{
		"A": {1, 2}, "B": {4, 8}, "C": {4, 12}, "D": {4, 16},
		"E": {6, 24}, "F": {8, 32}, "G": {8, 48}, "H": {16, 64},
	}
	types := Types()
	if len(types) != 8 {
		t.Fatalf("%d instance types, want 8", len(types))
	}
	for _, it := range types {
		w, ok := want[it.Name]
		if !ok {
			t.Fatalf("unexpected type %s", it.Name)
		}
		if it.Cores != w[0] || it.RAMGB != w[1] {
			t.Fatalf("type %s = %d cores / %d GB, want %v", it.Name, it.Cores, it.RAMGB, w)
		}
	}
	if _, err := TypeByName("Z"); err == nil {
		t.Fatal("unknown type should error")
	}
	f, err := TypeByName("F")
	if err != nil || f.Cores != 8 {
		t.Fatalf("TypeByName(F) = %+v, %v", f, err)
	}
}

func TestResourcesScaleWithSize(t *testing.T) {
	a, _ := TypeByName("A")
	h, _ := TypeByName("H")
	ra, rh := a.Resources(), h.Resources()
	if ra.DiskIOPS >= rh.DiskIOPS {
		t.Fatal("bigger instances should have more disk capability")
	}
	if err := ra.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateAndClone(t *testing.T) {
	p := NewProvider(4, 1)
	f, _ := TypeByName("F")
	user, err := p.CreateInstance(f, simdb.MySQL)
	if err != nil {
		t.Fatal(err)
	}
	// Deploy a custom config, then clone: the clone must inherit it.
	cfg := knob.MySQL().Defaults()
	cfg["innodb_buffer_pool_size"] = 4 << 30
	if _, _, err := user.Deploy(cfg, 21*time.Second); err != nil {
		t.Fatal(err)
	}
	c, err := p.Clone(user)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsClone {
		t.Fatal("clone not marked")
	}
	if got := c.Config()["innodb_buffer_pool_size"]; got != 4<<30 {
		t.Fatalf("clone config not inherited: %v", got)
	}
	if c.ID == user.ID {
		t.Fatal("clone shares the user's ID")
	}
}

func TestProviderCapacity(t *testing.T) {
	p := NewProvider(2, 2)
	f, _ := TypeByName("B")
	if _, err := p.CreateInstance(f, simdb.MySQL); err != nil {
		t.Fatal(err)
	}
	i2, err := p.CreateInstance(f, simdb.MySQL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateInstance(f, simdb.MySQL); err == nil {
		t.Fatal("pool exhaustion should error")
	}
	p.Release(i2)
	if _, err := p.CreateInstance(f, simdb.MySQL); err != nil {
		t.Fatalf("release should free capacity: %v", err)
	}
	if p.ActiveCount() != 2 {
		t.Fatalf("active %d, want 2", p.ActiveCount())
	}
	if len(p.ActiveIDs()) != 2 {
		t.Fatal("ActiveIDs inconsistent")
	}
}

func TestDeployRestartDetection(t *testing.T) {
	p := NewProvider(2, 3)
	f, _ := TypeByName("F")
	inst, _ := p.CreateInstance(f, simdb.MySQL)

	dyn := inst.Config()
	dyn["innodb_io_capacity"] = 8000
	restarted, took, err := inst.Deploy(dyn, 21*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if restarted || took != 21*time.Second {
		t.Fatalf("dynamic deploy: restarted=%v took=%v", restarted, took)
	}

	rst := inst.Config()
	rst["innodb_buffer_pool_size"] = 8 << 30
	restarted, took, err = inst.Deploy(rst, 21*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !restarted || took != 21*time.Second+RestartTime {
		t.Fatalf("restart deploy: restarted=%v took=%v", restarted, took)
	}
	if inst.Restarts() != 1 {
		t.Fatalf("restarts = %d", inst.Restarts())
	}
}

func TestDeployBootFailureRecovers(t *testing.T) {
	p := NewProvider(2, 4)
	f, _ := TypeByName("F")
	inst, _ := p.CreateInstance(f, simdb.MySQL)
	bad := inst.Config()
	bad["innodb_buffer_pool_size"] = 63 << 30 // exceeds 32 GB RAM
	if _, _, err := inst.Deploy(bad, time.Second); err == nil {
		t.Fatal("expected boot failure")
	}
	if inst.BootFailures() != 1 {
		t.Fatalf("failures = %d", inst.BootFailures())
	}
	// Instance still serves with old config.
	perf, mv, took, err := inst.StressTest(workload.SysbenchRO(), 142*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if perf.ThroughputTPS <= 0 || len(mv) == 0 || took < 142*time.Second {
		t.Fatalf("stress test after failed deploy broken: %+v %v", perf, took)
	}
}

func TestStressTestChargesPITRForReplay(t *testing.T) {
	p := NewProvider(2, 5)
	d, _ := TypeByName("D")
	inst, _ := p.CreateInstance(d, simdb.MySQL)
	prod := workload.Production()
	_, _, took, err := inst.StressTest(prod, 142*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if took < 142*time.Second+PITRTime {
		t.Fatalf("replay run should include PITR: %v", took)
	}
}

func TestResize(t *testing.T) {
	p := NewProvider(4, 6)
	f, _ := TypeByName("F")
	inst, _ := p.CreateInstance(f, simdb.MySQL)
	cfg := inst.Config()
	cfg["innodb_buffer_pool_size"] = 24 << 30
	if _, _, err := inst.Deploy(cfg, time.Second); err != nil {
		t.Fatal(err)
	}
	// Downsize to B (8 GB): the 24 GB pool cannot boot; resize keeps the
	// instance alive on defaults.
	b, _ := TypeByName("B")
	small, err := p.Resize(inst, b)
	if err != nil {
		t.Fatal(err)
	}
	if small.Type.Name != "B" {
		t.Fatalf("resized to %s", small.Type.Name)
	}
	if small.BootFailures() != 1 {
		t.Fatal("incompatible config should have been recorded as a boot failure")
	}
	if _, _, _, err := small.StressTest(workload.SysbenchRO(), time.Second); err != nil {
		t.Fatalf("resized instance should serve: %v", err)
	}
	// Upsize preserves the config.
	h, _ := TypeByName("H")
	bigger, err := p.Resize(small, h)
	if err != nil {
		t.Fatal(err)
	}
	if bigger.Type.Name != "H" {
		t.Fatal("resize to H failed")
	}
}

func TestCustomType(t *testing.T) {
	pg := CustomType("pg-host", 8, 16)
	if pg.Cores != 8 || pg.RAMGB != 16 {
		t.Fatal("custom type wrong")
	}
	if err := pg.Resources().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneCapacityExhaustion(t *testing.T) {
	p := NewProvider(1, 7)
	f, _ := TypeByName("F")
	user, err := p.CreateInstance(f, simdb.MySQL)
	if err != nil {
		t.Fatal(err)
	}
	// The pool is full: cloning the user instance must fail without
	// leaking a half-provisioned instance.
	if _, err := p.Clone(user); err == nil {
		t.Fatal("clone beyond capacity should error")
	}
	if p.ActiveCount() != 1 {
		t.Fatalf("failed clone leaked an instance: active %d, want 1", p.ActiveCount())
	}
	// Freeing the user instance makes cloning... impossible (the source is
	// gone), but capacity-wise a fresh create must succeed again.
	p.Release(user)
	if _, err := p.CreateInstance(f, simdb.MySQL); err != nil {
		t.Fatalf("release should free capacity: %v", err)
	}
}

func TestResizeSmallerRAMKeepsDefaults(t *testing.T) {
	p := NewProvider(4, 8)
	f, _ := TypeByName("F")
	inst, _ := p.CreateInstance(f, simdb.MySQL)
	def := knob.MySQL().Defaults()["innodb_buffer_pool_size"]
	cfg := inst.Config()
	cfg["innodb_buffer_pool_size"] = 24 << 30
	if _, _, err := inst.Deploy(cfg, time.Second); err != nil {
		t.Fatal(err)
	}
	a, _ := TypeByName("A") // 2 GB RAM: the 24 GB pool cannot boot
	small, err := p.Resize(inst, a)
	if err != nil {
		t.Fatal(err)
	}
	if got := small.Config()["innodb_buffer_pool_size"]; got != def {
		t.Fatalf("downsized instance should fall back to the default pool size %v, got %v", def, got)
	}
	if small.BootFailures() != 1 {
		t.Fatalf("incompatible config must count as a boot failure, got %d", small.BootFailures())
	}
	// The old instance was released as part of the migration.
	if p.ActiveCount() != 1 {
		t.Fatalf("resize leaked the old instance: active %d, want 1", p.ActiveCount())
	}
	if _, _, _, err := small.StressTest(workload.SysbenchRO(), time.Second); err != nil {
		t.Fatalf("downsized instance should serve on defaults: %v", err)
	}
}

func TestActiveIDsSortedOrder(t *testing.T) {
	p := NewProvider(8, 9)
	f, _ := TypeByName("F")
	b, _ := TypeByName("B")
	// Mixed types so IDs differ in more than the counter suffix.
	for _, it := range []InstanceType{f, b, f, b} {
		if _, err := p.CreateInstance(it, simdb.MySQL); err != nil {
			t.Fatal(err)
		}
	}
	ids := p.ActiveIDs()
	if len(ids) != 4 {
		t.Fatalf("ActiveIDs returned %d ids, want 4", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("ActiveIDs not strictly sorted: %v", ids)
		}
	}
	want := []string{"cdb-B-0002", "cdb-B-0004", "cdb-F-0001", "cdb-F-0003"}
	for i, w := range want {
		if ids[i] != w {
			t.Fatalf("ActiveIDs = %v, want %v", ids, want)
		}
	}
}
