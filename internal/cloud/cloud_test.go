package cloud

import (
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/workload"
)

func TestTable7InstanceTypes(t *testing.T) {
	want := map[string][2]int{
		"A": {1, 2}, "B": {4, 8}, "C": {4, 12}, "D": {4, 16},
		"E": {6, 24}, "F": {8, 32}, "G": {8, 48}, "H": {16, 64},
	}
	types := Types()
	if len(types) != 8 {
		t.Fatalf("%d instance types, want 8", len(types))
	}
	for _, it := range types {
		w, ok := want[it.Name]
		if !ok {
			t.Fatalf("unexpected type %s", it.Name)
		}
		if it.Cores != w[0] || it.RAMGB != w[1] {
			t.Fatalf("type %s = %d cores / %d GB, want %v", it.Name, it.Cores, it.RAMGB, w)
		}
	}
	if _, err := TypeByName("Z"); err == nil {
		t.Fatal("unknown type should error")
	}
	f, err := TypeByName("F")
	if err != nil || f.Cores != 8 {
		t.Fatalf("TypeByName(F) = %+v, %v", f, err)
	}
}

func TestResourcesScaleWithSize(t *testing.T) {
	a, _ := TypeByName("A")
	h, _ := TypeByName("H")
	ra, rh := a.Resources(), h.Resources()
	if ra.DiskIOPS >= rh.DiskIOPS {
		t.Fatal("bigger instances should have more disk capability")
	}
	if err := ra.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateAndClone(t *testing.T) {
	p := NewProvider(4, 1)
	f, _ := TypeByName("F")
	user, err := p.CreateInstance(f, simdb.MySQL)
	if err != nil {
		t.Fatal(err)
	}
	// Deploy a custom config, then clone: the clone must inherit it.
	cfg := knob.MySQL().Defaults()
	cfg["innodb_buffer_pool_size"] = 4 << 30
	if _, _, err := user.Deploy(cfg, 21*time.Second); err != nil {
		t.Fatal(err)
	}
	c, err := p.Clone(user)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsClone {
		t.Fatal("clone not marked")
	}
	if got := c.Config()["innodb_buffer_pool_size"]; got != 4<<30 {
		t.Fatalf("clone config not inherited: %v", got)
	}
	if c.ID == user.ID {
		t.Fatal("clone shares the user's ID")
	}
}

func TestProviderCapacity(t *testing.T) {
	p := NewProvider(2, 2)
	f, _ := TypeByName("B")
	if _, err := p.CreateInstance(f, simdb.MySQL); err != nil {
		t.Fatal(err)
	}
	i2, err := p.CreateInstance(f, simdb.MySQL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateInstance(f, simdb.MySQL); err == nil {
		t.Fatal("pool exhaustion should error")
	}
	p.Release(i2)
	if _, err := p.CreateInstance(f, simdb.MySQL); err != nil {
		t.Fatalf("release should free capacity: %v", err)
	}
	if p.ActiveCount() != 2 {
		t.Fatalf("active %d, want 2", p.ActiveCount())
	}
	if len(p.ActiveIDs()) != 2 {
		t.Fatal("ActiveIDs inconsistent")
	}
}

func TestDeployRestartDetection(t *testing.T) {
	p := NewProvider(2, 3)
	f, _ := TypeByName("F")
	inst, _ := p.CreateInstance(f, simdb.MySQL)

	dyn := inst.Config()
	dyn["innodb_io_capacity"] = 8000
	restarted, took, err := inst.Deploy(dyn, 21*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if restarted || took != 21*time.Second {
		t.Fatalf("dynamic deploy: restarted=%v took=%v", restarted, took)
	}

	rst := inst.Config()
	rst["innodb_buffer_pool_size"] = 8 << 30
	restarted, took, err = inst.Deploy(rst, 21*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !restarted || took != 21*time.Second+RestartTime {
		t.Fatalf("restart deploy: restarted=%v took=%v", restarted, took)
	}
	if inst.Restarts() != 1 {
		t.Fatalf("restarts = %d", inst.Restarts())
	}
}

func TestDeployBootFailureRecovers(t *testing.T) {
	p := NewProvider(2, 4)
	f, _ := TypeByName("F")
	inst, _ := p.CreateInstance(f, simdb.MySQL)
	bad := inst.Config()
	bad["innodb_buffer_pool_size"] = 63 << 30 // exceeds 32 GB RAM
	if _, _, err := inst.Deploy(bad, time.Second); err == nil {
		t.Fatal("expected boot failure")
	}
	if inst.BootFailures() != 1 {
		t.Fatalf("failures = %d", inst.BootFailures())
	}
	// Instance still serves with old config.
	perf, mv, took, err := inst.StressTest(workload.SysbenchRO(), 142*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if perf.ThroughputTPS <= 0 || len(mv) == 0 || took < 142*time.Second {
		t.Fatalf("stress test after failed deploy broken: %+v %v", perf, took)
	}
}

func TestStressTestChargesPITRForReplay(t *testing.T) {
	p := NewProvider(2, 5)
	d, _ := TypeByName("D")
	inst, _ := p.CreateInstance(d, simdb.MySQL)
	prod := workload.Production()
	_, _, took, err := inst.StressTest(prod, 142*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if took < 142*time.Second+PITRTime {
		t.Fatalf("replay run should include PITR: %v", took)
	}
}

func TestResize(t *testing.T) {
	p := NewProvider(4, 6)
	f, _ := TypeByName("F")
	inst, _ := p.CreateInstance(f, simdb.MySQL)
	cfg := inst.Config()
	cfg["innodb_buffer_pool_size"] = 24 << 30
	if _, _, err := inst.Deploy(cfg, time.Second); err != nil {
		t.Fatal(err)
	}
	// Downsize to B (8 GB): the 24 GB pool cannot boot; resize keeps the
	// instance alive on defaults.
	b, _ := TypeByName("B")
	small, err := p.Resize(inst, b)
	if err != nil {
		t.Fatal(err)
	}
	if small.Type.Name != "B" {
		t.Fatalf("resized to %s", small.Type.Name)
	}
	if small.BootFailures() != 1 {
		t.Fatal("incompatible config should have been recorded as a boot failure")
	}
	if _, _, _, err := small.StressTest(workload.SysbenchRO(), time.Second); err != nil {
		t.Fatalf("resized instance should serve: %v", err)
	}
	// Upsize preserves the config.
	h, _ := TypeByName("H")
	bigger, err := p.Resize(small, h)
	if err != nil {
		t.Fatal(err)
	}
	if bigger.Type.Name != "H" {
		t.Fatal("resize to H failed")
	}
}

func TestCustomType(t *testing.T) {
	pg := CustomType("pg-host", 8, 16)
	if pg.Cores != 8 || pg.RAMGB != 16 {
		t.Fatal("custom type wrong")
	}
	if err := pg.Resources().Validate(); err != nil {
		t.Fatal(err)
	}
}
