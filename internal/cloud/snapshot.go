package cloud

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"github.com/hunter-cdb/hunter/internal/sim"
	"github.com/hunter-cdb/hunter/internal/simdb"
)

// instanceState is one provisioned CDB in portable form, its engine nested
// as an opaque engine snapshot.
type instanceState struct {
	ID        string
	Type      InstanceType
	Dialect   simdb.Dialect
	IsClone   bool
	Restarts  int
	Failures  int
	UID       int64
	DeploySeq int64
	Engine    []byte
}

// providerState is the control plane's durable state: the ID allocator,
// capacity, the RNG that seeds new engines, and every active instance
// (sorted by ID for a canonical encoding).
type providerState struct {
	RNG       sim.RNGState
	NextID    int
	Capacity  int
	CreateSeq int64
	CloneSeq  int64
	Instances []instanceState
}

// SnapshotTo serializes the provider and its whole fleet
// (checkpoint.Snapshotter).
func (p *Provider) SnapshotTo(w io.Writer) error {
	st := providerState{
		RNG: p.rng.State(), NextID: p.nextID, Capacity: p.capacity,
		CreateSeq: p.createSeq, CloneSeq: p.cloneSeq,
	}
	ids := make([]string, 0, len(p.active))
	for id := range p.active {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		inst := p.active[id]
		var eng bytes.Buffer
		if err := inst.engine.SnapshotTo(&eng); err != nil {
			return fmt.Errorf("cloud: instance %s: %w", id, err)
		}
		st.Instances = append(st.Instances, instanceState{
			ID: inst.ID, Type: inst.Type, Dialect: inst.Dialect, IsClone: inst.IsClone,
			Restarts: inst.restarts, Failures: inst.failures,
			UID: inst.uid, DeploySeq: inst.deploySeq, Engine: eng.Bytes(),
		})
	}
	return gob.NewEncoder(w).Encode(st)
}

// RestoreFrom rebuilds the fleet from a state written by SnapshotTo
// (checkpoint.Restorer). The provider keeps its telemetry attachment; on
// error it is unchanged.
func (p *Provider) RestoreFrom(r io.Reader) error {
	var st providerState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	if st.Capacity < 1 || len(st.Instances) > st.Capacity {
		return fmt.Errorf("cloud: snapshot has %d instances, capacity %d", len(st.Instances), st.Capacity)
	}
	rng := sim.NewRNG(0)
	if err := rng.SetState(st.RNG); err != nil {
		return err
	}
	active := make(map[string]*Instance, len(st.Instances))
	for _, is := range st.Instances {
		if _, dup := active[is.ID]; dup {
			return fmt.Errorf("cloud: snapshot has duplicate instance %s", is.ID)
		}
		// A throwaway seed: the engine's RNG is overwritten by its snapshot.
		eng, err := simdb.NewEngine(is.Dialect, is.Type.Resources(), 0)
		if err != nil {
			return fmt.Errorf("cloud: rebuilding instance %s: %w", is.ID, err)
		}
		if err := eng.RestoreFrom(bytes.NewReader(is.Engine)); err != nil {
			return fmt.Errorf("cloud: restoring instance %s: %w", is.ID, err)
		}
		eng.SetRecorder(p.rec)
		active[is.ID] = &Instance{
			ID: is.ID, Type: is.Type, Dialect: is.Dialect, IsClone: is.IsClone,
			engine: eng, restarts: is.Restarts, failures: is.Failures, tel: p.tel,
			uid: is.UID, deploySeq: is.DeploySeq, chaos: p.chaos,
		}
	}
	p.rng = rng
	p.nextID = st.NextID
	p.capacity = st.Capacity
	p.createSeq = st.CreateSeq
	p.cloneSeq = st.CloneSeq
	p.active = active
	if p.tel != nil {
		p.tel.active.Set(float64(len(p.active)))
	}
	return nil
}

// Instance returns an active instance by ID (sessions reconnect their
// user/clone handles after a restore).
func (p *Provider) Instance(id string) (*Instance, bool) {
	i, ok := p.active[id]
	return i, ok
}
