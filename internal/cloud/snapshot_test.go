package cloud

import (
	"bytes"
	"testing"

	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// TestProviderSnapshotRoundTrip checkpoints a provider with a live fleet
// and verifies the restored fleet continues identically: same instance
// identities, same engine measurement streams, same ID allocator.
func TestProviderSnapshotRoundTrip(t *testing.T) {
	p := NewProvider(8, 99)
	ft, err := TypeByName("F")
	if err != nil {
		t.Fatal(err)
	}
	user, err := p.CreateInstance(ft, simdb.MySQL)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := p.Clone(user)
	if err != nil {
		t.Fatal(err)
	}
	wl := workload.TPCC()
	if _, _, _, err := clone.StressTest(wl, 0); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := p.SnapshotTo(&buf); err != nil {
		t.Fatalf("SnapshotTo: %v", err)
	}
	q := NewProvider(1, 0)
	if err := q.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("RestoreFrom: %v", err)
	}
	if q.ActiveCount() != p.ActiveCount() {
		t.Fatalf("fleet size %d != %d", q.ActiveCount(), p.ActiveCount())
	}
	qClone, ok := q.Instance(clone.ID)
	if !ok {
		t.Fatalf("instance %s missing after restore", clone.ID)
	}
	if !qClone.IsClone || qClone.Type.Name != clone.Type.Name {
		t.Fatalf("instance identity lost: %+v", qClone)
	}

	// Engine streams must continue in lockstep.
	for i := 0; i < 3; i++ {
		pa, _, _, err1 := clone.StressTest(wl, 0)
		pb, _, _, err2 := qClone.StressTest(wl, 0)
		if err1 != nil || err2 != nil {
			t.Fatalf("stress %d: %v / %v", i, err1, err2)
		}
		if pa != pb {
			t.Fatalf("stress %d diverged: %+v != %+v", i, pa, pb)
		}
	}

	// The ID allocator and provider RNG must continue in lockstep too: the
	// next instance created on each side must be identical.
	na, err1 := p.CreateInstance(ft, simdb.MySQL)
	nb, err2 := q.CreateInstance(ft, simdb.MySQL)
	if err1 != nil || err2 != nil {
		t.Fatalf("create: %v / %v", err1, err2)
	}
	if na.ID != nb.ID {
		t.Fatalf("next instance ID %s != %s", na.ID, nb.ID)
	}
	pa, _, _, _ := na.StressTest(wl, 0)
	pb, _, _, _ := nb.StressTest(wl, 0)
	if pa != pb {
		t.Fatalf("fresh instance streams diverged: %+v != %+v", pa, pb)
	}
}

// TestProviderRestoreRejectsBad checks garbage is refused without touching
// the provider.
func TestProviderRestoreRejectsBad(t *testing.T) {
	p := NewProvider(4, 5)
	ft, _ := TypeByName("A")
	if _, err := p.CreateInstance(ft, simdb.MySQL); err != nil {
		t.Fatal(err)
	}
	if err := p.RestoreFrom(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if p.ActiveCount() != 1 {
		t.Fatalf("failed restore mutated the fleet: %d instances", p.ActiveCount())
	}
}
