package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzDecode drives arbitrary bytes through the container parser. The
// invariants: never panic, and anything that decodes successfully must
// re-encode to a container that decodes to the same sections (the format is
// canonical).
func FuzzDecode(f *testing.F) {
	w := NewWriter()
	w.AddBytes("meta", []byte(`{"wave":3}`))
	w.AddBytes("rng", bytes.Repeat([]byte{0xab}, 64))
	w.AddBytes("empty", nil)
	valid := w.Encode()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(valid[:len(valid)/2])
	mutant := append([]byte(nil), valid...)
	mutant[len(Magic)+5] ^= 0x01
	f.Add(mutant)

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := Decode(data)
		if err != nil {
			return
		}
		re := NewWriter()
		for _, name := range ck.Names() {
			p, err := ck.Bytes(name)
			if err != nil {
				t.Fatalf("decoded file lost section %q: %v", name, err)
			}
			if err := re.AddBytes(name, p); err != nil {
				t.Fatalf("re-adding section %q: %v", name, err)
			}
		}
		ck2, err := Decode(re.Encode())
		if err != nil {
			t.Fatalf("re-encoded container does not decode: %v", err)
		}
		names1, names2 := ck.Names(), ck2.Names()
		if len(names1) != len(names2) {
			t.Fatalf("section count changed: %v vs %v", names1, names2)
		}
		for i, name := range names1 {
			if names2[i] != name {
				t.Fatalf("section order changed: %v vs %v", names1, names2)
			}
			p1, _ := ck.Bytes(name)
			p2, _ := ck2.Bytes(name)
			if !bytes.Equal(p1, p2) {
				t.Fatalf("section %q payload changed across re-encode", name)
			}
		}
	})
}
