package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// gobBox is a minimal Snapshotter/Restorer for the interface round trip.
type gobBox struct {
	Values []float64
	Label  string
}

func (b *gobBox) SnapshotTo(w io.Writer) error  { return gob.NewEncoder(w).Encode(b) }
func (b *gobBox) RestoreFrom(r io.Reader) error { return gob.NewDecoder(r).Decode(b) }

func sampleFile(t *testing.T) []byte {
	t.Helper()
	w := NewWriter()
	if err := w.AddBytes("meta", []byte(`{"version":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.AddBytes("empty", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Add("model", &gobBox{Values: []float64{1.5, -2.25, 0}, Label: "actor"}); err != nil {
		t.Fatal(err)
	}
	return w.Encode()
}

func TestRoundTrip(t *testing.T) {
	data := sampleFile(t)
	f, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got := f.Names(); len(got) != 3 || got[0] != "meta" || got[1] != "empty" || got[2] != "model" {
		t.Fatalf("Names = %v", got)
	}
	meta, err := f.Bytes("meta")
	if err != nil || string(meta) != `{"version":1}` {
		t.Fatalf("meta = %q, %v", meta, err)
	}
	if p, err := f.Bytes("empty"); err != nil || len(p) != 0 {
		t.Fatalf("empty = %v, %v", p, err)
	}
	var box gobBox
	if err := f.Restore("model", &box); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if box.Label != "actor" || len(box.Values) != 3 || box.Values[1] != -2.25 {
		t.Fatalf("restored box = %+v", box)
	}
	if _, err := f.Bytes("missing"); !errors.Is(err, ErrNoSection) {
		t.Fatalf("missing section: err = %v, want ErrNoSection", err)
	}
}

func TestDuplicateAddReplaces(t *testing.T) {
	w := NewWriter()
	if err := w.AddBytes("a", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := w.AddBytes("a", []byte("new")); err != nil {
		t.Fatal(err)
	}
	f, err := Decode(w.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := f.Bytes("a"); string(p) != "new" {
		t.Fatalf("payload = %q, want new", p)
	}
	if n := f.Names(); len(n) != 1 {
		t.Fatalf("sections = %v, want one", n)
	}
}

func TestBadMagic(t *testing.T) {
	data := sampleFile(t)
	data[0] ^= 0xff
	if _, err := Decode(data); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := Decode([]byte("short")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("tiny file: err = %v, want ErrBadMagic", err)
	}
}

func TestWrongVersion(t *testing.T) {
	data := sampleFile(t)
	binary.BigEndian.PutUint32(data[len(Magic):], Version+7)
	// Version is covered by the table CRC, so also fix that up to prove the
	// version check itself fires (not just the checksum).
	fixTableCRC(t, data)
	_, err := Decode(data)
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
	if !strings.Contains(err.Error(), "v8") || !strings.Contains(err.Error(), "v1") {
		t.Fatalf("error %q should name both versions", err)
	}
}

// fixTableCRC recomputes the table checksum after a deliberate header edit.
func fixTableCRC(t *testing.T, data []byte) {
	t.Helper()
	// Re-encode by decoding structure manually: find table end by walking.
	off := len(Magic) + 8
	count := binary.BigEndian.Uint32(data[len(Magic)+4:])
	for i := uint32(0); i < count; i++ {
		nameLen := int(binary.BigEndian.Uint16(data[off:]))
		off += 2 + nameLen + 12
	}
	crc := crc32.ChecksumIEEE(data[:off])
	binary.BigEndian.PutUint32(data[off:], crc)
}

func TestTruncations(t *testing.T) {
	data := sampleFile(t)
	// Every strict prefix must be rejected, never decoded.
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded successfully", cut, len(data))
		}
	}
	// Trailing garbage is corruption too.
	if _, err := Decode(append(append([]byte(nil), data...), 0x00)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: want ErrCorrupt")
	}
}

func TestBitFlips(t *testing.T) {
	data := sampleFile(t)
	// Flip one bit in every byte position; all mutants must be rejected
	// (any surviving flip would be in a section we could silently restore).
	for i := range data {
		mutant := append([]byte(nil), data...)
		mutant[i] ^= 0x10
		if bytes.Equal(mutant, data) {
			continue
		}
		if _, err := Decode(mutant); err == nil {
			t.Fatalf("bit flip at byte %d decoded successfully", i)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "ck.bin")
	w := NewWriter()
	if err := w.AddBytes("x", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	f, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if p, _ := f.Bytes("x"); string(p) != "payload" {
		t.Fatalf("payload = %q", p)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the checkpoint", len(entries))
	}
	// Overwrite goes through the same atomic path.
	if err := w.AddBytes("x", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := f.Bytes("x"); string(p) != "v2" {
		t.Fatalf("payload after overwrite = %q", p)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Fatal("reading a missing file succeeded")
	}
}

func TestSectionNameLimits(t *testing.T) {
	w := NewWriter()
	if err := w.AddBytes("", nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := w.AddBytes(strings.Repeat("n", maxNameLen+1), nil); err == nil {
		t.Fatal("oversized name accepted")
	}
}
