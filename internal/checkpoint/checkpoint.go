// Package checkpoint implements the durable snapshot format for tuning
// sessions: a versioned, self-describing binary container of named
// sections, each integrity-protected by a CRC32, written atomically.
//
// File layout (all integers big-endian):
//
//	[8]  magic "HTRCKPT1"
//	[4]  format version (uint32)
//	[4]  section count (uint32)
//	per section, in order:
//	     [2] name length (uint16)
//	     [n] name (UTF-8)
//	     [8] payload length (uint64)
//	     [4] payload CRC32 (IEEE)
//	[4]  table CRC32 over every byte above
//	then the payloads, concatenated in table order, nothing after.
//
// The reader is fail-closed: magic, version, table shape, table CRC and
// every payload CRC are all verified before a single section is handed
// out, so a truncated or bit-flipped file can never partially restore a
// live session. Payload contents are opaque to the container; components
// serialize themselves through the Snapshotter/Restorer interfaces
// (typically with encoding/gob).
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Magic identifies a checkpoint file. The trailing digit is part of the
// magic, not the version: incompatible *container* layouts would change it,
// while compatible evolutions bump Version.
const Magic = "HTRCKPT1"

// Version is the current container format version.
const Version uint32 = 1

// Limits that bound the parser against corrupt or hostile inputs.
const (
	maxSections = 4096
	maxNameLen  = 256
)

// Sentinel errors, wrapped with context by the reader.
var (
	ErrBadMagic   = errors.New("checkpoint: bad magic (not a checkpoint file)")
	ErrBadVersion = errors.New("checkpoint: unsupported format version")
	ErrCorrupt    = errors.New("checkpoint: corrupt file")
	ErrNoSection  = errors.New("checkpoint: section not found")
)

// Snapshotter is implemented by components that can serialize their durable
// state. SnapshotTo must write a self-contained representation that
// RestoreFrom on the same component type can decode.
type Snapshotter interface {
	SnapshotTo(w io.Writer) error
}

// Restorer reinstates state previously written by the matching Snapshotter.
// Implementations must either succeed completely or leave the receiver
// unchanged.
type Restorer interface {
	RestoreFrom(r io.Reader) error
}

// Writer accumulates named sections and renders them as one container. A
// Writer may be kept alive across many Encode calls as an incremental
// section cache: replacing one section's payload leaves every other
// section's bytes — and its cached CRC — untouched, so a periodic snapshot
// only pays serialization and checksumming for the sections that actually
// changed (the fleet checkpointer rewrites only dirty tenants this way).
type Writer struct {
	names    []string
	payloads [][]byte
	crcs     []uint32
	index    map[string]int
}

// NewWriter returns an empty checkpoint writer.
func NewWriter() *Writer {
	return &Writer{index: make(map[string]int)}
}

// AddBytes appends a raw section. Adding a duplicate name replaces the
// earlier payload (last write wins), keeping the original position. The
// payload's CRC is computed here, once per add, not on every Encode.
func (w *Writer) AddBytes(name string, payload []byte) error {
	if len(name) == 0 || len(name) > maxNameLen {
		return fmt.Errorf("checkpoint: section name %q: length must be in [1,%d]", name, maxNameLen)
	}
	if i, ok := w.index[name]; ok {
		w.payloads[i] = payload
		w.crcs[i] = crc32.ChecksumIEEE(payload)
		return nil
	}
	if len(w.names) >= maxSections {
		return fmt.Errorf("checkpoint: too many sections (max %d)", maxSections)
	}
	w.index[name] = len(w.names)
	w.names = append(w.names, name)
	w.payloads = append(w.payloads, payload)
	w.crcs = append(w.crcs, crc32.ChecksumIEEE(payload))
	return nil
}

// Has reports whether the writer already holds a section under name.
func (w *Writer) Has(name string) bool { _, ok := w.index[name]; return ok }

// Add serializes a component into a named section.
func (w *Writer) Add(name string, s Snapshotter) error {
	var buf bytes.Buffer
	if err := s.SnapshotTo(&buf); err != nil {
		return fmt.Errorf("checkpoint: section %q: %w", name, err)
	}
	return w.AddBytes(name, buf.Bytes())
}

// Encode renders the container to a byte slice.
func (w *Writer) Encode() []byte {
	var head bytes.Buffer
	head.WriteString(Magic)
	var u32 [4]byte
	var u64 [8]byte
	binary.BigEndian.PutUint32(u32[:], Version)
	head.Write(u32[:])
	binary.BigEndian.PutUint32(u32[:], uint32(len(w.names)))
	head.Write(u32[:])
	for i, name := range w.names {
		var u16 [2]byte
		binary.BigEndian.PutUint16(u16[:], uint16(len(name)))
		head.Write(u16[:])
		head.WriteString(name)
		binary.BigEndian.PutUint64(u64[:], uint64(len(w.payloads[i])))
		head.Write(u64[:])
		// Per-section CRCs were computed when the payload was added; an
		// incremental Encode only checksums the header, not every payload.
		binary.BigEndian.PutUint32(u32[:], w.crcs[i])
		head.Write(u32[:])
	}
	binary.BigEndian.PutUint32(u32[:], crc32.ChecksumIEEE(head.Bytes()))
	head.Write(u32[:])
	for _, p := range w.payloads {
		head.Write(p)
	}
	return head.Bytes()
}

// WriteFile atomically writes the container to path: the bytes land in a
// temporary file in the same directory, are synced, and only then renamed
// into place, so a crash mid-write can never leave a half-written
// checkpoint under the final name.
func (w *Writer) WriteFile(path string) error {
	data := w.Encode()
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: writing %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: writing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: writing %s: %w", path, err)
	}
	return nil
}

// File is a fully validated, decoded checkpoint.
type File struct {
	names    []string
	payloads map[string][]byte
}

// Decode parses and fully validates a container. It returns an error — and
// no File — on bad magic, unsupported version, malformed section table,
// truncation, trailing garbage, or any CRC mismatch.
func Decode(data []byte) (*File, error) {
	if len(data) < len(Magic)+8 || string(data[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	off := len(Magic)
	version := binary.BigEndian.Uint32(data[off:])
	off += 4
	if version != Version {
		return nil, fmt.Errorf("%w: file has v%d, this build reads v%d", ErrBadVersion, version, Version)
	}
	count := binary.BigEndian.Uint32(data[off:])
	off += 4
	if count > maxSections {
		return nil, fmt.Errorf("%w: section count %d exceeds limit %d", ErrCorrupt, count, maxSections)
	}
	type entry struct {
		name string
		size uint64
		crc  uint32
	}
	entries := make([]entry, 0, count)
	var total uint64
	for i := uint32(0); i < count; i++ {
		if off+2 > len(data) {
			return nil, fmt.Errorf("%w: truncated section table (entry %d)", ErrCorrupt, i)
		}
		nameLen := int(binary.BigEndian.Uint16(data[off:]))
		off += 2
		if nameLen == 0 || nameLen > maxNameLen {
			return nil, fmt.Errorf("%w: section %d name length %d out of range", ErrCorrupt, i, nameLen)
		}
		if off+nameLen+12 > len(data) {
			return nil, fmt.Errorf("%w: truncated section table (entry %d)", ErrCorrupt, i)
		}
		name := string(data[off : off+nameLen])
		off += nameLen
		size := binary.BigEndian.Uint64(data[off:])
		off += 8
		crc := binary.BigEndian.Uint32(data[off:])
		off += 4
		if size > uint64(len(data)) {
			return nil, fmt.Errorf("%w: section %q length %d exceeds file size", ErrCorrupt, name, size)
		}
		total += size
		if total > uint64(len(data)) {
			return nil, fmt.Errorf("%w: section lengths exceed file size", ErrCorrupt)
		}
		entries = append(entries, entry{name, size, crc})
	}
	if off+4 > len(data) {
		return nil, fmt.Errorf("%w: truncated before table checksum", ErrCorrupt)
	}
	wantTableCRC := binary.BigEndian.Uint32(data[off:])
	if got := crc32.ChecksumIEEE(data[:off]); got != wantTableCRC {
		return nil, fmt.Errorf("%w: section table checksum mismatch (got %08x, want %08x)", ErrCorrupt, got, wantTableCRC)
	}
	off += 4
	if uint64(len(data)-off) != total {
		return nil, fmt.Errorf("%w: payload area is %d bytes, table declares %d", ErrCorrupt, len(data)-off, total)
	}
	f := &File{payloads: make(map[string][]byte, count)}
	for _, e := range entries {
		payload := data[off : off+int(e.size)]
		off += int(e.size)
		if got := crc32.ChecksumIEEE(payload); got != e.crc {
			return nil, fmt.Errorf("%w: section %q checksum mismatch (got %08x, want %08x)", ErrCorrupt, e.name, got, e.crc)
		}
		if _, dup := f.payloads[e.name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, e.name)
		}
		f.names = append(f.names, e.name)
		f.payloads[e.name] = payload
	}
	return f, nil
}

// ReadFile loads and fully validates a checkpoint from disk.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	f, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return f, nil
}

// Names lists the sections in file order.
func (f *File) Names() []string { return append([]string(nil), f.names...) }

// Has reports whether a section is present.
func (f *File) Has(name string) bool { _, ok := f.payloads[name]; return ok }

// Bytes returns a section's payload.
func (f *File) Bytes(name string) ([]byte, error) {
	p, ok := f.payloads[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSection, name)
	}
	return p, nil
}

// Restore feeds a section's payload to a component's Restorer.
func (f *File) Restore(name string, r Restorer) error {
	p, err := f.Bytes(name)
	if err != nil {
		return err
	}
	if err := r.RestoreFrom(bytes.NewReader(p)); err != nil {
		return fmt.Errorf("checkpoint: section %q: %w", name, err)
	}
	return nil
}
