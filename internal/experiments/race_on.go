//go:build race

package experiments

// raceEnabled lets expensive determinism tests shrink their scope when the
// race detector (5-15x slowdown) is on, so the raced suite stays inside
// the per-package test timeout.
const raceEnabled = true
