package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/hunter-cdb/hunter/internal/core"
	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/ml/pca"
	"github.com/hunter-cdb/hunter/internal/ml/rf"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// RunFigure4 reproduces Figure 4: best throughput and best tail latency
// versus tuning time for GA, BestConfig, OtterTune and CDBTune on MySQL
// with TPC-C — the observation behind the hybrid design: GA converges
// fastest early, DDPG has the highest ceiling.
func RunFigure4(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	budget := cfg.budget(40 * time.Hour)
	p := tpccMySQL()
	methods := []string{"GA", "BestConfig", "OtterTune", "CDBTune"}
	marks := timeMarks(budget, 8)

	curveSlots := make([]tuner.Curve, len(methods))
	if err := runJobs(cfg, len(methods), func(i int) error {
		s, err := runSession(cfg, p, methods[i], core.Options{}, budget, 1, int64(400+i))
		if err != nil {
			return err
		}
		defer s.Close()
		curveSlots[i] = s.Curve()
		return nil
	}); err != nil {
		return err
	}
	curves := map[string]tuner.Curve{}
	for i, m := range methods {
		curves[m] = curveSlots[i]
	}

	fmt.Fprintf(w, "(a) best throughput (%s) vs tuning time\n", p.unit())
	ta := newTable(append([]string{"Time"}, methods...)...)
	for _, mk := range marks {
		row := []string{hours(mk)}
		for _, m := range methods {
			if perf, ok := curves[m].At(mk); ok {
				row = append(row, fmt.Sprintf("%.0f", p.throughput(perf)))
			} else {
				row = append(row, "-")
			}
		}
		ta.row(row...)
	}
	ta.flush(w)

	fmt.Fprintln(w, "\n(b) best 95% latency (ms) vs tuning time")
	tb := newTable(append([]string{"Time"}, methods...)...)
	for _, mk := range marks {
		row := []string{hours(mk)}
		for _, m := range methods {
			if perf, ok := curves[m].At(mk); ok {
				row = append(row, fmt.Sprintf("%.1f", perf.P95LatencyMs))
			} else {
				row = append(row, "-")
			}
		}
		tb.row(row...)
	}
	tb.flush(w)
	return nil
}

// timeMarks returns n checkpoints spanning the budget.
func timeMarks(budget time.Duration, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = budget * time.Duration(i+1) / time.Duration(n)
	}
	return out
}

// RunFigure5 reproduces Figure 5: within 300 tuning steps, the
// distribution of sample quality (throughput distance below the best
// sample) for BestConfig, OtterTune, CDBTune and GA. The paper finds GA
// concentrates far more samples within 20% of the best — the reason it is
// the Sample Factory.
func RunFigure5(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	// The 300-step window is the experiment's own parameter; scale only
	// shrinks it mildly (the distribution is meaningless with too few
	// samples).
	steps := int(300 * cfg.Scale)
	if steps < 200 {
		steps = 200
	}
	budget := time.Duration(float64(steps)*168) * time.Second
	p := tpccMySQL()
	methods := []string{"BestConfig", "OtterTune", "CDBTune", "GA"}
	buckets := []string{"<10%", "10-20%", "20-30%", ">30%"}

	rows := make([][]string, len(methods))
	if err := runJobs(cfg, len(methods), func(i int) error {
		s, err := runSession(cfg, p, methods[i], core.Options{}, budget, 1, int64(500+i))
		if err != nil {
			return err
		}
		defer s.Close()
		var best float64
		var ts []float64
		for _, smp := range s.Pool.All() {
			if smp.Step > steps || smp.Perf.Failed {
				continue
			}
			ts = append(ts, smp.Perf.ThroughputTPS)
			if smp.Perf.ThroughputTPS > best {
				best = smp.Perf.ThroughputTPS
			}
		}
		counts := make([]int, 4)
		for _, v := range ts {
			gap := (best - v) / best
			switch {
			case gap < 0.10:
				counts[0]++
			case gap < 0.20:
				counts[1]++
			case gap < 0.30:
				counts[2]++
			default:
				counts[3]++
			}
		}
		row := []string{methods[i]}
		for _, c := range counts {
			row = append(row, fmt.Sprintf("%.2f%%", 100*float64(c)/float64(len(ts))))
		}
		rows[i] = row
		return nil
	}); err != nil {
		return err
	}
	t := newTable(append([]string{"Method"}, buckets...)...)
	for _, row := range rows {
		t.row(row...)
	}
	t.flush(w)
	return nil
}

// RunFigure6 reproduces Figure 6: the best performance after a fixed DRL
// tuning budget as a function of the number of GA samples used to
// warm-start it; the paper observes a plateau at 140 samples.
func RunFigure6(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	drl := cfg.budget(10 * time.Hour)
	sampleCounts := []int{20, 60, 100, 140, 180}
	panels := []panel{tpccMySQL(), sysbenchRWMySQL()}

	cells := make([]string, len(sampleCounts)*len(panels))
	if err := runJobs(cfg, len(cells), func(k int) error {
		i, j := k/len(panels), k%len(panels)
		n, p := sampleCounts[i], panels[j]
		sampleTime := time.Duration(n) * 170 * time.Second
		s, err := runSession(cfg, p, "HUNTER",
			core.Options{SampleTarget: n, Patience: 1000},
			sampleTime+drl, 1, int64(600+i*10+j))
		if err != nil {
			return err
		}
		defer s.Close()
		best, _ := s.Best()
		cells[k] = fmt.Sprintf("%.0f", p.throughput(best.Perf))
		return nil
	}); err != nil {
		return err
	}
	t := newTable("GA samples", panels[0].Name+" ("+panels[0].unit()+")", panels[1].Name+" ("+panels[1].unit()+")")
	for i, n := range sampleCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for j := range panels {
			row = append(row, cells[i*len(panels)+j])
		}
		t.row(row...)
	}
	t.flush(w)
	return nil
}

// RunFigure7 reproduces Figure 7: (a) the cumulative proportion of
// variance of the PCA components over the 63 metrics of TPC-C samples —
// the paper reaches 91% at 13 components — and (b) how the top-2
// components separate samples by reward.
func RunFigure7(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	p := tpccMySQL()
	// The PCA is fitted over the Sample Factory's pool (≈140 samples +
	// random init); like Figure 5's 300-step window this is the
	// experiment's own parameter and is not scaled down.
	budget := 8 * time.Hour
	s, err := runSession(cfg, p, "GA", core.Options{}, budget, 1, 700)
	if err != nil {
		return err
	}
	defer s.Close()

	var rows [][]float64
	var rewards []float64
	for _, smp := range s.Pool.All() {
		if len(smp.State) != metrics.Count {
			continue
		}
		rows = append(rows, smp.State)
		rewards = append(rewards, s.Fitness(smp.Perf))
	}
	if len(rows) < 10 {
		return fmt.Errorf("fig7: only %d valid samples", len(rows))
	}
	model, err := pca.Fit(rows, 0.90, 0)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "(a) cumulative proportion of variance of components")
	ta := newTable("Components", "CDF")
	cdf := model.VarianceCDF()
	sel := -1
	for i := 0; i < len(cdf) && i < 20; i++ {
		ta.row(fmt.Sprintf("%d", i+1), fmt.Sprintf("%.1f%%", 100*cdf[i]))
		if sel == -1 && cdf[i] >= 0.90 {
			sel = i + 1
		}
	}
	ta.flush(w)
	fmt.Fprintf(w, "selected v = %d components (CDF ≥ 90%%; paper: 13 at 91%%)\n", sel)

	fmt.Fprintln(w, "\n(b) reward by top-2 component quadrant (regularized)")
	// Project all samples onto components 1–2, then report the mean
	// reward per quadrant — the separation Figure 7(b) visualizes.
	type agg struct {
		sum float64
		n   int
	}
	quad := map[string]*agg{}
	var m1, m2 float64
	zs := make([][]float64, len(rows))
	for i, r := range rows {
		z, err := model.Transform(r)
		if err != nil {
			return err
		}
		zs[i] = z
		m1 += z[0]
		m2 += z[1]
	}
	m1 /= float64(len(zs))
	m2 /= float64(len(zs))
	for i, z := range zs {
		key := fmt.Sprintf("c1%s c2%s", sign(z[0]-m1), sign(z[1]-m2))
		if quad[key] == nil {
			quad[key] = &agg{}
		}
		quad[key].sum += rewards[i]
		quad[key].n++
	}
	tb := newTable("Quadrant", "Samples", "Mean reward")
	for _, k := range sortedKeys(quad) {
		a := quad[k]
		tb.row(k, fmt.Sprintf("%d", a.n), fmt.Sprintf("%.3f", a.sum/float64(a.n)))
	}
	tb.flush(w)
	return nil
}

func sign(v float64) string {
	if v >= 0 {
		return "+"
	}
	return "-"
}

// RunFigure8 reproduces Figure 8: tuning performance versus the number of
// top-ranked knobs, for RF rankings trained on n = 70, 140 and 280
// samples. The paper's findings: top-20 knobs match tuning all 70, and
// n ≥ 140 samples stabilize the ranking.
func RunFigure8(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	p := tpccMySQL()
	drl := cfg.budget(6 * time.Hour)
	knobCounts := []int{5, 10, 20, 40, 70}
	sampleCounts := []int{70, 140, 280}
	allKnobs := knob.MySQL().Names() // Figure 8 ranks the full 70-knob catalog

	// The (samples × top-k) grid plus one GA session for the RF ranking,
	// all independent.
	grid := len(sampleCounts) * len(knobCounts)
	cells := make([]string, grid)
	var ranking []string
	if err := runJobs(cfg, grid+1, func(job int) error {
		if job == grid {
			// RF ranking from a 140-sample pool (fixed size: the ranking
			// is meaningless on a handful of samples).
			s, err := runSession(cfg, p, "GA", core.Options{}, 8*time.Hour, 1, 890)
			if err != nil {
				return err
			}
			defer s.Close()
			var x [][]float64
			var y []float64
			for _, smp := range s.Pool.All() {
				x = append(x, smp.Point)
				y = append(y, s.Fitness(smp.Perf))
			}
			forest, err := rf.Train(x, y, rf.Options{Trees: 200}, s.RNG.Fork())
			if err != nil {
				return err
			}
			names := s.Space.Names()
			for rank, idx := range forest.TopK(10) {
				ranking = append(ranking, fmt.Sprintf("  %2d. %-36s %.3f", rank+1, names[idx], forest.Importance()[idx]))
			}
			return nil
		}
		si, ki := job/len(knobCounts), job%len(knobCounts)
		n, k := sampleCounts[si], knobCounts[ki]
		sampleTime := time.Duration(n) * 170 * time.Second
		s, err := tuner.NewSession(tuner.Request{
			Dialect:   p.Dialect,
			Type:      p.Type,
			Workload:  p.Workload(),
			KnobNames: allKnobs,
			Budget:    sampleTime + drl,
			Clones:    1,
			Seed:      cfg.Seed + int64(800+si*10+ki),
			Logger:    cfg.Logger,
			Recorder:  cfg.Recorder,
			Status:    cfg.Status,
		})
		if err != nil {
			return err
		}
		defer s.Close()
		h := newTuner("HUNTER", core.Options{SampleTarget: n, Patience: 1000, TopK: k})
		if err := h.Tune(s); err != nil {
			return err
		}
		best, _ := s.Best()
		cells[job] = fmt.Sprintf("%.0f / %.1f", p.throughput(best.Perf), best.Perf.P95LatencyMs)
		return nil
	}); err != nil {
		return err
	}

	fmt.Fprintf(w, "throughput (%s) / p95 latency (ms) after equal-budget tuning of top-k knobs\n", p.unit())
	t := newTable(append([]string{"n samples"}, intHeaders("top-", knobCounts)...)...)
	for si, n := range sampleCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for ki := range knobCounts {
			row = append(row, cells[si*len(knobCounts)+ki])
		}
		t.row(row...)
	}
	t.flush(w)

	fmt.Fprintln(w, "\ntop-10 knobs by RF importance:")
	for _, line := range ranking {
		fmt.Fprintln(w, line)
	}
	return nil
}

func intHeaders(prefix string, vals []int) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("%s%d", prefix, v)
	}
	return out
}
