package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// RunAlphaSensitivity is an extension beyond the paper's figures: it tunes
// the same workload under different α preferences (Eq. 1's
// throughput/latency weight, exposed to users through Rules) and shows how
// the recommended operating point moves along the throughput/latency
// frontier — the "personalized requirements" the title promises, made
// quantitative.
func RunAlphaSensitivity(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	budget := cfg.budget(16 * time.Hour)
	p := sysbenchRWMySQL()
	alphas := []float64{0.0, 0.25, 0.5, 0.75, 1.0}
	rows := make([][]string, len(alphas))
	if err := runJobs(cfg, len(alphas), func(i int) error {
		alpha := alphas[i]
		rules := knob.NewRules().SetAlpha(alpha)
		s, err := tuner.NewSession(tuner.Request{
			Dialect:  p.Dialect,
			Type:     p.Type,
			Workload: p.Workload(),
			Rules:    rules,
			Budget:   budget,
			Clones:   2,
			Seed:     cfg.Seed + int64(2000+i),
			Logger:   cfg.Logger,
			Recorder: cfg.Recorder,
			Status:   cfg.Status,
		})
		if err != nil {
			return err
		}
		defer s.Close()
		if err := newTuner("HUNTER", hunterDefaults()).Tune(s); err != nil {
			return err
		}
		best, ok := s.Best()
		if !ok {
			rows[i] = []string{fmt.Sprintf("%.2f", alpha), "-", "-", "-"}
		} else {
			rows[i] = []string{fmt.Sprintf("%.2f", alpha),
				fmt.Sprintf("%.0f", best.Perf.ThroughputTPS),
				fmt.Sprintf("%.1f", best.Perf.P95LatencyMs),
				fmt.Sprintf("%.1f", best.Perf.P99LatencyMs)}
		}
		return nil
	}); err != nil {
		return err
	}
	t := newTable("alpha", "Best T (txn/s)", "p95 (ms)", "p99 (ms)")
	for _, row := range rows {
		t.row(row...)
	}
	fmt.Fprintln(w, "recommended operating point vs α (0 = pure latency, 1 = pure throughput)")
	t.flush(w)
	return nil
}
