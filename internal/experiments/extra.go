package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// RunAlphaSensitivity is an extension beyond the paper's figures: it tunes
// the same workload under different α preferences (Eq. 1's
// throughput/latency weight, exposed to users through Rules) and shows how
// the recommended operating point moves along the throughput/latency
// frontier — the "personalized requirements" the title promises, made
// quantitative.
func RunAlphaSensitivity(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	budget := cfg.budget(16 * time.Hour)
	p := sysbenchRWMySQL()
	t := newTable("alpha", "Best T (txn/s)", "p95 (ms)", "p99 (ms)")
	for i, alpha := range []float64{0.0, 0.25, 0.5, 0.75, 1.0} {
		rules := knob.NewRules().SetAlpha(alpha)
		s, err := tuner.NewSession(tuner.Request{
			Dialect:  p.Dialect,
			Type:     p.Type,
			Workload: p.Workload(),
			Rules:    rules,
			Budget:   budget,
			Clones:   2,
			Seed:     cfg.Seed + int64(2000+i),
		})
		if err != nil {
			return err
		}
		if err := newTuner("HUNTER", hunterDefaults()).Tune(s); err != nil {
			s.Close()
			return err
		}
		best, ok := s.Best()
		if !ok {
			t.row(fmt.Sprintf("%.2f", alpha), "-", "-", "-")
		} else {
			t.row(fmt.Sprintf("%.2f", alpha),
				fmt.Sprintf("%.0f", best.Perf.ThroughputTPS),
				fmt.Sprintf("%.1f", best.Perf.P95LatencyMs),
				fmt.Sprintf("%.1f", best.Perf.P99LatencyMs))
		}
		s.Close()
	}
	fmt.Fprintln(w, "recommended operating point vs α (0 = pure latency, 1 = pure throughput)")
	t.flush(w)
	return nil
}
