package experiments

import (
	"bytes"
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
)

// TestChaosWorkerByteIdentity is the determinism contract of the fault
// injector: the chaos experiment's output — fault tallies included — must
// be byte-identical for any worker-pool size, because every fault decision
// is a pure function of seeds and sequence numbers, never of scheduling.
func TestChaosWorkerByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions")
	}
	cfg := Config{Scale: 0.02, Seed: 9}
	run := func(t *testing.T, workers int) []byte {
		t.Helper()
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		r, err := ByID("chaos")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.Run(cfg, &buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatal("no output")
		}
		return buf.Bytes()
	}
	golden := run(t, 1)
	if !bytes.Contains(golden, []byte("fault(s) injected")) {
		t.Fatalf("chaos run reported no fault summary:\n%s", golden)
	}
	for _, workers := range []int{2, 8} {
		if got := run(t, workers); !bytes.Equal(golden, got) {
			t.Errorf("chaos output (workers=%d) differs from workers=1\ngolden:\n%s\ngot:\n%s",
				workers, golden, got)
		}
	}
}

// TestChaosSeedVariesFaultPlan: changing only -chaos-seed re-rolls the
// fault plan (different summary) without invalidating the run.
func TestChaosSeedVariesFaultPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions")
	}
	run := func(seed int64) []byte {
		r, err := ByID("chaos")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.Run(Config{Scale: 0.02, Seed: 9, ChaosSeed: seed}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if bytes.Equal(run(7), run(8)) {
		t.Fatal("chaos seeds 7 and 8 produced identical runs")
	}
}
