package experiments

import (
	"bytes"
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
)

// TestSerialParallelByteIdentical is the determinism contract of sched.go:
// a runner's output must be byte-for-byte identical whether its sessions
// run serially in declaration order or fan out over the worker pool, and
// identical for any worker count. Each session owns its RNG, clock and
// provider, results land in declaration-indexed slots, and folding happens
// in declaration order on the calling goroutine — so scheduling must be
// invisible in the output.
func TestSerialParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions")
	}
	cfg := Config{Scale: 0.01, Seed: 7}
	run := func(t *testing.T, id string, serial bool, workers int) []byte {
		t.Helper()
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		r, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.SerialSessions = serial
		var buf bytes.Buffer
		if err := r.Run(c, &buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatal("no output")
		}
		return buf.Bytes()
	}
	// fig5 fans out four method sessions; table6 mixes two dialects over
	// four sessions. Together they exercise slot folding, seed offsets and
	// the table writer under contention.
	ids := []string{"fig5", "table6"}
	if raceEnabled {
		// Race slowdown makes the four fig5 sessions too slow for the
		// per-package timeout; table6 still races the scheduler end to end.
		ids = ids[1:]
	}
	// The subtests mutate the process-wide worker override, so they must
	// not run in parallel with each other.
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			golden := run(t, id, true, 1)
			for _, workers := range []int{1, 8} {
				got := run(t, id, false, workers)
				if !bytes.Equal(golden, got) {
					t.Errorf("parallel output (workers=%d) differs from serial golden\nserial:\n%s\nparallel:\n%s",
						workers, golden, got)
				}
			}
		})
	}
}
