package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/hunter-cdb/hunter/internal/core"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// RunFigure9 reproduces Figure 9, the headline comparison: best throughput
// and best tail latency versus tuning time for every state-of-the-art
// method plus HUNTER and HUNTER-20, on MySQL/TPC-C, MySQL/Sysbench WO and
// PostgreSQL/TPC-C, all starting without prior knowledge. It prints the
// curve series, each method's recommendation time, and the speedup factors
// over CDBTune the abstract headlines (2.8× with 1 clone, 22.8× with 20).
func RunFigure9(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	budget := cfg.budget(70 * time.Hour)
	// HUNTER-20 converges in a fraction of the budget; cap its session so
	// full-scale reproduction stays tractable (its curve is flat beyond).
	budget20 := cfg.budget(12 * time.Hour)
	panels := []panel{tpccMySQL(), sysbenchWOMySQL(), tpccPostgres()}

	type line struct {
		name   string
		clones int
		budget time.Duration
	}
	lines := []line{
		{"BestConfig", 1, budget}, {"OtterTune", 1, budget}, {"CDBTune", 1, budget},
		{"QTune", 1, budget}, {"ResTune", 1, budget},
		{"HUNTER", 1, budget}, {"HUNTER-20", 20, budget20},
	}

	// One session per (panel × line); all 21 are independent.
	type result struct {
		curve    tuner.Curve
		recTime  time.Duration
		final    tuner.CurvePoint
		hasFinal bool
		finalFit float64
		def      simdbPerf
		alpha    float64
	}
	results := make([]result, len(panels)*len(lines))
	if err := runJobs(cfg, len(results), func(i int) error {
		pi, li := i/len(lines), i%len(lines)
		p, ln := panels[pi], lines[li]
		method := ln.name
		if method == "HUNTER-20" {
			method = "HUNTER"
		}
		s, err := runSession(cfg, p, method, core.Options{}, ln.budget, ln.clones, int64(900+pi*100+li))
		if err != nil {
			return err
		}
		defer s.Close()
		r := &results[i]
		r.curve = s.Curve()
		r.recTime, _ = r.curve.RecommendationTime(s.DefaultPerf, s.Alpha, 0.98)
		if f, ok := r.curve.Final(); ok {
			r.final, r.hasFinal = f, true
			r.finalFit = f.Perf.Fitness(s.DefaultPerf, s.Alpha)
		}
		r.def, r.alpha = s.DefaultPerf, s.Alpha
		return nil
	}); err != nil {
		return err
	}

	for pi, p := range panels {
		fmt.Fprintf(w, "=== %s (throughput in %s) ===\n", p.Name, p.unit())
		curves := map[string]tuner.Curve{}
		recTimes := map[string]time.Duration{}
		finals := map[string]tuner.CurvePoint{}
		finalFit := map[string]float64{}
		defs := map[string]struct {
			perf  simdbPerf
			alpha float64
		}{}
		for li, ln := range lines {
			r := &results[pi*len(lines)+li]
			curves[ln.name] = r.curve
			recTimes[ln.name] = r.recTime
			if r.hasFinal {
				finals[ln.name] = r.final
				finalFit[ln.name] = r.finalFit
			}
			defs[ln.name] = struct {
				perf  simdbPerf
				alpha float64
			}{r.def, r.alpha}
		}

		names := make([]string, len(lines))
		for i, ln := range lines {
			names[i] = ln.name
		}
		marks := timeMarks(budget, 7)
		fmt.Fprintln(w, "best throughput vs time:")
		ta := newTable(append([]string{"Time"}, names...)...)
		for _, mk := range marks {
			row := []string{hours(mk)}
			for _, n := range names {
				if perf, ok := curves[n].At(mk); ok {
					row = append(row, fmt.Sprintf("%.0f", p.throughput(perf)))
				} else {
					row = append(row, "-")
				}
			}
			ta.row(row...)
		}
		ta.flush(w)

		fmt.Fprintln(w, "best p95 latency (ms) vs time:")
		tl := newTable(append([]string{"Time"}, names...)...)
		for _, mk := range marks {
			row := []string{hours(mk)}
			for _, n := range names {
				if perf, ok := curves[n].At(mk); ok {
					row = append(row, fmt.Sprintf("%.1f", perf.P95LatencyMs))
				} else {
					row = append(row, "-")
				}
			}
			tl.row(row...)
		}
		tl.flush(w)

		fmt.Fprintln(w, "summary:")
		// The speedup follows §6.1's protocol: CDBTune's recommendation
		// time divided by the time the method needed to reach CDBTune's
		// final performance level ("for the similar optimal throughput,
		// HUNTER ... is 2.8 times faster than CDBTune").
		ts := newTable("Method", "Best T", "Best p95 (ms)", "Rec. time", "Time to CDBTune level", "Speedup vs CDBTune")
		cdbRec := recTimes["CDBTune"]
		cdbFit := finalFit["CDBTune"]
		for _, n := range names {
			f := finals[n]
			reach, speed := "-", "-"
			d := defs[n]
			if t, ok := curves[n].TimeToFitness(d.perf, d.alpha, cdbFit); ok {
				reach = hours(t)
				if cdbRec > 0 && t > 0 {
					speed = fmt.Sprintf("%.1fx", cdbRec.Hours()/t.Hours())
				}
			} else if n != "CDBTune" {
				reach = "not reached"
			}
			ts.row(n, fmt.Sprintf("%.0f", p.throughput(f.Perf)),
				fmt.Sprintf("%.1f", f.Perf.P95LatencyMs), hours(recTimes[n]), reach, speed)
		}
		ts.flush(w)
		fmt.Fprintln(w)
	}
	return nil
}

// simdbPerf keeps the struct-literal map tidy above.
type simdbPerf = simdb.Perf
