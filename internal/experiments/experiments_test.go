package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range All() {
		if r.ID == "" || r.Title == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if ids[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
	}
	// Every table and figure of §6 must be covered.
	for _, want := range []string{
		"table1", "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "table3", "table4", "table5", "table6", "fig11", "fig12",
		"fig13", "fig14",
	} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
}

func TestByID(t *testing.T) {
	r, err := ByID("fig9")
	if err != nil || r.ID != "fig9" {
		t.Fatalf("ByID(fig9) = %+v, %v", r, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestConfigDefaultsAndBudgetFloor(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 || c.Seed == 0 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	small := Config{Scale: 0.001}.withDefaults()
	if b := small.budget(70 * hour); b < 45*minute {
		t.Fatalf("budget floor broken: %v", b)
	}
}

func TestTableWriter(t *testing.T) {
	var buf bytes.Buffer
	tb := newTable("A", "Boooo")
	tb.row("1", "2")
	tb.row("longer", "3")
	tb.flush(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "A") || !strings.Contains(lines[0], "Boooo") {
		t.Fatalf("header %q", lines[0])
	}
}

func TestPanelsAndUnits(t *testing.T) {
	if tpccMySQL().unit() != "txn/min" {
		t.Fatal("TPC-C panels report txn/min")
	}
	if sysbenchWOMySQL().unit() != "txn/s" {
		t.Fatal("sysbench panels report txn/s")
	}
	for _, p := range []panel{tpccMySQL(), sysbenchROMySQL(), sysbenchWOMySQL(), sysbenchRWMySQL(), tpccPostgres(), productionMySQL()} {
		if err := p.Workload().Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// TestSmallScaleRunners executes the cheaper experiments end to end at a
// tiny scale, checking they produce output without error. The expensive
// multi-method figures are covered by the benchmarks and by
// cmd/hunter-repro.
func TestSmallScaleRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions")
	}
	cfg := Config{Scale: 0.02, Seed: 9}
	for _, id := range []string{"table1", "fig5", "fig7", "chaos"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := r.Run(cfg, &buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}
