package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/hunter-cdb/hunter/internal/cloud"
	"github.com/hunter-cdb/hunter/internal/core"
	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/tuner"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// RunFigure11 reproduces Figure 11: throughput obtained by each method on
// the Production workload under three cost envelopes — 1 instance for 10
// hours, 3 instances for 10 hours, and 20 instances for 5 hours.
func RunFigure11(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	p := productionMySQL()
	envelopes := []struct {
		label  string
		clones int
		budget time.Duration
	}{
		{"1 inst / 10 h", 1, cfg.budget(10 * time.Hour)},
		{"3 inst / 10 h", 3, cfg.budget(10 * time.Hour)},
		{"20 inst / 5 h", 20, cfg.budget(5 * time.Hour)},
	}
	type result struct {
		cell      string
		instHours float64
	}
	results := make([]result, len(methodNames)*len(envelopes))
	if err := runJobs(cfg, len(results), func(k int) error {
		mi, ei := k/len(envelopes), k%len(envelopes)
		env := envelopes[ei]
		s, err := runSession(cfg, p, methodNames[mi], core.Options{}, env.budget, env.clones, int64(1500+mi*10+ei))
		if err != nil {
			return err
		}
		defer s.Close()
		if best, ok := s.Best(); ok {
			results[k].cell = fmt.Sprintf("%.0f", p.throughput(best.Perf))
		} else {
			results[k].cell = "-"
		}
		results[k].instHours = s.InstanceHours()
		return nil
	}); err != nil {
		return err
	}
	t := newTable(append([]string{"Method"}, envelopeLabels(envelopes)...)...)
	costs := make([]float64, len(envelopes))
	for mi, m := range methodNames {
		row := []string{m}
		for ei := range envelopes {
			r := results[mi*len(envelopes)+ei]
			row = append(row, r.cell)
			costs[ei] = r.instHours
		}
		t.row(row...)
	}
	fmt.Fprintf(w, "best throughput (%s) on Production under equal cost\n", p.unit())
	t.flush(w)
	fmt.Fprintf(w, "cost per envelope (instance-hours incl. the user instance): %.0f / %.0f / %.0f\n",
		costs[0], costs[1], costs[2])
	return nil
}

func envelopeLabels(es []struct {
	label  string
	clones int
	budget time.Duration
}) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.label
	}
	return out
}

// RunFigure12 reproduces Figure 12: HUNTER's best throughput and
// recommendation time as the number of cloned CDBs grows (1, 5, 10, 15,
// 20) on MySQL/TPC-C, MySQL/Sysbench RO and PostgreSQL/TPC-C. Following
// the paper's protocol, HUNTER-N's recommendation time is the moment its
// throughput exceeds 98% of single-clone HUNTER's best.
func RunFigure12(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	budget := cfg.budget(40 * time.Hour)
	cloneCounts := []int{1, 5, 10, 15, 20}
	panels := []panel{tpccMySQL(), sysbenchROMySQL(), tpccPostgres()}

	// One session per (panel × clone count). The HUNTER-1 baseline each
	// panel's other rows compare against is applied at fold time, so the
	// sessions stay independent.
	type result struct {
		bt      float64
		curve   tuner.Curve
		recTime time.Duration
	}
	results := make([]result, len(panels)*len(cloneCounts))
	if err := runJobs(cfg, len(results), func(k int) error {
		pi, ci := k/len(cloneCounts), k%len(cloneCounts)
		s, err := runSession(cfg, panels[pi], "HUNTER", core.Options{}, budget, cloneCounts[ci], int64(1600+pi*100+ci))
		if err != nil {
			return err
		}
		defer s.Close()
		best, _ := s.Best()
		r := &results[k]
		r.bt = panels[pi].throughput(best.Perf)
		r.curve = s.Curve()
		r.recTime, _ = r.curve.RecommendationTime(s.DefaultPerf, s.Alpha, 0.98)
		return nil
	}); err != nil {
		return err
	}

	for pi, p := range panels {
		fmt.Fprintf(w, "=== %s ===\n", p.Name)
		t := newTable("Clones", fmt.Sprintf("Best T (%s)", p.unit()), "Rec. time", "Reduction vs 1 clone")
		var baseBest float64
		var baseTime time.Duration
		for ci, n := range cloneCounts {
			r := &results[pi*len(cloneCounts)+ci]
			var rt time.Duration
			if ci == 0 {
				baseBest = r.bt
				rt = r.recTime
				baseTime = rt
			} else {
				// First time the curve exceeds 98% of HUNTER-1's best.
				rt = budget
				for _, cp := range r.curve {
					if p.throughput(cp.Perf) >= 0.98*baseBest {
						rt = cp.Time
						break
					}
				}
			}
			reduction := "-"
			if ci > 0 && baseTime > 0 {
				reduction = fmt.Sprintf("%.1f%%", 100*(1-rt.Hours()/baseTime.Hours()))
			}
			t.row(fmt.Sprintf("%d", n), fmt.Sprintf("%.0f", r.bt), hours(rt), reduction)
		}
		t.flush(w)
		fmt.Fprintln(w)
	}
	return nil
}

// RunFigure13 reproduces Figure 13: the online model-reuse scheme. A model
// trained on Sysbench RW with one read/write ratio is fine-tuned on the
// other ratio (HUNTER-MR) and compared against fresh HUNTER and HUNTER-5.
func RunFigure13(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	trainBudget := cfg.budget(30 * time.Hour)
	tuneBudget := cfg.budget(30 * time.Hour)

	directions := []struct {
		label      string
		train, use func() *workload.Profile
	}{
		{"RW(1:1) <- RW(4:1)", func() *workload.Profile { return workload.SysbenchRWRatio(4, 1) }, func() *workload.Profile { return workload.SysbenchRWRatio(1, 1) }},
		{"RW(4:1) <- RW(1:1)", func() *workload.Profile { return workload.SysbenchRWRatio(1, 1) }, func() *workload.Profile { return workload.SysbenchRWRatio(4, 1) }},
	}
	type variant struct {
		label  string
		clones int
		opts   core.Options
	}
	variantsFor := func(registry *core.ReuseRegistry) []variant {
		return []variant{
			{"HUNTER", 1, core.Options{}},
			{"HUNTER-5", 5, core.Options{}},
			{"HUNTER-MR", 1, core.Options{Registry: registry}},
		}
	}

	// Round 1: one training session per direction populates its registry.
	// The variant sessions below depend on the stored models, so they form
	// a second round.
	registries := make([]*core.ReuseRegistry, len(directions))
	trainedLen := make([]int, len(directions))
	for di := range directions {
		registries[di] = core.NewReuseRegistry()
	}
	if err := runJobs(cfg, len(directions), func(di int) error {
		trainPanel := panel{Name: "train", Dialect: tpccMySQL().Dialect, Type: mysqlF(), Workload: directions[di].train}
		ts, err := runSession(cfg, trainPanel, "HUNTER", core.Options{Registry: registries[di]}, trainBudget, 1, int64(1700+di*10))
		if err != nil {
			return err
		}
		ts.Close()
		trainedLen[di] = registries[di].Len()
		return nil
	}); err != nil {
		return err
	}

	// Round 2: the (direction × variant) tuning sessions.
	type result struct {
		bestT, p95 string
		recTime    time.Duration
		reused     string
	}
	nv := len(variantsFor(nil))
	results := make([]result, len(directions)*nv)
	if err := runJobs(cfg, len(results), func(k int) error {
		di, vi := k/nv, k%nv
		v := variantsFor(registries[di])[vi]
		usePanel := panel{Name: "use", Dialect: tpccMySQL().Dialect, Type: mysqlF(), Workload: directions[di].use}
		s, err := runSession(cfg, usePanel, "HUNTER", v.opts, tuneBudget, v.clones, int64(1750+di*10+vi))
		if err != nil {
			return err
		}
		defer s.Close()
		best, _ := s.Best()
		rt, _ := s.Curve().RecommendationTime(s.DefaultPerf, s.Alpha, 0.98)
		r := &results[k]
		r.bestT = fmt.Sprintf("%.0f", best.Perf.ThroughputTPS)
		r.p95 = fmt.Sprintf("%.1f", best.Perf.P95LatencyMs)
		r.recTime = rt
		r.reused = "no"
		if v.opts.Registry != nil && v.opts.Registry.Len() > 0 {
			r.reused = "if matched"
		}
		return nil
	}); err != nil {
		return err
	}

	for di, dir := range directions {
		fmt.Fprintf(w, "=== %s ===\n", dir.label)
		if trainedLen[di] == 0 {
			fmt.Fprintln(w, "note: training run stored no model (budget too small at this scale)")
		}
		t := newTable("Variant", "Best T (txn/s)", "p95 (ms)", "Rec. time", "Reused model")
		for vi, v := range variantsFor(registries[di]) {
			r := &results[di*nv+vi]
			t.row(v.label, r.bestT, r.p95, hours(r.recTime), r.reused)
		}
		t.flush(w)
		fmt.Fprintln(w)
	}
	return nil
}

// RunFigure14 reproduces Figure 14: model reuse across instance types. A
// model is trained on type F with TPC-C; each Table 7 instance type is
// then tuned for only five steps starting from the transplanted knowledge
// (the historical pool's best configurations), showing how hardware
// bounds performance regardless of tuning.
func RunFigure14(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	trainBudget := cfg.budget(40 * time.Hour)
	p := tpccMySQL()
	methods := []string{"OtterTune", "CDBTune", "HUNTER"}

	// Round 1: train each method once on type F and keep its best
	// configurations. The transplant sessions read those pools, so they
	// form a second round.
	seeds := make([][]tuner.Sample, len(methods))
	if err := runJobs(cfg, len(methods), func(mi int) error {
		s, err := runSession(cfg, p, methods[mi], core.Options{}, trainBudget, 1, int64(1800+mi))
		if err != nil {
			return err
		}
		defer s.Close()
		seeds[mi] = s.Pool.SortedByFitness(s.DefaultPerf, s.Alpha)
		return nil
	}); err != nil {
		return err
	}

	// Round 2: one five-step transplant session per (type × method).
	types := cloud.Types()
	cells := make([]string, len(types)*len(methods))
	if err := runJobs(cfg, len(cells), func(k int) error {
		ti, mi := k/len(methods), k%len(methods)
		it := types[ti]
		s, err := tuner.NewSession(tuner.Request{
			Dialect:  p.Dialect,
			Type:     it,
			Workload: p.Workload(),
			Budget:   2 * time.Hour, // five steps plus setup
			Clones:   1,
			Seed:     cfg.Seed + int64(1850+ti*10+mi),
			Logger:   cfg.Logger,
			Recorder: cfg.Recorder,
			Status:   cfg.Status,
		})
		if err != nil {
			return err
		}
		defer s.Close()
		// Transplant: replay the five best historical configurations
		// (clamped into this instance's bootable space by the knob
		// domain) — the "5 tuning steps" of §6.5.
		var cfgs []knob.Config
		for _, smp := range seeds[mi] {
			if len(cfgs) >= 5 {
				break
			}
			cfgs = append(cfgs, smp.Knobs)
		}
		best := s.DefaultPerf
		for _, kc := range cfgs {
			samples, err := s.EvaluateConfigs([]knob.Config{kc})
			if err != nil {
				break
			}
			for _, smp := range samples {
				if smp.Perf.Better(best, s.DefaultPerf, s.Alpha) {
					best = smp.Perf
				}
			}
		}
		cells[k] = fmt.Sprintf("%.0f", p.throughput(best))
		return nil
	}); err != nil {
		return err
	}

	t := newTable(append([]string{"Type"}, methods...)...)
	for ti, it := range types {
		row := []string{fmt.Sprintf("CDB_%s (%dc/%dGB)", it.Name, it.Cores, it.RAMGB)}
		for mi := range methods {
			row = append(row, cells[ti*len(methods)+mi])
		}
		t.row(row...)
	}
	fmt.Fprintf(w, "best throughput (%s) after 5 reused tuning steps per instance type\n", p.unit())
	t.flush(w)
	return nil
}
