package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/telemetry"
)

// TestTelemetryGoldenIdentity is the acceptance gate of the observability
// layer: enabling tracing must not change one output bit, at any worker
// count. The recorder never advances clocks, never consumes RNG streams
// and never writes to the experiment writer, so the traced run must equal
// the untraced golden byte for byte.
func TestTelemetryGoldenIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions")
	}
	id := "table6"
	if !raceEnabled {
		id = "fig5" // wider fan-out; too slow under the race detector
	}
	run := func(t *testing.T, rec *telemetry.Recorder, workers int) []byte {
		t.Helper()
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		r, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Scale: 0.01, Seed: 7, Recorder: rec}
		var buf bytes.Buffer
		if err := r.Run(cfg, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	golden := run(t, nil, 1)
	for _, workers := range []int{1, 8} {
		rec := telemetry.New()
		got := run(t, rec, workers)
		if !bytes.Equal(golden, got) {
			t.Errorf("traced output (workers=%d) differs from untraced golden\nuntraced:\n%s\ntraced:\n%s",
				workers, golden, got)
		}
		// The trace must be substantive, not just harmless: sessions with
		// spans, and a report whose per-session step costs add up to that
		// session's virtual spend.
		rep := rec.Report()
		if len(rep.Sessions) == 0 || rep.Spans == 0 {
			t.Fatalf("workers=%d: trace is empty (%d sessions, %d spans)", workers, len(rep.Sessions), rep.Spans)
		}
		for _, s := range rep.Sessions {
			// The accounting is exact in integer durations (see the tuner
			// package's TestTraceAccountsEveryAdvance); the report renders
			// each step in float seconds, so re-summing here can differ from
			// the total by ulps. Anything beyond float rounding means an
			// advance escaped charging.
			var sum float64
			for _, sec := range s.StepSeconds {
				sum += sec
			}
			if d := sum - s.VirtualSeconds; d > 1e-6 || d < -1e-6 {
				t.Errorf("workers=%d: session %q step costs sum to %v, virtual spend is %v",
					workers, s.Name, sum, s.VirtualSeconds)
			}
			if !s.Finished {
				t.Errorf("workers=%d: session %q never finished", workers, s.Name)
			}
		}
		var trace bytes.Buffer
		if err := rec.WriteTrace(&trace); err != nil {
			t.Fatal(err)
		}
		for i, ln := range strings.Split(strings.TrimSpace(trace.String()), "\n") {
			if !json.Valid([]byte(ln)) {
				t.Fatalf("workers=%d: trace line %d is not valid JSON: %s", workers, i, ln)
			}
		}
	}
}
