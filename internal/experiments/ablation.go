package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/hunter-cdb/hunter/internal/core"
)

// ablationRow is one module combination of Tables 3–5.
type ablationRow struct {
	label string
	opts  core.Options
}

// ablationRows returns the six rows the paper's ablation tables use. The
// first row (DDPG alone) is equivalent to CDBTune.
func ablationRows() []ablationRow {
	return []ablationRow{
		{"DDPG", core.Options{DisableGA: true, DisablePCA: true, DisableRF: true, DisableFES: true, Warmup: core.WarmupNone}},
		{"DDPG+GA", core.Options{DisablePCA: true, DisableRF: true, DisableFES: true}},
		{"DDPG+GA+PCA", core.Options{DisableRF: true, DisableFES: true}},
		{"DDPG+GA+RF", core.Options{DisablePCA: true, DisableFES: true}},
		{"DDPG+GA+FES", core.Options{DisablePCA: true, DisableRF: true}},
		{"HUNTER (all)", core.Options{}},
	}
}

// runAblation executes the module-combination study on one panel.
func runAblation(cfg Config, p panel, w io.Writer, seedBase int64) error {
	cfg = cfg.withDefaults()
	budget := cfg.budget(72 * time.Hour)
	combos := ablationRows()
	rows := make([][]string, len(combos))
	if err := runJobs(cfg, len(combos), func(i int) error {
		s, err := runSession(cfg, p, "HUNTER", combos[i].opts, budget, 1, seedBase+int64(i))
		if err != nil {
			return err
		}
		defer s.Close()
		best, ok := s.Best()
		rt, _ := s.Curve().RecommendationTime(s.DefaultPerf, s.Alpha, 0.98)
		if !ok {
			rows[i] = []string{combos[i].label, "-", "-", "-"}
		} else {
			rows[i] = []string{combos[i].label,
				fmt.Sprintf("%.0f", p.throughput(best.Perf)),
				fmt.Sprintf("%.1f", best.Perf.P95LatencyMs),
				hours(rt)}
		}
		return nil
	}); err != nil {
		return err
	}
	t := newTable("Modules", fmt.Sprintf("T (%s)", p.unit()), "L p95 (ms)", "Rec. time")
	for _, row := range rows {
		t.row(row...)
	}
	t.flush(w)
	return nil
}

// RunTable3 reproduces Table 3: the ablation study on MySQL with TPC-C.
func RunTable3(cfg Config, w io.Writer) error {
	return runAblation(cfg, tpccMySQL(), w, 1100)
}

// RunTable4 reproduces Table 4: the ablation study on MySQL, Sysbench RW.
func RunTable4(cfg Config, w io.Writer) error {
	return runAblation(cfg, sysbenchRWMySQL(), w, 1200)
}

// RunTable5 reproduces Table 5: the ablation study on PostgreSQL, TPC-C.
func RunTable5(cfg Config, w io.Writer) error {
	return runAblation(cfg, tpccPostgres(), w, 1300)
}

// RunTable6 reproduces Table 6: warm-starting the DRL model with GA+
// (GA + PCA + RF + FES, i.e. full HUNTER) versus hindsight experience
// replay, on MySQL and PostgreSQL with TPC-C.
func RunTable6(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	budget := cfg.budget(72 * time.Hour)
	panels := []panel{tpccMySQL(), tpccPostgres()}
	modes := []struct {
		label string
		opts  core.Options
	}{
		{"GA+", core.Options{}},
		{"HER", core.Options{Warmup: core.WarmupHER}},
	}
	rows := make([][]string, len(panels)*len(modes))
	if err := runJobs(cfg, len(rows), func(k int) error {
		pi, mi := k/len(modes), k%len(modes)
		p, mode := panels[pi], modes[mi]
		s, err := runSession(cfg, p, "HUNTER", mode.opts, budget, 1, int64(1400+pi*10+mi))
		if err != nil {
			return err
		}
		defer s.Close()
		best, _ := s.Best()
		rt, _ := s.Curve().RecommendationTime(s.DefaultPerf, s.Alpha, 0.98)
		rows[k] = []string{p.Name, mode.label,
			fmt.Sprintf("%.0f %s", p.throughput(best.Perf), p.unit()),
			fmt.Sprintf("%.1f", best.Perf.P95LatencyMs),
			hours(rt)}
		return nil
	}); err != nil {
		return err
	}
	t := newTable("Database", "Warm-up", "T", "L p95 (ms)", "Rec. time")
	for _, row := range rows {
		t.row(row...)
	}
	t.flush(w)
	return nil
}
