package experiments

import (
	"fmt"
	"io"

	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/tuner"
	"github.com/hunter-cdb/hunter/internal/tuners/gatuner"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// RunEvalCost demonstrates the evaluation-cost-collapse layer on the
// production workload: a GA tuning session (the evaluation-bound method)
// on the full captured trace versus the compressed kernel with wave dedup
// and warm-state deltas on. Both sessions spend the same virtual budget;
// what compression buys is wall-clock per step, which the bench
// scoreboard records — this experiment reports the deterministic side:
// the kernel's shape and how close the compressed session's tuning
// outcome tracks the full-trace one.
func RunEvalCost(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	k := workload.CompressProduction()
	fmt.Fprintf(w, "compressed kernel: %d trace clusters -> %d classes, %.1f%% coverage by named classes\n",
		k.Clusters, k.Kept, 100*k.Coverage)
	full := workload.Production()
	fr, fw, _, _, _ := full.Averages()
	kr, kw, _, _, _ := k.Profile.Averages()
	fmt.Fprintf(w, "mix demands: full r=%.2f w=%.2f  kernel r=%.2f w=%.2f  (measure fraction %.2f)\n\n",
		fr, fw, kr, kw, k.Profile.MeasureFraction)

	p := productionMySQL()
	budget := cfg.budget(24 * hour)
	const clones = 4
	type leg struct {
		name string
		wl   *workload.Profile
		eval *tuner.EvalOptions
	}
	legs := []leg{
		{"full trace", full, nil},
		{"compressed", k.Profile, &tuner.EvalOptions{DedupWaves: true, WarmStateDeltas: true}},
	}
	// Each recommendation is re-measured on the full trace with a fresh
	// engine: the compressed session tunes on the kernel, but what the user
	// deploys runs the real workload, so that column is the one fidelity is
	// judged on.
	deploy := func(point []float64, s *tuner.Session) (float64, error) {
		e, err := simdb.NewEngine(p.Dialect, p.Type.Resources(), cfg.Seed)
		if err != nil {
			return 0, err
		}
		if err := e.Configure(s.Space.Decode(point)); err != nil {
			return 0, err
		}
		perf, _, err := e.Run(full)
		if err != nil {
			return 0, err
		}
		return p.throughput(perf), nil
	}

	t := newTable("evaluation", "steps", "best fitness", "best "+p.unit(), "deployed "+p.unit(), "virtual time")
	for _, l := range legs {
		s, err := tuner.NewSession(tuner.Request{
			Dialect:  p.Dialect,
			Type:     p.Type,
			Workload: l.wl,
			Budget:   budget,
			Clones:   clones,
			Seed:     cfg.Seed,
			Logger:   cfg.Logger,
			Recorder: cfg.Recorder,
			Status:   cfg.Status,
			Eval:     l.eval,
		})
		if err != nil {
			return fmt.Errorf("experiments: evalcost %s: %w", l.name, err)
		}
		if err := gatuner.New().Tune(s); err != nil {
			s.Close()
			return fmt.Errorf("experiments: evalcost %s: %w", l.name, err)
		}
		best, ok := s.Best()
		fit, tput, deployed := 0.0, 0.0, 0.0
		if ok {
			fit = s.Fitness(best.Perf)
			tput = p.throughput(best.Perf)
			if deployed, err = deploy(best.Point, s); err != nil {
				s.Close()
				return fmt.Errorf("experiments: evalcost %s deploy: %w", l.name, err)
			}
		}
		t.row(l.name,
			fmt.Sprintf("%d", s.Steps()),
			fmt.Sprintf("%.3f", fit),
			fmt.Sprintf("%.0f", tput),
			fmt.Sprintf("%.0f", deployed),
			hours(s.Elapsed()))
		s.Close()
	}
	t.flush(w)
	fmt.Fprintf(w, "\nSame virtual budget and step accounting on both rows: the compressed\n")
	fmt.Fprintf(w, "kernel buys wall-clock per stress test (see BENCH_eval.json). 'deployed'\n")
	fmt.Fprintf(w, "re-measures each recommendation on the full trace — the column fidelity\n")
	fmt.Fprintf(w, "is judged on, since a kernel-tuned configuration runs the real workload.\n")
	return nil
}
