package experiments

import (
	"fmt"
	"io"

	"github.com/hunter-cdb/hunter/internal/core"
	"github.com/hunter-cdb/hunter/internal/safety"
	"github.com/hunter-cdb/hunter/internal/tuner"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// RunSafety demonstrates the online safe-tuning loop under live workload
// drift, in three legs on MySQL/TPC-C with the same seed and the same
// seeded diurnal drift stream (demand swells, then collapses into an
// overnight trough — silently; the session is never told):
//
// Leg 1 tunes naively online: every improving pool candidate deploys
// straight to the serving instance, nothing blocks and nothing reverts.
// When the trough hits, measured throughput dives far below the rolling
// baseline learned during the day and the monitor logs an unbounded run
// of consecutive guardrail violations.
//
// Leg 2 arms the guardrails: candidates pass a replicated canary gate
// under a trust region, and sustained violation of the rolling baseline
// triggers an automatic rollback to the last-known-good configuration.
// The violation run is contained at the rollback limit.
//
// Leg 3 additionally arms drift *detection* (divergence of monitored
// throughput from the rolling baseline) with a window shorter than the
// rollback limit, so the session re-baselines and adapts to the new
// workload instead of reverting.
//
// The verdict line is grep-able: containment holds when the guarded leg's
// longest consecutive-violation run stays within the rollback limit while
// the naive leg's exceeds it, with at least one rollback exercised (and
// none in the naive leg, which has no rollback machinery).
func RunSafety(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	p := tpccMySQL()
	opts := core.Options{SampleTarget: cfg.scaledSampleTarget()}
	budget := cfg.budget(6 * hour)

	// One diurnal cycle across the budget: demand swells at ~1/4 budget,
	// returns to base at ~1/2, and collapses into a deep overnight trough
	// at ~3/4 (client threads drop to a tenth, throughput with them). All
	// switches are silent; the monitor sees the trough only as measured
	// throughput diverging far below the baseline learned during the day.
	stream := workload.StreamSpec{
		Kind:      workload.StreamDiurnal,
		Period:    budget,
		Events:    4,
		Amplitude: 0.9,
		Seed:      cfg.Seed,
	}

	type leg struct {
		name   string
		safety safety.Options
	}
	legs := []leg{
		{"naive online (no guardrails)", safety.Options{Guardrails: false}},
		{"guarded (canary gate + trust region + rollback)", safety.Options{Guardrails: true}},
		{"guarded + drift detection (adapt, not revert)", safety.Options{
			Guardrails: true, DriftThreshold: 0.20, DriftWindow: 1,
		}},
	}

	limit := safety.Options{}.WithDefaults().ViolationLimit
	type outcome struct {
		report   *tuner.SafetyReport
		maxRun   int
		timeline []tuner.MonitorPoint
	}
	results := make([]outcome, len(legs))

	for i, l := range legs {
		sOpts := l.safety
		s, err := tuner.NewSession(tuner.Request{
			Dialect:  p.Dialect,
			Type:     p.Type,
			Workload: p.Workload(),
			Budget:   budget,
			Clones:   3,
			Seed:     cfg.Seed + 8600,
			Logger:   cfg.Logger,
			Recorder: cfg.Recorder,
			Status:   cfg.Status,
			Safety:   &sOpts,
		})
		if err != nil {
			return err
		}
		events, err := workload.GenerateStream(p.Workload(), stream)
		if err != nil {
			s.Close()
			return err
		}
		for _, ev := range events {
			if err := s.ScheduleDrift(ev.At, ev.Profile); err != nil {
				s.Close()
				return err
			}
		}
		if err := core.New(opts).Tune(s); err != nil {
			s.Close()
			return err
		}
		r := &results[i]
		r.report = s.Safety()
		r.timeline = s.DeployedTimeline()
		r.maxRun = maxViolationRun(r.timeline)

		fmt.Fprintf(w, "leg %d: %s\n", i+1, l.name)
		fmt.Fprintf(w, "  diurnal swell at ~%.1f h, overnight trough at ~%.1f h of %.1f h (silent switches, %d clone(s))\n",
			(budget / 4).Hours(), (budget * 3 / 4).Hours(), budget.Hours(), 3)
		fmt.Fprint(w, indent(r.report.Summary()))
		fmt.Fprintf(w, "  longest violation run: %d probe(s)\n\n", r.maxRun)
		s.Close()
	}

	naive, guarded, adaptive := results[0], results[1], results[2]
	contained := guarded.maxRun <= limit
	naiveRunsWild := naive.maxRun > limit
	rolledBack := guarded.report.Rollbacks >= 1
	naiveNever := naive.report.Rollbacks == 0
	fmt.Fprintf(w, "violation containment: naive run %d vs guarded run %d (rollback limit %d)\n",
		naive.maxRun, guarded.maxRun, limit)
	fmt.Fprintf(w, "rollbacks: naive %d, guarded %d\n", naive.report.Rollbacks, guarded.report.Rollbacks)
	fmt.Fprintf(w, "drift adaptation: %d drift(s) detected, %d rollback(s) in the adaptive leg\n",
		adaptive.report.Drifts, adaptive.report.Rollbacks)
	if contained && naiveRunsWild && rolledBack && naiveNever {
		fmt.Fprintf(w, "containment: PASS\n")
	} else {
		fmt.Fprintf(w, "containment: FAIL\n")
		return fmt.Errorf("experiments: safety containment failed (naive run %d, guarded run %d, limit %d, guarded rollbacks %d, naive rollbacks %d)",
			naive.maxRun, guarded.maxRun, limit, guarded.report.Rollbacks, naive.report.Rollbacks)
	}
	return nil
}

// maxViolationRun is the longest run of consecutive violating probes in a
// deployed-config monitoring timeline.
func maxViolationRun(tl []tuner.MonitorPoint) int {
	run, max := 0, 0
	for _, pt := range tl {
		if pt.Violation {
			run++
			if run > max {
				max = run
			}
		} else {
			run = 0
		}
	}
	return max
}
