package experiments

import (
	"bytes"
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
)

// TestResumeIdentity is the durability contract of the checkpoint
// subsystem: kill a session at a wave boundary, resume it from the
// on-disk snapshot, and the final report and virtual telemetry trace must
// be byte-identical to an uninterrupted run — in the sample-factory phase
// and in the DDPG exploration phase, at worker-pool sizes 1 and 8.
func TestResumeIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions")
	}
	kills := []struct {
		name string
		stop int
	}{
		{"factory-phase", 3},
		{"explore-phase", 25},
	}
	// The subtests mutate the process-wide worker override, so they must
	// not run in parallel with each other.
	for _, k := range kills {
		k := k
		t.Run(k.name, func(t *testing.T) {
			var golden []byte
			for _, workers := range []int{1, 8} {
				prev := parallel.SetWorkers(workers)
				cfg := Config{
					Scale:          0.3,
					Seed:           7,
					CheckpointDir:  t.TempDir(),
					StopAfterWaves: k.stop,
				}
				var buf bytes.Buffer
				err := RunResumeIdentity(cfg, &buf)
				parallel.SetWorkers(prev)
				if err != nil {
					t.Fatalf("workers=%d: %v\n%s", workers, err, buf.Bytes())
				}
				// The experiment output embeds the run's report and the
				// trace byte count, so comparing it across worker counts
				// extends the identity check to the scheduler.
				if golden == nil {
					golden = buf.Bytes()
				} else if !bytes.Equal(golden, buf.Bytes()) {
					t.Errorf("workers=%d output differs from workers=1\nworkers=1:\n%s\nworkers=%d:\n%s",
						workers, golden, workers, buf.Bytes())
				}
			}
		})
	}
}
