package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/hunter-cdb/hunter/internal/core"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/tuner"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// RunFigure10 reproduces Figure 10: tuning the real-world Production
// workload (captured at 9:00), then a workload drift at the 48-hour mark
// to the 21:00 capture. Every tuner keeps its learned state across the
// drift; the learning-based methods recover superior configurations much
// faster than the search-based ones (§5).
func RunFigure10(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	driftAt := cfg.budget(48 * time.Hour)
	budget := cfg.budget(96 * time.Hour)
	methods := []string{"BestConfig", "OtterTune", "CDBTune", "QTune", "ResTune", "HUNTER"}
	p := productionMySQL()

	type result struct {
		curve       tuner.Curve
		recovery    time.Duration
		hasRecovery bool
	}
	results := make([]result, len(methods))
	if err := runJobs(cfg, len(methods), func(i int) error {
		s, err := tuner.NewSession(tuner.Request{
			Dialect:  p.Dialect,
			Type:     p.Type,
			Workload: p.Workload(),
			Budget:   budget,
			Clones:   1,
			Seed:     cfg.Seed + int64(1000+i),
			Logger:   cfg.Logger,
			Recorder: cfg.Recorder,
			Status:   cfg.Status,
		})
		if err != nil {
			return err
		}
		defer s.Close()
		if err := s.ScheduleDrift(driftAt, workload.ProductionDrifted()); err != nil {
			return err
		}
		if err := newTuner(methods[i], core.Options{}).Tune(s); err != nil {
			return err
		}
		r := &results[i]
		r.curve = s.Curve()
		// Recovery time: from the drift to the first post-drift point
		// within 95% of the method's final post-drift fitness.
		var post tuner.Curve
		for _, cp := range r.curve {
			if cp.Time >= driftAt {
				post = append(post, cp)
			}
		}
		if rt, _ := post.RecommendationTime(s.DefaultPerf, s.Alpha, 0.95); rt > 0 {
			r.recovery, r.hasRecovery = rt-driftAt, true
		}
		return nil
	}); err != nil {
		return err
	}
	curves := map[string]tuner.Curve{}
	recovery := map[string]time.Duration{}
	for i, m := range methods {
		curves[m] = results[i].curve
		if results[i].hasRecovery {
			recovery[m] = results[i].recovery
		}
	}

	fmt.Fprintf(w, "(a) best throughput (%s) before the drift\n", p.unit())
	preMarks := timeMarks(driftAt, 5)
	ta := newTable(append([]string{"Time"}, methods...)...)
	for _, mk := range preMarks {
		row := []string{hours(mk)}
		for _, m := range methods {
			if perf, ok := curves[m].At(mk); ok {
				row = append(row, fmt.Sprintf("%.0f", p.throughput(perf)))
			} else {
				row = append(row, "-")
			}
		}
		ta.row(row...)
	}
	ta.flush(w)

	fmt.Fprintf(w, "\n(b) best throughput after the drift at %s (new 9 pm workload)\n", hours(driftAt))
	tb := newTable(append([]string{"Time after drift"}, methods...)...)
	for _, frac := range []float64{0.05, 0.15, 0.3, 0.6, 1.0} {
		mk := driftAt + time.Duration(frac*float64(budget-driftAt))
		row := []string{hours(mk - driftAt)}
		for _, m := range methods {
			perf, ok := bestSince(curves[m], driftAt, mk)
			if ok {
				row = append(row, fmt.Sprintf("%.0f", p.throughput(perf)))
			} else {
				row = append(row, "-")
			}
		}
		tb.row(row...)
	}
	tb.flush(w)

	fmt.Fprintln(w, "\nrecovery time to 95% of post-drift optimum:")
	tr := newTable("Method", "Recovery")
	for _, m := range methods {
		if rt, ok := recovery[m]; ok {
			tr.row(m, hours(rt))
		} else {
			tr.row(m, "not recovered")
		}
	}
	tr.flush(w)
	return nil
}

// bestSince returns the latest curve point in [since, until] — the best
// configuration found since the drift.
func bestSince(c tuner.Curve, since, until time.Duration) (perf simdb.Perf, ok bool) {
	for _, cp := range c {
		if cp.Time >= since && cp.Time <= until {
			perf, ok = cp.Perf, true
		}
	}
	return perf, ok
}
