package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/hunter-cdb/hunter/internal/chaos"
	"github.com/hunter-cdb/hunter/internal/core"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// RunChaos demonstrates the fault-injection and self-healing design end to
// end, in two legs:
//
// Leg 1 arms a deterministic chaos plan (default: the "flaky" profile) on a
// full HUNTER session. Injected boot failures, transients, crashes,
// stragglers and hangs strike mid-run; the supervisor retries, replaces and
// quarantines, and the session still completes with a recommendation. The
// printed fault summary is a pure function of (seed, chaos seed, profile) —
// byte-identical across worker counts, which is what CI checks.
//
// Leg 2 arms the "catastrophic" profile, under which every stress test
// crashes its clone: the fleet collapses, the session surfaces
// ErrFleetLost, and the run degrades to the user instance's baseline
// configuration instead of failing outright.
func RunChaos(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	p := tpccMySQL()
	opts := core.Options{SampleTarget: cfg.scaledSampleTarget()}

	profName := cfg.ChaosProfile
	if profName == "" {
		profName = "flaky"
	}
	profile, err := chaos.ProfileByName(profName)
	if err != nil {
		return err
	}
	chaosSeed := cfg.ChaosSeed
	if chaosSeed == 0 {
		chaosSeed = 7
	}

	req := func(plan *chaos.Plan, budget time.Duration, clones int, seedOffset int64) tuner.Request {
		return tuner.Request{
			Dialect:  p.Dialect,
			Type:     p.Type,
			Workload: p.Workload(),
			Budget:   budget,
			Clones:   clones,
			Seed:     cfg.Seed + seedOffset,
			Logger:   cfg.Logger,
			Recorder: cfg.Recorder,
			Status:   cfg.Status,
			Chaos:    plan,
		}
	}

	// Leg 1: a faulty-but-survivable cloud. The session must complete and
	// deploy a recommendation despite every injected fault.
	plan := &chaos.Plan{Seed: chaosSeed, Profile: profile}
	fmt.Fprintf(w, "leg 1: HUNTER on %s under the %q fault profile (chaos seed %d)\n",
		p.Name, profile.Name, chaosSeed)
	s, err := tuner.NewSession(req(plan, cfg.budget(8*hour), 5, 4200))
	if err != nil {
		return err
	}
	err = core.New(opts).Tune(s)
	if err != nil && !errors.Is(err, tuner.ErrBudgetExhausted) {
		s.Close()
		return err
	}
	best, err := s.DeployBest()
	if err != nil {
		s.Close()
		return err
	}
	fmt.Fprintf(w, "  waves %d  steps %d  elapsed %.2f h  pool %d\n",
		s.WaveCount(), s.Steps(), s.Elapsed().Hours(), s.Pool.Len())
	fmt.Fprintf(w, "  default %.0f %s -> recommended %.0f %s  (fitness %.3f)\n",
		p.throughput(s.DefaultPerf), p.unit(), p.throughput(best.Perf), p.unit(),
		s.Fitness(best.Perf))
	fmt.Fprint(w, indent(s.Resilience().Summary()))

	survived := s.Resilience().FleetSize > 0 && s.Steps() > 0
	faulted := s.Resilience().Injected.Total() > 0
	s.Close()
	fmt.Fprintf(w, "  session completed despite faults: %v\n\n", survived && faulted)

	// Leg 2: total fleet loss. Every stress test crashes its clone, strikes
	// accumulate, every slot is quarantined, and the session reports
	// ErrFleetLost — the caller falls back to the baseline configuration.
	fmt.Fprintf(w, "leg 2: HUNTER on %s under the \"catastrophic\" profile (fleet-loss fallback)\n", p.Name)
	cat := &chaos.Plan{Seed: chaosSeed, Profile: chaos.Catastrophic()}
	sc, err := tuner.NewSession(req(cat, cfg.budget(4*hour), 3, 4300))
	if err != nil {
		return err
	}
	defer sc.Close()
	terr := core.New(opts).Tune(sc)
	lost := errors.Is(terr, tuner.ErrFleetLost)
	fmt.Fprintf(w, "  fleet lost: %v\n", lost)
	if !lost {
		return fmt.Errorf("experiments: catastrophic leg finished without losing the fleet (err=%v)", terr)
	}
	fmt.Fprintf(w, "  fallback: baseline configuration keeps serving at %.0f %s (fitness %.3f)\n",
		p.throughput(sc.DefaultPerf), p.unit(), sc.Fitness(sc.DefaultPerf))
	fmt.Fprint(w, indent(sc.Resilience().Summary()))
	fmt.Fprintf(w, "graceful degradation: PASS\n")
	return nil
}

// indent prefixes every line of s with two spaces (nested report blocks).
func indent(s string) string {
	var b []byte
	for len(s) > 0 {
		b = append(b, ' ', ' ')
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		if i < len(s) {
			i++
		}
		b = append(b, s[:i]...)
		s = s[i:]
	}
	return string(b)
}
