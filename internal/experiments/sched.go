package experiments

import (
	"github.com/hunter-cdb/hunter/internal/parallel"
)

// Session scheduling.
//
// Every runner's work decomposes into independent (method × panel × seed)
// tuning sessions: each session owns its RNG, virtual clock, simulated
// cloud provider and engines, so sessions never share mutable state and
// can execute in any order — or concurrently — without changing a single
// result bit. The runners therefore declare their sessions as indexed
// jobs, each job writing its extracted results (curves, best points,
// recommendation times) into a per-index slot, and fold the slots into
// tables strictly in declaration order afterwards. Scheduling is the only
// thing that varies between serial and parallel runs; folding is not, so
// runner output is byte-identical for any worker count.
//
// Dependencies between sessions (a model-reuse registry populated by a
// training run, transplanted sample pools) are expressed as separate
// runJobs rounds: everything inside one round must be independent.

// runJobs executes n independent session jobs. With SerialSessions set,
// jobs run in declaration order on the calling goroutine; otherwise they
// fan out over the deterministic parallel worker pool (one job per chunk).
// All jobs run even if one fails; the first error in declaration order is
// returned, again independent of scheduling.
func runJobs(cfg Config, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	if cfg.SerialSessions {
		for i := 0; i < n; i++ {
			errs[i] = job(i)
		}
	} else {
		parallel.For(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				errs[i] = job(i)
			}
		})
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
