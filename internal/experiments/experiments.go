// Package experiments reproduces every table and figure of the paper's
// evaluation (§6). Each experiment is a named runner that executes the
// corresponding tuning sessions on the simulated cloud and prints the same
// rows/series the paper reports. The Scale knob shrinks the virtual time
// budgets so the whole suite can run as benchmarks; cmd/hunter-repro runs
// at full scale.
package experiments

import (
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"time"

	"github.com/hunter-cdb/hunter/internal/cloud"
	"github.com/hunter-cdb/hunter/internal/core"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/tuner"
	"github.com/hunter-cdb/hunter/internal/tuners/bestconfig"
	"github.com/hunter-cdb/hunter/internal/tuners/cdbtune"
	"github.com/hunter-cdb/hunter/internal/tuners/gatuner"
	"github.com/hunter-cdb/hunter/internal/tuners/ottertune"
	"github.com/hunter-cdb/hunter/internal/tuners/qtune"
	"github.com/hunter-cdb/hunter/internal/tuners/restune"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies every virtual-time budget (1 = paper scale). The
	// benchmark suite uses small scales; recommendation-time *ratios*
	// between methods are stable under scaling, absolute hours shrink.
	Scale float64
	Seed  int64
	// SerialSessions runs each runner's tuning sessions sequentially in
	// declaration order instead of fanning them out over the parallel
	// worker pool. Output is byte-identical either way (see sched.go);
	// the switch exists for debugging and timing baselines.
	SerialSessions bool
	// Recorder, when non-nil, traces every session the experiments run.
	// The recorder is passive (it never touches clocks, RNGs or output
	// writers), so experiment output is byte-identical with it on or off.
	Recorder *telemetry.Recorder
	// Logger receives each session's structured progress events. Nil
	// disables logging; loggers write to stderr, never to the experiment's
	// result writer.
	Logger *slog.Logger
	// Status receives live SessionStatus updates from every session the
	// experiments run — typically an obsv.Registry behind the -serve
	// introspection server. Like the Recorder it is passive: publishing
	// never changes experiment output.
	Status tuner.StatusSink

	// CheckpointDir, CheckpointEvery and StopAfterWaves parameterize the
	// resume-identity experiment (the hunter-repro -checkpoint-dir and
	// -checkpoint-every flags). An empty dir uses a temporary directory.
	CheckpointDir   string
	CheckpointEvery int
	StopAfterWaves  int
	// ResumeOnly makes the resume experiment skip its golden and kill legs
	// and just continue the snapshot already in CheckpointDir.
	ResumeOnly bool

	// ChaosProfile and ChaosSeed parameterize the chaos experiment (the
	// hunter-repro -chaos-profile and -chaos-seed flags). An empty profile
	// uses the experiment's default ("flaky").
	ChaosProfile string
	ChaosSeed    int64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 2022
	}
	return c
}

// budget scales a paper-scale budget, with a floor that keeps at least a
// handful of tuning steps possible.
func (c Config) budget(paper time.Duration) time.Duration {
	b := time.Duration(float64(paper) * c.Scale)
	if min := 45 * time.Minute; b < min {
		b = min
	}
	return b
}

// Runner executes one experiment, writing its tables/series to w.
type Runner struct {
	ID    string
	Title string
	Run   func(cfg Config, w io.Writer) error
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"table1", "Table 1: time breakdown for tuning in each step", RunTable1},
		{"fig1", "Figure 1: online tuning steps and time for the optimal throughput", RunFigure1},
		{"fig4", "Figure 4: performance change with increasing tuning time", RunFigure4},
		{"fig5", "Figure 5: sample quality distribution within 300 steps", RunFigure5},
		{"fig6", "Figure 6: best performance vs number of GA samples", RunFigure6},
		{"fig7", "Figure 7: PCA component selection and effect", RunFigure7},
		{"fig8", "Figure 8: performance vs number of tuned knobs", RunFigure8},
		{"fig9", "Figure 9: comparison with state-of-the-art tuning systems", RunFigure9},
		{"fig10", "Figure 10: throughput under real-world workload drift", RunFigure10},
		{"table3", "Table 3: ablation on MySQL with TPC-C", RunTable3},
		{"table4", "Table 4: ablation on MySQL with Sysbench RW", RunTable4},
		{"table5", "Table 5: ablation on PostgreSQL with TPC-C", RunTable5},
		{"table6", "Table 6: DRL warm-up ablation (HER vs GA+)", RunTable6},
		{"fig11", "Figure 11: throughput with different cost", RunFigure11},
		{"fig12", "Figure 12: throughput and recommendation time vs cloned CDBs", RunFigure12},
		{"fig13", "Figure 13: online model reuse", RunFigure13},
		{"fig14", "Figure 14: model reuse across instance types", RunFigure14},
		{"alpha", "Extra: recommended operating point vs the α preference", RunAlphaSensitivity},
		{"resume", "Extra: checkpoint/resume identity (kill after wave k, continue bit-identically)", RunResumeIdentity},
		{"chaos", "Extra: fault injection and self-healing (deterministic chaos plan, quarantine, fleet-loss fallback)", RunChaos},
		{"evalcost", "Extra: evaluation cost collapse (compressed kernel vs full trace, wave dedup, warm-state deltas)", RunEvalCost},
		{"safety", "Extra: online safe tuning under live drift (guardrails, canary gate, trust region, automatic rollback)", RunSafety},
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	var ids []string
	for _, r := range All() {
		ids = append(ids, r.ID)
	}
	return Runner{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, ", "))
}

// methodNames is the comparison order used throughout §6.
var methodNames = []string{"BestConfig", "OtterTune", "CDBTune", "QTune", "ResTune", "HUNTER"}

// newTuner builds a tuning method by name. HUNTER accepts module options.
func newTuner(name string, opts core.Options) tuner.Tuner {
	switch name {
	case "BestConfig":
		return bestconfig.New()
	case "OtterTune":
		return ottertune.New()
	case "CDBTune":
		return cdbtune.New()
	case "QTune":
		return qtune.New()
	case "ResTune":
		return restune.New()
	case "GA":
		return gatuner.New()
	case "HUNTER":
		return core.New(opts)
	}
	panic(fmt.Sprintf("experiments: unknown method %q", name))
}

// panel describes a (database, workload, instance) combination.
type panel struct {
	Name     string
	Dialect  simdb.Dialect
	Type     cloud.InstanceType
	Workload func() *workload.Profile
	// TPM reports throughput in txn/min (TPC-C convention) instead of
	// txn/s.
	TPM bool
}

func mysqlF() cloud.InstanceType { t, _ := cloud.TypeByName("F"); return t }
func prodD() cloud.InstanceType  { t, _ := cloud.TypeByName("D"); return t }
func pgHost() cloud.InstanceType { return cloud.CustomType("PG", 8, 16) }

func tpccMySQL() panel {
	return panel{Name: "MySQL/TPC-C", Dialect: simdb.MySQL, Type: mysqlF(), Workload: workload.TPCC, TPM: true}
}
func sysbenchWOMySQL() panel {
	return panel{Name: "MySQL/Sysbench WO", Dialect: simdb.MySQL, Type: mysqlF(), Workload: workload.SysbenchWO}
}
func sysbenchROMySQL() panel {
	return panel{Name: "MySQL/Sysbench RO", Dialect: simdb.MySQL, Type: mysqlF(), Workload: workload.SysbenchRO}
}
func sysbenchRWMySQL() panel {
	return panel{Name: "MySQL/Sysbench RW", Dialect: simdb.MySQL, Type: mysqlF(), Workload: workload.SysbenchRW}
}
func tpccPostgres() panel {
	return panel{Name: "PostgreSQL/TPC-C", Dialect: simdb.Postgres, Type: pgHost(), Workload: workload.TPCC, TPM: true}
}
func productionMySQL() panel {
	return panel{Name: "MySQL/Production", Dialect: simdb.MySQL, Type: prodD(), Workload: workload.Production}
}

// throughput formats perf in the panel's display unit.
func (p panel) throughput(perf simdb.Perf) float64 {
	if p.TPM {
		return perf.TPM()
	}
	return perf.ThroughputTPS
}

func (p panel) unit() string {
	if p.TPM {
		return "txn/min"
	}
	return "txn/s"
}

// scaledSampleTarget shrinks HUNTER's phase-1 sample target with the
// experiment scale: the paper's 140 samples amortize over a 70-hour
// session, and a scaled-down budget must scale the warm-start cost too or
// phase 1 would consume the whole session.
func (c Config) scaledSampleTarget() int {
	n := int(140 * c.Scale)
	if n < 40 {
		n = 40
	}
	if n > 140 {
		n = 140
	}
	return n
}

// runSession creates a session for the panel and runs the named method on
// it. The returned session is closed by the caller.
func runSession(cfg Config, p panel, method string, opts core.Options, budget time.Duration, clones int, seedOffset int64) (*tuner.Session, error) {
	if method == "HUNTER" && opts.SampleTarget == 0 {
		opts.SampleTarget = cfg.scaledSampleTarget()
	}
	s, err := tuner.NewSession(tuner.Request{
		Dialect:  p.Dialect,
		Type:     p.Type,
		Workload: p.Workload(),
		Budget:   budget,
		Clones:   clones,
		Seed:     cfg.Seed + seedOffset,
		Logger:   cfg.Logger,
		Recorder: cfg.Recorder,
		Status:   cfg.Status,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", method, p.Name, err)
	}
	if err := newTuner(method, opts).Tune(s); err != nil {
		s.Close()
		return nil, fmt.Errorf("experiments: %s on %s: %w", method, p.Name, err)
	}
	return s, nil
}

// tw is a minimal aligned-column table writer.
type tw struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *tw { return &tw{header: header} }

func (t *tw) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *tw) flush(w io.Writer) {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", width[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// hours renders a duration as fractional hours.
func hours(d time.Duration) string { return fmt.Sprintf("%.1f h", d.Hours()) }

// sortedKeys returns a map's keys sorted (stable table output).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Duration units used by tests.
const (
	minute = time.Minute
	hour   = time.Hour
)

// hunterDefaults returns HUNTER's default module options.
func hunterDefaults() core.Options { return core.Options{} }
