package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/hunter-cdb/hunter/internal/core"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// RunTable1 reproduces Table 1: the time breakdown of one tuning step. The
// constants are the measured costs the paper reports; the experiment also
// measures the *average realized* step time over a short session, which
// exceeds the sum because restarts and buffer-pool warm-ups are charged on
// top (and boot failures are cheaper — they skip the execution).
func RunTable1(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	costs := tuner.DefaultStepCosts()

	t := newTable("Step", "Time")
	t.row("Workload Execution", fmt.Sprintf("%.1f s", costs.WorkloadExecution.Seconds()))
	t.row("Metrics Collection", fmt.Sprintf("%.1f ms", float64(costs.MetricsCollection.Microseconds())/1000))
	t.row("Model Update", fmt.Sprintf("%.0f ms", float64(costs.ModelUpdate.Milliseconds())))
	t.row("Knobs Deployment", fmt.Sprintf("%.1f s", costs.KnobsDeployment.Seconds()))
	t.row("Knobs Recommendation", fmt.Sprintf("%.2f ms", float64(costs.KnobsRecommendation.Microseconds())/1000))
	t.row("(sum)", fmt.Sprintf("%.1f s", costs.StepTotal().Seconds()))
	t.flush(w)

	// Measured realized average over a short HUNTER run.
	p := tpccMySQL()
	budget := cfg.budget(3 * time.Hour)
	s, err := runSession(cfg, p, "HUNTER", core.Options{SampleTarget: 40}, budget, 1, 1)
	if err != nil {
		return err
	}
	defer s.Close()
	if s.Steps() > 0 {
		avg := s.Elapsed() / time.Duration(s.Steps())
		fmt.Fprintf(w, "\nmeasured: %d steps in %.2f h → %.1f s/step (incl. restarts, warm-up, boot failures)\n",
			s.Steps(), s.Elapsed().Hours(), avg.Seconds())
	}
	return nil
}
