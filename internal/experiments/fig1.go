package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/hunter-cdb/hunter/internal/core"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// RunFigure1 reproduces Figure 1: (a) the number of tuning steps each
// state-of-the-art method needs to reach its optimal throughput on TPC-C,
// and (b) the tuning time to reach the optimum on the four standard
// workloads — the cold-start evidence that motivates HUNTER.
func RunFigure1(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	budget := cfg.budget(50 * time.Hour)
	methods := []string{"BestConfig", "OtterTune", "CDBTune", "QTune", "ResTune"}
	p := tpccMySQL()
	panels := []panel{sysbenchROMySQL(), sysbenchWOMySQL(), sysbenchRWMySQL(), tpccMySQL()}

	// Jobs 0..4 are part (a)'s TPC-C sessions; the rest is the (method ×
	// workload) grid of part (b).
	type result struct {
		recTime time.Duration
		step    int
	}
	nA := len(methods)
	results := make([]result, nA+len(methods)*len(panels))
	if err := runJobs(cfg, len(results), func(i int) error {
		var s *tuner.Session
		var err error
		if i < nA {
			s, err = runSession(cfg, p, methods[i], core.Options{}, budget, 1, int64(i))
		} else {
			mi, pj := (i-nA)/len(panels), (i-nA)%len(panels)
			s, err = runSession(cfg, panels[pj], methods[mi], core.Options{}, budget, 1, int64(100+mi*10+pj))
		}
		if err != nil {
			return err
		}
		defer s.Close()
		results[i].recTime, results[i].step = s.Curve().RecommendationTime(s.DefaultPerf, s.Alpha, 0.98)
		return nil
	}); err != nil {
		return err
	}

	fmt.Fprintln(w, "(a) tuning steps for the optimal throughput on TPC-C")
	ta := newTable("Method", "Steps to optimum", "Rec. time")
	for i, m := range methods {
		ta.row(m, fmt.Sprintf("%d", results[i].step), hours(results[i].recTime))
	}
	ta.flush(w)

	fmt.Fprintln(w, "\n(b) tuning time for the optimal throughput per workload")
	tb := newTable(append([]string{"Method"}, panelNames(panels)...)...)
	for i := range methods {
		row := []string{methods[i]}
		for j := range panels {
			row = append(row, hours(results[nA+i*len(panels)+j].recTime))
		}
		tb.row(row...)
	}
	tb.flush(w)
	return nil
}

func panelNames(ps []panel) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
