package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/hunter-cdb/hunter/internal/core"
)

// RunFigure1 reproduces Figure 1: (a) the number of tuning steps each
// state-of-the-art method needs to reach its optimal throughput on TPC-C,
// and (b) the tuning time to reach the optimum on the four standard
// workloads — the cold-start evidence that motivates HUNTER.
func RunFigure1(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	budget := cfg.budget(50 * time.Hour)
	methods := []string{"BestConfig", "OtterTune", "CDBTune", "QTune", "ResTune"}

	fmt.Fprintln(w, "(a) tuning steps for the optimal throughput on TPC-C")
	ta := newTable("Method", "Steps to optimum", "Rec. time")
	p := tpccMySQL()
	for i, m := range methods {
		s, err := runSession(cfg, p, m, core.Options{}, budget, 1, int64(i))
		if err != nil {
			return err
		}
		rt, step := s.Curve().RecommendationTime(s.DefaultPerf, s.Alpha, 0.98)
		ta.row(m, fmt.Sprintf("%d", step), hours(rt))
		s.Close()
	}
	ta.flush(w)

	fmt.Fprintln(w, "\n(b) tuning time for the optimal throughput per workload")
	panels := []panel{sysbenchROMySQL(), sysbenchWOMySQL(), sysbenchRWMySQL(), tpccMySQL()}
	tb := newTable(append([]string{"Method"}, panelNames(panels)...)...)
	for i, m := range methods {
		row := []string{m}
		for j, pn := range panels {
			s, err := runSession(cfg, pn, m, core.Options{}, budget, 1, int64(100+i*10+j))
			if err != nil {
				return err
			}
			rt, _ := s.Curve().RecommendationTime(s.DefaultPerf, s.Alpha, 0.98)
			row = append(row, hours(rt))
			s.Close()
		}
		tb.row(row...)
	}
	tb.flush(w)
	return nil
}

func panelNames(ps []panel) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
