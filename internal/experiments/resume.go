package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/hunter-cdb/hunter/internal/core"
	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// RunResumeIdentity demonstrates the durability contract of the checkpoint
// subsystem end to end: a HUNTER session is run to completion (the golden
// run), then the identical session is run again but killed at a wave
// boundary via CheckpointPolicy.StopAfterWaves, abandoned, and continued
// from its on-disk snapshot in a fresh process state. The resumed run's
// final report and virtual-time telemetry trace must be byte-identical to
// the golden run's — any divergence fails the experiment.
//
// With Config.ResumeOnly set the golden and kill legs are skipped and the
// experiment just continues whatever snapshot is in Config.CheckpointDir
// (the hunter-repro -resume flag).
func RunResumeIdentity(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	p := tpccMySQL()
	budget := cfg.budget(8 * time.Hour)
	opts := core.Options{SampleTarget: cfg.scaledSampleTarget()}
	const clones = 3
	seed := cfg.Seed + 4100

	stopAfter := cfg.StopAfterWaves
	if stopAfter <= 0 {
		stopAfter = 5
	}
	dir := cfg.CheckpointDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "hunter-resume-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	req := func(rec *telemetry.Recorder, policy *tuner.CheckpointPolicy) tuner.Request {
		return tuner.Request{
			Dialect:    p.Dialect,
			Type:       p.Type,
			Workload:   p.Workload(),
			Budget:     budget,
			Clones:     clones,
			Seed:       seed,
			Logger:     cfg.Logger,
			Recorder:   rec,
			Status:     cfg.Status,
			Checkpoint: policy,
		}
	}
	policy := &tuner.CheckpointPolicy{Dir: dir, Every: cfg.CheckpointEvery}

	// resumeLeg continues the snapshot in dir with a fresh recorder (the
	// recorder's own history is restored from the checkpoint, exactly as a
	// restarted process would see it).
	resumeLeg := func() (string, []byte, error) {
		rec := telemetry.New()
		s, f, err := tuner.ResumeSession(context.Background(), req(rec, policy),
			filepath.Join(dir, tuner.CheckpointFileName))
		if err != nil {
			return "", nil, err
		}
		defer s.Close()
		if err := core.New(opts).ResumeTune(s, f); err != nil {
			return "", nil, err
		}
		return summarizeRun(s, rec)
	}

	if cfg.ResumeOnly {
		report, _, err := resumeLeg()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "resumed the snapshot in the checkpoint directory:\n%s", report)
		return nil
	}

	// Golden leg: the same session, never interrupted, no checkpointing.
	recG := telemetry.New()
	sG, err := tuner.NewSession(req(recG, nil))
	if err != nil {
		return err
	}
	if err := core.New(opts).Tune(sG); err != nil {
		sG.Close()
		return err
	}
	golden, goldenTrace, err := summarizeRun(sG, recG)
	sG.Close()
	if err != nil {
		return err
	}

	// Kill leg: identical run, checkpointing on, killed at the first wave
	// boundary past stopAfter. Everything in memory is then abandoned —
	// only the snapshot file survives.
	killPolicy := *policy
	killPolicy.StopAfterWaves = stopAfter
	sK, err := tuner.NewSession(req(telemetry.New(), &killPolicy))
	if err != nil {
		return err
	}
	err = core.New(opts).Tune(sK)
	killedAt := sK.WaveCount()
	sK.Close()
	if !errors.Is(err, tuner.ErrStopRequested) {
		if err == nil {
			return fmt.Errorf("experiments: run finished before wave %d; nothing to resume", stopAfter)
		}
		return err
	}

	report, trace, err := resumeLeg()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "golden run (uninterrupted):\n%s", golden)
	fmt.Fprintf(w, "killed at wave %d, resumed from its checkpoint:\n%s", killedAt, report)
	reportOK := report == golden
	traceOK := bytes.Equal(trace, goldenTrace)
	fmt.Fprintf(w, "final report identical:     %v\n", reportOK)
	fmt.Fprintf(w, "telemetry trace identical:  %v (%d bytes)\n", traceOK, len(goldenTrace))
	if !reportOK || !traceOK {
		if !traceOK {
			fmt.Fprintf(w, "trace diverges at byte %d of %d\n",
				diffAt(goldenTrace, trace), len(trace))
		}
		return fmt.Errorf("experiments: resumed run diverged from the uninterrupted run")
	}
	fmt.Fprintf(w, "resume identity: PASS\n")
	return nil
}

// summarizeRun deploys the best configuration and renders the run's final
// report plus its virtual-time telemetry trace — the two artifacts the
// determinism contract is checked against.
func summarizeRun(s *tuner.Session, rec *telemetry.Recorder) (string, []byte, error) {
	best, err := s.DeployBest()
	if err != nil {
		return "", nil, err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "  waves %d  steps %d  elapsed %.2f h  pool %d  curve %d\n",
		s.WaveCount(), s.Steps(), s.Elapsed().Hours(), s.Pool.Len(), len(s.Curve()))
	fmt.Fprintf(&b, "  best fitness %.9f  throughput %.3f txn/s  p95 %.3f ms\n",
		s.Fitness(best.Perf), best.Perf.ThroughputTPS, best.Perf.P95LatencyMs)
	var trace bytes.Buffer
	if err := rec.WriteTraceVirtual(&trace); err != nil {
		return "", nil, err
	}
	return b.String(), trace.Bytes(), nil
}

// diffAt returns the first index where a and b differ.
func diffAt(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
