package simdb

// bufferPool is a real LRU page cache with midpoint insertion, modelling
// the InnoDB buffer pool's young/old sublist design (and approximating
// PostgreSQL's clock sweep as a 50% midpoint). Newly read pages enter at
// the head of the old region; a page is promoted to the young head on a
// subsequent access (innodb_old_blocks_time semantics), so large scans
// cannot flush the hot working set.
//
// The pool operates on scaled page IDs: the engine maps the dataset onto
// at most maxSimPages simulated pages so one stress test costs tens of
// thousands of list operations regardless of dataset size, while hit
// ratios (which depend only on the pool/data ratio and access skew) are
// preserved.

type bpNode struct {
	page       uint32
	prev, next int32 // indices into nodes; -1 terminates
	dirty      bool
	young      bool
	touched    bool // accessed since insertion (for second-hit promotion)
}

type bufferPool struct {
	capacity int
	nodes    []bpNode
	// index maps a page ID to its node (-1 = not resident). Page IDs are
	// dense and bounded (the engine scales every dataset onto at most
	// maxSimPages simulated pages), so a direct-mapped slice beats a hash
	// map on the access hot loop; it grows on demand for sparse callers.
	index    []int32
	resident int
	free     []int32
	// Two-region LRU: young head..midpoint..old tail.
	head, tail int32 // global list
	midpoint   int32 // first node of the old region (-1 if none)
	youngLen   int
	oldLen     int
	oldPct     float64 // target old-region fraction
	promote2nd bool    // require a second hit before promotion

	// Counters.
	hits, misses   int64
	dirtyPages     int
	evictions      int64
	dirtyEvictions int64 // evictions that forced a page write-back
	youngPromotes  int64
	scanInsertions int64
}

func newBufferPool(capacity int, oldPct float64, promoteOnSecondHit bool) *bufferPool {
	b := &bufferPool{}
	b.reset(capacity, oldPct, promoteOnSecondHit)
	return b
}

// reset reinitializes the pool for a new shape/policy, reusing the node
// and index storage of the previous configuration. Engines rebuild their
// pool on every deployment that changes the pool shape, so avoiding the
// reallocation matters on the tuning hot path.
func (b *bufferPool) reset(capacity int, oldPct float64, promoteOnSecondHit bool) {
	if capacity < 1 {
		capacity = 1
	}
	if oldPct < 5 {
		oldPct = 5
	}
	if oldPct > 95 {
		oldPct = 95
	}
	b.capacity = capacity
	if cap(b.nodes) < capacity {
		b.nodes = make([]bpNode, 0, capacity)
	} else {
		b.nodes = b.nodes[:0]
	}
	for i := range b.index {
		b.index[i] = -1
	}
	b.resident = 0
	b.free = b.free[:0]
	b.head, b.tail, b.midpoint = -1, -1, -1
	b.youngLen, b.oldLen = 0, 0
	b.oldPct = oldPct / 100
	b.promote2nd = promoteOnSecondHit
	b.hits, b.misses = 0, 0
	b.dirtyPages = 0
	b.evictions, b.dirtyEvictions = 0, 0
	b.youngPromotes, b.scanInsertions = 0, 0
}

// setPolicy changes the LRU policy (old-region share, second-hit
// promotion) without touching pool content, the way the real server
// applies the dynamic innodb_old_blocks_pct / innodb_old_blocks_time
// knobs: the warm page set survives and the regions rebalance to the new
// target.
func (b *bufferPool) setPolicy(oldPct float64, promoteOnSecondHit bool) {
	if oldPct < 5 {
		oldPct = 5
	}
	if oldPct > 95 {
		oldPct = 95
	}
	b.oldPct = oldPct / 100
	b.promote2nd = promoteOnSecondHit
	b.rebalance()
}

// resize changes the pool capacity in place, preserving content — the
// online innodb_buffer_pool_size resize. Growing just raises the
// allocation ceiling; shrinking evicts from the global tail (coldest
// pages first, exactly the order Access eviction uses) until the resident
// set fits, returning the freed frames to the free list.
func (b *bufferPool) resize(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	b.capacity = capacity
	for b.resident > capacity {
		victim := b.tail
		v := &b.nodes[victim]
		if v.dirty {
			b.dirtyPages--
			b.dirtyEvictions++
		}
		b.index[v.page] = -1
		b.resident--
		b.unlink(victim)
		b.evictions++
		b.free = append(b.free, victim)
	}
	b.rebalance()
}

// slot returns the node index for page, or -1 when not resident.
func (b *bufferPool) slot(page uint32) int32 {
	if int(page) >= len(b.index) {
		return -1
	}
	return b.index[page]
}

// setSlot records page → node i, growing the index to cover page.
func (b *bufferPool) setSlot(page uint32, i int32) {
	if int(page) >= len(b.index) {
		grown := len(b.index)*2 + 64
		if grown <= int(page) {
			grown = int(page) + 1
		}
		next := make([]int32, grown)
		copy(next, b.index)
		for j := len(b.index); j < grown; j++ {
			next[j] = -1
		}
		b.index = next
	}
	b.index[page] = i
}

// Len returns the number of resident pages.
func (b *bufferPool) Len() int { return b.resident }

// HitRatio returns hits / (hits + misses) for the accesses so far.
func (b *bufferPool) HitRatio() float64 {
	total := b.hits + b.misses
	if total == 0 {
		return 0
	}
	return float64(b.hits) / float64(total)
}

// ResetCounters clears counters (after warm-up) without evicting pages.
func (b *bufferPool) ResetCounters() {
	b.hits, b.misses, b.evictions, b.youngPromotes, b.scanInsertions = 0, 0, 0, 0, 0
	b.dirtyEvictions = 0
}

// unlink removes node i from the list.
func (b *bufferPool) unlink(i int32) {
	n := &b.nodes[i]
	if n.prev >= 0 {
		b.nodes[n.prev].next = n.next
	} else {
		b.head = n.next
	}
	if n.next >= 0 {
		b.nodes[n.next].prev = n.prev
	} else {
		b.tail = n.prev
	}
	if b.midpoint == i {
		b.midpoint = n.next
	}
	if n.young {
		b.youngLen--
	} else {
		b.oldLen--
	}
	n.prev, n.next = -1, -1
}

// pushYoungHead inserts node i at the global head (young region).
func (b *bufferPool) pushYoungHead(i int32) {
	n := &b.nodes[i]
	n.young = true
	n.prev = -1
	n.next = b.head
	if b.head >= 0 {
		b.nodes[b.head].prev = i
	}
	b.head = i
	if b.tail < 0 {
		b.tail = i
	}
	b.youngLen++
}

// pushOldHead inserts node i at the midpoint (head of the old region).
func (b *bufferPool) pushOldHead(i int32) {
	n := &b.nodes[i]
	n.young = false
	if b.midpoint < 0 {
		// No old region yet: append at tail.
		n.prev = b.tail
		n.next = -1
		if b.tail >= 0 {
			b.nodes[b.tail].next = i
		}
		b.tail = i
		if b.head < 0 {
			b.head = i
		}
	} else {
		m := &b.nodes[b.midpoint]
		n.prev = m.prev
		n.next = b.midpoint
		if m.prev >= 0 {
			b.nodes[m.prev].next = i
		} else {
			b.head = i
		}
		m.prev = i
	}
	b.midpoint = i
	b.oldLen++
}

// rebalance demotes the young tail into the old region when the young
// region exceeds its share of the *resident* pages (matching InnoDB, whose
// old sublist is a fraction of the list, not of the pool capacity — a
// half-empty pool must not demote its entire hot set).
func (b *bufferPool) rebalance() {
	targetOld := int(b.oldPct * float64(b.resident))
	for b.oldLen < targetOld && b.youngLen > 0 {
		// Find young tail: node just before midpoint, or global tail.
		var yt int32
		if b.midpoint >= 0 {
			yt = b.nodes[b.midpoint].prev
		} else {
			yt = b.tail
		}
		if yt < 0 {
			return
		}
		b.unlink(yt)
		b.pushOldHead(yt)
	}
}

// Access touches a page: returns true on hit. isScan marks accesses from
// range scans, which never promote on first touch.
func (b *bufferPool) Access(page uint32, write, isScan bool) (hit bool) {
	if i := b.slot(page); i >= 0 {
		b.hits++
		n := &b.nodes[i]
		if write {
			if !n.dirty {
				n.dirty = true
				b.dirtyPages++
			}
		}
		if n.young {
			// Move to young head (cheap approximation: only if not there).
			if b.head != i {
				b.unlink(i)
				b.pushYoungHead(i)
			}
		} else {
			// Old-region hit: promote per policy.
			if !b.promote2nd || n.touched {
				b.unlink(i)
				b.pushYoungHead(i)
				b.youngPromotes++
				b.rebalance()
			} else {
				n.touched = true
			}
		}
		return true
	}
	// Miss: allocate (evicting from the old tail when full) and insert at
	// the midpoint.
	b.misses++
	var i int32
	switch {
	// The free list is only populated by an online shrink (resize), so a
	// free frame may be reused only while the resident set is under the
	// current capacity — otherwise the pool would refill past it.
	case b.resident < b.capacity && len(b.free) > 0:
		i = b.free[len(b.free)-1]
		b.free = b.free[:len(b.free)-1]
	case len(b.nodes) < b.capacity:
		b.nodes = append(b.nodes, bpNode{})
		i = int32(len(b.nodes) - 1)
	default:
		// Evict the global tail (coldest old page; young tail if no old).
		victim := b.tail
		v := &b.nodes[victim]
		if v.dirty {
			// Evicting a dirty page forces a synchronous write-back —
			// the reason small pools amplify write I/O.
			b.dirtyPages--
			b.dirtyEvictions++
		}
		b.index[v.page] = -1
		b.resident--
		b.unlink(victim)
		b.evictions++
		i = victim
	}
	n := &b.nodes[i]
	*n = bpNode{page: page, prev: -1, next: -1}
	if write {
		n.dirty = true
		b.dirtyPages++
	}
	b.setSlot(page, i)
	b.resident++
	b.pushOldHead(i)
	if isScan {
		b.scanInsertions++
	}
	b.rebalance()
	return false
}

// FlushDirty marks up to n dirty pages clean (background flushing),
// returning how many were flushed. It walks from the old tail, matching
// the page cleaners' LRU-tail flush order.
func (b *bufferPool) FlushDirty(n int) int {
	flushed := 0
	for i := b.tail; i >= 0 && flushed < n; i = b.nodes[i].prev {
		if b.nodes[i].dirty {
			b.nodes[i].dirty = false
			b.dirtyPages--
			flushed++
		}
	}
	return flushed
}

// DirtyRatio returns the dirty fraction of resident pages.
func (b *bufferPool) DirtyRatio() float64 {
	if b.resident == 0 {
		return 0
	}
	return float64(b.dirtyPages) / float64(b.resident)
}

// checkList verifies list invariants; used by tests.
func (b *bufferPool) checkList() error {
	count := 0
	var prev int32 = -1
	for i := b.head; i >= 0; i = b.nodes[i].next {
		if b.nodes[i].prev != prev {
			return errListCorrupt
		}
		prev = i
		count++
		if count > len(b.nodes)+1 {
			return errListCorrupt
		}
	}
	if count != b.resident {
		return errListCorrupt
	}
	if b.youngLen+b.oldLen != count {
		return errListCorrupt
	}
	return nil
}

var errListCorrupt = errorString("simdb: buffer pool list corrupt")

type errorString string

func (e errorString) Error() string { return string(e) }
