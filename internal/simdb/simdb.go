// Package simdb implements the cloud database instance the tuning system
// stress-tests: a mechanistic simulation of an OLTP engine (MySQL 5.7 or
// PostgreSQL 12.4 dialect) whose performance responds to its configuration
// knobs through the same mechanisms the real knobs act on.
//
// A stress test measures buffer-pool behaviour against a real LRU with
// midpoint insertion, measures lock conflicts by sampling concurrent
// transaction batches from the workload's key distribution, and then
// assembles throughput and latency with a closed-system queueing model
// over the instance's CPU, disk and fsync resources. The result is a
// non-convex, interacting response surface over ~70 knobs: exactly the
// search problem HUNTER and its baselines face on a real cloud database —
// while one stress test costs milliseconds of wall-clock time.
package simdb

import (
	"fmt"
	"math"
)

// Dialect selects the database flavour being simulated.
type Dialect int

const (
	// MySQL simulates MySQL 5.7 with InnoDB.
	MySQL Dialect = iota
	// Postgres simulates PostgreSQL 12.4.
	Postgres
)

func (d Dialect) String() string {
	switch d {
	case MySQL:
		return "mysql"
	case Postgres:
		return "postgresql"
	}
	return fmt.Sprintf("Dialect(%d)", int(d))
}

// PageSize is the storage page size the simulation uses (InnoDB default).
const PageSize = 16 * 1024

// Resources describes the hardware of one cloud database instance.
type Resources struct {
	Cores             int
	RAMBytes          int64
	DiskIOPS          float64
	DiskReadLatencyMs float64 // single page read
	FsyncLatencyMs    float64 // durable flush
	CoreSpeed         float64 // relative to the reference core (1.0)
}

// Validate checks the resource description.
func (r Resources) Validate() error {
	if r.Cores <= 0 || r.RAMBytes <= 0 || r.DiskIOPS <= 0 {
		return fmt.Errorf("simdb: non-positive resources %+v", r)
	}
	if r.CoreSpeed <= 0 {
		return fmt.Errorf("simdb: core speed must be positive")
	}
	return nil
}

// Perf is the measured performance of one stress test: the P of a sample
// (S, A, P). Throughput is transactions per second; display layers convert
// to txn/min for TPC-C as the paper's tables do.
type Perf struct {
	ThroughputTPS float64
	AvgLatencyMs  float64
	P95LatencyMs  float64
	P99LatencyMs  float64
	// Failed marks a configuration on which the instance could not boot;
	// per §2.1 the Actor scores it with throughput −1000 and infinite
	// latency.
	Failed bool
}

// FailedPerf is the sentinel performance for a configuration that cannot
// boot (§2.1: "we set its throughput to -1000 and latency to infinity").
func FailedPerf() Perf {
	return Perf{ThroughputTPS: -1000, AvgLatencyMs: math.Inf(1), P95LatencyMs: math.Inf(1), P99LatencyMs: math.Inf(1), Failed: true}
}

// TPM returns throughput in transactions per minute.
func (p Perf) TPM() float64 { return p.ThroughputTPS * 60 }

// Better reports whether p beats q under the paper's Eq. 1 fitness with
// the given α and the given default baseline.
func (p Perf) Better(q, def Perf, alpha float64) bool {
	return p.Fitness(def, alpha) > q.Fitness(def, alpha)
}

// Fitness evaluates Eq. 1 against the default-configuration baseline:
//
//	f = α·(Tcur−Tdef)/Tdef + (1−α)·(Ldef−Lcur)/Ldef
//
// with 95th-percentile latency. Failed configurations yield a large
// negative fitness.
func (p Perf) Fitness(def Perf, alpha float64) float64 {
	return p.FitnessTail(def, alpha, false)
}

// FitnessTail is Fitness with a selectable latency percentile: tail99
// switches the latency term to 99th-percentile latency, the
// sensitive-queries objective of §5.
func (p Perf) FitnessTail(def Perf, alpha float64, tail99 bool) float64 {
	if p.Failed || def.ThroughputTPS <= 0 {
		return -10
	}
	lCur, lDef := p.P95LatencyMs, def.P95LatencyMs
	if tail99 {
		lCur, lDef = p.P99LatencyMs, def.P99LatencyMs
	}
	t := (p.ThroughputTPS - def.ThroughputTPS) / def.ThroughputTPS
	l := (lDef - lCur) / lDef
	f := alpha*t + (1-alpha)*l
	if math.IsNaN(f) || f < -10 {
		return -10
	}
	return f
}
