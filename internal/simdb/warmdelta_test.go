package simdb

import (
	"bytes"
	"math"
	"testing"

	"github.com/hunter-cdb/hunter/internal/workload"
)

// TestBufferPoolResize exercises the online resize both directions:
// shrinking evicts from the global tail until the resident set fits
// (parking the surplus frames on the free list), growing only raises the
// ceiling; list invariants hold throughout.
func TestBufferPoolResize(t *testing.T) {
	b := newBufferPool(1000, 37, false)
	for i := 0; i < 5000; i++ {
		b.Access(uint32(i%1400), i%3 == 0, false)
	}
	if b.resident != 1000 {
		t.Fatalf("resident %d before resize, want 1000", b.resident)
	}
	b.resize(400)
	if b.resident != 400 {
		t.Fatalf("resident %d after shrink to 400", b.resident)
	}
	if got := len(b.nodes); got != b.resident+len(b.free) {
		t.Fatalf("frames %d != resident %d + free %d", got, b.resident, len(b.free))
	}
	if err := b.checkList(); err != nil {
		t.Fatal(err)
	}
	// Misses after the shrink must evict at the new capacity, not repopulate
	// the parked free frames: the resident set stays bounded and no frames
	// are allocated.
	frames := len(b.nodes)
	for i := 0; i < 1400; i++ {
		b.Access(uint32(i), false, false)
	}
	if len(b.nodes) != frames {
		t.Fatalf("refill allocated new frames: %d -> %d", frames, len(b.nodes))
	}
	if b.resident > 400 {
		t.Fatalf("refill grew resident set to %d, capacity 400", b.resident)
	}
	if got := len(b.nodes); got != b.resident+len(b.free) {
		t.Fatalf("frames %d != resident %d + free %d after refill", got, b.resident, len(b.free))
	}
	b.resize(1200)
	for i := 0; i < 5000; i++ {
		b.Access(uint32(i%1400), false, false)
	}
	if b.resident != 1200 {
		t.Fatalf("resident %d after grow to 1200", b.resident)
	}
	if err := b.checkList(); err != nil {
		t.Fatal(err)
	}
}

// TestBufferPoolSetPolicy: a policy change keeps the content and
// rebalances the regions to the new old-share target.
func TestBufferPoolSetPolicy(t *testing.T) {
	b := newBufferPool(1000, 37, false)
	for i := 0; i < 5000; i++ {
		b.Access(uint32(i%1400), false, false)
	}
	resident := b.resident
	b.setPolicy(80, true)
	if b.resident != resident {
		t.Fatalf("policy change moved resident %d -> %d", resident, b.resident)
	}
	if !b.promote2nd {
		t.Fatal("promote2nd not applied")
	}
	if want := int(0.80 * float64(resident)); b.oldLen < want {
		t.Fatalf("old region %d after rebalance, want >= %d", b.oldLen, want)
	}
	if err := b.checkList(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmDeltaApproximatesRebuild: with warm-state deltas on, a
// pool-size reconfiguration keeps measuring a hit ratio close to what a
// full rebuild + re-warm measures — the delta is an approximation of the
// same steady state, not a different regime.
func TestWarmDeltaApproximatesRebuild(t *testing.T) {
	p := workload.TPCC()
	run := func(warmDelta bool) []float64 {
		e, err := NewEngine(MySQL, referenceMySQL(), 7)
		if err != nil {
			t.Fatal(err)
		}
		e.NoiseStdDev = 0
		e.SetWarmDeltas(warmDelta)
		var tps []float64
		cfg := e.Catalog().Defaults()
		for _, gb := range []float64{8, 20, 4, 16} {
			cfg["innodb_buffer_pool_size"] = gb * (1 << 30)
			if err := e.Configure(cfg); err != nil {
				t.Fatal(err)
			}
			perf, _, err := e.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			tps = append(tps, perf.ThroughputTPS)
		}
		return tps
	}
	rebuild := run(false)
	delta := run(true)
	for i := range rebuild {
		rel := math.Abs(delta[i]-rebuild[i]) / rebuild[i]
		if rel > 0.10 {
			t.Errorf("step %d: delta TPS %.0f vs rebuild %.0f (%.1f%% off)",
				i, delta[i], rebuild[i], 100*rel)
		}
	}
}

// TestWarmDeltaSkipsWarmup: the whole point — a pool-shape move under
// warm deltas reports zero warm-up time (no virtual-time charge), where
// the rebuild path re-warms.
func TestWarmDeltaSkipsWarmup(t *testing.T) {
	p := workload.TPCC()
	e, err := NewEngine(MySQL, referenceMySQL(), 7)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWarmDeltas(true)
	cfg := e.Catalog().Defaults()
	if err := e.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(p); err != nil {
		t.Fatal(err)
	}
	if e.LastWarmupSeconds() == 0 {
		t.Fatal("first run should cold-warm the pool")
	}
	cfg["innodb_buffer_pool_size"] = 20 << 30
	cfg["innodb_old_blocks_pct"] = 60
	if err := e.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(p); err != nil {
		t.Fatal(err)
	}
	if w := e.LastWarmupSeconds(); w != 0 {
		t.Fatalf("pool-shape delta re-warmed (%.1f s), want in-place adjustment", w)
	}
	// A different profile (different dataset) must still rebuild.
	if _, _, err := e.Run(workload.SysbenchRW()); err != nil {
		t.Fatal(err)
	}
	if e.LastWarmupSeconds() == 0 {
		t.Fatal("profile switch must rebuild and re-warm")
	}
}

// TestWarmDeltaSnapshotRoundTrip: a snapshot taken after an online shrink
// (free list populated, more frames than capacity) must restore and
// replay bit-identically.
func TestWarmDeltaSnapshotRoundTrip(t *testing.T) {
	p := workload.TPCC()
	e, err := NewEngine(MySQL, referenceMySQL(), 7)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWarmDeltas(true)
	cfg := e.Catalog().Defaults()
	cfg["innodb_buffer_pool_size"] = 24 << 30
	if err := e.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(p); err != nil {
		t.Fatal(err)
	}
	cfg["innodb_buffer_pool_size"] = 6 << 30 // shrink: evictions hit the free list
	if err := e.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(p); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewEngine(MySQL, referenceMySQL(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Runtime evaluation config is excluded from snapshots by design;
	// callers re-apply it.
	r.SetWarmDeltas(true)
	for i := 0; i < 3; i++ {
		pe, me, err1 := e.Run(p)
		pr, mr, err2 := r.Run(p)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if pe != pr {
			t.Fatalf("run %d: perf diverged after restore:\n%+v\n%+v", i, pe, pr)
		}
		for j := range me {
			if me[j] != mr[j] {
				t.Fatalf("run %d: metric %d diverged after restore: %g != %g", i, j, me[j], mr[j])
			}
		}
	}
}
