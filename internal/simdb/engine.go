package simdb

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/sim"
	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// dialect-specific cost constants (per reference core).
type dialectCosts struct {
	rowCPUms      float64 // CPU per point row access (B-tree walk, row copy)
	scanCPUms     float64 // CPU per page scanned
	txnOverheadMs float64 // per-transaction parse/dispatch/network
	cpuFactor     float64 // scale on the profile's declared CPUMillis
	redoPerRowB   float64 // redo bytes per written row
}

func costsFor(d Dialect) dialectCosts {
	switch d {
	case Postgres:
		return dialectCosts{rowCPUms: 0.072, scanCPUms: 0.042, txnOverheadMs: 0.55, cpuFactor: 1.05, redoPerRowB: 320}
	default:
		return dialectCosts{rowCPUms: 0.062, scanCPUms: 0.045, txnOverheadMs: 0.45, cpuFactor: 1.0, redoPerRowB: 260}
	}
}

// maxSimPages bounds the number of simulated pages so one stress test is
// cheap regardless of dataset size; the pool/data ratio (which determines
// hit ratios) is preserved under scaling.
const maxSimPages = 1 << 16

// measurement sizing.
const (
	measureAccesses = 24000
	lockBatches     = 48
	latencySamples  = 400
	execWindowSec   = 142.7 // Table 1 workload-execution window, for counter scaling
)

// Engine simulates one database server process on one instance.
type Engine struct {
	dialect Dialect
	res     Resources
	costs   dialectCosts
	rng     *sim.RNG

	cfg    knob.Config
	params Params
	booted bool

	pool         *bufferPool
	poolDataKey  poolShapeKey // the (dataset, pool shape) the pool was built for
	warmupEnable bool
	warmDeltas   bool
	lastWarmupS  float64

	// Reusable measurement state. One engine runs thousands of stress
	// tests over its lifetime; everything below amortizes per-Run
	// allocation and recomputation without touching the RNG stream, so
	// results are bit-identical to the unoptimized path.
	plan       accessPlan // workload-derived access plan (cached per profile)
	locks      lockSim    // lock table + per-batch scratch
	writeSets  [][]uint64 // per-transaction write sets for the lock sim
	latScratch []float64  // latency sample buffer

	// NoiseStdDev is the multiplicative measurement noise on throughput
	// and latency (default 1.5%, as real stress tests are never exact).
	NoiseStdDev float64

	// Fault-injection hooks (armed by the chaos layer, one-shot). They are
	// transient per-run state — armed and consumed within a single wave —
	// so they are deliberately excluded from engine snapshots.
	crashArmed bool
	slowFactor float64 // pending slow-I/O multiplier; 0 = none armed
	lastSlow   float64 // factor consumed by the most recent Run; 1 = nominal

	// tel holds pre-resolved telemetry handles; nil (the default) keeps
	// Run free of any observability cost beyond one pointer check.
	tel *engineTel
}

// engineTel is the engine's counter set. Handles are resolved once at
// SetRecorder so the per-Run flush is a handful of lock-free atomic adds
// fed from counters the measurement loop maintains anyway — the hot loop
// itself is untouched.
type engineTel struct {
	runs           *telemetry.Counter
	poolHits       *telemetry.Counter
	poolMisses     *telemetry.Counter
	poolEvictions  *telemetry.Counter
	dirtyEvictions *telemetry.Counter
	fsyncBatches   *telemetry.Counter
	deadlocks      *telemetry.Counter
	lockWaits      *telemetry.Counter
	admissionQueue *telemetry.Gauge
	warmup         *telemetry.Histogram // per-run buffer-pool warm-up (virtual)
}

// SetRecorder attaches the engine to a telemetry recorder: after every
// successful Run the engine flushes its buffer-pool, fsync and lock
// observations into the recorder's counters. A nil recorder detaches.
func (e *Engine) SetRecorder(r *telemetry.Recorder) {
	if r == nil {
		e.tel = nil
		return
	}
	e.tel = &engineTel{
		runs:           r.Counter("simdb.stress_tests"),
		poolHits:       r.Counter("simdb.bufferpool.hits"),
		poolMisses:     r.Counter("simdb.bufferpool.misses"),
		poolEvictions:  r.Counter("simdb.bufferpool.evictions"),
		dirtyEvictions: r.Counter("simdb.bufferpool.dirty_evictions"),
		fsyncBatches:   r.Counter("simdb.fsync_batches"),
		deadlocks:      r.Counter("simdb.deadlocks"),
		lockWaits:      r.Counter("simdb.row_lock_waits"),
		admissionQueue: r.Gauge("simdb.admission_queue_depth"),
		warmup:         r.Histogram("simdb.warmup_seconds"),
	}
}

// flushTelemetry reports one completed stress test. Pool counters were
// reset before the measured stream, so they describe exactly this Run;
// fsync/lock figures come from the assembled metric snapshot.
func (e *Engine) flushTelemetry(p *workload.Profile, mv metrics.Vector) {
	t := e.tel
	t.runs.Add(1)
	t.poolHits.Add(e.pool.hits)
	t.poolMisses.Add(e.pool.misses)
	t.poolEvictions.Add(e.pool.evictions)
	t.dirtyEvictions.Add(e.pool.dirtyEvictions)
	t.fsyncBatches.Add(int64(mv[metrics.DataFsyncs]))
	t.deadlocks.Add(int64(mv[metrics.LockDeadlocks]))
	t.lockWaits.Add(int64(mv[metrics.RowLockWaits]))
	queued := p.EffectiveThreads() - e.admitted(p)
	if queued < 0 {
		queued = 0
	}
	t.admissionQueue.Set(float64(queued))
	t.warmup.Observe(time.Duration(e.lastWarmupS * float64(time.Second)))
}

// poolShapeKey identifies the (dataset, pool shape, insertion policy) a
// buffer pool was built for; comparing struct keys replaced a fmt.Sprintf
// on every Run.
type poolShapeKey struct {
	profile      string
	simPoolPages int
	simDataPages int64
	oldBlocksPct float64
	promote2nd   bool
}

// accessPlan caches the workload-derived quantities of the measurement
// loop that depend only on the profile and the simulation geometry — mix
// averages, cumulative class weights, per-class scan page counts and the
// transaction budget. The plan survives reconfiguration (knobs change the
// pool shape, not the dataset geometry), so the per-Run cost of rebuilding
// it was pure waste. All cached values are computed with exactly the same
// floating-point operations as the inline code they replace.
type accessPlan struct {
	profile   *workload.Profile // identity guard
	rows      int64
	dataBytes int64
	frac      float64 // MeasureFraction the plan was sized for

	reads, writes, scanRows, cpuMs, tempTables float64
	writeFraction                              float64
	txns                                       int // measurement transactions
	weightSum                                  float64
	cumWeight                                  []float64 // PickClass-compatible cumulative weights
	scanPages                                  []int     // per-class pages accessed per range scan
}

// planFor returns the cached access plan for p at shape sh, rebuilding it
// when the profile changed (new session or workload drift).
func (e *Engine) planFor(p *workload.Profile, sh simShape) *accessPlan {
	pl := &e.plan
	if pl.profile == p && pl.rows == p.Rows && pl.dataBytes == p.DataBytes && pl.frac == p.MeasureFraction {
		return pl
	}
	pl.profile, pl.rows, pl.dataBytes, pl.frac = p, p.Rows, p.DataBytes, p.MeasureFraction
	pl.reads, pl.writes, pl.scanRows, pl.cpuMs, pl.tempTables = p.Averages()
	pl.writeFraction = p.WriteFraction()

	scanPages := pl.scanRows / sh.rowsPerPage
	perTxn := pl.reads + pl.writes + scanPages
	if perTxn <= 0 {
		perTxn = 1
	}
	// A compressed kernel measures a fraction of the full access budget;
	// the guard keeps 0 (unset) and 1 on the exact full-effort arithmetic.
	budget := float64(measureAccesses)
	if f := p.MeasureFraction; f > 0 && f < 1 {
		budget *= f
	}
	pl.txns = int(budget / perTxn)
	if pl.txns < 50 {
		pl.txns = 50
	}

	pl.cumWeight = pl.cumWeight[:0]
	pl.weightSum = 0
	var acc float64
	for _, c := range p.Mix {
		pl.weightSum += c.Weight
		acc += c.Weight
		pl.cumWeight = append(pl.cumWeight, acc)
	}
	pl.scanPages = pl.scanPages[:0]
	for _, c := range p.Mix {
		sp := 0
		if c.ScanRows > 0 {
			sp = int(math.Ceil(float64(c.ScanRows) / sh.rowsPerPage / float64(sh.scale)))
			if sp < 1 {
				sp = 1
			}
		}
		pl.scanPages = append(pl.scanPages, sp)
	}
	return pl
}

// pickClass selects a class index from u ∈ [0,1) using the cached
// cumulative weights — identical arithmetic to workload.Profile.PickClass.
func (pl *accessPlan) pickClass(u float64) int {
	target := u * pl.weightSum
	for i, acc := range pl.cumWeight {
		if target < acc {
			return i
		}
	}
	return len(pl.cumWeight) - 1
}

// NewEngine creates an engine for the dialect on the given hardware,
// booted with the catalog's default configuration.
func NewEngine(d Dialect, res Resources, seed int64) (*Engine, error) {
	if err := res.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		dialect:      d,
		res:          res,
		costs:        costsFor(d),
		rng:          sim.NewRNG(seed),
		warmupEnable: true,
		NoiseStdDev:  0.015,
	}
	if err := e.Configure(e.Catalog().Defaults()); err != nil {
		return nil, fmt.Errorf("simdb: default configuration does not boot: %w", err)
	}
	return e, nil
}

// Catalog returns the knob catalog for the engine's dialect.
func (e *Engine) Catalog() *knob.Catalog {
	if e.dialect == Postgres {
		return knob.Postgres()
	}
	return knob.MySQL()
}

// Dialect returns the engine's dialect.
func (e *Engine) Dialect() Dialect { return e.dialect }

// Resources returns the instance hardware.
func (e *Engine) Resources() Resources { return e.res }

// Config returns the active configuration.
func (e *Engine) Config() knob.Config { return e.cfg.Clone() }

// SetWarmup toggles the CDB warm-up function (buffer pool saved on
// shutdown and reloaded on restart, §5).
func (e *Engine) SetWarmup(on bool) { e.warmupEnable = on }

// SetWarmDeltas toggles warm-state delta evaluation: when a
// reconfiguration moves only the pool shape or LRU policy for the same
// dataset, the warm buffer pool is adjusted in place (online resize /
// dynamic policy change, as the real server does) instead of rebuilt and
// re-warmed. Off by default. This is runtime evaluation configuration,
// not engine state — it is deliberately excluded from snapshots, and
// callers re-apply it after a restore.
func (e *Engine) SetWarmDeltas(on bool) { e.warmDeltas = on }

// Configure deploys a configuration. It returns an error when the
// instance cannot boot under it (awful configurations, §2.1); the engine
// then stays on its previous configuration.
func (e *Engine) Configure(cfg knob.Config) error {
	p := ParamsFrom(e.dialect, cfg)
	if err := p.ValidateBoot(e.res, 512); err != nil {
		return err
	}
	e.cfg = cfg.Clone()
	e.params = p
	e.booted = true
	return nil
}

// LastWarmupSeconds reports the simulated warm-up time of the most recent
// Run (0 when the pool was already warm).
func (e *Engine) LastWarmupSeconds() float64 { return e.lastWarmupS }

// simShape describes the scaled simulation geometry for a dataset.
type simShape struct {
	scale        int64
	simDataPages int64
	simPoolPages int
	rowsPerPage  float64
}

func (e *Engine) shape(p *workload.Profile) simShape {
	dataPages := p.DataBytes / PageSize
	if dataPages < 1 {
		dataPages = 1
	}
	scale := (dataPages + maxSimPages - 1) / maxSimPages
	if scale < 1 {
		scale = 1
	}
	simData := dataPages / scale
	if simData < 1 {
		simData = 1
	}
	poolPages := int64(e.params.BufferPoolBytes) / PageSize / scale
	if poolPages > simData {
		poolPages = simData
	}
	if poolPages < 8 {
		poolPages = 8
	}
	return simShape{
		scale:        scale,
		simDataPages: simData,
		simPoolPages: int(poolPages),
		rowsPerPage:  float64(p.Rows) / float64(dataPages),
	}
}

// measured holds the mechanistic observations of one stress test.
type measured struct {
	hitRatio      float64
	dirtyPerWrite float64 // unique pages dirtied per row write (dedup factor)
	evictWrites   float64 // forced write-backs of dirty evictions, per row write
	conflictProb  float64
	deadlockProb  float64
	evictions     int64
	promotions    int64
}

// measurePool replays a representative access stream through the LRU and
// samples lock conflicts from the workload's key distribution.
func (e *Engine) measurePool(p *workload.Profile, sh simShape, pl *accessPlan) measured {
	poolKey := poolShapeKey{
		profile:      p.Name,
		simPoolPages: sh.simPoolPages,
		simDataPages: sh.simDataPages,
		oldBlocksPct: e.params.OldBlocksPct,
		promote2nd:   e.params.PromoteOnSecondHit,
	}
	switch {
	case e.pool != nil && e.poolDataKey == poolKey:
		e.lastWarmupS = 0
	case e.warmDeltas && e.pool != nil &&
		e.poolDataKey.profile == poolKey.profile &&
		e.poolDataKey.simDataPages == poolKey.simDataPages:
		// Warm-state delta: the dataset is unchanged and only the pool
		// shape or LRU policy moved, both of which the real server applies
		// online (innodb_buffer_pool_size resizes online,
		// innodb_old_blocks_pct is dynamic). Adjust the warm pool in place
		// instead of discarding it and re-warming from scratch.
		if e.poolDataKey.simPoolPages != poolKey.simPoolPages {
			e.pool.resize(sh.simPoolPages)
		}
		if e.poolDataKey.oldBlocksPct != poolKey.oldBlocksPct ||
			e.poolDataKey.promote2nd != poolKey.promote2nd {
			e.pool.setPolicy(e.params.OldBlocksPct, e.params.PromoteOnSecondHit)
		}
		e.poolDataKey = poolKey
		e.lastWarmupS = 0
	default:
		if e.pool == nil {
			e.pool = newBufferPool(sh.simPoolPages, e.params.OldBlocksPct, e.params.PromoteOnSecondHit)
		} else {
			e.pool.reset(sh.simPoolPages, e.params.OldBlocksPct, e.params.PromoteOnSecondHit)
		}
		e.poolDataKey = poolKey
		// Warm-up: the CDB warm-up function reloads the saved buffer pool
		// on restart, so the pool starts at its steady-state content; with
		// the function disabled the cold misses below are simply part of
		// the measurement (and warm-up time is zero but performance drops).
		if e.warmupEnable {
			warmOps := 3 * sh.simPoolPages
			if warmOps > 150000 {
				warmOps = 150000
			}
			z := sim.NewZipf(e.rng, p.Skew, uint64(sh.simDataPages))
			for i := 0; i < warmOps; i++ {
				e.pool.Access(uint32(z.Next()), false, false)
			}
			// Paper §5: warm-up ≈5 s for an 8 GB dataset, growing with size.
			e.lastWarmupS = 5 * float64(sh.simPoolPages*int(sh.scale)) / (512 << 20 / PageSize)
		} else {
			e.lastWarmupS = 0
		}
	}
	e.pool.ResetCounters()

	z := sim.NewZipf(e.rng, p.Skew, uint64(sh.simDataPages))
	dirtyBefore := e.pool.dirtyPages
	var rowWrites int
	for t := 0; t < pl.txns; t++ {
		ci := pl.pickClass(e.rng.Float64())
		c := &p.Mix[ci]
		for i := 0; i < c.PointReads; i++ {
			e.pool.Access(uint32(z.Next()), false, false)
		}
		for i := 0; i < c.PointWrites; i++ {
			e.pool.Access(uint32(z.Next()), true, false)
			rowWrites++
		}
		if c.ScanRows > 0 {
			sp := pl.scanPages[ci]
			start := uint32(e.rng.Int63n(sh.simDataPages))
			for i := 0; i < sp; i++ {
				e.pool.Access((start+uint32(i))%uint32(sh.simDataPages), false, true)
			}
		}
	}
	m := measured{
		hitRatio:   e.pool.HitRatio(),
		evictions:  e.pool.evictions,
		promotions: e.pool.youngPromotes,
	}
	if rowWrites > 0 {
		newDirty := e.pool.dirtyPages - dirtyBefore + int(e.pool.dirtyEvictions)
		if newDirty < 0 {
			newDirty = 0
		}
		// Unique pages dirtied per row write: bounded by 1, with a floor
		// reflecting redo for already-dirty pages.
		m.dirtyPerWrite = sim.Clamp(float64(newDirty)/float64(rowWrites), 0.02, 1)
		m.evictWrites = float64(e.pool.dirtyEvictions) / float64(rowWrites)
	}

	// Lock-conflict measurement: play concurrent batches of transactions
	// against a real lock table with wait-for-graph deadlock detection.
	// Hot-set writes (warehouse/district counters and the like) dominate
	// the conflicts; cold writes draw from the full key space.
	conc := e.admitted(p)
	batch := conc
	if batch > 256 {
		batch = 256
	}
	if batch < 2 {
		batch = 2
	}
	// Keep the total simulated transactions roughly constant: large
	// concurrencies need fewer (but bigger) batches for the same
	// statistical power.
	batches := lockBatches
	if batch > 32 {
		batches = 1024 / batch
		if batches < 6 {
			batches = 6
		}
	}
	// Compressed kernels sample fewer lock batches too, with a floor so
	// conflict probability keeps at least two independent observations.
	if f := p.MeasureFraction; f > 0 && f < 1 {
		batches = int(float64(batches) * f)
		if batches < 2 {
			batches = 2
		}
	}
	var conflicted, total, deadlocks int
	zRows := sim.NewZipf(e.rng, p.Skew, uint64(p.Rows))
	if len(e.writeSets) < batch {
		grown := make([][]uint64, batch)
		copy(grown, e.writeSets)
		e.writeSets = grown
	}
	writeSets := e.writeSets[:batch]
	for b := 0; b < batches; b++ {
		for t := 0; t < batch; t++ {
			c := &p.Mix[pl.pickClass(e.rng.Float64())]
			ws := writeSets[t][:0]
			for i := 0; i < c.HotWrites && p.HotSetSize > 0; i++ {
				ws = append(ws, uint64(e.rng.Int63n(p.HotSetSize)))
			}
			for i := 0; i < c.PointWrites-c.HotWrites; i++ {
				ws = append(ws, zRows.Next()+1<<32) // distinct namespace from hot set
			}
			// Most transactions acquire rows in a consistent (index)
			// order, which prevents wait-for cycles; a minority of ad-hoc
			// code paths lock in arrival order and cause the occasional
			// real deadlock, as in production OLTP.
			if e.rng.Float64() < 0.92 || len(ws) > 8 {
				sortUint64(ws)
			}
			writeSets[t] = ws
		}
		cf, dl := e.locks.run(writeSets)
		conflicted += cf
		deadlocks += dl
		total += batch
	}
	if total > 0 {
		m.conflictProb = float64(conflicted) / float64(total)
		// The lock-step round-robin interleaving above is the worst case
		// for crossing acquisitions; real transactions start staggered,
		// so only a fraction of the simulated cycles materialize.
		m.deadlockProb = 0.15 * float64(deadlocks) / float64(total)
	}
	return m
}

// admitted returns the concurrency the engine actually runs: client
// threads capped by max_connections, innodb_thread_concurrency and the
// thread pool.
func (e *Engine) admitted(p *workload.Profile) int {
	c := p.EffectiveThreads()
	if mc := int(e.params.MaxConnections); c > mc {
		c = mc
	}
	if tc := e.params.ThreadConcurrency; tc > 0 && c > tc {
		c = tc
	}
	if e.params.ThreadPool {
		if cap := e.res.Cores * 4; c > cap {
			c = cap
		}
	}
	if c < 1 {
		c = 1
	}
	return c
}

// ErrCrashed is returned by Run when an injected crash takes the engine
// down mid-stress-test. The process is gone: the engine reports unbooted
// until Configure brings it back up.
var ErrCrashed = errors.New("simdb: engine crashed during stress test")

// InjectCrash arms a one-shot crash: the next Run fails with ErrCrashed
// and the engine goes down. Fault-injection hook; never fires on its own.
func (e *Engine) InjectCrash() { e.crashArmed = true }

// InjectSlowIO arms a one-shot I/O degradation: the next Run completes
// normally but LastSlowFactor reports f (>= 1), which the caller applies
// to the run's virtual duration. Fault-injection hook.
func (e *Engine) InjectSlowIO(f float64) {
	if f < 1 {
		f = 1
	}
	e.slowFactor = f
}

// LastSlowFactor reports the slow-I/O multiplier consumed by the most
// recent Run (1 when the run was nominal).
func (e *Engine) LastSlowFactor() float64 {
	if e.lastSlow < 1 {
		return 1
	}
	return e.lastSlow
}

// Run stress-tests the active configuration with the given workload and
// returns the measured performance and the 63-metric state snapshot.
func (e *Engine) Run(p *workload.Profile) (Perf, metrics.Vector, error) {
	if !e.booted {
		return FailedPerf(), nil, fmt.Errorf("simdb: engine not booted")
	}
	if e.crashArmed {
		e.crashArmed = false
		e.booted = false
		// The crash supersedes any pending straggler: a rebooted engine
		// must not inherit a stale slow-I/O factor.
		e.slowFactor = 0
		e.lastSlow = 1
		return FailedPerf(), nil, ErrCrashed
	}
	e.lastSlow, e.slowFactor = e.slowFactor, 0
	if e.lastSlow < 1 {
		e.lastSlow = 1
	}
	if err := p.Validate(); err != nil {
		return FailedPerf(), nil, err
	}
	sh := e.shape(p)
	pl := e.planFor(p, sh)
	m := e.measurePool(p, sh, pl)
	perf, mv := e.assemble(p, sh, pl, m)
	if e.tel != nil {
		e.flushTelemetry(p, mv)
	}
	return perf, mv, nil
}

// assemble combines the mechanistic measurements with a closed-system
// queueing model over the instance's CPU, disk and fsync resources.
func (e *Engine) assemble(p *workload.Profile, sh simShape, pl *accessPlan, m measured) (Perf, metrics.Vector) {
	par := &e.params
	reads, writes, scanRows, cpuMs, tempTables := pl.reads, pl.writes, pl.scanRows, pl.cpuMs, pl.tempTables
	scanPages := scanRows / sh.rowsPerPage
	clientThreads := float64(p.EffectiveThreads())
	if mc := par.MaxConnections; clientThreads > mc {
		clientThreads = mc
	}
	conc := float64(e.admitted(p))
	cores := float64(e.res.Cores)

	// --- CPU demand per transaction (ms of one core) ---
	rowCPU := e.costs.rowCPUms / e.res.CoreSpeed
	readCPU := rowCPU
	if par.AdaptiveHash {
		readCPU *= 0.88 // hash shortcut on hot B-tree paths
	}
	if par.QueryCacheBytes > 1<<20 && pl.writeFraction < 0.05 {
		readCPU *= 0.82 // query cache helps only (nearly) read-only load
	}
	writeCPU := rowCPU * 1.25
	if par.AdaptiveHash && conc > 4*cores && writes > 0 {
		writeCPU *= 1.10 // AHI latch contention under concurrent writes
	}
	// Change buffering absorbs secondary-index maintenance on uncached
	// pages; its benefit scales with the miss ratio.
	writeCPU *= 1 - 0.18*par.ChangeBuffering*(1-m.hitRatio)
	if par.AutovacuumOff {
		readCPU *= 1.07 // table bloat makes every access a little dearer
		writeCPU *= 1.07
	}
	// Spin-wait tuning: a mid-range delay is best once concurrency is
	// high; extremes waste CPU (0 = immediate syscall, huge = burning).
	spinPenalty := 1.0
	if conc > 2*cores {
		d := par.SpinWaitDelay
		spinPenalty = 1 + 0.06*math.Abs(math.Log2((d+1)/7))*math.Min(conc/(8*cores), 1.5)
	}
	// Thread thrashing: far more runnable threads than cores costs context
	// switches unless the thread pool serializes them.
	thrash := 1.0
	if !par.ThreadPool {
		over := conc / (cores * 8)
		if over > 1 {
			thrash = 1 + 0.30*(over-1)
			if thrash > 3 {
				thrash = 3
			}
		}
	}
	// Thread cache: connection churn overhead when the cache is tiny
	// relative to the client count.
	churn := 0.0
	if par.ThreadCacheSize < clientThreads/8 {
		churn = 0.08
	}
	cpuPerTxn := (e.costs.txnOverheadMs + churn +
		reads*readCPU + writes*writeCPU + scanPages*e.costs.scanCPUms/e.res.CoreSpeed +
		cpuMs*e.costs.cpuFactor/e.res.CoreSpeed) * thrash * spinPenalty

	// Query cache invalidation mutex: global serialization on writes.
	qcSerialMs := 0.0
	if par.QueryCacheBytes > 1<<20 && writes > 0 {
		qcSerialMs = 0.012 * writes
	}

	// --- Temp table spills ---
	spillIOs, spillMs := 0.0, 0.0
	if tempTables > 0 {
		need := 96.0 * 1024 // bytes a benchmark sort/temp table needs
		if par.SortBufferBytes < need || par.TmpTableBytes < 4*need {
			spillIOs = tempTables * 2
			spillMs = tempTables * 0.25
		}
	}

	// --- Buffer misses and the OS page-cache assist ---
	// Misses can still be served from the OS page cache when the server
	// uses buffered I/O, but a page-cache hit costs a syscall and memcpy
	// and the double-buffered memory is far less effective per byte than
	// the buffer pool (the reason O_DIRECT plus a large pool wins).
	missPerTxn := (reads + writes + scanPages) * (1 - m.hitRatio)
	osCacheBytes := math.Max(0, float64(e.res.RAMBytes)-par.BufferPoolBytes-par.SessionMemoryBytes(int(clientThreads)))
	pOS := 0.0
	if par.OSCacheAssist {
		pOS = sim.Clamp(0.75*osCacheBytes/float64(p.DataBytes), 0, 0.55)
	}
	diskReadsPerTxn := missPerTxn*(1-pOS) + spillIOs
	osHitMs := missPerTxn * pOS * 0.18 // syscall + memcpy from page cache

	// --- Redo / commit path ---
	// Row redo plus full-page images for every newly dirtied page
	// (PostgreSQL full_page_writes).
	redoPerTxnB := writes*e.costs.redoPerRowB*par.RedoAmplify +
		writes*m.dirtyPerWrite*par.PageImageBytes
	fsyncLat := e.res.FsyncLatencyMs
	commitMs, fsyncPerTxn := 0.0, 0.0
	switch par.FlushAtCommit {
	case 1:
		// Group commit: commits arriving during one fsync share it; the
		// flush itself takes longer the more redo the group carries
		// (full-page writes and doublewrite inflate this).
		group := math.Max(1, math.Min(conc, 1+0.001*fsyncLat*conc*8)) * par.groupBoost()
		if group > 64 {
			group = 64
		}
		flushVolume := 1 + redoPerTxnB*group/(2<<20)
		commitMs = fsyncLat * (0.5 + 1/group) * flushVolume
		fsyncPerTxn = 1 / group
	case 2:
		commitMs = 0.06
		fsyncPerTxn = 0.02 // background once per second, amortized
	default:
		commitMs = 0.02
	}
	if par.BinlogSyncEvery >= 1 && writes > 0 && e.dialect == MySQL {
		n := par.BinlogSyncEvery
		commitMs += fsyncLat * 1.1 / n
		fsyncPerTxn += 1 / n
	}
	// Undersized log buffer forces waits when concurrent redo exceeds it.
	logWaitMs := 0.0
	if need := redoPerTxnB * conc; need > par.LogBufferBytes && redoPerTxnB > 0 {
		logWaitMs = 0.15 * math.Min(need/par.LogBufferBytes-1, 4)
	}

	// --- Closed-system throughput and latency via Schweitzer MVA ---
	// The admitted transactions form a closed queueing network over three
	// contended stations — CPU, disk capacity, and the serial log device —
	// plus a delay term Z (per-transaction work that does not queue).
	// Schweitzer's approximate mean value analysis gives a stable,
	// capacity-respecting solution: throughput can never exceed the
	// bottleneck station's rate, and latency grows with population.
	//
	// Demands are in seconds per transaction of each resource.
	dCPU := cpuPerTxn / 1000 / cores

	// Background page flushing competes for disk capacity. Write
	// combining: a dirty page absorbs many row writes before the cleaner
	// flushes it once per cycle, but a small pool evicts dirty pages
	// early and forfeits the combining (another way a large buffer pool
	// pays off).
	writeCombine := sim.Clamp(0.12+0.5*(1-m.hitRatio), 0.12, 0.62)
	// Dirty pages evicted before the cleaner reaches them are synchronous
	// write-backs with no combining — the measured write amplification of
	// an undersized pool.
	pageWritePerTxn := writes*(m.dirtyPerWrite-m.evictWrites)*writeCombine + writes*m.evictWrites
	if pageWritePerTxn < 0 {
		pageWritePerTxn = 0
	}
	if par.Doublewrite {
		pageWritePerTxn *= 2
	}
	cleanerCap := par.IOCapacity * (0.6 + 0.4*math.Min(float64(par.PageCleaners), cores)/cores)
	burstCap := math.Max(par.IOCapacityMax, cleanerCap)

	// Flush backpressure and checkpoint pressure depend on throughput;
	// resolve them inside the outer fixed point below.
	N := conc
	zBase := e.costs.txnOverheadMs + osHitMs + logWaitMs + qcSerialMs + spillMs +
		diskReadsPerTxn*e.res.DiskReadLatencyMs
	var tps, lat, lockWaitMs, stallMs float64
	var rhoCPU, rhoDisk float64
	var flushIOPS, pageWriteRate float64
	lat = zBase + cpuPerTxn + commitMs + 1
	for outer := 0; outer < 6; outer++ {
		goodFrac := 1 - m.deadlockProb

		// Station demands (seconds/txn). The page cleaners also perform
		// maintenance I/O (pre-flushing, change-buffer merges, neighbor
		// flushing) proportional to the configured capacity, so an
		// io_capacity far above the actual write rate steals disk from
		// foreground reads — the knob must be matched, not maximized.
		curTPS := math.Max(tpsOr(tps, 100), 1)
		// InnoDB treats io_capacity as a *target* rate (idle flushing,
		// change-buffer merges run at it), so oversizing it wastes disk;
		// PostgreSQL's bgwriter settings are only a cap and waste little.
		maintFrac := 0.12
		if par.Dialect == Postgres {
			maintFrac = 0.02
		}
		maintIOPS := maintFrac * par.IOCapacity
		if par.FlushNeighborsMaint() {
			maintIOPS *= 1.3
		}
		// Background maintenance yields to foreground work: no matter how
		// absurdly the knobs are set, it cannot consume more than a slice
		// of the physical disk.
		if cap := 0.30 * e.res.DiskIOPS; maintIOPS > cap {
			maintIOPS = cap
		}
		maintPerTxn := maintIOPS / curTPS
		flushPerTxn := math.Min(pageWritePerTxn, burstCap/curTPS)
		dDisk := (diskReadsPerTxn + fsyncPerTxn + flushPerTxn + maintPerTxn) / e.res.DiskIOPS
		dLog := fsyncPerTxn * e.res.FsyncLatencyMs / 1000

		// Row-lock waits: a conflicting transaction waits for a fraction
		// of the holder's residence time (bounded by the lock timeout).
		lockWaitMs = m.conflictProb * 0.45 * lat
		if max := par.LockWaitTimeoutS * 1000; lockWaitMs > max {
			lockWaitMs = max
		}
		lockWaitMs += m.deadlockProb * par.DeadlockTimeoutMs

		// Stalls from flushing/checkpoints at the current throughput.
		stallMs = 0
		pageWriteRate = tpsOr(tps, 100) * goodFrac * pageWritePerTxn
		if pageWriteRate > cleanerCap {
			deficit := pageWriteRate/cleanerCap - 1
			headroom := par.MaxDirtyPct / 100
			s := 4 * deficit * (1.2 - headroom)
			if s > 0 {
				stallMs += s
			}
		}
		redoRate := tpsOr(tps, 100) * goodFrac * redoPerTxnB
		if redoRate > 0 {
			interval := 0.8 * par.LogCapacityBytes / redoRate
			if interval < 90 {
				spike := (90/interval - 1) * 1.5
				relief := 1 - 0.5*par.CkptSpread
				if par.AdaptiveFlushing {
					relief *= 0.65
				}
				// A high dirty-page watermark lets more dirty pages pile
				// up before a sync checkpoint, enlarging the spike; a low
				// one stalls earlier (the deficit term above). Optimal is
				// in between.
				relief *= 0.4 + 0.8*(par.MaxDirtyPct/100)
				stallMs += spike * relief
			}
		}
		// Memory-budget pressure: a buffer pool plus session buffers near
		// the RAM limit starts swapping before it fails to boot.
		memBudget := par.BufferPoolBytes + par.SessionMemoryBytes(int(clientThreads))
		if over := memBudget/float64(e.res.RAMBytes) - 0.90; over > 0 {
			stallMs += over * 300
		}
		z := (zBase + commitMs + lockWaitMs + stallMs) / 1000 // seconds

		// Inner Schweitzer MVA over the three queueing stations.
		d := [3]float64{dCPU, dDisk, dLog}
		var q [3]float64
		for k := range q {
			q[k] = N / 3
		}
		var r [3]float64
		for it := 0; it < 40; it++ {
			var rt float64
			for k := range d {
				r[k] = d[k] * (1 + q[k]*(N-1)/N)
				rt += r[k]
			}
			x := N / (rt + z)
			for k := range d {
				q[k] = x * r[k]
			}
		}
		rTotal := r[0] + r[1] + r[2] + z
		tps = N / rTotal
		lat = rTotal * 1000
		rhoCPU = sim.Clamp(tps*dCPU, 0, 1)
		rhoDisk = sim.Clamp(tps*dDisk, 0, 1)
		flushIOPS = math.Min(pageWriteRate, burstCap)
	}
	tps *= 1 - m.deadlockProb
	// Clients beyond the admission limit queue in front of the engine.
	userLat := lat * clientThreads / conc

	// --- Latency distribution for tail percentiles ---
	if cap(e.latScratch) < latencySamples {
		e.latScratch = make([]float64, latencySamples)
	}
	samples := e.latScratch[:latencySamples]
	stallProb := sim.Clamp(stallMs/(stallMs+8), 0, 0.5)
	for i := range samples {
		v := userLat * math.Exp(e.rng.Gaussian(0, 0.22))
		if e.rng.Float64() < stallProb {
			v *= 1.5 + 2.5*e.rng.Float64()
		}
		samples[i] = v
	}
	sort.Float64s(samples)
	perf := Perf{
		ThroughputTPS: tps * (1 + e.rng.Gaussian(0, e.NoiseStdDev)),
		AvgLatencyMs:  mean(samples),
		P95LatencyMs:  samples[int(0.95*float64(len(samples)))] * (1 + e.rng.Gaussian(0, e.NoiseStdDev)),
		P99LatencyMs:  samples[int(0.99*float64(len(samples)))],
	}
	if perf.ThroughputTPS < 0.1 {
		perf.ThroughputTPS = 0.1
	}

	mv := e.fillMetrics(p, sh, m, perf, fill{
		conc: conc, rhoCPU: rhoCPU, rhoDisk: rhoDisk,
		diskReadsPerTxn: diskReadsPerTxn, fsyncPerTxn: fsyncPerTxn,
		pageWriteRate: pageWriteRate, flushIOPS: flushIOPS,
		redoPerTxnB: redoPerTxnB, lockWaitMs: lockWaitMs,
		reads: reads, writes: writes, scanPages: scanPages, tempTables: tempTables,
		clientThreads: clientThreads,
	})
	return perf, mv
}

// groupBoost returns the commit-group enlargement from commit_delay.
func (p *Params) groupBoost() float64 {
	if p.GroupCommitBoost < 1 {
		return 1
	}
	return p.GroupCommitBoost
}

// tpsOr returns t when positive, else the fallback, for quantities that
// need a throughput estimate before the first outer iteration.
func tpsOr(t, fallback float64) float64 {
	if t > 0 {
		return t
	}
	return fallback
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
