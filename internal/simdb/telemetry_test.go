package simdb

import (
	"testing"

	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// TestEngineRunAllocsDisabled guards the zero-overhead contract at the
// stack's hottest call: a warm engine with telemetry disabled must keep
// Run at the seed's 4 allocs/op on tpcc.
func TestEngineRunAllocsDisabled(t *testing.T) {
	e, err := NewEngine(MySQL, referenceMySQL(), 1)
	if err != nil {
		t.Fatal(err)
	}
	p := workload.TPCC()
	if _, _, err := e.Run(p); err != nil { // warm the reusable buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := e.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Fatalf("Engine.Run with telemetry disabled: %v allocs/op, want <= 4", allocs)
	}
}

// TestEngineTelemetryCounters checks that an attached recorder sees the
// engine's buffer-pool and durability activity.
func TestEngineTelemetryCounters(t *testing.T) {
	e, err := NewEngine(MySQL, referenceMySQL(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.New()
	e.SetRecorder(rec)
	p := workload.TPCC()
	for i := 0; i < 3; i++ {
		if _, _, err := e.Run(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.Counter("simdb.stress_tests").Value(); got != 3 {
		t.Fatalf("stress_tests = %d, want 3", got)
	}
	for _, name := range []string{
		"simdb.bufferpool.hits", "simdb.bufferpool.misses", "simdb.fsync_batches",
	} {
		if rec.Counter(name).Value() <= 0 {
			t.Fatalf("counter %s not populated after tpcc runs", name)
		}
	}
	e.SetRecorder(nil)
	if _, _, err := e.Run(p); err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter("simdb.stress_tests").Value(); got != 3 {
		t.Fatalf("detached engine still reported: stress_tests = %d", got)
	}
}

// BenchmarkEngineRunTelemetry compares the stress-test hot path with the
// recorder detached (the default; must match BenchmarkEngineRun) and
// attached (pays one counter flush per run).
func BenchmarkEngineRunTelemetry(b *testing.B) {
	for _, mode := range []struct {
		name     string
		attached bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			e, err := NewEngine(MySQL, referenceMySQL(), 1)
			if err != nil {
				b.Fatal(err)
			}
			if mode.attached {
				e.SetRecorder(telemetry.New())
			}
			p := workload.TPCC()
			if _, _, err := e.Run(p); err != nil { // warm the reusable buffers
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.Run(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestEngineTelemetryPassive proves recording cannot change measurement
// results: two engines with the same seed produce bit-identical perf and
// metrics whether or not a recorder is attached.
func TestEngineTelemetryPassive(t *testing.T) {
	plain, err := NewEngine(MySQL, referenceMySQL(), 7)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := NewEngine(MySQL, referenceMySQL(), 7)
	if err != nil {
		t.Fatal(err)
	}
	traced.SetRecorder(telemetry.New())
	p := workload.SysbenchRW()
	for i := 0; i < 3; i++ {
		p1, m1, err1 := plain.Run(p)
		p2, m2, err2 := traced.Run(p)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if p1 != p2 {
			t.Fatalf("run %d: perf diverged with recorder attached:\n%+v\n%+v", i, p1, p2)
		}
		if len(m1) != len(m2) {
			t.Fatalf("run %d: metric vectors differ in length", i)
		}
		for k := range m1 {
			if m1[k] != m2[k] {
				t.Fatalf("run %d: metric %d diverged: %v vs %v", i, k, m1[k], m2[k])
			}
		}
	}
}
