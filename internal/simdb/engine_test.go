package simdb

import (
	"math"
	"testing"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/workload"
)

func TestParamsFromMySQLDefaults(t *testing.T) {
	p := ParamsFrom(MySQL, knob.MySQL().Defaults())
	if p.BufferPoolBytes != 128<<20 {
		t.Errorf("buffer pool %v, want 128 MB", p.BufferPoolBytes)
	}
	if p.FlushAtCommit != 1 {
		t.Errorf("flush at commit %d, want 1", p.FlushAtCommit)
	}
	if !p.Doublewrite || p.RedoAmplify != 1.15 {
		t.Errorf("doublewrite defaults wrong: %v %v", p.Doublewrite, p.RedoAmplify)
	}
	if p.ThreadPool {
		t.Error("default thread model should not be pool-of-threads")
	}
	if !p.OSCacheAssist {
		t.Error("default fsync flush method should use the OS cache")
	}
}

func TestParamsODirectDisablesOSCache(t *testing.T) {
	cfg := knob.MySQL().Defaults()
	cfg["innodb_flush_method"] = 2 // O_DIRECT
	if ParamsFrom(MySQL, cfg).OSCacheAssist {
		t.Fatal("O_DIRECT must disable the OS cache assist")
	}
}

func TestParamsFromPostgres(t *testing.T) {
	cfg := knob.Postgres().Defaults()
	p := ParamsFrom(Postgres, cfg)
	if p.FlushAtCommit != 1 {
		t.Errorf("synchronous_commit=on should map to 1, got %d", p.FlushAtCommit)
	}
	cfg["synchronous_commit"] = 0
	if ParamsFrom(Postgres, cfg).FlushAtCommit != 0 {
		t.Error("synchronous_commit=off should map to 0")
	}
	cfg["synchronous_commit"] = 3
	cfg["fsync"] = 0
	if ParamsFrom(Postgres, cfg).FlushAtCommit != 0 {
		t.Error("fsync=off must override synchronous_commit")
	}
}

func TestValidateBootFailures(t *testing.T) {
	res := referenceMySQL()
	cfg := knob.MySQL().Defaults()
	cfg["innodb_buffer_pool_size"] = 40 << 30 // > 95% of 32 GB
	if err := ParamsFrom(MySQL, cfg).ValidateBoot(res, 512); err == nil {
		t.Fatal("oversized buffer pool must fail to boot")
	}
	ok := knob.MySQL().Defaults()
	if err := ParamsFrom(MySQL, ok).ValidateBoot(res, 512); err != nil {
		t.Fatalf("defaults should boot: %v", err)
	}
}

func TestEngineConfigureBootFailureKeepsOldConfig(t *testing.T) {
	e, err := NewEngine(MySQL, referenceMySQL(), 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := knob.MySQL().Defaults()
	bad["innodb_buffer_pool_size"] = 60 << 30
	if err := e.Configure(bad); err == nil {
		t.Fatal("expected boot failure")
	}
	// Engine still serves on the old configuration.
	if _, _, err := e.Run(workload.SysbenchRO()); err != nil {
		t.Fatalf("engine broken after failed configure: %v", err)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() Perf {
		e, err := NewEngine(MySQL, referenceMySQL(), 77)
		if err != nil {
			t.Fatal(err)
		}
		p, _, err := e.Run(workload.TPCC())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := run(), run()
	if a.ThroughputTPS != b.ThroughputTPS || a.P95LatencyMs != b.P95LatencyMs {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestEngineMetricsVector(t *testing.T) {
	e, err := NewEngine(MySQL, referenceMySQL(), 2)
	if err != nil {
		t.Fatal(err)
	}
	perf, mv, err := e.Run(workload.TPCC())
	if err != nil {
		t.Fatal(err)
	}
	if len(mv) != metrics.Count {
		t.Fatalf("metric vector length %d", len(mv))
	}
	if mv[metrics.TransactionsCommitted] <= 0 {
		t.Fatal("committed transactions metric should be positive")
	}
	// Committed ≈ throughput × window.
	want := perf.ThroughputTPS * execWindowSec
	if math.Abs(mv[metrics.TransactionsCommitted]-want)/want > 0.1 {
		t.Fatalf("txn metric %.0f inconsistent with throughput (%.0f)", mv[metrics.TransactionsCommitted], want)
	}
	for i, v := range mv {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("metric %s is %v", metrics.Name(i), v)
		}
	}
}

// Knob-response tests: the mechanisms the tuning story depends on.

func runWith(t *testing.T, mutate func(knob.Config)) Perf {
	t.Helper()
	e, err := NewEngine(MySQL, referenceMySQL(), 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := knob.MySQL().Defaults()
	mutate(cfg)
	if err := e.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	p, _, err := e.Run(workload.TPCC())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBiggerBufferPoolHelpsTPCC(t *testing.T) {
	small := runWith(t, func(c knob.Config) {})
	big := runWith(t, func(c knob.Config) { c["innodb_buffer_pool_size"] = 16 << 30 })
	if big.ThroughputTPS <= small.ThroughputTPS*1.1 {
		t.Fatalf("16 GB pool (%.0f tps) should clearly beat 128 MB (%.0f tps)",
			big.ThroughputTPS, small.ThroughputTPS)
	}
}

func TestRelaxedDurabilityHelpsWrites(t *testing.T) {
	e, err := NewEngine(MySQL, referenceMySQL(), 6)
	if err != nil {
		t.Fatal(err)
	}
	wo := workload.SysbenchWO()
	strict, _, _ := e.Run(wo)
	cfg := knob.MySQL().Defaults()
	cfg["innodb_flush_log_at_trx_commit"] = 2
	cfg["sync_binlog"] = 0
	if err := e.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	relaxed, _, _ := e.Run(wo)
	if relaxed.ThroughputTPS <= strict.ThroughputTPS {
		t.Fatalf("relaxed durability (%.0f tps) should beat per-commit fsync (%.0f tps)",
			relaxed.ThroughputTPS, strict.ThroughputTPS)
	}
}

func TestIOCapacityHelpsWriteHeavy(t *testing.T) {
	e, err := NewEngine(MySQL, referenceMySQL(), 7)
	if err != nil {
		t.Fatal(err)
	}
	wo := workload.SysbenchWO()
	low, _, _ := e.Run(wo)
	cfg := knob.MySQL().Defaults()
	cfg["innodb_io_capacity"] = 20000
	cfg["innodb_io_capacity_max"] = 40000
	if err := e.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	high, _, _ := e.Run(wo)
	if high.P95LatencyMs >= low.P95LatencyMs {
		t.Fatalf("higher io_capacity should cut flush stalls: p95 %.1f vs %.1f",
			high.P95LatencyMs, low.P95LatencyMs)
	}
}

func TestThreadConcurrencyTamesThrashing(t *testing.T) {
	e, err := NewEngine(MySQL, referenceMySQL(), 8)
	if err != nil {
		t.Fatal(err)
	}
	rw := workload.SysbenchRW() // 512 client threads
	// Warm cache and relaxed durability isolate the CPU effect: thread
	// thrashing is masked when the disk or the group-commit fsync is the
	// bottleneck (group commit actually *rewards* high concurrency).
	base := func() knob.Config {
		cfg := knob.MySQL().Defaults()
		cfg["innodb_buffer_pool_size"] = 16 << 30
		cfg["innodb_flush_log_at_trx_commit"] = 2
		cfg["sync_binlog"] = 0
		cfg["innodb_io_capacity"] = 10000
		cfg["max_connections"] = 1024 // admit everyone
		return cfg
	}
	if err := e.Configure(base()); err != nil {
		t.Fatal(err)
	}
	thrashed, _, _ := e.Run(rw)
	cfg := base()
	cfg["innodb_thread_concurrency"] = 64
	if err := e.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	tamed, _, _ := e.Run(rw)
	if tamed.ThroughputTPS <= thrashed.ThroughputTPS {
		t.Fatalf("thread concurrency cap should beat thrashing: %.0f vs %.0f tps",
			tamed.ThroughputTPS, thrashed.ThroughputTPS)
	}
}

func TestFailedPerfSentinel(t *testing.T) {
	f := FailedPerf()
	if !f.Failed || f.ThroughputTPS != -1000 || !math.IsInf(f.P95LatencyMs, 1) {
		t.Fatalf("sentinel wrong: %+v", f)
	}
	def := Perf{ThroughputTPS: 100, P95LatencyMs: 50}
	if fit := f.Fitness(def, 0.5); fit != -10 {
		t.Fatalf("failed fitness = %v, want -10", fit)
	}
}

func TestFitnessEquation(t *testing.T) {
	def := Perf{ThroughputTPS: 100, P95LatencyMs: 100}
	p := Perf{ThroughputTPS: 150, P95LatencyMs: 50}
	// α=0.5: 0.5·(50/100) + 0.5·(50/100) = 0.5.
	if fit := p.Fitness(def, 0.5); math.Abs(fit-0.5) > 1e-9 {
		t.Fatalf("fitness = %v, want 0.5", fit)
	}
	// α=1: throughput only.
	if fit := p.Fitness(def, 1); math.Abs(fit-0.5) > 1e-9 {
		t.Fatalf("alpha=1 fitness = %v", fit)
	}
	// α=0: latency only.
	if fit := p.Fitness(def, 0); math.Abs(fit-0.5) > 1e-9 {
		t.Fatalf("alpha=0 fitness = %v", fit)
	}
	if !p.Better(def, def, 0.5) {
		t.Fatal("improved perf should compare better")
	}
}

func TestWarmupAccounting(t *testing.T) {
	e, err := NewEngine(MySQL, referenceMySQL(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(workload.SysbenchRO()); err != nil {
		t.Fatal(err)
	}
	if e.LastWarmupSeconds() <= 0 {
		t.Fatal("first run on a fresh pool should report warm-up time")
	}
	if _, _, err := e.Run(workload.SysbenchRO()); err != nil {
		t.Fatal(err)
	}
	if e.LastWarmupSeconds() != 0 {
		t.Fatal("second run on a warm pool should not re-warm")
	}
}

func TestDialectString(t *testing.T) {
	if MySQL.String() != "mysql" || Postgres.String() != "postgresql" {
		t.Fatal("dialect names wrong")
	}
}
