package simdb

import (
	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// fill carries the assembled quantities the metric snapshot derives from.
type fill struct {
	conc            float64
	rhoCPU, rhoDisk float64
	diskReadsPerTxn float64
	fsyncPerTxn     float64
	pageWriteRate   float64
	flushIOPS       float64
	redoPerTxnB     float64
	lockWaitMs      float64
	reads, writes   float64
	scanPages       float64
	tempTables      float64
	clientThreads   float64
}

// fillMetrics produces the 63-metric state snapshot of a stress test (the
// S of a sample). Every counter is derived from the mechanistic
// measurements and scaled to the Table 1 execution window, with small
// multiplicative noise so the metric space behaves like real "show
// status" deltas: many strongly correlated counters driven by a handful
// of latent factors, which is exactly the structure PCA compresses.
func (e *Engine) fillMetrics(p *workload.Profile, sh simShape, m measured, perf Perf, f fill) metrics.Vector {
	v := metrics.NewVector()
	txns := perf.ThroughputTPS * execWindowSec
	n := func(x float64) float64 { return x * (1 + e.rng.Gaussian(0, 0.01)) }

	accesses := txns * (f.reads + f.writes + f.scanPages)
	misses := accesses * (1 - m.hitRatio)
	poolPages := float64(sh.simPoolPages * int(sh.scale))
	dirtyRatio := e.pool.DirtyRatio()

	v[metrics.BufferPoolReadRequests] = n(accesses)
	v[metrics.BufferPoolReads] = n(misses)
	v[metrics.BufferPoolWriteRequests] = n(txns * f.writes)
	v[metrics.BufferPoolPagesData] = n(float64(e.pool.Len()) * float64(sh.scale))
	v[metrics.BufferPoolPagesDirty] = n(poolPages * dirtyRatio)
	v[metrics.BufferPoolPagesFree] = n(poolPages - float64(e.pool.Len())*float64(sh.scale))
	v[metrics.BufferPoolPagesMisc] = n(poolPages * 0.01)
	v[metrics.BufferPoolPagesTotal] = poolPages
	v[metrics.BufferPoolBytesData] = v[metrics.BufferPoolPagesData] * PageSize
	v[metrics.BufferPoolBytesDirty] = v[metrics.BufferPoolPagesDirty] * PageSize
	v[metrics.BufferPoolReadAheadRnd] = n(misses * 0.02)
	v[metrics.BufferPoolReadAhead] = n(txns * f.scanPages * 0.5)
	v[metrics.BufferPoolReadAheadEvicted] = n(v[metrics.BufferPoolReadAhead] * 0.1 * (1 - m.hitRatio))
	v[metrics.BufferPoolWaitFree] = n(float64(m.evictions) * 0.05)
	v[metrics.PagesCreated] = n(txns * f.writes * m.dirtyPerWrite * 0.1)
	v[metrics.PagesRead] = n(misses)
	v[metrics.PagesWritten] = n(f.pageWriteRate * execWindowSec)
	v[metrics.PagesYoung] = n(float64(m.promotions) * float64(sh.scale))
	v[metrics.PagesNotYoung] = n(misses * 0.4)
	v[metrics.DataReads] = n(txns * f.diskReadsPerTxn)
	v[metrics.DataWrites] = n(f.flushIOPS * execWindowSec)
	v[metrics.DataBytesRead] = v[metrics.DataReads] * PageSize
	v[metrics.DataBytesWritten] = v[metrics.DataWrites] * PageSize
	v[metrics.DataFsyncs] = n(txns * f.fsyncPerTxn)
	v[metrics.DataPendingReads] = n(f.rhoDisk * f.conc * 0.2)
	v[metrics.DataPendingWrites] = n(f.rhoDisk * 4)
	v[metrics.DataPendingFsyncs] = n(f.rhoDisk * 1.5)
	v[metrics.LogWaits] = n(txns * 0.002 * f.redoPerTxnB / (e.params.LogBufferBytes/1e6 + 1))
	v[metrics.LogWriteRequests] = n(txns * f.writes)
	v[metrics.LogWrites] = n(txns * (f.fsyncPerTxn + 0.1))
	v[metrics.LogPadded] = n(v[metrics.LogWrites] * 0.05)
	v[metrics.OSLogFsyncs] = n(txns * f.fsyncPerTxn)
	v[metrics.OSLogBytesWritten] = n(txns * f.redoPerTxnB)
	v[metrics.OSLogPendingFsyncs] = n(f.rhoDisk * 1.2)
	v[metrics.OSLogPendingWrites] = n(f.rhoDisk * 0.8)
	redoRate := perf.ThroughputTPS * f.redoPerTxnB
	v[metrics.CheckpointAge] = n(minf(redoRate*30, e.params.LogCapacityBytes*0.9))
	ckptPerWindow := 0.0
	if redoRate > 0 {
		ckptPerWindow = execWindowSec / (0.8*e.params.LogCapacityBytes/redoRate + 1)
	}
	v[metrics.CheckpointsRequested] = n(ckptPerWindow)
	v[metrics.CheckpointsTimed] = n(execWindowSec / 300)
	dblwr := 0.0
	if e.params.Doublewrite {
		dblwr = 1
	}
	v[metrics.DblwrPagesWritten] = n(v[metrics.PagesWritten] * dblwr)
	v[metrics.DblwrWrites] = n(v[metrics.DblwrPagesWritten] / 64)
	v[metrics.RowLockWaits] = n(txns * m.conflictProb)
	v[metrics.RowLockTime] = n(txns * m.conflictProb * f.lockWaitMs)
	v[metrics.RowLockTimeAvg] = n(f.lockWaitMs)
	v[metrics.RowLockTimeMax] = n(f.lockWaitMs * 12)
	v[metrics.RowLockCurrentWaits] = n(f.conc * m.conflictProb)
	v[metrics.LockDeadlocks] = n(txns * m.deadlockProb)
	v[metrics.LockTimeouts] = n(txns * m.deadlockProb * 0.3)
	v[metrics.RowsRead] = n(txns * (f.reads + f.scanPages*sh.rowsPerPage))
	v[metrics.RowsInserted] = n(txns * f.writes * 0.3)
	v[metrics.RowsUpdated] = n(txns * f.writes * 0.6)
	v[metrics.RowsDeleted] = n(txns * f.writes * 0.1)
	v[metrics.QueriesExecuted] = n(txns * (f.reads + f.writes + 1))
	v[metrics.TransactionsCommitted] = n(txns)
	v[metrics.TransactionsRolledBack] = n(txns * m.deadlockProb)
	v[metrics.ThreadsRunning] = n(minf(f.conc, float64(e.res.Cores)*(1+4*f.rhoCPU)))
	v[metrics.ThreadsCreated] = n(maxf(0, f.clientThreads-e.params.ThreadCacheSize) * 0.2)
	v[metrics.ThreadsCached] = n(minf(e.params.ThreadCacheSize, f.clientThreads))
	v[metrics.ThreadsConnected] = n(f.clientThreads)
	v[metrics.QueueWaits] = n(maxf(0, f.clientThreads-f.conc) * perf.ThroughputTPS / 100)
	v[metrics.IbufMerges] = n(txns * f.writes * e.params.ChangeBuffering * (1 - m.hitRatio))
	ahi := 0.0
	if e.params.AdaptiveHash {
		ahi = 1
	}
	v[metrics.AdaptiveHashSearches] = n(txns * f.reads * ahi * 0.8)
	v[metrics.AdaptiveHashSearchesBtree] = n(txns * f.reads * (1 - 0.8*ahi))
	v[metrics.TempTablesCreated] = n(txns * f.tempTables)
	return v
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
