package simdb

import (
	"testing"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/sim"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// TestRandomConfigsNeverFloor: arbitrary (bootable) configurations may be
// slow, but none may collapse the engine to its throughput floor — a
// pathological response surface would poison every tuner's exploration.
// This is the regression test for the runaway background-I/O and deadlock
// penalties once observed on PostgreSQL.
func TestRandomConfigsNeverFloor(t *testing.T) {
	cases := []struct {
		dialect Dialect
		res     Resources
		names   []string
	}{
		{MySQL, referenceMySQL(), knob.MySQLTuned65()},
		{Postgres, Resources{Cores: 8, RAMBytes: 16 << 30, DiskIOPS: 8000, DiskReadLatencyMs: 0.9, FsyncLatencyMs: 0.6, CoreSpeed: 1}, knob.PostgresTuned65()},
	}
	p := workload.TPCC()
	for _, tc := range cases {
		t.Run(tc.dialect.String(), func(t *testing.T) {
			e, err := NewEngine(tc.dialect, tc.res, 900)
			if err != nil {
				t.Fatal(err)
			}
			var cat *knob.Catalog
			if tc.dialect == Postgres {
				cat = knob.Postgres()
			} else {
				cat = knob.MySQL()
			}
			space, err := knob.NewSpace(cat, tc.names, nil)
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewRNG(4)
			healthy, floored, failed := 0, 0, 0
			for i := 0; i < 40; i++ {
				cfg := space.Decode(space.Random(rng))
				if err := e.Configure(cfg); err != nil {
					failed++
					continue
				}
				perf, _, err := e.Run(p)
				if err != nil {
					t.Fatal(err)
				}
				if perf.ThroughputTPS <= 0.2 {
					floored++
				} else {
					healthy++
				}
			}
			t.Logf("%s: healthy=%d floored=%d bootfail=%d", tc.dialect, healthy, floored, failed)
			if floored > 0 {
				t.Errorf("%d configurations hit the throughput floor", floored)
			}
			if healthy < 10 {
				t.Errorf("only %d healthy configurations out of 40", healthy)
			}
		})
	}
}
