package simdb

import (
	"math"
	"sort"
	"testing"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/sim"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// productionInstance is the Table 7 type D host the production workload
// runs on (4 cores / 16 GB).
func productionInstance() Resources {
	return Resources{Cores: 4, RAMBytes: 16 << 30, DiskIOPS: 5000, DiskReadLatencyMs: 0.9, FsyncLatencyMs: 0.6, CoreSpeed: 1}
}

// TestCompressionFidelity validates the compressed production kernel
// against the full captured trace across a seeded random-config corpus
// (randomconfig_test.go style): per-config TPS and p95 latency must agree
// within the stated mean bounds, and — the property tuning actually
// depends on — the config ranking the two workloads induce must agree
// (Spearman ≥ 0.95). Measured at the time the bounds were set:
// meanRelTPS 0.069, meanRelP95 0.091, Spearman 0.991 over 21 bootable
// configs.
func TestCompressionFidelity(t *testing.T) {
	full := workload.Production()
	kern := workload.CompressProduction().Profile
	if err := kern.Validate(); err != nil {
		t.Fatal(err)
	}
	eF, err := NewEngine(MySQL, productionInstance(), 900)
	if err != nil {
		t.Fatal(err)
	}
	eK, err := NewEngine(MySQL, productionInstance(), 900)
	if err != nil {
		t.Fatal(err)
	}
	// Noise off: the bound is about the compression error, not about two
	// independent noise draws.
	eF.NoiseStdDev = 0
	eK.NoiseStdDev = 0
	space, err := knob.NewSpace(knob.MySQL(), knob.MySQLTuned65(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(4)
	var fTPS, kTPS, fLat, kLat []float64
	for i := 0; i < 40; i++ {
		cfg := space.Decode(space.Random(rng))
		if err := eF.Configure(cfg); err != nil {
			continue // unbootable under either workload — same catalog
		}
		if err := eK.Configure(cfg); err != nil {
			t.Fatalf("config boots for full but not kernel: %v", err)
		}
		pf, _, err := eF.Run(full)
		if err != nil {
			t.Fatal(err)
		}
		pk, _, err := eK.Run(kern)
		if err != nil {
			t.Fatal(err)
		}
		fTPS = append(fTPS, pf.ThroughputTPS)
		kTPS = append(kTPS, pk.ThroughputTPS)
		fLat = append(fLat, pf.P95LatencyMs)
		kLat = append(kLat, pk.P95LatencyMs)
	}
	n := len(fTPS)
	if n < 15 {
		t.Fatalf("only %d bootable configs in the corpus", n)
	}
	meanRel := func(a, b []float64) float64 {
		var sum float64
		for i := range a {
			sum += math.Abs(b[i]-a[i]) / a[i]
		}
		return sum / float64(len(a))
	}
	if rel := meanRel(fTPS, kTPS); rel > 0.12 {
		t.Errorf("mean relative TPS error %.3f, want <= 0.12", rel)
	}
	if rel := meanRel(fLat, kLat); rel > 0.15 {
		t.Errorf("mean relative p95 error %.3f, want <= 0.15", rel)
	}
	if rho := spearman(fTPS, kTPS); rho < 0.95 {
		t.Errorf("TPS ranking agreement (Spearman) %.3f, want >= 0.95", rho)
	} else {
		t.Logf("n=%d meanRelTPS=%.3f meanRelP95=%.3f spearman=%.3f",
			n, meanRel(fTPS, kTPS), meanRel(fLat, kLat), rho)
	}
}

// spearman computes the Spearman rank-correlation coefficient.
func spearman(a, b []float64) float64 {
	ra, rb := ranks(a), ranks(b)
	n := float64(len(a))
	var d2 float64
	for i := range ra {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	return 1 - 6*d2/(n*(n*n-1))
}

func ranks(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return x[idx[i]] < x[idx[j]] })
	r := make([]float64, len(x))
	for rank, i := range idx {
		r[i] = float64(rank)
	}
	return r
}
