package simdb

import (
	"testing"
	"testing/quick"

	"github.com/hunter-cdb/hunter/internal/sim"
)

func TestLockAcquireGrantAndReentry(t *testing.T) {
	lt := newLockTable(8)
	if lt.acquire(1, 100) != lockGranted {
		t.Fatal("fresh lock should grant")
	}
	if lt.acquire(1, 100) != lockGranted {
		t.Fatal("re-acquiring an owned lock should grant")
	}
	if lt.acquire(2, 100) != lockBlocked {
		t.Fatal("conflicting request should block")
	}
	lt.commit(1)
	if lt.acquire(2, 100) != lockGranted {
		t.Fatal("released lock should grant to the waiter")
	}
}

func TestLockDeadlockTwoTxns(t *testing.T) {
	// Classic crossing: T1 holds A and wants B; T2 holds B and wants A.
	lt := newLockTable(8)
	if lt.acquire(1, 'A') != lockGranted || lt.acquire(2, 'B') != lockGranted {
		t.Fatal("setup grants failed")
	}
	if lt.acquire(1, 'B') != lockBlocked {
		t.Fatal("T1 should block on B")
	}
	if lt.acquire(2, 'A') != lockDeadlock {
		t.Fatal("T2's request closes the cycle: deadlock")
	}
	if _, dl := lt.stats(); dl != 1 {
		t.Fatalf("deadlocks = %d", dl)
	}
	// The victim's locks were released: T1 can now take B.
	if lt.acquire(1, 'B') != lockGranted {
		t.Fatal("victim's locks should be free")
	}
}

func TestLockDeadlockThreeCycle(t *testing.T) {
	lt := newLockTable(8)
	lt.acquire(1, 'A')
	lt.acquire(2, 'B')
	lt.acquire(3, 'C')
	if lt.acquire(1, 'B') != lockBlocked {
		t.Fatal("1→B should block")
	}
	if lt.acquire(2, 'C') != lockBlocked {
		t.Fatal("2→C should block")
	}
	if lt.acquire(3, 'A') != lockDeadlock {
		t.Fatal("3→A closes the 3-cycle")
	}
}

func TestLockNoFalseDeadlock(t *testing.T) {
	// A chain (1 waits on 2, 2 waits on 3) is not a cycle.
	lt := newLockTable(8)
	lt.acquire(3, 'C')
	lt.acquire(2, 'B')
	if lt.acquire(2, 'C') != lockBlocked {
		t.Fatal("2 should block on 3")
	}
	if lt.acquire(1, 'B') != lockBlocked {
		t.Fatal("1 should block on 2 (chain, not cycle)")
	}
	if _, dl := lt.stats(); dl != 0 {
		t.Fatalf("false deadlock: %d", dl)
	}
}

func TestBatchLockSimDisjointKeysNoConflict(t *testing.T) {
	ws := [][]uint64{{1, 2}, {3, 4}, {5, 6}}
	cf, dl := batchLockSim(ws)
	if cf != 0 || dl != 0 {
		t.Fatalf("disjoint write sets conflicted: %d/%d", cf, dl)
	}
}

func TestBatchLockSimHotKeyConflicts(t *testing.T) {
	// Everyone updates the same row: all but the first wait; no deadlock
	// (single-key ordering cannot cycle).
	ws := [][]uint64{{7}, {7}, {7}, {7}}
	cf, dl := batchLockSim(ws)
	if cf != 3 {
		t.Fatalf("conflicted = %d, want 3", cf)
	}
	if dl != 0 {
		t.Fatalf("single-key workload deadlocked: %d", dl)
	}
}

func TestBatchLockSimCrossingDeadlocks(t *testing.T) {
	// Two transactions acquiring {A,B} in opposite orders must produce a
	// deadlock under round-robin interleaving.
	ws := [][]uint64{{1, 2}, {2, 1}}
	cf, dl := batchLockSim(ws)
	if dl != 1 {
		t.Fatalf("deadlocks = %d, want 1 (conflicted %d)", dl, cf)
	}
}

// TestBatchLockSimTerminatesProperty: arbitrary write sets must terminate
// (every transaction either finishes or is aborted) with sane counters.
func TestBatchLockSimTerminatesProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := sim.NewRNG(seed)
		n := int(nRaw)%24 + 2
		keys := int(kRaw)%12 + 1
		ws := make([][]uint64, n)
		for i := range ws {
			m := rng.Intn(6)
			for j := 0; j < m; j++ {
				ws[i] = append(ws[i], uint64(rng.Intn(keys)))
			}
		}
		cf, dl := batchLockSim(ws)
		return cf >= 0 && cf <= n && dl >= 0 && dl <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchLockSimContentionScalesWithHotness(t *testing.T) {
	rng := sim.NewRNG(9)
	run := func(keySpace int64) float64 {
		var conflicted, total int
		for b := 0; b < 50; b++ {
			ws := make([][]uint64, 16)
			for i := range ws {
				ws[i] = []uint64{uint64(rng.Int63n(keySpace)), uint64(rng.Int63n(keySpace))}
			}
			cf, _ := batchLockSim(ws)
			conflicted += cf
			total += 16
		}
		return float64(conflicted) / float64(total)
	}
	hot := run(8)
	cold := run(1 << 30)
	if hot <= cold {
		t.Fatalf("hot key space should conflict more: hot=%.3f cold=%.3f", hot, cold)
	}
	if cold > 0.01 {
		t.Fatalf("huge key space should barely conflict: %.3f", cold)
	}
}
