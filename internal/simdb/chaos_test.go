package simdb

import (
	"errors"
	"testing"

	"github.com/hunter-cdb/hunter/internal/workload"
)

// TestInjectCrashOneShot: an armed crash takes down exactly the next Run —
// the engine reports unbooted afterwards, and Configure brings it back.
func TestInjectCrashOneShot(t *testing.T) {
	e, err := NewEngine(MySQL, referenceMySQL(), 1)
	if err != nil {
		t.Fatal(err)
	}
	wl := workload.SysbenchRO()
	if _, _, err := e.Run(wl); err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}

	e.InjectCrash()
	perf, mv, err := e.Run(wl)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashed run returned %v, want ErrCrashed", err)
	}
	if !perf.Failed || mv != nil {
		t.Fatalf("crashed run leaked results: %+v %v", perf, mv)
	}
	// The process is gone: further runs fail as unbooted, not as crashed.
	if _, _, err := e.Run(wl); errors.Is(err, ErrCrashed) || err == nil {
		t.Fatalf("dead engine run returned %v, want a not-booted error", err)
	}
	// Configure reboots; the crash does not re-fire.
	if err := e.Configure(e.Config()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(wl); err != nil {
		t.Fatalf("rebooted run failed: %v", err)
	}
}

// TestInjectSlowIOConsumedByNextRun: the armed factor applies to exactly
// one run and does not perturb the measured performance — slow I/O
// stretches virtual time (the caller's job), not the simulated metrics.
func TestInjectSlowIOConsumedByNextRun(t *testing.T) {
	mk := func() *Engine {
		e, err := NewEngine(MySQL, referenceMySQL(), 1)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	wl := workload.SysbenchRO()
	clean := mk()
	cperf, _, err := clean.Run(wl)
	if err != nil {
		t.Fatal(err)
	}

	e := mk()
	e.InjectSlowIO(2.5)
	perf, _, err := e.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.LastSlowFactor(); got != 2.5 {
		t.Fatalf("LastSlowFactor = %v, want 2.5", got)
	}
	if perf != cperf {
		t.Fatalf("slow I/O changed the measured perf: %+v != %+v", perf, cperf)
	}
	// One-shot: the next run is nominal again.
	if _, _, err := e.Run(wl); err != nil {
		t.Fatal(err)
	}
	if got := e.LastSlowFactor(); got != 1 {
		t.Fatalf("slow factor not consumed: %v", got)
	}
}

// TestInjectSlowIOClamped: factors below 1 never shrink a run.
func TestInjectSlowIOClamped(t *testing.T) {
	e, err := NewEngine(MySQL, referenceMySQL(), 1)
	if err != nil {
		t.Fatal(err)
	}
	e.InjectSlowIO(0.25)
	if _, _, err := e.Run(workload.SysbenchRO()); err != nil {
		t.Fatal(err)
	}
	if got := e.LastSlowFactor(); got != 1 {
		t.Fatalf("LastSlowFactor = %v, want clamp to 1", got)
	}
}

// TestCrashClearsPendingSlowIO: a crash wins over a pending straggler —
// the next successful run must not inherit a stale factor.
func TestCrashClearsPendingSlowIO(t *testing.T) {
	e, err := NewEngine(MySQL, referenceMySQL(), 1)
	if err != nil {
		t.Fatal(err)
	}
	e.InjectSlowIO(3)
	e.InjectCrash()
	if _, _, err := e.Run(workload.SysbenchRO()); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if got := e.LastSlowFactor(); got != 1 {
		t.Fatalf("crashed run reported slow factor %v, want 1", got)
	}
	// After a reboot the stale factor must not resurface.
	if err := e.Configure(e.Config()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(workload.SysbenchRO()); err != nil {
		t.Fatal(err)
	}
	if got := e.LastSlowFactor(); got != 1 {
		t.Fatalf("rebooted run inherited slow factor %v", got)
	}
}
