package simdb

import (
	"testing"
	"testing/quick"

	"github.com/hunter-cdb/hunter/internal/sim"
)

func TestBufferPoolBasicHitMiss(t *testing.T) {
	b := newBufferPool(4, 37, false)
	if b.Access(1, false, false) {
		t.Fatal("first access should miss")
	}
	if !b.Access(1, false, false) {
		t.Fatal("second access should hit")
	}
	if b.HitRatio() != 0.5 {
		t.Fatalf("hit ratio %v, want 0.5", b.HitRatio())
	}
}

func TestBufferPoolCapacityBound(t *testing.T) {
	b := newBufferPool(8, 37, false)
	for i := uint32(0); i < 100; i++ {
		b.Access(i, false, false)
	}
	if b.Len() != 8 {
		t.Fatalf("resident pages %d, want 8", b.Len())
	}
	if b.evictions != 92 {
		t.Fatalf("evictions %d, want 92", b.evictions)
	}
}

func TestBufferPoolDirtyTracking(t *testing.T) {
	b := newBufferPool(10, 37, false)
	b.Access(1, true, false)
	b.Access(2, true, false)
	b.Access(1, true, false) // re-dirty: no double count
	if b.dirtyPages != 2 {
		t.Fatalf("dirty pages %d, want 2", b.dirtyPages)
	}
	if got := b.FlushDirty(1); got != 1 {
		t.Fatalf("flushed %d, want 1", got)
	}
	if b.dirtyPages != 1 {
		t.Fatalf("dirty pages after flush %d, want 1", b.dirtyPages)
	}
	if r := b.DirtyRatio(); r != 0.5 {
		t.Fatalf("dirty ratio %v, want 0.5", r)
	}
}

// TestBufferPoolScanResistance: a huge sequential scan must not evict the
// hot set thanks to midpoint insertion.
func TestBufferPoolScanResistance(t *testing.T) {
	b := newBufferPool(100, 37, false)
	// Establish a hot set of 30 pages, touched repeatedly (promoted young).
	for round := 0; round < 5; round++ {
		for i := uint32(0); i < 30; i++ {
			b.Access(i, false, false)
		}
	}
	// Scan 10000 cold pages.
	for i := uint32(1000); i < 11000; i++ {
		b.Access(i, false, true)
	}
	b.ResetCounters()
	for i := uint32(0); i < 30; i++ {
		b.Access(i, false, false)
	}
	// The young region holds 63% of the list; the part of the idle hot
	// set that drifted into the old region is sacrificed to the scan, as
	// in real InnoDB. Most of the hot set must survive.
	if b.HitRatio() < 0.55 {
		t.Fatalf("hot set evicted by scan: post-scan hit ratio %.2f", b.HitRatio())
	}
}

// TestBufferPoolNoScanResistanceWithoutMidpoint contrasts a plain LRU
// (old region ≈ whole list, immediate promotion): the same scan destroys
// the hot set, demonstrating why innodb_old_blocks_pct matters.
func TestBufferPoolScanResistanceComparison(t *testing.T) {
	hot := func(oldPct float64, promote2nd bool) float64 {
		b := newBufferPool(100, oldPct, promote2nd)
		for round := 0; round < 5; round++ {
			for i := uint32(0); i < 30; i++ {
				b.Access(i, false, false)
			}
		}
		for i := uint32(1000); i < 11000; i++ {
			b.Access(i, false, true)
		}
		b.ResetCounters()
		for i := uint32(0); i < 30; i++ {
			b.Access(i, false, false)
		}
		return b.HitRatio()
	}
	protected := hot(30, true)
	unprotected := hot(95, false)
	if protected <= unprotected {
		t.Fatalf("midpoint insertion should protect the hot set: protected=%.2f unprotected=%.2f",
			protected, unprotected)
	}
}

// TestBufferPoolListInvariantProperty drives the pool with random access
// sequences and verifies the intrusive list stays consistent.
func TestBufferPoolListInvariantProperty(t *testing.T) {
	f := func(seed int64, capRaw uint8, ops uint16) bool {
		capacity := int(capRaw)%64 + 1
		rng := sim.NewRNG(seed)
		b := newBufferPool(capacity, float64(rng.Intn(90)+5), rng.Intn(2) == 0)
		n := int(ops)%2000 + 10
		for i := 0; i < n; i++ {
			b.Access(uint32(rng.Intn(capacity*3)), rng.Intn(3) == 0, rng.Intn(5) == 0)
			if rng.Intn(17) == 0 {
				b.FlushDirty(rng.Intn(4))
			}
		}
		if err := b.checkList(); err != nil {
			return false
		}
		if b.Len() > capacity {
			return false
		}
		if b.dirtyPages < 0 || b.dirtyPages > b.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBufferPoolHitRatioMonotone: with the same access stream, a bigger
// pool never hits less (on a skewed stream this should be strict).
func TestBufferPoolHitRatioMonotone(t *testing.T) {
	stream := make([]uint32, 20000)
	z := sim.NewZipf(sim.NewRNG(9), 1.2, 4096)
	for i := range stream {
		stream[i] = uint32(z.Next())
	}
	var prev float64 = -1
	for _, capacity := range []int{64, 256, 1024, 4096} {
		b := newBufferPool(capacity, 37, true)
		for _, p := range stream {
			b.Access(p, false, false)
		}
		hr := b.HitRatio()
		if hr < prev-0.02 { // small tolerance: replacement is not stack-inclusive
			t.Fatalf("hit ratio decreased with capacity: %d→%.3f after %.3f", capacity, hr, prev)
		}
		prev = hr
	}
	if prev < 0.9 {
		t.Fatalf("full-residency pool should hit >90%%, got %.3f", prev)
	}
}
