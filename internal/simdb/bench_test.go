package simdb

import (
	"testing"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/sim"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// BenchmarkBufferPoolAccess measures raw LRU throughput (the inner loop of
// every stress test).
func BenchmarkBufferPoolAccess(b *testing.B) {
	pool := newBufferPool(4096, 37, true)
	z := sim.NewZipf(sim.NewRNG(1), 1.2, 65536)
	keys := make([]uint32, 8192)
	for i := range keys {
		keys[i] = uint32(z.Next())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Access(keys[i%len(keys)], i%4 == 0, false)
	}
}

// BenchmarkBufferPoolMidpointVsPlain is the design-choice ablation from
// DESIGN.md: midpoint insertion vs a plain LRU under a scan-polluted
// stream. It reports the hit ratio each policy achieves as a metric.
func BenchmarkBufferPoolMidpointVsPlain(b *testing.B) {
	run := func(b *testing.B, oldPct float64, promote2nd bool) {
		var hit float64
		for i := 0; i < b.N; i++ {
			pool := newBufferPool(1024, oldPct, promote2nd)
			z := sim.NewZipf(sim.NewRNG(int64(i)), 1.3, 16384)
			for j := 0; j < 30000; j++ {
				if j%10 == 9 { // periodic short scans pollute the pool
					start := uint32(j * 37 % 16384)
					for k := uint32(0); k < 16; k++ {
						pool.Access(start+k, false, true)
					}
				} else {
					pool.Access(uint32(z.Next()), false, false)
				}
			}
			hit += pool.HitRatio()
		}
		b.ReportMetric(hit/float64(b.N), "hit-ratio")
	}
	b.Run("midpoint", func(b *testing.B) { run(b, 37, true) })
	b.Run("plain-lru", func(b *testing.B) { run(b, 95, false) })
}

// BenchmarkEngineRun measures one full stress test (the unit of every
// tuning step) per workload.
func BenchmarkEngineRun(b *testing.B) {
	for _, wl := range []struct {
		name string
		p    *workload.Profile
	}{
		{"tpcc", workload.TPCC()},
		{"sysbench-rw", workload.SysbenchRW()},
		{"production", workload.Production()},
	} {
		b.Run(wl.name, func(b *testing.B) {
			e, err := NewEngine(MySQL, referenceMySQL(), 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.Run(wl.p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineConfigure measures deployment cost including boot
// validation and pool rebuild.
func BenchmarkEngineConfigure(b *testing.B) {
	e, err := NewEngine(MySQL, referenceMySQL(), 2)
	if err != nil {
		b.Fatal(err)
	}
	cfgs := make([]knob.Config, 8)
	for i := range cfgs {
		c := knob.MySQL().Defaults()
		c["innodb_buffer_pool_size"] = float64(int64(1+i) << 30)
		cfgs[i] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Configure(cfgs[i%len(cfgs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRunProductionCompression is the per-step cost collapse:
// one stress test of the full 222-table production trace profile vs the
// compressed kernel (clustered mix + fractional measurement effort).
func BenchmarkEngineRunProductionCompression(b *testing.B) {
	full := workload.Production()
	kernel := workload.CompressProduction().Profile
	for _, wl := range []struct {
		name string
		p    *workload.Profile
	}{
		{"full", full},
		{"kernel", kernel},
	} {
		b.Run(wl.name, func(b *testing.B) {
			e, err := NewEngine(MySQL, referenceMySQL(), 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.Run(wl.p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineWarmDelta measures the Configure+Run cycle when
// consecutive configurations move only the buffer-pool shape: rebuild
// discards and re-warms the pool every time, delta resizes it in place.
func BenchmarkEngineWarmDelta(b *testing.B) {
	p := workload.TPCC()
	cfgs := make([]knob.Config, 4)
	for i := range cfgs {
		c := knob.MySQL().Defaults()
		c["innodb_buffer_pool_size"] = float64(int64(4+4*i) << 30)
		cfgs[i] = c
	}
	for _, mode := range []struct {
		name string
		on   bool
	}{
		{"rebuild", false},
		{"delta", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			e, err := NewEngine(MySQL, referenceMySQL(), 1)
			if err != nil {
				b.Fatal(err)
			}
			e.SetWarmDeltas(mode.on)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Configure(cfgs[i%len(cfgs)]); err != nil {
					b.Fatal(err)
				}
				if _, _, err := e.Run(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
