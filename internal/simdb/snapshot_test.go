package simdb

import (
	"bytes"
	"testing"

	"github.com/hunter-cdb/hunter/internal/workload"
)

// TestEngineSnapshotRoundTrip checkpoints an engine mid-life — warm pool,
// advanced RNG, non-default configuration — and verifies the restored
// engine's subsequent stress tests are bit-identical to the original's.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	res := Resources{Cores: 8, RAMBytes: 32 << 30, DiskIOPS: 8000, DiskReadLatencyMs: 0.9, FsyncLatencyMs: 0.6, CoreSpeed: 1}
	e, err := NewEngine(MySQL, res, 77)
	if err != nil {
		t.Fatal(err)
	}
	p := workload.TPCC()
	// Several runs with a config change in between: warms the pool, moves
	// the RNG, and leaves lastWarmupS in a non-trivial state.
	if _, _, err := e.Run(p); err != nil {
		t.Fatal(err)
	}
	cfg := e.Config()
	cfg["innodb_buffer_pool_size"] = 8 << 30
	if err := e.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(p); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.SnapshotTo(&buf); err != nil {
		t.Fatalf("SnapshotTo: %v", err)
	}
	r, err := NewEngine(MySQL, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("RestoreFrom: %v", err)
	}
	if r.LastWarmupSeconds() != e.LastWarmupSeconds() {
		t.Fatalf("lastWarmupS %v != %v", r.LastWarmupSeconds(), e.LastWarmupSeconds())
	}

	// The restored engine must continue the exact measurement stream,
	// including across another reconfiguration (which rebuilds and re-warms
	// the pool, consuming the RNG).
	for step := 0; step < 3; step++ {
		pa, mva, err1 := e.Run(p)
		pb, mvb, err2 := r.Run(p)
		if err1 != nil || err2 != nil {
			t.Fatalf("run %d: %v / %v", step, err1, err2)
		}
		if pa != pb {
			t.Fatalf("run %d perf diverged: %+v != %+v", step, pa, pb)
		}
		for k := range mva {
			if mva[k] != mvb[k] {
				t.Fatalf("run %d metric %d diverged: %v != %v", step, k, mva[k], mvb[k])
			}
		}
		if step == 1 {
			next := e.Config()
			next["innodb_buffer_pool_size"] = 4 << 30
			if err := e.Configure(next); err != nil {
				t.Fatal(err)
			}
			if err := r.Configure(next); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestEngineRestoreRejectsBad checks garbage and corrupt pool states are
// refused without mutating the engine.
func TestEngineRestoreRejectsBad(t *testing.T) {
	res := Resources{Cores: 4, RAMBytes: 16 << 30, DiskIOPS: 5000, DiskReadLatencyMs: 0.9, FsyncLatencyMs: 0.6, CoreSpeed: 1}
	e, err := NewEngine(MySQL, res, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := workload.TPCC()
	if _, _, err := e.Run(p); err != nil {
		t.Fatal(err)
	}
	before, mvBefore, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	_ = mvBefore
	if err := e.RestoreFrom(bytes.NewReader([]byte("bogus"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// The engine must still be usable and deterministic: snapshot it, run,
	// restore, rerun — the failed restore above must not have moved anything.
	var buf bytes.Buffer
	if err := e.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	after1, _, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	after2, _, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if after1 != after2 {
		t.Fatalf("restore did not reproduce the stream: %+v != %+v", after1, after2)
	}
	_ = before
}

// TestPoolRestoreValidates feeds corrupt pool geometry through the decoder.
func TestPoolRestoreValidates(t *testing.T) {
	bad := []poolState{
		{Capacity: 0},
		{Capacity: 2, Nodes: make([]bpNodeState, 3)},
		{Capacity: 4, Nodes: []bpNodeState{{Next: 9}}, Head: 0, Tail: 0, Mid: -1, Resident: 1},
		{Capacity: 4, Nodes: []bpNodeState{{Prev: -1, Next: -1}}, Head: 0, Tail: 0, Mid: -1, Resident: 2},
		{Capacity: 4, Free: []int32{7}},
	}
	for i := range bad {
		if _, err := restorePool(&bad[i]); err == nil {
			t.Fatalf("case %d: corrupt pool state accepted", i)
		}
	}
}
