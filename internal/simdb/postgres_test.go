package simdb

import (
	"testing"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/workload"
)

func pgEngine(t *testing.T, seed int64) *Engine {
	t.Helper()
	e, err := NewEngine(Postgres, referencePostgres(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func pgRun(t *testing.T, e *Engine, mutate func(knob.Config), p *workload.Profile) Perf {
	t.Helper()
	cfg := knob.Postgres().Defaults()
	mutate(cfg)
	if err := e.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	perf, _, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return perf
}

func TestPGSharedBuffersHelp(t *testing.T) {
	e := pgEngine(t, 1)
	p := workload.TPCC()
	small := pgRun(t, e, func(c knob.Config) {}, p)
	big := pgRun(t, e, func(c knob.Config) { c["shared_buffers"] = 8 << 30 }, p)
	if big.ThroughputTPS <= small.ThroughputTPS {
		t.Fatalf("8 GB shared_buffers (%.0f tps) should beat 128 MB (%.0f tps)",
			big.ThroughputTPS, small.ThroughputTPS)
	}
}

func TestPGAsyncCommitHelpsWrites(t *testing.T) {
	e := pgEngine(t, 2)
	p := workload.SysbenchWO()
	sync := pgRun(t, e, func(c knob.Config) {}, p)
	async := pgRun(t, e, func(c knob.Config) { c["synchronous_commit"] = 0 }, p)
	if async.ThroughputTPS <= sync.ThroughputTPS {
		t.Fatalf("synchronous_commit=off (%.0f) should beat on (%.0f)",
			async.ThroughputTPS, sync.ThroughputTPS)
	}
}

func TestPGCheckpointSpreadSmoothsTail(t *testing.T) {
	e := pgEngine(t, 3)
	p := workload.SysbenchWO()
	// A small max_wal_size under a fast write rate forces frequent
	// checkpoints; spreading the writes softens the tail-latency spike.
	// The other knobs remove unrelated bottlenecks so the checkpoint
	// effect stands out of the measurement noise.
	base := func(c knob.Config) {
		c["shared_buffers"] = 8 << 30
		c["synchronous_commit"] = 0
		c["max_wal_size"] = 128 << 20
	}
	spiky := pgRun(t, e, func(c knob.Config) {
		base(c)
		c["checkpoint_completion_target"] = 0.1
	}, p)
	smooth := pgRun(t, e, func(c knob.Config) {
		base(c)
		c["checkpoint_completion_target"] = 0.9
	}, p)
	if smooth.P95LatencyMs >= spiky.P95LatencyMs {
		t.Fatalf("spread checkpoints should cut p95: %.1f vs %.1f",
			smooth.P95LatencyMs, spiky.P95LatencyMs)
	}
}

func TestPGFullPageWritesCost(t *testing.T) {
	e := pgEngine(t, 4)
	p := workload.SysbenchWO()
	fpw := pgRun(t, e, func(c knob.Config) { c["max_wal_size"] = 256 << 20 }, p)
	noFpw := pgRun(t, e, func(c knob.Config) {
		c["max_wal_size"] = 256 << 20
		c["full_page_writes"] = 0
	}, p)
	if noFpw.ThroughputTPS <= fpw.ThroughputTPS {
		t.Fatalf("disabling full_page_writes under checkpoint pressure should help: %.0f vs %.0f",
			noFpw.ThroughputTPS, fpw.ThroughputTPS)
	}
}

func TestPGWorkMemSpill(t *testing.T) {
	e := pgEngine(t, 5)
	p := workload.SysbenchRO() // has sorts (temp tables)
	tiny := pgRun(t, e, func(c knob.Config) { c["work_mem"] = 64 << 10 }, p)
	ample := pgRun(t, e, func(c knob.Config) { c["work_mem"] = 64 << 20 }, p)
	if ample.ThroughputTPS <= tiny.ThroughputTPS {
		t.Fatalf("ample work_mem should avoid sort spills: %.0f vs %.0f",
			ample.ThroughputTPS, tiny.ThroughputTPS)
	}
}

func TestPGBootFailureOversizedBuffers(t *testing.T) {
	e := pgEngine(t, 6)
	cfg := knob.Postgres().Defaults()
	cfg["shared_buffers"] = 20 << 30 // > 16 GB host
	if err := e.Configure(cfg); err == nil {
		t.Fatal("oversized shared_buffers must fail to boot")
	}
}
