package simdb

// lockTable is a row-lock manager with wait-for-graph deadlock detection,
// the mechanism behind the engine's lock-contention measurements. During a
// stress test the engine simulates batches of concurrent transactions
// acquiring exclusive row locks; a transaction that requests a held lock
// blocks behind the holder, and a cycle in the wait-for graph is a
// deadlock (InnoDB detects these immediately; PostgreSQL after
// deadlock_timeout).
type lockTable struct {
	owner   map[uint64]int // key → owning transaction
	held    [][]uint64     // per-txn held keys
	waitFor []int          // blocked txn → txn it waits on (-1: none)
	waited  []bool         // txns that blocked at least once
	aborted []bool

	deadlocks int
	nWaited   int
}

func newLockTable(n int) *lockTable {
	lt := &lockTable{}
	lt.reset(n)
	return lt
}

// reset prepares the table for a fresh batch of n transactions, reusing
// the per-transaction slices and the owner map from earlier batches — the
// lock simulation runs dozens of batches per stress test, so the
// allocation churn of rebuilding the table dominated the measurement loop.
func (lt *lockTable) reset(n int) {
	if lt.owner == nil {
		lt.owner = make(map[uint64]int, 4*n)
	} else {
		clear(lt.owner)
	}
	if cap(lt.held) < n {
		lt.held = make([][]uint64, n)
		lt.waitFor = make([]int, n)
		lt.waited = make([]bool, n)
		lt.aborted = make([]bool, n)
	} else {
		lt.held = lt.held[:n]
		lt.waitFor = lt.waitFor[:n]
		lt.waited = lt.waited[:n]
		lt.aborted = lt.aborted[:n]
	}
	for i := 0; i < n; i++ {
		lt.held[i] = lt.held[i][:0]
		lt.waitFor[i] = -1
		lt.waited[i] = false
		lt.aborted[i] = false
	}
	lt.deadlocks, lt.nWaited = 0, 0
}

// acquireResult describes the outcome of one lock request.
type acquireResult int

const (
	lockGranted acquireResult = iota
	lockBlocked
	lockDeadlock // requester chosen as deadlock victim and aborted
)

// acquire requests an exclusive lock on key for txn. On conflict the
// transaction blocks behind the holder; if that wait would close a cycle
// in the wait-for graph, the requester is aborted as the deadlock victim
// (its locks are released, possibly waking other waiters' paths).
func (lt *lockTable) acquire(txn int, key uint64) acquireResult {
	if lt.aborted[txn] {
		return lockDeadlock
	}
	holder, taken := lt.owner[key]
	if !taken || holder == txn {
		if !taken {
			lt.owner[key] = txn
			lt.held[txn] = append(lt.held[txn], key)
		}
		return lockGranted
	}
	// Would wait on holder: check for a cycle holder → … → txn.
	if !lt.waited[txn] {
		lt.waited[txn] = true
		lt.nWaited++
	}
	node, hops := holder, 0
	for hops <= len(lt.waitFor)+1 {
		next := lt.waitFor[node]
		if next < 0 {
			break
		}
		if next == txn {
			// Cycle: abort the requester (youngest-waiter victim policy).
			lt.deadlocks++
			lt.abort(txn)
			return lockDeadlock
		}
		node = next
		hops++
	}
	lt.waitFor[txn] = holder
	return lockBlocked
}

// abort releases everything txn holds and removes it from the graph.
func (lt *lockTable) abort(txn int) {
	lt.aborted[txn] = true
	lt.release(txn)
}

// commit releases txn's locks at transaction end.
func (lt *lockTable) commit(txn int) { lt.release(txn) }

func (lt *lockTable) release(txn int) {
	for _, k := range lt.held[txn] {
		if lt.owner[k] == txn {
			delete(lt.owner, k)
		}
	}
	lt.held[txn] = lt.held[txn][:0]
	lt.waitFor[txn] = -1
	// Waiters blocked on txn are now unblocked (they will retry).
	for w, h := range lt.waitFor {
		if h == txn {
			lt.waitFor[w] = -1
		}
	}
}

// stats summarizes a batch.
func (lt *lockTable) stats() (conflicted, deadlocks int) {
	return lt.nWaited, lt.deadlocks
}

// sortUint64 sorts a small key slice in place (insertion sort: write sets
// are short and this sits on the measurement hot path).
func sortUint64(a []uint64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// lockSim is the reusable state of the batch lock simulation: one lock
// table plus the per-transaction progress scratch, reused across the many
// batches of a stress test and across stress tests.
type lockSim struct {
	lt       lockTable
	progress []int
	blocked  []bool
	commitAt []int
	done     []bool
}

// prepare sizes the scratch for n transactions and zeroes it.
func (s *lockSim) prepare(n int) {
	s.lt.reset(n)
	if cap(s.progress) < n {
		s.progress = make([]int, n)
		s.blocked = make([]bool, n)
		s.commitAt = make([]int, n)
		s.done = make([]bool, n)
	} else {
		s.progress = s.progress[:n]
		s.blocked = s.blocked[:n]
		s.commitAt = s.commitAt[:n]
		s.done = s.done[:n]
	}
	for i := 0; i < n; i++ {
		s.progress[i], s.commitAt[i] = 0, 0
		s.blocked[i], s.done[i] = false, false
	}
}

// batchLockSim plays one batch of concurrent transactions against a fresh
// lock table (convenience wrapper over lockSim for tests and one-shot
// callers).
func batchLockSim(writeSets [][]uint64) (conflicted, deadlocks int) {
	var s lockSim
	return s.run(writeSets)
}

// run plays one batch of concurrent transactions: transactions acquire
// their write keys round-robin (the interleaving of concurrent execution),
// hold everything until they finish executing (two-phase locking with a
// short post-acquisition execution phase), and blocked transactions retry
// after the holder commits. It returns how many transactions ever waited
// and how many deadlocked.
func (s *lockSim) run(writeSets [][]uint64) (conflicted, deadlocks int) {
	const holdRounds = 2 // execution time after the last lock, in rounds
	n := len(writeSets)
	s.prepare(n)
	lt := &s.lt
	progress := s.progress
	blocked := s.blocked
	commitAt := s.commitAt
	done := s.done
	maxKeys := 0
	for _, ws := range writeSets {
		if len(ws) > maxKeys {
			maxKeys = len(ws)
		}
	}
	// Worst case is full serialization on one hot key: n·(holdRounds+1)
	// rounds; beyond that something is livelocked and we cut off.
	roundCap := n*(holdRounds+1) + 2*maxKeys + 16
	remaining := n
	for round := 0; remaining > 0 && round < roundCap; round++ {
		remaining = 0
		for t := 0; t < n; t++ {
			if done[t] || lt.aborted[t] {
				continue
			}
			remaining++
			if progress[t] >= len(writeSets[t]) {
				// Executing with all locks held; commit when done.
				if round >= commitAt[t] {
					lt.commit(t)
					done[t] = true
				}
				continue
			}
			if blocked[t] {
				// Retry the same key; succeeds once the holder released.
				if o, held := lt.owner[writeSets[t][progress[t]]]; held && o != t {
					continue
				}
				blocked[t] = false
			}
			switch lt.acquire(t, writeSets[t][progress[t]]) {
			case lockGranted:
				progress[t]++
				if progress[t] >= len(writeSets[t]) {
					commitAt[t] = round + holdRounds
				}
			case lockBlocked:
				blocked[t] = true
			case lockDeadlock:
				// Victim aborted; its locks were released.
			}
		}
	}
	return lt.stats()
}
