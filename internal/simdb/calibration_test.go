package simdb

import (
	"testing"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// referenceMySQL is the paper's MySQL instance: 8 cores, 32 GB RAM, cloud SSD.
func referenceMySQL() Resources {
	return Resources{Cores: 8, RAMBytes: 32 << 30, DiskIOPS: 8000, DiskReadLatencyMs: 0.9, FsyncLatencyMs: 0.6, CoreSpeed: 1.0}
}

// referencePostgres is the paper's PostgreSQL instance: 8 cores, 16 GB RAM.
func referencePostgres() Resources {
	return Resources{Cores: 8, RAMBytes: 16 << 30, DiskIOPS: 8000, DiskReadLatencyMs: 0.9, FsyncLatencyMs: 0.6, CoreSpeed: 1.0}
}

// tunedMySQL is a hand-tuned configuration a DBA would reach: it should
// beat the default by a large factor on every workload.
func tunedMySQL() knob.Config {
	cfg := knob.MySQL().Defaults()
	cfg["innodb_buffer_pool_size"] = 24 << 30
	cfg["innodb_log_file_size"] = 2 << 30
	cfg["innodb_flush_log_at_trx_commit"] = 2
	cfg["sync_binlog"] = 0
	cfg["innodb_io_capacity"] = 10000
	cfg["innodb_io_capacity_max"] = 20000
	cfg["innodb_thread_concurrency"] = 64
	cfg["innodb_max_dirty_pages_pct"] = 90
	cfg["innodb_log_buffer_size"] = 128 << 20
	return cfg
}

// TestCalibrationShape prints the default-vs-tuned performance for every
// workload and asserts the qualitative shape the rest of the repository
// depends on: tuning must help substantially on every workload.
func TestCalibrationShape(t *testing.T) {
	cases := []struct {
		name string
		p    *workload.Profile
	}{
		{"tpcc", workload.TPCC()},
		{"sysbench-ro", workload.SysbenchRO()},
		{"sysbench-wo", workload.SysbenchWO()},
		{"sysbench-rw", workload.SysbenchRW()},
		{"production", workload.Production()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewEngine(MySQL, referenceMySQL(), 1)
			if err != nil {
				t.Fatal(err)
			}
			def, _, err := e.Run(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Configure(tunedMySQL()); err != nil {
				t.Fatal(err)
			}
			tun, _, err := e.Run(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-12s default: %8.0f tps (%6.0f tpm)  p95=%7.1f ms | tuned: %8.0f tps (%6.0f tpm) p95=%7.1f ms | speedup %.2fx",
				tc.name, def.ThroughputTPS, def.TPM(), def.P95LatencyMs,
				tun.ThroughputTPS, tun.TPM(), tun.P95LatencyMs,
				tun.ThroughputTPS/def.ThroughputTPS)
			if tun.ThroughputTPS < def.ThroughputTPS*1.3 {
				t.Errorf("tuned config should beat default by >=1.3x, got %.2fx", tun.ThroughputTPS/def.ThroughputTPS)
			}
			if tun.P95LatencyMs > def.P95LatencyMs {
				t.Errorf("tuned latency %.1f should not exceed default %.1f", tun.P95LatencyMs, def.P95LatencyMs)
			}
		})
	}
}

func TestCalibrationPostgres(t *testing.T) {
	e, err := NewEngine(Postgres, referencePostgres(), 2)
	if err != nil {
		t.Fatal(err)
	}
	p := workload.TPCC()
	def, _, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := knob.Postgres().Defaults()
	cfg["shared_buffers"] = 10 << 30
	cfg["max_wal_size"] = 16 << 30
	cfg["synchronous_commit"] = 0
	cfg["checkpoint_completion_target"] = 0.9
	cfg["bgwriter_lru_maxpages"] = 4000
	cfg["bgwriter_delay"] = 50
	if err := e.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	tun, _, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pg tpcc default: %6.0f tpm p95=%6.1f | tuned: %6.0f tpm p95=%6.1f | %.2fx",
		def.TPM(), def.P95LatencyMs, tun.TPM(), tun.P95LatencyMs, tun.ThroughputTPS/def.ThroughputTPS)
	if tun.ThroughputTPS < def.ThroughputTPS*1.2 {
		t.Errorf("tuned PG should beat default, got %.2fx", tun.ThroughputTPS/def.ThroughputTPS)
	}
}
