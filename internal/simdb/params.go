package simdb

import (
	"fmt"
	"math"

	"github.com/hunter-cdb/hunter/internal/knob"
)

// Params are the engine-level parameters a configuration resolves to. Both
// dialects map onto the same mechanistic parameter set (with
// dialect-specific translation and cost constants), so the simulation
// mechanisms are shared while MySQL and PostgreSQL keep distinct knob
// catalogs, defaults and behaviours.
type Params struct {
	Dialect Dialect

	// Buffer management.
	BufferPoolBytes     float64
	BufferPoolInstances int
	OldBlocksPct        float64 // midpoint insertion position (% old region)
	PromoteOnSecondHit  bool    // old_blocks_time > 0 semantics
	OSCacheAssist       bool    // non-O_DIRECT MySQL / always PostgreSQL
	MaxDirtyPct         float64
	LRUScanDepth        float64

	// Redo / WAL.
	LogCapacityBytes float64
	LogBufferBytes   float64
	FlushAtCommit    int     // 0 background, 1 fsync per commit group, 2 write per commit
	BinlogSyncEvery  float64 // 0 = never, N = fsync every N commits (MySQL)
	GroupCommitBoost float64 // extra group size from commit_delay (PostgreSQL)
	RedoAmplify      float64 // row-redo volume factor
	// PageImageBytes is the extra redo written per newly dirtied page
	// (PostgreSQL full_page_writes; halved by wal_compression).
	PageImageBytes   float64
	AdaptiveFlushing bool
	AdaptiveFlushLWM float64
	CkptSpread       float64 // checkpoint_completion_target (PostgreSQL), else default

	// Background I/O.
	IOCapacity     float64 // sustained background flush IOPS budget
	IOCapacityMax  float64
	PageCleaners   int
	Doublewrite    bool
	FlushNeighbors bool

	// Concurrency.
	ThreadConcurrency int // 0 = unlimited
	ThreadPool        bool
	ThreadCacheSize   float64
	MaxConnections    float64
	SpinWaitDelay     float64
	SyncArraySize     float64
	LockWaitTimeoutS  float64
	DeadlockTimeoutMs float64

	// Per-session memory.
	SortBufferBytes float64
	JoinBufferBytes float64
	TmpTableBytes   float64
	QueryCacheBytes float64

	// Access-path toggles.
	AdaptiveHash    bool
	ChangeBuffering float64 // 0..1 effectiveness
	AutovacuumOff   bool
	FsyncDisabled   bool
}

// get reads knob name from cfg with the catalog default as fallback.
func get(cat *knob.Catalog, cfg knob.Config, name string) float64 {
	spec, ok := cat.Spec(name)
	if !ok {
		panic(fmt.Sprintf("simdb: unknown knob %q in %s catalog", name, cat.Dialect))
	}
	return spec.Clamp(cfg.Get(name, spec.Default))
}

// ParamsFrom resolves a configuration into engine parameters for the given
// dialect.
func ParamsFrom(d Dialect, cfg knob.Config) Params {
	switch d {
	case MySQL:
		return mysqlParams(cfg)
	case Postgres:
		return postgresParams(cfg)
	}
	panic(fmt.Sprintf("simdb: unknown dialect %v", d))
}

func mysqlParams(cfg knob.Config) Params {
	cat := knob.MySQL()
	g := func(name string) float64 { return get(cat, cfg, name) }
	p := Params{
		Dialect:             MySQL,
		BufferPoolBytes:     g("innodb_buffer_pool_size"),
		BufferPoolInstances: int(g("innodb_buffer_pool_instances")),
		OldBlocksPct:        g("innodb_old_blocks_pct"),
		PromoteOnSecondHit:  g("innodb_old_blocks_time") > 0,
		OSCacheAssist:       g("innodb_flush_method") != 2, // not O_DIRECT
		MaxDirtyPct:         g("innodb_max_dirty_pages_pct"),
		LRUScanDepth:        g("innodb_lru_scan_depth"),
		LogCapacityBytes:    2 * g("innodb_log_file_size"), // two log files
		LogBufferBytes:      g("innodb_log_buffer_size"),
		FlushAtCommit:       int(g("innodb_flush_log_at_trx_commit")),
		BinlogSyncEvery:     g("sync_binlog"),
		RedoAmplify:         1,
		AdaptiveFlushing:    g("innodb_adaptive_flushing") == 1,
		AdaptiveFlushLWM:    g("innodb_adaptive_flushing_lwm"),
		CkptSpread:          0.5,
		IOCapacity:          g("innodb_io_capacity"),
		IOCapacityMax:       g("innodb_io_capacity_max"),
		PageCleaners:        int(g("innodb_page_cleaners")),
		Doublewrite:         g("innodb_doublewrite") == 1,
		FlushNeighbors:      g("innodb_flush_neighbors") == 1,
		ThreadConcurrency:   int(g("innodb_thread_concurrency")),
		ThreadPool:          g("thread_handling") == 1,
		ThreadCacheSize:     g("thread_cache_size"),
		MaxConnections:      g("max_connections"),
		SpinWaitDelay:       g("innodb_spin_wait_delay"),
		SyncArraySize:       g("innodb_sync_array_size"),
		LockWaitTimeoutS:    g("innodb_lock_wait_timeout"),
		DeadlockTimeoutMs:   1, // InnoDB detects immediately via wait-for graph
		SortBufferBytes:     g("sort_buffer_size"),
		JoinBufferBytes:     g("join_buffer_size"),
		TmpTableBytes:       g("tmp_table_size"),
		QueryCacheBytes:     g("query_cache_size"),
		AdaptiveHash:        g("innodb_adaptive_hash_index") == 1,
		ChangeBuffering:     g("innodb_change_buffering") / 5,
	}
	if p.Doublewrite {
		p.RedoAmplify = 1.15
	}
	if p.IOCapacityMax < p.IOCapacity {
		p.IOCapacityMax = p.IOCapacity
	}
	return p
}

func postgresParams(cfg knob.Config) Params {
	cat := knob.Postgres()
	g := func(name string) float64 { return get(cat, cfg, name) }
	// synchronous_commit: off=0, local/on=1, remote_write=2 (write, no fsync).
	flush := 1
	switch int(g("synchronous_commit")) {
	case 0:
		flush = 0
	case 2:
		flush = 2
	}
	// Background writer flush budget in pages/s.
	bgPagesPerSec := g("bgwriter_lru_maxpages") * (1000 / g("bgwriter_delay")) * (0.5 + g("bgwriter_lru_multiplier")/4)
	p := Params{
		Dialect:             Postgres,
		BufferPoolBytes:     g("shared_buffers"),
		BufferPoolInstances: 16, // PG partitions its buffer table internally
		OldBlocksPct:        50, // clock sweep approximated as midpoint at 50%
		PromoteOnSecondHit:  true,
		OSCacheAssist:       true, // PostgreSQL always relies on the OS page cache
		MaxDirtyPct:         90,
		LRUScanDepth:        1024,
		LogCapacityBytes:    g("max_wal_size"),
		LogBufferBytes:      g("wal_buffers"),
		FlushAtCommit:       flush,
		GroupCommitBoost:    commitDelayBoost(g("commit_delay"), g("commit_siblings")),
		RedoAmplify:         1,
		AdaptiveFlushing:    true,
		AdaptiveFlushLWM:    10,
		CkptSpread:          g("checkpoint_completion_target"),
		IOCapacity:          clampMin(bgPagesPerSec, 100),
		IOCapacityMax:       clampMin(bgPagesPerSec*2, 200),
		PageCleaners:        1,
		Doublewrite:         false,
		ThreadConcurrency:   0,
		ThreadPool:          false,
		ThreadCacheSize:     64,
		MaxConnections:      g("max_connections"),
		SpinWaitDelay:       6,
		SyncArraySize:       8,
		LockWaitTimeoutS:    1e9, // PG waits indefinitely by default
		DeadlockTimeoutMs:   g("deadlock_timeout"),
		SortBufferBytes:     g("work_mem"),
		JoinBufferBytes:     g("work_mem"),
		TmpTableBytes:       g("temp_buffers"),
		QueryCacheBytes:     0,
		AdaptiveHash:        false,
		ChangeBuffering:     0,
		AutovacuumOff:       g("autovacuum") == 0,
		FsyncDisabled:       g("fsync") == 0,
	}
	if g("full_page_writes") == 1 {
		p.PageImageBytes = 8192
		if g("wal_compression") == 1 {
			p.PageImageBytes = 3600
		}
	}
	if p.FsyncDisabled {
		p.FlushAtCommit = 0
	}
	return p
}

// commitDelayBoost converts commit_delay/commit_siblings into an extra
// group-commit batching factor in [1, 4].
func commitDelayBoost(delayUs, siblings float64) float64 {
	if delayUs <= 0 {
		return 1
	}
	boost := 1 + delayUs/3000
	if siblings > 20 {
		boost *= 0.7 // rarely triggers with a high sibling threshold
	}
	if boost > 4 {
		boost = 4
	}
	if boost < 1 {
		boost = 1
	}
	return boost
}

func clampMin(v, lo float64) float64 {
	if v < lo {
		return lo
	}
	return v
}

// FlushNeighborsMaint reports whether neighbor flushing inflates the page
// cleaners' maintenance I/O.
func (p Params) FlushNeighborsMaint() bool { return p.FlushNeighbors }

// SessionMemoryBytes estimates per-instance memory beyond the buffer pool:
// connection buffers, temp tables, caches. Used for boot validation and
// swap-pressure modelling.
func (p Params) SessionMemoryBytes(threads int) float64 {
	conns := math.Min(float64(threads), p.MaxConnections)
	// Work buffers are per *operation*, not permanently resident: only a
	// fraction of connections sort or join at any instant (duty factor).
	perConn := (p.SortBufferBytes+p.JoinBufferBytes)*0.25 + 256*1024 // + thread stack
	return conns*perConn + p.TmpTableBytes*conns/16 + p.QueryCacheBytes + p.LogBufferBytes
}

// ValidateBoot reports why the instance cannot start under these
// parameters, or nil if it boots. Awful configurations failing to boot is
// a first-class behaviour of the paper's Actor (§2.1).
func (p Params) ValidateBoot(res Resources, threads int) error {
	ram := float64(res.RAMBytes)
	if p.BufferPoolBytes > 0.95*ram {
		return fmt.Errorf("simdb: buffer pool %.0f MB exceeds 95%% of RAM %.0f MB",
			p.BufferPoolBytes/(1<<20), ram/(1<<20))
	}
	if p.BufferPoolBytes+p.SessionMemoryBytes(threads) > 1.15*ram {
		return fmt.Errorf("simdb: memory budget %.0f MB cannot fit in RAM %.0f MB",
			(p.BufferPoolBytes+p.SessionMemoryBytes(threads))/(1<<20), ram/(1<<20))
	}
	if p.MaxConnections < 1 {
		return fmt.Errorf("simdb: max_connections < 1")
	}
	return nil
}
