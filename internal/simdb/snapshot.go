package simdb

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// bpNodeState is one serialized buffer-pool frame.
type bpNodeState struct {
	Page                uint32
	Prev, Next          int32
	Dirty, Young, Touch bool
}

// poolState captures the buffer pool exactly: every frame, the young/old
// list linkage, the free list and all counters. Exact restoration matters
// because the LRU's future hit/eviction sequence — and through it the
// engine's RNG consumption — depends on the precise list order.
type poolState struct {
	Capacity         int
	Nodes            []bpNodeState
	Free             []int32
	Head, Tail, Mid  int32
	YoungLen, OldLen int
	Resident         int
	OldPct           float64
	Promote2nd       bool
	Hits, Misses     int64
	DirtyPages       int
	Evictions        int64
	DirtyEvictions   int64
	YoungPromotes    int64
	ScanInsertions   int64
}

// poolKeyState mirrors poolShapeKey with exported fields.
type poolKeyState struct {
	Profile      string
	SimPoolPages int
	SimDataPages int64
	OldBlocksPct float64
	Promote2nd   bool
}

// engineState is the engine's durable state. The access-plan cache, lock
// scratch and latency buffers are deliberately absent: they are rebuilt
// deterministically without consuming the RNG stream.
type engineState struct {
	Cfg          knob.Config
	Booted       bool
	RNG          sim.RNGState
	WarmupEnable bool
	LastWarmupS  float64
	NoiseStdDev  float64
	PoolKey      poolKeyState
	Pool         *poolState
}

// SnapshotTo serializes the engine (checkpoint.Snapshotter): active
// configuration, RNG stream, warm-up flags, and the full buffer pool. A
// restored engine's subsequent Run results are bit-identical to the
// original's.
func (e *Engine) SnapshotTo(w io.Writer) error {
	st := engineState{
		Cfg:          e.cfg,
		Booted:       e.booted,
		RNG:          e.rng.State(),
		WarmupEnable: e.warmupEnable,
		LastWarmupS:  e.lastWarmupS,
		NoiseStdDev:  e.NoiseStdDev,
		PoolKey: poolKeyState{
			Profile:      e.poolDataKey.profile,
			SimPoolPages: e.poolDataKey.simPoolPages,
			SimDataPages: e.poolDataKey.simDataPages,
			OldBlocksPct: e.poolDataKey.oldBlocksPct,
			Promote2nd:   e.poolDataKey.promote2nd,
		},
	}
	if b := e.pool; b != nil {
		ps := &poolState{
			Capacity: b.capacity, Free: b.free,
			Head: b.head, Tail: b.tail, Mid: b.midpoint,
			YoungLen: b.youngLen, OldLen: b.oldLen, Resident: b.resident,
			OldPct: b.oldPct, Promote2nd: b.promote2nd,
			Hits: b.hits, Misses: b.misses, DirtyPages: b.dirtyPages,
			Evictions: b.evictions, DirtyEvictions: b.dirtyEvictions,
			YoungPromotes: b.youngPromotes, ScanInsertions: b.scanInsertions,
		}
		ps.Nodes = make([]bpNodeState, len(b.nodes))
		for i, n := range b.nodes {
			ps.Nodes[i] = bpNodeState{Page: n.page, Prev: n.prev, Next: n.next, Dirty: n.dirty, Young: n.young, Touch: n.touched}
		}
		st.Pool = ps
	}
	return gob.NewEncoder(w).Encode(st)
}

// RestoreFrom reinstates an engine written by SnapshotTo
// (checkpoint.Restorer). The engine keeps its dialect, hardware and
// telemetry attachment; everything mutable is replaced. On error the
// engine is unchanged.
func (e *Engine) RestoreFrom(r io.Reader) error {
	var st engineState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	var pool *bufferPool
	if ps := st.Pool; ps != nil {
		var err error
		if pool, err = restorePool(ps); err != nil {
			return err
		}
	}
	rng := sim.NewRNG(0)
	if err := rng.SetState(st.RNG); err != nil {
		return err
	}
	var cfg, params = e.cfg, e.params
	if st.Booted {
		p := ParamsFrom(e.dialect, st.Cfg)
		if err := p.ValidateBoot(e.res, 512); err != nil {
			return fmt.Errorf("simdb: snapshot configuration does not boot: %w", err)
		}
		cfg, params = st.Cfg, p
	}
	e.cfg = cfg
	e.params = params
	e.booted = st.Booted
	e.rng = rng
	e.warmupEnable = st.WarmupEnable
	e.lastWarmupS = st.LastWarmupS
	e.NoiseStdDev = st.NoiseStdDev
	e.pool = pool
	e.poolDataKey = poolShapeKey{
		profile:      st.PoolKey.Profile,
		simPoolPages: st.PoolKey.SimPoolPages,
		simDataPages: st.PoolKey.SimDataPages,
		oldBlocksPct: st.PoolKey.OldBlocksPct,
		promote2nd:   st.PoolKey.Promote2nd,
	}
	e.plan = accessPlan{} // rebuilt on next Run; no RNG involved
	return nil
}

// restorePool rebuilds a buffer pool from its serialized frames, deriving
// the page index from the list linkage and validating the invariants the
// hot loop depends on.
func restorePool(ps *poolState) (*bufferPool, error) {
	// An online shrink (resize) can leave more allocated frames than the
	// current capacity, with the surplus parked on the free list — so the
	// frame count is bounded by resident + free, not by capacity.
	if ps.Capacity < 1 || ps.Resident > ps.Capacity || len(ps.Nodes) != ps.Resident+len(ps.Free) {
		return nil, fmt.Errorf("simdb: snapshot pool has %d frames, %d resident + %d free, capacity %d",
			len(ps.Nodes), ps.Resident, len(ps.Free), ps.Capacity)
	}
	n := int32(len(ps.Nodes))
	inRange := func(i int32) bool { return i >= -1 && i < n }
	if !inRange(ps.Head) || !inRange(ps.Tail) || !inRange(ps.Mid) {
		return nil, fmt.Errorf("simdb: snapshot pool list heads out of range")
	}
	b := &bufferPool{
		capacity: ps.Capacity,
		nodes:    make([]bpNode, len(ps.Nodes)),
		resident: ps.Resident,
		free:     append([]int32(nil), ps.Free...),
		head:     ps.Head, tail: ps.Tail, midpoint: ps.Mid,
		youngLen: ps.YoungLen, oldLen: ps.OldLen,
		oldPct: ps.OldPct, promote2nd: ps.Promote2nd,
		hits: ps.Hits, misses: ps.Misses,
		dirtyPages: ps.DirtyPages,
		evictions:  ps.Evictions, dirtyEvictions: ps.DirtyEvictions,
		youngPromotes: ps.YoungPromotes, scanInsertions: ps.ScanInsertions,
	}
	for i, s := range ps.Nodes {
		if !inRange(s.Prev) || !inRange(s.Next) {
			return nil, fmt.Errorf("simdb: snapshot pool frame %d links out of range", i)
		}
		b.nodes[i] = bpNode{page: s.Page, prev: s.Prev, next: s.Next, dirty: s.Dirty, young: s.Young, touched: s.Touch}
	}
	for _, fi := range b.free {
		if fi < 0 || fi >= n {
			return nil, fmt.Errorf("simdb: snapshot pool free-list entry %d out of range", fi)
		}
	}
	// Rebuild the page→frame index by walking the list; exactly the
	// resident frames are linked.
	count := 0
	for i := b.head; i >= 0; i = b.nodes[i].next {
		b.setSlot(b.nodes[i].page, i)
		count++
		if count > len(b.nodes) {
			return nil, errListCorrupt
		}
	}
	if count != b.resident {
		return nil, errListCorrupt
	}
	if err := b.checkList(); err != nil {
		return nil, err
	}
	return b, nil
}
