// Package metrics defines the 63 internal state metrics the tuning system
// observes after every stress test — the same setting CDBTune uses (§2.1).
// Metric identity is positional: a Vector is a fixed-width snapshot whose
// index i always refers to Names[i], which keeps PCA transforms, shared
// pools and serialized samples mutually consistent.
package metrics

import "fmt"

// Indices of every collected metric. The engine writes all of them; the
// Search Space Optimizer compresses them with PCA before they reach the
// Recommender.
const (
	BufferPoolReadRequests = iota // logical reads
	BufferPoolReads               // physical reads (misses)
	BufferPoolWriteRequests
	BufferPoolPagesData
	BufferPoolPagesDirty
	BufferPoolPagesFree
	BufferPoolPagesMisc
	BufferPoolPagesTotal
	BufferPoolBytesData
	BufferPoolBytesDirty
	BufferPoolReadAheadRnd
	BufferPoolReadAhead
	BufferPoolReadAheadEvicted
	BufferPoolWaitFree
	PagesCreated
	PagesRead
	PagesWritten
	PagesYoung
	PagesNotYoung
	DataReads
	DataWrites
	DataBytesRead
	DataBytesWritten
	DataFsyncs
	DataPendingReads
	DataPendingWrites
	DataPendingFsyncs
	LogWaits
	LogWriteRequests
	LogWrites
	LogPadded
	OSLogFsyncs
	OSLogBytesWritten
	OSLogPendingFsyncs
	OSLogPendingWrites
	CheckpointAge
	CheckpointsRequested
	CheckpointsTimed
	DblwrPagesWritten
	DblwrWrites
	RowLockWaits
	RowLockTime
	RowLockTimeAvg
	RowLockTimeMax
	RowLockCurrentWaits
	LockDeadlocks
	LockTimeouts
	RowsRead
	RowsInserted
	RowsUpdated
	RowsDeleted
	QueriesExecuted
	TransactionsCommitted
	TransactionsRolledBack
	ThreadsRunning
	ThreadsCreated
	ThreadsCached
	ThreadsConnected
	QueueWaits
	IbufMerges
	AdaptiveHashSearches
	AdaptiveHashSearchesBtree
	TempTablesCreated
)

// Count is the number of collected metrics (63, as in the paper).
const Count = TempTablesCreated + 1

var names = [Count]string{
	"buffer_pool_read_requests", "buffer_pool_reads", "buffer_pool_write_requests",
	"buffer_pool_pages_data", "buffer_pool_pages_dirty", "buffer_pool_pages_free",
	"buffer_pool_pages_misc", "buffer_pool_pages_total", "buffer_pool_bytes_data",
	"buffer_pool_bytes_dirty", "buffer_pool_read_ahead_rnd", "buffer_pool_read_ahead",
	"buffer_pool_read_ahead_evicted", "buffer_pool_wait_free", "pages_created",
	"pages_read", "pages_written", "pages_young", "pages_not_young", "data_reads",
	"data_writes", "data_bytes_read", "data_bytes_written", "data_fsyncs",
	"data_pending_reads", "data_pending_writes", "data_pending_fsyncs", "log_waits",
	"log_write_requests", "log_writes", "log_padded", "os_log_fsyncs",
	"os_log_bytes_written", "os_log_pending_fsyncs", "os_log_pending_writes",
	"checkpoint_age", "checkpoints_requested", "checkpoints_timed",
	"dblwr_pages_written", "dblwr_writes", "row_lock_waits", "row_lock_time",
	"row_lock_time_avg", "row_lock_time_max", "row_lock_current_waits",
	"lock_deadlocks", "lock_timeouts", "rows_read", "rows_inserted", "rows_updated",
	"rows_deleted", "queries_executed", "transactions_committed",
	"transactions_rolled_back", "threads_running", "threads_created",
	"threads_cached", "threads_connected", "queue_waits", "ibuf_merges",
	"adaptive_hash_searches", "adaptive_hash_searches_btree", "temp_tables_created",
}

// Names returns the metric names in index order.
func Names() []string { return names[:] }

// Name returns the name of metric i.
func Name(i int) string {
	if i < 0 || i >= Count {
		return fmt.Sprintf("metric_%d", i)
	}
	return names[i]
}

// Vector is one metric snapshot (the state S of a sample (S, A, P)).
type Vector []float64

// NewVector allocates a zeroed snapshot.
func NewVector() Vector { return make(Vector, Count) }

// Clone copies the vector.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}
