package metrics

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// failWriter errors after n successful writes, to exercise FormatStatus's
// error propagation mid-dump.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	w.n--
	return len(p), nil
}

func TestFormatStatusWriteError(t *testing.T) {
	if err := FormatStatus(&failWriter{n: 3}, NewVector()); err == nil {
		t.Fatal("write error should propagate")
	}
}

func TestParseStatusEmpty(t *testing.T) {
	v, err := ParseStatus(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != Count {
		t.Fatalf("empty dump parsed to %d values, want %d", len(v), Count)
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("metric %s nonzero (%v) from empty dump", Name(i), x)
		}
	}
}

func TestParseStatusLastValueWins(t *testing.T) {
	in := "lock_deadlocks\t1\nlock_deadlocks\t9\n"
	v, err := ParseStatus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v[LockDeadlocks] != 9 {
		t.Fatalf("duplicate variable: got %v, want the last value 9", v[LockDeadlocks])
	}
}

func TestParseStatusWhitespaceTolerance(t *testing.T) {
	// Real SHOW STATUS dumps arrive with ragged padding; values may be
	// floats even for counters.
	in := "  buffer_pool_reads \t 12.5 \n\n   \nrow_lock_waits 4\n"
	v, err := ParseStatus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v[BufferPoolReads] != 12.5 || v[RowLockWaits] != 4 {
		t.Fatalf("parsed %v / %v", v[BufferPoolReads], v[RowLockWaits])
	}
}

func TestFormatStatusDeterministic(t *testing.T) {
	v := NewVector()
	for i := range v {
		v[i] = float64(i)
	}
	var a, b bytes.Buffer
	if err := FormatStatus(&a, v); err != nil {
		t.Fatal(err)
	}
	if err := FormatStatus(&b, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("FormatStatus output is not deterministic")
	}
	if got := len(strings.Split(strings.TrimSpace(a.String()), "\n")); got != Count {
		t.Fatalf("dump has %d lines, want %d", got, Count)
	}
}
