package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// FormatStatus renders a metric snapshot in the two-column
// "Variable_name\tValue" layout of MySQL's SHOW STATUS — the interface the
// paper's Metric Collector gathers through (§2.2).
func FormatStatus(w io.Writer, v Vector) error {
	if len(v) != Count {
		return fmt.Errorf("metrics: snapshot has %d values, want %d", len(v), Count)
	}
	for i, val := range v {
		if _, err := fmt.Fprintf(w, "%s\t%.0f\n", Name(i), val); err != nil {
			return err
		}
	}
	return nil
}

// ParseStatus parses FormatStatus output (or a real SHOW STATUS dump
// restricted to the collected counters) back into a Vector. Unknown
// variables are ignored; missing ones stay zero; a malformed line is an
// error.
func ParseStatus(r io.Reader) (Vector, error) {
	index := make(map[string]int, Count)
	for i := 0; i < Count; i++ {
		index[Name(i)] = i
	}
	v := NewVector()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		name, val, ok := strings.Cut(text, "\t")
		if !ok {
			// Also accept space-separated dumps.
			name, val, ok = strings.Cut(text, " ")
			if !ok {
				return nil, fmt.Errorf("metrics: malformed status line %d: %q", line, text)
			}
		}
		i, known := index[strings.TrimSpace(name)]
		if !known {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: bad value on line %d: %w", line, err)
		}
		v[i] = f
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return v, nil
}
