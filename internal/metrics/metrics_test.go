package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestCountIs63(t *testing.T) {
	if Count != 63 {
		t.Fatalf("Count = %d, want 63 (the paper's metric set)", Count)
	}
	if len(Names()) != Count {
		t.Fatalf("Names() length %d != Count", len(Names()))
	}
}

func TestNamesUniqueAndNonEmpty(t *testing.T) {
	seen := map[string]bool{}
	for i, n := range Names() {
		if n == "" {
			t.Fatalf("metric %d has empty name", i)
		}
		if seen[n] {
			t.Fatalf("duplicate metric name %q", n)
		}
		if strings.ToLower(n) != n {
			t.Fatalf("metric name %q not lowercase", n)
		}
		seen[n] = true
	}
}

func TestNameBounds(t *testing.T) {
	if Name(BufferPoolReads) != "buffer_pool_reads" {
		t.Fatalf("Name(BufferPoolReads) = %q", Name(BufferPoolReads))
	}
	if Name(-1) != "metric_-1" || Name(Count) != "metric_63" {
		t.Fatal("out-of-range Name should degrade gracefully")
	}
}

func TestVector(t *testing.T) {
	v := NewVector()
	if len(v) != Count {
		t.Fatalf("vector length %d", len(v))
	}
	v[LockDeadlocks] = 7
	c := v.Clone()
	c[LockDeadlocks] = 9
	if v[LockDeadlocks] != 7 {
		t.Fatal("clone aliases original")
	}
}

func TestStatusRoundTrip(t *testing.T) {
	v := NewVector()
	for i := range v {
		v[i] = float64(i * 17)
	}
	var buf bytes.Buffer
	if err := FormatStatus(&buf, v); err != nil {
		t.Fatal(err)
	}
	got, err := ParseStatus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("metric %s: %v != %v", Name(i), got[i], v[i])
		}
	}
}

func TestFormatStatusWrongLength(t *testing.T) {
	if err := FormatStatus(&bytes.Buffer{}, Vector{1, 2}); err == nil {
		t.Fatal("short vector should fail")
	}
}

func TestParseStatusTolerance(t *testing.T) {
	in := "buffer_pool_reads\t42\nUnknown_variable\t7\n\nlock_deadlocks 3\n"
	v, err := ParseStatus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v[BufferPoolReads] != 42 || v[LockDeadlocks] != 3 {
		t.Fatalf("parsed %v / %v", v[BufferPoolReads], v[LockDeadlocks])
	}
}

func TestParseStatusMalformed(t *testing.T) {
	if _, err := ParseStatus(strings.NewReader("justonetoken")); err == nil {
		t.Fatal("malformed line should fail")
	}
	if _, err := ParseStatus(strings.NewReader("lock_deadlocks\tnotanumber")); err == nil {
		t.Fatal("bad value should fail")
	}
}
