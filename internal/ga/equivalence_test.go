package ga

import (
	"math"
	"reflect"
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
)

// rastrigin is a deterministic multi-modal fitness surface (negated so
// the GA maximizes toward 0 at the all-0.5 point).
func rastrigin(genes []float64) float64 {
	var s float64
	for _, g := range genes {
		x := (g - 0.5) * 10
		s += x*x - 10*math.Cos(2*math.Pi*x) + 10
	}
	return -s
}

// evolve runs a full ask → EvaluateAll → tell loop and returns every
// generation's genes plus the final best individual.
func evolve(t *testing.T, workers int) ([][][]float64, Individual) {
	t.Helper()
	defer parallel.SetWorkers(parallel.SetWorkers(workers))
	g, err := New(Config{Dim: 24, PopSize: 16, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	var gens [][][]float64
	for gen := 0; gen < 12; gen++ {
		genes := g.Ask(16)
		fit := EvaluateAll(genes, func(i int, gs []float64) float64 { return rastrigin(gs) })
		if err := g.Tell(genes, fit); err != nil {
			t.Fatal(err)
		}
		gens = append(gens, genes)
	}
	best, ok := g.Best()
	if !ok {
		t.Fatal("no best individual after evolution")
	}
	return gens, best
}

// TestEvolutionEquivalentAcrossWorkers proves a full GA evolution driven
// through the parallel fitness fan-out is bit-identical for 1 worker and
// for many workers: every generation's bred genes and the final best
// individual match exactly.
func TestEvolutionEquivalentAcrossWorkers(t *testing.T) {
	serialGens, serialBest := evolve(t, 1)
	for _, w := range []int{2, 8} {
		parGens, parBest := evolve(t, w)
		if !reflect.DeepEqual(parGens, serialGens) {
			t.Fatalf("workers %d: bred generations diverged from serial run", w)
		}
		if !reflect.DeepEqual(parBest, serialBest) {
			t.Fatalf("workers %d: best individual %+v != %+v", w, parBest, serialBest)
		}
	}
}

// TestEvaluateAllOrder checks results land at their individual's index.
func TestEvaluateAllOrder(t *testing.T) {
	defer parallel.SetWorkers(parallel.SetWorkers(8))
	genes := make([][]float64, 100)
	for i := range genes {
		genes[i] = []float64{float64(i)}
	}
	fit := EvaluateAll(genes, func(i int, gs []float64) float64 { return gs[0] * 2 })
	for i, f := range fit {
		if f != float64(i)*2 {
			t.Fatalf("fitness %d = %v, want %v", i, f, float64(i)*2)
		}
	}
}
