package ga

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hunter-cdb/hunter/internal/sim"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Fatal("zero dim should fail")
	}
	if _, err := New(Config{Dim: 3, MutationProb: 1.5}); err == nil {
		t.Fatal("mutation prob > 1 should fail")
	}
}

func TestFirstAskIsRandomInit(t *testing.T) {
	g, err := New(Config{Dim: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pop := g.Ask(10)
	if len(pop) != 10 {
		t.Fatalf("asked 10, got %d", len(pop))
	}
	for _, ind := range pop {
		if len(ind) != 5 {
			t.Fatal("wrong gene count")
		}
		for _, v := range ind {
			if v < 0 || v > 1 {
				t.Fatalf("gene %v outside [0,1]", v)
			}
		}
	}
}

func TestTellValidation(t *testing.T) {
	g, _ := New(Config{Dim: 3, Seed: 1})
	if err := g.Tell([][]float64{{1, 2, 3}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if err := g.Tell([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("gene count mismatch should fail")
	}
}

func TestBestTracking(t *testing.T) {
	g, _ := New(Config{Dim: 2, Seed: 1})
	if _, ok := g.Best(); ok {
		t.Fatal("empty population has no best")
	}
	if err := g.Tell([][]float64{{0.1, 0.1}, {0.9, 0.9}}, []float64{0.2, 0.8}); err != nil {
		t.Fatal(err)
	}
	best, ok := g.Best()
	if !ok || best.Fitness != 0.8 || best.Genes[0] != 0.9 {
		t.Fatalf("best = %+v", best)
	}
	// Mutating the returned genes must not affect internal state.
	best.Genes[0] = -1
	again, _ := g.Best()
	if again.Genes[0] != 0.9 {
		t.Fatal("Best leaked internal state")
	}
}

// TestOptimizesSphere: the GA maximizes −‖x − c‖² and should approach the
// planted optimum within a modest evaluation budget — the behaviour the
// Sample Factory relies on.
func TestOptimizesSphere(t *testing.T) {
	g, err := New(Config{Dim: 6, PopSize: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	target := []float64{0.7, 0.2, 0.5, 0.9, 0.1, 0.6}
	fit := func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - target[i]
			s -= d * d
		}
		return s
	}
	for gen := 0; gen < 15; gen++ {
		pop := g.Ask(20)
		fs := make([]float64, len(pop))
		for i, ind := range pop {
			fs[i] = fit(ind)
		}
		if err := g.Tell(pop, fs); err != nil {
			t.Fatal(err)
		}
	}
	best, _ := g.Best()
	if best.Fitness < -0.1 {
		t.Fatalf("GA best fitness %.4f after 300 evals, want > -0.1", best.Fitness)
	}
}

// TestCrossoverIsPrefixSplit: with mutation off, every child is the
// prefix of one parent glued to the suffix of another (Algorithm 1's
// hybridization).
func TestCrossoverIsPrefixSplit(t *testing.T) {
	g, err := New(Config{Dim: 4, PopSize: 4, MutationProb: 0.01, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	g.cfg.MutationProb = 0 // explicit: no mutation (zero Config value means default)
	parents := [][]float64{
		{0.1, 0.1, 0.1, 0.1},
		{0.9, 0.9, 0.9, 0.9},
	}
	if err := g.Tell(parents, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	g.started = true
	children := g.Ask(50)
	for _, c := range children {
		// Find the cut: genes must be a = 0.1… then 0.9…, or all from one
		// parent's value on each side of a single boundary.
		cut := -1
		for i := 0; i < 4; i++ {
			if c[i] != c[0] {
				cut = i
				break
			}
		}
		if cut == -1 {
			continue // both parents identical on this draw
		}
		for i := cut; i < 4; i++ {
			if c[i] != c[cut] {
				t.Fatalf("child %v is not a single prefix split", c)
			}
		}
	}
}

// TestMutationBounds: mutated genes stay in [0,1] for arbitrary seeds.
func TestMutationBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, err := New(Config{Dim: 8, PopSize: 8, MutationProb: 0.9, Seed: seed})
		if err != nil {
			return false
		}
		pop := g.Ask(8)
		fs := make([]float64, 8)
		if err := g.Tell(pop, fs); err != nil {
			return false
		}
		for _, ind := range g.Ask(16) {
			for _, v := range ind {
				if v < 0 || v > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectionFavorsFit(t *testing.T) {
	g, _ := New(Config{Dim: 1, PopSize: 2, Seed: 5})
	if err := g.Tell([][]float64{{0.1}, {0.9}}, []float64{0.0, 10.0}); err != nil {
		t.Fatal(err)
	}
	counts := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if g.selectOne() == 1 {
			counts++
		}
	}
	if frac := float64(counts) / trials; frac < 0.9 {
		t.Fatalf("fit individual selected only %.2f of the time", frac)
	}
}

func TestSelectionHandlesNegativeFitness(t *testing.T) {
	g, _ := New(Config{Dim: 1, PopSize: 2, Seed: 6})
	if err := g.Tell([][]float64{{0.1}, {0.9}}, []float64{-10, -5}); err != nil {
		t.Fatal(err)
	}
	// Must not panic or always pick one; the fitter (-5) should dominate.
	counts := 0
	for i := 0; i < 1000; i++ {
		if g.selectOne() == 1 {
			counts++
		}
	}
	if counts < 700 {
		t.Fatalf("shifted selection broken: fit picked %d/1000", counts)
	}
}

func TestPopulationTruncation(t *testing.T) {
	g, _ := New(Config{Dim: 2, PopSize: 5, Seed: 7})
	for i := 0; i < 10; i++ {
		genes := make([][]float64, 10)
		fs := make([]float64, 10)
		for j := range genes {
			genes[j] = []float64{0.5, 0.5}
			fs[j] = float64(i*10 + j)
		}
		if err := g.Tell(genes, fs); err != nil {
			t.Fatal(err)
		}
	}
	if len(g.pop) > 15 {
		t.Fatalf("population grew unbounded: %d", len(g.pop))
	}
	best, _ := g.Best()
	if best.Fitness != 99 {
		t.Fatalf("truncation lost the best individual: %v", best.Fitness)
	}
	if g.Evaluations() != 100 {
		t.Fatalf("evaluations = %d", g.Evaluations())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		g, _ := New(Config{Dim: 3, PopSize: 6, Seed: 11})
		pop := g.Ask(6)
		fs := make([]float64, 6)
		for i, ind := range pop {
			fs[i] = ind[0]
		}
		_ = g.Tell(pop, fs)
		return g.Ask(1)[0]
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("GA not deterministic under fixed seed")
		}
	}
	_ = math.Pi
	_ = sim.Clamp
}
