package ga

import (
	"bytes"
	"testing"
)

// TestSnapshotRoundTrip checkpoints a GA mid-evolution and verifies the
// restored sampler breeds exactly the same future generations.
func TestSnapshotRoundTrip(t *testing.T) {
	g, err := New(Config{Dim: 12, PopSize: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	fit := func(genes [][]float64) []float64 {
		out := make([]float64, len(genes))
		for i, x := range genes {
			for _, v := range x {
				out[i] -= (v - 0.3) * (v - 0.3)
			}
		}
		return out
	}
	for gen := 0; gen < 3; gen++ {
		asked := g.Ask(10)
		if err := g.Tell(asked, fit(asked)); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := g.SnapshotTo(&buf); err != nil {
		t.Fatalf("SnapshotTo: %v", err)
	}
	restored, err := New(Config{Dim: 1, Seed: 999}) // overwritten by restore
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("RestoreFrom: %v", err)
	}
	if restored.Evaluations() != g.Evaluations() {
		t.Fatalf("evals %d != %d", restored.Evaluations(), g.Evaluations())
	}

	for gen := 0; gen < 4; gen++ {
		a, b := g.Ask(8), restored.Ask(8)
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("gen %d individual %d gene %d: %v != %v", gen, i, j, a[i][j], b[i][j])
				}
			}
		}
		fa := fit(a)
		if err := g.Tell(a, fa); err != nil {
			t.Fatal(err)
		}
		if err := restored.Tell(b, fa); err != nil {
			t.Fatal(err)
		}
	}
	ba, oka := g.Best()
	bb, okb := restored.Best()
	if oka != okb || ba.Fitness != bb.Fitness {
		t.Fatalf("best diverged: %v/%v vs %v/%v", ba.Fitness, oka, bb.Fitness, okb)
	}
}

// TestRestoreRejectsBad checks malformed snapshots are refused.
func TestRestoreRejectsBad(t *testing.T) {
	g, err := New(Config{Dim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RestoreFrom(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// A snapshot whose individuals disagree with its dimension.
	donor, _ := New(Config{Dim: 4, Seed: 2})
	asked := donor.Ask(4)
	if err := donor.Tell(asked, make([]float64, len(asked))); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := donor.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Restoring a valid snapshot into a GA of different dim must still work
	// (snapshot config wins) — sanity-check the positive path too.
	other, _ := New(Config{Dim: 9, Seed: 3})
	if err := other.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("cross-dim restore: %v", err)
	}
	if other.cfg.Dim != 4 {
		t.Fatalf("restored dim %d, want 4", other.cfg.Dim)
	}
}
