package ga

import (
	"testing"

	"github.com/hunter-cdb/hunter/internal/sim"
)

// BenchmarkAskTell measures one GA generation (breed + report) at the
// session's real shape: 65 knobs, population 20. The flat gene blocks keep
// this at a handful of allocations per generation.
func BenchmarkAskTell(b *testing.B) {
	g, err := New(Config{Dim: 65, PopSize: 20, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	r := sim.NewRNG(1)
	fitness := make([]float64, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		genes := g.Ask(20)
		for j := range fitness {
			fitness[j] = r.Float64()
		}
		if err := g.Tell(genes, fitness); err != nil {
			b.Fatal(err)
		}
	}
}
