package ga

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/hunter-cdb/hunter/internal/sim"
)

// snapshotState is the GA's durable state: hyper-parameters, the live
// population, the ask/tell counters, and the breeding RNG mid-stream.
type snapshotState struct {
	Cfg     Config
	RNG     sim.RNGState
	Pop     []Individual
	Asked   int
	Evals   int
	Started bool
}

// SnapshotTo serializes the sampler (checkpoint.Snapshotter). A restored
// GA breeds exactly the same individuals the original would have.
func (g *GA) SnapshotTo(w io.Writer) error {
	st := snapshotState{
		Cfg:     g.cfg,
		RNG:     g.rng.State(),
		Pop:     make([]Individual, len(g.pop)),
		Asked:   g.asked,
		Evals:   g.evals,
		Started: g.started,
	}
	for i, ind := range g.pop {
		st.Pop[i] = Individual{Genes: append([]float64(nil), ind.Genes...), Fitness: ind.Fitness}
	}
	return gob.NewEncoder(w).Encode(st)
}

// RestoreFrom reinstates a state written by SnapshotTo
// (checkpoint.Restorer). The GA is unchanged on error.
func (g *GA) RestoreFrom(r io.Reader) error {
	var st snapshotState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	if st.Cfg.Dim <= 0 {
		return fmt.Errorf("ga: snapshot has non-positive dimension %d", st.Cfg.Dim)
	}
	for i, ind := range st.Pop {
		if len(ind.Genes) != st.Cfg.Dim {
			return fmt.Errorf("ga: snapshot individual %d has %d genes, want %d", i, len(ind.Genes), st.Cfg.Dim)
		}
	}
	rng := sim.NewRNG(0)
	if err := rng.SetState(st.RNG); err != nil {
		return err
	}
	g.cfg = st.Cfg
	g.rng = rng
	g.pop = st.Pop
	g.asked = st.Asked
	g.evals = st.Evals
	g.started = st.Started
	return nil
}
