package ga

import (
	"testing"

	"github.com/hunter-cdb/hunter/internal/sim"
)

// Ask and Tell back each generation with one flat gene block instead of a
// slice per individual. Before the arena a PopSize-20 Ask cost 21 allocs
// (1 + one per child) and Tell 20 clone allocs; now Ask costs 2 (header
// slice + block) and Tell 1 steady-state (block; occasionally one more
// when the population slice grows).
func TestAskTellAllocs(t *testing.T) {
	g, err := New(Config{Dim: 65, PopSize: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRNG(1)
	fitness := make([]float64, 20)
	// Warm up: fill the population past its 3n truncation limit so Tell's
	// append no longer grows the backing array.
	for i := 0; i < 6; i++ {
		genes := g.Ask(20)
		for j := range fitness {
			fitness[j] = r.Float64()
		}
		if err := g.Tell(genes, fitness); err != nil {
			t.Fatal(err)
		}
	}
	var genes [][]float64
	ask := testing.AllocsPerRun(10, func() { genes = g.Ask(20) })
	if ask > 3 {
		t.Errorf("Ask(20) = %v allocs, want <= 3 (was 21 with per-child slices)", ask)
	}
	tell := testing.AllocsPerRun(10, func() {
		for j := range fitness {
			fitness[j] = r.Float64()
		}
		if err := g.Tell(genes, fitness); err != nil {
			t.Fatal(err)
		}
	})
	if tell > 3 {
		t.Errorf("Tell(20) = %v allocs, want <= 3 (was 20 with per-clone slices)", tell)
	}
}
