// Package ga implements the genetic algorithm of the Sample Factory
// (§3.1, Algorithm 1). Individuals are configurations encoded as
// normalized points in [0,1]^m; fitness is the Eq. 1 reward measured by
// stress-testing. The GA runs in an ask/tell loop so the Controller can
// evaluate each generation's individuals on (possibly many parallel)
// cloned instances before the next generation is bred.
package ga

import (
	"fmt"
	"math"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// Individual is one evaluated configuration.
type Individual struct {
	Genes   []float64
	Fitness float64
}

// Config sets the GA hyper-parameters.
type Config struct {
	// Dim is the number of genes (tunable knobs).
	Dim int
	// PopSize is n in Algorithm 1 — individuals bred per generation.
	PopSize int
	// MutationProb is β — per-gene probability of mutation.
	MutationProb float64
	// MutationScale is the Gaussian perturbation width of a mutated gene;
	// with probability ½ a mutated gene is resampled uniformly instead,
	// which keeps global exploration alive.
	MutationScale float64
	Seed          int64
}

func (c Config) withDefaults() Config {
	if c.PopSize == 0 {
		c.PopSize = 20
	}
	if c.MutationProb == 0 {
		// β: with ~65 genes this mutates 2–3 knobs per child, enough to
		// explore without destroying the parents' structure (the reason
		// GA samples concentrate near the best, Figure 5).
		c.MutationProb = 0.04
	}
	if c.MutationScale == 0 {
		c.MutationScale = 0.15
	}
	return c
}

// GA is the genetic sampler.
type GA struct {
	cfg     Config
	rng     *sim.RNG
	pop     []Individual
	asked   int
	evals   int
	started bool
}

// New creates a GA over dim-dimensional individuals.
func New(cfg Config) (*GA, error) {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("ga: dimension must be positive")
	}
	if cfg.MutationProb < 0 || cfg.MutationProb > 1 {
		return nil, fmt.Errorf("ga: mutation probability %g outside [0,1]", cfg.MutationProb)
	}
	return &GA{cfg: cfg, rng: sim.NewRNG(cfg.Seed)}, nil
}

// Ask proposes n individuals to evaluate. The first generation is random
// (Algorithm 1's Initialization); later generations are bred by
// fitness-proportional selection, prefix crossover and mutation.
func (g *GA) Ask(n int) [][]float64 {
	if n <= 0 {
		n = g.cfg.PopSize
	}
	out := make([][]float64, n)
	// One flat block backs the whole generation: two allocations per Ask
	// instead of one per child. Carved slices are capacity-capped and the
	// RNG draw order is identical to the per-child allocation it replaces.
	block := make([]float64, n*g.cfg.Dim)
	carve := func() []float64 {
		s := block[:g.cfg.Dim:g.cfg.Dim]
		block = block[g.cfg.Dim:]
		return s
	}
	if !g.started || len(g.pop) < 2 {
		for i := range out {
			out[i] = carve()
			g.fillRandom(out[i])
		}
		g.started = true
		g.asked += n
		return out
	}
	for i := range out {
		child := carve()
		a := g.selectOne()
		b := g.selectOne()
		g.crossoverInto(child, g.pop[a].Genes, g.pop[b].Genes)
		g.mutate(child)
		out[i] = child
	}
	g.asked += n
	return out
}

// EvaluateAll computes fitness for every individual concurrently, one
// fan-out task per individual, and returns the fitnesses in input order.
// fn must be a pure function of (i, genes); results are written by index,
// so the output — and any Tell that consumes it — is bit-identical for
// any worker count. Sessions that stress-test on cloned instances keep
// using their own wave scheduling; this helper is for surrogate or
// simulated fitness functions, where the per-individual evaluation is
// CPU-bound model work.
func EvaluateAll(genes [][]float64, fn func(i int, genes []float64) float64) []float64 {
	out := make([]float64, len(genes))
	parallel.For(len(genes), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i, genes[i])
		}
	})
	return out
}

// Tell reports evaluated fitnesses. Per Algorithm 1 the best individual is
// retained (elitism) and the new generation joins the population; the
// population is then truncated to the fittest 3n to bound selection cost.
func (g *GA) Tell(genes [][]float64, fitness []float64) error {
	if len(genes) != len(fitness) {
		return fmt.Errorf("ga: %d genes vs %d fitnesses", len(genes), len(fitness))
	}
	// One flat block backs every retained clone. Carving and validation
	// stay inside the loop so an invalid individual still leaves the
	// previously appended ones in the population, exactly as before.
	block := make([]float64, len(genes)*g.cfg.Dim)
	for i := range genes {
		if len(genes[i]) != g.cfg.Dim {
			return fmt.Errorf("ga: individual %d has %d genes, want %d", i, len(genes[i]), g.cfg.Dim)
		}
		clone := block[:g.cfg.Dim:g.cfg.Dim]
		block = block[g.cfg.Dim:]
		copy(clone, genes[i])
		g.pop = append(g.pop, Individual{Genes: clone, Fitness: fitness[i]})
		g.evals++
	}
	// Truncate to the fittest individuals, always keeping K_BEST first.
	limit := 3 * g.cfg.PopSize
	if len(g.pop) > limit {
		g.sortByFitness()
		g.pop = g.pop[:limit]
	}
	return nil
}

func (g *GA) sortByFitness() {
	// Insertion sort: populations are small and mostly ordered.
	for i := 1; i < len(g.pop); i++ {
		for j := i; j > 0 && g.pop[j].Fitness > g.pop[j-1].Fitness; j-- {
			g.pop[j], g.pop[j-1] = g.pop[j-1], g.pop[j]
		}
	}
}

// Best returns the fittest individual seen so far.
func (g *GA) Best() (Individual, bool) {
	if len(g.pop) == 0 {
		return Individual{}, false
	}
	best := 0
	for i := range g.pop {
		if g.pop[i].Fitness > g.pop[best].Fitness {
			best = i
		}
	}
	ind := g.pop[best]
	return Individual{Genes: append([]float64(nil), ind.Genes...), Fitness: ind.Fitness}, true
}

// Evaluations returns the number of individuals told so far.
func (g *GA) Evaluations() int { return g.evals }

// fillRandom initializes x with uniform genes.
func (g *GA) fillRandom(x []float64) {
	for i := range x {
		x[i] = g.rng.Float64()
	}
}

// FailureFitness is the fitness floor assigned to configurations that
// could not boot; such individuals never breed while any viable individual
// exists (survival of the fittest, literally).
const FailureFitness = -10

// selectOne draws an index with probability proportional to fitness
// (Eq. 2), shifted so that negative fitnesses still select. Failed
// individuals are excluded unless the whole population failed.
func (g *GA) selectOne() int {
	min := math.Inf(1)
	viable := 0
	for _, ind := range g.pop {
		if ind.Fitness > FailureFitness {
			viable++
			if ind.Fitness < min {
				min = ind.Fitness
			}
		}
	}
	if viable == 0 {
		return g.rng.Intn(len(g.pop))
	}
	var total float64
	for _, ind := range g.pop {
		if ind.Fitness > FailureFitness {
			total += ind.Fitness - min + 1e-6
		}
	}
	target := g.rng.Float64() * total
	var acc float64
	for i, ind := range g.pop {
		if ind.Fitness <= FailureFitness {
			continue
		}
		acc += ind.Fitness - min + 1e-6
		if target < acc {
			return i
		}
	}
	return len(g.pop) - 1
}

// crossoverInto implements the paper's prefix hybridization: the child
// takes the first a genes from K_i and the remaining m−a from K_j,
// a ∈ (0, m), written into the caller-provided slice.
func (g *GA) crossoverInto(child, a, b []float64) {
	cut := 1 + g.rng.Intn(g.cfg.Dim-1) // a ∈ [1, m-1]
	copy(child[:cut], a[:cut])
	copy(child[cut:], b[cut:])
}

// mutate perturbs each gene with probability β.
func (g *GA) mutate(x []float64) {
	for i := range x {
		if g.rng.Float64() >= g.cfg.MutationProb {
			continue
		}
		if g.rng.Float64() < 0.5 {
			x[i] = g.rng.Float64()
		} else {
			x[i] = sim.Clamp(x[i]+g.rng.Gaussian(0, g.cfg.MutationScale), 0, 1)
		}
	}
}
