// Package chaos is the deterministic fault injector for the simulated
// cloud: a seeded fault plan that fires at defined hook points — instance
// boot failure at provisioning, transient control-plane errors on
// Clone/Deploy, instance crash mid-stress-test, slow-I/O stragglers, and
// hung actors — plus the self-healing policy knobs (bounded retry with
// exponential backoff, per-actor deadlines, quarantine thresholds) the
// tuning loop uses to survive them.
//
// Determinism contract: every fault decision is a pure function of
// (engine seed, hook site, caller-supplied sequence numbers). The engine
// holds no mutable roll state, so decisions are identical regardless of
// goroutine scheduling or worker count, and a checkpointed session needs
// to persist only the seed, the profile and the callers' sequence
// counters to replay the exact same fault plan after a resume. All fault
// delays are expressed in virtual time; the injector never sleeps.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Profile describes a fault environment: per-hook-point probabilities and
// the self-healing policy the tuning loop should apply under it.
type Profile struct {
	// Name identifies the profile ("mild", "flaky", "catastrophic"; "off"
	// or empty disables injection).
	Name string

	// BootFailProb is the chance an instance fails to boot at
	// provisioning (Provider.CreateInstance / Clone).
	BootFailProb float64
	// TransientCloneProb is the chance Provider.Clone hits a transient
	// control-plane error (retryable).
	TransientCloneProb float64
	// TransientDeployProb is the chance Instance.Deploy hits a transient
	// control-plane error (retryable).
	TransientDeployProb float64
	// CrashProb is the chance an actor's instance crashes partway through
	// a stress test (the clone is lost and must be replaced).
	CrashProb float64
	// SlowIOProb is the chance an actor's step suffers degraded I/O,
	// multiplying its virtual duration by a factor in [SlowIOMin, SlowIOMax).
	SlowIOProb           float64
	SlowIOMin, SlowIOMax float64
	// HangProb is the chance an actor hangs: its step exceeds the wave
	// deadline and is abandoned.
	HangProb float64

	// MaxRetries bounds the retry loop around transient faults.
	MaxRetries int
	// BackoffBase is the first retry delay; each further attempt doubles
	// it, capped at BackoffCap. Delays are charged to the virtual clock.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// DeadlineFactor sets the per-actor wave deadline as a multiple of the
	// nominal step cost (deploy + restart + execution + collection).
	DeadlineFactor float64
	// QuarantineAfter is the number of faults (strikes) after which an
	// actor slot is quarantined and the fleet shrinks.
	QuarantineAfter int
}

// Enabled reports whether the profile injects any faults at all.
func (p Profile) Enabled() bool {
	return p.BootFailProb > 0 || p.TransientCloneProb > 0 || p.TransientDeployProb > 0 ||
		p.CrashProb > 0 || p.SlowIOProb > 0 || p.HangProb > 0
}

// withDefaults fills unset policy fields with safe defaults.
func (p Profile) withDefaults() Profile {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 3
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 10 * time.Second
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 5 * time.Minute
	}
	if p.DeadlineFactor <= 1 {
		p.DeadlineFactor = 4
	}
	if p.QuarantineAfter <= 0 {
		p.QuarantineAfter = 3
	}
	if p.SlowIOMin < 1 {
		p.SlowIOMin = 1.5
	}
	if p.SlowIOMax <= p.SlowIOMin {
		p.SlowIOMax = p.SlowIOMin + 1
	}
	return p
}

// Off is the empty profile: no injection.
func Off() Profile { return Profile{Name: "off"} }

// Mild models a healthy cloud with the occasional blip: rare boot
// failures and transients, very rare crashes, mild stragglers.
func Mild() Profile {
	return Profile{
		Name:                "mild",
		BootFailProb:        0.02,
		TransientCloneProb:  0.05,
		TransientDeployProb: 0.02,
		CrashProb:           0.01,
		SlowIOProb:          0.06,
		SlowIOMin:           1.3,
		SlowIOMax:           2.2,
		HangProb:            0.005,
	}.withDefaults()
}

// Flaky models an unstable fleet: frequent transients and stragglers,
// regular crashes — the environment the self-healing loop is built for.
func Flaky() Profile {
	return Profile{
		Name:                "flaky",
		BootFailProb:        0.05,
		TransientCloneProb:  0.12,
		TransientDeployProb: 0.08,
		CrashProb:           0.04,
		SlowIOProb:          0.15,
		SlowIOMin:           1.5,
		SlowIOMax:           2.8,
		HangProb:            0.02,
	}.withDefaults()
}

// Catastrophic crashes every stress test: replacements crash too, actors
// strike out fast, and the fleet collapses — the total-fleet-loss path.
func Catastrophic() Profile {
	p := Profile{
		Name:      "catastrophic",
		CrashProb: 1,
	}.withDefaults()
	p.QuarantineAfter = 2
	return p
}

// Profiles lists the built-in profile names.
func Profiles() []string {
	out := []string{"off", "mild", "flaky", "catastrophic"}
	sort.Strings(out)
	return out
}

// ProfileByName resolves a built-in profile.
func ProfileByName(name string) (Profile, error) {
	switch strings.ToLower(name) {
	case "", "off", "none":
		return Off(), nil
	case "mild":
		return Mild(), nil
	case "flaky":
		return Flaky(), nil
	case "catastrophic":
		return Catastrophic(), nil
	}
	return Profile{}, fmt.Errorf("chaos: unknown profile %q (have %s)", name, strings.Join(Profiles(), ", "))
}

// Plan arms fault injection for one tuning session: a user seed (mixed
// into a fork of the session RNG, so -chaos-seed varies the fault plan
// without touching the tuning trajectory's seed) and a profile.
type Plan struct {
	Seed    int64
	Profile Profile
}

// Enabled reports whether the plan injects faults.
func (p *Plan) Enabled() bool { return p != nil && p.Profile.Enabled() }

// Counts tallies injected faults by kind.
type Counts struct {
	BootFailures int64
	Transients   int64
	Crashes      int64
	SlowIO       int64
	Hangs        int64
}

// Total is the sum over every kind.
func (c Counts) Total() int64 {
	return c.BootFailures + c.Transients + c.Crashes + c.SlowIO + c.Hangs
}

// Engine draws fault decisions for one session. Decision methods are pure
// functions of (seed, site, sequence numbers); the only mutable state is
// the injection tally, which is order-independent and safe for concurrent
// actors. A nil *Engine is the disabled injector: every decision is "no
// fault".
type Engine struct {
	seed int64
	p    Profile

	nBoot, nTransient, nCrash, nSlow, nHang atomic.Int64
}

// NewEngine builds an injector from a seed and a profile. The caller
// derives the seed by forking the session RNG and mixing the plan seed in,
// which keeps fault plans reproducible per (session seed, chaos seed).
func NewEngine(seed int64, p Profile) *Engine {
	return &Engine{seed: seed, p: p.withDefaults()}
}

// Seed returns the engine seed (persisted by checkpoints).
func (e *Engine) Seed() int64 { return e.seed }

// Profile returns the armed profile.
func (e *Engine) Profile() Profile { return e.p }

// Counts snapshots the injection tally.
func (e *Engine) Counts() Counts {
	if e == nil {
		return Counts{}
	}
	return Counts{
		BootFailures: e.nBoot.Load(),
		Transients:   e.nTransient.Load(),
		Crashes:      e.nCrash.Load(),
		SlowIO:       e.nSlow.Load(),
		Hangs:        e.nHang.Load(),
	}
}

// SetCounts reinstates a tally captured by Counts (checkpoint resume).
func (e *Engine) SetCounts(c Counts) {
	if e == nil {
		return
	}
	e.nBoot.Store(c.BootFailures)
	e.nTransient.Store(c.Transients)
	e.nCrash.Store(c.Crashes)
	e.nSlow.Store(c.SlowIO)
	e.nHang.Store(c.Hangs)
}

// Hook sites. Distinct constants keep every decision stream independent.
const (
	siteBootFail uint64 = 1 + iota
	siteTransientClone
	siteTransientDeploy
	siteCrash
	siteCrashFraction
	siteSlowIO
	siteSlowFactor
	siteHang
)

// splitmix64 is the SplitMix64 finalizer — a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 returns a uniform sample in [0,1) keyed by (seed, site, a, b).
func (e *Engine) u01(site uint64, a, b int64) float64 {
	h := splitmix64(uint64(e.seed) ^ site*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(a)*0xff51afd7ed558ccd)
	h = splitmix64(h ^ uint64(b)*0xc4ceb9fe1a85ec53)
	return float64(h>>11) / (1 << 53)
}

// BootFailure decides whether the seq-th instance provisioning fails to
// boot.
func (e *Engine) BootFailure(seq int64) bool {
	if e == nil || e.p.BootFailProb <= 0 {
		return false
	}
	if e.u01(siteBootFail, seq, 0) < e.p.BootFailProb {
		e.nBoot.Add(1)
		return true
	}
	return false
}

// TransientClone decides whether the seq-th Clone call hits a transient
// control-plane error.
func (e *Engine) TransientClone(seq int64) bool {
	if e == nil || e.p.TransientCloneProb <= 0 {
		return false
	}
	if e.u01(siteTransientClone, seq, 0) < e.p.TransientCloneProb {
		e.nTransient.Add(1)
		return true
	}
	return false
}

// TransientDeploy decides whether deploy number seq on instance uid hits
// a transient control-plane error.
func (e *Engine) TransientDeploy(uid, seq int64) bool {
	if e == nil || e.p.TransientDeployProb <= 0 {
		return false
	}
	if e.u01(siteTransientDeploy, uid, seq) < e.p.TransientDeployProb {
		e.nTransient.Add(1)
		return true
	}
	return false
}

// Crash decides whether actor's step seq crashes its instance mid-run.
func (e *Engine) Crash(actor, seq int64) bool {
	if e == nil || e.p.CrashProb <= 0 {
		return false
	}
	if e.u01(siteCrash, actor, seq) < e.p.CrashProb {
		e.nCrash.Add(1)
		return true
	}
	return false
}

// CrashFraction returns how far through the execution window the crash
// struck, in [0.05, 0.95) — the portion of the window the wave is still
// charged for.
func (e *Engine) CrashFraction(actor, seq int64) float64 {
	if e == nil {
		return 0
	}
	return 0.05 + 0.9*e.u01(siteCrashFraction, actor, seq)
}

// SlowIO decides whether actor's step seq is a straggler, and by what
// factor its virtual duration stretches.
func (e *Engine) SlowIO(actor, seq int64) (factor float64, ok bool) {
	if e == nil || e.p.SlowIOProb <= 0 {
		return 1, false
	}
	if e.u01(siteSlowIO, actor, seq) >= e.p.SlowIOProb {
		return 1, false
	}
	e.nSlow.Add(1)
	f := e.p.SlowIOMin + (e.p.SlowIOMax-e.p.SlowIOMin)*e.u01(siteSlowFactor, actor, seq)
	return f, true
}

// Hang decides whether actor's step seq hangs past the wave deadline.
func (e *Engine) Hang(actor, seq int64) bool {
	if e == nil || e.p.HangProb <= 0 {
		return false
	}
	if e.u01(siteHang, actor, seq) < e.p.HangProb {
		e.nHang.Add(1)
		return true
	}
	return false
}

// HangFactor is the took multiplier a hung actor reports — far past any
// deadline, so the supervisor is guaranteed to abandon it.
func (e *Engine) HangFactor() float64 {
	if e == nil {
		return 1
	}
	return 8 * e.p.DeadlineFactor
}

// Backoff returns the bounded-exponential retry delay for the given
// attempt (0-based), charged to the virtual clock by the caller.
func (e *Engine) Backoff(attempt int) time.Duration {
	if e == nil {
		return 0
	}
	d := e.p.BackoffBase
	for i := 0; i < attempt && d < e.p.BackoffCap; i++ {
		d *= 2
	}
	if d > e.p.BackoffCap {
		d = e.p.BackoffCap
	}
	return d
}

// MaxRetries returns the transient-fault retry bound.
func (e *Engine) MaxRetries() int {
	if e == nil {
		return 0
	}
	return e.p.MaxRetries
}

// DeadlineFactor returns the per-actor deadline multiple.
func (e *Engine) DeadlineFactor() float64 {
	if e == nil {
		return 0
	}
	return e.p.DeadlineFactor
}

// QuarantineAfter returns the strike threshold for quarantine.
func (e *Engine) QuarantineAfter() int {
	if e == nil {
		return 0
	}
	return e.p.QuarantineAfter
}
