package chaos

import (
	"testing"
	"time"
)

// TestDecisionsDeterministic is the core contract: every decision is a
// pure function of (seed, site, sequence numbers), so two engines with the
// same seed and profile agree on every roll, in any call order.
func TestDecisionsDeterministic(t *testing.T) {
	a := NewEngine(42, Flaky())
	b := NewEngine(42, Flaky())
	// Roll b in reverse order: order must not matter.
	type roll struct{ actor, seq int64 }
	var rolls []roll
	for actor := int64(0); actor < 5; actor++ {
		for seq := int64(0); seq < 40; seq++ {
			rolls = append(rolls, roll{actor, seq})
		}
	}
	got := make(map[roll][5]any)
	for _, r := range rolls {
		f, ok := a.SlowIO(r.actor, r.seq)
		got[r] = [5]any{a.Crash(r.actor, r.seq), f, ok, a.Hang(r.actor, r.seq), a.TransientDeploy(r.actor, r.seq)}
	}
	for i := len(rolls) - 1; i >= 0; i-- {
		r := rolls[i]
		f, ok := b.SlowIO(r.actor, r.seq)
		want := [5]any{b.Crash(r.actor, r.seq), f, ok, b.Hang(r.actor, r.seq), b.TransientDeploy(r.actor, r.seq)}
		if got[r] != want {
			t.Fatalf("roll %+v differs between engines: %v vs %v", r, got[r], want)
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("tallies diverge: %+v vs %+v", a.Counts(), b.Counts())
	}
	if a.Counts().Total() == 0 {
		t.Fatal("flaky profile injected nothing over 200 rolls")
	}
}

// TestSeedVariesDecisions: a different engine seed must produce a
// different fault plan.
func TestSeedVariesDecisions(t *testing.T) {
	a, b := NewEngine(1, Flaky()), NewEngine(2, Flaky())
	same := true
	for seq := int64(0); seq < 200; seq++ {
		if a.Crash(0, seq) != b.Crash(0, seq) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical crash plans over 200 steps")
	}
}

// TestNilEngineIsDisabled: a nil *Engine is the disabled injector — every
// decision is "no fault" and every policy accessor is the zero policy.
func TestNilEngineIsDisabled(t *testing.T) {
	var e *Engine
	if e.BootFailure(0) || e.TransientClone(0) || e.TransientDeploy(0, 0) ||
		e.Crash(0, 0) || e.Hang(0, 0) {
		t.Fatal("nil engine injected a fault")
	}
	if f, ok := e.SlowIO(0, 0); ok || f != 1 {
		t.Fatalf("nil engine slow-io = (%v, %v)", f, ok)
	}
	if e.MaxRetries() != 0 || e.Backoff(3) != 0 || e.QuarantineAfter() != 0 ||
		e.DeadlineFactor() != 0 || e.HangFactor() != 1 || e.CrashFraction(0, 0) != 0 {
		t.Fatal("nil engine policy accessors not zero")
	}
	if e.Counts().Total() != 0 {
		t.Fatal("nil engine tallied faults")
	}
	e.SetCounts(Counts{Crashes: 3}) // must not panic
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"off", "mild", "flaky", "catastrophic"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("ProfileByName(%q).Name = %q", name, p.Name)
		}
		if name == "off" && p.Enabled() {
			t.Fatal("off profile enabled")
		}
		if name != "off" && !p.Enabled() {
			t.Fatalf("%s profile disabled", name)
		}
	}
	if p, err := ProfileByName(""); err != nil || p.Enabled() {
		t.Fatalf("empty name should resolve to off: %v %v", p, err)
	}
	if _, err := ProfileByName("hurricane"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// TestBackoffBoundedDoubling: the retry delay doubles per attempt and is
// capped.
func TestBackoffBoundedDoubling(t *testing.T) {
	e := NewEngine(1, Profile{
		Name: "t", CrashProb: 1,
		BackoffBase: 10 * time.Second, BackoffCap: 35 * time.Second,
	})
	want := []time.Duration{10 * time.Second, 20 * time.Second, 35 * time.Second, 35 * time.Second}
	for i, w := range want {
		if got := e.Backoff(i); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

// TestDefaultsFilled: an enabled profile without policy fields gets the
// safe defaults.
func TestDefaultsFilled(t *testing.T) {
	e := NewEngine(1, Profile{Name: "bare", CrashProb: 0.5})
	p := e.Profile()
	if p.MaxRetries <= 0 || p.BackoffBase <= 0 || p.BackoffCap < p.BackoffBase ||
		p.DeadlineFactor <= 1 || p.QuarantineAfter <= 0 {
		t.Fatalf("defaults not filled: %+v", p)
	}
	if e.HangFactor() <= p.DeadlineFactor {
		t.Fatalf("hang factor %v must exceed the deadline factor %v", e.HangFactor(), p.DeadlineFactor)
	}
}

// TestSlowIOFactorInRange and crash fractions stay inside their documented
// intervals.
func TestFactorRanges(t *testing.T) {
	e := NewEngine(9, Flaky())
	p := e.Profile()
	hits := 0
	for seq := int64(0); seq < 500; seq++ {
		if f, ok := e.SlowIO(1, seq); ok {
			hits++
			if f < p.SlowIOMin || f >= p.SlowIOMax {
				t.Fatalf("slow-io factor %v outside [%v, %v)", f, p.SlowIOMin, p.SlowIOMax)
			}
		}
		if fr := e.CrashFraction(1, seq); fr < 0.05 || fr >= 0.95 {
			t.Fatalf("crash fraction %v outside [0.05, 0.95)", fr)
		}
	}
	if hits == 0 {
		t.Fatal("no slow-io faults in 500 rolls under the flaky profile")
	}
}

// TestCountsRoundTrip: SetCounts reinstates a checkpointed tally exactly.
func TestCountsRoundTrip(t *testing.T) {
	e := NewEngine(3, Flaky())
	for seq := int64(0); seq < 100; seq++ {
		e.Crash(0, seq)
		e.BootFailure(seq)
		e.TransientClone(seq)
	}
	c := e.Counts()
	if c.Total() == 0 {
		t.Fatal("nothing tallied")
	}
	f := NewEngine(3, Flaky())
	f.SetCounts(c)
	if f.Counts() != c {
		t.Fatalf("round trip %+v != %+v", f.Counts(), c)
	}
}

// TestPlanEnabled: nil plans and off profiles are disabled.
func TestPlanEnabled(t *testing.T) {
	var p *Plan
	if p.Enabled() {
		t.Fatal("nil plan enabled")
	}
	if (&Plan{Seed: 1, Profile: Off()}).Enabled() {
		t.Fatal("off plan enabled")
	}
	if !(&Plan{Seed: 1, Profile: Mild()}).Enabled() {
		t.Fatal("mild plan disabled")
	}
}
