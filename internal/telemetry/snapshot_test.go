package telemetry

import (
	"bytes"
	"testing"
	"time"
)

// TestRecorderSnapshotRoundTrip verifies spans, sessions, counters and
// gauges all survive a snapshot/restore, and that an adopted session keeps
// appending to its restored accounting.
func TestRecorderSnapshotRoundTrip(t *testing.T) {
	r := New()
	var vnow time.Duration
	st := r.Session("mysql/tpcc", func() time.Duration { return vnow })
	vnow = 5 * time.Minute
	st.Charge("clone_fleet", 3*time.Minute)
	sp := st.Start("ga_phase")
	vnow = 20 * time.Minute
	sp.End(A("samples", 12))
	st.Event("best_improved", A("fitness", 1.25))
	r.Counter("tuner.stress_waves").Add(4)
	r.Gauge("tuner.best_fitness").Set(1.25)

	var buf bytes.Buffer
	if err := r.SnapshotTo(&buf); err != nil {
		t.Fatalf("SnapshotTo: %v", err)
	}

	q := New()
	if err := q.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("RestoreFrom: %v", err)
	}
	if q.SpanCount() != r.SpanCount() {
		t.Fatalf("spans %d != %d", q.SpanCount(), r.SpanCount())
	}
	if got := q.Counter("tuner.stress_waves").Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if got := q.Gauge("tuner.best_fitness").Value(); got != 1.25 {
		t.Fatalf("gauge = %v, want 1.25", got)
	}

	// Adopt the restored session and keep charging: the accounting must
	// continue from the restored total, and the virtual trace exports of
	// the two recorders must be byte-identical when driven identically.
	var vnow2 = vnow
	ad := q.AdoptSession(st.ID(), func() time.Duration { return vnow2 })
	if ad == nil {
		t.Fatal("AdoptSession returned nil for a live id")
	}
	if ad.Accounted() != st.Accounted() {
		t.Fatalf("accounted %v != %v", ad.Accounted(), st.Accounted())
	}
	vnow, vnow2 = 30*time.Minute, 30*time.Minute
	st.Charge("stress_wave", 10*time.Minute)
	ad.Charge("stress_wave", 10*time.Minute)

	var ta, tb bytes.Buffer
	if err := r.WriteTraceVirtual(&ta); err != nil {
		t.Fatal(err)
	}
	if err := q.WriteTraceVirtual(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Fatalf("virtual traces differ:\n--- original ---\n%s\n--- restored ---\n%s", ta.String(), tb.String())
	}

	if q.AdoptSession(99, nil) != nil {
		t.Fatal("AdoptSession invented a session")
	}
}

// TestRecorderRestoreRejectsBad checks garbage is refused.
func TestRecorderRestoreRejectsBad(t *testing.T) {
	r := New()
	r.Counter("x").Add(1)
	if err := r.RestoreFrom(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if r.Counter("x").Value() != 1 {
		t.Fatal("failed restore mutated counters")
	}
}

// TestNilRecorderSnapshot keeps the nil-receiver contract.
func TestNilRecorderSnapshot(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.SnapshotTo(&buf); err != nil {
		t.Fatalf("nil SnapshotTo: %v", err)
	}
	if r.AdoptSession(1, nil) != nil {
		t.Fatal("nil AdoptSession should return nil")
	}
}
