package telemetry

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"
)

// spanState is one recorded span in portable form. Wall-clock fields are
// deliberately dropped: they describe the machine the run happened on, not
// the run itself, and restoring them would fake latencies. The virtual
// fields are the determinism contract and survive exactly.
type spanState struct {
	SID          int
	Cat, Name    string
	VStart, VDur time.Duration
	Attrs        []Attr
}

// sessionState is one SessionTrace's durable accounting.
type sessionState struct {
	ID        int
	Name      string
	Accounted time.Duration
	BySt      map[string]time.Duration
	SpanN     int
	Attrs     []Attr
	Finished  bool
}

// recorderState is the recorder's full durable state. Hists is absent in
// checkpoints written before histograms existed; gob leaves the field nil
// and restore simply registers nothing.
type recorderState struct {
	Spans    []spanState
	Sessions []sessionState
	Counters map[string]int64
	Gauges   map[string]float64
	Hists    map[string]histogramState
}

// SnapshotTo serializes every span, session, counter and gauge recorded so
// far (checkpoint.Snapshotter), so a resumed run's trace continues the
// original's instead of starting empty.
func (r *Recorder) SnapshotTo(w io.Writer) error {
	if r == nil {
		return gob.NewEncoder(w).Encode(recorderState{})
	}
	var st recorderState
	r.mu.Lock()
	st.Spans = make([]spanState, len(r.spans))
	for i, ev := range r.spans {
		st.Spans[i] = spanState{SID: ev.sid, Cat: ev.cat, Name: ev.name, VStart: ev.vstart, VDur: ev.vdur, Attrs: ev.attrs}
	}
	for _, s := range r.sessions {
		s.mu.Lock()
		bySt := make(map[string]time.Duration, len(s.bySt))
		for k, v := range s.bySt {
			bySt[k] = v
		}
		st.Sessions = append(st.Sessions, sessionState{
			ID: s.id, Name: s.name, Accounted: s.accounted, BySt: bySt,
			SpanN: s.spanN, Attrs: append([]Attr(nil), s.attrs...), Finished: s.finished,
		})
		s.mu.Unlock()
	}
	r.mu.Unlock()
	r.cmu.Lock()
	st.Counters = make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		st.Counters[name] = c.Value()
	}
	st.Gauges = make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		st.Gauges[name] = g.Value()
	}
	st.Hists = make(map[string]histogramState, len(r.hists))
	for name, h := range r.hists {
		st.Hists[name] = h.state()
	}
	r.cmu.Unlock()
	return gob.NewEncoder(w).Encode(st)
}

// RestoreFrom reinstates a state written by SnapshotTo
// (checkpoint.Restorer), replacing the recorder's contents. Session
// handles come back without a clock; reattach with AdoptSession before
// recording into them again. The recorder is unchanged on error.
func (r *Recorder) RestoreFrom(rd io.Reader) error {
	if r == nil {
		return fmt.Errorf("telemetry: cannot restore into a nil recorder")
	}
	var st recorderState
	if err := gob.NewDecoder(rd).Decode(&st); err != nil {
		return err
	}
	spans := make([]spanEvent, len(st.Spans))
	for i, ev := range st.Spans {
		spans[i] = spanEvent{sid: ev.SID, cat: ev.Cat, name: ev.Name, vstart: ev.VStart, vdur: ev.VDur, attrs: ev.Attrs}
	}
	sessions := make([]*SessionTrace, 0, len(st.Sessions))
	for _, s := range st.Sessions {
		bySt := s.BySt
		if bySt == nil {
			bySt = make(map[string]time.Duration)
		}
		sessions = append(sessions, &SessionTrace{
			r: r, id: s.ID, name: s.Name, accounted: s.Accounted, bySt: bySt,
			spanN: s.SpanN, attrs: s.Attrs, finished: s.Finished,
		})
	}
	r.mu.Lock()
	r.spans = spans
	r.sessions = sessions
	r.mu.Unlock()
	r.cmu.Lock()
	for name, v := range st.Counters {
		c := r.counters[name]
		if c == nil {
			c = &Counter{name: name}
			r.counters[name] = c
		}
		c.v.Store(v)
	}
	for name, v := range st.Gauges {
		g := r.gauges[name]
		if g == nil {
			g = &Gauge{name: name}
			r.gauges[name] = g
		}
		g.Set(v)
	}
	for name, hs := range st.Hists {
		h := r.hists[name]
		if h == nil {
			h = newHistogram(name)
			r.hists[name] = h
		}
		h.setState(hs)
	}
	r.cmu.Unlock()
	return nil
}

// AdoptSession reattaches a restored session trace to a live virtual
// clock and returns the handle; a resumed tuning session keeps appending
// to the trace it was writing before the interruption. It returns nil when
// no restored session has the id (or the recorder is nil — callers treat a
// nil handle as disabled, as everywhere else).
func (r *Recorder) AdoptSession(id int, clock func() time.Duration) *SessionTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.sessions {
		if s.id == id {
			s.clock = clock
			return s
		}
	}
	return nil
}
