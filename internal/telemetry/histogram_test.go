package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramNilSafe(t *testing.T) {
	var r *Recorder
	h := r.Histogram("x")
	if h != nil {
		t.Fatalf("nil recorder returned non-nil histogram")
	}
	h.Observe(time.Second) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("nil histogram reported non-zero stats")
	}
	if h.Quantile(0.5) != 0 || h.Name() != "" || h.NonEmptyBuckets() != nil {
		t.Fatalf("nil histogram leaked data")
	}
}

func TestHistogramDisabledPathAllocsZero(t *testing.T) {
	var r *Recorder
	h := r.Histogram("x")
	allocs := testing.AllocsPerRun(100, func() {
		h.Observe(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled histogram Observe allocated %v/op, want 0", allocs)
	}
}

func TestHistogramEnabledObserveAllocsZero(t *testing.T) {
	h := New().Histogram("x")
	allocs := testing.AllocsPerRun(100, func() {
		h.Observe(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("enabled histogram Observe allocated %v/op, want 0", allocs)
	}
}

func TestHistogramRegistersOnce(t *testing.T) {
	r := New()
	a, b := r.Histogram("same"), r.Histogram("same")
	if a != b {
		t.Fatalf("Histogram returned distinct handles for one name")
	}
	if a.Name() != "same" {
		t.Fatalf("Name() = %q, want %q", a.Name(), "same")
	}
}

func TestHistogramStats(t *testing.T) {
	h := New().Histogram("x")
	if h.Min() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("empty histogram reported non-zero stats")
	}
	durs := []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		100 * time.Millisecond, time.Second, -time.Second, // negative clamps to 0
	}
	for _, d := range durs {
		h.Observe(d)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	wantSum := 1135 * time.Millisecond
	if h.Sum() != wantSum {
		t.Fatalf("Sum = %v, want %v", h.Sum(), wantSum)
	}
	if h.Min() != 0 {
		t.Fatalf("Min = %v, want 0 (negative clamps)", h.Min())
	}
	if h.Max() != time.Second {
		t.Fatalf("Max = %v, want 1s", h.Max())
	}
	if got := h.Quantile(1); got != time.Second {
		t.Fatalf("Quantile(1) = %v, want exact max 1s", got)
	}
	// q=0.5 → rank 3 of 6 → the 10ms observation's bucket: upper bound
	// must cover 10ms and stay within 2x of it.
	p50 := h.Quantile(0.5)
	if p50 < 10*time.Millisecond || p50 > 20*time.Millisecond {
		t.Fatalf("Quantile(0.5) = %v, want in [10ms, 20ms]", p50)
	}
	// The top quantile may never exceed the true maximum.
	if got := h.Quantile(0.99); got > h.Max() {
		t.Fatalf("Quantile(0.99) = %v exceeds max %v", got, h.Max())
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	h := New().Histogram("x")
	for _, d := range []time.Duration{1, 2, 3, 100, 1000} {
		h.Observe(d)
	}
	bs := h.NonEmptyBuckets()
	if len(bs) == 0 {
		t.Fatalf("no buckets for non-empty histogram")
	}
	var lastUpper time.Duration = -1
	for _, b := range bs {
		if b.Upper <= lastUpper {
			t.Fatalf("bucket bounds not strictly ascending: %v after %v", b.Upper, lastUpper)
		}
		lastUpper = b.Upper
	}
	if got := bs[len(bs)-1].Cumulative; got != h.Count() {
		t.Fatalf("last cumulative = %d, want count %d", got, h.Count())
	}
}

// Two histograms fed the same multiset of values in different orders (and
// from different goroutine interleavings) must be bit-identical — that is
// the property that keeps concurrent actor observes deterministic.
func TestHistogramOrderIndependent(t *testing.T) {
	vals := make([]time.Duration, 0, 1000)
	for i := 0; i < 1000; i++ {
		vals = append(vals, time.Duration(i*i)*time.Microsecond)
	}
	seq := New().Histogram("x")
	for _, d := range vals {
		seq.Observe(d)
	}
	conc := New().Histogram("x")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(vals); i += 8 {
				conc.Observe(vals[i])
			}
		}(w)
	}
	wg.Wait()
	a, b := seq.state(), conc.state()
	if a.Count != b.Count || a.Sum != b.Sum || a.Min != b.Min || a.Max != b.Max {
		t.Fatalf("concurrent stats diverge: %+v vs %+v", a, b)
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			t.Fatalf("bucket %d diverges: %d vs %d", i, a.Buckets[i], b.Buckets[i])
		}
	}
}

func TestHistogramSnapshotRoundTrip(t *testing.T) {
	src := New()
	h := src.Histogram("tuner.wave_seconds")
	for _, d := range []time.Duration{time.Millisecond, time.Second, time.Minute} {
		h.Observe(d)
	}
	src.Histogram("empty.hist") // registered but never observed

	var buf bytes.Buffer
	if err := src.SnapshotTo(&buf); err != nil {
		t.Fatalf("SnapshotTo: %v", err)
	}
	dst := New()
	if err := dst.RestoreFrom(&buf); err != nil {
		t.Fatalf("RestoreFrom: %v", err)
	}

	var a, b strings.Builder
	if err := src.WriteText(&a); err != nil {
		t.Fatalf("WriteText(src): %v", err)
	}
	if err := dst.WriteText(&b); err != nil {
		t.Fatalf("WriteText(dst): %v", err)
	}
	if a.String() != b.String() {
		t.Fatalf("exposition diverges after snapshot round-trip:\n--- src\n%s--- dst\n%s", a.String(), b.String())
	}

	g := dst.Histogram("tuner.wave_seconds")
	if g.Count() != 3 || g.Min() != time.Millisecond || g.Max() != time.Minute {
		t.Fatalf("restored stats wrong: count=%d min=%v max=%v", g.Count(), g.Min(), g.Max())
	}
	// A restored empty histogram must still track min correctly.
	e := dst.Histogram("empty.hist")
	if e.Count() != 0 || e.Min() != 0 {
		t.Fatalf("restored empty histogram corrupt: count=%d min=%v", e.Count(), e.Min())
	}
	e.Observe(5 * time.Millisecond)
	if e.Min() != 5*time.Millisecond {
		t.Fatalf("min after restore+observe = %v, want 5ms", e.Min())
	}
}

func TestHistogramInExposition(t *testing.T) {
	r := New()
	r.Histogram("cloud.deploy_seconds").Observe(90 * time.Second)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# histograms",
		"cloud.deploy_seconds_bucket{le=\"+Inf\"} 1",
		"cloud.deploy_seconds_count 1",
		"cloud.deploy_seconds_sum_seconds 90",
		"1 histograms",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramInReport(t *testing.T) {
	r := New()
	h := r.Histogram("tuner.actor_step_seconds")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond)
	}
	rep := r.Report()
	hr, ok := rep.Histograms["tuner.actor_step_seconds"]
	if !ok {
		t.Fatalf("report missing histogram; have %v", rep.Histograms)
	}
	if hr.Count != 100 || hr.MinSeconds != 0.001 || hr.MaxSeconds != 0.1 {
		t.Fatalf("report stats wrong: %+v", hr)
	}
	if hr.P50Seconds <= 0 || hr.P50Seconds > hr.MaxSeconds ||
		hr.P99Seconds < hr.P50Seconds || hr.P99Seconds > hr.MaxSeconds {
		t.Fatalf("report quantiles inconsistent: %+v", hr)
	}
	// Empty recorders must omit the map entirely.
	if got := New().Report().Histograms; got != nil {
		t.Fatalf("empty recorder report has histograms: %v", got)
	}
}

func TestEventsSince(t *testing.T) {
	var nilR *Recorder
	if evs, cur := nilR.EventsSince(0); evs != nil || cur != 0 {
		t.Fatalf("nil recorder EventsSince = %v, %d", evs, cur)
	}

	r := New()
	st := r.Session("tpcc", nil)
	st.Event("best_improved", A("objective", 123.5))
	st.Charge("stress_wave", time.Second) // step span: must not appear
	st.Event("workload_drift")

	evs, cur := r.EventsSince(0)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(evs), evs)
	}
	if evs[0].Name != "best_improved" || evs[0].SessionName != "tpcc" {
		t.Fatalf("first event wrong: %+v", evs[0])
	}
	if evs[0].Attrs["objective"] != 123.5 {
		t.Fatalf("attrs not carried: %+v", evs[0].Attrs)
	}
	if evs[1].Name != "workload_drift" {
		t.Fatalf("second event wrong: %+v", evs[1])
	}

	// Cursor resumes past what was read; a new event shows up alone.
	if more, _ := r.EventsSince(cur); len(more) != 0 {
		t.Fatalf("stale cursor returned events: %+v", more)
	}
	st.Event("wave_partial", A("wave", 3))
	more, next := r.EventsSince(cur)
	if len(more) != 1 || more[0].Name != "wave_partial" {
		t.Fatalf("incremental read wrong: %+v", more)
	}
	if next <= cur {
		t.Fatalf("cursor did not advance: %d -> %d", cur, next)
	}
	// Out-of-range cursors are safe.
	if evs, _ := r.EventsSince(next + 100); evs != nil {
		t.Fatalf("past-end cursor returned events: %+v", evs)
	}
	if evs, _ := r.EventsSince(-5); len(evs) != 3 {
		t.Fatalf("negative cursor should read from start, got %d events", len(evs))
	}
}
