package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEmptyRecorderExports covers the fully-degenerate case: an enabled
// recorder that never saw a session, span, counter or gauge must still
// produce valid artifacts from every exporter.
func TestEmptyRecorderExports(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); strings.Count(got, "\n") != 0 || !strings.Contains(got, TraceSchema) {
		t.Fatalf("empty trace should be the header line only:\n%s", got)
	}
	buf.Reset()
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty Chrome trace invalid JSON:\n%s", buf.String())
	}
	buf.Reset()
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 counters, 0 gauges, 0 histograms, 0 spans") {
		t.Fatalf("empty exposition header wrong:\n%s", buf.String())
	}
	buf.Reset()
	if err := r.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema || len(rep.Sessions) != 0 || len(rep.Histograms) != 0 {
		t.Fatalf("empty report malformed: %+v", rep)
	}
	if events, next := r.EventsSince(0); len(events) != 0 || next != 0 {
		t.Fatalf("empty EventsSince = %v, %d", events, next)
	}
}

// TestNonFiniteEverywhere pushes NaN and ±Inf through every value sink —
// gauges, span attrs, event attrs — and checks each exporter sanitizes
// them via finite() rather than emitting invalid JSON or exposition text.
func TestNonFiniteEverywhere(t *testing.T) {
	r := New()
	r.Gauge("g.nan").Set(nan())
	r.Gauge("g.inf").Set(inf())
	r.Gauge("g.neginf").Set(-inf())
	st := r.Session("s", nil)
	sp := st.Start("phase")
	sp.End(A("inf", inf()))
	st.Event("e", A("neginf", -inf()))
	st.Finish()

	var buf bytes.Buffer
	for name, emit := range map[string]func(*bytes.Buffer) error{
		"trace":  func(b *bytes.Buffer) error { return r.WriteTrace(b) },
		"chrome": func(b *bytes.Buffer) error { return r.WriteChromeTrace(b) },
		"report": func(b *bytes.Buffer) error { return r.WriteReport(b) },
	} {
		buf.Reset()
		if err := emit(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			if !json.Valid([]byte(ln)) && !json.Valid(buf.Bytes()) {
				t.Fatalf("%s emitted invalid JSON: %s", name, ln)
			}
		}
		for _, bad := range []string{"NaN", "Inf"} {
			if strings.Contains(buf.String(), bad) {
				t.Fatalf("%s leaked %s:\n%s", name, bad, buf.String())
			}
		}
	}
	buf.Reset()
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"g.nan 0", "g.inf 0", "g.neginf 0"} {
		if !strings.Contains(buf.String(), g+"\n") {
			t.Fatalf("exposition did not sanitize %q:\n%s", g, buf.String())
		}
	}
	events, _ := r.EventsSince(0)
	if len(events) != 1 || events[0].Attrs["neginf"] != 0 {
		t.Fatalf("EventsSince did not sanitize attrs: %+v", events)
	}
}

// TestExportWithOpenSpans exports while a span is still open: the open
// span is simply absent (it only records on End), exporters stay valid,
// and ending it after the export records it normally.
func TestExportWithOpenSpans(t *testing.T) {
	r := New()
	st := r.Session("s", nil)
	done := st.Start("finished")
	done.End()
	open := st.Start("still_open")

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "still_open") {
		t.Fatalf("open span leaked into trace:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "finished") {
		t.Fatalf("closed span missing from trace:\n%s", buf.String())
	}
	buf.Reset()
	if err := r.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Spans != 1 {
		t.Fatalf("report counts %d spans with one open, want 1", rep.Spans)
	}

	open.End()
	buf.Reset()
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "still_open") {
		t.Fatalf("span ended after export never recorded:\n%s", buf.String())
	}
}

// TestConcurrentRecordAndExport hammers recording (spans, events, charges,
// histogram observes) from several goroutines while exporters run
// concurrently — the -race guarantee that serving /metrics or /events
// mid-run is safe.
func TestConcurrentRecordAndExport(t *testing.T) {
	r := New()
	h := r.Histogram("h.concurrent")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := r.Session("writer", nil)
			for i := 0; i < 200; i++ {
				sp := st.Start("phase")
				st.Charge("step", time.Millisecond)
				st.Event("tick", A("g", float64(g)))
				h.Observe(time.Duration(i) * time.Microsecond)
				r.Counter("c").Add(1)
				sp.End()
			}
			st.Finish()
		}(g)
	}
	var exporter sync.WaitGroup
	exporter.Add(1)
	go func() {
		defer exporter.Done()
		cursor := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WriteTrace(&buf); err != nil {
				t.Error(err)
				return
			}
			if err := r.WriteText(&buf); err != nil {
				t.Error(err)
				return
			}
			_, cursor = r.EventsSince(cursor)
			r.Report()
		}
	}()
	wg.Wait()
	close(stop)
	exporter.Wait()

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if h.Count() != 4*200 {
		t.Fatalf("histogram lost observations: %d", h.Count())
	}
}
