package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count of every histogram: power-of-two
// boundaries on nanoseconds cover the full time.Duration range (bucket i
// holds values d with 2^(i-1) ≤ d < 2^i ns; bucket 0 holds zero), so no
// configuration is needed and two histograms of the same stream are always
// bit-identical, bucket for bucket.
const histBuckets = 64

// Histogram is a deterministic log-bucketed distribution of virtual-time
// durations — wave lengths, per-actor step costs, retry backoff delays,
// knob-deployment times. Recording is a handful of lock-free atomic
// operations on pre-sized arrays (no allocation, no locks, no wall clock),
// so observing from concurrent actors is safe and order-independent: the
// final state depends only on the multiset of observed values, never on
// timing. A nil *Histogram is the disabled handle; every method no-ops.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64 // total nanoseconds
	min     atomic.Int64 // nanoseconds; valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Histogram returns the named histogram, registering it on first use. A
// nil recorder returns a nil histogram whose methods no-op.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.cmu.Lock()
	defer r.cmu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(name)
		r.hists[name] = h
	}
	return h
}

func newHistogram(name string) *Histogram {
	h := &Histogram{name: name}
	h.min.Store(math.MaxInt64)
	return h
}

// histBucketIndex maps a duration to its bucket: 0 for d ≤ 0, else
// bits.Len64 of the nanosecond count (clamped to the last bucket).
func histBucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64(d))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// histBucketUpper is the exclusive upper bound of bucket i in nanoseconds.
func histBucketUpper(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return time.Duration(uint64(1) << uint(i))
}

// Observe records one duration; no-op on a nil handle. Negative values
// clamp to zero. Safe for concurrent use; allocation-free.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.buckets[histBucketIndex(d)].Add(1)
	for {
		cur := h.min.Load()
		if int64(d) >= cur || h.min.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Name returns the histogram's registered name ("" on a nil handle).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (q in [0,1]) — a deterministic, conservative estimate with at
// most one power of two of overshoot. Empty histograms return 0; q ≥ 1
// returns the exact maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q >= 1 {
		return time.Duration(h.max.Load())
	}
	if q < 0 {
		q = 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			u := histBucketUpper(i)
			if m := time.Duration(h.max.Load()); u > m {
				return m // never report past the true maximum
			}
			return u
		}
	}
	return time.Duration(h.max.Load())
}

// HistBucket is one non-empty histogram bucket in export form: the
// exclusive upper bound and the cumulative count of observations at or
// below it.
type HistBucket struct {
	Upper      time.Duration
	Cumulative int64
}

// NonEmptyBuckets returns the cumulative view of the non-empty buckets in
// ascending bound order — what the Prometheus-style exposition emits.
func (h *Histogram) NonEmptyBuckets() []HistBucket {
	if h == nil {
		return nil
	}
	var out []HistBucket
	var cum int64
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, HistBucket{Upper: histBucketUpper(i), Cumulative: cum})
	}
	return out
}

// histogramState is a histogram's portable snapshot (gob).
type histogramState struct {
	Count, Sum, Min, Max int64
	Buckets              []int64 // sparse: pairs absent; full 64-entry dense form
}

// state captures the histogram for snapshots.
func (h *Histogram) state() histogramState {
	st := histogramState{
		Count: h.count.Load(), Sum: h.sum.Load(),
		Min: h.min.Load(), Max: h.max.Load(),
		Buckets: make([]int64, histBuckets),
	}
	for i := range st.Buckets {
		st.Buckets[i] = h.buckets[i].Load()
	}
	return st
}

// setState reinstates a snapshot taken by state.
func (h *Histogram) setState(st histogramState) {
	h.count.Store(st.Count)
	h.sum.Store(st.Sum)
	if st.Min == 0 && st.Count == 0 {
		h.min.Store(math.MaxInt64)
	} else {
		h.min.Store(st.Min)
	}
	h.max.Store(st.Max)
	for i := range h.buckets {
		var v int64
		if i < len(st.Buckets) {
			v = st.Buckets[i]
		}
		h.buckets[i].Store(v)
	}
}
