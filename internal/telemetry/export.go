package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Schema identifiers stamped into exported artifacts so downstream
// tooling can reject traces it does not understand.
const (
	TraceSchema  = "hunter-trace/v1"
	ReportSchema = "hunter-report/v1"
)

// snapshot copies the recorder's spans and session list under the lock so
// exporters can run while sessions are still recording.
func (r *Recorder) snapshot() ([]spanEvent, []*SessionTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	spans := make([]spanEvent, len(r.spans))
	copy(spans, r.spans)
	sessions := make([]*SessionTrace, len(r.sessions))
	copy(sessions, r.sessions)
	return spans, sessions
}

// finite maps NaN and ±Inf to 0 so exported JSON is always valid.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// usec renders a duration as fractional microseconds with nanosecond
// precision — the unit both the JSONL trace and Chrome's trace_event
// format use.
func usec(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Nanoseconds())/1e3, 'f', 3, 64)
}

// attrsJSON renders attrs as a JSON object in argument order; empty attrs
// render as "{}".
func attrsJSON(attrs []Attr) string {
	if len(attrs) == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		k, _ := json.Marshal(a.Key)
		b.Write(k)
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(finite(a.Value), 'g', -1, 64))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteTrace emits the recorded spans as JSON lines: one header line, one
// line per session, then one line per span in record order. Times are
// microseconds; v_* fields are virtual (simulated) time, w_* fields are
// wall time since the recorder started. The JSONL form is the raw
// archive; WriteChromeTrace renders the same data for trace viewers.
func (r *Recorder) WriteTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	spans, sessions := r.snapshot()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `{"type":"header","schema":%q,"wall_start":%q}`+"\n",
		TraceSchema, r.wallStart.Format(time.RFC3339Nano))
	for _, st := range sessions {
		name, _ := json.Marshal(st.name)
		fmt.Fprintf(bw, `{"type":"session","sid":%d,"name":%s}`+"\n", st.id, name)
	}
	for _, ev := range spans {
		name, _ := json.Marshal(ev.name)
		fmt.Fprintf(bw, `{"type":"span","sid":%d,"cat":%q,"name":%s,"v_start_us":%s,"v_dur_us":%s,"w_start_us":%s,"w_dur_us":%s,"attrs":%s}`+"\n",
			ev.sid, ev.cat, name, usec(ev.vstart), usec(ev.vdur), usec(ev.wstart), usec(ev.wdur), attrsJSON(ev.attrs))
	}
	return bw.Flush()
}

// WriteTraceVirtual emits the same JSONL trace as WriteTrace with every
// wall-clock field removed: no wall_start in the header and no w_* span
// fields. Wall time is machine-specific, so this projection is the one
// that is reproducible — two identically-driven runs (or a run and its
// checkpoint-resumed twin) produce byte-identical output, which is what
// the resume-identity tests and CI compare.
func (r *Recorder) WriteTraceVirtual(w io.Writer) error {
	if r == nil {
		return nil
	}
	spans, sessions := r.snapshot()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `{"type":"header","schema":%q,"time_base":"virtual"}`+"\n", TraceSchema)
	for _, st := range sessions {
		name, _ := json.Marshal(st.name)
		fmt.Fprintf(bw, `{"type":"session","sid":%d,"name":%s}`+"\n", st.id, name)
	}
	for _, ev := range spans {
		name, _ := json.Marshal(ev.name)
		fmt.Fprintf(bw, `{"type":"span","sid":%d,"cat":%q,"name":%s,"v_start_us":%s,"v_dur_us":%s,"attrs":%s}`+"\n",
			ev.sid, ev.cat, name, usec(ev.vstart), usec(ev.vdur), attrsJSON(ev.attrs))
	}
	return bw.Flush()
}

// WriteChromeTrace renders the spans in Chrome's trace_event JSON format
// (load via chrome://tracing or https://ui.perfetto.dev). The timeline is
// virtual time: each session is one named thread, step and phase spans
// are complete ("X") events, and events are instants ("i"); wall-clock
// offsets travel in the args so both time bases survive the conversion.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	spans, sessions := r.snapshot()
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
		bw.WriteString(line)
	}
	emit(`{"ph":"M","pid":1,"name":"process_name","args":{"name":"hunter (virtual time)"}}`)
	for _, st := range sessions {
		name, _ := json.Marshal(fmt.Sprintf("session %d: %s", st.id, st.name))
		emit(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`, st.id, name))
	}
	for _, ev := range spans {
		name, _ := json.Marshal(ev.name)
		args := attrsJSON(append([]Attr{
			{Key: "wall_start_ms", Value: float64(ev.wstart.Nanoseconds()) / 1e6},
			{Key: "wall_dur_ms", Value: float64(ev.wdur.Nanoseconds()) / 1e6},
		}, ev.attrs...))
		if ev.cat == CatEvent {
			emit(fmt.Sprintf(`{"ph":"i","s":"t","pid":1,"tid":%d,"cat":%q,"name":%s,"ts":%s,"args":%s}`,
				ev.sid, ev.cat, name, usec(ev.vstart), args))
			continue
		}
		emit(fmt.Sprintf(`{"ph":"X","pid":1,"tid":%d,"cat":%q,"name":%s,"ts":%s,"dur":%s,"args":%s}`,
			ev.sid, ev.cat, name, usec(ev.vstart), usec(ev.vdur), args))
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// WriteText dumps every counter, gauge and histogram as Prometheus-style
// text lines, sorted by name, with section comments — a deterministic
// exposition for humans, scripts and the /metrics endpoint. Histograms
// emit cumulative buckets (le is the bucket's upper bound in seconds)
// followed by _count and _sum_seconds lines.
func (r *Recorder) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.cmu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.cmu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# hunter telemetry exposition (%d counters, %d gauges, %d histograms, %d spans)\n",
		len(counters), len(gauges), len(hists), r.SpanCount())
	fmt.Fprintln(bw, "# counters")
	for _, c := range counters {
		fmt.Fprintf(bw, "%s %d\n", c.name, c.Value())
	}
	fmt.Fprintln(bw, "# gauges")
	for _, g := range gauges {
		fmt.Fprintf(bw, "%s %s\n", g.name, strconv.FormatFloat(finite(g.Value()), 'g', -1, 64))
	}
	if len(hists) > 0 {
		fmt.Fprintln(bw, "# histograms")
		for _, h := range hists {
			for _, b := range h.NonEmptyBuckets() {
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n",
					h.name, strconv.FormatFloat(b.Upper.Seconds(), 'g', -1, 64), b.Cumulative)
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.Count())
			fmt.Fprintf(bw, "%s_count %d\n", h.name, h.Count())
			fmt.Fprintf(bw, "%s_sum_seconds %s\n",
				h.name, strconv.FormatFloat(h.Sum().Seconds(), 'g', -1, 64))
		}
	}
	return bw.Flush()
}

// EventView is one instant event in the form the /events stream serves:
// the owning session, the event name, its virtual timestamp and its
// attributes.
type EventView struct {
	Session     int                `json:"sid"`
	SessionName string             `json:"session"`
	Name        string             `json:"name"`
	VirtualUS   float64            `json:"v_us"`
	Attrs       map[string]float64 `json:"attrs,omitempty"`
}

// EventsSince returns the instant events recorded at or after span cursor
// `from` (an opaque position; start from 0) plus the next cursor to poll
// with. The copy happens under the recorder's lock, so a tailing reader
// can never perturb or tear an in-progress run — this is the polling
// primitive behind the introspection server's /events stream.
func (r *Recorder) EventsSince(from int) ([]EventView, int) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if from < 0 {
		from = 0
	}
	names := make(map[int]string, len(r.sessions))
	for _, st := range r.sessions {
		names[st.id] = st.name
	}
	var out []EventView
	for _, ev := range r.spans[min(from, len(r.spans)):] {
		if ev.cat != CatEvent {
			continue
		}
		v := EventView{
			Session:     ev.sid,
			SessionName: names[ev.sid],
			Name:        ev.name,
			VirtualUS:   float64(ev.vstart.Nanoseconds()) / 1e3,
		}
		if len(ev.attrs) > 0 {
			v.Attrs = make(map[string]float64, len(ev.attrs))
			for _, a := range ev.attrs {
				v.Attrs[a.Key] = finite(a.Value)
			}
		}
		out = append(out, v)
	}
	return out, len(r.spans)
}

// Report is the machine-readable summary of one run (report.json).
type Report struct {
	Schema      string                     `json:"schema"`
	WallSeconds float64                    `json:"wall_seconds"`
	Spans       int                        `json:"spans"`
	Sessions    []SessionReport            `json:"sessions"`
	Counters    map[string]int64           `json:"counters"`
	Gauges      map[string]float64         `json:"gauges"`
	Histograms  map[string]HistogramReport `json:"histograms,omitempty"`
}

// HistogramReport summarizes one latency histogram: observation count,
// total/min/max in seconds, and conservative bucket-bound quantiles. All
// fields are virtual time, so they are deterministic across runs.
type HistogramReport struct {
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	MinSeconds float64 `json:"min_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
	P50Seconds float64 `json:"p50_seconds"`
	P90Seconds float64 `json:"p90_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// SessionReport summarizes one traced session. StepSeconds breaks the
// session's virtual-clock spend down by step; its values sum to
// VirtualSeconds exactly, which in turn equals the session clock's final
// position when every advance was charged through the trace.
type SessionReport struct {
	ID             int                `json:"id"`
	Name           string             `json:"name"`
	VirtualSeconds float64            `json:"virtual_seconds"`
	StepSeconds    map[string]float64 `json:"step_seconds"`
	Spans          int                `json:"spans"`
	Finished       bool               `json:"finished"`
	Attrs          map[string]float64 `json:"attrs,omitempty"`
}

// Report builds the run summary. Sessions appear in id order; counter and
// gauge maps serialize with sorted keys (encoding/json), so the report is
// deterministic up to its wall-time fields.
func (r *Recorder) Report() *Report {
	rep := &Report{
		Schema:   ReportSchema,
		Sessions: make([]SessionReport, 0),
		Counters: make(map[string]int64),
		Gauges:   make(map[string]float64),
	}
	if r == nil {
		return rep
	}
	spans, sessions := r.snapshot()
	rep.WallSeconds = finite(r.wallOffset().Seconds())
	rep.Spans = len(spans)
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
	for _, st := range sessions {
		st.mu.Lock()
		sr := SessionReport{
			ID:             st.id,
			Name:           st.name,
			VirtualSeconds: st.accounted.Seconds(),
			StepSeconds:    make(map[string]float64, len(st.bySt)),
			Spans:          st.spanN,
			Finished:       st.finished,
		}
		for step, d := range st.bySt {
			sr.StepSeconds[step] = d.Seconds()
		}
		if len(st.attrs) > 0 {
			sr.Attrs = make(map[string]float64, len(st.attrs))
			for _, a := range st.attrs {
				sr.Attrs[a.Key] = finite(a.Value)
			}
		}
		st.mu.Unlock()
		rep.Sessions = append(rep.Sessions, sr)
	}
	r.cmu.Lock()
	for name, c := range r.counters {
		rep.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		rep.Gauges[name] = finite(g.Value())
	}
	if len(r.hists) > 0 {
		rep.Histograms = make(map[string]HistogramReport, len(r.hists))
		for name, h := range r.hists {
			rep.Histograms[name] = HistogramReport{
				Count:      h.Count(),
				SumSeconds: h.Sum().Seconds(),
				MinSeconds: h.Min().Seconds(),
				MaxSeconds: h.Max().Seconds(),
				P50Seconds: h.Quantile(0.50).Seconds(),
				P90Seconds: h.Quantile(0.90).Seconds(),
				P99Seconds: h.Quantile(0.99).Seconds(),
			}
		}
	}
	r.cmu.Unlock()
	return rep
}

// WriteReport writes the run summary as indented JSON.
func (r *Recorder) WriteReport(w io.Writer) error {
	if r == nil {
		return nil
	}
	data, err := json.MarshalIndent(r.Report(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
