// Package telemetry is the observability layer of the tuning stack: span
// tracing on the virtual clock, counters and gauges registered by the
// simulator, the cloud control plane and the tuner, and exporters (a
// JSON-lines trace convertible to Chrome trace_event format, a text
// exposition dump, and a machine-readable run report).
//
// The layer is deterministic and passive by construction: a Recorder never
// advances a clock, never consumes an RNG stream, and never writes to an
// experiment's output writer, so enabling telemetry cannot change a single
// result bit. It is also allocation-free when disabled: every entry point
// is safe on a nil receiver and compiles to a branch-predictable early
// return, so instrumented hot loops pay one nil check when tracing is off.
// Instrumentation sites that build span attributes guard the whole call
// behind the nil check so even the variadic slice is never allocated.
package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span, event or session.
type Attr struct {
	Key   string
	Value float64
}

// A builds an Attr.
func A(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Span categories. Step spans carry exact virtual-clock charges and are
// the only category that feeds budget accounting; phase spans bracket
// longer algorithm stages (GA, PCA, RF, DDPG) whose virtual extent is
// whatever the clock moved while they ran; events are instantaneous
// markers (drift fired, best improved, deployment).
const (
	CatStep  = "step"
	CatPhase = "phase"
	CatEvent = "event"
)

// spanEvent is one recorded span. Wall offsets are measured from the
// recorder's start so traces from one run share a time base.
type spanEvent struct {
	sid          int
	cat, name    string
	vstart, vdur time.Duration
	wstart, wdur time.Duration
	attrs        []Attr
}

// Recorder collects spans, counters and gauges for one run. The zero
// value is not usable; construct with New. A nil *Recorder is the
// disabled recorder: every method no-ops.
type Recorder struct {
	wallStart time.Time

	mu       sync.Mutex
	spans    []spanEvent
	sessions []*SessionTrace

	cmu      sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an enabled, empty recorder anchored at the current wall
// time.
func New() *Recorder {
	return &Recorder{
		wallStart: time.Now(),
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
	}
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

func (r *Recorder) wallOffset() time.Duration { return time.Since(r.wallStart) }

func (r *Recorder) addSpan(ev spanEvent) {
	r.mu.Lock()
	r.spans = append(r.spans, ev)
	r.mu.Unlock()
}

// SpanCount returns the number of recorded spans.
func (r *Recorder) SpanCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Counter returns the named monotonic counter, registering it on first
// use. Handles are resolved once and incremented lock-free thereafter; a
// nil recorder returns a nil counter whose methods no-op.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.cmu.Lock()
	defer r.cmu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use. A nil
// recorder returns a nil gauge whose methods no-op.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.cmu.Lock()
	defer r.cmu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Counter is a monotonic counter safe for concurrent use.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter; no-op on a nil handle.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the counter's registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a last-write-wins float value safe for concurrent use.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v; no-op on a nil handle.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// SessionTrace is the per-session tracing handle: it binds spans to one
// tuning session's virtual clock and accumulates the budget accounting
// (the sum of step charges equals the session's virtual-clock spend by
// construction). A nil *SessionTrace is the disabled handle.
type SessionTrace struct {
	r     *Recorder
	id    int
	name  string
	clock func() time.Duration

	mu        sync.Mutex
	accounted time.Duration
	bySt      map[string]time.Duration
	spanN     int
	attrs     []Attr
	finished  bool
}

// Session registers a traced session. clock reports the session's current
// virtual time (nil pins virtual time to zero, for sessionless users like
// one-shot benches). A nil recorder returns a nil handle.
func (r *Recorder) Session(name string, clock func() time.Duration) *SessionTrace {
	if r == nil {
		return nil
	}
	st := &SessionTrace{r: r, name: name, clock: clock, bySt: make(map[string]time.Duration)}
	r.mu.Lock()
	st.id = len(r.sessions) + 1
	r.sessions = append(r.sessions, st)
	r.mu.Unlock()
	return st
}

// ID returns the session's trace id (0 on a nil handle).
func (st *SessionTrace) ID() int {
	if st == nil {
		return 0
	}
	return st.id
}

func (st *SessionTrace) vnow() time.Duration {
	if st.clock == nil {
		return 0
	}
	return st.clock()
}

// Charge records a step span that just ended at the current virtual time
// with exact virtual duration d — the telemetry mirror of a virtual-clock
// advance. Step charges are the budget accounting: their per-session sum
// is exactly the virtual time the session's clock consumed.
func (st *SessionTrace) Charge(step string, d time.Duration, attrs ...Attr) {
	if st == nil {
		return
	}
	vend := st.vnow()
	w := st.r.wallOffset()
	st.mu.Lock()
	st.accounted += d
	st.bySt[step] += d
	st.spanN++
	st.mu.Unlock()
	st.r.addSpan(spanEvent{sid: st.id, cat: CatStep, name: step, vstart: vend - d, vdur: d, wstart: w, attrs: attrs})
}

// Accounted returns the total virtual time charged so far — equal to the
// session clock's position when every advance is mirrored by a Charge.
func (st *SessionTrace) Accounted() time.Duration {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.accounted
}

// Span is an open phase span started by SessionTrace.Start. The zero
// value is the disabled span; End on it no-ops.
type Span struct {
	st     *SessionTrace
	name   string
	vstart time.Duration
	wstart time.Duration
}

// Start opens a phase span at the current virtual and wall time. Phase
// spans measure algorithm stages (GA evolution, PCA fit, DDPG
// exploration): their virtual duration is however far the clock moved
// while they ran, and they do not feed budget accounting (the step
// charges inside them already do).
func (st *SessionTrace) Start(name string) Span {
	if st == nil {
		return Span{}
	}
	return Span{st: st, name: name, vstart: st.vnow(), wstart: st.r.wallOffset()}
}

// StartAt opens a phase span at an explicit virtual start time. A resumed
// run uses it to re-open the phase span that was live when its checkpoint
// was taken, so the merged virtual trace matches an uninterrupted run's.
func (st *SessionTrace) StartAt(name string, vstart time.Duration) Span {
	if st == nil {
		return Span{}
	}
	return Span{st: st, name: name, vstart: vstart, wstart: st.r.wallOffset()}
}

// End closes the span.
func (sp Span) End(attrs ...Attr) {
	st := sp.st
	if st == nil {
		return
	}
	vend := st.vnow()
	wend := st.r.wallOffset()
	st.mu.Lock()
	st.spanN++
	st.mu.Unlock()
	st.r.addSpan(spanEvent{
		sid: st.id, cat: CatPhase, name: sp.name,
		vstart: sp.vstart, vdur: vend - sp.vstart,
		wstart: sp.wstart, wdur: wend - sp.wstart,
		attrs: attrs,
	})
}

// Event records an instantaneous marker at the current virtual time.
func (st *SessionTrace) Event(name string, attrs ...Attr) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.spanN++
	st.mu.Unlock()
	st.r.addSpan(spanEvent{sid: st.id, cat: CatEvent, name: name, vstart: st.vnow(), wstart: st.r.wallOffset(), attrs: attrs})
}

// Finish seals the session with its closing attributes (steps taken,
// samples pooled, best fitness). Idempotent; later calls are ignored.
func (st *SessionTrace) Finish(attrs ...Attr) {
	if st == nil {
		return
	}
	st.mu.Lock()
	if !st.finished {
		st.finished = true
		st.attrs = append(st.attrs, attrs...)
	}
	st.mu.Unlock()
}
