package telemetry

import (
	"runtime"

	"github.com/hunter-cdb/hunter/internal/parallel"
)

// CaptureRuntime snapshots Go runtime statistics into gauges. Exporters
// call it once before dumping; cmd/hunter-bench samples it periodically
// behind -pprof.
func (r *Recorder) CaptureRuntime() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	r.Gauge("runtime.total_alloc_bytes").Set(float64(ms.TotalAlloc))
	r.Gauge("runtime.mallocs").Set(float64(ms.Mallocs))
	r.Gauge("runtime.num_gc").Set(float64(ms.NumGC))
	r.Gauge("runtime.gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
	r.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
	r.Gauge("runtime.gomaxprocs").Set(float64(runtime.GOMAXPROCS(0)))
}

// CaptureParallel snapshots the fork-join layer's aggregate counters
// (fan-outs, chunks, worker busy/idle time) into gauges.
func (r *Recorder) CaptureParallel() {
	if r == nil {
		return
	}
	st := parallel.Stats()
	r.Gauge("parallel.fanouts").Set(float64(st.Fanouts))
	r.Gauge("parallel.chunks").Set(float64(st.Chunks))
	r.Gauge("parallel.inline_chunks").Set(float64(st.InlineChunks))
	r.Gauge("parallel.busy_seconds").Set(st.BusySeconds())
	r.Gauge("parallel.idle_seconds").Set(st.IdleSeconds())
	r.Gauge("parallel.workers").Set(float64(parallel.Workers()))
}
