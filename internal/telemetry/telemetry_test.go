package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRecorderNoOps exercises every entry point on the disabled (nil)
// recorder: nothing may panic and every read returns a zero value.
func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.SpanCount() != 0 {
		t.Fatal("nil recorder has spans")
	}
	c := r.Counter("x")
	c.Add(5)
	if c.Value() != 0 || c.Name() != "" {
		t.Fatal("nil counter not inert")
	}
	g := r.Gauge("y")
	g.Set(3.5)
	if g.Value() != 0 || g.Name() != "" {
		t.Fatal("nil gauge not inert")
	}
	st := r.Session("s", nil)
	if st != nil {
		t.Fatal("nil recorder returned a live session")
	}
	st.Charge("step", time.Second)
	st.Event("e")
	st.Finish()
	if st.Accounted() != 0 || st.ID() != 0 {
		t.Fatal("nil session not inert")
	}
	sp := st.Start("phase")
	sp.End()
	r.CaptureRuntime()
	r.CaptureParallel()
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil WriteTrace wrote output")
	}
	if err := r.WriteChromeTrace(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil WriteChromeTrace wrote output")
	}
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil WriteText wrote output")
	}
	if err := r.WriteReport(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil WriteReport wrote output")
	}
	rep := r.Report()
	if rep == nil || len(rep.Sessions) != 0 || rep.Counters == nil || rep.Gauges == nil {
		t.Fatal("nil Report() malformed")
	}
}

// TestDisabledPathAllocsZero guards the zero-overhead contract: the
// attr-free instrumentation calls a hot loop would make on a nil handle
// must not allocate at all.
func TestDisabledPathAllocsZero(t *testing.T) {
	var r *Recorder
	var st *SessionTrace
	var c *Counter
	var g *Gauge
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(1)
		st.Charge("step", time.Second)
		st.Event("e")
		sp := st.Start("p")
		sp.End()
		r.SpanCount()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry path allocates %v allocs/op, want 0", allocs)
	}
}

// TestCounterGaugeConcurrent hammers one counter and one gauge from many
// goroutines; run with -race this also proves the handles are safe for
// concurrent use.
func TestCounterGaugeConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	g := r.Gauge("depth")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(1)
				g.Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if v := g.Value(); v < 0 || v >= workers {
		t.Fatalf("gauge = %v, want one of the written worker ids", v)
	}
	if r.Counter("hits") != c {
		t.Fatal("re-registration returned a different handle")
	}
}

// TestSessionAccounting verifies the budget invariant: accounted time is
// exactly the sum of charges, broken down by step in the report.
func TestSessionAccounting(t *testing.T) {
	r := New()
	var vnow time.Duration
	st := r.Session("mysql/tpcc", func() time.Duration { return vnow })

	vnow += 3 * time.Minute
	st.Charge("clone_fleet", 3*time.Minute)
	sp := st.Start("sample_factory")
	vnow += 5 * time.Minute
	st.Charge("stress_wave", 5*time.Minute, A("configs", 4))
	vnow += 30 * time.Second
	st.Charge("model_update", 30*time.Second)
	sp.End()
	st.Event("best_improved", A("fitness", 1.5))
	st.Finish(A("steps", 4))
	st.Finish(A("steps", 99)) // idempotent: ignored

	want := 3*time.Minute + 5*time.Minute + 30*time.Second
	if got := st.Accounted(); got != want {
		t.Fatalf("Accounted() = %v, want %v", got, want)
	}
	rep := r.Report()
	if len(rep.Sessions) != 1 {
		t.Fatalf("report has %d sessions, want 1", len(rep.Sessions))
	}
	sr := rep.Sessions[0]
	if !sr.Finished || sr.Name != "mysql/tpcc" || sr.ID != 1 {
		t.Fatalf("session summary wrong: %+v", sr)
	}
	var sum float64
	for _, s := range sr.StepSeconds {
		sum += s
	}
	if sum != sr.VirtualSeconds || sr.VirtualSeconds != want.Seconds() {
		t.Fatalf("step seconds sum %v != virtual seconds %v (want %v)",
			sum, sr.VirtualSeconds, want.Seconds())
	}
	if sr.Attrs["steps"] != 4 {
		t.Fatalf("Finish attrs not first-write-wins: %+v", sr.Attrs)
	}
	// Phase spans and events count as spans but never feed accounting.
	if sr.Spans != 5 {
		t.Fatalf("session spans = %d, want 5 (3 charges + 1 phase + 1 event)", sr.Spans)
	}
}

// TestWriteTraceJSONL checks that every emitted line is valid JSON with
// the expected types and that virtual times round-trip.
func TestWriteTraceJSONL(t *testing.T) {
	r := New()
	var vnow time.Duration
	st := r.Session("s", func() time.Duration { return vnow })
	vnow = 90 * time.Second
	st.Charge("warmup_stress", 90*time.Second, A("tps", 3210.5))
	st.Event("deploy_user")

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header, session, 2 spans
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	types := []string{"header", "session", "span", "span"}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, ln)
		}
		if m["type"] != types[i] {
			t.Fatalf("line %d type = %v, want %s", i, m["type"], types[i])
		}
	}
	var span map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &span); err != nil {
		t.Fatal(err)
	}
	if span["v_dur_us"] != 90e6 || span["v_start_us"] != 0.0 {
		t.Fatalf("virtual times wrong: %+v", span)
	}
	if span["attrs"].(map[string]any)["tps"] != 3210.5 {
		t.Fatalf("attrs lost: %+v", span)
	}
}

// TestWriteChromeTrace checks the trace_event export parses as JSON and
// carries metadata, complete and instant events.
func TestWriteChromeTrace(t *testing.T) {
	r := New()
	var vnow time.Duration
	st := r.Session("s", func() time.Duration { return vnow })
	sp := st.Start("phase")
	vnow = time.Minute
	st.Charge("step", time.Minute)
	sp.End()
	st.Event("marker")

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["M"] != 2 || phases["X"] != 2 || phases["i"] != 1 {
		t.Fatalf("event mix %v, want 2 M, 2 X, 1 i", phases)
	}
}

// TestWriteTextSorted checks the exposition dump is sorted and complete.
func TestWriteTextSorted(t *testing.T) {
	r := New()
	r.Counter("z.last").Add(2)
	r.Counter("a.first").Add(1)
	r.Gauge("m.middle").Set(0.5)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ia, iz := strings.Index(out, "a.first 1"), strings.Index(out, "z.last 2")
	im := strings.Index(out, "m.middle 0.5")
	if ia < 0 || iz < 0 || im < 0 {
		t.Fatalf("missing entries:\n%s", out)
	}
	if !(ia < iz) {
		t.Fatalf("counters not sorted:\n%s", out)
	}
}

// TestEmptySessionReport covers the degenerate exports: a recorder with a
// registered but never-used session still produces valid artifacts.
func TestEmptySessionReport(t *testing.T) {
	r := New()
	r.Session("idle", nil)
	var buf bytes.Buffer
	if err := r.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if rep.Schema != ReportSchema || len(rep.Sessions) != 1 {
		t.Fatalf("report malformed: %+v", rep)
	}
	s := rep.Sessions[0]
	if s.VirtualSeconds != 0 || s.Spans != 0 || s.Finished {
		t.Fatalf("idle session summary wrong: %+v", s)
	}
	buf.Reset()
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 2 {
		t.Fatalf("empty trace has %d lines, want header + session", got)
	}
}

// TestFiniteSanitized ensures NaN/Inf attr and gauge values cannot produce
// invalid JSON.
func TestFiniteSanitized(t *testing.T) {
	r := New()
	r.Gauge("bad").Set(nan())
	st := r.Session("s", nil)
	st.Event("e", A("inf", inf()))
	var buf bytes.Buffer
	if err := r.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("report with NaN gauge is invalid JSON:\n%s", buf.String())
	}
	buf.Reset()
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !json.Valid([]byte(ln)) {
			t.Fatalf("trace line with Inf attr is invalid JSON: %s", ln)
		}
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }
