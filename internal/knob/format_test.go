package knob

import (
	"strings"
	"testing"
)

func TestFormatValue(t *testing.T) {
	cat := MySQL()
	cases := []struct {
		knob string
		v    float64
		want string
	}{
		{"innodb_buffer_pool_size", 16 << 30, "16 GB"},
		{"innodb_buffer_pool_size", 128 << 20, "128 MB"},
		{"innodb_adaptive_hash_index", 1, "ON"},
		{"innodb_adaptive_hash_index", 0, "OFF"},
		{"innodb_flush_method", 2, "O_DIRECT"},
		{"thread_handling", 1, "pool-of-threads"},
		{"innodb_io_capacity", 2000, "2000 iops"},
		{"innodb_max_dirty_pages_pct", 75, "75 %"},
	}
	for _, c := range cases {
		spec, ok := cat.Spec(c.knob)
		if !ok {
			t.Fatalf("missing %s", c.knob)
		}
		if got := spec.FormatValue(c.v); got != c.want {
			t.Errorf("%s(%v) = %q, want %q", c.knob, c.v, got, c.want)
		}
	}
}

func TestFormatValueClampsOutOfRange(t *testing.T) {
	spec, _ := MySQL().Spec("innodb_flush_method")
	if got := spec.FormatValue(99); got != "O_DIRECT" {
		t.Fatalf("out-of-range enum should clamp: %q", got)
	}
}

func TestFormatConfig(t *testing.T) {
	cat := MySQL()
	cfg := cat.Defaults()
	out := FormatConfig(cat, cfg, []string{"innodb_buffer_pool_size", "no_such_knob", "innodb_doublewrite"})
	if !strings.Contains(out, "128 MB") || !strings.Contains(out, "ON") {
		t.Fatalf("format wrong:\n%s", out)
	}
	if strings.Contains(out, "no_such_knob") {
		t.Fatal("unknown knobs must be skipped")
	}
	if n := strings.Count(out, "\n"); n != 2 {
		t.Fatalf("lines = %d", n)
	}
}
