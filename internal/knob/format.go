package knob

import (
	"fmt"
	"math"
)

// FormatValue renders a knob value the way a DBA would read it: byte
// quantities in human units, enums by name, booleans as ON/OFF.
func (s *Spec) FormatValue(v float64) string {
	v = s.Clamp(v)
	switch s.Kind {
	case Bool:
		if v == 1 {
			return "ON"
		}
		return "OFF"
	case Enum:
		i := int(v)
		if i >= 0 && i < len(s.Enum) {
			return s.Enum[i]
		}
		return fmt.Sprintf("%d", i)
	}
	if s.Unit == "bytes" {
		return formatBytes(v)
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d%s", int64(v), unitSuffix(s.Unit))
	}
	return fmt.Sprintf("%g%s", v, unitSuffix(s.Unit))
}

func unitSuffix(u string) string {
	if u == "" {
		return ""
	}
	return " " + u
}

func formatBytes(v float64) string {
	abs := math.Abs(v)
	format := func(val float64, unit string) string {
		if val == math.Trunc(val) {
			return fmt.Sprintf("%g %s", val, unit)
		}
		return fmt.Sprintf("%.1f %s", val, unit)
	}
	switch {
	case abs >= 1<<30:
		return format(v/(1<<30), "GB")
	case abs >= 1<<20:
		return format(v/(1<<20), "MB")
	case abs >= 1<<10:
		return format(v/(1<<10), "KB")
	}
	return fmt.Sprintf("%g B", v)
}

// FormatConfig renders the named knobs of a configuration, one per line,
// in the given order (e.g. RF importance order).
func FormatConfig(cat *Catalog, cfg Config, names []string) string {
	out := ""
	for _, n := range names {
		spec, ok := cat.Spec(n)
		if !ok {
			continue
		}
		out += fmt.Sprintf("%-40s = %s\n", n, spec.FormatValue(cfg.Get(n, spec.Default)))
	}
	return out
}
