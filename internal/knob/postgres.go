package knob

// Postgres returns the PostgreSQL 12.4 knob catalog (70 knobs). Memory
// knobs use bytes even where PostgreSQL's native unit is 8 kB pages so the
// engine mapping stays uniform across dialects. The returned catalog is a
// shared immutable instance; callers must not mutate it.
func Postgres() *Catalog {
	pgOnce.Do(func() { pgCatalog = buildPostgres() })
	return pgCatalog
}

func buildPostgres() *Catalog {
	specs := []Spec{
		// --- First-order mechanistic knobs ---
		restart(logKnob("shared_buffers", 16*mb, 64*gb, 128*mb, "bytes", "shared buffer cache size")),
		restart(logKnob("wal_buffers", 64*kb, 1*gb, 16*mb, "bytes", "WAL write buffer")),
		logKnob("max_wal_size", 128*mb, 32*gb, 1*gb, "bytes", "WAL size triggering a checkpoint"),
		logKnob("min_wal_size", 32*mb, 4*gb, 80*mb, "bytes", "WAL recycled floor"),
		floatKnob("checkpoint_completion_target", 0.1, 1.0, 0.5, "", "spread checkpoint writes over this fraction of the interval"),
		intKnob("checkpoint_timeout", 30, 86400, 300, "s", "max time between checkpoints"),
		enumKnob("synchronous_commit", 3, []string{"off", "local", "remote_write", "on"}, "commit durability level"),
		restart(enumKnob("wal_sync_method", 0, []string{"fdatasync", "fsync", "open_datasync", "open_sync"}, "WAL sync method")),
		intKnob("bgwriter_delay", 10, 10000, 200, "ms", "background writer sleep"),
		intKnob("bgwriter_lru_maxpages", 0, 1073741823, 100, "pages", "bgwriter pages per round"),
		floatKnob("bgwriter_lru_multiplier", 0, 10, 2, "", "bgwriter pacing multiplier"),
		intKnob("effective_io_concurrency", 0, 1000, 1, "", "concurrent disk I/O hints"),
		logKnob("work_mem", 64*kb, 4*gb, 4*mb, "bytes", "per-operation sort/hash memory"),
		logKnob("maintenance_work_mem", 1*mb, 16*gb, 64*mb, "bytes", "maintenance operation memory"),
		restart(intKnob("max_connections", 10, 10000, 100, "", "max client connections")),
		logKnob("deadlock_timeout", 1, 100000, 1000, "ms", "deadlock check delay"),
		intKnob("commit_delay", 0, 100000, 0, "µs", "group commit delay"),
		intKnob("commit_siblings", 0, 1000, 5, "", "min concurrent txns for commit_delay"),
		logKnob("effective_cache_size", 8*mb, 256*gb, 4*gb, "bytes", "planner's OS cache estimate"),
		floatKnob("random_page_cost", 0.1, 100, 4.0, "", "planner random I/O cost"),
		floatKnob("seq_page_cost", 0.1, 100, 1.0, "", "planner sequential I/O cost"),
		boolKnob("fsync", 1, "force WAL to disk"),
		boolKnob("full_page_writes", 1, "write full pages after checkpoint"),
		boolKnob("wal_compression", 0, "compress full-page writes"),
		logKnob("temp_buffers", 800*kb, 1*gb, 8*mb, "bytes", "per-session temp table buffers"),
		restart(intKnob("max_worker_processes", 1, 256, 8, "", "background worker pool")),
		intKnob("max_parallel_workers", 0, 256, 8, "", "parallel query worker cap"),
		intKnob("max_parallel_workers_per_gather", 0, 64, 2, "", "workers per Gather node"),
		boolKnob("autovacuum", 1, "autovacuum daemon"),
		intKnob("autovacuum_naptime", 1, 2147483, 60, "s", "autovacuum sleep between rounds"),
		intKnob("autovacuum_vacuum_cost_limit", -1, 10000, -1, "", "autovacuum I/O cost budget"),
		floatKnob("autovacuum_vacuum_scale_factor", 0, 100, 0.2, "", "dead tuple fraction before vacuum"),
		intKnob("vacuum_cost_limit", 1, 10000, 200, "", "vacuum cost budget"),
		intKnob("vacuum_cost_page_dirty", 0, 10000, 20, "", "cost of dirtying a page"),
		intKnob("wal_writer_delay", 1, 10000, 200, "ms", "WAL writer sleep"),
		logKnob("wal_writer_flush_after", 8*kb, 2*gb, 1*mb, "bytes", "WAL flush threshold"),

		// --- Secondary / mostly inert knobs ---
		intKnob("backend_flush_after", 0, 256, 0, "pages", "backend writeback threshold"),
		intKnob("checkpoint_flush_after", 0, 256, 32, "pages", "checkpoint writeback threshold"),
		floatKnob("cpu_index_tuple_cost", 0, 10, 0.005, "", "planner index tuple cost"),
		floatKnob("cpu_operator_cost", 0, 10, 0.0025, "", "planner operator cost"),
		floatKnob("cpu_tuple_cost", 0, 10, 0.01, "", "planner tuple cost"),
		floatKnob("cursor_tuple_fraction", 0, 1, 0.1, "", "cursor rows planner optimizes for"),
		intKnob("default_statistics_target", 1, 10000, 100, "", "ANALYZE histogram buckets"),
		boolKnob("enable_bitmapscan", 1, "planner bitmap scans"),
		boolKnob("enable_hashjoin", 1, "planner hash joins"),
		boolKnob("enable_indexonlyscan", 1, "planner index-only scans"),
		boolKnob("enable_material", 1, "planner materialization"),
		boolKnob("enable_mergejoin", 1, "planner merge joins"),
		boolKnob("enable_nestloop", 1, "planner nested loops"),
		boolKnob("enable_seqscan", 1, "planner sequential scans"),
		boolKnob("enable_sort", 1, "planner explicit sorts"),
		intKnob("from_collapse_limit", 1, 2147483647, 8, "", "subquery flattening limit"),
		boolKnob("geqo", 1, "genetic query optimizer"),
		intKnob("geqo_effort", 1, 10, 5, "", "GEQO planning effort"),
		intKnob("geqo_threshold", 2, 2147483647, 12, "", "FROM items before GEQO"),
		intKnob("join_collapse_limit", 1, 2147483647, 8, "", "join reordering limit"),
		restart(intKnob("max_files_per_process", 25, 2147483647, 1000, "", "fd budget per backend")),
		restart(intKnob("max_locks_per_transaction", 10, 2147483647, 64, "", "lock table sizing")),
		restart(intKnob("max_pred_locks_per_transaction", 10, 2147483647, 64, "", "SSI lock table sizing")),
		intKnob("max_stack_depth", 100, 7*1024, 100, "kB", "server stack depth"),
		restart(intKnob("max_prepared_transactions", 0, 10000, 0, "", "2PC slots")),
		floatKnob("parallel_setup_cost", 0, 1e7, 1000, "", "planner parallel startup cost"),
		floatKnob("parallel_tuple_cost", 0, 100, 0.1, "", "planner parallel tuple cost"),
		intKnob("statement_timeout", 0, 2147483647, 0, "ms", "statement kill timeout"),
		intKnob("tcp_keepalives_idle", 0, 10000, 0, "s", "TCP keepalive idle"),
		intKnob("temp_file_limit", -1, 2147483647, -1, "kB", "temp file budget"),
		intKnob("vacuum_cost_delay", 0, 100, 0, "ms", "vacuum throttle sleep"),
		intKnob("vacuum_cost_page_hit", 0, 10000, 1, "", "vacuum cost of buffer hit"),
		intKnob("vacuum_cost_page_miss", 0, 10000, 10, "", "vacuum cost of buffer miss"),
		intKnob("old_snapshot_threshold", -1, 86400, -1, "min", "snapshot too old threshold"),
	}
	return mustCatalog("postgres", specs)
}

// PostgresTuned65 returns the 65-knob DBA selection for PostgreSQL.
func PostgresTuned65() []string {
	excluded := map[string]bool{
		"max_files_per_process":          true,
		"max_locks_per_transaction":      true,
		"max_pred_locks_per_transaction": true,
		"max_stack_depth":                true,
		"tcp_keepalives_idle":            true,
	}
	cat := Postgres()
	var names []string
	for _, n := range cat.Names() {
		if !excluded[n] {
			names = append(names, n)
		}
	}
	return names
}
