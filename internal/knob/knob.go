// Package knob defines database configuration knobs: the per-dialect knob
// catalogs (what MySQL 5.7 and PostgreSQL 12.4 expose), configurations as
// named value assignments, the tunable search space, and user Rules — the
// personalized restrictions (fixed knobs, narrowed ranges, conditional
// constraints) that HUNTER honors during exploration.
package knob

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind classifies a knob's value domain.
type Kind int

const (
	// Integer knobs take whole-number values in [Min, Max].
	Integer Kind = iota
	// Float knobs take real values in [Min, Max].
	Float
	// Bool knobs take 0 (off) or 1 (on).
	Bool
	// Enum knobs take an index into Spec.Enum.
	Enum
)

func (k Kind) String() string {
	switch k {
	case Integer:
		return "integer"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Enum:
		return "enum"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Scale selects how a knob's range is traversed when encoded into the
// normalized [0,1] tuning space. Memory and size knobs span several orders
// of magnitude and tune far better on a log scale.
type Scale int

const (
	// Linear maps [0,1] linearly onto [Min, Max].
	Linear Scale = iota
	// Log maps [0,1] exponentially onto [Min, Max] (both must be > 0).
	Log
)

// Spec describes one knob.
type Spec struct {
	Name    string
	Kind    Kind
	Scale   Scale
	Min     float64
	Max     float64
	Default float64
	// Enum lists the symbolic values for Enum knobs; the knob's numeric
	// value is an index into this slice.
	Enum []string
	// RestartRequired marks knobs that only take effect after a database
	// restart; the Actor charges restart time when deploying them.
	RestartRequired bool
	Unit            string
	Description     string
}

// Validate checks internal consistency of the spec.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("knob: empty name")
	}
	switch s.Kind {
	case Bool:
		if s.Min != 0 || s.Max != 1 {
			return fmt.Errorf("knob %s: bool must span [0,1]", s.Name)
		}
	case Enum:
		if len(s.Enum) < 2 {
			return fmt.Errorf("knob %s: enum needs >=2 values", s.Name)
		}
		if s.Min != 0 || s.Max != float64(len(s.Enum)-1) {
			return fmt.Errorf("knob %s: enum range must be [0,%d]", s.Name, len(s.Enum)-1)
		}
	default:
		if s.Min >= s.Max {
			return fmt.Errorf("knob %s: min %g >= max %g", s.Name, s.Min, s.Max)
		}
	}
	if s.Default < s.Min || s.Default > s.Max {
		return fmt.Errorf("knob %s: default %g outside [%g,%g]", s.Name, s.Default, s.Min, s.Max)
	}
	if s.Scale == Log && s.Min <= 0 {
		return fmt.Errorf("knob %s: log scale requires positive min", s.Name)
	}
	return nil
}

// Clamp snaps v into the knob's legal domain, rounding Integer/Bool/Enum
// knobs to whole values.
func (s *Spec) Clamp(v float64) float64 {
	if math.IsNaN(v) {
		return s.Default
	}
	if v < s.Min {
		v = s.Min
	}
	if v > s.Max {
		v = s.Max
	}
	if s.Kind != Float {
		v = math.Round(v)
	}
	return v
}

// Catalog is an ordered, named collection of knob specs for one database
// dialect.
type Catalog struct {
	Dialect string
	specs   []Spec
	index   map[string]int
}

// NewCatalog builds a catalog, validating every spec and rejecting
// duplicate names.
func NewCatalog(dialect string, specs []Spec) (*Catalog, error) {
	c := &Catalog{Dialect: dialect, specs: specs, index: make(map[string]int, len(specs))}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
		if _, dup := c.index[specs[i].Name]; dup {
			return nil, fmt.Errorf("knob: duplicate %q in %s catalog", specs[i].Name, dialect)
		}
		c.index[specs[i].Name] = i
	}
	return c, nil
}

// mustCatalog is used for the built-in catalogs, which are validated by
// tests as well.
func mustCatalog(dialect string, specs []Spec) *Catalog {
	c, err := NewCatalog(dialect, specs)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of knobs.
func (c *Catalog) Len() int { return len(c.specs) }

// Specs returns the specs in catalog order. Callers must not mutate.
func (c *Catalog) Specs() []Spec { return c.specs }

// Spec returns the spec for name.
func (c *Catalog) Spec(name string) (*Spec, bool) {
	i, ok := c.index[name]
	if !ok {
		return nil, false
	}
	return &c.specs[i], true
}

// Names returns all knob names in catalog order.
func (c *Catalog) Names() []string {
	out := make([]string, len(c.specs))
	for i := range c.specs {
		out[i] = c.specs[i].Name
	}
	return out
}

// Defaults returns the catalog's default configuration.
func (c *Catalog) Defaults() Config {
	cfg := make(Config, len(c.specs))
	for i := range c.specs {
		cfg[c.specs[i].Name] = c.specs[i].Default
	}
	return cfg
}

// Config is a full assignment of values to knobs, keyed by knob name.
// Values for Bool and Enum knobs are stored as their numeric encoding.
type Config map[string]float64

// Clone returns a copy of the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Get returns the value for name, falling back to def when absent.
func (c Config) Get(name string, def float64) float64 {
	if v, ok := c[name]; ok {
		return v
	}
	return def
}

// Key returns a stable string identity for the configuration, used for
// deduplication in shared pools and for matching in the model-reuse module.
func (c Config) Key() string {
	names := make([]string, 0, len(c))
	for k := range c {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%s=%.6g;", k, c[k])
	}
	return b.String()
}

// RequiresRestart reports whether switching from old to new touches any
// restart-required knob in the catalog.
func RequiresRestart(cat *Catalog, old, new Config) bool {
	for i := range cat.specs {
		s := &cat.specs[i]
		if !s.RestartRequired {
			continue
		}
		if old.Get(s.Name, s.Default) != new.Get(s.Name, s.Default) {
			return true
		}
	}
	return false
}
