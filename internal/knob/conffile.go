package knob

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WriteConfigFile renders a configuration in the dialect's native
// configuration-file syntax — a `[mysqld]` my.cnf section for MySQL, a
// postgresql.conf fragment for PostgreSQL — so a recommendation can be
// applied to a real server. Only knobs present in cfg and known to the
// catalog are emitted, in sorted order.
func WriteConfigFile(w io.Writer, cat *Catalog, cfg Config) error {
	names := make([]string, 0, len(cfg))
	for name := range cfg {
		if _, ok := cat.Spec(name); ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	mysql := cat.Dialect == "mysql"
	if mysql {
		if _, err := fmt.Fprintln(w, "[mysqld]"); err != nil {
			return err
		}
	}
	for _, name := range names {
		spec, _ := cat.Spec(name)
		v := spec.Clamp(cfg[name])
		val := confValue(spec, v, mysql)
		var err error
		if mysql {
			_, err = fmt.Fprintf(w, "%s = %s\n", name, val)
		} else {
			_, err = fmt.Fprintf(w, "%s = %s\n", name, pgQuote(spec, val))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// confValue renders a knob value in configuration-file syntax.
func confValue(spec *Spec, v float64, mysql bool) string {
	switch spec.Kind {
	case Bool:
		if mysql {
			if v == 1 {
				return "ON"
			}
			return "OFF"
		}
		if v == 1 {
			return "on"
		}
		return "off"
	case Enum:
		i := int(v)
		if i >= 0 && i < len(spec.Enum) {
			return spec.Enum[i]
		}
		return fmt.Sprintf("%d", i)
	}
	if spec.Unit == "bytes" {
		// Servers accept K/M/G suffixes; emit the largest exact one.
		for _, u := range []struct {
			f float64
			s string
		}{{1 << 30, "G"}, {1 << 20, "M"}, {1 << 10, "K"}} {
			if v >= u.f && math.Mod(v, u.f) == 0 {
				return fmt.Sprintf("%d%s", int64(v/u.f), u.s)
			}
		}
		return fmt.Sprintf("%d", int64(v))
	}
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// pgQuote quotes values that postgresql.conf needs quoted.
func pgQuote(spec *Spec, val string) string {
	if spec.Kind == Enum || strings.ContainsAny(val, " ") {
		return "'" + val + "'"
	}
	return val
}
