package knob

import (
	"fmt"
	"math"
)

// Space is the tunable search space: an ordered subset of a catalog's knobs
// together with their effective bounds (after user Rules narrow them) and a
// base configuration holding every non-tuned knob at its fixed or default
// value.
//
// Learning algorithms see the space as the hypercube [0,1]^Dim; Decode maps
// a point back to a full Config.
type Space struct {
	cat   *Catalog
	names []string
	specs []*Spec
	lo    []float64 // effective lower bound in native units
	hi    []float64 // effective upper bound in native units
	base  Config
	rules *Rules
}

// NewSpace builds a space over the named knobs of cat, honoring rules.
// Knobs fixed by the rules are removed from the tunable dimensions and
// pinned in the base configuration. A nil rules means "no restrictions".
func NewSpace(cat *Catalog, names []string, rules *Rules) (*Space, error) {
	if rules == nil {
		rules = &Rules{}
	}
	s := &Space{cat: cat, base: cat.Defaults(), rules: rules}
	for name, v := range rules.Fixed {
		spec, ok := cat.Spec(name)
		if !ok {
			return nil, fmt.Errorf("knob: rule fixes unknown knob %q", name)
		}
		s.base[name] = spec.Clamp(v)
	}
	for _, name := range names {
		spec, ok := cat.Spec(name)
		if !ok {
			return nil, fmt.Errorf("knob: unknown knob %q", name)
		}
		if _, fixed := rules.Fixed[name]; fixed {
			continue // pinned, not tunable
		}
		lo, hi := spec.Min, spec.Max
		if r, ok := rules.Ranges[name]; ok {
			if r[0] > r[1] {
				return nil, fmt.Errorf("knob: rule range for %q inverted [%g,%g]", name, r[0], r[1])
			}
			lo = math.Max(lo, r[0])
			hi = math.Min(hi, r[1])
			if lo > hi {
				return nil, fmt.Errorf("knob: rule range for %q excludes legal domain", name)
			}
		}
		s.names = append(s.names, name)
		s.specs = append(s.specs, spec)
		s.lo = append(s.lo, lo)
		s.hi = append(s.hi, hi)
	}
	if len(s.names) == 0 {
		return nil, fmt.Errorf("knob: space has no tunable knobs")
	}
	return s, nil
}

// Dim returns the number of tunable dimensions.
func (s *Space) Dim() int { return len(s.names) }

// Names returns the tunable knob names in dimension order.
func (s *Space) Names() []string { return s.names }

// Catalog returns the catalog the space was built from.
func (s *Space) Catalog() *Catalog { return s.cat }

// Rules returns the rules the space enforces.
func (s *Space) Rules() *Rules { return s.rules }

// Base returns the non-tuned baseline configuration (defaults plus fixed
// knobs). Callers must not mutate the returned map.
func (s *Space) Base() Config { return s.base }

// Narrow returns a new space restricted to the given subset of this
// space's knobs (used after Random-Forest sifting selects the top-k).
func (s *Space) Narrow(names []string) (*Space, error) {
	return NewSpace(s.cat, names, s.rules)
}

// WithBase returns a copy of the space whose non-tunable knobs are pinned
// to cfg's values instead of catalog defaults (rule-fixed knobs keep their
// rule values). Narrowing a space onto the incumbent configuration this
// way guarantees the reduced search can never lose fitness the wider
// search already achieved on a knob the sifting dropped.
func (s *Space) WithBase(cfg Config) *Space {
	out := *s
	out.base = s.base.Clone()
	tuned := make(map[string]bool, len(s.names))
	for _, n := range s.names {
		tuned[n] = true
	}
	for name, v := range cfg {
		if tuned[name] {
			continue
		}
		if _, fixed := s.rules.Fixed[name]; fixed {
			continue
		}
		if spec, ok := s.cat.Spec(name); ok {
			out.base[name] = spec.Clamp(v)
		}
	}
	return &out
}

// denorm maps u ∈ [0,1] to dimension i's native value.
func (s *Space) denorm(i int, u float64) float64 {
	u = math.Min(1, math.Max(0, u))
	lo, hi := s.lo[i], s.hi[i]
	var v float64
	if s.specs[i].Scale == Log {
		v = lo * math.Pow(hi/lo, u)
	} else {
		v = lo + u*(hi-lo)
	}
	if s.specs[i].Kind != Float {
		v = math.Round(v)
	}
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// norm maps dimension i's native value to [0,1].
func (s *Space) norm(i int, v float64) float64 {
	lo, hi := s.lo[i], s.hi[i]
	if hi == lo {
		return 0
	}
	var u float64
	if s.specs[i].Scale == Log {
		u = math.Log(v/lo) / math.Log(hi/lo)
	} else {
		u = (v - lo) / (hi - lo)
	}
	return math.Min(1, math.Max(0, u))
}

// Decode maps a normalized point x ∈ [0,1]^Dim to a full configuration,
// then enforces the rules' conditional constraints.
func (s *Space) Decode(x []float64) Config {
	if len(x) != s.Dim() {
		panic(fmt.Sprintf("knob: decode dimension %d != %d", len(x), s.Dim()))
	}
	cfg := s.base.Clone()
	for i, u := range x {
		cfg[s.names[i]] = s.denorm(i, u)
	}
	s.rules.EnforceConditionals(s.cat, cfg)
	return cfg
}

// Encode maps a configuration to its normalized point. Values outside the
// effective bounds are clipped.
func (s *Space) Encode(cfg Config) []float64 {
	x := make([]float64, s.Dim())
	for i, name := range s.names {
		x[i] = s.norm(i, cfg.Get(name, s.specs[i].Default))
	}
	return x
}

// randSource is the subset of sim.RNG the space needs; declared locally to
// keep knob free of simulation imports.
type randSource interface{ Float64() float64 }

// Random returns a uniformly random normalized point.
func (s *Space) Random(r randSource) []float64 {
	x := make([]float64, s.Dim())
	for i := range x {
		x[i] = r.Float64()
	}
	return x
}

// DefaultPoint returns the normalized encoding of the default config.
func (s *Space) DefaultPoint() []float64 { return s.Encode(s.cat.Defaults()) }
