package knob

// Built-in knob catalogs. The experiments in the paper initialize 65 knobs
// selected by a senior DBA out of a 70-knob catalog (Figure 8 ranks all
// 70); we reproduce both sets. Sizes are in bytes, times in milliseconds
// unless the Unit says otherwise.

import "sync"

// The built-in catalogs are immutable after construction, so they are
// built once and shared: every engine Configure resolves ~40 knobs
// through the catalog, which made per-call construction the dominant
// allocation on the deploy path.
var (
	mysqlOnce    sync.Once
	mysqlCatalog *Catalog
	pgOnce       sync.Once
	pgCatalog    *Catalog
)

const (
	kb = 1024
	mb = 1024 * kb
	gb = 1024 * mb
)

func intKnob(name string, min, max, def float64, unit, desc string) Spec {
	return Spec{Name: name, Kind: Integer, Min: min, Max: max, Default: def, Unit: unit, Description: desc}
}

func logKnob(name string, min, max, def float64, unit, desc string) Spec {
	return Spec{Name: name, Kind: Integer, Scale: Log, Min: min, Max: max, Default: def, Unit: unit, Description: desc}
}

func floatKnob(name string, min, max, def float64, unit, desc string) Spec {
	return Spec{Name: name, Kind: Float, Min: min, Max: max, Default: def, Unit: unit, Description: desc}
}

func boolKnob(name string, def float64, desc string) Spec {
	return Spec{Name: name, Kind: Bool, Min: 0, Max: 1, Default: def, Description: desc}
}

func enumKnob(name string, def float64, vals []string, desc string) Spec {
	return Spec{Name: name, Kind: Enum, Min: 0, Max: float64(len(vals) - 1), Default: def, Enum: vals, Description: desc}
}

func restart(s Spec) Spec {
	s.RestartRequired = true
	return s
}

// MySQL returns the MySQL 5.7 knob catalog (70 knobs). The returned
// catalog is a shared immutable instance; callers must not mutate it.
func MySQL() *Catalog {
	mysqlOnce.Do(func() { mysqlCatalog = buildMySQL() })
	return mysqlCatalog
}

func buildMySQL() *Catalog {
	specs := []Spec{
		// --- Knobs with first-order mechanistic effect in the engine ---
		restart(logKnob("innodb_buffer_pool_size", 32*mb, 64*gb, 128*mb, "bytes", "size of the InnoDB buffer pool")),
		restart(intKnob("innodb_buffer_pool_instances", 1, 64, 8, "", "number of buffer pool instances")),
		restart(logKnob("innodb_log_file_size", 32*mb, 8*gb, 48*mb, "bytes", "size of each redo log file")),
		logKnob("innodb_log_buffer_size", 1*mb, 256*mb, 16*mb, "bytes", "redo log buffer size"),
		intKnob("innodb_flush_log_at_trx_commit", 0, 2, 1, "", "redo durability: 0=once/sec, 1=fsync each commit, 2=write each commit"),
		intKnob("sync_binlog", 0, 1000, 1, "", "binlog fsync interval in commits (0=never)"),
		logKnob("innodb_io_capacity", 100, 40000, 200, "iops", "background flush I/O budget"),
		logKnob("innodb_io_capacity_max", 200, 80000, 2000, "iops", "burst flush I/O budget"),
		restart(intKnob("innodb_read_io_threads", 1, 64, 4, "", "background read I/O threads")),
		restart(intKnob("innodb_write_io_threads", 1, 64, 4, "", "background write I/O threads")),
		intKnob("innodb_thread_concurrency", 0, 1000, 0, "", "concurrent InnoDB thread limit (0=unlimited)"),
		intKnob("thread_cache_size", 0, 16384, 9, "", "cached service threads"),
		intKnob("max_connections", 100, 100000, 151, "", "maximum client connections"),
		intKnob("innodb_lock_wait_timeout", 1, 1073741824, 50, "s", "row lock wait timeout"),
		restart(enumKnob("innodb_flush_method", 0, []string{"fsync", "O_DSYNC", "O_DIRECT"}, "data file flush method")),
		floatKnob("innodb_max_dirty_pages_pct", 0, 99.99, 75, "%", "dirty page high-water mark"),
		boolKnob("innodb_adaptive_hash_index", 1, "adaptive hash index on B-tree pages"),
		enumKnob("innodb_change_buffering", 5, []string{"none", "inserts", "deletes", "changes", "purges", "all"}, "secondary index change buffering"),
		intKnob("innodb_old_blocks_pct", 5, 95, 37, "%", "buffer pool midpoint insertion position"),
		intKnob("innodb_old_blocks_time", 0, 10000, 1000, "ms", "time before young promotion"),
		logKnob("table_open_cache", 1, 524288, 2000, "", "open table cache entries"),
		restart(intKnob("innodb_purge_threads", 1, 32, 4, "", "purge threads")),
		restart(intKnob("innodb_page_cleaners", 1, 64, 4, "", "page cleaner threads")),
		boolKnob("innodb_doublewrite", 1, "doublewrite buffer"),
		intKnob("innodb_spin_wait_delay", 0, 6000, 6, "", "mutex spin wait delay"),
		logKnob("tmp_table_size", 1*mb, 2*gb, 16*mb, "bytes", "in-memory temp table limit"),
		logKnob("sort_buffer_size", 32*kb, 256*mb, 256*kb, "bytes", "per-session sort buffer"),
		logKnob("join_buffer_size", 128, 1*gb, 256*kb, "bytes", "per-join buffer"),
		restart(logKnob("query_cache_size", 1, 256*mb, 1, "bytes", "query cache size (1≈disabled)")),
		restart(enumKnob("thread_handling", 0, []string{"one-thread-per-connection", "pool-of-threads"}, "connection thread model")),
		intKnob("innodb_lru_scan_depth", 100, 16384, 1024, "pages", "LRU scan depth per pool instance"),
		restart(intKnob("innodb_sync_array_size", 1, 1024, 1, "", "sync wait array partitions")),
		boolKnob("innodb_flush_neighbors", 1, "flush neighbor pages with a dirty page"),
		intKnob("innodb_adaptive_flushing_lwm", 0, 70, 10, "%", "redo low-water mark for adaptive flushing"),
		boolKnob("innodb_adaptive_flushing", 1, "adaptive flush rate control"),
		logKnob("binlog_cache_size", 4*kb, 64*mb, 32*kb, "bytes", "per-session binlog cache"),

		// --- Secondary / mostly inert knobs (realistic catalogs contain
		// many knobs with little workload impact; RF sifting must discover
		// this, Figure 8) ---
		logKnob("max_heap_table_size", 16*kb, 2*gb, 16*mb, "bytes", "MEMORY table size limit"),
		logKnob("read_buffer_size", 8*kb, 128*mb, 128*kb, "bytes", "sequential scan buffer"),
		logKnob("read_rnd_buffer_size", 1*kb, 64*mb, 256*kb, "bytes", "random read buffer"),
		logKnob("bulk_insert_buffer_size", 1, 1*gb, 8*mb, "bytes", "bulk insert tree cache"),
		intKnob("innodb_autoinc_lock_mode", 0, 2, 1, "", "auto-increment locking mode"),
		restart(boolKnob("innodb_file_per_table", 1, "one tablespace per table")),
		boolKnob("innodb_random_read_ahead", 0, "random read-ahead"),
		intKnob("innodb_read_ahead_threshold", 0, 64, 56, "pages", "linear read-ahead trigger"),
		restart(intKnob("innodb_rollback_segments", 1, 128, 128, "", "rollback segments")),
		intKnob("innodb_sync_spin_loops", 0, 4000, 30, "", "spin loops before sync wait"),
		intKnob("innodb_concurrency_tickets", 1, 1073741824, 5000, "", "tickets per entering thread"),
		intKnob("innodb_commit_concurrency", 0, 1000, 0, "", "concurrent committing threads"),
		restart(logKnob("innodb_ft_cache_size", 1600000, 80000000, 8000000, "bytes", "full-text index cache")),
		restart(logKnob("innodb_open_files", 10, 1000000, 2000, "", "open .ibd file limit")),
		intKnob("innodb_purge_batch_size", 1, 5000, 300, "", "purge batch size"),
		intKnob("innodb_replication_delay", 0, 10000, 0, "ms", "replica thread delay"),
		intKnob("innodb_stats_persistent_sample_pages", 1, 100000, 20, "pages", "persistent stats sample"),
		intKnob("innodb_stats_transient_sample_pages", 1, 100000, 8, "pages", "transient stats sample"),
		boolKnob("innodb_table_locks", 1, "honor LOCK TABLES"),
		intKnob("innodb_thread_sleep_delay", 0, 1000000, 10000, "µs", "sleep before joining queue"),
		intKnob("interactive_timeout", 1, 31536000, 28800, "s", "interactive client timeout"),
		logKnob("key_buffer_size", 8, 4*gb, 8*mb, "bytes", "MyISAM key cache"),
		floatKnob("long_query_time", 0, 3600, 10, "s", "slow query threshold"),
		boolKnob("low_priority_updates", 0, "deprioritize writes"),
		logKnob("max_allowed_packet", 1*kb, 1*gb, 4*mb, "bytes", "max packet size"),
		logKnob("max_binlog_size", 4*kb, 1*gb, 1*gb, "bytes", "binlog rotation size"),
		intKnob("max_prepared_stmt_count", 0, 1048576, 16382, "", "prepared statement limit"),
		logKnob("max_write_lock_count", 1, 1073741824, 1073741824, "", "writes before reads proceed"),
		logKnob("net_buffer_length", 1*kb, 1*mb, 16*kb, "bytes", "connection buffer start size"),
		intKnob("net_retry_count", 1, 1000000, 10, "", "network retry count"),
		intKnob("open_files_limit", 0, 1000000, 5000, "", "OS file descriptor budget"),
		logKnob("preload_buffer_size", 1*kb, 1*gb, 32*kb, "bytes", "index preload buffer"),
		intKnob("query_prealloc_size", 8192, 1048576, 8192, "bytes", "statement parse prealloc"),
		intKnob("table_definition_cache", 400, 524288, 1400, "", "table definition cache"),
	}
	return mustCatalog("mysql", specs)
}

// MySQLTuned65 returns the 65 knobs a senior DBA initializes for tuning
// (the experiment setting of §6), i.e. the catalog minus five knobs DBAs
// keep hands-off in production.
func MySQLTuned65() []string {
	excluded := map[string]bool{
		"innodb_file_per_table":    true,
		"max_allowed_packet":       true,
		"interactive_timeout":      true,
		"open_files_limit":         true,
		"innodb_replication_delay": true,
	}
	cat := MySQL()
	var names []string
	for _, n := range cat.Names() {
		if !excluded[n] {
			names = append(names, n)
		}
	}
	return names
}
