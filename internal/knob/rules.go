package knob

import (
	"fmt"
)

// Op is a comparison operator in a conditional rule.
type Op int

const (
	// OpGT fires when the observed value is strictly greater.
	OpGT Op = iota
	// OpLT fires when the observed value is strictly smaller.
	OpLT
	// OpEQ fires on exact equality.
	OpEQ
)

func (o Op) String() string {
	switch o {
	case OpGT:
		return ">"
	case OpLT:
		return "<"
	case OpEQ:
		return "="
	}
	return "?"
}

// Conditional expresses rules of the form the paper gives as an example:
// "thread_handling = pool-of-threads if connections > 100". When the value
// of If compares true against Value, knob Then is pinned to ThenValue.
type Conditional struct {
	If        string
	Op        Op
	Value     float64
	Then      string
	ThenValue float64
}

// Rules are a user's personalized tuning restrictions (§2.1 "Rules"): which
// knobs are fixed, how the remaining ranges are narrowed, conditional
// constraints, and the throughput/latency preference α of Eq. 1.
type Rules struct {
	// Alpha ∈ [0,1] weights throughput against latency in the fitness and
	// reward functions. Zero value is replaced by the paper default 0.5
	// through EffectiveAlpha.
	Alpha float64
	// AlphaSet marks that Alpha was set explicitly (so Alpha=0, i.e.
	// pure-latency tuning, is expressible).
	AlphaSet bool
	// Fixed pins knobs to exact values and removes them from the space.
	Fixed map[string]float64
	// Ranges narrows the tunable interval of knobs.
	Ranges map[string][2]float64
	// Conditionals are enforced on every decoded configuration.
	Conditionals []Conditional
	// Tail99 switches the latency term of Eq. 1 from 95th- to
	// 99th-percentile latency — the sensitive-queries extension the paper
	// discusses in §5 ("focusing on optimizing tail-99% latency instead
	// of tail-95% latency").
	Tail99 bool
}

// NewRules returns an empty, unrestricted rule set.
func NewRules() *Rules {
	return &Rules{Fixed: map[string]float64{}, Ranges: map[string][2]float64{}}
}

// Fix pins a knob to an exact value.
func (r *Rules) Fix(name string, v float64) *Rules {
	if r.Fixed == nil {
		r.Fixed = map[string]float64{}
	}
	r.Fixed[name] = v
	return r
}

// Range narrows the tunable interval of a knob.
func (r *Rules) Range(name string, lo, hi float64) *Rules {
	if r.Ranges == nil {
		r.Ranges = map[string][2]float64{}
	}
	r.Ranges[name] = [2]float64{lo, hi}
	return r
}

// When adds a conditional constraint.
func (r *Rules) When(ifKnob string, op Op, value float64, thenKnob string, thenValue float64) *Rules {
	r.Conditionals = append(r.Conditionals, Conditional{If: ifKnob, Op: op, Value: value, Then: thenKnob, ThenValue: thenValue})
	return r
}

// SetAlpha sets the throughput/latency preference.
func (r *Rules) SetAlpha(a float64) *Rules {
	r.Alpha = a
	r.AlphaSet = true
	return r
}

// OptimizeTail99 makes the tuning objective use 99th-percentile latency.
func (r *Rules) OptimizeTail99() *Rules {
	r.Tail99 = true
	return r
}

// EffectiveAlpha returns the α to use in Eq. 1 (paper default 0.5).
func (r *Rules) EffectiveAlpha() float64 {
	if r == nil || !r.AlphaSet {
		return 0.5
	}
	if r.Alpha < 0 {
		return 0
	}
	if r.Alpha > 1 {
		return 1
	}
	return r.Alpha
}

// EnforceConditionals applies every conditional rule to cfg in place,
// clamping pinned values to their spec domain.
func (r *Rules) EnforceConditionals(cat *Catalog, cfg Config) {
	if r == nil {
		return
	}
	for _, c := range r.Conditionals {
		ifSpec, ok := cat.Spec(c.If)
		if !ok {
			continue
		}
		v := cfg.Get(c.If, ifSpec.Default)
		fire := false
		switch c.Op {
		case OpGT:
			fire = v > c.Value
		case OpLT:
			fire = v < c.Value
		case OpEQ:
			fire = v == c.Value
		}
		if !fire {
			continue
		}
		if thenSpec, ok := cat.Spec(c.Then); ok {
			cfg[c.Then] = thenSpec.Clamp(c.ThenValue)
		}
	}
}

// Validate checks that every referenced knob exists in the catalog.
func (r *Rules) Validate(cat *Catalog) error {
	if r == nil {
		return nil
	}
	for name := range r.Fixed {
		if _, ok := cat.Spec(name); !ok {
			return fmt.Errorf("rules: fixed knob %q not in %s catalog", name, cat.Dialect)
		}
	}
	for name := range r.Ranges {
		if _, ok := cat.Spec(name); !ok {
			return fmt.Errorf("rules: ranged knob %q not in %s catalog", name, cat.Dialect)
		}
	}
	for _, c := range r.Conditionals {
		if _, ok := cat.Spec(c.If); !ok {
			return fmt.Errorf("rules: conditional references unknown knob %q", c.If)
		}
		if _, ok := cat.Spec(c.Then); !ok {
			return fmt.Errorf("rules: conditional pins unknown knob %q", c.Then)
		}
	}
	return nil
}

// Violations reports every way cfg violates the rules; an empty slice means
// the configuration is admissible. Used by tests and by the Actor before
// deploying to the user's instance.
func (r *Rules) Violations(cat *Catalog, cfg Config) []string {
	if r == nil {
		return nil
	}
	var out []string
	for name, want := range r.Fixed {
		spec, ok := cat.Spec(name)
		if !ok {
			continue
		}
		if got := cfg.Get(name, spec.Default); got != spec.Clamp(want) {
			out = append(out, fmt.Sprintf("%s fixed to %g but is %g", name, spec.Clamp(want), got))
		}
	}
	for name, rg := range r.Ranges {
		spec, ok := cat.Spec(name)
		if !ok {
			continue
		}
		got := cfg.Get(name, spec.Default)
		if got < rg[0] || got > rg[1] {
			out = append(out, fmt.Sprintf("%s=%g outside rule range [%g,%g]", name, got, rg[0], rg[1]))
		}
	}
	cloned := cfg.Clone()
	r.EnforceConditionals(cat, cloned)
	for _, c := range r.Conditionals {
		if cloned.Get(c.Then, 0) != cfg.Get(c.Then, cloned.Get(c.Then, 0)) {
			out = append(out, fmt.Sprintf("conditional %s %s %g => %s=%g violated", c.If, c.Op, c.Value, c.Then, c.ThenValue))
		}
	}
	return out
}
