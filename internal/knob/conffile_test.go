package knob

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteConfigFileMySQL(t *testing.T) {
	cat := MySQL()
	cfg := Config{
		"innodb_buffer_pool_size":        16 << 30,
		"innodb_flush_log_at_trx_commit": 2,
		"innodb_flush_method":            2,
		"innodb_doublewrite":             0,
		"not_a_knob":                     1,
	}
	var buf bytes.Buffer
	if err := WriteConfigFile(&buf, cat, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"[mysqld]",
		"innodb_buffer_pool_size = 16G",
		"innodb_flush_log_at_trx_commit = 2",
		"innodb_flush_method = O_DIRECT",
		"innodb_doublewrite = OFF",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "not_a_knob") {
		t.Error("unknown knobs must be skipped")
	}
}

func TestWriteConfigFilePostgres(t *testing.T) {
	cat := Postgres()
	cfg := Config{
		"shared_buffers":     8 << 30,
		"synchronous_commit": 0,
		"autovacuum":         1,
		"wal_sync_method":    2,
		"random_page_cost":   1.1,
		"checkpoint_timeout": 300,
	}
	var buf bytes.Buffer
	if err := WriteConfigFile(&buf, cat, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "[mysqld]") {
		t.Error("postgres fragment must not have a mysqld section")
	}
	for _, want := range []string{
		"shared_buffers = 8G",
		"synchronous_commit = 'off'",
		"autovacuum = on",
		"wal_sync_method = 'open_datasync'",
		"random_page_cost = 1.1",
		"checkpoint_timeout = 300",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteConfigFileSortedAndClamped(t *testing.T) {
	cat := MySQL()
	cfg := Config{
		"sync_binlog":        5000, // above max 1000: clamp
		"innodb_io_capacity": 200,
	}
	var buf bytes.Buffer
	if err := WriteConfigFile(&buf, cat, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sync_binlog = 1000") {
		t.Errorf("value not clamped:\n%s", out)
	}
	if strings.Index(out, "innodb_io_capacity") > strings.Index(out, "sync_binlog") {
		t.Error("knobs must be emitted in sorted order")
	}
}
