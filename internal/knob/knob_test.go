package knob

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/hunter-cdb/hunter/internal/sim"
)

func TestBuiltinCatalogsValid(t *testing.T) {
	for _, cat := range []*Catalog{MySQL(), Postgres()} {
		if cat.Len() != 70 {
			t.Errorf("%s catalog has %d knobs, want 70", cat.Dialect, cat.Len())
		}
		seen := map[string]bool{}
		for _, s := range cat.Specs() {
			if err := s.Validate(); err != nil {
				t.Errorf("%s: %v", cat.Dialect, err)
			}
			if seen[s.Name] {
				t.Errorf("%s: duplicate knob %s", cat.Dialect, s.Name)
			}
			seen[s.Name] = true
		}
	}
}

func TestTuned65Selections(t *testing.T) {
	if n := len(MySQLTuned65()); n != 65 {
		t.Errorf("MySQL tuned set has %d knobs, want 65", n)
	}
	if n := len(PostgresTuned65()); n != 65 {
		t.Errorf("Postgres tuned set has %d knobs, want 65", n)
	}
	cat := MySQL()
	for _, n := range MySQLTuned65() {
		if _, ok := cat.Spec(n); !ok {
			t.Errorf("tuned knob %s not in catalog", n)
		}
	}
}

func TestDefaultsWithinRange(t *testing.T) {
	for _, cat := range []*Catalog{MySQL(), Postgres()} {
		def := cat.Defaults()
		for _, s := range cat.Specs() {
			v := def[s.Name]
			if v < s.Min || v > s.Max {
				t.Errorf("%s default %g outside [%g,%g]", s.Name, v, s.Min, s.Max)
			}
		}
	}
}

func TestSpecClampProperty(t *testing.T) {
	cat := MySQL()
	f := func(raw float64, pick uint8) bool {
		s := cat.Specs()[int(pick)%cat.Len()]
		v := s.Clamp(raw)
		if v < s.Min || v > s.Max {
			return false
		}
		if s.Kind != Float && v != math.Round(v) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClampNaNFallsBackToDefault(t *testing.T) {
	s := &Spec{Name: "x", Kind: Float, Min: 0, Max: 10, Default: 3}
	if got := s.Clamp(math.NaN()); got != 3 {
		t.Fatalf("NaN clamp = %v, want default", got)
	}
}

func TestNewCatalogRejectsDuplicates(t *testing.T) {
	_, err := NewCatalog("x", []Spec{
		{Name: "a", Kind: Float, Min: 0, Max: 1, Default: 0},
		{Name: "a", Kind: Float, Min: 0, Max: 1, Default: 0},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("expected duplicate error, got %v", err)
	}
}

func TestSpecValidateErrors(t *testing.T) {
	bad := []Spec{
		{Name: "", Kind: Float, Min: 0, Max: 1, Default: 0},
		{Name: "x", Kind: Float, Min: 1, Max: 0, Default: 0.5},
		{Name: "x", Kind: Float, Min: 0, Max: 1, Default: 2},
		{Name: "x", Kind: Bool, Min: 0, Max: 2, Default: 0},
		{Name: "x", Kind: Enum, Min: 0, Max: 1, Default: 0, Enum: []string{"one"}},
		{Name: "x", Kind: Integer, Scale: Log, Min: 0, Max: 10, Default: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should fail validation", i)
		}
	}
}

func TestConfigCloneAndKey(t *testing.T) {
	c := Config{"a": 1, "b": 2}
	d := c.Clone()
	d["a"] = 9
	if c["a"] != 1 {
		t.Fatal("clone aliases original")
	}
	if c.Key() == d.Key() {
		t.Fatal("different configs share a key")
	}
	if c.Key() != (Config{"b": 2, "a": 1}).Key() {
		t.Fatal("key must be order-independent")
	}
}

func TestRequiresRestart(t *testing.T) {
	cat := MySQL()
	def := cat.Defaults()
	dyn := def.Clone()
	dyn["innodb_io_capacity"] = 5000 // dynamic knob
	if RequiresRestart(cat, def, dyn) {
		t.Fatal("dynamic knob change should not require restart")
	}
	rst := def.Clone()
	rst["innodb_buffer_pool_size"] = 1 << 30 // restart-required
	if !RequiresRestart(cat, def, rst) {
		t.Fatal("buffer pool change must require restart")
	}
}

func TestSpaceEncodeDecodeRoundTrip(t *testing.T) {
	cat := MySQL()
	space, err := NewSpace(cat, MySQLTuned65(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	for trial := 0; trial < 200; trial++ {
		x := space.Random(rng)
		cfg := space.Decode(x)
		x2 := space.Encode(cfg)
		cfg2 := space.Decode(x2)
		for _, name := range space.Names() {
			if cfg[name] != cfg2[name] {
				t.Fatalf("decode∘encode not idempotent on %s: %v != %v", name, cfg[name], cfg2[name])
			}
		}
	}
}

func TestSpaceDecodeRespectsBounds(t *testing.T) {
	cat := MySQL()
	space, err := NewSpace(cat, MySQLTuned65(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{make([]float64, space.Dim()), onesVec(space.Dim())} {
		cfg := space.Decode(x)
		for _, name := range space.Names() {
			spec, _ := cat.Spec(name)
			v := cfg[name]
			if v < spec.Min || v > spec.Max {
				t.Errorf("%s = %g outside [%g,%g]", name, v, spec.Min, spec.Max)
			}
		}
	}
}

func onesVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestLogScaleMapping(t *testing.T) {
	cat := MySQL()
	space, err := NewSpace(cat, []string{"innodb_buffer_pool_size"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lo := space.Decode([]float64{0})["innodb_buffer_pool_size"]
	mid := space.Decode([]float64{0.5})["innodb_buffer_pool_size"]
	hi := space.Decode([]float64{1})["innodb_buffer_pool_size"]
	spec, _ := cat.Spec("innodb_buffer_pool_size")
	if lo != spec.Min || hi != spec.Max {
		t.Fatalf("endpoints wrong: %g %g", lo, hi)
	}
	// Log scale: midpoint is the geometric mean, far below the arithmetic.
	geo := math.Sqrt(spec.Min * spec.Max)
	if math.Abs(mid-geo)/geo > 0.05 {
		t.Fatalf("log midpoint %g, want ≈ %g", mid, geo)
	}
}

func TestRulesFixRemovesDimension(t *testing.T) {
	cat := MySQL()
	rules := NewRules().Fix("innodb_buffer_pool_size", 2<<30)
	space, err := NewSpace(cat, []string{"innodb_buffer_pool_size", "innodb_io_capacity"}, rules)
	if err != nil {
		t.Fatal(err)
	}
	if space.Dim() != 1 {
		t.Fatalf("dim = %d, want 1", space.Dim())
	}
	cfg := space.Decode([]float64{0.5})
	if cfg["innodb_buffer_pool_size"] != 2<<30 {
		t.Fatalf("fixed knob = %g", cfg["innodb_buffer_pool_size"])
	}
}

func TestRulesRangeNarrows(t *testing.T) {
	cat := MySQL()
	rules := NewRules().Range("innodb_io_capacity", 1000, 2000)
	space, err := NewSpace(cat, []string{"innodb_io_capacity"}, rules)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		v := space.Decode(space.Random(rng))["innodb_io_capacity"]
		if v < 1000 || v > 2000 {
			t.Fatalf("value %g outside rule range", v)
		}
	}
}

func TestRulesConditional(t *testing.T) {
	// The paper's example: thread_handling = pool-of-threads if
	// connections > 100.
	cat := MySQL()
	rules := NewRules().When("max_connections", OpGT, 100, "thread_handling", 1)
	space, err := NewSpace(cat, []string{"max_connections", "thread_handling"}, rules)
	if err != nil {
		t.Fatal(err)
	}
	cfg := space.Decode([]float64{1, 0}) // max connections, thread_handling=0
	if cfg["thread_handling"] != 1 {
		t.Fatalf("conditional not enforced: thread_handling = %g", cfg["thread_handling"])
	}
	cfgLow := space.Decode([]float64{0, 0}) // min connections
	if cfgLow["thread_handling"] != 0 {
		t.Fatalf("conditional fired when it should not")
	}
}

func TestRulesValidateUnknownKnob(t *testing.T) {
	cat := MySQL()
	if err := NewRules().Fix("no_such_knob", 1).Validate(cat); err == nil {
		t.Fatal("expected error for unknown fixed knob")
	}
	if err := NewRules().Range("nope", 0, 1).Validate(cat); err == nil {
		t.Fatal("expected error for unknown ranged knob")
	}
	if err := NewRules().When("nope", OpGT, 0, "thread_handling", 1).Validate(cat); err == nil {
		t.Fatal("expected error for unknown conditional knob")
	}
}

func TestRulesViolations(t *testing.T) {
	cat := MySQL()
	rules := NewRules().Fix("innodb_doublewrite", 0).Range("innodb_io_capacity", 1000, 2000)
	cfg := cat.Defaults()
	cfg["innodb_doublewrite"] = 1
	cfg["innodb_io_capacity"] = 100
	v := rules.Violations(cat, cfg)
	if len(v) != 2 {
		t.Fatalf("want 2 violations, got %v", v)
	}
	ok := cat.Defaults()
	ok["innodb_doublewrite"] = 0
	ok["innodb_io_capacity"] = 1500
	if v := rules.Violations(cat, ok); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestEffectiveAlpha(t *testing.T) {
	if a := (&Rules{}).EffectiveAlpha(); a != 0.5 {
		t.Fatalf("default alpha = %v, want 0.5", a)
	}
	var nilRules *Rules
	if a := nilRules.EffectiveAlpha(); a != 0.5 {
		t.Fatalf("nil rules alpha = %v", a)
	}
	if a := NewRules().SetAlpha(0).EffectiveAlpha(); a != 0 {
		t.Fatalf("explicit zero alpha = %v", a)
	}
	if a := NewRules().SetAlpha(2).EffectiveAlpha(); a != 1 {
		t.Fatalf("alpha should clamp to 1, got %v", a)
	}
}

func TestInvertedRuleRangeRejected(t *testing.T) {
	cat := MySQL()
	rules := NewRules().Range("innodb_io_capacity", 2000, 1000)
	if _, err := NewSpace(cat, []string{"innodb_io_capacity"}, rules); err == nil {
		t.Fatal("inverted range should be rejected")
	}
}

func TestEmptySpaceRejected(t *testing.T) {
	cat := MySQL()
	rules := NewRules().Fix("innodb_io_capacity", 500)
	if _, err := NewSpace(cat, []string{"innodb_io_capacity"}, rules); err == nil {
		t.Fatal("space with all knobs fixed should be rejected")
	}
}

func TestNarrowAndWithBase(t *testing.T) {
	cat := MySQL()
	space, err := NewSpace(cat, MySQLTuned65(), nil)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := space.Narrow([]string{"innodb_buffer_pool_size", "innodb_io_capacity"})
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Dim() != 2 {
		t.Fatalf("narrow dim = %d", narrow.Dim())
	}
	// Plain narrowing pins dropped knobs to defaults.
	cfg := narrow.Decode([]float64{0.5, 0.5})
	if cfg["innodb_flush_log_at_trx_commit"] != 1 {
		t.Fatalf("dropped knob not at default: %g", cfg["innodb_flush_log_at_trx_commit"])
	}
	// WithBase pins them to the incumbent instead.
	best := cat.Defaults()
	best["innodb_flush_log_at_trx_commit"] = 2
	based := narrow.WithBase(best)
	cfg2 := based.Decode([]float64{0.5, 0.5})
	if cfg2["innodb_flush_log_at_trx_commit"] != 2 {
		t.Fatalf("WithBase did not pin incumbent value: %g", cfg2["innodb_flush_log_at_trx_commit"])
	}
	// Tuned dimensions are still live.
	if based.Decode([]float64{0, 0.5})["innodb_buffer_pool_size"] == based.Decode([]float64{1, 0.5})["innodb_buffer_pool_size"] {
		t.Fatal("tuned dimension frozen by WithBase")
	}
}

func TestWithBaseRespectsRuleFixed(t *testing.T) {
	cat := MySQL()
	rules := NewRules().Fix("innodb_doublewrite", 1)
	space, err := NewSpace(cat, []string{"innodb_buffer_pool_size", "innodb_doublewrite"}, rules)
	if err != nil {
		t.Fatal(err)
	}
	base := cat.Defaults()
	base["innodb_doublewrite"] = 0 // tries to override the rule
	cfg := space.WithBase(base).Decode([]float64{0.5})
	if cfg["innodb_doublewrite"] != 1 {
		t.Fatal("WithBase must not override rule-fixed knobs")
	}
}
