package obsv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// StatusSchema stamps /status and /sessions payloads.
const StatusSchema = "hunter-status/v1"

// Server is the introspection HTTP server. It serves read-only views of a
// telemetry recorder and a session registry; either may be nil (the
// corresponding endpoints serve empty views). Construct with NewServer,
// bind with Start, stop with Close.
type Server struct {
	rec *telemetry.Recorder
	reg *Registry

	// pollEvery is the /events poll cadence (tests shorten it).
	pollEvery time.Duration

	ln  net.Listener
	srv *http.Server
}

// NewServer builds a server over a recorder and a registry.
func NewServer(rec *telemetry.Recorder, reg *Registry) *Server {
	return &Server{rec: rec, reg: reg, pollEvery: 250 * time.Millisecond}
}

// Handler returns the server's route table; exported so embedders (the
// future fleet daemon) can mount it under their own mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/sessions", s.handleSessions)
	mux.HandleFunc("/events", s.handleEvents)
	return mux
}

// Start binds addr (host:port; port 0 picks a free one) and serves in a
// background goroutine. It returns the bound address, so callers can log
// the resolved port.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obsv: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `hunter introspection plane
  /metrics   Prometheus-style telemetry exposition
  /status    latest session status (JSON)
  /sessions  all registered sessions (JSON)
  /events    instant-event stream (SSE; ?follow=0 for a JSONL dump)
`)
}

// handleMetrics serves the recorder's text exposition. The exposition is
// rendered into a buffer first (WriteText snapshots under the recorder's
// locks), so a slow client never holds a telemetry lock.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := s.rec.WriteText(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes()) //nolint:errcheck
}

// statusPayload is the JSON envelope of /sessions.
type statusPayload struct {
	Schema   string                `json:"schema"`
	Sessions []tuner.SessionStatus `json:"sessions"`
}

func (s *Server) registrySessions() []tuner.SessionStatus {
	if s.reg == nil {
		return nil
	}
	return s.reg.Sessions()
}

// handleStatus serves the most recently registered session's status — the
// single-session CLI view. 404 until a session registers.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		http.Error(w, "obsv: no session registered yet", http.StatusNotFound)
		return
	}
	if key := r.URL.Query().Get("key"); key != "" {
		st, ok := s.reg.Session(key)
		if !ok {
			http.Error(w, "obsv: no such session", http.StatusNotFound)
			return
		}
		writeJSON(w, st)
		return
	}
	st, ok := s.reg.Latest()
	if !ok {
		http.Error(w, "obsv: no session registered yet", http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

// handleSessions serves every registered session — the fleet view.
func (s *Server) handleSessions(w http.ResponseWriter, _ *http.Request) {
	payload := statusPayload{Schema: StatusSchema, Sessions: s.registrySessions()}
	if payload.Sessions == nil {
		payload.Sessions = []tuner.SessionStatus{}
	}
	writeJSON(w, payload)
}

// handleEvents streams instant events. Default: server-sent events — the
// handler polls Recorder.EventsSince and pushes each new event as one SSE
// message until the client goes away. With ?follow=0 it dumps the events
// recorded so far as JSON lines and closes (the curl-and-pipe-to-jq mode).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	follow := r.URL.Query().Get("follow") != "0"
	if !follow {
		events, _ := s.rec.EventsSince(0)
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, ev := range events {
			enc.Encode(ev) //nolint:errcheck
		}
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "obsv: streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	cursor := 0
	ticker := time.NewTicker(s.pollEvery)
	defer ticker.Stop()
	for {
		events, next := s.rec.EventsSince(cursor)
		cursor = next
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, data)
		}
		if len(events) > 0 {
			fl.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data = append(data, '\n')
	w.Write(data) //nolint:errcheck
}
