package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/tuner"
	"github.com/hunter-cdb/hunter/internal/workload"
)

func TestRegistry(t *testing.T) {
	g := NewRegistry()
	if got := g.Sessions(); len(got) != 0 {
		t.Fatalf("empty registry lists %d sessions", len(got))
	}
	g.PublishStatus(tuner.SessionStatus{}) // no key: dropped
	if got := g.Sessions(); len(got) != 0 {
		t.Fatalf("keyless status was registered")
	}
	g.PublishStatus(tuner.SessionStatus{Key: "a#1", Name: "a", Wave: 1})
	g.PublishStatus(tuner.SessionStatus{Key: "b#2", Name: "b", Wave: 5})
	g.PublishStatus(tuner.SessionStatus{Key: "a#1", Name: "a", Wave: 3}) // update in place
	got := g.Sessions()
	if len(got) != 2 {
		t.Fatalf("got %d sessions, want 2", len(got))
	}
	if got[0].Key != "a#1" || got[0].Wave != 3 || got[1].Key != "b#2" {
		t.Fatalf("registry order/update wrong: %+v", got)
	}
	st, ok := g.Session("b#2")
	if !ok || st.Wave != 5 {
		t.Fatalf("lookup wrong: %+v %v", st, ok)
	}
	g.PublishStatus(tuner.SessionStatus{Key: "b#2", Name: "b", Done: true})
	act := g.Active()
	if len(act) != 1 || act[0].Key != "a#1" {
		t.Fatalf("active view wrong: %+v", act)
	}
}

func newTestServer(t *testing.T) (*Server, *telemetry.Recorder, *Registry) {
	t.Helper()
	rec := telemetry.New()
	reg := NewRegistry()
	s := NewServer(rec, reg)
	s.pollEvery = 5 * time.Millisecond
	return s, rec, reg
}

func TestEndpoints(t *testing.T) {
	s, rec, reg := newTestServer(t)
	rec.Counter("tuner.stress_waves").Add(7)
	rec.Histogram("tuner.wave_seconds").Observe(3 * time.Second)
	st := rec.Session("mysql/tpcc", nil)
	st.Event("best_improved", telemetry.A("fitness", 0.25))
	reg.PublishStatus(tuner.SessionStatus{Key: "mysql/tpcc#1", Name: "mysql/tpcc", Phase: "sample_factory", Wave: 4})

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path served %d, want 404", code)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{"tuner.stress_waves 7", "tuner.wave_seconds_count 1", "# histograms"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get("/status")
	if code != 200 {
		t.Fatalf("/status: %d %s", code, body)
	}
	var got tuner.SessionStatus
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if got.Key != "mysql/tpcc#1" || got.Phase != "sample_factory" || got.Wave != 4 {
		t.Fatalf("/status wrong: %+v", got)
	}
	if code, _ := get("/status?key=absent"); code != 404 {
		t.Fatalf("/status?key=absent should 404")
	}
	if code, body := get("/status?key=mysql/tpcc%231"); code != 200 || !strings.Contains(body, "sample_factory") {
		t.Fatalf("/status?key=: %d %s", code, body)
	}

	code, body = get("/sessions")
	if code != 200 {
		t.Fatalf("/sessions: %d", code)
	}
	var payload struct {
		Schema   string                `json:"schema"`
		Sessions []tuner.SessionStatus `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/sessions not JSON: %v", err)
	}
	if payload.Schema != StatusSchema || len(payload.Sessions) != 1 {
		t.Fatalf("/sessions wrong: %+v", payload)
	}

	// JSONL dump mode.
	code, body = get("/events?follow=0")
	if code != 200 {
		t.Fatalf("/events?follow=0: %d", code)
	}
	var ev telemetry.EventView
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &ev); err != nil {
		t.Fatalf("/events dump not JSONL: %v\n%s", err, body)
	}
	if ev.Name != "best_improved" || ev.Attrs["fitness"] != 0.25 {
		t.Fatalf("event wrong: %+v", ev)
	}
}

func TestStatusBeforeAnySession(t *testing.T) {
	s, _, _ := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("/status with no sessions: %d, want 404", resp.StatusCode)
	}
}

func TestEventsSSEFollow(t *testing.T) {
	s, rec, _ := newTestServer(t)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	st := rec.Session("mysql/tpcc", nil)
	st.Event("workload_drift")

	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	deadline := time.After(5 * time.Second)
	lines := make(chan string, 16)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	want := []string{"event: workload_drift", "event: best_improved"}
	// A second event recorded while the stream is live must arrive too.
	st.Event("best_improved", telemetry.A("fitness", 1))
	for _, expect := range want {
		for {
			select {
			case line, ok := <-lines:
				if !ok {
					t.Fatalf("stream closed before %q", expect)
				}
				if line == expect {
					goto next
				}
			case <-deadline:
				t.Fatalf("timed out waiting for %q", expect)
			}
		}
	next:
	}
}

// TestServingPassivity is the package-level half of the CI serving-identity
// contract: a full tuning session run with a live server scraping it must
// produce exactly the same results as an unobserved run.
func TestServingPassivity(t *testing.T) {
	run := func(serve bool) (tuner.Curve, string) {
		req := tuner.Request{
			Workload: workload.TPCC(),
			Budget:   2 * time.Hour,
			Clones:   2,
			Seed:     42,
		}
		var srv *Server
		var stop chan struct{}
		if serve {
			rec := telemetry.New()
			reg := NewRegistry()
			req.Recorder = rec
			req.Status = reg
			srv = NewServer(rec, reg)
			srv.pollEvery = time.Millisecond
			addr, err := srv.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			// Hammer every endpoint while the session runs.
			stop = make(chan struct{})
			go func() {
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, p := range []string{"/metrics", "/status", "/sessions", "/events?follow=0"} {
						resp, err := http.Get("http://" + addr + p)
						if err == nil {
							io.Copy(io.Discard, resp.Body) //nolint:errcheck
							resp.Body.Close()
						}
					}
				}
			}()
		}
		s, err := tuner.NewSession(req)
		if err != nil {
			t.Fatal(err)
		}
		for !s.Exhausted() {
			batch := make([][]float64, len(s.Clones))
			for i := range batch {
				batch[i] = s.Space.Random(s.RNG)
			}
			if _, err := s.EvaluateBatch(batch); err != nil {
				break
			}
		}
		best, _ := s.Best()
		s.Close()
		if stop != nil {
			close(stop)
		}
		return s.Curve(), fmt.Sprintf("%.9f/%d", best.Perf.ThroughputTPS, best.Step)
	}

	plainCurve, plainBest := run(false)
	servedCurve, servedBest := run(true)
	if plainBest != servedBest {
		t.Fatalf("serving changed the best sample: %s vs %s", plainBest, servedBest)
	}
	if len(plainCurve) != len(servedCurve) {
		t.Fatalf("serving changed the curve: %d vs %d points", len(plainCurve), len(servedCurve))
	}
	for i := range plainCurve {
		if plainCurve[i] != servedCurve[i] {
			t.Fatalf("curve point %d diverged: %+v vs %+v", i, plainCurve[i], servedCurve[i])
		}
	}
}

// TestSessionsSortedByKey pins the /sessions ordering contract: the
// listing is sorted by session key no matter which order a concurrent
// fleet registered the sessions in.
func TestSessionsSortedByKey(t *testing.T) {
	g := NewRegistry()
	for _, key := range []string{"t/0007#3", "t/0001#9", "t/0099#1", "t/0002#4"} {
		g.PublishStatus(tuner.SessionStatus{Key: key, Name: key})
	}
	got := g.Sessions()
	want := []string{"t/0001#9", "t/0002#4", "t/0007#3", "t/0099#1"}
	if len(got) != len(want) {
		t.Fatalf("got %d sessions, want %d", len(got), len(want))
	}
	for i, key := range want {
		if got[i].Key != key {
			t.Fatalf("Sessions()[%d].Key = %q, want %q (full: %+v)", i, got[i].Key, key, got)
		}
	}
	// Latest follows registration order, not sort order.
	st, ok := g.Latest()
	if !ok || st.Key != "t/0002#4" {
		t.Fatalf("Latest() = %+v, %v; want the last-registered key t/0002#4", st, ok)
	}
	if _, ok := NewRegistry().Latest(); ok {
		t.Fatal("Latest() on an empty registry reported ok")
	}
}
