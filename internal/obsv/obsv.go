// Package obsv is the live introspection plane: an HTTP server exposing a
// running tuning process's telemetry (Prometheus-style /metrics), session
// status (/status, /sessions) and instant-event stream (/events) without
// ever touching the tuning loop.
//
// The passivity rule of internal/telemetry extends here: every endpoint
// reads a snapshot taken under the recorder's or registry's lock and then
// serializes outside it, so a scrape — however slow the client — can never
// block a tuning goroutine for longer than one snapshot copy, never
// advances a clock, and never consumes an RNG stream. Serving is provably
// invisible: golden outputs are byte-identical with and without -serve
// (CI enforces this).
//
// The Registry decouples sessions from the server and is built for many
// concurrent sessions — the multi-tenant fleet daemon of the roadmap will
// register every tenant's session here and serve them all from one
// listener.
package obsv

import (
	"sort"
	"sync"

	"github.com/hunter-cdb/hunter/internal/tuner"
)

// Registry collects live session statuses. It implements tuner.StatusSink;
// sessions publish into it and HTTP handlers read sorted snapshots out of
// it. Safe for concurrent use by any number of sessions and scrapers. The
// zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	sessions map[string]tuner.SessionStatus
	order    []string // registration order, for stable listings
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sessions: make(map[string]tuner.SessionStatus)}
}

// PublishStatus stores the latest status for the session's key
// (tuner.StatusSink). Unknown keys register; known keys update in place.
func (g *Registry) PublishStatus(st tuner.SessionStatus) {
	if st.Key == "" {
		return
	}
	g.mu.Lock()
	if _, ok := g.sessions[st.Key]; !ok {
		g.order = append(g.order, st.Key)
	}
	g.sessions[st.Key] = st
	g.mu.Unlock()
}

// Sessions returns every registered session's latest status, sorted by
// session key. Registration order is not used: under a concurrent fleet
// many sessions register in whatever order the scheduler ran them, and
// the listing must look the same however the race went.
func (g *Registry) Sessions() []tuner.SessionStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]tuner.SessionStatus, 0, len(g.sessions))
	for _, st := range g.sessions {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Latest returns the most recently registered session's status — the
// single-session /status view (sorted order would be wrong there: the
// newest session is wanted, not the lexicographically last).
func (g *Registry) Latest() (tuner.SessionStatus, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.order) == 0 {
		return tuner.SessionStatus{}, false
	}
	return g.sessions[g.order[len(g.order)-1]], true
}

// Session returns the status under key.
func (g *Registry) Session(key string) (tuner.SessionStatus, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	st, ok := g.sessions[key]
	return st, ok
}

// Active returns the statuses of sessions that have not finished, sorted
// by key — the fleet view.
func (g *Registry) Active() []tuner.SessionStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []tuner.SessionStatus
	for _, st := range g.sessions {
		if !st.Done {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
