package mathx

import (
	"fmt"

	"github.com/hunter-cdb/hunter/internal/parallel"
)

// Work cutoffs for the blocked/parallel kernels. Chunk sizes are derived
// from operand shapes alone (never from the worker count), so chunk
// boundaries — and with them every floating-point reduction — are
// deterministic. Below one chunk's worth of work the kernels degenerate
// to the plain serial loops and spawn nothing.
const (
	// mulChunkFlops is the minimum work per Mul row chunk (~a few hundred
	// microseconds) before fanning out pays for goroutine handoff.
	mulChunkFlops = 1 << 18
	// mulBlockRows is the row-block height used once a matrix is tall
	// enough: with multiple rows per chunk the kernel streams each
	// kPanel-row panel of B once per block instead of once per row.
	mulBlockRows = 32
	// mulBlockMinRows is the height from which row blocking (rather than
	// pure flop-derived chunking) is applied.
	mulBlockMinRows = 8 * mulBlockRows
	// kPanel is the B-panel height of the blocked ikj loop; 128 rows of a
	// 1024-wide B is 1 MiB, sized to stay resident in L2 across a block.
	kPanel = 128
	// vecChunkFlops is the minimum work per chunk for the vector-shaped
	// kernels (MulVec, GemvBias, OuterAccum, GemvTAccum).
	vecChunkFlops = 1 << 15
)

// mulRowGrain returns the Mul chunk height for an aRows×aCols · aCols×bCols
// product.
func mulRowGrain(aRows, aCols, bCols int) int {
	flopsPerRow := 2 * aCols * bCols
	if flopsPerRow <= 0 {
		return mulBlockRows
	}
	g := (mulChunkFlops + flopsPerRow - 1) / flopsPerRow
	if aRows >= mulBlockMinRows && g < mulBlockRows {
		g = mulBlockRows
	}
	return g
}

// rowGrain returns a chunk size covering at least vecChunkFlops of work
// for a kernel doing flopsPerItem work per item.
func rowGrain(flopsPerItem int) int {
	if flopsPerItem <= 0 {
		return vecChunkFlops
	}
	return (vecChunkFlops + flopsPerItem - 1) / flopsPerItem
}

// mulInto computes out = a·b with the blocked ikj kernel, fanning out
// over row chunks. For every output element the k accumulation runs in
// ascending order exactly as the naive loop does, so the result is
// bit-identical to the serial kernel for any worker count.
func mulInto(a, b, out *Matrix) {
	parallel.For(a.Rows, mulRowGrain(a.Rows, a.Cols, b.Cols), func(lo, hi int) {
		for k0 := 0; k0 < a.Cols; k0 += kPanel {
			k1 := k0 + kPanel
			if k1 > a.Cols {
				k1 = a.Cols
			}
			for i := lo; i < hi; i++ {
				ai := a.Row(i)
				oi := out.Row(i)
				for k := k0; k < k1; k++ {
					av := ai[k]
					if av == 0 {
						continue
					}
					bk := b.Row(k)
					for j, bv := range bk {
						oi[j] += av * bv
					}
				}
			}
		}
	})
}

// MulT returns m·bᵀ without materializing the transpose: out(i,j) is the
// dot product of two contiguous rows, the cache-friendly orientation for
// Gram/covariance work.
func (m *Matrix) MulT(b *Matrix) *Matrix {
	if m.Cols != b.Cols {
		panic(fmt.Sprintf("mathx: mulT shape mismatch %dx%d · (%dx%d)ᵀ", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Rows)
	parallel.For(m.Rows, rowGrain(2*m.Cols*b.Rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mi := m.Row(i)
			oi := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				oi[j] = Dot(mi, b.Row(j))
			}
		}
	})
	return out
}

// Gram returns mᵀ·m, the Cols×Cols Gram matrix (the unscaled covariance
// of standardized data). It transposes once so every dot product runs
// over contiguous rows, computes only the upper triangle in parallel and
// mirrors it — out(i,j) and out(j,i) are the same float64.
func (m *Matrix) Gram() *Matrix {
	var t, out *Matrix
	return m.GramInto(&t, &out)
}

// GramInto is Gram with caller-owned scratch: *tScratch holds the
// transpose and *dst the result, both grown via ReuseMatrix so repeated
// covariance builds allocate nothing. Every output element is the same
// dot product in the same order as Gram's.
func (m *Matrix) GramInto(tScratch, dst **Matrix) *Matrix {
	t := m.tInto(tScratch)
	n := t.Rows
	out := ReuseMatrix(dst, n, n)
	// Chunk so each covers at least mulChunkFlops of dot-product work:
	// one chunk per row serializes tiny covariances (63 metrics) into a
	// single chunk instead of fanning out 63 sub-100µs pieces.
	grain := n
	if rowFlops := 2 * m.Rows * n; rowFlops > 0 && n*rowFlops >= mulChunkFlops {
		grain = (mulChunkFlops + rowFlops - 1) / rowFlops
	}
	parallel.For(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ti := t.Row(i)
			oi := out.Row(i)
			for j := i; j < n; j++ {
				oi[j] = Dot(ti, t.Row(j))
			}
		}
	})
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			out.Set(i, j, out.At(j, i))
		}
	}
	return out
}

// GemvBias computes y[o] = bias[o] + w[o·in:(o+1)·in]·x for o in [0,out) —
// the dense-layer pre-activation, with w an out×in row-major weight
// matrix. Each output element accumulates left to right starting from
// bias[o], matching the serial layer loop bit for bit.
func GemvBias(w []float64, in, out int, x, bias, y []float64) {
	parallel.For(out, rowGrain(2*in), func(lo, hi int) {
		for o := lo; o < hi; o++ {
			s := bias[o]
			row := w[o*in : (o+1)*in]
			for i, v := range x {
				s += row[i] * v
			}
			y[o] = s
		}
	})
}

// OuterAccum adds the rank-1 update g⊗x into the out×in row-major
// gradient matrix gw: gw[o·in+i] += g[o]·x[i]. Rows are independent, so
// the fan-out over rows is bit-identical to the serial loop.
func OuterAccum(gw []float64, in, out int, g, x []float64) {
	parallel.For(out, rowGrain(2*in), func(lo, hi int) {
		for o := lo; o < hi; o++ {
			gv := g[o]
			row := gw[o*in : (o+1)*in]
			for i, v := range x {
				row[i] += gv * v
			}
		}
	})
}

// GemvTAccum adds wᵀ·g into din: din[i] += Σ_o g[o]·w[o·in+i]. Work is
// chunked over columns; within a chunk the o loop stays outermost and
// ascending, so every din[i] accumulates in exactly the serial order for
// any worker count.
func GemvTAccum(w []float64, in, out int, g, din []float64) {
	parallel.For(in, rowGrain(2*out), func(lo, hi int) {
		for o := 0; o < out; o++ {
			gv := g[o]
			row := w[o*in+lo : o*in+hi]
			dd := din[lo:hi]
			for i, v := range row {
				dd[i] += gv * v
			}
		}
	})
}
