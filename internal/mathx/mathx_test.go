package mathx

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hunter-cdb/hunter/internal/sim"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatrixMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %+v", at)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	v := a.MulVec([]float64{1, 1})
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("mulvec = %v", v)
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("norm wrong")
	}
}

func TestCholeskySolveKnown(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2].
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	x, err := CholeskySolve(a, []float64{10, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1.5, 1e-9) || !almostEq(x[1], 2, 1e-9) {
		t.Fatalf("solve = %v", x)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := CholeskySolve(a, []float64{1, 1}); err == nil {
		t.Fatal("expected failure on indefinite matrix")
	}
}

// TestCholeskySolveProperty builds random SPD matrices A = MᵀM + I and
// verifies A·x ≈ b.
func TestCholeskySolveProperty(t *testing.T) {
	rng := sim.NewRNG(11)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.Gaussian(0, 1)
		}
		a := m.T().Mul(m)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Gaussian(0, 3)
		}
		x, err := CholeskySolve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ax := a.MulVec(x)
		for i := range b {
			if !almostEq(ax[i], b[i], 1e-6) {
				t.Fatalf("trial %d: A·x[%d]=%v want %v", trial, i, ax[i], b[i])
			}
		}
	}
}

// TestSymEigenProperty: for random symmetric matrices, A·v = λ·v and
// eigenvalues are sorted descending.
func TestSymEigenProperty(t *testing.T) {
	rng := sim.NewRNG(12)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.Gaussian(0, 1)
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		eig, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < n; k++ {
			if k > 0 && eig.Values[k] > eig.Values[k-1]+1e-9 {
				t.Fatalf("eigenvalues not sorted: %v", eig.Values)
			}
			v := eig.Vectors.Row(k)
			av := a.MulVec(v)
			for i := 0; i < n; i++ {
				if !almostEq(av[i], eig.Values[k]*v[i], 1e-6) {
					t.Fatalf("trial %d: A·v != λ·v at eigenpair %d", trial, k)
				}
			}
			if !almostEq(Norm2(v), 1, 1e-6) {
				t.Fatalf("eigenvector %d not unit norm", k)
			}
		}
	}
}

func TestSymEigenKnown(t *testing.T) {
	// [[2,0],[0,3]] has eigenvalues 3, 2 (descending).
	a := FromRows([][]float64{{2, 0}, {0, 3}})
	eig, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(eig.Values[0], 3, 1e-9) || !almostEq(eig.Values[1], 2, 1e-9) {
		t.Fatalf("eigenvalues = %v", eig.Values)
	}
}

func TestMeanVarianceStd(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(v) != 5 {
		t.Fatal("mean wrong")
	}
	if Variance(v) != 4 {
		t.Fatal("variance wrong")
	}
	if StdDev(v) != 2 {
		t.Fatal("std wrong")
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice stats should be 0")
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(v, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(v, 100); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(v, 50); !almostEq(got, 5.5, 1e-9) {
		t.Fatalf("p50 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestStandardize(t *testing.T) {
	m := FromRows([][]float64{{1, 100}, {3, 200}, {5, 300}})
	means, stds := Standardize(m)
	if means[0] != 3 || means[1] != 200 {
		t.Fatalf("means = %v", means)
	}
	if stds[0] == 0 || stds[1] == 0 {
		t.Fatalf("stds = %v", stds)
	}
	for j := 0; j < 2; j++ {
		col := make([]float64, 3)
		for i := 0; i < 3; i++ {
			col[i] = m.At(i, j)
		}
		if !almostEq(Mean(col), 0, 1e-9) || !almostEq(StdDev(col), 1, 1e-9) {
			t.Fatalf("column %d not standardized", j)
		}
	}
}

func TestStandardizeConstantColumn(t *testing.T) {
	m := FromRows([][]float64{{7}, {7}, {7}})
	Standardize(m)
	for i := 0; i < 3; i++ {
		if m.At(i, 0) != 0 {
			t.Fatal("constant column should center to zero without NaN")
		}
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Fatal("argmax wrong")
	}
	if ArgMax(nil) != -1 {
		t.Fatal("empty argmax should be -1")
	}
}

func TestScaleAddInPlaceQuick(t *testing.T) {
	f := func(vals []float64, s float64) bool {
		if len(vals) == 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return true
		}
		a := append([]float64(nil), vals...)
		Scale(a, s)
		for i := range a {
			if !math.IsNaN(vals[i]*s) && a[i] != vals[i]*s {
				return false
			}
		}
		b := append([]float64(nil), vals...)
		AddInPlace(b, vals)
		for i := range b {
			if !math.IsNaN(vals[i]) && b[i] != 2*vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
