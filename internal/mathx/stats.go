package mathx

import (
	"math"
	"sort"

	"github.com/hunter-cdb/hunter/internal/parallel"
)

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 { return math.Sqrt(Variance(v)) }

// Percentile returns the p-th percentile (0..100) of v using linear
// interpolation, the convention OLTP benchmark tools use for tail latency.
func Percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Standardize centers and scales each column of m to zero mean and unit
// variance, returning the means and standard deviations used so callers can
// apply the identical transform to new data. Columns with zero variance are
// left centered but unscaled. Columns are independent, so the column loop
// fans out over internal/parallel above the work cutoff with results
// bit-identical to the serial pass; each chunk must cover mulChunkFlops
// of column work before fanning out, so paper-scale matrices (500×63)
// stay serial instead of paying handoff for sub-100µs chunks. The
// per-column statistics run directly over the matrix column — same
// element order and arithmetic as the former copy-then-Mean/StdDev pass,
// without the per-chunk column buffer.
func Standardize(m *Matrix) (means, stds []float64) {
	means = make([]float64, m.Cols)
	stds = make([]float64, m.Cols)
	if m.Rows == 0 {
		return means, stds // zero stats, like the empty-column Mean/StdDev
	}
	colFlops := 6 * m.Rows
	grain := m.Cols
	if colFlops > 0 && m.Cols*colFlops >= mulChunkFlops {
		grain = (mulChunkFlops + colFlops - 1) / colFlops
	}
	parallel.For(m.Cols, grain, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var sum float64
			for i := 0; i < m.Rows; i++ {
				sum += m.At(i, j)
			}
			mean := sum / float64(m.Rows)
			var sq float64
			for i := 0; i < m.Rows; i++ {
				d := m.At(i, j) - mean
				sq += d * d
			}
			means[j] = mean
			stds[j] = math.Sqrt(sq / float64(m.Rows))
			sd := stds[j]
			if sd == 0 {
				sd = 1
			}
			for i := 0; i < m.Rows; i++ {
				m.Set(i, j, (m.At(i, j)-mean)/sd)
			}
		}
	})
	return means, stds
}

// ArgMax returns the index of the largest element, or -1 for empty input.
func ArgMax(v []float64) int {
	best := -1
	for i, x := range v {
		if best == -1 || x > v[best] {
			best = i
		}
	}
	return best
}
