package mathx

import (
	"sync/atomic"
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// mulNaive is the seed repository's serial triple loop, kept as the
// reference the blocked kernel must match bit for bit.
func mulNaive(m, b *Matrix) *Matrix {
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range oi {
				oi[j] += a * bk[j]
			}
		}
	}
	return out
}

func randMatrix(rng *sim.RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Gaussian(0, 1)
	}
	// Sprinkle exact zeros so the zero-skip path is exercised.
	for k := 0; k < len(m.Data)/17; k++ {
		m.Data[rng.Intn(len(m.Data))] = 0
	}
	return m
}

func bitEqual(t *testing.T, what string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d != %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: element %d differs: %v != %v", what, i, a[i], b[i])
		}
	}
}

// TestMulMatchesNaiveBitwise pins the blocked kernel's accumulation order:
// for every output element the k sum must run exactly as the seed loop did.
func TestMulMatchesNaiveBitwise(t *testing.T) {
	rng := sim.NewRNG(7)
	for _, sz := range [][3]int{{2, 2, 2}, {5, 7, 3}, {64, 64, 64}, {97, 130, 61}, {300, 150, 200}, {257, 511, 129}} {
		a := randMatrix(rng, sz[0], sz[1])
		b := randMatrix(rng, sz[1], sz[2])
		want := mulNaive(a, b)
		got := a.Mul(b)
		bitEqual(t, "mul", got.Data, want.Data)
	}
}

// TestMulEquivalentAcrossWorkers asserts serial ≡ parallel bit for bit.
func TestMulEquivalentAcrossWorkers(t *testing.T) {
	rng := sim.NewRNG(11)
	a := randMatrix(rng, 300, 200)
	b := randMatrix(rng, 200, 250)
	prev := parallel.SetWorkers(1)
	serial := a.Mul(b)
	for _, w := range []int{2, 4, 8} {
		parallel.SetWorkers(w)
		bitEqual(t, "mul workers", a.Mul(b).Data, serial.Data)
	}
	parallel.SetWorkers(prev)
}

// TestTinyMulStaysSerial pins the cutoff behaviour (the tiny-input
// regression guard): a 2×2 product must never spawn a worker goroutine,
// even with many workers configured.
func TestTinyMulStaysSerial(t *testing.T) {
	defer parallel.SetWorkers(parallel.SetWorkers(8))
	var spawns atomic.Int32
	parallel.SetSpawnObserver(func(int) { spawns.Add(1) })
	defer parallel.SetSpawnObserver(nil)

	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	_ = a.Mul(b)
	_ = a.MulVec([]float64{1, 2})
	_ = a.MulT(b)
	_ = a.Gram()
	if n := spawns.Load(); n != 0 {
		t.Fatalf("tiny operands fanned out %d times; must stay on the serial path", n)
	}

	// Sanity check the hook itself: a large product must fan out.
	big := NewMatrix(512, 512)
	_ = big.Mul(big)
	if spawns.Load() == 0 {
		t.Fatal("512x512 mul should fan out with 8 workers")
	}
}

func TestMulVecEquivalentAcrossWorkers(t *testing.T) {
	rng := sim.NewRNG(13)
	m := randMatrix(rng, 4000, 80)
	v := make([]float64, 80)
	for i := range v {
		v[i] = rng.Gaussian(0, 1)
	}
	prev := parallel.SetWorkers(1)
	serial := m.MulVec(v)
	parallel.SetWorkers(8)
	bitEqual(t, "mulvec", m.MulVec(v), serial)
	parallel.SetWorkers(prev)
}

func TestMulTMatchesMul(t *testing.T) {
	rng := sim.NewRNG(17)
	a := randMatrix(rng, 40, 30)
	b := randMatrix(rng, 25, 30)
	got := a.MulT(b)
	want := a.Mul(b.T())
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("mulT shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("mulT element %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestGramMatchesTransposeMul(t *testing.T) {
	rng := sim.NewRNG(19)
	for _, sz := range [][2]int{{5, 3}, {500, 63}, {120, 40}} {
		x := randMatrix(rng, sz[0], sz[1])
		got := x.Gram()
		want := x.T().Mul(x)
		for i := range got.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-9) {
				t.Fatalf("gram element %d: %v != %v", i, got.Data[i], want.Data[i])
			}
		}
		// Exact symmetry: the mirror shares the computed float.
		for i := 0; i < got.Rows; i++ {
			for j := 0; j < i; j++ {
				if got.At(i, j) != got.At(j, i) {
					t.Fatalf("gram not exactly symmetric at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestGramEquivalentAcrossWorkers(t *testing.T) {
	rng := sim.NewRNG(23)
	x := randMatrix(rng, 500, 63)
	prev := parallel.SetWorkers(1)
	serial := x.Gram()
	parallel.SetWorkers(8)
	bitEqual(t, "gram", x.Gram().Data, serial.Data)
	parallel.SetWorkers(prev)
}

// gemvRef replicates the seed nn layer loops the flat kernels replaced.
func gemvRef(w []float64, in, out int, x, bias []float64) ([]float64, []float64, []float64) {
	y := make([]float64, out)
	for o := 0; o < out; o++ {
		s := bias[o]
		row := w[o*in : (o+1)*in]
		for i, v := range x {
			s += row[i] * v
		}
		y[o] = s
	}
	g := y // reuse y as the upstream gradient for the backward reference
	gw := make([]float64, in*out)
	din := make([]float64, in)
	for o := 0; o < out; o++ {
		gv := g[o]
		row := w[o*in : (o+1)*in]
		grow := gw[o*in : (o+1)*in]
		for i := 0; i < in; i++ {
			grow[i] += gv * x[i]
			din[i] += gv * row[i]
		}
	}
	return y, gw, din
}

func TestFlatKernelsMatchSeedLoopsBitwise(t *testing.T) {
	rng := sim.NewRNG(29)
	for _, w := range []int{1, 8} {
		prev := parallel.SetWorkers(w)
		for _, sz := range [][2]int{{3, 2}, {64, 64}, {257, 130}, {33, 513}} {
			in, out := sz[0], sz[1]
			wts := make([]float64, in*out)
			for i := range wts {
				wts[i] = rng.Gaussian(0, 1)
			}
			x := make([]float64, in)
			for i := range x {
				x[i] = rng.Gaussian(0, 1)
			}
			bias := make([]float64, out)
			for i := range bias {
				bias[i] = rng.Gaussian(0, 1)
			}
			wantY, wantGW, wantDin := gemvRef(wts, in, out, x, bias)

			y := make([]float64, out)
			GemvBias(wts, in, out, x, bias, y)
			bitEqual(t, "gemvBias", y, wantY)

			gw := make([]float64, in*out)
			OuterAccum(gw, in, out, y, x)
			bitEqual(t, "outerAccum", gw, wantGW)

			din := make([]float64, in)
			GemvTAccum(wts, in, out, y, din)
			bitEqual(t, "gemvTAccum", din, wantDin)
		}
		parallel.SetWorkers(prev)
	}
}
