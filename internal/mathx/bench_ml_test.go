package mathx

import (
	"testing"

	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/sim"
)

// benchMul measures the current (blocked, possibly parallel) kernel;
// benchMulBaseline measures the seed repository's naive serial loop on
// the same operands. Before/after numbers are recorded in BENCH_ml.json.
func benchMul(b *testing.B, n, workers int) {
	defer parallel.SetWorkers(parallel.SetWorkers(workers))
	rng := sim.NewRNG(1)
	x := randMatrix(rng, n, n)
	y := randMatrix(rng, n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}

func benchMulBaseline(b *testing.B, n int) {
	rng := sim.NewRNG(1)
	x := randMatrix(rng, n, n)
	y := randMatrix(rng, n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mulNaive(x, y)
	}
}

func BenchmarkMatrixMul64(b *testing.B)           { benchMul(b, 64, 0) }
func BenchmarkMatrixMul64Serial(b *testing.B)     { benchMul(b, 64, 1) }
func BenchmarkMatrixMul64Baseline(b *testing.B)   { benchMulBaseline(b, 64) }
func BenchmarkMatrixMul256(b *testing.B)          { benchMul(b, 256, 0) }
func BenchmarkMatrixMul256Serial(b *testing.B)    { benchMul(b, 256, 1) }
func BenchmarkMatrixMul256Baseline(b *testing.B)  { benchMulBaseline(b, 256) }
func BenchmarkMatrixMul1024(b *testing.B)         { benchMul(b, 1024, 0) }
func BenchmarkMatrixMul1024Serial(b *testing.B)   { benchMul(b, 1024, 1) }
func BenchmarkMatrixMul1024Baseline(b *testing.B) { benchMulBaseline(b, 1024) }
