// Package mathx implements the small dense linear-algebra kernel the
// machine-learning substrates (PCA, Gaussian processes, neural networks)
// are built on. Matrices are row-major float64. The hot kernels — Mul,
// MulVec, MulT/Gram and the flat GEMV/outer-product helpers behind the
// neural-network layers — are cache-blocked (ikj loop order with B kept
// in L2-sized row panels) and fan out over internal/parallel once the
// operand exceeds a fixed work cutoff (see kernels.go); below the cutoff
// they fall back to the plain serial loops, so tiny operands never pay
// goroutine overhead. Chunk boundaries and accumulation order depend only
// on operand shapes — never on the worker count — so every result is
// bit-identical for any GOMAXPROCS.
package mathx

import (
	"fmt"
	"math"

	"github.com/hunter-cdb/hunter/internal/parallel"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mathx: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mathx: ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// ReuseMatrix resizes *p to rows×cols, reusing its backing array when it
// is large enough and allocating otherwise; contents are unspecified. It
// is the growth primitive behind the workspace types that let the ML hot
// paths (PCA fits, DDPG minibatches) run allocation-free in steady state.
func ReuseMatrix(p **Matrix, rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mathx: invalid dimensions %dx%d", rows, cols))
	}
	m := *p
	if m == nil || cap(m.Data) < rows*cols {
		m = NewMatrix(rows, cols)
		*p = m
		return m
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:rows*cols]
	return m
}

// FromRowsInto copies the row slices into *p (grown via ReuseMatrix), the
// allocation-free counterpart of FromRows.
func FromRowsInto(p **Matrix, rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return ReuseMatrix(p, 0, 0)
	}
	m := ReuseMatrix(p, len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mathx: ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	var t *Matrix
	return m.tInto(&t)
}

// tInto writes the transpose into *p, reusing its storage when possible.
func (m *Matrix) tInto(p **Matrix) *Matrix {
	t := ReuseMatrix(p, m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·b using the blocked, parallel kernel in kernels.go.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mathx: mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	mulInto(m, b, out)
	return out
}

// MulVec returns m·v for a column vector v, fanning out over row chunks
// above the work cutoff (each row is an independent dot product).
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("mathx: mulvec shape mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	parallel.For(m.Rows, rowGrain(2*m.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = Dot(m.Row(i), v)
		}
	})
	return out
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mathx: dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Scale multiplies every element of v by s in place.
func Scale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// AddInPlace adds b into a element-wise.
func AddInPlace(a, b []float64) {
	if len(a) != len(b) {
		panic("mathx: add length mismatch")
	}
	for i := range a {
		a[i] += b[i]
	}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Cholesky is the lower-triangular factor of a symmetric positive-definite
// matrix, reusable across many solves (the kernel of Gaussian-process
// regression, where one factorization serves every posterior query).
type Cholesky struct {
	l *Matrix
}

// NewCholesky factors a (not modified). It fails when a is not positive
// definite; callers typically add jitter and retry.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("mathx: cholesky requires square matrix")
	}
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("mathx: matrix not positive definite at %d (pivot %g)", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve returns x with A·x = b using the precomputed factor (O(n²)).
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("mathx: cholesky solve length %d != %d", len(b), n)
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= c.l.At(i, k) * y[k]
		}
		y[i] = sum / c.l.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= c.l.At(k, i) * x[k]
		}
		x[i] = sum / c.l.At(i, i)
	}
	return x, nil
}

// CholeskySolve solves A·x = b for symmetric positive-definite A. The
// input matrix is not modified.
func CholeskySolve(a *Matrix, b []float64) ([]float64, error) {
	c, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return c.Solve(b)
}
