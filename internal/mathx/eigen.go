package mathx

import (
	"fmt"
	"math"
	"sort"

	"github.com/hunter-cdb/hunter/internal/parallel"
)

// rotGrain is the minimum row span per chunk when a Jacobi rotation's
// inner loops fan out. Each row costs ~6 flops, so matrices below a few
// thousand rows (every covariance this repo builds) stay on the serial
// path; the fan-out exists for the large-matrix regime.
const rotGrain = 4096

// Eigen holds the eigendecomposition of a symmetric matrix: Values sorted
// descending and Vectors with the corresponding eigenvector in each row.
type Eigen struct {
	Values  []float64
	Vectors *Matrix // row i is the eigenvector for Values[i]
}

// EigenWorkspace holds the Jacobi iteration's scratch (the working copy of
// the input, the accumulated rotations, the sort permutation and the
// output buffers) so repeated decompositions of same-sized matrices
// allocate nothing. The Eigen returned by SymEigenWS aliases the
// workspace and is valid until its next use.
type EigenWorkspace struct {
	w, v, vecs *Matrix
	vals       []float64
	idx        []int
}

// SymEigen computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi rotation method. The matrices here are covariance matrices
// over at most a few dozen metrics, where Jacobi is simple, numerically
// robust and fast enough.
func SymEigen(a *Matrix) (*Eigen, error) { return SymEigenWS(nil, a) }

// SymEigenWS is SymEigen with caller-owned scratch: a nil workspace
// allocates freshly, a non-nil one is grown on first use and reused
// afterwards (the result then aliases the workspace). The arithmetic — and
// therefore every output bit — is identical either way.
func SymEigenWS(ws *EigenWorkspace, a *Matrix) (*Eigen, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("mathx: eigen requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	// Work on a copy; accumulate rotations into v.
	var w, v *Matrix
	if ws != nil {
		w = ReuseMatrix(&ws.w, n, n)
		copy(w.Data, a.Data)
		v = ReuseMatrix(&ws.v, n, n)
		for i := range v.Data {
			v.Data[i] = 0
		}
		for i := 0; i < n; i++ {
			v.Set(i, i, 1)
		}
	} else {
		w = a.Clone()
		v = Identity(n)
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal norm. Small matrices (the only kind this repo
		// decomposes) take the plain serial loop — one chunk's worth of
		// work, same summation order as the single-chunk ordered
		// reduction, no closure or fan-out overhead. Large matrices use
		// the ordered chunk reduction: partials fold in row order, so the
		// sweep count is worker-independent.
		var off float64
		if n <= rotGrain {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					off += w.At(i, j) * w.At(i, j)
				}
			}
		} else {
			off = parallel.ReduceOrdered(n, rotGrain, func(lo, hi int) float64 {
				var s float64
				for i := lo; i < hi; i++ {
					for j := i + 1; j < n; j++ {
						s += w.At(i, j) * w.At(i, j)
					}
				}
				return s
			}, func(acc, p float64) float64 { return acc + p }, 0)
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s, n)
			}
		}
	}

	eig := &Eigen{}
	var idx []int
	if ws != nil {
		if cap(ws.vals) < n {
			ws.vals = make([]float64, n)
			ws.idx = make([]int, n)
		}
		eig.Values = ws.vals[:n]
		eig.Vectors = ReuseMatrix(&ws.vecs, n, n)
		idx = ws.idx[:n]
	} else {
		eig.Values = make([]float64, n)
		eig.Vectors = NewMatrix(n, n)
		idx = make([]int, n)
	}
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return w.At(idx[x], idx[x]) > w.At(idx[y], idx[y]) })
	for r, i := range idx {
		eig.Values[r] = w.At(i, i)
		for j := 0; j < n; j++ {
			eig.Vectors.Set(r, j, v.At(j, i)) // column i of v is eigenvector i
		}
	}
	return eig, nil
}

// rotate applies the Jacobi rotation (p, q, c, s) to w and accumulates it
// into the eigenvector matrix v. Small matrices run the three passes as
// plain loops — identical iteration order to a single-chunk fan-out, but
// without allocating the three closures per rotation, which was the
// dominant allocation cost of a whole PCA fit. Above the rotGrain cutoff
// each pass updates independent rows (or columns) indexed by k and fans
// out over row chunks; the passes themselves stay sequential because the
// column pass reads what the row pass wrote.
func rotate(w, v *Matrix, p, q int, c, s float64, n int) {
	if n <= rotGrain {
		for k := 0; k < n; k++ {
			wkp, wkq := w.At(k, p), w.At(k, q)
			w.Set(k, p, c*wkp-s*wkq)
			w.Set(k, q, s*wkp+c*wkq)
		}
		for k := 0; k < n; k++ {
			wpk, wqk := w.At(p, k), w.At(q, k)
			w.Set(p, k, c*wpk-s*wqk)
			w.Set(q, k, s*wpk+c*wqk)
		}
		for k := 0; k < n; k++ {
			vkp, vkq := v.At(k, p), v.At(k, q)
			v.Set(k, p, c*vkp-s*vkq)
			v.Set(k, q, s*vkp+c*vkq)
		}
		return
	}
	parallel.For(n, rotGrain, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			wkp, wkq := w.At(k, p), w.At(k, q)
			w.Set(k, p, c*wkp-s*wkq)
			w.Set(k, q, s*wkp+c*wkq)
		}
	})
	parallel.For(n, rotGrain, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			wpk, wqk := w.At(p, k), w.At(q, k)
			w.Set(p, k, c*wpk-s*wqk)
			w.Set(q, k, s*wpk+c*wqk)
		}
	})
	parallel.For(n, rotGrain, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			vkp, vkq := v.At(k, p), v.At(k, q)
			v.Set(k, p, c*vkp-s*vkq)
			v.Set(k, q, s*vkp+c*vkq)
		}
	})
}
