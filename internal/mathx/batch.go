package mathx

import "github.com/hunter-cdb/hunter/internal/parallel"

// Minibatch kernels for the neural-network layers: the same per-element
// arithmetic as the single-sample GEMV family in kernels.go, lifted over a
// batch of rows so one DDPG training step runs a handful of matrix kernels
// instead of hundreds of per-transition vector calls. Every kernel keeps
// the per-element accumulation order of its single-sample counterpart —
// ascending input index inside a dot product, ascending batch row for
// gradient accumulation — so a batched pass is bit-identical to the
// sample-at-a-time loop it replaces, for any worker count.

// GemmBias computes y[r][o] = bias[o] + w[o·in:(o+1)·in]·x[r·in:(r+1)·in]
// for every batch row r in [0,n) — the dense-layer pre-activation over a
// minibatch, with w an out×in row-major weight matrix, x n×in and y n×out.
// Each output element accumulates left to right starting from the bias,
// exactly like GemvBias on one row.
func GemmBias(w []float64, in, out int, x []float64, bias, y []float64, n int) {
	parallel.For(n, rowGrain(2*in*out), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			xr := x[r*in : (r+1)*in]
			yr := y[r*out : (r+1)*out]
			for o := 0; o < out; o++ {
				s := bias[o]
				row := w[o*in : (o+1)*in]
				for i, v := range xr {
					s += row[i] * v
				}
				yr[o] = s
			}
		}
	})
}

// GemmOuterAccum adds the batch of rank-1 updates g[r]⊗x[r] into the
// out×in row-major gradient matrix gw, accumulating batch rows in
// ascending order: gw[o·in+i] += Σ_r g[r·out+o]·x[r·in+i]. The adds land
// on gw one batch row at a time (never via a pre-reduced partial), so the
// result is bit-identical to calling OuterAccum per sample in batch
// order. Work is chunked over output rows; each gw row is owned by one
// chunk.
func GemmOuterAccum(gw []float64, in, out int, g, x []float64, n int) {
	parallel.For(out, rowGrain(2*in*n), func(lo, hi int) {
		for o := lo; o < hi; o++ {
			grow := gw[o*in : (o+1)*in]
			for r := 0; r < n; r++ {
				gv := g[r*out+o]
				xr := x[r*in : (r+1)*in]
				for i, v := range xr {
					grow[i] += gv * v
				}
			}
		}
	})
}

// BiasGradAccum adds the batch's output gradients into gb in ascending
// batch order: gb[o] += Σ_r g[r·out+o], matching the per-sample
// `gb[o] += g[o]` loop bit for bit. The batch sums are small; it stays
// serial.
func BiasGradAccum(gb []float64, out int, g []float64, n int) {
	for r := 0; r < n; r++ {
		gr := g[r*out : (r+1)*out]
		for o, v := range gr {
			gb[o] += v
		}
	}
}

// GemmTIn computes the batch of input gradients din[r·in+i] =
// Σ_o g[r·out+o]·w[o·in+i], overwriting din. Within each row the o loop
// stays outermost and ascending, so every din element accumulates in
// exactly the order GemvTAccum used on a zeroed buffer. Rows are
// independent and fan out.
func GemmTIn(w []float64, in, out int, g, din []float64, n int) {
	parallel.For(n, rowGrain(2*in*out), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			dr := din[r*in : (r+1)*in]
			for i := range dr {
				dr[i] = 0
			}
			gr := g[r*out : (r+1)*out]
			for o := 0; o < out; o++ {
				gv := gr[o]
				row := w[o*in : (o+1)*in]
				for i, v := range row {
					dr[i] += gv * v
				}
			}
		}
	})
}
