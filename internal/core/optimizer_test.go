package core

import (
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/tuner"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// seedPool injects n synthetic samples whose performance depends strongly
// on innodb_buffer_pool_size and innodb_flush_log_at_trx_commit, so RF has
// a clear signal without running any stress tests.
func seedPool(t *testing.T, s *tuner.Session, n int) {
	t.Helper()
	def := s.DefaultPerf
	for i := 0; i < n; i++ {
		pt := s.Space.Random(s.RNG)
		cfg := s.Space.Decode(pt)
		bp := s.Space.Encode(cfg) // normalized, clipped
		var bpU, flushU float64
		for d, name := range s.Space.Names() {
			switch name {
			case "innodb_buffer_pool_size":
				bpU = bp[d]
			case "innodb_flush_log_at_trx_commit":
				flushU = bp[d]
			}
		}
		perf := simdb.Perf{
			ThroughputTPS: def.ThroughputTPS * (1 + bpU + 0.5*flushU + 0.05*s.RNG.Float64()),
			AvgLatencyMs:  def.AvgLatencyMs,
			P95LatencyMs:  def.P95LatencyMs * (1 - 0.4*bpU),
			P99LatencyMs:  def.P99LatencyMs,
		}
		state := metrics.NewVector()
		for j := range state {
			state[j] = perf.ThroughputTPS * float64(j%7+1) * (1 + 0.01*s.RNG.Float64())
		}
		s.Pool.Add(tuner.Sample{State: state, Knobs: cfg, Point: bp, Perf: perf, Step: i + 1})
	}
}

func optimizerSession(t *testing.T) *tuner.Session {
	t.Helper()
	s, err := tuner.NewSession(tuner.Request{
		Workload: workload.TPCC(),
		Budget:   time.Hour,
		Seed:     90,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestOptimizerCompressesAndSifts(t *testing.T) {
	s := optimizerSession(t)
	seedPool(t, s, 140)
	opt, err := optimizeSearchSpace(Options{}.withDefaults(), s)
	if err != nil {
		t.Fatal(err)
	}
	if opt.StateDim() <= 0 || opt.StateDim() >= metrics.Count {
		t.Errorf("PCA should compress 63 metrics, got %d", opt.StateDim())
	}
	if opt.Space().Dim() != 20 {
		t.Errorf("sifted dims %d, want 20", opt.Space().Dim())
	}
	// The dominant knob must survive sifting.
	found := false
	for _, n := range opt.Space().Names() {
		if n == "innodb_buffer_pool_size" {
			found = true
		}
	}
	if !found {
		t.Errorf("RF dropped the dominant knob; ranking head: %v", opt.Ranking()[:5])
	}
	// CompressState round trip dims.
	z := opt.CompressState(s.Pool.All()[0].State)
	if len(z) != opt.StateDim() {
		t.Fatalf("compressed dim %d", len(z))
	}
	if got := opt.CompressState(nil); len(got) != opt.StateDim() {
		t.Fatal("nil state must map to zero state of correct dim")
	}
	// EncodeAction matches the narrowed dimensionality.
	best, _ := s.Best()
	if a := opt.EncodeAction(best.Knobs); len(a) != 20 {
		t.Fatalf("encoded action dim %d", len(a))
	}
}

func TestOptimizerBasePinnedToIncumbent(t *testing.T) {
	s := optimizerSession(t)
	seedPool(t, s, 140)
	opt, err := optimizeSearchSpace(Options{}.withDefaults(), s)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := s.Best()
	tuned := map[string]bool{}
	for _, n := range opt.Space().Names() {
		tuned[n] = true
	}
	// Decoding any point must keep dropped knobs at the incumbent's
	// values, not at catalog defaults.
	cfg := opt.Space().Decode(make([]float64, opt.Space().Dim()))
	checked := 0
	for _, name := range s.Space.Names() {
		if tuned[name] {
			continue
		}
		if cfg[name] != best.Knobs[name] {
			t.Errorf("dropped knob %s = %v, want incumbent %v", name, cfg[name], best.Knobs[name])
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no dropped knobs to check")
	}
}

func TestOptimizerDisabledModules(t *testing.T) {
	s := optimizerSession(t)
	seedPool(t, s, 60)
	opt, err := optimizeSearchSpace(Options{DisablePCA: true, DisableRF: true}.withDefaults(), s)
	if err != nil {
		t.Fatal(err)
	}
	if opt.StateDim() != metrics.Count {
		t.Errorf("PCA disabled: state dim %d, want %d", opt.StateDim(), metrics.Count)
	}
	if opt.Space().Dim() != s.Space.Dim() {
		t.Errorf("RF disabled: dims %d, want %d", opt.Space().Dim(), s.Space.Dim())
	}
	if len(opt.Ranking()) != 0 {
		t.Error("no ranking expected when RF is off")
	}
}

func TestOptimizerTooFewSamples(t *testing.T) {
	s := optimizerSession(t)
	seedPool(t, s, 2)
	if _, err := optimizeSearchSpace(Options{}.withDefaults(), s); err == nil {
		t.Fatal("2 samples should be rejected")
	}
}
