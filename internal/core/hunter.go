// Package core implements HUNTER, the paper's contribution: an online
// hybrid tuning system. The Sample Factory (GA + Rules, §3.1) generates
// high-quality early samples into the Shared Pool; the Search Space
// Optimizer (PCA + RF, §3.2) compresses the metric state and sifts the
// knobs; and the Recommender (DDPG + Fast Exploration Strategy, §3.3)
// warm-starts from the pooled samples and performs the finer-grained final
// exploration. Cloned-CDB parallelism and virtual-time accounting come
// from the session framework in internal/tuner.
package core

import (
	"errors"
	"fmt"

	"github.com/hunter-cdb/hunter/internal/tuner"
)

// WarmupMethod selects how the Recommender's DRL model is warm-started
// (Table 6 compares GA+ against HER).
type WarmupMethod int

const (
	// WarmupGA uses the Sample Factory's GA samples (HUNTER's design).
	WarmupGA WarmupMethod = iota
	// WarmupHER replaces GA with random sampling plus hindsight
	// experience replay relabeling.
	WarmupHER
	// WarmupNone starts DDPG cold (the CDBTune-equivalent ablation row).
	WarmupNone
)

func (w WarmupMethod) String() string {
	switch w {
	case WarmupGA:
		return "GA"
	case WarmupHER:
		return "HER"
	case WarmupNone:
		return "none"
	}
	return fmt.Sprintf("WarmupMethod(%d)", int(w))
}

// Options toggle HUNTER's modules — the rows of the ablation Tables 3–5.
// The zero value is full HUNTER.
type Options struct {
	// DisableGA replaces the Sample Factory with random sampling.
	DisableGA bool
	// DisablePCA feeds raw (normalized) metrics to the Recommender.
	DisablePCA bool
	// DisableRF skips knob sifting; the Recommender tunes every knob.
	DisableRF bool
	// DisableFES uses plain Gaussian-noise exploration.
	DisableFES bool
	// Warmup selects the DRL warm-up method (Table 6). WarmupHER implies
	// DisableGA for sample generation.
	Warmup WarmupMethod

	// SampleTarget is the Shared Pool size the first phase aims for
	// (paper: 140, Figure 6).
	SampleTarget int
	// Patience stops the first phase early when this many consecutive
	// generations bring no improvement.
	Patience int
	// TopK is the number of knobs kept by RF sifting (paper: 20, Fig 8).
	TopK int
	// PCAVariance is the cumulative-variance target (paper: 0.90 → 91%
	// at 13 components on TPC-C, Figure 7).
	PCAVariance float64

	// Registry enables the online model-reuse scheme (§4): after the
	// Search Space Optimizer runs, a matching historical model is loaded
	// and fine-tuned; on completion this session's model is stored. Any
	// ModelStore works here — a *ReuseRegistry for single-session use, or
	// the fleet's sharded cross-tenant store. Leave nil to disable reuse;
	// never assign a nil *ReuseRegistry (a non-nil interface wrapping a
	// nil pointer would be probed).
	Registry ModelStore
	// ReuseTag names this workload in the registry (defaults to the
	// workload name).
	ReuseTag string
}

func (o Options) withDefaults() Options {
	if o.SampleTarget == 0 {
		o.SampleTarget = 140
	}
	if o.Patience == 0 {
		o.Patience = 4
	}
	if o.TopK == 0 {
		o.TopK = 20
	}
	if o.PCAVariance == 0 {
		o.PCAVariance = 0.90
	}
	if o.Warmup == WarmupHER {
		o.DisableGA = true
	}
	return o
}

// Hunter is the hybrid tuning system.
type Hunter struct {
	opts Options
	// diagnostics populated during Tune.
	lastPCADim   int
	lastTopKnobs []string
	reused       bool
}

// New creates a HUNTER tuner with the given options.
func New(opts Options) *Hunter { return &Hunter{opts: opts.withDefaults()} }

// Name implements tuner.Tuner.
func (h *Hunter) Name() string { return "HUNTER" }

// PCADim reports the compressed state dimension chosen in the last run.
func (h *Hunter) PCADim() int { return h.lastPCADim }

// TopKnobs reports the knobs the last run selected for fine tuning.
func (h *Hunter) TopKnobs() []string { return append([]string(nil), h.lastTopKnobs...) }

// Reused reports whether the last run fine-tuned a historical model.
func (h *Hunter) Reused() bool { return h.reused }

// Tune implements tuner.Tuner: the three-phase workflow of §2.1.
func (h *Hunter) Tune(s *tuner.Session) error { return h.run(s, nil) }

// run drives the phase machine, either from the start (st == nil) or from
// a checkpointed position. The machine m is registered with the session as
// the algorithm snapshotter, so checkpoints taken at wave boundaries
// always carry the live phase state. tuner.ErrStopRequested (the
// stop-after-checkpoint hook) propagates to the caller.
func (h *Hunter) run(s *tuner.Session, st *algoState) error {
	h.lastPCADim, h.lastTopKnobs, h.reused = 0, nil, false
	m := &machine{h: h, firstPass: true}
	if st != nil {
		h.reused = st.Reused
		h.lastPCADim = st.LastPCADim
		h.lastTopKnobs = st.LastTop
		m.firstPass = st.FirstPass
	}

	// Phase 1: Sample Factory fills the Shared Pool.
	if st == nil || st.Phase == phaseFactory {
		var factory *sampleFactory
		var err error
		if st != nil {
			if factory, err = resumeSampleFactory(h.opts, s, st.Factory); err != nil {
				return err
			}
			st = nil
		} else {
			factory = newSampleFactory(h.opts, s)
		}
		m.phase, m.factory = phaseFactory, factory
		if err := factory.Run(m); err != nil {
			if errors.Is(err, tuner.ErrBudgetExhausted) {
				return nil
			}
			return err
		}
		m.factory = nil
	}

	// Phases 2 + 3 loop: the Search Space Optimizer compresses metrics
	// and sifts knobs over the current Shared Pool, then the Recommender
	// (DDPG + FES, warm-started from the pool) explores the reduced
	// space. When the Recommender stalls, the optimizer re-runs over the
	// enlarged pool — whose full-space probes let it recover any knob an
	// earlier sifting wrongly dropped — and a fresh warm-started
	// Recommender continues.
	var rec *recommender
	var opt *spaceOptimizer
	m.phase = phaseExplore
	for !s.Exhausted() {
		var err error
		if st != nil {
			// Resuming mid-exploration: both phase-2 artifacts and the
			// mid-loop recommender come from the checkpoint; nothing is
			// refit and no RNG stream is consumed.
			if opt, err = resumeOptimizer(s, st.Opt); err != nil {
				return err
			}
			if rec, err = resumeRecommender(h.opts, s, opt, st.Rec); err != nil {
				return err
			}
			st = nil
		} else {
			newOpt, oerr := optimizeSearchSpace(h.opts, s)
			if oerr != nil {
				if m.firstPass {
					return oerr
				}
				break // keep the results of the earlier passes
			}
			opt = newOpt
			m.firstPass = false

			rec, err = newRecommender(h.opts, s, opt)
			if err != nil {
				return err
			}
			if h.opts.Registry != nil && !h.reused {
				if snap, ok := h.opts.Registry.Match(opt.Space().Names(), opt.StateDim()); ok {
					if err := rec.Restore(snap); err == nil {
						h.reused = true
					}
				}
			}
		}
		h.lastPCADim = opt.StateDim()
		h.lastTopKnobs = opt.Space().Names()
		m.opt, m.rec = opt, rec

		err = rec.Run(m)
		switch {
		case errors.Is(err, errStalled):
			continue
		case err == nil || errors.Is(err, tuner.ErrBudgetExhausted):
			// Budget spent.
		default:
			return err
		}
		break
	}
	if h.opts.Registry != nil && rec != nil && opt != nil {
		tag := h.opts.ReuseTag
		if tag == "" {
			tag = s.Req.Workload.Name
		}
		h.opts.Registry.Store(tag, opt.Space().Names(), opt.StateDim(), rec.Snapshot())
	}
	return nil
}
