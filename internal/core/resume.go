// Durable-checkpoint support for the hybrid tuner: the phase machine's
// state is serialized into the checkpoint's algorithm section at every
// wave boundary, and ResumeTune reconstructs the machine — mid-phase,
// mid-loop — so the continued run is bit-identical to one that was never
// interrupted.
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"github.com/hunter-cdb/hunter/internal/checkpoint"
	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/ml/ddpg"
	"github.com/hunter-cdb/hunter/internal/ml/pca"
	"github.com/hunter-cdb/hunter/internal/sim"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// Phases of the tuning workflow (§2.1).
const (
	phaseFactory = iota
	phaseExplore
)

// optState is the Search Space Optimizer in durable form: the PCA model,
// the normalizer statistics, and the narrowing inputs (sifted names plus
// pinned base) from which the exact space is rebuilt.
type optState struct {
	PCA      []byte // nested pca snapshot; nil when PCA was disabled
	Norm     tuner.NormalizerState
	Narrowed bool
	Top      []string
	Base     knob.Config // nil when no base was pinned
	Ranking  []string
}

// recState is the Recommender in durable form: the full agent (networks,
// optimizer moments, replay buffer, internal RNG), the recommender's own
// forked RNG mid-stream, and the exploration loop counters.
type recState struct {
	Agent      []byte
	RNG        sim.RNGState
	BestAction []float64
	BestFit    float64
	State      []float64
	Steps      int
	Stagnation int
	Wave       int
	PhaseStart time.Duration
}

// algoState is the whole phase machine.
type algoState struct {
	Phase      int
	Reused     bool
	LastPCADim int
	LastTop    []string
	FirstPass  bool
	Factory    *factoryState
	Opt        *optState
	Rec        *recState
}

// state exports the optimizer for the algorithm checkpoint section.
func (o *spaceOptimizer) exportState() (*optState, error) {
	st := &optState{
		Norm:     o.norm.State(),
		Narrowed: o.top != nil,
		Top:      o.top,
		Base:     o.base,
		Ranking:  o.ranking,
	}
	if o.pcaModel != nil {
		var buf bytes.Buffer
		if err := o.pcaModel.SnapshotTo(&buf); err != nil {
			return nil, err
		}
		st.PCA = buf.Bytes()
	}
	return st, nil
}

// resumeOptimizer rebuilds the optimizer without touching the pool or the
// session RNG: the PCA model is restored rather than refit, and the
// narrowed space is rebuilt from the recorded sift result.
func resumeOptimizer(s *tuner.Session, st *optState) (*spaceOptimizer, error) {
	if st == nil {
		return nil, fmt.Errorf("core: checkpoint is missing the optimizer state")
	}
	norm, err := tuner.RestoreStateNormalizer(st.Norm)
	if err != nil {
		return nil, err
	}
	o := &spaceOptimizer{s: s, space: s.Space, norm: norm, ranking: st.Ranking}
	if st.PCA != nil {
		o.pcaModel = &pca.Model{}
		if err := o.pcaModel.RestoreFrom(bytes.NewReader(st.PCA)); err != nil {
			return nil, fmt.Errorf("core: restoring PCA model: %w", err)
		}
	}
	if st.Narrowed {
		narrowed, err := s.Space.Narrow(st.Top)
		if err != nil {
			return nil, fmt.Errorf("core: rebuilding narrowed space: %w", err)
		}
		if st.Base != nil {
			narrowed = narrowed.WithBase(st.Base)
		}
		o.space = narrowed
		o.top = st.Top
		o.base = st.Base
	}
	return o, nil
}

// state exports the recommender for the algorithm checkpoint section.
func (r *recommender) exportState() (*recState, error) {
	var buf bytes.Buffer
	if err := r.agent.SnapshotTo(&buf); err != nil {
		return nil, err
	}
	return &recState{
		Agent:      buf.Bytes(),
		RNG:        r.rng.State(),
		BestAction: r.bestAction,
		BestFit:    r.bestFit,
		State:      r.state,
		Steps:      r.steps,
		Stagnation: r.stagnation,
		Wave:       r.wave,
		PhaseStart: r.phaseStart,
	}, nil
}

// resumeRecommender rebuilds a recommender mid-exploration. Unlike
// newRecommender it neither forks the session RNG nor replays the pool
// (the restored agent already contains the warm-start and everything
// learned since), so the RNG streams stay exactly where the original run
// left them.
func resumeRecommender(opts Options, s *tuner.Session, opt *spaceOptimizer, st *recState) (*recommender, error) {
	if st == nil {
		return nil, fmt.Errorf("core: checkpoint is missing the recommender state")
	}
	agent := &ddpg.Agent{}
	if err := agent.RestoreFrom(bytes.NewReader(st.Agent)); err != nil {
		return nil, fmt.Errorf("core: restoring DDPG agent: %w", err)
	}
	rng := sim.NewRNG(0)
	if err := rng.SetState(st.RNG); err != nil {
		return nil, err
	}
	if len(st.State) != opt.StateDim() {
		return nil, fmt.Errorf("core: checkpoint state dim %d != optimizer %d", len(st.State), opt.StateDim())
	}
	r := &recommender{
		opts:       opts,
		s:          s,
		opt:        opt,
		agent:      agent,
		rng:        rng,
		bestAction: st.BestAction,
		bestFit:    st.BestFit,
		state:      st.State,
		steps:      st.Steps,
		stagnation: st.Stagnation,
		wave:       st.Wave,
		phaseStart: st.PhaseStart,
		resumed:    true,
	}
	return r, nil
}

// machine is the live phase machine handed to tuner.Session as the
// algorithm snapshotter: whenever the session decides a checkpoint is due,
// the machine serializes whatever phase is currently running.
type machine struct {
	h         *Hunter
	phase     int
	firstPass bool
	factory   *sampleFactory
	opt       *spaceOptimizer
	rec       *recommender
}

// SnapshotTo implements checkpoint.Snapshotter.
func (m *machine) SnapshotTo(w io.Writer) error {
	st := algoState{
		Phase:      m.phase,
		Reused:     m.h.reused,
		LastPCADim: m.h.lastPCADim,
		LastTop:    m.h.lastTopKnobs,
		FirstPass:  m.firstPass,
	}
	var err error
	switch m.phase {
	case phaseFactory:
		if st.Factory, err = m.factory.exportState(); err != nil {
			return err
		}
	case phaseExplore:
		if st.Opt, err = m.opt.exportState(); err != nil {
			return err
		}
		if st.Rec, err = m.rec.exportState(); err != nil {
			return err
		}
	}
	return gob.NewEncoder(w).Encode(st)
}

// ResumeTune continues a tuning run from the algorithm section of a
// session checkpoint (the file returned by tuner.ResumeSession). The
// continued run is bit-identical to one that was never interrupted.
func (h *Hunter) ResumeTune(s *tuner.Session, f *checkpoint.File) error {
	if f == nil || !f.Has(tuner.SectionAlgo) {
		return fmt.Errorf("core: checkpoint has no algorithm section to resume from")
	}
	raw, err := f.Bytes(tuner.SectionAlgo)
	if err != nil {
		return err
	}
	var st algoState
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&st); err != nil {
		return fmt.Errorf("core: decoding algorithm state: %w", err)
	}
	return h.run(s, &st)
}
