package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/hunter-cdb/hunter/internal/ml/ddpg"
)

func testSnapshot(stateDim, actionDim int, fill float64) ddpg.Snapshot {
	w := make([]float64, 8)
	for i := range w {
		w[i] = fill
	}
	return ddpg.Snapshot{
		StateDim:  stateDim,
		ActionDim: actionDim,
		Actor:     append([]float64(nil), w...),
		Critic:    append([]float64(nil), w...),
		ActorT:    append([]float64(nil), w...),
		CriticT:   append([]float64(nil), w...),
	}
}

// TestReuseRegistryConcurrent hammers Store, Match, Lookup, Tags and Len
// from 16 goroutines. It is meaningful under -race (the CI race list runs
// it): any unguarded map access or shared weight slice shows up as a data
// race; without -race it still checks that concurrent lookups only ever
// observe fully formed snapshots.
func TestReuseRegistryConcurrent(t *testing.T) {
	r := NewReuseRegistry()
	knobsFor := func(g int) []string {
		return []string{fmt.Sprintf("knob_a_%d", g%4), fmt.Sprintf("knob_b_%d", g%4), "shared_knob"}
	}

	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			knobs := knobsFor(g)
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					r.Store(fmt.Sprintf("w%d", g), knobs, 1+g%4, testSnapshot(1+g%4, len(knobs), float64(g)))
				case 1:
					if snap, ok := r.Match(knobs, 1+g%4); ok {
						if snap.ActionDim != len(knobs) {
							t.Errorf("goroutine %d: Match returned ActionDim %d, want %d", g, snap.ActionDim, len(knobs))
							return
						}
						// Mutating the returned snapshot must never be
						// visible to other readers: it is a private copy.
						for j := range snap.Actor {
							snap.Actor[j] = -1
						}
					}
				case 2:
					if _, snap, ok := r.Lookup(knobs, 1+g%4); ok {
						for _, v := range snap.Actor {
							if v == -1 {
								t.Errorf("goroutine %d: Lookup observed another reader's mutation", g)
								return
							}
						}
					}
				case 3:
					r.Tags()
					r.Len()
				}
			}
		}(g)
	}
	wg.Wait()

	if r.Len() == 0 {
		t.Fatal("registry empty after concurrent stores")
	}
}

// TestReuseRegistryStoreCopies pins the defensive-copy contract: a caller
// that keeps training after Store must not corrupt the registry's copy.
func TestReuseRegistryStoreCopies(t *testing.T) {
	r := NewReuseRegistry()
	knobs := []string{"a", "b"}
	snap := testSnapshot(3, 2, 7)
	r.Store("w", knobs, 3, snap)
	snap.Actor[0] = 999

	tag, got, ok := r.Lookup(knobs, 3)
	if !ok {
		t.Fatal("Lookup missed a freshly stored exact signature")
	}
	if tag != "w" {
		t.Fatalf("Lookup tag = %q, want %q", tag, "w")
	}
	if got.Actor[0] != 7 {
		t.Fatalf("registry snapshot aliased the caller's slice: Actor[0] = %v, want 7", got.Actor[0])
	}
	got.Actor[0] = 555
	if _, again, _ := r.Lookup(knobs, 3); again.Actor[0] != 7 {
		t.Fatalf("Lookup result aliased registry state: Actor[0] = %v, want 7", again.Actor[0])
	}
}
