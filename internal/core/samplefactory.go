package core

import (
	"math"

	"github.com/hunter-cdb/hunter/internal/ga"
	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// sampleFactory is the first phase (§3.1): it fills the Shared Pool with
// high-quality samples. Per the workflow of §2.1, each Actor first
// stress-tests random configurations; the GA then breeds new generations
// from the evaluated population until the pool reaches its target size or
// fitness stops improving.
type sampleFactory struct {
	opts Options
	s    *tuner.Session
}

func newSampleFactory(opts Options, s *tuner.Session) *sampleFactory {
	return &sampleFactory{opts: opts, s: s}
}

// Run executes phase 1. With GA disabled (ablation or HER warm-up) the
// pool is filled with random samples instead.
func (f *sampleFactory) Run() error {
	s := f.s
	if s.Trace != nil {
		sp := s.Trace.Start("sample_factory")
		defer func() { sp.End(telemetry.A("pool", float64(s.Pool.Len()))) }()
	}
	target := f.opts.SampleTarget
	// The generation size is independent of the parallelism degree (the
	// session splits each generation into waves across the clones); tying
	// it to the clone count would starve high-parallelism runs of
	// evolution generations.
	popSize := 20
	if len(s.Clones) > popSize {
		popSize = len(s.Clones) // fill every clone in one wave
	}

	if f.opts.DisableGA {
		valid := 0
		for valid < target && !s.Exhausted() {
			n := target - valid
			if n > popSize {
				n = popSize
			}
			batch := make([][]float64, n)
			for i := range batch {
				batch[i] = s.Space.Random(s.RNG)
			}
			samples, err := s.EvaluateBatch(batch)
			for _, smp := range samples {
				if !smp.Perf.Failed {
					valid++
				}
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	g, err := ga.New(ga.Config{
		Dim:     s.Space.Dim(),
		PopSize: popSize,
		Seed:    s.RNG.Int63(),
	})
	if err != nil {
		return err
	}
	bestFit := math.Inf(-1)
	stale, valid := 0, 0
	for valid < target && !s.Exhausted() {
		n := target - valid
		if n > popSize {
			n = popSize
		}
		genes := g.Ask(n)
		samples, eerr := s.EvaluateBatch(genes)
		fit := make([]float64, len(samples))
		pts := make([][]float64, len(samples))
		improved := false
		for i, smp := range samples {
			pts[i] = smp.Point
			fit[i] = s.Fitness(smp.Perf)
			if !smp.Perf.Failed {
				valid++
			}
			if fit[i] > bestFit {
				bestFit = fit[i]
				improved = true
			}
		}
		if len(pts) > 0 {
			if err := g.Tell(pts, fit); err != nil {
				return err
			}
			s.ChargeModelUpdate()
		}
		if eerr != nil {
			return eerr
		}
		// Stop early once performance has not improved for an extended
		// period (§2.1) — but only after enough viable samples exist for
		// the Search Space Optimizer to work with.
		if improved {
			stale = 0
		} else if stale++; stale >= f.opts.Patience && valid >= 30 {
			return nil
		}
	}
	return nil
}
