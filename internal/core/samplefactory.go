package core

import (
	"bytes"
	"fmt"
	"math"
	"time"

	"github.com/hunter-cdb/hunter/internal/checkpoint"
	"github.com/hunter-cdb/hunter/internal/ga"
	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// sampleFactory is the first phase (§3.1): it fills the Shared Pool with
// high-quality samples. Per the workflow of §2.1, each Actor first
// stress-tests random configurations; the GA then breeds new generations
// from the evaluated population until the pool reaches its target size or
// fitness stops improving.
//
// The loop state lives on the struct so a checkpoint taken at a
// generation boundary can resume the phase exactly where it stopped.
type sampleFactory struct {
	opts Options
	s    *tuner.Session

	g       *ga.GA // nil when GA is disabled
	bestFit float64
	stale   int
	valid   int

	// phaseStart is the virtual time the phase span opened at; a resumed
	// factory re-opens the span there so the trace matches an
	// uninterrupted run.
	phaseStart time.Duration
	resumed    bool

	// Per-generation Tell buffers, reused across the GA loop.
	fit []float64
	pts [][]float64
}

func newSampleFactory(opts Options, s *tuner.Session) *sampleFactory {
	return &sampleFactory{opts: opts, s: s, bestFit: math.Inf(-1)}
}

// popSize returns the generation size: independent of the parallelism
// degree (the session splits each generation into waves across the
// clones), except that very wide fleets fill every clone in one wave.
func (f *sampleFactory) popSize() int {
	n := 20
	if len(f.s.Clones) > n {
		n = len(f.s.Clones)
	}
	return n
}

// ensureGA lazily creates the GA (consuming one seed draw from the
// session RNG). A resumed factory restores the GA instead, so the draw
// happens exactly once per run.
func (f *sampleFactory) ensureGA() error {
	if f.g != nil || f.opts.DisableGA {
		return nil
	}
	g, err := ga.New(ga.Config{
		Dim:     f.s.Space.Dim(),
		PopSize: f.popSize(),
		Seed:    f.s.RNG.Int63(),
	})
	if err != nil {
		return err
	}
	f.g = g
	return nil
}

// Run executes phase 1, calling barrier at every generation boundary —
// the algorithm-safe points where a checkpoint can be taken. With GA
// disabled (ablation or HER warm-up) the pool is filled with random
// samples instead.
func (f *sampleFactory) Run(barrier checkpoint.Snapshotter) error {
	s := f.s
	if !f.resumed {
		f.phaseStart = s.Clock.Now()
	}
	s.EnterPhase("sample_factory")
	if s.Trace != nil {
		sp := s.Trace.StartAt("sample_factory", f.phaseStart)
		defer func() { sp.End(telemetry.A("pool", float64(s.Pool.Len()))) }()
	}
	target := f.opts.SampleTarget

	if f.opts.DisableGA {
		for f.valid < target && !s.Exhausted() {
			// Re-read the batch width every generation: under an armed
			// chaos plan the clone fleet can shrink (quarantine), and the
			// batch adapts with it.
			popSize := f.popSize()
			n := target - f.valid
			if n > popSize {
				n = popSize
			}
			batch := make([][]float64, n)
			for i := range batch {
				batch[i] = s.Space.Random(s.RNG)
			}
			samples, err := s.EvaluateBatch(batch)
			for _, smp := range samples {
				if !smp.Perf.Failed {
					f.valid++
				}
			}
			if err != nil {
				return err
			}
			if err := s.CheckpointBarrier(barrier); err != nil {
				return err
			}
		}
		return nil
	}

	if err := f.ensureGA(); err != nil {
		return err
	}
	for f.valid < target && !s.Exhausted() {
		popSize := f.popSize() // fleet may shrink under chaos
		n := target - f.valid
		if n > popSize {
			n = popSize
		}
		genes := f.g.Ask(n)
		samples, eerr := s.EvaluateBatch(genes)
		if cap(f.fit) < len(samples) {
			f.fit = make([]float64, len(samples))
			f.pts = make([][]float64, len(samples))
		}
		fit := f.fit[:len(samples)]
		pts := f.pts[:len(samples)]
		improved := false
		for i, smp := range samples {
			pts[i] = smp.Point
			fit[i] = s.Fitness(smp.Perf)
			if !smp.Perf.Failed {
				f.valid++
			}
			if fit[i] > f.bestFit {
				f.bestFit = fit[i]
				improved = true
			}
		}
		if len(pts) > 0 {
			if err := f.g.Tell(pts, fit); err != nil {
				return err
			}
			s.ChargeModelUpdate()
		}
		if eerr != nil {
			return eerr
		}
		// Stop early once performance has not improved for an extended
		// period (§2.1) — but only after enough viable samples exist for
		// the Search Space Optimizer to work with.
		if improved {
			f.stale = 0
		} else if f.stale++; f.stale >= f.opts.Patience && f.valid >= 30 {
			return nil
		}
		if err := s.CheckpointBarrier(barrier); err != nil {
			return err
		}
	}
	return nil
}

// factoryState is the phase's durable loop state.
type factoryState struct {
	GA         []byte // nested ga snapshot; nil when GA is disabled or not yet built
	BestFit    float64
	Stale      int
	Valid      int
	PhaseStart time.Duration
}

// state exports the factory for the algorithm checkpoint section.
func (f *sampleFactory) exportState() (*factoryState, error) {
	st := &factoryState{BestFit: f.bestFit, Stale: f.stale, Valid: f.valid, PhaseStart: f.phaseStart}
	if f.g != nil {
		var buf bytes.Buffer
		if err := f.g.SnapshotTo(&buf); err != nil {
			return nil, err
		}
		st.GA = buf.Bytes()
	}
	return st, nil
}

// resumeSampleFactory rebuilds a factory mid-phase. The GA is restored
// from its snapshot rather than re-seeded, so the session RNG stream is
// not consumed a second time.
func resumeSampleFactory(opts Options, s *tuner.Session, st *factoryState) (*sampleFactory, error) {
	if st == nil {
		return nil, fmt.Errorf("core: checkpoint is missing the sample-factory state")
	}
	f := newSampleFactory(opts, s)
	f.bestFit = st.BestFit
	f.stale = st.Stale
	f.valid = st.Valid
	f.phaseStart = st.PhaseStart
	f.resumed = true
	if st.GA != nil {
		f.g = &ga.GA{}
		if err := f.g.RestoreFrom(bytes.NewReader(st.GA)); err != nil {
			return nil, fmt.Errorf("core: restoring sample-factory GA: %w", err)
		}
	}
	return f, nil
}
