package core

import (
	"bytes"
	"testing"
)

func TestRegistrySaveLoad(t *testing.T) {
	r := NewReuseRegistry()
	snap := dummySnapshot(13, 20)
	snap.Actor = []float64{1, 2, 3}
	r.Store("tpcc", []string{"a", "b", "c"}, 13, snap)

	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewReuseRegistry()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 1 {
		t.Fatalf("restored %d entries", restored.Len())
	}
	got, ok := restored.Match([]string{"a", "b", "c"}, 13)
	if !ok {
		t.Fatal("restored registry does not match stored signature")
	}
	if len(got.Actor) != 3 || got.Actor[1] != 2 {
		t.Fatalf("snapshot corrupted: %+v", got)
	}
	if tags := restored.Tags(); len(tags) != 1 || tags[0] != "tpcc" {
		t.Fatalf("tags %v", tags)
	}
}

func TestRegistryLoadGarbage(t *testing.T) {
	r := NewReuseRegistry()
	if err := r.Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage input should fail")
	}
}

// TestRegistryLoadCorruption checks the versioned container rejects
// damaged registry files — truncation, bad magic, bit flips — without
// touching the registry's current contents.
func TestRegistryLoadCorruption(t *testing.T) {
	r := NewReuseRegistry()
	r.Store("tpcc", []string{"a", "b"}, 7, dummySnapshot(7, 2))
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	live := NewReuseRegistry()
	live.Store("keep", []string{"x"}, 3, dummySnapshot(3, 1))

	// Truncations at every eighth byte.
	for cut := 0; cut < len(good); cut += 8 {
		if err := live.Load(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if err := live.Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// A bit flip anywhere in the payload region must be caught by a CRC.
	bad = append([]byte(nil), good...)
	bad[len(bad)-3] ^= 0x40
	if err := live.Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("payload bit flip accepted")
	}
	if live.Len() != 1 {
		t.Fatalf("failed loads mutated the registry: %d entries", live.Len())
	}
	if _, ok := live.Match([]string{"x"}, 3); !ok {
		t.Fatal("failed loads clobbered the live entry")
	}
}
