package core

import (
	"bytes"
	"testing"
)

func TestRegistrySaveLoad(t *testing.T) {
	r := NewReuseRegistry()
	snap := dummySnapshot(13, 20)
	snap.Actor = []float64{1, 2, 3}
	r.Store("tpcc", []string{"a", "b", "c"}, 13, snap)

	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewReuseRegistry()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 1 {
		t.Fatalf("restored %d entries", restored.Len())
	}
	got, ok := restored.Match([]string{"a", "b", "c"}, 13)
	if !ok {
		t.Fatal("restored registry does not match stored signature")
	}
	if len(got.Actor) != 3 || got.Actor[1] != 2 {
		t.Fatalf("snapshot corrupted: %+v", got)
	}
	if tags := restored.Tags(); len(tags) != 1 || tags[0] != "tpcc" {
		t.Fatalf("tags %v", tags)
	}
}

func TestRegistryLoadGarbage(t *testing.T) {
	r := NewReuseRegistry()
	if err := r.Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage input should fail")
	}
}
