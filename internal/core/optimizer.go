package core

import (
	"fmt"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/ml/pca"
	"github.com/hunter-cdb/hunter/internal/ml/rf"
	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// spaceOptimizer is the second phase (§3.2): it compresses the 63-metric
// state with PCA and sifts the knobs with a Random Forest, producing the
// reduced search space the Recommender explores.
type spaceOptimizer struct {
	s        *tuner.Session
	pcaModel *pca.Model // nil when PCA disabled
	space    *knob.Space
	norm     *tuner.StateNormalizer
	ranking  []string // all tuned knobs in importance order (diagnostics)

	// Narrowing inputs, kept so a checkpoint can rebuild the exact space:
	// the sifted top-k names and the base configuration the dropped knobs
	// were pinned to (nil when the space was not narrowed / not pinned).
	top  []string
	base knob.Config
}

// optimizeSearchSpace runs the phase over the current Shared Pool.
func optimizeSearchSpace(opts Options, s *tuner.Session) (*spaceOptimizer, error) {
	s.EnterPhase("space_optimizer")
	var phase telemetry.Span
	if s.Trace != nil {
		phase = s.Trace.Start("space_optimizer")
	}
	o := &spaceOptimizer{s: s, space: s.Space, norm: tuner.NewStateNormalizer(metrics.Count)}
	samples := s.Pool.All()
	var valid []tuner.Sample
	for _, smp := range samples {
		if len(smp.State) == metrics.Count {
			valid = append(valid, smp)
			o.norm.Observe(smp.State)
		}
	}

	// --- Metrics compression (§3.2.1) ---
	if !opts.DisablePCA {
		if len(valid) < 4 {
			return nil, fmt.Errorf("core: %d valid samples is too few for PCA", len(valid))
		}
		rows := make([][]float64, len(valid))
		for i, smp := range valid {
			rows[i] = smp.State
		}
		s.EnterPhase("pca_fit")
		fit := s.Trace.Start("pca_fit")
		model, err := pca.Fit(rows, opts.PCAVariance, 0)
		if err != nil {
			return nil, fmt.Errorf("core: pca: %w", err)
		}
		o.pcaModel = model
		if s.Trace != nil {
			fit.End(telemetry.A("rows", float64(len(rows))),
				telemetry.A("in_dim", float64(metrics.Count)),
				telemetry.A("out_dim", float64(model.OutDim())))
		}
	}

	// --- Knob sifting (§3.2.2) ---
	if !opts.DisableRF && s.Space.Dim() > opts.TopK {
		if len(valid) < 8 {
			return nil, fmt.Errorf("core: %d valid samples is too few for RF sifting", len(valid))
		}
		x := make([][]float64, len(valid))
		y := make([]float64, len(valid))
		for i, smp := range valid {
			x[i] = smp.Point
			y[i] = s.Fitness(smp.Perf)
		}
		s.EnterPhase("rf_sift")
		sift := s.Trace.Start("rf_sift")
		forest, err := rf.Train(x, y, rf.Options{Trees: 200}, s.RNG.Fork())
		if err != nil {
			return nil, fmt.Errorf("core: rf: %w", err)
		}
		if s.Trace != nil {
			sift.End(telemetry.A("samples", float64(len(x))),
				telemetry.A("trees", 200),
				telemetry.A("top_k", float64(opts.TopK)))
		}
		names := s.Space.Names()
		o.ranking = make([]string, 0, len(names))
		for _, idx := range forest.Ranking() {
			o.ranking = append(o.ranking, names[idx])
		}
		top := make([]string, 0, opts.TopK)
		for _, idx := range forest.TopK(opts.TopK) {
			top = append(top, names[idx])
		}
		narrowed, err := s.Space.Narrow(top)
		if err != nil {
			return nil, fmt.Errorf("core: narrowing space: %w", err)
		}
		// Pin the dropped knobs to the best configuration found so far so
		// sifting can only shrink the search, never undo phase-1 gains.
		if best, ok := s.Best(); ok && !best.Perf.Failed {
			narrowed = narrowed.WithBase(best.Knobs)
			o.base = best.Knobs
		}
		o.space = narrowed
		o.top = top
	}
	s.ChargeModelUpdate()
	if s.Trace != nil {
		phase.End(telemetry.A("space_dim", float64(o.space.Dim())),
			telemetry.A("state_dim", float64(o.StateDim())))
	}
	return o, nil
}

// Space returns the (possibly narrowed) action space.
func (o *spaceOptimizer) Space() *knob.Space { return o.space }

// StateDim returns the Recommender's state dimensionality.
func (o *spaceOptimizer) StateDim() int {
	if o.pcaModel != nil {
		return o.pcaModel.OutDim()
	}
	return metrics.Count
}

// Ranking returns every tuned knob in descending RF importance (empty when
// sifting was disabled).
func (o *spaceOptimizer) Ranking() []string { return append([]string(nil), o.ranking...) }

// CompressState maps a raw metric vector into the Recommender's state
// space (PCA projection, or normalization when PCA is off). A nil/short
// metric vector (failed boot) maps to the zero state.
func (o *spaceOptimizer) CompressState(raw []float64) []float64 {
	if len(raw) != metrics.Count {
		return make([]float64, o.StateDim())
	}
	if o.pcaModel != nil {
		z, err := o.pcaModel.Transform(raw)
		if err != nil {
			return make([]float64, o.StateDim())
		}
		return z
	}
	return o.norm.Normalize(raw)
}

// EncodeAction re-encodes a full configuration into the narrowed action
// space.
func (o *spaceOptimizer) EncodeAction(cfg knob.Config) []float64 { return o.space.Encode(cfg) }
