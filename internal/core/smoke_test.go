package core

import (
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/tuner"
	"github.com/hunter-cdb/hunter/internal/tuners/cdbtune"
	"github.com/hunter-cdb/hunter/internal/workload"
)

func runTuner(t *testing.T, tn tuner.Tuner, budget time.Duration, clones int, seed int64) *tuner.Session {
	t.Helper()
	s, err := tuner.NewSession(tuner.Request{
		Workload: workload.TPCC(),
		Budget:   budget,
		Clones:   clones,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Tune(s); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestHunterVsCDBTuneSmoke runs short sessions of HUNTER and CDBTune on
// TPC-C and checks the headline shape: within the same budget HUNTER
// reaches a better configuration and reaches its optimum earlier.
func TestHunterVsCDBTuneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning session")
	}
	budget := 24 * time.Hour
	hs := runTuner(t, New(Options{}), budget, 1, 42)
	defer hs.Close()
	cs := runTuner(t, cdbtune.New(), budget, 1, 42)
	defer cs.Close()

	hb, _ := hs.Best()
	cb, _ := cs.Best()
	hTime, _ := hs.Curve().RecommendationTime(hs.DefaultPerf, hs.Alpha, 0.98)
	cTime, _ := cs.Curve().RecommendationTime(cs.DefaultPerf, cs.Alpha, 0.98)
	t.Logf("default: %.0f tpm", hs.DefaultPerf.TPM())
	t.Logf("HUNTER : best %.0f tpm p95=%.1f fitness=%.3f steps=%d recTime=%.1fh",
		hb.Perf.TPM(), hb.Perf.P95LatencyMs, hs.Fitness(hb.Perf), hs.Steps(), hTime.Hours())
	t.Logf("CDBTune: best %.0f tpm p95=%.1f fitness=%.3f steps=%d recTime=%.1fh",
		cb.Perf.TPM(), cb.Perf.P95LatencyMs, cs.Fitness(cb.Perf), cs.Steps(), cTime.Hours())

	if hs.Fitness(hb.Perf) < 0.3 {
		t.Errorf("HUNTER fitness %.3f too low — tuning is not working", hs.Fitness(hb.Perf))
	}
	if hs.Fitness(hb.Perf) < cs.Fitness(cb.Perf)*0.95 {
		t.Errorf("HUNTER (%.3f) should at least match CDBTune (%.3f) in the same budget",
			hs.Fitness(hb.Perf), cs.Fitness(cb.Perf))
	}
}

// TestHunterParallelSmoke checks that 5 clones reach a comparable optimum
// in much less virtual time than 1 clone.
func TestHunterParallelSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning session")
	}
	s1 := runTuner(t, New(Options{}), 20*time.Hour, 1, 7)
	defer s1.Close()
	s5 := runTuner(t, New(Options{}), 20*time.Hour, 5, 7)
	defer s5.Close()
	t1, _ := s1.Curve().RecommendationTime(s1.DefaultPerf, s1.Alpha, 0.98)
	t5, _ := s5.Curve().RecommendationTime(s5.DefaultPerf, s5.Alpha, 0.98)
	b1, _ := s1.Best()
	b5, _ := s5.Best()
	t.Logf("1 clone : best fitness %.3f at %.1fh (%d steps)", s1.Fitness(b1.Perf), t1.Hours(), s1.Steps())
	t.Logf("5 clones: best fitness %.3f at %.1fh (%d steps)", s5.Fitness(b5.Perf), t5.Hours(), s5.Steps())
	if t5 >= t1 {
		t.Errorf("5 clones (%.1fh) should recommend faster than 1 clone (%.1fh)", t5.Hours(), t1.Hours())
	}
}
