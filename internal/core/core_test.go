package core

import (
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/ml/ddpg"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/tuner"
	"github.com/hunter-cdb/hunter/internal/workload"
)

func shortSession(t *testing.T, budget time.Duration, seed int64) *tuner.Session {
	t.Helper()
	s, err := tuner.NewSession(tuner.Request{
		Workload: workload.TPCC(),
		Budget:   budget,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.SampleTarget != 140 {
		t.Errorf("sample target %d, want 140 (Figure 6)", o.SampleTarget)
	}
	if o.TopK != 20 {
		t.Errorf("top-k %d, want 20 (Figure 8)", o.TopK)
	}
	if o.PCAVariance != 0.90 {
		t.Errorf("PCA variance %v, want 0.90", o.PCAVariance)
	}
	if her := (Options{Warmup: WarmupHER}).withDefaults(); !her.DisableGA {
		t.Error("HER warm-up must disable the GA sample factory")
	}
}

func TestWarmupMethodString(t *testing.T) {
	if WarmupGA.String() != "GA" || WarmupHER.String() != "HER" || WarmupNone.String() != "none" {
		t.Fatal("warmup names wrong")
	}
}

func TestHunterProducesDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	s := shortSession(t, 10*time.Hour, 51)
	h := New(Options{})
	if err := h.Tune(s); err != nil {
		t.Fatal(err)
	}
	if h.PCADim() <= 0 || h.PCADim() > metrics.Count {
		t.Errorf("PCA dim %d out of range", h.PCADim())
	}
	if len(h.TopKnobs()) != 20 {
		t.Errorf("top knobs %d, want 20", len(h.TopKnobs()))
	}
	if h.Reused() {
		t.Error("no registry: must not report reuse")
	}
	// The sifted knobs must all exist in the catalog.
	cat := knob.MySQL()
	for _, n := range h.TopKnobs() {
		if _, ok := cat.Spec(n); !ok {
			t.Errorf("sifted unknown knob %q", n)
		}
	}
}

func TestAblationCombinationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end runs")
	}
	combos := []Options{
		{DisableGA: true, DisablePCA: true, DisableRF: true, DisableFES: true},
		{DisablePCA: true, DisableRF: true, DisableFES: true},
		{DisableRF: true, DisableFES: true},
		{DisablePCA: true, DisableFES: true},
		{DisablePCA: true, DisableRF: true},
		{},
		{Warmup: WarmupHER},
	}
	for i, o := range combos {
		// Phase 1 alone needs ~7 h (140 valid samples); the budget must
		// leave room for the optimizer and recommender phases.
		s := shortSession(t, 12*time.Hour, int64(60+i))
		h := New(o)
		if err := h.Tune(s); err != nil {
			t.Fatalf("combo %d (%+v): %v", i, o, err)
		}
		best, ok := s.Best()
		if !ok {
			t.Fatalf("combo %d produced no samples", i)
		}
		if fit := s.Fitness(best.Perf); fit <= 0 {
			t.Errorf("combo %d fitness %.3f — no improvement", i, fit)
		}
		if h.PCADim() == 0 {
			t.Fatalf("combo %d never reached the optimizer phase", i)
		}
		// DisablePCA means the recommender works on raw metrics.
		if o.DisablePCA && h.PCADim() != metrics.Count {
			t.Errorf("combo %d: PCA disabled but state dim %d", i, h.PCADim())
		}
		if o.DisableRF && len(h.TopKnobs()) != 65 {
			t.Errorf("combo %d: RF disabled but %d knobs", i, len(h.TopKnobs()))
		}
	}
}

func TestReuseRegistryMatching(t *testing.T) {
	r := NewReuseRegistry()
	if _, ok := r.Match([]string{"a", "b"}, 13); ok {
		t.Fatal("empty registry must not match")
	}
	snap := dummySnapshot(13, 2)
	r.Store("wl-1", []string{"b", "a"}, 13, snap)
	if r.Len() != 1 {
		t.Fatalf("len %d", r.Len())
	}
	// Matching is order-insensitive on knob names.
	if _, ok := r.Match([]string{"a", "b"}, 13); !ok {
		t.Fatal("same key knobs + dim must match")
	}
	if _, ok := r.Match([]string{"a", "b"}, 14); ok {
		t.Fatal("different state dim must not match")
	}
	if _, ok := r.Match([]string{"a", "c"}, 13); ok {
		t.Fatal("different knob set must not match")
	}
	if tags := r.Tags(); len(tags) != 1 || tags[0] != "wl-1" {
		t.Fatalf("tags %v", tags)
	}
}

func TestModelReuseEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("two end-to-end runs")
	}
	registry := NewReuseRegistry()
	// The budget must outlast phase 1 (140 valid samples ≈ 7 h) so the
	// Recommender exists to be stored.
	s1 := shortSession(t, 16*time.Hour, 70)
	if err := New(Options{Registry: registry, ReuseTag: "first"}).Tune(s1); err != nil {
		t.Fatal(err)
	}
	if registry.Len() != 1 {
		t.Fatalf("registry holds %d models after training", registry.Len())
	}
	// Second run on the same workload shape: should match and fine-tune.
	s2 := shortSession(t, 16*time.Hour, 71)
	h := New(Options{Registry: registry})
	if err := h.Tune(s2); err != nil {
		t.Fatal(err)
	}
	// Reuse requires identical key knobs and PCA dim; with the same
	// workload and close seeds this usually holds — if it matched, the
	// diagnostic must say so.
	t.Logf("reused=%v (key knobs and state dim matched: %v)", h.Reused(), h.Reused())
}

func TestHunterRespectsRules(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	rules := knob.NewRules().
		Fix("innodb_doublewrite", 1).
		Range("innodb_io_capacity", 500, 5000)
	s, err := tuner.NewSession(tuner.Request{
		Workload: workload.SysbenchWO(),
		Budget:   6 * time.Hour,
		Rules:    rules,
		Seed:     80,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := New(Options{}).Tune(s); err != nil {
		t.Fatal(err)
	}
	for _, smp := range s.Pool.All() {
		if v := rules.Violations(s.Space.Catalog(), smp.Knobs); len(v) > 0 {
			t.Fatalf("HUNTER stress-tested a rule-violating config: %v", v)
		}
	}
	best, _ := s.DeployBest()
	if best.Knobs["innodb_doublewrite"] != 1 {
		t.Fatal("deployed config violates fixed knob")
	}
}

func TestNameAndInterfaces(t *testing.T) {
	var _ tuner.Tuner = New(Options{})
	if New(Options{}).Name() != "HUNTER" {
		t.Fatal("name wrong")
	}
}

func dummySnapshot(stateDim, actionDim int) ddpg.Snapshot {
	return ddpg.Snapshot{StateDim: stateDim, ActionDim: actionDim}
}

var _ = simdb.MySQL
