package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/hunter-cdb/hunter/internal/checkpoint"
	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/ml/ddpg"
	"github.com/hunter-cdb/hunter/internal/sim"
	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/tuner"
)

// recommender is the third phase (§3.3): DDPG over the reduced state and
// action spaces, warm-started from the Shared Pool and driven by the Fast
// Exploration Strategy.
type recommender struct {
	opts  Options
	s     *tuner.Session
	opt   *spaceOptimizer
	agent *ddpg.Agent
	rng   *sim.RNG

	bestAction []float64
	bestFit    float64
	state      []float64
	steps      int
	// stagnation counts waves without improvement; exploration widens
	// when the search stalls and tightens again on progress.
	stagnation int
	// wave numbers the exploration waves (wave%5 schedules the periodic
	// full-space probe); it persists across a checkpoint/resume.
	wave int
	// phaseStart is the virtual time the phase span opened at; a resumed
	// recommender re-opens the span there so the trace matches an
	// uninterrupted run.
	phaseStart time.Duration
	resumed    bool
}

func newRecommender(opts Options, s *tuner.Session, opt *spaceOptimizer) (*recommender, error) {
	rng := s.RNG.Fork()
	agent, err := ddpg.New(ddpg.Config{
		StateDim:  opt.StateDim(),
		ActionDim: opt.Space().Dim(),
		Seed:      rng.Int63(),
	})
	if err != nil {
		return nil, err
	}
	r := &recommender{
		opts:    opts,
		s:       s,
		opt:     opt,
		agent:   agent,
		rng:     rng,
		bestFit: math.Inf(-1),
		state:   make([]float64, opt.StateDim()),
	}
	r.warmStart()
	return r, nil
}

// warmStart replays the Shared Pool into the agent's experience buffer —
// the key design decision of the hybrid architecture — and pre-trains on
// it so the policy starts from the GA's knowledge instead of from scratch.
func (r *recommender) warmStart() {
	var pretrained int
	r.s.EnterPhase("ddpg_warm_start")
	if r.s.Trace != nil {
		sp := r.s.Trace.Start("ddpg_warm_start")
		defer func() {
			sp.End(telemetry.A("pool", float64(r.s.Pool.Len())),
				telemetry.A("train_steps", float64(pretrained)))
		}()
	}
	samples := r.s.Pool.All()
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].Step < samples[j].Step })

	var episode []ddpg.Transition
	prev := make([]float64, r.opt.StateDim())
	for _, smp := range samples {
		state := prev
		next := r.opt.CompressState(smp.State)
		action := r.opt.EncodeAction(smp.Knobs)
		fit := r.s.Fitness(smp.Perf)
		episode = append(episode, ddpg.Transition{
			State:  state,
			Action: action,
			Reward: fit,
			Next:   next,
			Done:   smp.Perf.Failed,
		})
		if len(smp.State) == metrics.Count {
			prev = next
			r.state = next
		}
		if fit > r.bestFit {
			r.bestFit = fit
			r.bestAction = action
		}
	}
	if r.opts.Warmup == WarmupHER {
		episode = append(episode, ddpg.HERRelabel(episode)...)
	}
	for _, t := range episode {
		r.agent.Observe(t)
	}
	// Pre-train: a pass of minibatch updates over the warm buffer.
	pretrain := 4 * len(episode)
	if pretrain > 600 {
		pretrain = 600
	}
	for i := 0; i < pretrain; i++ {
		r.agent.TrainStep()
	}
	pretrained = pretrain
	if len(episode) > 0 {
		r.s.ChargeModelUpdate()
	}
}

// fes implements the Fast Exploration Strategy (Eq. 4–7): early steps
// mostly re-explore around the best-known action (A_best plus a random
// value); P(A_c) starts at 0.3 and rises monotonically toward a ceiling
// below 1, so some best-centered refinement persists throughout — the
// "explore based on relatively better configurations" behaviour. The
// refinement radius anneals as the search matures.
func (r *recommender) fes(action []float64) []float64 {
	if r.opts.DisableFES || r.bestAction == nil {
		return action
	}
	pc := 1 - 0.7*math.Exp(-float64(r.steps)/45)
	if pc > 0.88 {
		pc = 0.88
	}
	if r.rng.Float64() < pc {
		return action
	}
	return tuner.PerturbPoint(r.bestAction, r.refineRadius(), r.rng)
}

// refineRadius is the A_best perturbation width: it anneals with progress
// and widens again when the search stagnates.
func (r *recommender) refineRadius() float64 {
	rad := 0.03 + 0.09*math.Exp(-float64(r.steps)/350)
	if r.stagnation > 12 {
		rad *= 1 + 0.1*float64(r.stagnation-12)
		if rad > 0.3 {
			rad = 0.3
		}
	}
	return rad
}

// errStalled signals that the recommender has stopped improving; the
// orchestrator responds by re-running the Search Space Optimizer over the
// enlarged Shared Pool and warm-starting a fresh recommender.
var errStalled = fmt.Errorf("core: recommender stalled")

// stallLimit is the number of consecutive improvement-free waves before
// the recommender reports a stall.
const stallLimit = 40

// Run drives the exploration loop until the session budget is exhausted
// or the search stalls, calling barrier at every wave boundary — the
// algorithm-safe points where a checkpoint can be taken. Each iteration
// proposes one action per cloned CDB (the parallel scheme), stress-tests
// the wave, and trains on the observed transitions. Waves periodically
// include a full-space probe — a perturbation of the best known
// configuration across *all* tuned knobs, not only the sifted top-k —
// whose samples let a later re-optimization recover any knob the sifting
// wrongly dropped.
func (r *recommender) Run(barrier checkpoint.Snapshotter) error {
	s := r.s
	if !r.resumed {
		r.phaseStart = s.Clock.Now()
	}
	s.EnterPhase("ddpg_explore")
	if s.Trace != nil {
		sp := s.Trace.StartAt("ddpg_explore", r.phaseStart)
		defer func() { sp.End(telemetry.A("steps", float64(r.steps))) }()
	}
	space := r.opt.Space()
	for !s.Exhausted() {
		r.wave++
		n := len(s.Clones)
		actions := make([][]float64, n)
		wideSlot := -1
		if n >= 4 || r.wave%5 == 0 {
			wideSlot = n - 1
		}
		for i := range actions {
			if i == wideSlot {
				actions[i] = nil // filled below in the full space
				continue
			}
			r.steps++
			sigma := 0.30*math.Exp(-float64(r.steps)/180) + 0.04
			switch {
			case i == 0:
				// The wave leader follows the policy (with FES early on).
				actions[i] = r.fes(r.agent.ActNoisy(r.state, sigma))
			case i%3 == 1 && r.bestAction != nil:
				// Local refinement around the incumbent at varied radii,
				// so a wide wave covers several exploration scales.
				actions[i] = tuner.PerturbPoint(r.bestAction, 0.04+0.05*float64(i%5), r.rng)
			case i%7 == 6:
				// Occasional global restart keeps the wave from
				// collapsing onto one basin.
				actions[i] = r.opt.Space().Random(r.rng)
			default:
				actions[i] = r.fes(r.agent.ActNoisy(r.state, sigma*(1+0.4*float64(i%4))))
			}
		}
		configs := make([]knob.Config, len(actions))
		for i, a := range actions {
			if i == wideSlot {
				configs[i] = r.wideProbe()
				actions[i] = r.opt.EncodeAction(configs[i])
				continue
			}
			configs[i] = space.Decode(a)
		}
		samples, err := s.EvaluateConfigs(configs)
		prev := r.state
		improved := false
		for _, smp := range samples {
			// smp.Index re-associates the sample with the action that
			// produced it — under a degraded (partial) wave the returned
			// slice can be shorter than the batch, so positional pairing
			// would train the agent on the wrong actions.
			next := r.opt.CompressState(smp.State)
			fit := s.Fitness(smp.Perf)
			r.agent.Observe(ddpg.Transition{
				State:  prev,
				Action: actions[smp.Index],
				Reward: fit,
				Next:   next,
				Done:   smp.Perf.Failed,
			})
			if fit > r.bestFit {
				r.bestFit = fit
				r.bestAction = actions[smp.Index]
				improved = true
			}
			if len(smp.State) == metrics.Count {
				r.state = next
			}
		}
		if improved {
			r.stagnation = 0
		} else if r.stagnation++; r.stagnation >= stallLimit {
			return errStalled
		}
		// Training effort scales with the wave so parallel sessions learn
		// as much per sample as sequential ones.
		for k := 0; k < 2*len(samples)+2; k++ {
			r.agent.TrainStep()
		}
		if len(samples) > 0 {
			s.ChargeModelUpdate()
		}
		if err != nil {
			return err
		}
		if err := s.CheckpointBarrier(barrier); err != nil {
			return err
		}
	}
	return tuner.ErrBudgetExhausted
}

// wideProbe perturbs the best known *full* configuration across every
// tuned knob of the original session space, probing outside the sifted
// subspace.
func (r *recommender) wideProbe() knob.Config {
	best, ok := r.s.Best()
	if !ok || best.Perf.Failed {
		return r.s.Space.Decode(r.s.Space.Random(r.rng))
	}
	full := r.s.Space.Encode(best.Knobs)
	return r.s.Space.Decode(tuner.PerturbPoint(full, 0.08, r.rng))
}

// Snapshot exports the agent parameters for the model-reuse registry.
func (r *recommender) Snapshot() ddpg.Snapshot { return r.agent.Snapshot() }

// Restore fine-tunes from a historical model (online model reuse, §4).
func (r *recommender) Restore(s ddpg.Snapshot) error { return r.agent.Restore(s) }
