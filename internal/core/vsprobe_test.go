package core

import (
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/tuners/cdbtune"
)

// TestHunterCompetitiveAcrossSeeds compares HUNTER with CDBTune over two
// seeds at a 24-hour budget (the paper's protocol at ~1/3 scale, so the
// Sample Factory target scales to ~48 accordingly): averaged over seeds,
// HUNTER must beat CDBTune's final fitness and reach CDBTune's level no
// later than CDBTune's own recommendation time.
func TestHunterCompetitiveAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("long end-to-end comparison")
	}
	var hFit, cFit, hReach, cRec float64
	for _, seed := range []int64{11, 23} {
		hs := runTuner(t, New(Options{SampleTarget: 48}), 24*time.Hour, 1, seed)
		cs := runTuner(t, cdbtune.New(), 24*time.Hour, 1, seed)
		hb, _ := hs.Best()
		cb, _ := cs.Best()
		hFit += hs.Fitness(hb.Perf)
		cFit += cs.Fitness(cb.Perf)
		crt, _ := cs.Curve().RecommendationTime(cs.DefaultPerf, cs.Alpha, 0.98)
		cRec += crt.Hours()
		reachH := hs.Elapsed().Hours() // worst case: never reached
		if reach, ok := hs.Curve().TimeToFitness(hs.DefaultPerf, hs.Alpha, cs.Fitness(cb.Perf)); ok {
			reachH = reach.Hours()
		}
		hReach += reachH
		t.Logf("seed %d: HUNTER %.3f | CDBTune %.3f (rec %.1fh; HUNTER reached that level at %.1fh)",
			seed, hs.Fitness(hb.Perf), cs.Fitness(cb.Perf), crt.Hours(), reachH)
		hs.Close()
		cs.Close()
	}
	if hFit < cFit*0.97 {
		t.Errorf("HUNTER mean fitness %.3f below CDBTune %.3f", hFit/2, cFit/2)
	}
	if hReach > cRec*1.1 {
		t.Errorf("HUNTER too slow to reach CDBTune's level: %.1fh vs %.1fh (mean)", hReach/2, cRec/2)
	}
}
