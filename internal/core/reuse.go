package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"github.com/hunter-cdb/hunter/internal/checkpoint"
	"github.com/hunter-cdb/hunter/internal/ml/ddpg"
)

// ModelStore is the contract between the phase machine and whatever holds
// historical Recommender models. The single-session path uses a
// *ReuseRegistry directly; the fleet substitutes a sharded, workload-keyed
// store so thousands of tenants can probe and publish without serializing
// on one lock. Implementations must be safe for concurrent use, and the
// snapshots they hand out must not alias mutable internal state.
type ModelStore interface {
	// Match returns a historical snapshot compatible with the probe's key
	// knobs and state dimension, if one exists.
	Match(knobNames []string, stateDim int) (ddpg.Snapshot, bool)
	// Store records a trained model under its search-space signature.
	Store(tag string, knobNames []string, stateDim int, snap ddpg.Snapshot)
	// Len reports how many models are held.
	Len() int
}

var _ ModelStore = (*ReuseRegistry)(nil)

// copySnapshot deep-copies a DDPG snapshot so callers and the registry
// never share weight slices.
func copySnapshot(s ddpg.Snapshot) ddpg.Snapshot {
	cp := s
	cp.Actor = append([]float64(nil), s.Actor...)
	cp.Critic = append([]float64(nil), s.Critic...)
	cp.ActorT = append([]float64(nil), s.ActorT...)
	cp.CriticT = append([]float64(nil), s.CriticT...)
	return cp
}

// ReuseRegistry implements the matching module of the online model-reuse
// scheme (§4): after the Search Space Optimizer runs, the registry is
// probed for a historical workload with the same key knobs and the same
// compressed-state dimension; on a hit the stored Recommender parameters
// are loaded and fine-tuned.
//
// The paper requires the key knobs and state dimension to be "the same";
// since RF rankings carry sampling noise, matching here requires the state
// dimensions to be equal and the key-knob sets to overlap almost entirely
// (Jaccard ≥ minJaccard), preferring exact matches. Restoring a snapshot
// additionally requires identical network shapes, which equal dimensions
// guarantee. The registry is safe for concurrent use.
type ReuseRegistry struct {
	mu      sync.RWMutex
	entries map[string]reuseEntry
}

// minJaccard is the key-knob set overlap required for a match.
const minJaccard = 0.75

type reuseEntry struct {
	tag      string
	stateDim int
	knobs    map[string]bool
	snap     ddpg.Snapshot
}

// NewReuseRegistry returns an empty registry.
func NewReuseRegistry() *ReuseRegistry {
	return &ReuseRegistry{entries: make(map[string]reuseEntry)}
}

// key canonicalizes the exact signature.
func reuseKey(knobNames []string, stateDim int) string {
	names := append([]string(nil), knobNames...)
	sort.Strings(names)
	return fmt.Sprintf("%d|%s", stateDim, strings.Join(names, ","))
}

// Store records a trained model under its search-space signature. The
// snapshot is deep-copied on the way in, so the caller may keep training
// the live network afterwards without racing readers of the registry.
func (r *ReuseRegistry) Store(tag string, knobNames []string, stateDim int, snap ddpg.Snapshot) {
	set := make(map[string]bool, len(knobNames))
	for _, n := range knobNames {
		set[n] = true
	}
	r.mu.Lock()
	r.entries[reuseKey(knobNames, stateDim)] = reuseEntry{tag: tag, stateDim: stateDim, knobs: set, snap: copySnapshot(snap)}
	r.mu.Unlock()
}

// Match returns a historical snapshot compatible with the probe's key
// knobs and state dimension, if one exists. Exact signature matches win;
// otherwise the entry with the highest key-knob overlap above the
// threshold is returned. The action dimension must also agree or the
// snapshot could not be restored.
func (r *ReuseRegistry) Match(knobNames []string, stateDim int) (ddpg.Snapshot, bool) {
	_, snap, ok := r.Lookup(knobNames, stateDim)
	return snap, ok
}

// Lookup is the concurrency-safe probe path: like Match, but it also
// reports the tag the winning entry was stored under, and the returned
// snapshot is deep-copied so many goroutines can restore or mutate their
// results independently while writers keep publishing.
func (r *ReuseRegistry) Lookup(knobNames []string, stateDim int) (string, ddpg.Snapshot, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.entries[reuseKey(knobNames, stateDim)]; ok {
		return e.tag, copySnapshot(e.snap), true
	}
	// Scan in sorted-key order so Jaccard ties resolve the same way on
	// every run — map iteration order must never pick the winner.
	keys := make([]string, 0, len(r.entries))
	for k := range r.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bestScore := minJaccard
	var best *reuseEntry
	for _, k := range keys {
		e := r.entries[k]
		if e.stateDim != stateDim || e.snap.ActionDim != len(knobNames) {
			continue
		}
		inter := 0
		for _, n := range knobNames {
			if e.knobs[n] {
				inter++
			}
		}
		union := len(e.knobs) + len(knobNames) - inter
		if union == 0 {
			continue
		}
		if j := float64(inter) / float64(union); j >= bestScore {
			bestScore = j
			cp := e
			best = &cp
		}
	}
	if best == nil {
		return "", ddpg.Snapshot{}, false
	}
	return best.tag, copySnapshot(best.snap), true
}

// Tags lists the stored workload tags (diagnostics).
func (r *ReuseRegistry) Tags() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.tag)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored models.
func (r *ReuseRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// registryDump is the serialized form of the registry.
type registryDump struct {
	Entries map[string]registryEntryDump
}

type registryEntryDump struct {
	Tag      string
	StateDim int
	Knobs    []string
	Snap     ddpg.Snapshot
}

// registrySection is the registry's section name inside the versioned
// checkpoint container.
const registrySection = "reuse-registry"

// Save serializes the registry so trained models survive process restarts
// — the historical-data reuse of §5. The payload is a gob dump wrapped in
// the repository's versioned checkpoint container, so a load rejects
// truncated, corrupted or wrong-version files up front instead of
// mis-decoding them.
func (r *ReuseRegistry) Save(w io.Writer) error {
	r.mu.RLock()
	dump := registryDump{Entries: make(map[string]registryEntryDump, len(r.entries))}
	for k, e := range r.entries {
		names := make([]string, 0, len(e.knobs))
		for n := range e.knobs {
			names = append(names, n)
		}
		sort.Strings(names)
		dump.Entries[k] = registryEntryDump{Tag: e.tag, StateDim: e.stateDim, Knobs: names, Snap: e.snap}
	}
	r.mu.RUnlock()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(dump); err != nil {
		return fmt.Errorf("core: encoding reuse registry: %w", err)
	}
	cw := checkpoint.NewWriter()
	if err := cw.AddBytes(registrySection, payload.Bytes()); err != nil {
		return err
	}
	_, err := w.Write(cw.Encode())
	return err
}

// Load restores a registry serialized by Save, merging into the current
// contents. Bad magic, an unsupported format version, a checksum mismatch
// or a truncated file all fail with a descriptive error and leave the
// registry untouched.
func (r *ReuseRegistry) Load(rd io.Reader) error {
	data, err := io.ReadAll(rd)
	if err != nil {
		return fmt.Errorf("core: reading reuse registry: %w", err)
	}
	f, err := checkpoint.Decode(data)
	if err != nil {
		return fmt.Errorf("core: loading reuse registry: %w", err)
	}
	raw, err := f.Bytes(registrySection)
	if err != nil {
		return fmt.Errorf("core: loading reuse registry: %w", err)
	}
	var dump registryDump
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&dump); err != nil {
		return fmt.Errorf("core: decoding reuse registry: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, d := range dump.Entries {
		set := make(map[string]bool, len(d.Knobs))
		for _, n := range d.Knobs {
			set[n] = true
		}
		r.entries[k] = reuseEntry{tag: d.Tag, stateDim: d.StateDim, knobs: set, snap: d.Snap}
	}
	return nil
}
