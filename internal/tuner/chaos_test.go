package tuner

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/chaos"
	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// chaosRequest is the fixed request the fault-injection tests run under.
func chaosRequest(plan *chaos.Plan) Request {
	return Request{
		Workload: workload.TPCC(),
		Budget:   4 * time.Hour,
		Clones:   2,
		Seed:     11,
		Chaos:    plan,
	}
}

// TestNewSessionFleetLeakOnCloneFailure is the regression test for the
// provisioning leak: when a clone fails after the user instance (and
// possibly earlier clones) already exist, NewSession must release the
// partial fleet — a failed session leaves zero instances on the provider.
func TestNewSessionFleetLeakOnCloneFailure(t *testing.T) {
	rec := telemetry.New()
	req := chaosRequest(&chaos.Plan{Seed: 1, Profile: chaos.Profile{
		Name: "t", TransientCloneProb: 1, MaxRetries: 2,
	}})
	req.Recorder = rec

	if _, err := NewSession(req); err == nil {
		t.Fatal("session survived a permanently failing clone API")
	}
	created := rec.Counter("cloud.instances_created").Value()
	released := rec.Counter("cloud.instances_released").Value()
	if created == 0 {
		t.Fatal("no instance was ever provisioned — the failure fired too early to test the leak")
	}
	if created != released {
		t.Fatalf("failed NewSession leaked instances: created %d, released %d", created, released)
	}
	if active := rec.Gauge("cloud.instances_active").Value(); active != 0 {
		t.Fatalf("failed NewSession left %v instances active", active)
	}
	if got := rec.Counter("cloud.transient_faults").Value(); got != 3 {
		t.Fatalf("transient_faults = %d, want 3 (1 call + 2 retries)", got)
	}
}

// TestActorErrorsJoined is the regression test for error swallowing: when
// several actors fail with real (non-fault) errors in one wave, every
// error must survive into the joined result, not just the first.
func TestActorErrorsJoined(t *testing.T) {
	s, err := NewSession(chaosRequest(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cfgs := []knob.Config{s.User.Config(), s.User.Config()}
	// Break the stress-test workload under the session's feet: every
	// actor's run now fails with a real (non-fault) error, and the joined
	// error must carry both failures.
	s.Req.Workload = &workload.Profile{Name: "broken"}
	_, err = s.EvaluateConfigs(cfgs)
	if err == nil {
		t.Fatal("broken workload produced no error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "actor 0") || !strings.Contains(msg, "actor 1") {
		t.Fatalf("joined error dropped an actor's failure: %q", msg)
	}
	if !strings.Contains(msg, "config 0") || !strings.Contains(msg, "config 1") {
		t.Fatalf("joined error lost the failing config indexes: %q", msg)
	}
}

// TestDegradedWaveSampleIndex: a partial wave returns fewer samples than
// configurations, and Sample.Index re-associates each surviving sample
// with the configuration that produced it.
func TestDegradedWaveSampleIndex(t *testing.T) {
	s, err := NewSession(chaosRequest(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if len(s.Clones) != 2 {
		t.Fatalf("fleet size %d", len(s.Clones))
	}

	// Distinguishable configurations: a dynamic knob varies per slot.
	cfgs := make([]knob.Config, 4)
	for i := range cfgs {
		c := s.User.Config()
		c["innodb_io_capacity"] = float64(1000 + 500*i)
		cfgs[i] = c
	}
	// Lose the middle of the batch: actor 1 crashes in wave one (config 1),
	// actor 0 in wave two (config 2).
	s.Clones[1].Engine().InjectCrash()
	out, err := s.EvaluateConfigs(cfgs[:2])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Index != 0 {
		t.Fatalf("wave one: %d samples, index %v; want 1 sample for config 0", len(out), out)
	}
	// Revive clone 1, crash clone 0.
	if err := s.Clones[1].Engine().Configure(s.User.Config()); err != nil {
		t.Fatal(err)
	}
	s.Clones[0].Engine().InjectCrash()
	out, err = s.EvaluateConfigs(cfgs[2:])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Index != 1 {
		t.Fatalf("wave two: %d samples, index %d; want 1 sample with index 1", len(out), out[0].Index)
	}
	if got, want := out[0].Knobs["innodb_io_capacity"], cfgs[2+out[0].Index]["innodb_io_capacity"]; got != want {
		t.Fatalf("sample/config misalignment: knob %v, want %v", got, want)
	}
}

// TestQuarantineShrinksFleetToLoss drives the catastrophic profile: every
// stress test crashes, strikes accumulate, every slot is quarantined, and
// the session reports ErrFleetLost — after which any further evaluation
// fails fast the same way.
func TestQuarantineShrinksFleetToLoss(t *testing.T) {
	s, err := NewSession(chaosRequest(&chaos.Plan{Seed: 5, Profile: chaos.Catastrophic()}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Default-config waves: deployment always succeeds, so every step
	// reaches the stress test and crashes (CrashProb 1).
	cfgs := make([]knob.Config, 12)
	for i := range cfgs {
		cfgs[i] = s.User.Config()
	}
	out, err := s.EvaluateConfigs(cfgs)
	if !errors.Is(err, ErrFleetLost) {
		t.Fatalf("err = %v, want ErrFleetLost", err)
	}
	if len(out) != 0 {
		t.Fatalf("%d samples from all-crash waves", len(out))
	}
	if len(s.Clones) != 0 {
		t.Fatalf("fleet not empty after loss: %d clones", len(s.Clones))
	}
	r := s.Resilience()
	if r == nil {
		t.Fatal("no resilience report with chaos armed")
	}
	// 2 clones: wave one crashes both (strike 1, replaced), wave two
	// crashes both replacements (strike 2 = quarantine) — deterministic
	// regardless of seed because every crash roll fires.
	if r.Injected.Crashes != 4 || r.Replacements != 2 || r.Quarantined != 2 ||
		r.PartialWaves != 2 || r.SamplesLost != 4 || r.FleetSize != 0 {
		t.Fatalf("resilience tally off: %+v", r)
	}
	// The user instance survives: the baseline config still serves.
	if s.User == nil {
		t.Fatal("user instance lost with the fleet")
	}
	if _, err := s.Evaluate(s.Space.Random(s.RNG)); !errors.Is(err, ErrFleetLost) {
		t.Fatalf("post-loss Evaluate = %v, want ErrFleetLost", err)
	}
}

// TestChaosCheckpointResumeIdentity is the determinism contract with a
// fault plan armed: a session killed at a wave boundary and resumed from
// its snapshot replays the exact fault plan and lands bit-identical to the
// uninterrupted run — including the resilience tally — and does so across
// worker-pool sizes.
func TestChaosCheckpointResumeIdentity(t *testing.T) {
	plan := &chaos.Plan{Seed: 9, Profile: chaos.Profile{
		Name:                "hot",
		TransientDeployProb: 0.25,
		CrashProb:           0.20,
		SlowIOProb:          0.30,
		HangProb:            0.10,
		QuarantineAfter:     5,
	}}
	const batches = 4
	type finalState struct {
		Waves, Steps, Pool int
		Elapsed            time.Duration
		NextRNG            int64
		Resil              ResilienceReport
	}
	capture := func(s *Session) finalState {
		return finalState{
			Waves: s.WaveCount(), Steps: s.Steps(), Pool: s.Pool.Len(),
			Elapsed: s.Elapsed(), NextRNG: s.RNG.Int63(), Resil: *s.Resilience(),
		}
	}
	runBatches := func(s *Session, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := s.EvaluateBatch([][]float64{s.Space.Random(s.RNG), s.Space.Random(s.RNG)}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Golden leg under workers=1.
	prev := parallel.SetWorkers(1)
	req := chaosRequest(plan)
	g, err := NewSession(req)
	if err != nil {
		t.Fatal(err)
	}
	runBatches(g, batches)
	golden := capture(g)
	g.Close()
	parallel.SetWorkers(prev)

	if golden.Resil.Injected.Total() == 0 {
		t.Fatal("the hot profile injected nothing — the identity check is vacuous")
	}

	for _, workers := range []int{1, 8} {
		prev := parallel.SetWorkers(workers)
		dir := t.TempDir()
		req := chaosRequest(plan)
		req.Checkpoint = &CheckpointPolicy{Dir: dir}
		s, err := NewSession(req)
		if err != nil {
			t.Fatal(err)
		}
		runBatches(s, batches/2)
		if err := s.WriteCheckpoint(nil); err != nil {
			t.Fatal(err)
		}
		path := s.CheckpointPath()
		s.Close()

		r, _, err := ResumeSession(context.Background(), req, path)
		if err != nil {
			t.Fatal(err)
		}
		runBatches(r, batches/2)
		got := capture(r)
		r.Close()
		parallel.SetWorkers(prev)

		if !reflect.DeepEqual(golden, got) {
			t.Fatalf("workers=%d: resumed run diverged from golden\ngolden: %+v\ngot:    %+v", workers, golden, got)
		}
	}
}

// TestResumeChaosFingerprintMismatch: a checkpoint written under one fault
// plan refuses to resume under another — same discipline as seed or
// budget mismatches.
func TestResumeChaosFingerprintMismatch(t *testing.T) {
	plan := &chaos.Plan{Seed: 3, Profile: chaos.Mild()}
	dir := t.TempDir()
	req := chaosRequest(plan)
	req.Checkpoint = &CheckpointPolicy{Dir: dir}
	s, err := NewSession(req)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.EvaluateBatch([][]float64{s.Space.Random(s.RNG)}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(nil); err != nil {
		t.Fatal(err)
	}
	path := s.CheckpointPath()

	cases := []struct {
		name string
		plan *chaos.Plan
		want string
	}{
		{"seed", &chaos.Plan{Seed: 4, Profile: chaos.Mild()}, "chaos seed"},
		{"profile", &chaos.Plan{Seed: 3, Profile: chaos.Flaky()}, "chaos"},
		{"disarmed", nil, "chaos"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := chaosRequest(tc.plan)
			bad.Checkpoint = &CheckpointPolicy{Dir: dir}
			_, _, err := ResumeSession(context.Background(), bad, path)
			if err == nil {
				t.Fatal("mismatched fault plan accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the chaos mismatch", err)
			}
		})
	}
}
