package tuner

import (
	"fmt"
	"math"
	"sync/atomic"
)

// SessionStatus is a point-in-time view of one tuning session, built for
// the live introspection plane: which algorithm phase is running, how far
// the wave loop has come, the best objective so far, and the fault/repair
// tally when chaos is armed. Every field is computed from session state the
// tuning loop maintains anyway — publishing a status reads no clock,
// consumes no RNG and writes no output, so a status sink can never change
// a result bit.
type SessionStatus struct {
	// Key uniquely identifies the session within the process (the /sessions
	// registry key). It embeds a process-wide sequence number, so it is NOT
	// deterministic across runs — it never appears in experiment output.
	Key  string `json:"key"`
	Name string `json:"name"` // dialect/workload, as in the trace

	Phase   string `json:"phase"` // current algorithm phase ("" before the first)
	Wave    int    `json:"wave"`
	Steps   int    `json:"steps"`
	Samples int    `json:"samples"`
	Clones  int    `json:"clones"` // clones still in service

	VirtualSeconds float64 `json:"virtual_seconds"`
	BudgetSeconds  float64 `json:"budget_seconds"`
	BestFitness    float64 `json:"best_fitness"` // 0 until the first sample scores
	Drifted        bool    `json:"drifted"`
	Done           bool    `json:"done"`

	// Resilience carries the supervisor's fault summary; nil when no chaos
	// plan is armed.
	Resilience *ResilienceReport `json:"resilience,omitempty"`

	// Safety carries the online safety loop's tally; nil when the loop is
	// off.
	Safety *SafetyReport `json:"safety,omitempty"`
}

// StatusSink receives session status updates. Implementations must be safe
// for concurrent use (a process can run many sessions at once) and must
// return quickly: the session publishes synchronously from its tuning
// loop. The obsv package's Registry is the standard implementation.
type StatusSink interface {
	PublishStatus(SessionStatus)
}

// statusSeq numbers sessions process-wide so registry keys stay unique
// when many sessions share a name (the fleet case).
var statusSeq atomic.Int64

// initStatus mints the session's registry key. Called once the session
// name is known, only when a sink is attached.
func (s *Session) initStatus() {
	if s.Req.Status == nil {
		return
	}
	name := fmt.Sprintf("%s/%s", s.Req.Dialect, s.Req.Workload.Name)
	s.statusKey = fmt.Sprintf("%s#%d", name, statusSeq.Add(1))
	s.statusName = name
}

// EnterPhase records that the session entered an algorithm phase (sample
// factory, space optimizer, DDPG exploration, ...) and publishes a status
// update. The phase string is observability-only state: it never feeds
// back into tuning.
func (s *Session) EnterPhase(name string) {
	s.phase = name
	s.publishStatus(false)
}

// Status builds the session's current status view.
func (s *Session) Status(done bool) SessionStatus {
	best := s.bestFit
	if math.IsInf(best, 0) || math.IsNaN(best) {
		best = 0
	}
	return SessionStatus{
		Key:            s.statusKey,
		Name:           s.statusName,
		Phase:          s.phase,
		Wave:           s.waveCount,
		Steps:          s.steps,
		Samples:        s.Pool.Len(),
		Clones:         len(s.Clones),
		VirtualSeconds: s.Clock.Now().Seconds(),
		BudgetSeconds:  s.Req.Budget.Seconds(),
		BestFitness:    best,
		Drifted:        s.driftIdx > 0,
		Done:           done,
		Resilience:     s.Resilience(),
		Safety:         s.Safety(),
	}
}

// publishStatus pushes the current view to the request's sink, if any.
func (s *Session) publishStatus(done bool) {
	if s.Req.Status == nil {
		return
	}
	s.Req.Status.PublishStatus(s.Status(done))
}
